.PHONY: all build test bench bench-check audit mc telemetry history doc clean examples check fmt fuzz runs-diff

all: build

build:
	dune build @all

test:
	dune runtest

# The CI gate: full build, tests, and formatting drift in one shot
# (also available as `dune build @check`).
check:
	dune build @all
	dune runtest
	dune build @fmt

fmt:
	dune fmt

# Long-running property-based differential fuzzing (kept out of
# `make check` / @runtest; the deterministic 200-case smoke tier runs
# there instead). Tune with FUZZ_COUNT / FUZZ_SEED / FUZZ_MAX_GATES.
FUZZ_COUNT ?= 2000
FUZZ_SEED ?= 42
FUZZ_MAX_GATES ?= 12
fuzz:
	dune exec bin/treorder_cli.exe -- fuzz --seed $(FUZZ_SEED) \
	  --count $(FUZZ_COUNT) --max-gates $(FUZZ_MAX_GATES) --stats

# JOBS= sets the domain count for parallel gate sweeps (exported as
# TREORDER_JOBS, read by the CLI's --jobs default and the perf_parallel
# bench target), e.g. `make bench JOBS=8`.
JOBS ?=
ifneq ($(JOBS),)
export TREORDER_JOBS := $(JOBS)
endif

bench:
	dune exec bench/main.exe

# Regression gate: rerun the fast deterministic targets and compare
# their Obs counters against the committed fixture. Counters only
# (--no-time), so the gate is stable across machines. Refresh the
# fixture after an intentional behaviour change with:
#   dune exec bench/main.exe -- --out bench/baseline_check.json \
#     table1 table2 probe_overhead perf_mc perf_eco telemetry_overhead
BENCH_BASELINE ?= bench/baseline_check.json
bench-check:
	dune exec bench/main.exe -- --baseline $(BENCH_BASELINE) \
	  --check --no-time --out /tmp/bench_check_obs.json \
	  table1 table2 probe_overhead perf_mc perf_eco telemetry_overhead

# Cross-run provenance diff: compare two archived run records (or the
# latest run under two archive roots). Produce records with the
# --archive DIR option of any pipeline subcommand, then e.g.
#   make runs-diff DIR_A=runs/monday DIR_B=runs/tuesday
DIR_A ?= par_det_a
DIR_B ?= par_det_b
runs-diff:
	dune exec bin/treorder_cli.exe -- runs diff $(DIR_A) $(DIR_B)

# Fleet history analytics: scan an archive root (accumulated with the
# --archive DIR option of any pipeline subcommand), print per-series
# trends and changepoints, and write + validate the self-contained
# HTML dashboard. Defaults to the committed drift fixture so the
# target demos an attributed regression out of the box; point it at a
# real archive with e.g. `make history HISTORY_ROOT=runs`.
HISTORY_ROOT ?= bench/history_fixture/drift
HISTORY_HTML ?= /tmp/treorder_history.html
history:
	dune exec bin/treorder_cli.exe -- runs history $(HISTORY_ROOT) \
	  --metric optimizer.configs_explored --metric wall_s \
	  --html $(HISTORY_HTML)
	dune exec bin/treorder_cli.exe -- report check $(HISTORY_HTML)

# Per-net calibration audit of the analytical model against the
# switch-level simulator, with the same deterministic bound the @check
# alias enforces (see the root dune file).
audit:
	dune exec bin/treorder_cli.exe -- audit tree16 --seed 42 \
	  --horizon 2e-3 --fail-above 10 --stats

# Monte-Carlo estimate of the same circuit with the bit-parallel
# engine; SAMPLES / SEED / JOBS tune the budget, stream and domain
# count, e.g. `make mc SAMPLES=1048576 JOBS=8`. MC_BOUND is the
# --fail-above gate, calibrated for the default budget (3.6% measured
# at 262144 samples); raise it when cutting SAMPLES, since the mean
# density error floor scales with 1/sqrt(samples).
SAMPLES ?= 262144
SEED ?= 42
MC_BOUND ?= 5
mc:
	dune exec bin/treorder_cli.exe -- audit tree16 --backend mc \
	  --samples $(SAMPLES) --seed $(SEED) $(if $(JOBS),--jobs $(JOBS)) \
	  --fail-above $(MC_BOUND) --stats

# Live-telemetry smoke: optimize with a fast sampler, then verify the
# heartbeat stream and the OpenMetrics exposition agree with the run
# (the same check the @check alias runs hermetically in _build).
telemetry:
	dune exec bin/treorder_cli.exe -- optimize rca16 --seed 42 --jobs 2 \
	  --telemetry-interval 0.01 --metrics /tmp/treorder_metrics.prom \
	  --trace /tmp/treorder_telemetry.ndjson
	dune exec bin/treorder_cli.exe -- trace telemetry \
	  /tmp/treorder_telemetry.ndjson --metrics /tmp/treorder_metrics.prom \
	  --min-heartbeats 3 --max-sample-ns 200000000
	dune exec bin/treorder_cli.exe -- top --replay /tmp/treorder_telemetry.ndjson

# Individual reproduction targets, e.g. `make table3`
table1 table2 figure5 table3_a table3_b adder_profile ablation_delay \
ablation_inputreorder model_accuracy glitch sensitivity exactness \
sequential gate_accuracy proptest probe_overhead perf perf_parallel \
perf_mc telemetry_overhead:
	dune exec bench/main.exe -- $@

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ripple_carry.exe
	dune exec examples/gate_explorer.exe
	dune exec examples/scenario_sweep.exe
	dune exec examples/map_equations.exe
	dune exec examples/library_characterization.exe

doc:
	dune build @doc

clean:
	dune clean
