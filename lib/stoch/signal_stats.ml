type t = { prob : float; density : float }

let c_stats_made = Obs.counter "stoch.stats_made"

let make ~prob ~density =
  Obs.incr c_stats_made;
  let finite x = Float.is_finite x in
  if not (finite prob && finite density) then
    invalid_arg "Signal_stats.make: non-finite value";
  if prob < 0. || prob > 1. then
    invalid_arg "Signal_stats.make: prob outside [0, 1]";
  if density < 0. then invalid_arg "Signal_stats.make: negative density";
  { prob; density }

let prob t = t.prob
let density t = t.density

let constant b = { prob = (if b then 1. else 0.); density = 0. }

let latched = { prob = 0.5; density = 0.5 }

let is_constant t = t.density = 0.

let mean_holding_times t =
  if is_constant t then
    invalid_arg "Signal_stats.mean_holding_times: constant signal";
  (2. *. (1. -. t.prob) /. t.density, 2. *. t.prob /. t.density)

let equal ?(eps = 1e-9) a b =
  Float.abs (a.prob -. b.prob) <= eps
  && Float.abs (a.density -. b.density) <= eps

let pp ppf t = Format.fprintf ppf "P=%.3f D=%.3g" t.prob t.density
