module C = Netlist.Circuit
module B = Netlist.Builder
module Rng = Stoch.Rng

let cells = Array.of_list Cell.Gate.library

(* Deterministic stream for a (seed, string) pair: fold the name into
   the seed with a odd multiplier, then let SplitMix64's finalizer
   decorrelate neighbouring seeds. *)
let keyed_rng seed name =
  let h = ref seed in
  String.iter (fun ch -> h := (!h * 0x01000193) + Char.code ch) name;
  Rng.create !h

let input_stats ~seed ?(max_density = 2.0) c net =
  let rng = keyed_rng seed ("stats:" ^ C.net_name c net) in
  let prob = Rng.float_range rng 0.05 0.95 in
  let density = Rng.float_range rng (0.05 *. max_density) max_density in
  Stoch.Signal_stats.make ~prob ~density

let vector ~seed k c net =
  Rng.bool (keyed_rng seed (Printf.sprintf "vec%d:%s" k (C.net_name c net)))

(* --- random DAG circuits --- *)

let random_config rng cell = Rng.int rng (Cell.Gate.config_count cell)

let circuit rng ~size =
  let n_inputs = 1 + Rng.int rng 7 in
  let n_gates = 1 + Rng.int rng (max 1 size) in
  let b = B.create ~name:"fuzz" in
  let nets = ref [] in
  let read = Hashtbl.create 16 in
  for i = 0 to n_inputs - 1 do
    nets := B.input b (Printf.sprintf "pi%d" i) :: !nets
  done;
  let gate_outputs = ref [] in
  for g = 0 to n_gates - 1 do
    let cell = cells.(Rng.int rng (Array.length cells)) in
    let pool = Array.of_list !nets in
    (* Locality bias: half of the draws come from the newest few nets,
       so depth grows with the gate count instead of saturating at 2. *)
    let draw () =
      let n = Array.length pool in
      let net =
        if Rng.bool rng then pool.(Rng.int rng (min n 6))
        else pool.(Rng.int rng n)
      in
      Hashtbl.replace read net ();
      net
    in
    let fanins = List.init (Cell.Gate.arity cell) (fun _ -> draw ()) in
    let out =
      B.gate b
        ~name:(Printf.sprintf "g%d" g)
        ~config:(random_config rng cell)
        (Cell.Gate.name cell) fanins
    in
    nets := out :: !nets;
    gate_outputs := out :: !gate_outputs
  done;
  (* Every unread gate output is a primary output; always at least the
     last gate's, so the circuit has an output even when fully chained. *)
  let unread = List.filter (fun n -> not (Hashtbl.mem read n)) !gate_outputs in
  (match (unread, !gate_outputs) with
  | [], last :: _ -> B.output b last
  | outs, _ -> List.iter (B.output b) (List.rev outs));
  B.finish b

(* --- read-once circuits --- *)

let tree_circuit rng ~size =
  let n_gates = 1 + Rng.int rng (max 1 size) in
  let b = B.create ~name:"fuzztree" in
  let next_input = ref 0 in
  let fresh_input () =
    let n = B.input b (Printf.sprintf "pi%d" !next_input) in
    incr next_input;
    n
  in
  (* [pool] holds the nets not yet consumed by any pin; drawing removes
     the net, so fanout never exceeds 1 and fanins stay distinct. *)
  let pool = ref [ fresh_input (); fresh_input () ] in
  let draw () =
    match !pool with
    | [] -> fresh_input ()
    | l ->
        let a = Array.of_list l in
        let i = Rng.int rng (Array.length a) in
        pool := List.filteri (fun j _ -> j <> i) l;
        a.(i)
  in
  let last = ref (List.hd !pool) in
  for g = 0 to n_gates - 1 do
    let cell = cells.(Rng.int rng (Array.length cells)) in
    let fanins = List.init (Cell.Gate.arity cell) (fun _ -> draw ()) in
    let out =
      B.gate b
        ~name:(Printf.sprintf "g%d" g)
        ~config:(random_config rng cell)
        (Cell.Gate.name cell) fanins
    in
    pool := out :: !pool;
    last := out
  done;
  B.output b !last;
  (* The other unconsumed gate outputs are outputs too (inputs left in
     the pool stay plain unused inputs). *)
  let c0 = B.finish b in
  List.iter
    (fun n ->
      match C.driver c0 n with
      | C.Driven_by _ when n <> !last -> B.output b n
      | C.Driven_by _ | C.Primary_input -> ())
    !pool;
  B.finish b

(* --- series-parallel networks --- *)

let sp_network rng ~size =
  let leaves = 2 + Rng.int rng (max 1 (min size 6 - 1)) in
  let labels = Array.init leaves Fun.id in
  Rng.shuffle rng labels;
  let rec build kind labels =
    match labels with
    | [| x |] -> Sp.Sp_tree.leaf x
    | _ ->
        let n = Array.length labels in
        (* Random split point keeps group sizes irregular. *)
        let cut = 1 + Rng.int rng (n - 1) in
        let left = Array.sub labels 0 cut in
        let right = Array.sub labels cut (n - cut) in
        let sub = if Rng.bool rng then kind else not kind in
        let children = [ build sub left; build sub right ] in
        if kind then Sp.Sp_tree.series children
        else Sp.Sp_tree.parallel children
  in
  let t = build (Rng.bool rng) labels in
  (* Scramble with the paper's pivoting step so the generated ordering
     is not always the canonical left-to-right one. *)
  let t = ref t in
  let pivots = Rng.int rng 4 in
  for _ = 1 to pivots do
    let k = Sp.Sp_tree.internal_node_count !t in
    if k > 0 then t := Sp.Sp_tree.pivot !t (Rng.int rng k)
  done;
  !t
