(** The differential oracle suite: every independently implemented view
    of the same physics, checked against the others on random circuits.

    - [exactness] — gate-local probability/density propagation
      ({!Power.Analysis}) vs the exact global-BDD computation
      ({!Power.Exact}) on read-once circuits, where the paper's
      spatial-independence assumption holds and the two must agree to
      float precision.
    - [sim-power] — analytic model power ({!Power.Estimate}) vs average
      switch-level simulated power ({!Switchsim.Sim}) within a bounded
      factor on read-once circuits (reconvergent fanout makes the
      gate-local model diverge legitimately, which would force a
      vacuous tolerance).
    - [vcd-roundtrip] — a {!Switchsim.Vcd_dump} of a warm-up-free run,
      re-read through {!Vcd.parse}, reproduces the simulation's
      accounting exactly: per-net strict 0↔1 toggle counts equal
      [net_toggles] and each variable's last value equals the
      simulator's final state.
    - [function] — reordering preserves logical function: the simulator
      over the configured transistor networks settles to
      {!Netlist.Eval} on random vectors, and every sampled
      configuration's flattened network computes the cell's function
      BDD.
    - [optimizer] — monotonicity and report consistency of
      {!Reorder.Optimizer}: [power_after <= power_before] for
      [Min_power], best [<=] worst, the chosen configuration matches
      re-evaluation, and the reduction percentage is in [\[0, 100\]].
    - [io-roundtrip] — {!Netlist.Io} parse ∘ print is the identity on
      generated circuits (text fixpoint and structural equality).
    - [densities] — Najm propagation invariants: every net's
      probability in [\[0, 1\]], density finite and non-negative, and
      the [power.densities_propagated] counter advances exactly once
      per gate (the §4.2 once-per-net property).
    - [attribution] — the {!Attrib} ledger conserves power on optimizer
      runs: per-gate node shares sum to the gate total, per-node
      per-input contributions sum to the node power, and the ledger
      totals match the optimizer report.
    - [parallel-determinism] — {!Reorder.Optimizer.optimize} over a
      4-domain {!Par.Pool} is bit-identical to the sequential run:
      [power_before]/[power_after], the configuration assignment, the
      exploration count and the {!Attrib} ledger totals all match
      exactly, with and without a {!Reorder.Memo}.
    - [sp-orderings] — on random series-parallel networks, every
      electrically distinct reordering conducts identically, the
      closed-form ordering count matches the enumeration, and the
      pivot-based exploration (Fig. 4) visits the same set.
    - [archive-roundtrip] — a {!Runlog} record of an optimizer run on a
      random circuit (manifest, Obs snapshot, {!Attrib} ledger
      attachment) written to a scratch directory loads back bit-exactly:
      manifest fields, parameters, and every per-gate configuration and
      [%.17g]-rendered power survive the JSON round-trip, and the
      record's diff against itself is clean.
    - [mc-convergence] — the bit-parallel Monte-Carlo engine ({!Mc})
      agrees with the rest of the stack twice over: every lane of
      {!Mc.eval_nets} equals the scalar {!Netlist.Eval.nets} on that
      lane's input vector (exactly), and per-net MC densities and
      probabilities at a fixed seed match a {!Switchsim.Sim.run_stats}
      run of the same input model within a few standard errors of both
      estimators (each side carries its own sampling noise; a small
      relative term covers MC's one-transition-per-step time
      discretization).
    - [telemetry-consistency] — the {!Telemetry} sampler is a faithful
      read-only observer: over a manual-interval session wrapping two
      optimizer runs, every counter is monotone non-decreasing across
      the ring, the final forced sample equals the final
      {!Obs.snapshot} (minus the sampler's own [obs.*] cost counters),
      the OpenMetrics rendering round-trips through the strict parser
      value-exactly, and emitted heartbeats keep [percent] inside
      [\[0, 100\]] and monotone within each phase.
    - [history-consistency] — fleet analytics ({!History} / {!Html}) is
      a pure function of the archived bytes: synthetic run records with
      pinned timestamps and [%.17g]-gnarly counters extract
      bit-for-bit, the report JSON is byte-identical across filesystem
      write orders, an injected piecewise-constant step is attributed
      to exactly its first offending run, and the rendered dashboard
      passes {!Html.parse_report} with every series inventoried and a
      deterministic re-render.
    - [incremental-equivalence] — an {!Incremental} session apply
      (random statistics edits plus a configuration flip, then a
      stats-only second batch over the warm cache) is bit-identical to
      a cold full {!Reorder.Optimizer.optimize} of the edited circuit:
      [power_before] / [power_after], every winning configuration, and
      the patched {!Attrib} ledger (totals and per-gate
      before/after entries) all match exactly — sequentially, over a
      4-domain {!Par.Pool}, and with a session {!Reorder.Memo}.

    All properties share one power-model / delay table pair built from
    {!Cell.Process.default} (module state, built lazily). *)

val all : unit -> Runner.t list
(** Every oracle, in the order listed above. *)

val find : string -> Runner.t option
(** Look up one oracle by name. *)

val names : unit -> string list
