module C = Netlist.Circuit
open Runner

(* One shared model context (same defaults as Experiments.Common, which
   this library deliberately does not depend on). *)
let proc = Cell.Process.default
let power_table = lazy (Power.Model.table proc)
let delay_table = lazy (Delay.Elmore.table proc)
let power () = Lazy.force power_table
let delay () = Lazy.force delay_table

let fail fmt = Printf.ksprintf (fun s -> Fail s) fmt

(* Chain checks, stopping at the first failure. *)
let ( let* ) r f = match r with Pass -> f () | Fail _ -> r

let rec all_nets c ~f net =
  if net >= C.net_count c then Pass
  else
    let* () = f net in
    all_nets c ~f (net + 1)

(* --- 1. exactness: local propagation vs global BDDs (read-once) --- *)

let close ?(rtol = 1e-6) a b = Float.abs (a -. b) <= 1e-9 +. (rtol *. Float.abs b)

let check_exactness ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let analysis = Power.Analysis.run (power ()) c ~inputs in
  match Power.Exact.run c ~inputs with
  | exception Power.Exact.Blowup _ -> Pass (* no reference to compare to *)
  | exact ->
      all_nets c 0 ~f:(fun net ->
          let local = Power.Analysis.stats analysis net in
          let global = Power.Exact.stats exact net in
          let module S = Stoch.Signal_stats in
          if not (close (S.prob local) (S.prob global)) then
            fail "net %s: local P=%.12g, exact P=%.12g (read-once circuit)"
              (C.net_name c net) (S.prob local) (S.prob global)
          else if not (close (S.density local) (S.density global)) then
            fail "net %s: local D=%.12g, exact D=%.12g (read-once circuit)"
              (C.net_name c net) (S.density local) (S.density global)
          else Pass)

(* --- 2. model power vs switch-level power --- *)

(* Run on read-once trees: under reconvergent fanout the gate-local
   model legitimately diverges from the simulator by large factors
   (correlation), which would force a vacuous tolerance. On trees the
   gap is only glitching + sampling noise. *)
let sim_horizon = 500.
let sim_tolerance_factor = 3.0

let check_sim_power ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let analysis = Power.Analysis.run (power ()) c ~inputs in
  let model = Power.Estimate.total (power ()) c analysis in
  let sim = Switchsim.Sim.build proc c in
  let r =
    Switchsim.Sim.run_stats sim
      ~rng:(Stoch.Rng.create (seed + 0x517c05))
      ~stats:inputs ~horizon:sim_horizon ~warmup:(0.1 *. sim_horizon) ()
  in
  let simulated = r.Switchsim.Sim.power in
  let lo = Float.min model simulated and hi = Float.max model simulated in
  if hi -. lo <= 3e-15 then Pass (* both below the noise floor *)
  else if lo > 0. && hi /. lo <= sim_tolerance_factor then Pass
  else
    fail "model %.4g W vs simulated %.4g W (factor %.2f > %.1f)" model
      simulated
      (if lo > 0. then hi /. lo else Float.infinity)
      sim_tolerance_factor

(* --- 2b. VCD round-trip: dump a simulation, re-read it, recount --- *)

(* A dump of a warm-up-free run must reproduce the run's accounting
   exactly: the initial settle is X→value (never 0↔1), and afterwards
   both the simulator and the reader count precisely the strict 0↔1
   transitions. *)
let vcd_horizon = 50.

let check_vcd_roundtrip ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let sim = Switchsim.Sim.build proc c in
  let buf = Buffer.create 4096 in
  let observer, finish =
    Switchsim.Vcd_dump.make sim ~probe_internals:(seed land 1 = 0)
      ~emit:(Buffer.add_string buf) ()
  in
  let r =
    Switchsim.Sim.run_stats sim
      ~rng:(Stoch.Rng.create (seed + 0x5cd))
      ~stats:inputs ~horizon:vcd_horizon ~observer ()
  in
  finish ~time:vcd_horizon;
  match Vcd.parse (Buffer.contents buf) with
  | Error e -> fail "dump does not parse: %s" e
  | Ok doc ->
      let toggles = Vcd.toggle_counts doc in
      let finals = Vcd.final_values doc in
      let key net =
        Switchsim.Vcd_dump.sanitize (C.name c)
        ^ "."
        ^ Switchsim.Vcd_dump.sanitize (C.net_name c net)
      in
      let vcd_value = function
        | Switchsim.Sim.V0 -> Vcd.V0
        | Switchsim.Sim.V1 -> Vcd.V1
        | Switchsim.Sim.VX -> Vcd.VX
      in
      all_nets c 0 ~f:(fun net ->
          let k = key net in
          match (List.assoc_opt k toggles, List.assoc_opt k finals) with
          | None, _ | _, None -> fail "net %s missing from the dump" k
          | Some n, Some v ->
              if n <> r.Switchsim.Sim.net_toggles.(net) then
                fail "net %s: %d toggles in the dump, %d in the simulation" k n
                  r.Switchsim.Sim.net_toggles.(net)
              else if v <> vcd_value r.Switchsim.Sim.final_values.(net) then
                fail "net %s: final value differs from the simulator's state" k
              else Pass)

(* --- 3. reordering preserves logical function --- *)

let function_vectors = 5
let max_configs_checked = 24

let check_function ~seed c =
  (* (a) the simulator, which honours each gate's configured transistor
     network, must settle to the functional evaluation. *)
  let sim = Switchsim.Sim.build proc c in
  let rec vectors k =
    if k >= function_vectors then Pass
    else
      let bit net = Gen.vector ~seed k c net in
      let r =
        Switchsim.Sim.run sim
          ~inputs:(fun net -> Stoch.Waveform.constant (bit net) ~horizon:1.0)
          ()
      in
      let expected = Netlist.Eval.nets c ~inputs:bit in
      let mismatch =
        List.find_opt
          (fun net ->
            let settled = r.Switchsim.Sim.net_high_time.(net) > 0.5 in
            settled <> expected.(net))
          (C.primary_outputs c)
      in
      match mismatch with
      | Some net ->
          fail "vector %d: simulator settles %s to %b, eval says %b" k
            (C.net_name c net)
            (r.Switchsim.Sim.net_high_time.(net) > 0.5)
            expected.(net)
      | None -> vectors (k + 1)
  in
  let* () = vectors 0 in
  (* (b) every (sampled) configuration of every cell used by the circuit
     computes the cell's function. *)
  let m = Bdd.manager () in
  let seen = Hashtbl.create 8 in
  let rec gates g =
    if g >= C.gate_count c then Pass
    else
      let cell = (C.gate_at c g).C.cell in
      let name = Cell.Gate.name cell in
      if Hashtbl.mem seen name then gates (g + 1)
      else begin
        Hashtbl.add seen name ();
        let reference = Cell.Gate.function_bdd m cell in
        let configs = Cell.Config.all cell in
        let n = List.length configs in
        let stride = if n <= max_configs_checked then 1 else n / max_configs_checked in
        let rec check i = function
          | [] -> gates (g + 1)
          | cfg :: rest ->
              if i mod stride <> 0 then check (i + 1) rest
              else
                let f =
                  Sp.Network.output_function m (Cell.Config.network cfg)
                in
                if not (Bdd.equal f reference) then
                  fail "%s configuration %d computes a different function"
                    name i
                else check (i + 1) rest
        in
        check 0 configs
      end
  in
  gates 0

(* --- 4. optimizer monotonicity and report consistency --- *)

let check_optimizer ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let best, worst =
    Reorder.Optimizer.best_and_worst (power ()) ~delay:(delay ()) c ~inputs
  in
  let le a b = a <= b +. (1e-9 *. (Float.abs a +. Float.abs b)) +. 1e-21 in
  let* () =
    if le best.Reorder.Optimizer.power_after best.Reorder.Optimizer.power_before
    then Pass
    else
      fail "Min_power increased power: %.12g -> %.12g W"
        best.Reorder.Optimizer.power_before best.Reorder.Optimizer.power_after
  in
  let* () =
    if le worst.Reorder.Optimizer.power_before worst.Reorder.Optimizer.power_after
    then Pass
    else
      fail "Max_power decreased power: %.12g -> %.12g W"
        worst.Reorder.Optimizer.power_before worst.Reorder.Optimizer.power_after
  in
  let* () =
    if le best.Reorder.Optimizer.power_after worst.Reorder.Optimizer.power_after
    then Pass
    else
      fail "best %.12g W above worst %.12g W"
        best.Reorder.Optimizer.power_after worst.Reorder.Optimizer.power_after
  in
  (* The chosen configuration must re-evaluate to the reported power. *)
  let rewritten = best.Reorder.Optimizer.circuit in
  let* () =
    let mismatch = ref None in
    Array.iteri
      (fun g chosen ->
        if (C.gate_at rewritten g).C.config <> chosen then mismatch := Some g)
      best.Reorder.Optimizer.configs;
    match !mismatch with
    | Some g -> fail "gate %d: rewritten config differs from report" g
    | None -> Pass
  in
  let* () =
    let analysis = Power.Analysis.run (power ()) rewritten ~inputs in
    let again = Power.Estimate.total (power ()) rewritten analysis in
    if close ~rtol:1e-9 again best.Reorder.Optimizer.power_after then Pass
    else
      fail "re-evaluated power %.12g W, report says %.12g W" again
        best.Reorder.Optimizer.power_after
  in
  let r =
    Reorder.Optimizer.reduction_percent
      ~best:best.Reorder.Optimizer.power_after
      ~worst:worst.Reorder.Optimizer.power_after
  in
  if r >= 0. && r <= 100. then Pass
  else fail "reduction_percent %.6g outside [0, 100]" r

(* --- 5. Netlist.Io round-trip --- *)

let check_roundtrip ~seed:_ c =
  let text = Netlist.Io.to_string c in
  match Netlist.Io.of_string text with
  | exception Netlist.Io.Parse_error { line; message } ->
      fail "printed netlist does not parse (line %d: %s)" line message
  | exception C.Invalid message ->
      fail "printed netlist does not validate: %s" message
  | c2 ->
      let* () =
        if Netlist.Io.to_string c2 = text then Pass
        else fail "print ∘ parse ∘ print is not a fixpoint"
      in
      let* () =
        if C.gate_count c2 = C.gate_count c && C.net_count c2 = C.net_count c
        then Pass
        else fail "gate/net counts changed across the round-trip"
      in
      let names c = List.init (C.net_count c) (C.net_name c) in
      let* () =
        if names c2 = names c then Pass
        else fail "net names changed across the round-trip"
      in
      let configs c =
        Array.to_list (Array.map (fun (g : C.gate) -> g.C.config) (C.gates c))
      in
      let* () =
        if configs c2 = configs c then Pass
        else fail "configurations changed across the round-trip"
      in
      let by_name c l = List.map (C.net_name c) l in
      if
        by_name c2 (C.primary_inputs c2) = by_name c (C.primary_inputs c)
        && by_name c2 (C.primary_outputs c2) = by_name c (C.primary_outputs c)
      then Pass
      else fail "primary input/output lists changed across the round-trip"

(* --- 6. density-propagation invariants --- *)

let c_densities = Obs.counter "power.densities_propagated"

let check_densities ~seed c =
  let before = Obs.value c_densities in
  let analysis = Power.Analysis.run (power ()) c ~inputs:(Gen.input_stats ~seed c) in
  let propagated = Obs.value c_densities - before in
  let* () =
    if propagated = C.gate_count c then Pass
    else
      fail "densities propagated %d times for %d gates (must be once per net)"
        propagated (C.gate_count c)
  in
  all_nets c 0 ~f:(fun net ->
      let s = Power.Analysis.stats analysis net in
      let module S = Stoch.Signal_stats in
      let p = S.prob s and d = S.density s in
      if not (Float.is_finite p && p >= 0. && p <= 1.) then
        fail "net %s: probability %.12g outside [0, 1]" (C.net_name c net) p
      else if not (Float.is_finite d && d >= 0.) then
        fail "net %s: negative or non-finite density %.12g" (C.net_name c net) d
      else Pass)

(* --- 7. series-parallel reordering equivalence --- *)

let check_sp_orderings ~seed:_ t =
  let orderings = Sp.Sp_tree.orderings t in
  let* () =
    let counted = Sp.Sp_tree.count_orderings t in
    if counted = List.length orderings then Pass
    else
      fail "count_orderings says %d, enumeration finds %d" counted
        (List.length orderings)
  in
  let m = Bdd.manager () in
  let reference = Sp.Sp_tree.conduction m Sp.Sp_tree.Nmos t in
  let* () =
    let rec check i = function
      | [] -> Pass
      | o :: rest ->
          if Bdd.equal (Sp.Sp_tree.conduction m Sp.Sp_tree.Nmos o) reference
          then check (i + 1) rest
          else fail "ordering %d conducts differently" i
    in
    check 0 orderings
  in
  let canon l =
    List.sort Sp.Sp_tree.compare (List.map Sp.Sp_tree.canonical l)
  in
  let pivoted = Sp.Sp_tree.pivot_orderings t in
  if canon pivoted = canon orderings then Pass
  else
    fail "pivot exploration visits %d configurations, enumeration %d"
      (List.length pivoted) (List.length orderings)

(* --- 8. attribution-ledger conservation --- *)

let check_attribution ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let report = Reorder.Optimizer.optimize (power ()) ~delay:(delay ()) c ~inputs in
  let ledger =
    Attrib.of_report (power ()) ~candidates:false ~before:c ~inputs report
  in
  let rec gates = function
    | [] ->
        let* () =
          if close ~rtol:1e-9 ledger.Attrib.total_after
               report.Reorder.Optimizer.power_after
          then Pass
          else
            fail "ledger after-total %.12g W, report says %.12g W"
              ledger.Attrib.total_after report.Reorder.Optimizer.power_after
        in
        let* () =
          if close ~rtol:1e-9 ledger.Attrib.total_before
               report.Reorder.Optimizer.power_before
          then Pass
          else
            fail "ledger before-total %.12g W, report says %.12g W"
              ledger.Attrib.total_before report.Reorder.Optimizer.power_before
        in
        let e = Attrib.conservation_error ledger in
        if e <= 1e-9 then Pass
        else fail "worst per-gate conservation error %.3g > 1e-9" e
    | (g : Attrib.gate_entry) :: rest -> (
        let* () =
          if close ~rtol:1e-9 (Attrib.node_sum g) g.Attrib.after_total then Pass
          else
            fail "gate %d (%s): node powers sum to %.12g W, gate total %.12g W"
              g.Attrib.index g.Attrib.out_net (Attrib.node_sum g)
              g.Attrib.after_total
        in
        let input_sum (n : Attrib.node_share) =
          Array.fold_left (fun acc (_, w) -> acc +. w) 0. n.Attrib.per_input
        in
        match
          List.find_opt
            (fun (n : Attrib.node_share) ->
              not (close ~rtol:1e-9 (input_sum n) n.Attrib.power))
            g.Attrib.nodes
        with
        | Some n ->
            fail
              "gate %d (%s): per-input contributions sum to %.12g W, node \
               power %.12g W"
              g.Attrib.index g.Attrib.out_net (input_sum n) n.Attrib.power
        | None -> gates rest)
  in
  gates (Array.to_list ledger.Attrib.gates)

(* --- 9. parallel determinism --- *)

(* One shared 4-domain pool, like the model tables: created on first
   use, torn down at exit. *)
let det_pool =
  lazy
    (let p = Par.Pool.create ~jobs:4 () in
     at_exit (fun () -> Par.Pool.shutdown p);
     p)

let check_parallel_determinism ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let pool = Lazy.force det_pool in
  let module O = Reorder.Optimizer in
  let run ?pool ?memo () =
    O.optimize (power ()) ~delay:(delay ()) ?pool ?memo c ~inputs
  in
  let seq = run () in
  let par = run ~pool () in
  (* Bit-identical, not close: the parallel driver folds worker results
     in submission order, so every float must match exactly. *)
  let* () =
    if par.O.power_before = seq.O.power_before then Pass
    else
      fail "power_before: parallel %.17g W, sequential %.17g W"
        par.O.power_before seq.O.power_before
  in
  let* () =
    if par.O.power_after = seq.O.power_after then Pass
    else
      fail "power_after: parallel %.17g W, sequential %.17g W"
        par.O.power_after seq.O.power_after
  in
  let* () =
    if par.O.configs = seq.O.configs then Pass
    else
      let g = ref 0 in
      Array.iteri
        (fun i s -> if par.O.configs.(i) <> s then g := i)
        seq.O.configs;
      fail "gate %d: parallel chose config %d, sequential %d" !g
        par.O.configs.(!g) seq.O.configs.(!g)
  in
  let* () =
    if par.O.configurations_explored = seq.O.configurations_explored then Pass
    else
      fail "configurations_explored: parallel %d, sequential %d"
        par.O.configurations_explored seq.O.configurations_explored
  in
  let ledger r =
    Attrib.of_report (power ()) ~candidates:false ~before:c ~inputs r
  in
  let ls = ledger seq and lp = ledger par in
  let* () =
    if
      lp.Attrib.total_before = ls.Attrib.total_before
      && lp.Attrib.total_after = ls.Attrib.total_after
    then Pass
    else
      fail "ledger totals: parallel %.17g/%.17g W, sequential %.17g/%.17g W"
        lp.Attrib.total_before lp.Attrib.total_after ls.Attrib.total_before
        ls.Attrib.total_after
  in
  (* Memoized runs too: the memo's winners are pure functions of the
     key, so domain count must not change them either. *)
  let mseq = run ~memo:(Reorder.Memo.create ()) () in
  let mpar = run ~pool ~memo:(Reorder.Memo.create ()) () in
  if mpar.O.power_after = mseq.O.power_after && mpar.O.configs = mseq.O.configs
  then Pass
  else
    fail "memoized runs diverge: parallel %.17g W, sequential %.17g W"
      mpar.O.power_after mseq.O.power_after

(* --- 11. archive round-trip --- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let check_archive_roundtrip ~seed c =
  let inputs = Gen.input_stats ~seed c in
  let report =
    Reorder.Optimizer.optimize (power ()) ~delay:(delay ()) c ~inputs
  in
  let ledger =
    Attrib.of_report (power ()) ~candidates:false ~before:c ~inputs report
  in
  let dir = Filename.temp_dir "treorder_oracle" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let p =
    Runlog.start ~subcommand:"proptest" ~argv:[ "archive-roundtrip" ] ()
  in
  Runlog.set_param p "seed" (string_of_int seed);
  Runlog.set_param p "circuit" (C.name c);
  Runlog.attach p ~name:"ledger" ~json:(Attrib.to_json ledger);
  let snapshot_json = Obs.snapshot_to_json (Obs.snapshot ()) in
  match Runlog.write ~id:"case" ~dir ~snapshot_json p with
  | Error e -> fail "archive write failed: %s" e
  | Ok run_dir -> (
      match Runlog.load_run run_dir with
      | Error e -> fail "archive does not load back: %s" e
      | Ok run -> (
          let m = run.Runlog.manifest in
          let* () =
            if m.Runlog.subcommand = "proptest" then Pass
            else fail "subcommand %S after round-trip" m.Runlog.subcommand
          in
          let* () =
            if List.assoc_opt "seed" m.Runlog.params = Some (string_of_int seed)
            then Pass
            else fail "seed parameter lost across the round-trip"
          in
          let* () =
            if m.Runlog.attachments = [ "ledger" ] then Pass
            else
              fail "attachment list [%s] after round-trip"
                (String.concat "; " m.Runlog.attachments)
          in
          match
            Result.bind (Runlog.read_attachment run "ledger")
              Runlog.ledger_of_json
          with
          | Error e -> fail "ledger does not decode: %s" e
          | Ok l ->
              (* %.17g rendering: every float must survive bit-exactly. *)
              let* () =
                if
                  l.Runlog.l_total_before = ledger.Attrib.total_before
                  && l.Runlog.l_total_after = ledger.Attrib.total_after
                then Pass
                else
                  fail
                    "ledger totals drift across the JSON round-trip: \
                     %.17g/%.17g vs %.17g/%.17g"
                    l.Runlog.l_total_before l.Runlog.l_total_after
                    ledger.Attrib.total_before ledger.Attrib.total_after
              in
              let* () =
                if
                  Array.length l.Runlog.l_gates
                  = Array.length ledger.Attrib.gates
                then Pass
                else
                  fail "gate count %d after round-trip, %d before"
                    (Array.length l.Runlog.l_gates)
                    (Array.length ledger.Attrib.gates)
              in
              let rec gates i =
                if i >= Array.length l.Runlog.l_gates then Pass
                else
                  let g = l.Runlog.l_gates.(i)
                  and e = ledger.Attrib.gates.(i) in
                  if
                    g.Runlog.g_index = e.Attrib.index
                    && g.Runlog.g_out = e.Attrib.out_net
                    && g.Runlog.g_cell = e.Attrib.cell
                    && g.Runlog.g_config_before = e.Attrib.config_before
                    && g.Runlog.g_config_after = e.Attrib.config_after
                    && g.Runlog.g_power_before = e.Attrib.before_total
                    && g.Runlog.g_power_after = e.Attrib.after_total
                  then gates (i + 1)
                  else
                    fail "gate %d (%s) drifts across the JSON round-trip" i
                      e.Attrib.out_net
              in
              let* () = gates 0 in
              let d = Runlog.diff run run in
              if Runlog.is_clean d then Pass
              else fail "self-diff is not clean:\n%s" (Runlog.render_diff d)))

(* --- 12. mc convergence: bit-parallel Monte-Carlo vs the others --- *)

(* Two halves. (a) Function preservation, exact: every lane of the
   word-parallel evaluator equals the scalar evaluator on that lane's
   vector. (b) Statistical convergence: MC per-net densities at a fixed
   seed agree with a switch-level simulation of the same input model
   within a few standard errors of BOTH estimators (each side carries
   its own sampling noise; the relative term covers MC's time
   discretization, which sees at most one transition per net per step). *)

let mc_sim_horizon = 500.
let mc_samples = 65536

let check_mc_convergence ~seed c =
  (* (a) exact per-lane agreement with Netlist.Eval *)
  let rng = Stoch.Rng.create (seed + 0x6dc0) in
  let words =
    List.map (fun net -> (net, Stoch.Rng.bits64 rng)) (C.primary_inputs c)
  in
  let values = Mc.eval_nets c ~inputs:(fun net -> List.assoc net words) in
  let rec lanes = function
    | [] -> Pass
    | lane :: rest -> (
        let bit net = (Mc.unpack (List.assoc net words)).(lane) in
        let expected = Netlist.Eval.nets c ~inputs:bit in
        let mismatch =
          List.find_opt
            (fun net -> (Mc.unpack values.(net)).(lane) <> expected.(net))
            (List.init (C.net_count c) Fun.id)
        in
        match mismatch with
        | Some net ->
            fail "lane %d: word eval says %b on %s, scalar eval %b" lane
              (Mc.unpack values.(net)).(lane)
              (C.net_name c net) expected.(net)
        | None -> lanes rest)
  in
  let* () = lanes [ 0; 31; 63 ] in
  (* (b) density convergence against the simulator *)
  let inputs = Gen.input_stats ~seed c in
  let r =
    Mc.estimate (power ()) ~samples:mc_samples ~seed:(seed + 0x3c) ~inputs c
  in
  let sim = Switchsim.Sim.build proc c in
  let sr =
    Switchsim.Sim.run_stats sim
      ~rng:(Stoch.Rng.create (seed + 0x51a))
      ~stats:inputs ~horizon:mc_sim_horizon ~warmup:(0.1 *. mc_sim_horizon) ()
  in
  let window = sr.Switchsim.Sim.horizon in
  (* The simulator's single finite realization carries two kinds of
     noise: Poisson noise on each net's toggle count, and a correlated
     component from slow inputs — a telegraph input with correlation
     time tau = 1/(r01 + r10) = 2 P (1-P) / D whose realized duty cycle
     drifts over the window drags every downstream density with it.
     Bound both, taking the slowest input's tau as the circuit-wide
     correlation scale. *)
  let tau_max =
    List.fold_left
      (fun acc net ->
        let s = inputs net in
        let p = Stoch.Signal_stats.prob s
        and d = Stoch.Signal_stats.density s in
        if d <= 0. then acc
        else Float.max acc (2. *. p *. (1. -. p) /. d))
      0. (C.primary_inputs c)
  in
  let corr = sqrt (2. *. tau_max /. window) in
  all_nets c 0 ~f:(fun net ->
      let toggles = sr.Switchsim.Sim.net_toggles.(net) in
      if toggles < 16 then Pass (* below the simulator's own resolution *)
      else
        let d_sim = float_of_int toggles /. window in
        let d_mc = r.Mc.density.(net) in
        let d_ref = Float.max d_sim d_mc in
        let se_sim = sqrt (float_of_int toggles) /. window in
        let bound =
          (4. *. (r.Mc.density_se.(net) +. se_sim +. (d_ref *. corr)))
          +. (0.06 *. d_ref)
        in
        let* () =
          if Float.abs (d_mc -. d_sim) <= bound then Pass
          else
            fail "net %s: mc density %.4g vs simulated %.4g (bound %.4g)"
              (C.net_name c net) d_mc d_sim bound
        in
        let p_sim =
          Stoch.Signal_stats.prob (Switchsim.Sim.measured_stats sr net)
        in
        let se_p_sim = sqrt (p_sim *. (1. -. p_sim)) *. corr in
        let p_bound = (4. *. (r.Mc.prob_se.(net) +. se_p_sim)) +. 0.02 in
        if Float.abs (r.Mc.prob.(net) -. p_sim) <= p_bound then Pass
        else
          fail "net %s: mc probability %.4g vs simulated %.4g (bound %.4g)"
            (C.net_name c net) r.Mc.prob.(net) p_sim p_bound)

(* --- 13. telemetry consistency --- *)

(* The sampler is a read-only observer: its ring must agree with the
   registry it watches. A manual-interval session (no background
   domain) makes the sample count deterministic. Skipped when a user
   session already owns the sampler (fuzz under --telemetry) — stopping
   it here would tear down their run's telemetry. *)

let check_telemetry_consistency ~seed c =
  if Telemetry.running () then Pass
  else begin
    let inputs = Gen.input_stats ~seed c in
    (* Heartbeats go to the trace sink; only install (and later remove)
       a scratch one when the harness didn't provide its own. *)
    let own_sink = not (Obs.tracing ()) in
    let trace_file =
      if own_sink then begin
        let path = Filename.temp_file "treorder_oracle" ".ndjson" in
        Obs.set_sink (Obs.file_sink path);
        Some path
      end
      else None
    in
    Fun.protect
      ~finally:(fun () ->
        Telemetry.stop ();
        if own_sink then begin
          Obs.close_sink ();
          Option.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            trace_file
        end)
    @@ fun () ->
    Telemetry.start ~interval:0. ~capacity:8 ();
    ignore (Telemetry.sample_now ());
    ignore (Reorder.Optimizer.optimize (power ()) ~delay:(delay ()) c ~inputs);
    ignore (Telemetry.sample_now ());
    ignore (Reorder.Optimizer.optimize (power ()) ~delay:(delay ()) c ~inputs);
    Telemetry.stop ();
    let series = Telemetry.series () in
    let* () =
      if List.length series >= 3 then Pass
      else fail "expected >= 3 ring samples, got %d" (List.length series)
    in
    (* (a) every counter is monotone non-decreasing across the series *)
    let rec monotone = function
      | a :: (b :: _ as rest) ->
          let drop =
            Array.to_list a.Telemetry.s_counters
            |> List.find_opt (fun (name, va) ->
                   match
                     Array.to_list b.Telemetry.s_counters
                     |> List.assoc_opt name
                   with
                   | Some vb -> vb < va
                   | None -> true)
          in
          let* () =
            match drop with
            | None -> Pass
            | Some (name, va) ->
                fail "counter %s drops below %d between samples" name va
          in
          monotone rest
      | _ -> Pass
    in
    let* () = monotone series in
    (* (b) the final (forced) sample equals the final registry snapshot,
       excluding the sampler's own obs.* cost counters — the last tick's
       cost lands after that tick read the registry. *)
    let not_obs (name, _) =
      not (String.length name >= 4 && String.sub name 0 4 = "obs.")
    in
    let final_sample =
      match Telemetry.last () with
      | Some s -> s
      | None -> assert false (* series is non-empty *)
    in
    let sample_counters =
      List.filter not_obs (Array.to_list final_sample.Telemetry.s_counters)
    in
    let snap_counters =
      List.filter not_obs (Obs.snapshot ()).Obs.counters
    in
    let* () =
      if sample_counters = snap_counters then Pass
      else fail "final telemetry sample disagrees with the Obs snapshot"
    in
    (* (c) the OpenMetrics rendering round-trips through the strict
       parser with every counter value intact *)
    let* () =
      match
        Telemetry.parse_openmetrics (Telemetry.to_openmetrics final_sample)
      with
      | Error e -> fail "OpenMetrics rendering rejected by parser: %s" e
      | Ok metrics ->
          let bad =
            List.find_opt
              (fun (name, v) ->
                let family, labels = Telemetry.metric_of_counter name in
                Telemetry.metric_value metrics ~labels (family ^ "_total")
                <> Some (float_of_int v))
              sample_counters
          in
          (match bad with
          | None -> Pass
          | Some (name, v) ->
              fail "counter %s = %d lost in the OpenMetrics round-trip" name v)
    in
    (* (d) heartbeats in the trace: percent in [0, 100], monotone within
       each phase *)
    match trace_file with
    | None -> Pass
    | Some path -> (
        match Trace.load path with
        | Error e -> fail "trace with heartbeats does not parse: %s" e
        | Ok events ->
            let tbl = Hashtbl.create 7 in
            let rec walk = function
              | [] -> Pass
              | Trace.Heartbeat { phase; percent; _ } :: rest ->
                  let* () =
                    if percent < 0. || percent > 100. then
                      fail "heartbeat percent %g outside [0, 100]" percent
                    else
                      match Hashtbl.find_opt tbl phase with
                      | Some prev when percent < prev ->
                          fail
                            "heartbeat percent drops %g -> %g within phase %S"
                            prev percent phase
                      | _ ->
                          Hashtbl.replace tbl phase percent;
                          Pass
                  in
                  walk rest
              | _ :: rest -> walk rest
            in
            walk events)
  end

(* --- 14. history consistency --- *)

(* Fleet analytics must be a pure function of the archived bytes:
   synthesize K run records with pinned timestamps and gnarly %.17g
   counter values plus one piecewise-constant step, write them in two
   different filesystem orders, and demand (a) extraction returns the
   source values bit-for-bit, (b) the full report (trends, shifts,
   JSON) is byte-identical regardless of scan order, (c) the injected
   step is attributed to exactly the first shifted run, and (d) the
   HTML dashboard round-trips through its own strict validator with
   every rendered series accounted for. *)

let check_history_consistency ~seed c =
  let name = C.name c in
  let k = 5 + (abs seed mod 4) in
  let split = 2 + (abs seed mod (k - 3)) in
  (* bit-exactness fodder: non-terminating binary expansions *)
  let value i = (float_of_int (i + 1) /. 3.) +. (float_of_int seed /. 7.) in
  let step i = if i >= split then 7500. else 5000. in
  let esc = Trace.Json.escape in
  let write_text path text =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text)
  in
  let write_record dir i =
    let run_dir = Filename.concat dir (Printf.sprintf "r%02d" i) in
    Unix.mkdir run_dir 0o755;
    write_text
      (Filename.concat run_dir "snapshot.json")
      (Printf.sprintf
         "{\"counters\":{\"oracle.step\":%.17g,\"oracle.value\":%.17g},\"distributions\":{},\"spans\":{},\"gc\":{}}"
         (step i) (value i));
    write_text
      (Filename.concat run_dir "manifest.json")
      (Printf.sprintf
         "{\"runlog_version\":1,\"tool\":\"treorder\",\"tool_version\":\"oracle\",\"subcommand\":\"optimize\",\"argv\":[\"optimize\",%s],\"inputs\":[],\"params\":{\"circuit\":%s,\"seed\":\"42\"},\"started\":%d,\"finished\":%d.25,\"attachments\":[]}"
         (esc name) (esc name)
         (1700000000 + i)
         (1700000000 + i))
  in
  let with_archive order f =
    let dir = Filename.temp_dir "treorder_oracle" "" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    List.iter (write_record dir) order;
    f dir
  in
  let metrics = [ "oracle.step"; "oracle.value"; "wall_s" ] in
  let report_of dir =
    match History.load_archive dir with
    | Error e -> Error e
    | Ok records -> Ok (records, History.build ~metrics records)
  in
  with_archive (List.init k Fun.id) @@ fun dir_fwd ->
  with_archive (List.rev (List.init k Fun.id)) @@ fun dir_rev ->
  match (report_of dir_fwd, report_of dir_rev) with
  | Error e, _ | _, Error e -> fail "archive does not load: %s" e
  | Ok (records, report), Ok (_, report_rev) -> (
      let* () =
        if List.length records = k then Pass
        else fail "extracted %d records, wrote %d" (List.length records) k
      in
      (* (a) source values survive extraction bit-for-bit *)
      let* () =
        let rec check i = function
          | [] -> Pass
          | r :: rest -> (
              match
                ( List.assoc_opt "oracle.value" r.History.r_metrics,
                  List.assoc_opt "oracle.step" r.History.r_metrics )
              with
              | Some v, Some s when v = value i && s = step i ->
                  check (i + 1) rest
              | Some v, _ when v <> value i ->
                  fail "run %d: oracle.value %.17g, wrote %.17g" i v (value i)
              | _ -> fail "run %d: extracted metrics incomplete" i)
        in
        check 0 records
      in
      (* (b) scan order cannot leak into the report; the two archives
         live in different scratch dirs, so normalize the roots out of
         the [source] fields before comparing bytes *)
      let* () =
        let strip root s =
          let b = Buffer.create (String.length s) in
          let rl = String.length root and n = String.length s in
          let i = ref 0 in
          while !i < n do
            if !i + rl <= n && String.sub s !i rl = root then (
              Buffer.add_string b "$ROOT";
              i := !i + rl)
            else (
              Buffer.add_char b s.[!i];
              incr i)
          done;
          Buffer.contents b
        in
        if
          strip dir_fwd (History.to_json report)
          = strip dir_rev (History.to_json report_rev)
        then Pass
        else fail "report differs across filesystem write orders"
      in
      (* (c) the injected step is attributed exactly *)
      let* () =
        match
          List.concat_map
            (fun (g : History.group) ->
              List.concat_map
                (fun (s : History.series) ->
                  if s.History.se_metric = "oracle.step" then
                    s.History.se_shifts
                  else [])
                g.History.g_series)
            report.History.groups
        with
        | [ sh ] ->
            if sh.History.sh_index <> split then
              fail "step flagged at index %d, injected at %d"
                sh.History.sh_index split
            else if sh.History.sh_direction <> History.Up then
              fail "step direction not Up"
            else Pass
        | shifts ->
            fail "expected exactly 1 shift on oracle.step, got %d"
              (List.length shifts)
      in
      (* (d) the dashboard validates, inventories every series, and is
         itself deterministic *)
      let html = Html.render report in
      let* () =
        if html = Html.render report then Pass
        else fail "dashboard render is not deterministic"
      in
      match Html.parse_report html with
      | Error e -> fail "dashboard fails its own validator: %s" e
      | Ok parsed ->
          let rendered =
            List.fold_left
              (fun acc (g : History.group) ->
                acc + List.length g.History.g_series)
              0 report.History.groups
          in
          if List.length parsed.Html.pr_series = rendered then Pass
          else
            fail "dashboard inventories %d series, report has %d"
              (List.length parsed.Html.pr_series)
              rendered)

(* --- 15. incremental equivalence --- *)

(* A session apply must be bit-identical to a cold full optimization of
   the edited circuit under the edited input model — report, winning
   configurations and attribution ledger alike — and stay so across
   domain counts and with a session memo. *)
let check_incremental_equivalence ~seed c =
  let module O = Reorder.Optimizer in
  let module I = Incremental in
  let base = Gen.input_stats ~seed c in
  (* One mutable input model shared by the sessions (which snapshot it
     at creation and then see edits only through the edit language) and
     the cold reference (which reads it after the mirror mutation). *)
  let stats = Hashtbl.create 16 in
  List.iter (fun pi -> Hashtbl.replace stats pi (base pi)) (C.primary_inputs c);
  let inputs n = Hashtbl.find stats n in
  let rng = Stoch.Rng.create ((seed * 2) + 1) in
  let pis = Array.of_list (C.primary_inputs c) in
  let stat_edit () =
    let pi = pis.(Stoch.Rng.int rng (Array.length pis)) in
    let s =
      Stoch.Signal_stats.make
        ~prob:(Stoch.Rng.float_range rng 0.05 0.95)
        ~density:(Stoch.Rng.float_range rng 1e5 2e8)
    in
    I.Set_input_stats (pi, s)
  in
  let config_edit circuit =
    let g = Stoch.Rng.int rng (C.gate_count circuit) in
    let gate = C.gate_at circuit g in
    let k = Cell.Gate.config_count gate.C.cell in
    I.Replace_gate (g, { gate with C.config = Stoch.Rng.int rng k })
  in
  (* Mirror the session's edit semantics onto a cold-reference circuit
     and the shared input model. *)
  let apply_cold circuit edits =
    let gates = C.gates circuit in
    List.iter
      (function
        | I.Set_input_stats (n, s) -> Hashtbl.replace stats n s
        | I.Replace_gate (g, gate) -> gates.(g) <- gate
        | I.Set_external_load _ | I.Set_objective _ -> ())
      edits;
    C.create ~name:(C.name circuit)
      ~net_names:(Array.init (C.net_count circuit) (C.net_name circuit))
      ~primary_inputs:(C.primary_inputs circuit)
      ~primary_outputs:(C.primary_outputs circuit)
      ~gates:(Array.to_list gates)
  in
  let compare_cold ?(memoized = false) label sess edited =
    let rep = I.report sess in
    let el = I.external_load sess in
    (* A memoized session decides from the memo's quantized
       representatives, so its cold reference must be memoized too (a
       fresh memo: misses are pure functions of the key, so warm hits
       in the session return exactly what the fresh miss computes). *)
    let memo = if memoized then Some (Reorder.Memo.create ()) else None in
    let cold =
      O.optimize (power ()) ~delay:(delay ()) ~external_load:el ?memo edited
        ~inputs
    in
    let* () =
      if rep.O.power_before = cold.O.power_before then Pass
      else
        fail "%s: power_before: session %.17g W, cold %.17g W" label
          rep.O.power_before cold.O.power_before
    in
    let* () =
      if rep.O.power_after = cold.O.power_after then Pass
      else
        fail "%s: power_after: session %.17g W, cold %.17g W" label
          rep.O.power_after cold.O.power_after
    in
    let* () =
      if rep.O.configs = cold.O.configs then Pass
      else
        let g = ref 0 in
        Array.iteri
          (fun i s -> if rep.O.configs.(i) <> s then g := i)
          cold.O.configs;
        fail "%s: gate %d: session chose config %d, cold %d" label !g
          rep.O.configs.(!g) cold.O.configs.(!g)
    in
    match I.ledger sess with
    | None -> fail "%s: session lost its ledger" label
    | Some l ->
        let lc =
          Attrib.of_report (power ()) ~external_load:el ~before:edited ~inputs
            cold
        in
        let* () =
          if
            l.Attrib.total_before = lc.Attrib.total_before
            && l.Attrib.total_after = lc.Attrib.total_after
          then Pass
          else
            fail "%s: ledger totals: session %.17g/%.17g W, cold %.17g/%.17g W"
              label l.Attrib.total_before l.Attrib.total_after
              lc.Attrib.total_before lc.Attrib.total_after
        in
        let rec per_gate i =
          if i >= Array.length l.Attrib.gates then Pass
          else
            let a = l.Attrib.gates.(i) and b = lc.Attrib.gates.(i) in
            if
              a.Attrib.config_before = b.Attrib.config_before
              && a.Attrib.config_after = b.Attrib.config_after
              && a.Attrib.before_total = b.Attrib.before_total
              && a.Attrib.after_total = b.Attrib.after_total
            then per_gate (i + 1)
            else
              fail
                "%s: ledger gate %d: session %d->%d %.17g/%.17g W, cold \
                 %d->%d %.17g/%.17g W"
                label i a.Attrib.config_before a.Attrib.config_after
                a.Attrib.before_total a.Attrib.after_total
                b.Attrib.config_before b.Attrib.config_after
                b.Attrib.before_total b.Attrib.after_total
        in
        per_gate 0
  in
  let pool = Lazy.force det_pool in
  let make ?memoize ?pool () =
    I.create ?memoize ?pool (power ()) ~delay:(delay ()) c ~inputs
  in
  let sess = make () in
  let sess_pool = make ~pool () in
  let sess_memo = make ~memoize:true () in
  (* First batch: statistics edits plus a configuration flip (the §4.2
     split of the edit space), built against the settled circuit the
     three sessions share bit-identically. *)
  let settled = I.circuit sess in
  (* The memoized session may settle at different (quantization-tied)
     winners than the unmemoized ones, so its cold reference is built
     from its own settled circuit. *)
  let settled_memo = I.circuit sess_memo in
  let batch =
    [ stat_edit (); stat_edit () ]
    @ (if C.gate_count settled > 0 then [ config_edit settled ] else [])
  in
  let edited = apply_cold settled batch in
  let edited_memo = apply_cold settled_memo batch in
  ignore (I.apply sess batch);
  ignore (I.apply ~pool sess_pool batch);
  ignore (I.apply sess_memo batch);
  let* () = compare_cold "sequential" sess edited in
  let* () = compare_cold "jobs=4" sess_pool edited in
  let* () = compare_cold ~memoized:true "memoized" sess_memo edited_memo in
  (* Second apply on the same session: a stats-only batch over the
     re-settled state, so cutoffs and reconvergent cones get exercised
     from a warm cache rather than a fresh one. *)
  let batch2 = [ stat_edit () ] in
  let edited2 = apply_cold (I.circuit sess) batch2 in
  ignore (I.apply sess batch2);
  compare_cold "second apply" sess edited2

(* --- registry --- *)

let circuit_prop name generate check =
  Prop
    {
      name;
      generate;
      shrink = Shrink.circuit;
      print = Netlist.Io.to_string;
      check;
    }

let all () =
  [
    circuit_prop "exactness" Gen.tree_circuit check_exactness;
    circuit_prop "sim-power" Gen.tree_circuit check_sim_power;
    circuit_prop "vcd-roundtrip" Gen.circuit check_vcd_roundtrip;
    circuit_prop "function" Gen.circuit check_function;
    circuit_prop "optimizer" Gen.circuit check_optimizer;
    circuit_prop "io-roundtrip" Gen.circuit check_roundtrip;
    circuit_prop "densities" Gen.circuit check_densities;
    circuit_prop "attribution" Gen.circuit check_attribution;
    circuit_prop "parallel-determinism" Gen.circuit check_parallel_determinism;
    Prop
      {
        name = "sp-orderings";
        generate = Gen.sp_network;
        shrink = Shrink.sp;
        print = (fun t -> Sp.Sp_tree.to_string t);
        check = check_sp_orderings;
      };
    circuit_prop "archive-roundtrip" Gen.circuit check_archive_roundtrip;
    circuit_prop "mc-convergence" Gen.circuit check_mc_convergence;
    circuit_prop "telemetry-consistency" Gen.circuit
      check_telemetry_consistency;
    circuit_prop "history-consistency" Gen.circuit check_history_consistency;
    circuit_prop "incremental-equivalence" Gen.circuit
      check_incremental_equivalence;
  ]

let names () = List.map Runner.name (all ())
let find name = List.find_opt (fun p -> Runner.name p = name) (all ())
