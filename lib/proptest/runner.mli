(** The property runner: seed-reproducible case generation, checking,
    and greedy counterexample shrinking.

    Case [i] of a run with base seed [s] is generated from the derived
    seed [s + i] (SplitMix64 decorrelates consecutive seeds), and that
    same derived seed parameterizes the property's stimulus
    ({!Gen.input_stats}, {!Gen.vector}). A failure report therefore
    carries a single integer: re-running the property with
    [~seed:case_seed ~count:1] regenerates the failing case exactly.

    Instrumented with three {!Obs} counters: [proptest.cases_run] (one
    per generated case), [proptest.shrink_steps] (accepted shrinking
    steps) and [proptest.counterexamples]. *)

type outcome = Pass | Fail of string

type 'a property = {
  name : string;
  generate : Stoch.Rng.t -> size:int -> 'a;
  shrink : 'a -> 'a list;
  print : 'a -> string;
      (** Parseable rendering of a case — {!Netlist.Io.to_string} for
          circuit properties, so a reported counterexample can be fed
          back through the CLI. *)
  check : seed:int -> 'a -> outcome;
      (** Must be deterministic in [(seed, case)]. Exceptions escaping
          [check] are converted into failures by the runner. *)
}

type t = Prop : 'a property -> t  (** existential wrapper *)

val name : t -> string

type counterexample = {
  case_seed : int;  (** reproduces the case: [run ~seed:case_seed ~count:1] *)
  case_index : int;  (** index within the failing run *)
  message : string;  (** of the shrunk case *)
  shrink_steps : int;
  printed : string;  (** the shrunk case, via [print] *)
}

type result = {
  property : string;
  cases_run : int;
  counterexample : counterexample option;
}

val run : ?seed:int -> ?count:int -> ?size:int -> t -> result
(** [run ~seed ~count ~size p] checks [count] freshly generated cases
    (default [seed] 42, [count] 200, [size] 12 — the size bound the
    generator receives, e.g. the maximum gate count). Stops at the first
    failure and shrinks it to a local minimum: at each step the first
    still-failing candidate from [shrink] is adopted; the loop ends when
    no candidate fails (or after 1000 steps). *)

val pp_result : Format.formatter -> result -> unit
(** One [ok] line, or a multi-line failure report with the reproducing
    seed and the shrunk printed case. *)
