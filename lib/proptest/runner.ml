let c_cases_run = Obs.counter "proptest.cases_run"
let c_shrink_steps = Obs.counter "proptest.shrink_steps"
let c_counterexamples = Obs.counter "proptest.counterexamples"

type outcome = Pass | Fail of string

type 'a property = {
  name : string;
  generate : Stoch.Rng.t -> size:int -> 'a;
  shrink : 'a -> 'a list;
  print : 'a -> string;
  check : seed:int -> 'a -> outcome;
}

type t = Prop : 'a property -> t

let name (Prop p) = p.name

type counterexample = {
  case_seed : int;
  case_index : int;
  message : string;
  shrink_steps : int;
  printed : string;
}

type result = {
  property : string;
  cases_run : int;
  counterexample : counterexample option;
}

(* A property must never escape with an exception: an unexpected raise
   is itself a counterexample (and remains one while shrinking). *)
let checked p ~seed case =
  match p.check ~seed case with
  | outcome -> outcome
  | exception e ->
      Fail (Printf.sprintf "unexpected exception: %s" (Printexc.to_string e))

let max_shrink_steps = 1000

let minimize p ~seed case message =
  let steps = ref 0 in
  let rec go case message =
    if !steps >= max_shrink_steps then (case, message)
    else
      let failing =
        List.find_map
          (fun candidate ->
            match checked p ~seed candidate with
            | Fail m -> Some (candidate, m)
            | Pass -> None)
          (p.shrink case)
      in
      match failing with
      | Some (candidate, m) ->
          incr steps;
          Obs.incr c_shrink_steps;
          go candidate m
      | None -> (case, message)
  in
  let case, message = go case message in
  (case, message, !steps)

let run ?(seed = 42) ?(count = 200) ?(size = 12) (Prop p) =
  Obs.span "proptest.run" @@ fun () ->
  let rec cases i =
    if i >= count then { property = p.name; cases_run = count; counterexample = None }
    else begin
      let case_seed = seed + i in
      let case = p.generate (Stoch.Rng.create case_seed) ~size in
      Obs.incr c_cases_run;
      match checked p ~seed:case_seed case with
      | Pass -> cases (i + 1)
      | Fail message ->
          Obs.incr c_counterexamples;
          let case, message, shrink_steps =
            minimize p ~seed:case_seed case message
          in
          {
            property = p.name;
            cases_run = i + 1;
            counterexample =
              Some
                {
                  case_seed;
                  case_index = i;
                  message;
                  shrink_steps;
                  printed = p.print case;
                };
          }
    end
  in
  cases 0

let pp_result ppf r =
  match r.counterexample with
  | None ->
      Format.fprintf ppf "%-20s ok (%d cases)" r.property r.cases_run
  | Some cex ->
      Format.fprintf ppf
        "%-20s FAILED at case %d after %d cases@\n\
        \  %s@\n\
        \  shrunk %d steps; reproduce with --seed %d --count 1@\n\
         %s"
        r.property cex.case_index r.cases_run cex.message cex.shrink_steps
        cex.case_seed cex.printed
