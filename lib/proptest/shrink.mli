(** Counterexample shrinking.

    Each function returns candidate simplifications of a failing case,
    ordered most-aggressive first; every candidate is strictly smaller
    than its parent under a well-founded size measure (gate count, then
    net count, then output count, then the sum of configuration
    indices — leaf count for SP networks), so the greedy
    first-failing-candidate loop in {!Runner} always terminates. *)

val circuit : Netlist.Circuit.t -> Netlist.Circuit.t list
(** Candidates, in order:
    - the fan-in cone of each half of the primary outputs (when the
      circuit has more than one),
    - the circuit with one gate {e bypassed} — its readers rewired to
      the gate's first fanin and dead logic trimmed — for every gate,
    - the circuit with one gate's configuration reset to the reference
      ordering, for every gate with a non-zero configuration.

    Net names are preserved, so name-keyed stimuli ({!Gen.input_stats},
    {!Gen.vector}) are stable across shrinking. Candidates that fail
    {!Netlist.Circuit.create} validation are dropped. *)

val sp : Sp.Sp_tree.t -> Sp.Sp_tree.t list
(** Collapse series-parallel subtrees: replace the root by each child,
    drop one child of the root (the smart constructors re-normalize),
    and recursively shrink each child in place. *)
