module C = Netlist.Circuit

(* Trim logic not feeding any primary output, keeping the original
   name (Circuit.cone appends "_cone", which would grow unboundedly
   over repeated shrink steps). *)
let trimmed c =
  C.with_name (C.cone c (C.primary_outputs c)) (C.name c)

(* Remove gate [g], rewiring every reader of its output (and the output
   list) to the gate's first fanin, then trim dead logic. *)
let bypass_gate c g =
  let victim = C.gate_at c g in
  let out = victim.C.output in
  let sub n = if n = out then victim.C.fanins.(0) else n in
  (* Renumber nets: [out] disappears. *)
  let remap = Array.make (C.net_count c) (-1) in
  let names = ref [] in
  let next = ref 0 in
  for n = 0 to C.net_count c - 1 do
    if n <> out then begin
      remap.(n) <- !next;
      names := C.net_name c n :: !names;
      incr next
    end
  done;
  let map n = remap.(sub n) in
  let gates =
    List.filter_map
      (fun g' ->
        if g' = g then None
        else
          let gate = C.gate_at c g' in
          Some
            {
              gate with
              C.fanins = Array.map map gate.C.fanins;
              output = map gate.C.output;
            })
      (List.init (C.gate_count c) Fun.id)
  in
  let dedupe l =
    List.rev
      (List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) [] l)
  in
  trimmed
    (C.create ~name:(C.name c)
       ~net_names:(Array.of_list (List.rev !names))
       ~primary_inputs:(List.map map (C.primary_inputs c))
       ~primary_outputs:(dedupe (List.map map (C.primary_outputs c)))
       ~gates)

let halve_outputs c =
  match C.primary_outputs c with
  | [] | [ _ ] -> []
  | outs ->
      let n = List.length outs in
      let first = List.filteri (fun i _ -> i < n / 2) outs in
      let second = List.filteri (fun i _ -> i >= n / 2) outs in
      [ C.with_name (C.cone c first) (C.name c);
        C.with_name (C.cone c second) (C.name c) ]

let reset_configs c =
  List.filter_map
    (fun g ->
      let gate = C.gate_at c g in
      if gate.C.config = 0 then None
      else
        let configs =
          Array.init (C.gate_count c) (fun g' ->
              if g' = g then 0 else (C.gate_at c g').C.config)
        in
        Some (C.with_configs c configs))
    (List.init (C.gate_count c) Fun.id)

let circuit c =
  let attempt f = try Some (f ()) with C.Invalid _ -> None in
  let bypasses =
    List.filter_map
      (fun g -> attempt (fun () -> bypass_gate c g))
      (List.init (C.gate_count c) Fun.id)
  in
  halve_outputs c @ bypasses @ reset_configs c

(* --- series-parallel networks --- *)

let rec sp t =
  match (t : Sp.Sp_tree.t) with
  | Sp.Sp_tree.Leaf _ -> []
  | Sp.Sp_tree.Series children | Sp.Sp_tree.Parallel children ->
      let rebuild =
        match t with
        | Sp.Sp_tree.Series _ -> Sp.Sp_tree.series
        | _ -> Sp.Sp_tree.parallel
      in
      let n = List.length children in
      (* Promote each child to the root. *)
      children
      (* Drop one child (series/parallel of one child collapses to it). *)
      @ List.init n (fun i ->
            rebuild (List.filteri (fun j _ -> j <> i) children))
      (* Shrink one child in place. *)
      @ List.concat
          (List.mapi
             (fun i child ->
               List.map
                 (fun child' ->
                   rebuild
                     (List.mapi (fun j c -> if j = i then child' else c) children))
                 (sp child))
             children)
