(** Seed-reproducible random inputs for the differential test suite.

    Everything here is driven by {!Stoch.Rng} (SplitMix64), so a case is
    reproduced exactly by re-running with the same integer seed. Input
    statistics and test vectors are keyed by {e net name} rather than by
    net id: a shrunk circuit (which preserves the names of the nets it
    keeps) sees exactly the statistics the original failing circuit saw,
    so shrinking never changes the stimulus out from under a property. *)

val circuit : Stoch.Rng.t -> size:int -> Netlist.Circuit.t
(** Random multilevel DAG over the whole Table-2 library: 1-7 primary
    inputs, 1-[size] gates with locality-biased fanins (so depth grows
    with gate count), uniformly random configurations, every unread gate
    output a primary output. The result always passes
    {!Netlist.Circuit.create} validation. *)

val tree_circuit : Stoch.Rng.t -> size:int -> Netlist.Circuit.t
(** Random {e read-once} circuit: every net (input or gate output) fans
    out to at most one pin, and the fanins of each gate are pairwise
    distinct. On such circuits the paper's gate-local density
    propagation is free of its spatial-independence bias, so it must
    agree with the exact global-BDD computation — the [exactness]
    oracle's input family. *)

val sp_network : Stoch.Rng.t -> size:int -> Sp.Sp_tree.t
(** Random series-parallel network over at most [size] (capped at 6)
    distinct inputs: recursive random partition into series / parallel
    groups, then scrambled by a random walk of the paper's Fig. 4
    pivoting steps, so generated networks are spread over the whole
    reordering class rather than pinned to a canonical shape. *)

val input_stats :
  seed:int ->
  ?max_density:float ->
  Netlist.Circuit.t ->
  Netlist.Circuit.net ->
  Stoch.Signal_stats.t
(** Deterministic per-net input statistics: probability uniform in
    [\[0.05, 0.95\]], density uniform in [\[0.05, max_density\]]
    (default 2 transitions per time unit), drawn from a stream keyed by
    [(seed, net name)]. Stable under shrinking. *)

val vector :
  seed:int -> int -> Netlist.Circuit.t -> Netlist.Circuit.net -> bool
(** [vector ~seed k c net]: the [k]-th deterministic input vector for
    [c], again keyed by [(seed, k, net name)]. *)
