module C = Netlist.Circuit
module M = Power.Model

let c_ledgers = Obs.counter "attrib.ledgers_built"

type node_share = {
  node : Sp.Network.node;
  probability : float;
  capacitance : float;
  transitions : float;
  power : float;
  per_input : (string * float) array;
}

type gate_entry = {
  index : int;
  cell : string;
  out_net : string;
  config_before : int;
  config_after : int;
  before_total : float;
  before_internal : float;
  after_total : float;
  after_internal : float;
  nodes : node_share list;
  candidates : (int * float) array;
}

type t = {
  circuit : string;
  external_load : float;
  total_before : float;
  total_after : float;
  gates : gate_entry array;
}

(* Per-input power of one node: the node's ½·C·Vdd² scale applied to
   each pin's transition contribution. The pin shares sum to the node
   power only up to reassociation; conservation of the *node* totals
   against the gate total is exact by construction in Power.Model. *)
let node_share_of circuit (gate : C.gate) ~vdd (np : M.node_power) =
  let scale = 0.5 *. np.M.capacitance *. vdd *. vdd in
  {
    node = np.M.node;
    probability = np.M.probability;
    capacitance = np.M.capacitance;
    transitions = np.M.transitions;
    power = np.M.power;
    per_input =
      Array.mapi
        (fun pin t_i -> (C.net_name circuit gate.C.fanins.(pin), scale *. t_i))
        np.M.by_input;
  }

let gate_entry table ?(external_load = 20e-15) ?(candidates = true) ~before
    ~analysis ~config_after g =
  let gate = C.gate_at before g in
  let vdd = (Power.Model.process table).Cell.Process.vdd in
  let input_stats = Power.Analysis.gate_input_stats analysis before g in
  let groups = M.groups_of_nets gate.C.fanins in
  let load = Power.Estimate.output_load table ~external_load before g in
  let power_of config =
    M.gate_power table gate.C.cell ~config ~input_stats ~groups ~load ()
  in
  let gp_before = power_of gate.C.config in
  let gp_after =
    if config_after = gate.C.config then gp_before else power_of config_after
  in
  {
    index = g;
    cell = Cell.Gate.name gate.C.cell;
    out_net = C.net_name before gate.C.output;
    config_before = gate.C.config;
    config_after;
    before_total = gp_before.M.total;
    before_internal = gp_before.M.internal;
    after_total = gp_after.M.total;
    after_internal = gp_after.M.internal;
    nodes = List.map (node_share_of before gate ~vdd) gp_after.M.nodes;
    candidates =
      (if not candidates then [||]
       else
         Array.init
           (Cell.Gate.config_count gate.C.cell)
           (fun k -> (k, (power_of k).M.total)));
  }

let of_entries ~circuit ~external_load gates =
  let sum f = Array.fold_left (fun acc e -> acc +. f e) 0. gates in
  {
    circuit;
    external_load;
    total_before = sum (fun e -> e.before_total);
    total_after = sum (fun e -> e.after_total);
    gates;
  }

let settle e =
  if
    e.config_before = e.config_after
    && e.before_total = e.after_total
    && e.before_internal = e.after_internal
  then e (* already settled: keep the record (ledger-patch hot path) *)
  else
    {
      e with
      config_before = e.config_after;
      before_total = e.after_total;
      before_internal = e.after_internal;
    }

let of_report table ?(external_load = 20e-15) ?(candidates = true) ~before
    ~inputs (report : Reorder.Optimizer.report) =
  Obs.span "attrib.build" @@ fun () ->
  Obs.incr c_ledgers;
  let n = C.gate_count before in
  if Array.length report.Reorder.Optimizer.configs <> n then
    invalid_arg "Attrib.of_report: report does not match the circuit";
  let analysis = Power.Analysis.run table before ~inputs in
  let gates =
    Array.init n (fun g ->
        gate_entry table ~external_load ~candidates ~before ~analysis
          ~config_after:report.Reorder.Optimizer.configs.(g) g)
  in
  of_entries ~circuit:(C.name before) ~external_load gates

(* --- queries --- *)

let node_sum entry =
  List.fold_left (fun acc ns -> acc +. ns.power) 0. entry.nodes

let conservation_error t =
  Array.fold_left
    (fun worst e ->
      let scale = Float.max (Float.abs e.after_total) 1e-30 in
      Float.max worst (Float.abs (node_sum e -. e.after_total) /. scale))
    0. t.gates

let top_consumers t k =
  let entries = Array.to_list t.gates in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.after_total a.after_total with
        | 0 -> compare a.index b.index
        | c -> c)
      entries
  in
  List.filteri (fun i _ -> i < k) sorted

let changed t =
  List.filter
    (fun e -> e.config_before <> e.config_after)
    (Array.to_list t.gates)

(* --- rendering --- *)

let node_label = function
  | Sp.Network.Output -> "output"
  | Sp.Network.Internal i -> Printf.sprintf "n%d" i
  | Sp.Network.Vdd -> "vdd"
  | Sp.Network.Vss -> "vss"

let percent_of part total =
  if total <= 0. then 0. else 100. *. part /. total

(* The input pin that causes the most attributed power, summed over the
   gate's nodes (tied pins already collapse onto the representative). *)
let top_input entry =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ns ->
      Array.iter
        (fun (name, w) ->
          Hashtbl.replace tbl name
            (w +. Option.value ~default:0. (Hashtbl.find_opt tbl name)))
        ns.per_input)
    entry.nodes;
  Hashtbl.fold
    (fun name w best ->
      match best with
      | Some (_, bw) when bw >= w -> best
      | _ -> Some (name, w))
    tbl None

(* Margin of the chosen configuration over the best alternative: how
   much worse (in %) the runner-up would have been. *)
let runner_up_margin entry =
  if Array.length entry.candidates = 0 then None
  else
    let alternative =
      Array.fold_left
        (fun best (k, w) ->
          if k = entry.config_after then best
          else
            match best with Some bw when bw <= w -> best | _ -> Some w)
        None entry.candidates
    in
    Option.map
      (fun alt ->
        if entry.after_total <= 0. then 0.
        else 100. *. (alt -. entry.after_total) /. entry.after_total)
      alternative

let render_explain ?(top = 5) t =
  let b = Buffer.create 2048 in
  let reduction =
    Reorder.Optimizer.reduction_percent ~best:t.total_after
      ~worst:t.total_before
  in
  Buffer.add_string b
    (Printf.sprintf
       "circuit %s: %d gates, %s -> %s (%.1f%% reduction, %d gates changed)\n"
       t.circuit (Array.length t.gates)
       (Report.Table.cell_power t.total_before)
       (Report.Table.cell_power t.total_after)
       reduction
       (List.length (changed t)));
  (* top power consumers *)
  let consumers = top_consumers t top in
  if consumers <> [] then begin
    Buffer.add_string b "\ntop power consumers (after reordering)\n";
    let table =
      Report.Table.create
        ~columns:
          [
            ("rank", Report.Table.Right);
            ("gate", Report.Table.Left);
            ("cell", Report.Table.Left);
            ("cfg", Report.Table.Right);
            ("power", Report.Table.Right);
            ("% total", Report.Table.Right);
            ("internal", Report.Table.Right);
            ("output", Report.Table.Right);
            ("top input", Report.Table.Left);
          ]
    in
    List.iteri
      (fun i e ->
        let top_in =
          match top_input e with
          | Some (name, w) when w > 0. ->
              Printf.sprintf "%s (%.0f%%)" name (percent_of w e.after_total)
          | Some _ | None -> "-"
        in
        Report.Table.add_row table
          [
            string_of_int (i + 1);
            e.out_net;
            e.cell;
            string_of_int e.config_after;
            Report.Table.cell_power e.after_total;
            Report.Table.cell_percent (percent_of e.after_total t.total_after);
            Report.Table.cell_power e.after_internal;
            Report.Table.cell_power (e.after_total -. e.after_internal);
            top_in;
          ])
      consumers;
    Buffer.add_string b (Report.Table.render table)
  end;
  (* why this ordering won *)
  let winners = changed t in
  if winners <> [] then begin
    Buffer.add_string b "\nwhy this ordering won (changed gates)\n";
    let table =
      Report.Table.create
        ~columns:
          [
            ("gate", Report.Table.Left);
            ("cell", Report.Table.Left);
            ("cfg", Report.Table.Left);
            ("before", Report.Table.Right);
            ("after", Report.Table.Right);
            ("saved", Report.Table.Right);
            ("internal", Report.Table.Right);
            ("runner-up", Report.Table.Right);
          ]
    in
    List.iter
      (fun e ->
        Report.Table.add_row table
          [
            e.out_net;
            e.cell;
            Printf.sprintf "%d->%d" e.config_before e.config_after;
            Report.Table.cell_power e.before_total;
            Report.Table.cell_power e.after_total;
            Report.Table.cell_percent
              (Reorder.Optimizer.reduction_percent ~best:e.after_total
                 ~worst:e.before_total)
            ^ "%";
            Printf.sprintf "%s->%s"
              (Report.Table.cell_power e.before_internal)
              (Report.Table.cell_power e.after_internal);
            (match runner_up_margin e with
            | Some m -> Printf.sprintf "+%.1f%%" m
            | None -> "-");
          ])
      winners;
    Buffer.add_string b (Report.Table.render table)
  end;
  (* per-node breakdown of the top consumers *)
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "\nnode breakdown: %s (%s, cfg %d, %s)\n" e.out_net
           e.cell e.config_after
           (Report.Table.cell_power e.after_total));
      let table =
        Report.Table.create
          ~columns:
            [
              ("node", Report.Table.Left);
              ("P(node)", Report.Table.Right);
              ("C (fF)", Report.Table.Right);
              ("trans/s", Report.Table.Right);
              ("power", Report.Table.Right);
              ("% gate", Report.Table.Right);
              ("top input", Report.Table.Left);
            ]
      in
      List.iter
        (fun ns ->
          let top_in =
            Array.fold_left
              (fun best (name, w) ->
                match best with
                | Some (_, bw) when bw >= w -> best
                | _ -> Some (name, w))
              None ns.per_input
          in
          Report.Table.add_row table
            [
              node_label ns.node;
              Report.Table.cell_float ~decimals:3 ns.probability;
              Report.Table.cell_float ~decimals:3 (ns.capacitance *. 1e15);
              Printf.sprintf "%.4g" ns.transitions;
              Report.Table.cell_power ns.power;
              Report.Table.cell_percent (percent_of ns.power e.after_total);
              (match top_in with
              | Some (name, w) when w > 0. ->
                  Printf.sprintf "%s (%.0f%%)" name (percent_of w ns.power)
              | Some _ | None -> "-");
            ])
        e.nodes;
      Buffer.add_string b (Report.Table.render table))
    consumers;
  Buffer.contents b

(* --- JSON --- *)

let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "0"
let str = Trace.Json.escape

let to_json t =
  let b = Buffer.create 4096 in
  let field ?(first = false) name =
    if not first then Buffer.add_char b ',';
    Buffer.add_string b (str name);
    Buffer.add_char b ':'
  in
  Buffer.add_char b '{';
  field ~first:true "circuit";
  Buffer.add_string b (str t.circuit);
  field "external_load";
  Buffer.add_string b (json_float t.external_load);
  field "total_before";
  Buffer.add_string b (json_float t.total_before);
  field "total_after";
  Buffer.add_string b (json_float t.total_after);
  field "reduction_percent";
  Buffer.add_string b
    (json_float
       (Reorder.Optimizer.reduction_percent ~best:t.total_after
          ~worst:t.total_before));
  field "gates";
  Buffer.add_char b '[';
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '{';
      field ~first:true "index";
      Buffer.add_string b (string_of_int e.index);
      field "cell";
      Buffer.add_string b (str e.cell);
      field "output";
      Buffer.add_string b (str e.out_net);
      field "config_before";
      Buffer.add_string b (string_of_int e.config_before);
      field "config_after";
      Buffer.add_string b (string_of_int e.config_after);
      field "power_before";
      Buffer.add_string b (json_float e.before_total);
      field "power_after";
      Buffer.add_string b (json_float e.after_total);
      field "internal_before";
      Buffer.add_string b (json_float e.before_internal);
      field "internal_after";
      Buffer.add_string b (json_float e.after_internal);
      field "nodes";
      Buffer.add_char b '[';
      List.iteri
        (fun j ns ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          field ~first:true "node";
          Buffer.add_string b (str (node_label ns.node));
          field "probability";
          Buffer.add_string b (json_float ns.probability);
          field "capacitance";
          Buffer.add_string b (json_float ns.capacitance);
          field "transitions";
          Buffer.add_string b (json_float ns.transitions);
          field "power";
          Buffer.add_string b (json_float ns.power);
          field "per_input";
          Buffer.add_char b '{';
          Array.iteri
            (fun k (name, w) ->
              if k > 0 then Buffer.add_char b ',';
              Buffer.add_string b (str name);
              Buffer.add_char b ':';
              Buffer.add_string b (json_float w))
            ns.per_input;
          Buffer.add_char b '}';
          Buffer.add_char b '}')
        e.nodes;
      Buffer.add_char b ']';
      field "candidates";
      Buffer.add_char b '{';
      Array.iteri
        (fun k (config, w) ->
          if k > 0 then Buffer.add_char b ',';
          Buffer.add_string b (str (string_of_int config));
          Buffer.add_char b ':';
          Buffer.add_string b (json_float w))
        e.candidates;
      Buffer.add_char b '}';
      Buffer.add_char b '}')
    t.gates;
  Buffer.add_char b ']';
  Buffer.add_char b '}';
  Buffer.contents b
