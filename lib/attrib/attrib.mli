(** Power-attribution ledger: {e where} the power of an optimized
    circuit goes and {e why} each gate's ordering won.

    The paper's central claim is that internal-node power — invisible
    to output-only models — decides which transistor ordering is best.
    This module makes that visible: for every gate of an
    {!Reorder.Optimizer} run it records the incumbent and chosen
    configuration powers and breaks the chosen configuration's power
    down per powered node (output node and each internal node), with
    each node's activity further attributed to the input pins whose
    toggles cause it (the [T(nk|xi)] terms of the H/G path model,
    §3.3).

    The breakdown is {e conservative by construction}: node
    contributions sum to the gate total and per-input contributions sum
    to the node transitions (same float summation order as
    {!Power.Model}), which the test suite and the [attribution]
    proptest oracle assert within float tolerance. *)

type node_share = {
  node : Sp.Network.node;
  probability : float;  (** equilibrium node probability *)
  capacitance : float;  (** F, output node includes the fan-out load *)
  transitions : float;  (** Σᵢ T(node|xᵢ) *)
  power : float;  (** W *)
  per_input : (string * float) array;
      (** per input pin: fanin {e net name} and the watts attributed to
          that pin's toggles (0 on pins tied to an earlier pin) *)
}

type gate_entry = {
  index : int;  (** gate index in the circuit *)
  cell : string;  (** library cell name *)
  out_net : string;  (** output net name — identifies the gate *)
  config_before : int;
  config_after : int;
  before_total : float;  (** W under [config_before] *)
  before_internal : float;
  after_total : float;  (** W under [config_after] *)
  after_internal : float;
  nodes : node_share list;  (** breakdown of [config_after], output first *)
  candidates : (int * float) array;
      (** total W of every configuration of the cell under the gate's
          input statistics and load (ascending config index);
          [[||]] when candidate enumeration was disabled *)
}

type t = {
  circuit : string;
  external_load : float;
  total_before : float;  (** Σ gate [before_total] *)
  total_after : float;  (** Σ gate [after_total] *)
  gates : gate_entry array;  (** by gate index *)
}

val of_report :
  Power.Model.table ->
  ?external_load:float ->
  ?candidates:bool ->
  before:Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  Reorder.Optimizer.report ->
  t
(** Build the ledger for an optimizer run. [before] must be the circuit
    the report was produced from (the one passed to
    {!Reorder.Optimizer.optimize}); statistics are recomputed once —
    they are configuration-independent (§4.2) so the same analysis
    serves both sides. [candidates] (default [true]) re-evaluates every
    configuration of each gate for the "margin" column; disable it when
    only the conservation data is needed (e.g. the proptest oracle).
    @raise Invalid_argument when the report's config vector does not
    match [before]. *)

(** {1 Incremental rebuilding}

    The incremental engine ({!Incremental}) patches a retained ledger
    instead of rebuilding it: entries of re-swept gates are recomputed
    with {!gate_entry}, clean entries are {!settle}d (the previous
    winner is the new incumbent — the optimizer's fixed point), and
    {!of_entries} re-sums the totals in the same index order as
    {!of_report}, so a patched ledger is bit-identical to one built
    cold from the edited circuit. *)

val gate_entry :
  Power.Model.table ->
  ?external_load:float ->
  ?candidates:bool ->
  before:Netlist.Circuit.t ->
  analysis:Power.Analysis.t ->
  config_after:int ->
  int ->
  gate_entry
(** One gate's entry, computed exactly as {!of_report} does (the
    incumbent configuration is read from [before]). *)

val of_entries :
  circuit:string -> external_load:float -> gate_entry array -> t
(** Assemble a ledger from per-gate entries (indexed by gate), summing
    the totals in index order. *)

val settle : gate_entry -> gate_entry
(** The entry of the same, untouched gate in a follow-up run: the
    previous [after] state becomes the [before] state too. *)

(** {1 Queries} *)

val node_sum : gate_entry -> float
(** Σ over [nodes] of [power] — equals [after_total] within float
    tolerance (the conservation invariant). *)

val conservation_error : t -> float
(** Worst relative gap [|node_sum - after_total| / max after_total]
    over all gates (0 for an empty circuit). *)

val top_consumers : t -> int -> gate_entry list
(** The [k] highest-powered gates after optimization, descending. *)

val changed : t -> gate_entry list
(** Gates whose configuration changed, by index. *)

(** {1 Rendering} *)

val render_explain : ?top:int -> t -> string
(** The [--explain] report: a ranked "top power consumers" table, a
    "why this ordering won" table over the changed gates, and per-node
    breakdowns of the [top] (default 5) consumers. Deterministic. *)

val to_json : t -> string
(** The whole ledger as one JSON object (machine consumption). *)
