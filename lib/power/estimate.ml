module C = Netlist.Circuit

type breakdown = {
  per_gate : float array;
  internal : float;
  output : float;
  total : float;
}

let d_gate_power = Obs.distribution "power.gate_power_uw"

let default_external_load = 20e-15

let output_load table ?(external_load = default_external_load) circuit g =
  let gate = C.gate_at circuit g in
  let fanout_pins = C.readers circuit gate.C.output in
  let pins =
    List.fold_left
      (fun acc (reader, pin) ->
        let cell = (C.gate_at circuit reader).C.cell in
        acc +. Model.input_pin_capacitance table cell pin)
      0. fanout_pins
  in
  if C.is_primary_output circuit gate.C.output then pins +. external_load
  else pins

let gate table ?external_load circuit analysis g ~config =
  let gate = C.gate_at circuit g in
  let input_stats = Analysis.gate_input_stats analysis circuit g in
  let groups = Model.groups_of_nets gate.C.fanins in
  let load = output_load table ?external_load circuit g in
  Model.gate_power table gate.C.cell ~config ~input_stats ~groups ~load ()

let circuit table ?external_load circuit_ analysis =
  Obs.span "power.estimate" @@ fun () ->
  let n = C.gate_count circuit_ in
  let per_gate = Array.make n 0. in
  let internal = ref 0. and output = ref 0. in
  for g = 0 to n - 1 do
    let power =
      gate table ?external_load circuit_ analysis g
        ~config:(C.gate_at circuit_ g).C.config
    in
    per_gate.(g) <- power.Model.total;
    Obs.observe d_gate_power (power.Model.total *. 1e6);
    internal := !internal +. power.Model.internal;
    output := !output +. power.Model.output
  done;
  {
    per_gate;
    internal = !internal;
    output = !output;
    total = !internal +. !output;
  }

let total table ?external_load circuit_ analysis =
  (circuit table ?external_load circuit_ analysis).total
