(** The paper's extended power-consumption model of a static CMOS gate
    (§3.3), including internal-node power.

    For every powered node [nk] of a configuration (output + internal),
    the model extracts the path functions [H_nk] (to vdd) and [G_nk]
    (to vss) and their Boolean differences with respect to each input.
    Given input statistics it then computes:

    - node equilibrium probability [P(nk) = P(H)/(P(H)+P(G))] (steady
      state of the paper's charge/discharge recurrence);
    - transitions caused by input [xi]:
      [T(nk|xi) = D(xi)·((1-P(nk))·P(∂H/∂xi) + P(nk)·P(∂G/∂xi))], which
      collapses to Najm's transition density at the output node;
    - node power [W(nk) = ½·C(nk)·Vdd²·Σᵢ T(nk|xi)].

    Symbolic data is cached per (cell, configuration) in a {!table}; the
    numeric evaluation for given input statistics is cheap, which is
    what makes exhaustive per-gate exploration fast (§4.1). *)

type table
(** Cache of per-configuration symbolic models for one process.

    The cache and pin-capacitance tables are mutex-guarded, so lookups
    (and the model builds they trigger) are safe from any domain. The
    intended multicore pattern is still one table per domain: worker
    domains call {!domain_local} to get a private fork (own BDD manager,
    own caches — no lock contention, and identical floats, since BDD
    probability evaluation depends only on the canonical ROBDD shape),
    and the coordinator calls {!merge_forks} at the join point. *)

val table : Cell.Process.t -> table
val process : table -> Cell.Process.t

val fork : table -> table
(** A fresh private table for the same process: new BDD manager, empty
    symbolic cache, and a copy of the pin-capacitance cache as built so
    far. Numeric results from a fork are bit-identical to the parent's
    (same process parameters, same canonical BDDs). *)

val domain_local : table -> table
(** [domain_local t] is [t] on the domain that created it, and a
    per-domain {!fork} of [t] (created on first use, then reused) on
    any other domain. The fork registry lives in [t], so one shared
    table transparently fans out to per-worker private models. *)

val merge_forks : table -> int
(** Fold every registered fork's manager-independent data (pin
    capacitances) back into the shared table — the explicit join-side
    merge after a parallel region. Symbolic models stay with their
    owning fork (they are tied to its BDD manager) and are reused by
    the same worker domain on the next region. Returns the number of
    forks merged. *)

type node_power = {
  node : Sp.Network.node;
  probability : float;  (** equilibrium probability of the node *)
  transitions : float;  (** Σᵢ T(node|xᵢ), transitions per time unit *)
  by_input : float array;
      (** [T(node|xᵢ)] per input pin (length = arity):
          [transitions = Σᵢ by_input.(i)] with identical float
          summation order, so the per-input attribution is conservative
          by construction. Tied pins carry their joint contribution on
          the representative pin and 0 elsewhere. *)
  capacitance : float;  (** node capacitance used, F *)
  power : float;  (** ½·C·Vdd²·transitions, W *)
}

type gate_power = {
  nodes : node_power list;  (** output node first *)
  internal : float;  (** W on internal nodes *)
  output : float;  (** W on the output node (with load) *)
  total : float;
}

val groups_of_nets : int array -> int array
(** [groups_of_nets fanins] maps each pin to the first pin bound to the
    same net: the [groups] argument for a gate instance whose fanins may
    tie one net to several pins (e.g. a majority built on an AOI222).
    Tied pins toggle {e together}; treating them as independent biases
    probabilities and densities. *)

val gate_power :
  table ->
  Cell.Gate.t ->
  config:int ->
  input_stats:Stoch.Signal_stats.t array ->
  ?groups:int array ->
  load:float ->
  unit ->
  gate_power
(** [load] is the capacitance hanging on the output net beyond the
    gate's own diffusion and wire (fan-out pins, external load).
    [groups] (default: all pins distinct) identifies pins tied to one
    net, per {!groups_of_nets}; tied pins must carry identical
    [input_stats].
    @raise Invalid_argument if [input_stats] or [groups] length differs
    from the arity, [groups] is not of the {!groups_of_nets} form, or
    [config] is out of range. *)

val output_stats :
  table ->
  Cell.Gate.t ->
  input_stats:Stoch.Signal_stats.t array ->
  ?groups:int array ->
  unit ->
  Stoch.Signal_stats.t
(** Output probability (Parker-McCluskey) and transition density (Najm).
    Identical for every configuration of the gate — the monotonicity
    property the greedy optimizer relies on (§4.2). *)

val output_density_contributions :
  table ->
  Cell.Gate.t ->
  input_stats:Stoch.Signal_stats.t array ->
  ?groups:int array ->
  unit ->
  float array
(** Per-input pin [P(∂f/∂xᵢ)·D(xᵢ)]: how much each input contributes to
    the output activity (used by the ripple-carry analysis, E5). Tied
    pins report their joint contribution on the representative pin and 0
    on the others. *)

val input_pin_capacitance : table -> Cell.Gate.t -> int -> float
(** Load presented by pin [i] of the gate (independent of
    configuration). *)

val cached_configs : table -> int
(** Number of (cell, configuration) models built so far (diagnostics). *)
