type t = Analytical | Mc | Switchsim

let all = [ Analytical; Mc; Switchsim ]

let name = function
  | Analytical -> "analytical"
  | Mc -> "mc"
  | Switchsim -> "switchsim"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "analytical" | "model" -> Analytical
  | "mc" | "montecarlo" | "monte-carlo" -> Mc
  | "switchsim" | "sim" -> Switchsim
  | _ -> raise Not_found

let pp fmt t = Format.pp_print_string fmt (name t)
