module C = Netlist.Circuit

(* §4.2: statistics are configuration-independent, so one propagation
   per net suffices — this counter makes that invariant testable. *)
let c_densities_propagated = Obs.counter "power.densities_propagated"

type t = { per_net : Stoch.Signal_stats.t array }

let gate_input_stats_of per_net (gate : C.gate) =
  Array.map (fun net -> per_net.(net)) gate.C.fanins

let run table circuit ~inputs =
  Obs.span "power.analysis" @@ fun () ->
  Telemetry.progress_begin ~phase:"power.analysis"
    ~total:(C.gate_count circuit);
  let per_net =
    Array.make (C.net_count circuit) (Stoch.Signal_stats.constant false)
  in
  List.iter
    (fun net -> per_net.(net) <- inputs net)
    (C.primary_inputs circuit);
  List.iter
    (fun g ->
      let gate = C.gate_at circuit g in
      let input_stats = gate_input_stats_of per_net gate in
      let groups = Model.groups_of_nets gate.C.fanins in
      Obs.incr c_densities_propagated;
      per_net.(gate.C.output) <-
        Model.output_stats table gate.C.cell ~input_stats ~groups ();
      Telemetry.progress_tick ())
    (C.topological_order circuit);
  { per_net }

let of_stats per_net = { per_net = Array.copy per_net }
let stats t net = t.per_net.(net)
let all_stats t = Array.copy t.per_net

let gate_input_stats t circuit g =
  gate_input_stats_of t.per_net (C.gate_at circuit g)

let total_density t =
  Array.fold_left
    (fun acc s -> acc +. Stoch.Signal_stats.density s)
    0. t.per_net
