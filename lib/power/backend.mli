(** Estimation-backend selector.

    The pipeline can obtain per-net activity (and from it power) three
    independent ways: the paper's analytical propagation
    ({!Power.Analysis} + {!Power.Estimate}), the bit-parallel
    Monte-Carlo engine ([Mc], correlation-exact sampling of the same
    Markov input model), and the event-driven switch-level simulator
    ([Switchsim.Sim], the measurement instrument of Table 3). This
    module only names the choice — the dispatch lives with the callers
    ([Audit], the CLI) so that [lib/power] does not depend on the
    simulators. *)

type t = Analytical | Mc | Switchsim

val all : t list
(** In the order above. *)

val name : t -> string
(** ["analytical"], ["mc"], ["switchsim"]. *)

val of_name : string -> t
(** Case-insensitive inverse of {!name}.
    @raise Not_found on anything else. *)

val pp : Format.formatter -> t -> unit
