module Stats = Stoch.Signal_stats

let c_model_hit = Obs.counter "power.model_hit"
let c_model_build = Obs.counter "power.model_build"
let c_model_fork = Obs.counter "power.model_forks"
let c_node_evals = Obs.counter "power.node_evals"
let c_gate_powers = Obs.counter "power.gate_powers"

type node_symbolic = {
  sym_node : Sp.Network.node;
  sym_cap : float;  (* junction + wire, excluding fan-out load *)
  h : Bdd.t;
  g : Bdd.t;
  dh : Bdd.t array;  (* per input pin; zero for non-representative pins *)
  dg : Bdd.t array;
}

type config_model = {
  nodes : node_symbolic list;  (* output first *)
  df : Bdd.t array;  (* ∂f/∂xi of the output function *)
  f : Bdd.t;
}

(* [lock] guards [cache] and [pin_caps] (and, transitively, [bdd]:
   models are only built while holding it). Symbolic models are tied to
   this table's BDD manager and never cross tables; worker domains get
   private forks via [domain_local], and only manager-independent data
   (pin capacitances) flows back through [merge_forks]. *)
type table = {
  proc : Cell.Process.t;
  bdd : Bdd.manager;
  cache : (string, config_model) Hashtbl.t;
  pin_caps : (string, float array) Hashtbl.t;
  lock : Mutex.t;
  owner : int;  (* Domain id the table was created on *)
  forks : (int, table) Hashtbl.t;  (* per-domain forks, guarded by forks_lock *)
  forks_lock : Mutex.t;
}

type node_power = {
  node : Sp.Network.node;
  probability : float;
  transitions : float;
  by_input : float array;
  capacitance : float;
  power : float;
}

type gate_power = {
  nodes : node_power list;
  internal : float;
  output : float;
  total : float;
}

let table proc =
  {
    proc;
    bdd = Bdd.manager ();
    cache = Hashtbl.create 256;
    pin_caps = Hashtbl.create 64;
    lock = Mutex.create ();
    owner = (Domain.self () :> int);
    forks = Hashtbl.create 8;
    forks_lock = Mutex.create ();
  }

let process t = t.proc

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let fork t =
  Obs.incr c_model_fork;
  let pin_caps = with_lock t.lock (fun () -> Hashtbl.copy t.pin_caps) in
  {
    proc = t.proc;
    bdd = Bdd.manager ();
    cache = Hashtbl.create 256;
    pin_caps;
    lock = Mutex.create ();
    owner = (Domain.self () :> int);
    forks = Hashtbl.create 1;
    forks_lock = Mutex.create ();
  }

let domain_local t =
  let id = (Domain.self () :> int) in
  if id = t.owner then t
  else
    with_lock t.forks_lock @@ fun () ->
    match Hashtbl.find_opt t.forks id with
    | Some f -> f
    | None ->
        let f = fork t in
        Hashtbl.add t.forks id f;
        f

let merge_forks t =
  let forks =
    with_lock t.forks_lock (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) t.forks [])
  in
  List.iter
    (fun f ->
      let entries =
        with_lock f.lock (fun () ->
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.pin_caps [])
      in
      with_lock t.lock (fun () ->
          List.iter
            (fun (k, v) ->
              if not (Hashtbl.mem t.pin_caps k) then
                Hashtbl.add t.pin_caps k (Array.copy v))
            entries))
    forks;
  List.length forks

let groups_of_nets fanins =
  Array.mapi
    (fun i net ->
      let rec first j = if fanins.(j) = net then j else first (j + 1) in
      ignore i;
      first 0)
    fanins

let identity_groups arity = Array.init arity Fun.id

let validate_groups ~arity groups =
  if Array.length groups <> arity then
    invalid_arg "Power.Model: groups length differs from gate arity";
  Array.iteri
    (fun i g ->
      if g < 0 || g > i then
        invalid_arg "Power.Model: groups must point at earlier pins";
      if groups.(g) <> g then
        invalid_arg "Power.Model: group representative must map to itself")
    groups

(* Pins tied to one net toggle together: substitute the representative
   pin's variable for every tied pin, then Boolean differences with
   respect to the representative capture the joint toggle. *)
let remap_to_groups m groups f =
  let result = ref f in
  Array.iteri
    (fun pin rep ->
      if rep <> pin then result := Bdd.compose !result pin (Bdd.var m rep))
    groups;
  !result

let cache_key cell config groups =
  let tied = Array.exists (fun i -> groups.(i) <> i) (identity_groups (Array.length groups)) in
  if tied then
    Printf.sprintf "%s/%d/%s" (Cell.Gate.name cell) config
      (String.concat "," (Array.to_list (Array.map string_of_int groups)))
  else Printf.sprintf "%s/%d" (Cell.Gate.name cell) config

let build_config_model t cell config_index groups =
  let configs = Cell.Config.all cell in
  let config =
    try List.nth configs config_index
    with Failure _ | Invalid_argument _ ->
      invalid_arg "Power.Model: configuration index out of range"
  in
  let network = Cell.Config.network config in
  let arity = Cell.Gate.arity cell in
  let m = t.bdd in
  let remap = remap_to_groups m groups in
  (* Differences only with respect to representative pins; others stay
     zero so downstream sums never double-count a tied net. *)
  let differences f =
    Array.init arity (fun i ->
        if groups.(i) = i then Bdd.boolean_difference f i else Bdd.zero m)
  in
  let symbolic node =
    let h = remap (Sp.Network.h_function m network node) in
    let g = remap (Sp.Network.g_function m network node) in
    {
      sym_node = node;
      sym_cap = Cell.Process.node_capacitance t.proc network node;
      h;
      g;
      dh = differences h;
      dg = differences g;
    }
  in
  let nodes = List.map symbolic (Sp.Network.power_nodes network) in
  let f = remap (Sp.Network.output_function m network) in
  { nodes; f; df = differences f }

(* The whole lookup-or-build runs under the table lock: a build mutates
   the BDD manager, and two concurrent builds (or a build racing a
   lookup) on one table would corrupt it. Worker domains avoid the
   contention entirely by operating on [domain_local] forks. *)
let get t cell config groups =
  let key = cache_key cell config groups in
  with_lock t.lock @@ fun () ->
  match Hashtbl.find_opt t.cache key with
  | Some m ->
      Obs.incr c_model_hit;
      m
  | None ->
      Obs.incr c_model_build;
      let m = build_config_model t cell config groups in
      Hashtbl.add t.cache key m;
      m

let check_stats cell input_stats =
  if Array.length input_stats <> Cell.Gate.arity cell then
    invalid_arg "Power.Model: input_stats length differs from gate arity"

let resolve_groups cell = function
  | None -> identity_groups (Cell.Gate.arity cell)
  | Some groups ->
      validate_groups ~arity:(Cell.Gate.arity cell) groups;
      groups

let prob_fn input_stats i = Stats.prob input_stats.(i)

(* The paper's steady-state node probability; a node that can never be
   driven (P(H)+P(G) = 0 under these statistics) is reported at 0. *)
let node_probability ~p_h ~p_g =
  let denom = p_h +. p_g in
  if denom <= 0. then 0. else p_h /. denom

let node_power_of t input_stats ~extra_cap ns =
  Obs.incr c_node_evals;
  let p = prob_fn input_stats in
  let p_h = Bdd.probability ns.h p and p_g = Bdd.probability ns.g p in
  let p_node = node_probability ~p_h ~p_g in
  let by_input = Array.make (Array.length ns.dh) 0. in
  let transitions = ref 0. in
  Array.iteri
    (fun i dh_i ->
      let d_i = Stats.density input_stats.(i) in
      if d_i > 0. then begin
        let toggle_h = Bdd.probability dh_i p in
        let toggle_g = Bdd.probability ns.dg.(i) p in
        let t_i = d_i *. (((1. -. p_node) *. toggle_h) +. (p_node *. toggle_g)) in
        by_input.(i) <- t_i;
        transitions := !transitions +. t_i
      end)
    ns.dh;
  let capacitance = ns.sym_cap +. extra_cap in
  let vdd = t.proc.Cell.Process.vdd in
  {
    node = ns.sym_node;
    probability = p_node;
    transitions = !transitions;
    by_input;
    capacitance;
    power = 0.5 *. capacitance *. vdd *. vdd *. !transitions;
  }

let gate_power t cell ~config ~input_stats ?groups ~load () =
  Obs.incr c_gate_powers;
  check_stats cell input_stats;
  if load < 0. then invalid_arg "Power.Model.gate_power: negative load";
  let groups = resolve_groups cell groups in
  let model = get t cell config groups in
  let nodes =
    List.map
      (fun ns ->
        let extra_cap =
          match ns.sym_node with Sp.Network.Output -> load | _ -> 0.
        in
        node_power_of t input_stats ~extra_cap ns)
      model.nodes
  in
  let split (internal, output) np =
    match np.node with
    | Sp.Network.Output -> (internal, output +. np.power)
    | _ -> (internal +. np.power, output)
  in
  let internal, output = List.fold_left split (0., 0.) nodes in
  { nodes; internal; output; total = internal +. output }

let output_stats t cell ~input_stats ?groups () =
  check_stats cell input_stats;
  let groups = resolve_groups cell groups in
  let model = get t cell 0 groups in
  let p = prob_fn input_stats in
  let prob = Bdd.probability model.f p in
  let density =
    Array.to_list model.df
    |> List.mapi (fun i df_i ->
           Stats.density input_stats.(i) *. Bdd.probability df_i p)
    |> List.fold_left ( +. ) 0.
  in
  Stats.make ~prob ~density

let output_density_contributions t cell ~input_stats ?groups () =
  check_stats cell input_stats;
  let groups = resolve_groups cell groups in
  let model = get t cell 0 groups in
  let p = prob_fn input_stats in
  Array.mapi
    (fun i df_i -> Stats.density input_stats.(i) *. Bdd.probability df_i p)
    model.df

let input_pin_capacitance t cell pin =
  let name = Cell.Gate.name cell in
  let caps =
    with_lock t.lock @@ fun () ->
    match Hashtbl.find_opt t.pin_caps name with
    | Some caps -> caps
    | None ->
        let network = Cell.Config.network (Cell.Config.reference cell) in
        let caps =
          Array.init (Cell.Gate.arity cell) (fun i ->
              Cell.Process.input_pin_capacitance t.proc network i)
        in
        Hashtbl.add t.pin_caps name caps;
        caps
  in
  if pin < 0 || pin >= Array.length caps then
    invalid_arg "Power.Model.input_pin_capacitance: pin out of range";
  caps.(pin)

let cached_configs t = with_lock t.lock (fun () -> Hashtbl.length t.cache)
