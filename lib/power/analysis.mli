(** Circuit-wide propagation of equilibrium probabilities and transition
    densities (the OBTAIN_PROBABILITIES pass of Fig. 3).

    Gates are visited in topological order; each output's statistics are
    computed from its fanins with {!Model.output_stats} under the
    spatial-independence assumption. Statistics are per {e net} and do
    not depend on any gate's chosen configuration (§4.2), so one pass
    serves every configuration choice. *)

type t

val run :
  Model.table ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  t
(** [inputs] gives the statistics of each primary input net. *)

val of_stats : Stoch.Signal_stats.t array -> t
(** Wrap an externally maintained per-net statistics array (indexed by
    net id, copied defensively). Used by the incremental engine, which
    patches only the dirty entries of a cached array instead of
    re-running {!run}. *)

val stats : t -> Netlist.Circuit.net -> Stoch.Signal_stats.t
val all_stats : t -> Stoch.Signal_stats.t array
(** Indexed by net id. *)

val gate_input_stats : t -> Netlist.Circuit.t -> int -> Stoch.Signal_stats.t array
(** Statistics of one gate's fanin pins, in pin order (the
    OBTAIN_PROB_AND_DENS step). *)

val total_density : t -> float
(** Sum of all net densities — a crude global activity figure. *)
