(** Per-net calibration audit: the analytical model against the
    switch-level simulator, net by net.

    The paper validates its probabilistic power model (§3–§4) against a
    switch-level simulation only at whole-circuit granularity (Table 3,
    columns E vs S). This audit performs the same comparison {e per
    net}: one analytical propagation ({!Power.Analysis.run}) and one
    simulation of the same circuit under the same input statistics, then
    an inner join on net id of predicted vs measured equilibrium
    probability and transition density, plus model vs simulated power
    per gate. Every net appears in both sides by construction — the
    measured side is {!Switchsim.Sim.measured_stats} over the very
    result whose [net_toggles] define measured density
    ([toggles / window], exactly).

    Error distributions are published through {!Obs} under
    [audit.net_density_error_percent] (absolute percent error, active
    nets only) and [audit.net_prob_error_abs] (absolute probability
    error, all nets), so audits feed the same snapshot/trace/regression
    machinery as the rest of the pipeline. *)

type net_row = {
  net : Netlist.Circuit.net;
  name : string;
  driver_gate : int option;  (** [None] for primary inputs *)
  driver : string;  (** cell name of the driver, or ["PI"] *)
  fanout : int;
  depth : int;  (** logic level of the driving gate, 0 for inputs *)
  pred_prob : float;
  meas_prob : float;
  prob_err : float;  (** [abs (pred - meas)] *)
  pred_density : float;  (** 1/s *)
  meas_density : float;  (** [toggles /. window], 1/s *)
  density_err_pct : float;
      (** signed, [100 (pred - meas) / max meas (1 / window)] *)
  toggles : int;
  sim_energy : float;  (** J deposited against this net *)
}

type gate_row = {
  gate : int;
  cell : string;
  output_name : string;
  model_power : float;  (** W, {!Power.Estimate.breakdown}[.per_gate] *)
  sim_power : float;  (** W, simulated energy over the window *)
  power_err_pct : float;  (** signed *)
}

type summary = {
  nets : int;
  active_nets : int;  (** nets with at least [min_toggles] toggles *)
  mean_density_err_pct : float;  (** mean absolute, active nets *)
  max_density_err_pct : float;  (** max absolute, active nets *)
  mean_prob_err : float;  (** mean absolute, all nets *)
  max_prob_err : float;
  model_total : float;  (** W *)
  sim_total : float;  (** W *)
  total_err_pct : float;  (** signed *)
}

type t = {
  circuit : string;
  window : float;  (** measurement window, s *)
  net_rows : net_row array;  (** by net id — no net missing *)
  gate_rows : gate_row array;  (** by gate index *)
  summary : summary;
  result : Switchsim.Sim.result;  (** the simulation audited against *)
}

val run :
  Power.Model.table ->
  ?external_load:float ->
  ?sim:Switchsim.Sim.t ->
  ?observer:Switchsim.Sim.observer ->
  ?warmup:float ->
  ?min_toggles:int ->
  rng:Stoch.Rng.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  horizon:float ->
  Netlist.Circuit.t ->
  t
(** Runs both sides and joins them. [sim] reuses an already-built
    simulation structure (it must be for this circuit); [observer] is
    forwarded to the run, so a VCD dump can be recorded from the exact
    simulation being audited. [min_toggles] (default 8) sets the
    activity threshold below which a net's density error is reported
    but excluded from the summary and the Obs distribution (relative
    error on a handful of toggles is noise, not calibration signal).
    Wrapped in the [audit.run] span. *)

val worst_nets : ?top:int -> t -> net_row list
(** Active nets ranked by absolute density error (worst first), then
    inactive ones, [top] (default all) in total. *)

val worst_gates : ?top:int -> t -> gate_row list
(** Gates ranked by absolute power error (worst first). *)

val render : ?top:int -> t -> string
(** Human-readable report: summary block, worst-calibrated nets table
    (driver, fan-out, depth, predicted vs measured P and D) and worst
    gates table. [top] (default 10) limits each table. *)

val to_json : t -> string
(** One JSON object: summary plus full per-net and per-gate arrays. *)

val to_ndjson : t -> string
(** One NDJSON line per net row (["kind":"net"]) and per gate row
    (["kind":"gate"]), then one ["kind":"summary"] line — greppable and
    [jq]-friendly. *)
