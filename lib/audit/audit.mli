(** Per-net calibration audit: the analytical model against a
    measurement backend, net by net.

    The paper validates its probabilistic power model (§3–§4) against a
    switch-level simulation only at whole-circuit granularity (Table 3,
    columns E vs S). This audit performs the same comparison {e per
    net}: one analytical propagation ({!Power.Analysis.run}) and one
    measurement of the same circuit under the same input statistics,
    then an inner join on net id of predicted vs measured equilibrium
    probability and transition density, plus model vs measured power
    per gate. Every net appears in both sides by construction.

    The measured side is selected by {!Power.Backend}: [Switchsim]
    (default) is the event-driven simulator — measured density IS
    [net_toggles / window] over the very {!Switchsim.Sim.result}
    audited; [Mc] is the bit-parallel Monte-Carlo engine ({!Mc}) —
    correlation-exact densities with per-net standard errors, far more
    samples per second than the simulator, at the price of modeling
    output-node switching only (gate rows compare against the model's
    output-node share; [Analytical] is rejected — it is the predicted
    side).

    Error distributions are published through {!Obs} under
    [audit.net_density_error_percent] (absolute percent error, active
    nets only) and [audit.net_prob_error_abs] (absolute probability
    error, all nets), so audits feed the same snapshot/trace/regression
    machinery as the rest of the pipeline. *)

type net_row = {
  net : Netlist.Circuit.net;
  name : string;
  driver_gate : int option;  (** [None] for primary inputs *)
  driver : string;  (** cell name of the driver, or ["PI"] *)
  fanout : int;
  depth : int;  (** logic level of the driving gate, 0 for inputs *)
  pred_prob : float;
  meas_prob : float;
  prob_err : float;  (** [abs (pred - meas)] *)
  pred_density : float;  (** 1/s *)
  meas_density : float;  (** 1/s; [toggles /. window] under switchsim *)
  meas_density_se : float;
      (** standard error of [meas_density] (mc backend; 0 under
          switchsim, which reports no error estimate) *)
  density_err_pct : float;
      (** signed, [100 (pred - meas) / max meas floor] where [floor] is
          one measured toggle (per window, or per summed lane-time
          under mc) *)
  toggles : int;
  sim_energy : float;  (** J deposited against this net *)
}

type gate_row = {
  gate : int;
  cell : string;
  output_name : string;
  model_power : float;  (** W, {!Power.Estimate.breakdown}[.per_gate] *)
  sim_power : float;  (** W, simulated energy over the window *)
  power_err_pct : float;  (** signed *)
}

type summary = {
  nets : int;
  active_nets : int;  (** nets with at least [min_toggles] toggles *)
  mean_density_err_pct : float;  (** mean absolute, active nets *)
  max_density_err_pct : float;  (** max absolute, active nets *)
  mean_prob_err : float;  (** mean absolute, all nets *)
  max_prob_err : float;
  model_total : float;  (** W *)
  sim_total : float;  (** W *)
  total_err_pct : float;  (** signed *)
}

type measurement =
  | Sim_result of Switchsim.Sim.result
  | Mc_result of Mc.result  (** the measurement audited against *)

type t = {
  circuit : string;
  backend : Power.Backend.t;  (** the measured side *)
  window : float;
      (** measurement window, s (per-trajectory window under mc) *)
  net_rows : net_row array;  (** by net id — no net missing *)
  gate_rows : gate_row array;  (** by gate index *)
  summary : summary;
  measurement : measurement;
}

val sim_result : t -> Switchsim.Sim.result
(** @raise Invalid_argument if the audit ran the mc backend. *)

val mc_result : t -> Mc.result
(** @raise Invalid_argument if the audit ran the switchsim backend. *)

val run :
  Power.Model.table ->
  ?external_load:float ->
  ?backend:Power.Backend.t ->
  ?sim:Switchsim.Sim.t ->
  ?observer:Switchsim.Sim.observer ->
  ?warmup:float ->
  ?min_toggles:int ->
  ?samples:int ->
  ?pool:Par.Pool.t ->
  rng:Stoch.Rng.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  horizon:float ->
  Netlist.Circuit.t ->
  t
(** Runs both sides and joins them. [backend] (default [Switchsim])
    selects the measured side; [Analytical] raises [Invalid_argument].
    [sim] reuses an already-built simulation structure (it must be for
    this circuit); [observer] is forwarded to the run, so a VCD dump
    can be recorded from the exact simulation being audited (switchsim
    backend only). [samples] and [pool] parameterize the mc backend
    (see {!Mc.estimate}; the mc seed is drawn from [rng], and [horizon]
    and [warmup] are ignored — the sample count sets the window).
    [min_toggles] (default 8) sets the activity threshold below which a
    net's density error is reported but excluded from the summary and
    the Obs distribution (relative error on a handful of toggles is
    noise, not calibration signal). Wrapped in the [audit.run] span. *)

val worst_nets : ?top:int -> t -> net_row list
(** Active nets ranked by absolute density error (worst first), then
    inactive ones, [top] (default all) in total. *)

val worst_gates : ?top:int -> t -> gate_row list
(** Gates ranked by absolute power error (worst first). *)

val render : ?top:int -> t -> string
(** Human-readable report: summary block, worst-calibrated nets table
    (driver, fan-out, depth, predicted vs measured P and D) and worst
    gates table. [top] (default 10) limits each table. *)

val to_json : t -> string
(** One JSON object: summary plus full per-net and per-gate arrays. *)

val to_ndjson : t -> string
(** One NDJSON line per net row (["kind":"net"]) and per gate row
    (["kind":"gate"]), then one ["kind":"summary"] line — greppable and
    [jq]-friendly. *)
