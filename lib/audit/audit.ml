module C = Netlist.Circuit
module Sim = Switchsim.Sim

let d_density_err = Obs.distribution "audit.net_density_error_percent"
let d_prob_err = Obs.distribution "audit.net_prob_error_abs"

type net_row = {
  net : C.net;
  name : string;
  driver_gate : int option;
  driver : string;
  fanout : int;
  depth : int;
  pred_prob : float;
  meas_prob : float;
  prob_err : float;
  pred_density : float;
  meas_density : float;
  meas_density_se : float;
  density_err_pct : float;
  toggles : int;
  sim_energy : float;
}

type gate_row = {
  gate : int;
  cell : string;
  output_name : string;
  model_power : float;
  sim_power : float;
  power_err_pct : float;
}

type summary = {
  nets : int;
  active_nets : int;
  mean_density_err_pct : float;
  max_density_err_pct : float;
  mean_prob_err : float;
  max_prob_err : float;
  model_total : float;
  sim_total : float;
  total_err_pct : float;
}

type measurement = Sim_result of Sim.result | Mc_result of Mc.result

type t = {
  circuit : string;
  backend : Power.Backend.t;
  window : float;
  net_rows : net_row array;
  gate_rows : gate_row array;
  summary : summary;
  measurement : measurement;
}

let sim_result t =
  match t.measurement with
  | Sim_result r -> r
  | Mc_result _ -> invalid_arg "Audit.sim_result: audit ran the mc backend"

let mc_result t =
  match t.measurement with
  | Mc_result m -> m
  | Sim_result _ ->
      invalid_arg "Audit.mc_result: audit ran the switchsim backend"

let signed_pct ~floor pred meas =
  100. *. (pred -. meas) /. Float.max (Float.abs meas) floor

let run table ?external_load ?(backend = Power.Backend.Switchsim) ?sim
    ?observer ?(warmup = 0.) ?(min_toggles = 8) ?samples ?pool ~rng ~inputs
    ~horizon circuit =
  Obs.span "audit.run" @@ fun () ->
  let proc = Power.Model.process table in
  let analysis = Power.Analysis.run table circuit ~inputs in
  let breakdown = Power.Estimate.circuit table ?external_load circuit analysis in
  let measurement =
    match backend with
    | Power.Backend.Analytical ->
        invalid_arg
          "Audit.run: the analytical model is the predicted side; measure \
           with the switchsim or mc backend"
    | Power.Backend.Switchsim ->
        let sim =
          match sim with
          | Some s -> s
          | None -> Sim.build proc ?external_load circuit
        in
        Sim_result
          (Sim.run_stats sim ~rng ~stats:inputs ~horizon ~warmup ?observer ())
    | Power.Backend.Mc ->
        (* Deterministic per caller seed: the engine wants an integer
           seed for its per-block split streams, so derive one from the
           caller's stream. *)
        let seed = Int64.to_int (Int64.logand (Stoch.Rng.bits64 rng) 0x3FFFFFFFL) in
        Mc_result (Mc.estimate table ?external_load ?pool ?samples ~seed ~inputs circuit)
  in
  let window =
    match measurement with
    | Sim_result r -> r.Sim.horizon
    | Mc_result m -> m.Mc.window
  in
  (* One measured toggle is the density resolution of the instrument:
     the whole window for the simulator, the summed lane-time for MC. *)
  let density_floor =
    match measurement with
    | Sim_result r -> 1. /. r.Sim.horizon
    | Mc_result m -> 1. /. (float_of_int m.Mc.trajectories *. m.Mc.window)
  in
  let meas_stats net =
    match measurement with
    | Sim_result r -> Sim.measured_stats r net
    | Mc_result m -> Mc.measured_stats m net
  in
  let meas_se net =
    match measurement with
    | Sim_result _ -> 0.
    | Mc_result m -> m.Mc.density_se.(net)
  in
  let net_toggles net =
    match measurement with
    | Sim_result r -> r.Sim.net_toggles.(net)
    | Mc_result m -> m.Mc.net_toggles.(net)
  in
  let net_energy net =
    match measurement with
    | Sim_result r -> r.Sim.per_net_energy.(net)
    | Mc_result m -> m.Mc.per_net_energy.(net)
  in
  (* MC evaluates functionally, so it sees output-node switching only:
     compare it against the model's output-node share, not the full
     gate power (which includes internal-node charging). *)
  let gate_model_power g =
    match measurement with
    | Sim_result _ -> breakdown.Power.Estimate.per_gate.(g)
    | Mc_result _ ->
        let gate = C.gate_at circuit g in
        (Power.Estimate.gate table ?external_load circuit analysis g
           ~config:gate.C.config)
          .Power.Model.output
  in
  let gate_meas_power g =
    match measurement with
    | Sim_result r -> r.Sim.per_gate_energy.(g) /. window
    | Mc_result m -> m.Mc.per_gate_energy.(g) /. window
  in
  let levels = C.levels circuit in
  (* One tick per joined net (the measurement itself reported its own
     phase — mc.run registers blocks — so this covers the join). *)
  Telemetry.progress_begin ~phase:"audit.join"
    ~total:(C.net_count circuit);
  let net_rows =
    Array.init (C.net_count circuit) (fun net ->
        Telemetry.progress_tick ();
        let pred = Power.Analysis.stats analysis net in
        let meas = meas_stats net in
        let pred_prob = Stoch.Signal_stats.prob pred in
        let meas_prob = Stoch.Signal_stats.prob meas in
        let pred_density = Stoch.Signal_stats.density pred in
        let meas_density = Stoch.Signal_stats.density meas in
        let driver_gate, driver, depth =
          match C.driver circuit net with
          | C.Primary_input -> (None, "PI", 0)
          | C.Driven_by g ->
              ( Some g,
                Cell.Gate.name (C.gate_at circuit g).C.cell,
                levels.(g) )
        in
        let toggles = net_toggles net in
        let prob_err = Float.abs (pred_prob -. meas_prob) in
        let density_err_pct =
          signed_pct ~floor:density_floor pred_density meas_density
        in
        Obs.observe d_prob_err prob_err;
        if toggles >= min_toggles then
          Obs.observe d_density_err (Float.abs density_err_pct);
        {
          net;
          name = C.net_name circuit net;
          driver_gate;
          driver;
          fanout = C.fanout_count circuit net;
          depth;
          pred_prob;
          meas_prob;
          prob_err;
          pred_density;
          meas_density;
          meas_density_se = meas_se net;
          density_err_pct;
          toggles;
          sim_energy = net_energy net;
        })
  in
  let gate_rows =
    Array.init (C.gate_count circuit) (fun g ->
        let gate = C.gate_at circuit g in
        let model_power = gate_model_power g in
        let sim_power = gate_meas_power g in
        {
          gate = g;
          cell = Cell.Gate.name gate.C.cell;
          output_name = C.net_name circuit gate.C.output;
          model_power;
          sim_power;
          power_err_pct = signed_pct ~floor:1e-12 model_power sim_power;
        })
  in
  let active = Array.to_list net_rows |> List.filter (fun n -> n.toggles >= min_toggles) in
  let mean f = function
    | [] -> 0.
    | l -> List.fold_left (fun a x -> a +. f x) 0. l /. float_of_int (List.length l)
  in
  let maxi f l = List.fold_left (fun a x -> Float.max a (f x)) 0. l in
  let all = Array.to_list net_rows in
  let model_total =
    match measurement with
    | Sim_result _ -> breakdown.Power.Estimate.total
    | Mc_result _ -> breakdown.Power.Estimate.output
  in
  let sim_total =
    match measurement with
    | Sim_result r -> r.Sim.power
    | Mc_result m -> m.Mc.power
  in
  let summary =
    {
      nets = Array.length net_rows;
      active_nets = List.length active;
      mean_density_err_pct = mean (fun n -> Float.abs n.density_err_pct) active;
      max_density_err_pct = maxi (fun n -> Float.abs n.density_err_pct) active;
      mean_prob_err = mean (fun n -> n.prob_err) all;
      max_prob_err = maxi (fun n -> n.prob_err) all;
      model_total;
      sim_total;
      total_err_pct = signed_pct ~floor:1e-12 model_total sim_total;
    }
  in
  { circuit = C.name circuit; backend; window; net_rows; gate_rows; summary;
    measurement }

let take top l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  match top with None -> l | Some n -> go n l

let worst_nets ?top t =
  let active, idle =
    Array.to_list t.net_rows
    |> List.partition (fun n -> Float.abs n.sim_energy > 0. || n.toggles > 0)
  in
  let by_err l =
    List.stable_sort
      (fun a b ->
        compare (Float.abs b.density_err_pct) (Float.abs a.density_err_pct))
      l
  in
  take top (by_err active @ by_err idle)

let worst_gates ?top t =
  Array.to_list t.gate_rows
  |> List.stable_sort (fun a b ->
         compare (Float.abs b.power_err_pct) (Float.abs a.power_err_pct))
  |> take top

let render ?(top = 10) t =
  let b = Buffer.create 2048 in
  let s = t.summary in
  let instrument =
    match t.measurement with
    | Sim_result _ -> ""
    | Mc_result m ->
        Printf.sprintf "; mc: %d samples in %d blocks, dt %s" m.Mc.samples
          m.Mc.blocks
          (Report.Table.cell_time m.Mc.dt)
  in
  Buffer.add_string b
    (Printf.sprintf "audit: %s vs %s over %s (%d nets, %d active%s)\n"
       t.circuit
       (Power.Backend.name t.backend)
       (Report.Table.cell_time t.window) s.nets s.active_nets instrument);
  Buffer.add_string b
    (Printf.sprintf "  density error: mean %.1f%%  max %.1f%%  (active nets)\n"
       s.mean_density_err_pct s.max_density_err_pct);
  Buffer.add_string b
    (Printf.sprintf "  prob error:    mean %.3f  max %.3f\n" s.mean_prob_err
       s.max_prob_err);
  Buffer.add_string b
    (Printf.sprintf "  power:         model %s  sim %s  (%s%%)\n"
       (Report.Table.cell_power s.model_total)
       (Report.Table.cell_power s.sim_total)
       (Report.Table.cell_signed_percent s.total_err_pct));
  Buffer.add_string b (Printf.sprintf "\nworst-calibrated nets (top %d):\n" top);
  let nets =
    Report.Table.create
      ~columns:
        [
          ("net", Report.Table.Left);
          ("driver", Report.Table.Left);
          ("fo", Report.Table.Right);
          ("lvl", Report.Table.Right);
          ("P model", Report.Table.Right);
          ("P sim", Report.Table.Right);
          ("D model", Report.Table.Right);
          ("D sim", Report.Table.Right);
          ("D err %", Report.Table.Right);
          ("toggles", Report.Table.Right);
        ]
  in
  List.iter
    (fun n ->
      Report.Table.add_row nets
        [
          n.name;
          n.driver;
          string_of_int n.fanout;
          string_of_int n.depth;
          Report.Table.cell_float ~decimals:3 n.pred_prob;
          Report.Table.cell_float ~decimals:3 n.meas_prob;
          Printf.sprintf "%.3g" n.pred_density;
          Printf.sprintf "%.3g" n.meas_density;
          Report.Table.cell_signed_percent n.density_err_pct;
          string_of_int n.toggles;
        ])
    (worst_nets ~top t);
  Buffer.add_string b (Report.Table.render nets);
  Buffer.add_string b (Printf.sprintf "\nworst-calibrated gates (top %d):\n" top);
  let gates =
    Report.Table.create
      ~columns:
        [
          ("gate", Report.Table.Left);
          ("output", Report.Table.Left);
          ("P model", Report.Table.Right);
          ("P sim", Report.Table.Right);
          ("err %", Report.Table.Right);
        ]
  in
  List.iter
    (fun g ->
      Report.Table.add_row gates
        [
          Printf.sprintf "g%d %s" g.gate g.cell;
          g.output_name;
          Report.Table.cell_power g.model_power;
          Report.Table.cell_power g.sim_power;
          Report.Table.cell_signed_percent g.power_err_pct;
        ])
    (worst_gates ~top t);
  Buffer.add_string b (Report.Table.render gates);
  Buffer.contents b

(* --- JSON --- *)

let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "0"
let str = Trace.Json.escape

let net_row_json n =
  Printf.sprintf
    "{\"net\":%d,\"name\":%s,\"driver\":%s,\"driver_gate\":%s,\"fanout\":%d,\"depth\":%d,\"pred_prob\":%s,\"meas_prob\":%s,\"prob_err\":%s,\"pred_density\":%s,\"meas_density\":%s,\"meas_density_se\":%s,\"density_err_pct\":%s,\"toggles\":%d,\"sim_energy\":%s}"
    n.net (str n.name) (str n.driver)
    (match n.driver_gate with None -> "null" | Some g -> string_of_int g)
    n.fanout n.depth (json_float n.pred_prob) (json_float n.meas_prob)
    (json_float n.prob_err) (json_float n.pred_density)
    (json_float n.meas_density)
    (json_float n.meas_density_se)
    (json_float n.density_err_pct) n.toggles
    (json_float n.sim_energy)

let gate_row_json g =
  Printf.sprintf
    "{\"gate\":%d,\"cell\":%s,\"output\":%s,\"model_power\":%s,\"sim_power\":%s,\"power_err_pct\":%s}"
    g.gate (str g.cell) (str g.output_name) (json_float g.model_power)
    (json_float g.sim_power) (json_float g.power_err_pct)

let summary_json t =
  let s = t.summary in
  Printf.sprintf
    "{\"circuit\":%s,\"backend\":%s,\"window\":%s,\"nets\":%d,\"active_nets\":%d,\"mean_density_err_pct\":%s,\"max_density_err_pct\":%s,\"mean_prob_err\":%s,\"max_prob_err\":%s,\"model_total\":%s,\"sim_total\":%s,\"total_err_pct\":%s}"
    (str t.circuit)
    (str (Power.Backend.name t.backend))
    (json_float t.window) s.nets s.active_nets
    (json_float s.mean_density_err_pct)
    (json_float s.max_density_err_pct)
    (json_float s.mean_prob_err) (json_float s.max_prob_err)
    (json_float s.model_total) (json_float s.sim_total)
    (json_float s.total_err_pct)

let to_json t =
  let join f arr = Array.to_list arr |> List.map f |> String.concat "," in
  Printf.sprintf "{\"summary\":%s,\"nets\":[%s],\"gates\":[%s]}" (summary_json t)
    (join net_row_json t.net_rows)
    (join gate_row_json t.gate_rows)

let to_ndjson t =
  let b = Buffer.create 4096 in
  let tag kind json =
    Buffer.add_string b (Printf.sprintf "{\"kind\":\"%s\",%s\n" kind json)
  in
  let body json = String.sub json 1 (String.length json - 1) in
  Array.iter (fun n -> tag "net" (body (net_row_json n))) t.net_rows;
  Array.iter (fun g -> tag "gate" (body (gate_row_json g))) t.gate_rows;
  tag "summary" (body (summary_json t));
  Buffer.contents b
