module Stats = Stoch.Signal_stats

let c_hits = Obs.counter "optimizer.memo_hits"
let c_misses = Obs.counter "optimizer.memo_misses"

type t = { lock : Mutex.t; table : (string, int) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 256 }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let size t = with_lock t.lock (fun () -> Hashtbl.length t.table)

let prob_buckets = 32
let log_buckets_per_decade = 4

let quantize_prob p =
  let p = Float.min 1. (Float.max 0. p) in
  int_of_float (Float.round (p *. float_of_int prob_buckets))

let representative_prob b = float_of_int b /. float_of_int prob_buckets

let quantize_log v =
  if v <= 0. then None
  else
    Some
      (int_of_float
         (Float.round (Float.log10 v *. float_of_int log_buckets_per_decade)))

let representative_log = function
  | None -> 0.
  | Some b -> 10. ** (float_of_int b /. float_of_int log_buckets_per_decade)

let log_bucket_string = function
  | None -> "z"
  | Some b -> string_of_int b

let key ~cell ~maximize ~input_only ~groups ~input_stats ~load =
  let b = Buffer.create 64 in
  Buffer.add_string b (Cell.Gate.name cell);
  Buffer.add_char b (if maximize then '^' else 'v');
  Buffer.add_char b (if input_only then 'i' else 'a');
  Array.iter
    (fun g ->
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int g))
    groups;
  Buffer.add_char b '|';
  Array.iter
    (fun s ->
      Buffer.add_string b (string_of_int (quantize_prob (Stats.prob s)));
      Buffer.add_char b ':';
      Buffer.add_string b (log_bucket_string (quantize_log (Stats.density s)));
      Buffer.add_char b ';')
    input_stats;
  Buffer.add_char b '|';
  Buffer.add_string b (log_bucket_string (quantize_log load));
  Buffer.contents b

let representative_stats input_stats =
  Array.map
    (fun s ->
      Stats.make
        ~prob:(representative_prob (quantize_prob (Stats.prob s)))
        ~density:(representative_log (quantize_log (Stats.density s))))
    input_stats

let representative_load load = representative_log (quantize_log load)

let lookup t k =
  let r = with_lock t.lock (fun () -> Hashtbl.find_opt t.table k) in
  (match r with Some _ -> Obs.incr c_hits | None -> Obs.incr c_misses);
  r

let store t k v =
  with_lock t.lock @@ fun () ->
  if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k v

let merge ~into src =
  if into != src then begin
    (* Snapshot the source outside the destination's lock so taking the
       two locks in sequence (never nested) cannot deadlock. *)
    let entries =
      with_lock src.lock (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.table [])
    in
    with_lock into.lock (fun () ->
        List.iter
          (fun (k, v) ->
            if not (Hashtbl.mem into.table k) then Hashtbl.add into.table k v)
          entries)
  end
