(** The paper's power-optimization algorithm (Fig. 3).

    One depth-first (topological) traversal of the circuit: the
    probability and transition density of every net is computed once
    (they are configuration-independent, §4.2 — the monotonic property
    that makes the greedy pass globally optimal with respect to the
    model); then each gate's configurations are exhaustively explored
    (§4.3) and the one optimizing the objective is selected.

    That same independence makes the power objectives embarrassingly
    parallel: pass a {!Par.Pool.t} and the optimizer levels the circuit,
    fans each level's gate sweeps across the pool (workers operate on
    {!Power.Model.domain_local} forks, merged back on join), and splits
    a lone wide sweep across domains per-configuration. Results are
    folded back in submission order, so a parallel run is bit-identical
    to a sequential one — same [configs], same [power_after], same
    counters and distributions. Pass a {!Memo.t} to additionally reuse
    sweep verdicts across structurally equivalent gates (see
    {{!page-performance} the performance page}). *)

type objective =
  | Min_power  (** the paper's FIND_BEST_REORDERING *)
  | Max_power
      (** worst-case ordering — the baseline Table 3 compares against *)
  | Min_power_delay_bounded
      (** best power subject to never exceeding the {e circuit}'s
          critical-path delay as received (checked with incremental
          static timing at every tentative choice) — the paper's "power
          reductions without increasing the delay" future-work direction
          (§6.b). Note a per-gate worst-case bound would be vacuous:
          symmetric configurations share their worst-case pin delay. *)
  | Min_delay
      (** fastest configuration (the speed-oriented reordering of
          Carlson & Chen the paper contrasts with) *)

type report = {
  circuit : Netlist.Circuit.t;  (** rewritten with the chosen configs *)
  configs : int array;  (** chosen configuration per gate *)
  power_before : float;  (** model power of the input circuit, W *)
  power_after : float;  (** model power of the rewritten circuit, W *)
  gates_changed : int;
  configurations_explored : int;
}

val pp_report : Format.formatter -> report -> unit

(** {1 Incremental sessions}

    A {!session} retains everything a power-objective run computed —
    the rewritten circuit, the per-net statistics, each gate's output
    load and winning-configuration power record — so the next
    {!optimize} call with the same session only pays for what changed:
    it diffs the incoming circuit, input statistics, external load and
    objective against the cache, re-runs Najm propagation over the
    fan-out cones of the edited nets with a bit-identical early
    cut-off (§4.2: statistics are configuration-independent, so pure
    re-sweeps dirty nothing downstream), re-sweeps only the dirty
    gates, and re-folds the cached per-gate powers in
    {!Power.Estimate.circuit}'s summation order. The report is
    bit-identical to a cold full run on the same arguments — the
    [incremental-equivalence] proptest oracle enforces this — except
    for [configurations_explored], which counts only the candidates
    actually re-examined.

    The fast path covers [Min_power] / [Max_power] with the same power
    table and circuit shape (net/gate counts, primary inputs and
    outputs); anything else falls back to a full run that reseeds the
    cache ([incremental.cold_runs]). Observability:
    [incremental.applies], [incremental.dirty_nets],
    [incremental.dirty_gates], [incremental.cutoffs] counters and the
    [incremental.apply] span. *)

type session

val session : ?memoize:bool -> unit -> session
(** A fresh session with no cached run. [memoize] (default [false])
    gives the session its own {!Memo.t}, kept warm across every apply
    ({!Memo.merge}); the memoization mode is fixed for the session's
    lifetime because memoized and unmemoized sweeps may legitimately
    disagree near quantization boundaries. When a session is passed to
    {!optimize}, the session's memo policy wins: an explicit [?memo]
    argument is merged into the session's memo if it has one, and
    ignored otherwise. *)

val session_memo : session -> Memo.t option
val session_circuit : session -> Netlist.Circuit.t option
(** The last run's rewritten circuit (winning configurations). *)

val session_stats : session -> Stoch.Signal_stats.t array option
(** The last run's per-net statistics, indexed by net (a copy). *)

val session_dirty : session -> bool array option
(** Which gates the most recent apply re-swept, indexed by gate (all
    [true] after a cold run; a copy). *)

val optimize :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  ?objective:objective ->
  ?input_reordering_only:bool ->
  ?pool:Par.Pool.t ->
  ?memo:Memo.t ->
  ?session:session ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  report
(** [input_reordering_only] (default false) restricts candidates to the
    reference configuration's layout shape — the §2 input-reordering
    subset, used as an ablation baseline.

    [pool] (default none: today's sequential path, untouched) fans gate
    sweeps across domains for [Min_power] / [Max_power]. The other
    objectives stay sequential even with a pool: [Min_delay] shares the
    Elmore table's cache and [Min_power_delay_bounded] is inherently
    order-dependent (each STA check reads the configs chosen so far).

    [memo] (default none) reuses best-configuration verdicts across
    gates with the same cell, pin-tying groups, quantized input
    statistics and load bucket. A memoized choice is computed from the
    key's representative values, so it can differ from the exhaustive
    sweep's near quantization boundaries — the memo is an opt-in
    speed/accuracy trade, and [configurations_explored] still counts
    every candidate the algorithm considered. Memoized runs are
    deterministic: the verdict is a pure function of the key, so domain
    count and scheduling cannot change the result. Applies to
    [Min_power] / [Max_power] only. *)

val best_and_worst :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  ?pool:Par.Pool.t ->
  ?memo:Memo.t ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  report * report
(** [(best, worst)] under [Min_power] / [Max_power] — the pair Table 3's
    reduction percentages are computed from. *)

val reduction_percent : best:float -> worst:float -> float
(** [100·(worst-best)/worst], clamped to [\[0, 100\]] so a degenerate
    pair (e.g. [best > worst] from comparing mismatched scenarios, or a
    negative [best]) never yields a nonsensical percentage; 0 when
    [worst <= 0]. For [0 < best <= worst] the result is in [\[0, 100\]]
    without clamping. *)
