(** The paper's power-optimization algorithm (Fig. 3).

    One depth-first (topological) traversal of the circuit: the
    probability and transition density of every net is computed once
    (they are configuration-independent, §4.2 — the monotonic property
    that makes the greedy pass globally optimal with respect to the
    model); then each gate's configurations are exhaustively explored
    (§4.3) and the one optimizing the objective is selected. *)

type objective =
  | Min_power  (** the paper's FIND_BEST_REORDERING *)
  | Max_power
      (** worst-case ordering — the baseline Table 3 compares against *)
  | Min_power_delay_bounded
      (** best power subject to never exceeding the {e circuit}'s
          critical-path delay as received (checked with incremental
          static timing at every tentative choice) — the paper's "power
          reductions without increasing the delay" future-work direction
          (§6.b). Note a per-gate worst-case bound would be vacuous:
          symmetric configurations share their worst-case pin delay. *)
  | Min_delay
      (** fastest configuration (the speed-oriented reordering of
          Carlson & Chen the paper contrasts with) *)

type report = {
  circuit : Netlist.Circuit.t;  (** rewritten with the chosen configs *)
  configs : int array;  (** chosen configuration per gate *)
  power_before : float;  (** model power of the input circuit, W *)
  power_after : float;  (** model power of the rewritten circuit, W *)
  gates_changed : int;
  configurations_explored : int;
}

val pp_report : Format.formatter -> report -> unit

val optimize :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  ?objective:objective ->
  ?input_reordering_only:bool ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  report
(** [input_reordering_only] (default false) restricts candidates to the
    reference configuration's layout shape — the §2 input-reordering
    subset, used as an ablation baseline. *)

val best_and_worst :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  report * report
(** [(best, worst)] under [Min_power] / [Max_power] — the pair Table 3's
    reduction percentages are computed from. *)

val reduction_percent : best:float -> worst:float -> float
(** [100·(worst-best)/worst], clamped to [\[0, 100\]] so a degenerate
    pair (e.g. [best > worst] from comparing mismatched scenarios, or a
    negative [best]) never yields a nonsensical percentage; 0 when
    [worst <= 0]. For [0 < best <= worst] the result is in [\[0, 100\]]
    without clamping. *)
