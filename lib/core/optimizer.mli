(** The paper's power-optimization algorithm (Fig. 3).

    One depth-first (topological) traversal of the circuit: the
    probability and transition density of every net is computed once
    (they are configuration-independent, §4.2 — the monotonic property
    that makes the greedy pass globally optimal with respect to the
    model); then each gate's configurations are exhaustively explored
    (§4.3) and the one optimizing the objective is selected.

    That same independence makes the power objectives embarrassingly
    parallel: pass a {!Par.Pool.t} and the optimizer levels the circuit,
    fans each level's gate sweeps across the pool (workers operate on
    {!Power.Model.domain_local} forks, merged back on join), and splits
    a lone wide sweep across domains per-configuration. Results are
    folded back in submission order, so a parallel run is bit-identical
    to a sequential one — same [configs], same [power_after], same
    counters and distributions. Pass a {!Memo.t} to additionally reuse
    sweep verdicts across structurally equivalent gates (see
    {{!page-performance} the performance page}). *)

type objective =
  | Min_power  (** the paper's FIND_BEST_REORDERING *)
  | Max_power
      (** worst-case ordering — the baseline Table 3 compares against *)
  | Min_power_delay_bounded
      (** best power subject to never exceeding the {e circuit}'s
          critical-path delay as received (checked with incremental
          static timing at every tentative choice) — the paper's "power
          reductions without increasing the delay" future-work direction
          (§6.b). Note a per-gate worst-case bound would be vacuous:
          symmetric configurations share their worst-case pin delay. *)
  | Min_delay
      (** fastest configuration (the speed-oriented reordering of
          Carlson & Chen the paper contrasts with) *)

type report = {
  circuit : Netlist.Circuit.t;  (** rewritten with the chosen configs *)
  configs : int array;  (** chosen configuration per gate *)
  power_before : float;  (** model power of the input circuit, W *)
  power_after : float;  (** model power of the rewritten circuit, W *)
  gates_changed : int;
  configurations_explored : int;
}

val pp_report : Format.formatter -> report -> unit

val optimize :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  ?objective:objective ->
  ?input_reordering_only:bool ->
  ?pool:Par.Pool.t ->
  ?memo:Memo.t ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  report
(** [input_reordering_only] (default false) restricts candidates to the
    reference configuration's layout shape — the §2 input-reordering
    subset, used as an ablation baseline.

    [pool] (default none: today's sequential path, untouched) fans gate
    sweeps across domains for [Min_power] / [Max_power]. The other
    objectives stay sequential even with a pool: [Min_delay] shares the
    Elmore table's cache and [Min_power_delay_bounded] is inherently
    order-dependent (each STA check reads the configs chosen so far).

    [memo] (default none) reuses best-configuration verdicts across
    gates with the same cell, pin-tying groups, quantized input
    statistics and load bucket. A memoized choice is computed from the
    key's representative values, so it can differ from the exhaustive
    sweep's near quantization boundaries — the memo is an opt-in
    speed/accuracy trade, and [configurations_explored] still counts
    every candidate the algorithm considered. Memoized runs are
    deterministic: the verdict is a pure function of the key, so domain
    count and scheduling cannot change the result. Applies to
    [Min_power] / [Max_power] only. *)

val best_and_worst :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  ?pool:Par.Pool.t ->
  ?memo:Memo.t ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  report * report
(** [(best, worst)] under [Min_power] / [Max_power] — the pair Table 3's
    reduction percentages are computed from. *)

val reduction_percent : best:float -> worst:float -> float
(** [100·(worst-best)/worst], clamped to [\[0, 100\]] so a degenerate
    pair (e.g. [best > worst] from comparing mismatched scenarios, or a
    negative [best]) never yields a nonsensical percentage; 0 when
    [worst <= 0]. For [0 < best <= worst] the result is in [\[0, 100\]]
    without clamping. *)
