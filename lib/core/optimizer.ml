module C = Netlist.Circuit

let c_gates_visited = Obs.counter "optimizer.gates_visited"
let c_configs_explored = Obs.counter "optimizer.configs_explored"
let c_configs_pruned = Obs.counter "optimizer.configs_pruned"
let c_sta_checks = Obs.counter "optimizer.sta_checks"
let c_sta_rejects = Obs.counter "optimizer.sta_rejects"
let d_configs_per_gate = Obs.distribution "optimizer.configs_per_gate"
let d_gate_reduction = Obs.distribution "optimizer.gate_reduction_percent"

type objective =
  | Min_power
  | Max_power
  | Min_power_delay_bounded
  | Min_delay

type report = {
  circuit : C.t;
  configs : int array;
  power_before : float;
  power_after : float;
  gates_changed : int;
  configurations_explored : int;
}

let reduction_percent ~best ~worst =
  if worst <= 0. then 0.
  else Float.min 100. (Float.max 0. (100. *. (worst -. best) /. worst))

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %.4g -> %.4g W (%.1f%% reduction, %d/%d gates changed, %d \
     configurations explored)"
    (C.name r.circuit) r.power_before r.power_after
    (reduction_percent ~best:r.power_after ~worst:r.power_before)
    r.gates_changed
    (Array.length r.configs) r.configurations_explored

(* Static timing of the circuit with an explicit configuration
   assignment, without materializing a rewritten circuit. Mirrors
   Delay.Sta but reads configs from [assignment]. *)
let critical_delay_with delay_table ~external_load circuit assignment =
  let arrival = Array.make (C.net_count circuit) 0. in
  let load_of g =
    let gate = C.gate_at circuit g in
    let pins =
      List.fold_left
        (fun acc (reader, pin) ->
          let cell = (C.gate_at circuit reader).C.cell in
          let network = Cell.Config.network (Cell.Config.reference cell) in
          acc
          +. Cell.Process.input_pin_capacitance
               (Delay.Elmore.process delay_table)
               network pin)
        0.
        (C.readers circuit gate.C.output)
    in
    if C.is_primary_output circuit gate.C.output then pins +. external_load
    else pins
  in
  List.iter
    (fun g ->
      let gate = C.gate_at circuit g in
      let load = load_of g in
      let worst = ref 0. in
      Array.iteri
        (fun pin net ->
          let d =
            Delay.Elmore.pin_delay delay_table gate.C.cell
              ~config:assignment.(g) ~pin ~load
          in
          worst := Float.max !worst (arrival.(net) +. d))
        gate.C.fanins;
      arrival.(gate.C.output) <- !worst)
    (C.topological_order circuit);
  List.fold_left
    (fun acc net -> Float.max acc arrival.(net))
    0. (C.primary_outputs circuit)

(* Candidate selection for one gate under the power objectives
   (FIND_BEST_REORDERING): power of each configuration with the gate's
   actual fan-out load and propagated input statistics. Returns the
   chosen index plus the chosen and incumbent configuration powers, so
   the caller can attribute the per-gate improvement. *)
let choose_by_power power_table ~maximize ~candidates ~load ~input_stats
    (gate : C.gate) =
  let cell = gate.C.cell in
  let groups = Power.Model.groups_of_nets gate.C.fanins in
  let power_of config =
    (Power.Model.gate_power power_table cell ~config ~input_stats ~groups
       ~load ())
      .Power.Model.total
  in
  let current = power_of gate.C.config in
  let score p = if maximize then -.p else p in
  let best_i, best_p =
    List.fold_left
      (fun (best_i, best_p) i ->
        let p = power_of i in
        if score p < score best_p then (i, p) else (best_i, best_p))
      (gate.C.config, current) candidates
  in
  (best_i, best_p, current)

let choose_by_delay delay_table ~candidates ~load (gate : C.gate) =
  List.fold_left
    (fun (best_i, best_d) i ->
      let d = Delay.Elmore.worst_delay delay_table gate.C.cell ~config:i ~load in
      if d < best_d then (i, d) else (best_i, best_d))
    ( gate.C.config,
      Delay.Elmore.worst_delay delay_table gate.C.cell ~config:gate.C.config
        ~load )
    candidates
  |> fst

let default_external_load = 20e-15

let optimize power_table ~delay:delay_table
    ?(external_load = default_external_load) ?(objective = Min_power)
    ?(input_reordering_only = false) circuit ~inputs =
  Obs.span "optimize.run" @@ fun () ->
  let analysis = Power.Analysis.run power_table circuit ~inputs in
  let power_before =
    Power.Estimate.total power_table ~external_load circuit analysis
  in
  let n = C.gate_count circuit in
  let configs = Array.init n (fun g -> (C.gate_at circuit g).C.config) in
  let explored = ref 0 in
  let candidates_for (gate : C.gate) =
    let cell = gate.C.cell in
    let all = Cell.Config.all cell in
    let reference = Cell.Config.reference cell in
    let indexed = List.mapi (fun i c -> (i, c)) all in
    let kept =
      if input_reordering_only then
        List.filter (fun (_, c) -> Cell.Config.same_shape c reference) indexed
      else indexed
    in
    List.map fst kept
  in
  (* The delay bound is the *input* circuit's critical path: accepting a
     candidate must never push the circuit beyond it (§6.b: "power
     reductions without increasing the delay"). *)
  let delay_budget =
    match objective with
    | Min_power_delay_bounded ->
        Some
          (critical_delay_with delay_table ~external_load circuit configs
          +. 1e-18)
    | Min_power | Max_power | Min_delay -> None
  in
  (* Fig. 3: statistics are configuration-independent (§4.2), so the
     single Analysis pass already gives every gate its final input
     statistics; we visit gates in the paper's topological order. *)
  List.iter
    (fun g ->
      Obs.span "optimize.gate" @@ fun () ->
      let gate = C.gate_at circuit g in
      let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
      let load = Power.Estimate.output_load power_table ~external_load circuit g in
      let candidates = candidates_for gate in
      Obs.incr c_gates_visited;
      Obs.add c_configs_explored (List.length candidates);
      Obs.observe d_configs_per_gate (float_of_int (List.length candidates));
      explored := !explored + List.length candidates;
      (* Per-gate improvement of the chosen configuration over the
         incumbent one, as a percentage (the distribution behind the
         BENCH_obs.json [optimizer.gate_reduction_percent] metric). *)
      let observe_reduction ~best ~current =
        Obs.observe d_gate_reduction (reduction_percent ~best ~worst:current)
      in
      let chosen =
        match objective with
        | Min_power ->
            let chosen, best, current =
              choose_by_power power_table ~maximize:false ~candidates ~load
                ~input_stats gate
            in
            observe_reduction ~best ~current;
            chosen
        | Max_power ->
            let chosen, _, _ =
              choose_by_power power_table ~maximize:true ~candidates ~load
                ~input_stats gate
            in
            chosen
        | Min_delay -> choose_by_delay delay_table ~candidates ~load gate
        | Min_power_delay_bounded ->
            let budget = Option.get delay_budget in
            let admissible =
              List.filter
                (fun i ->
                  let saved = configs.(g) in
                  configs.(g) <- i;
                  let d =
                    Obs.incr c_sta_checks;
                    critical_delay_with delay_table ~external_load circuit
                      configs
                  in
                  configs.(g) <- saved;
                  let ok = d <= budget in
                  if not ok then Obs.incr c_sta_rejects;
                  ok)
                candidates
            in
            Obs.add c_configs_pruned
              (List.length candidates - List.length admissible);
            let chosen, best, current =
              choose_by_power power_table ~maximize:false
                ~candidates:admissible ~load ~input_stats gate
            in
            observe_reduction ~best ~current;
            chosen
      in
      configs.(g) <- chosen)
    (C.topological_order circuit);
  let rewritten = C.with_configs circuit configs in
  let power_after =
    Power.Estimate.total power_table ~external_load rewritten analysis
  in
  let gates_changed = ref 0 in
  Array.iteri
    (fun g chosen ->
      if chosen <> (C.gate_at circuit g).C.config then incr gates_changed)
    configs;
  {
    circuit = rewritten;
    configs;
    power_before;
    power_after;
    gates_changed = !gates_changed;
    configurations_explored = !explored;
  }

let best_and_worst power_table ~delay ?external_load circuit ~inputs =
  let best =
    optimize power_table ~delay ?external_load ~objective:Min_power circuit
      ~inputs
  in
  let worst =
    optimize power_table ~delay ?external_load ~objective:Max_power circuit
      ~inputs
  in
  (best, worst)
