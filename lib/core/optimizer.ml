module C = Netlist.Circuit

let c_gates_visited = Obs.counter "optimizer.gates_visited"
let c_configs_explored = Obs.counter "optimizer.configs_explored"
let c_configs_pruned = Obs.counter "optimizer.configs_pruned"
let c_sta_checks = Obs.counter "optimizer.sta_checks"
let c_sta_rejects = Obs.counter "optimizer.sta_rejects"
let c_parallel_levels = Obs.counter "optimizer.parallel_levels"
let c_wide_sweeps = Obs.counter "optimizer.wide_sweeps"
let d_configs_per_gate = Obs.distribution "optimizer.configs_per_gate"
let d_gate_reduction = Obs.distribution "optimizer.gate_reduction_percent"

type objective =
  | Min_power
  | Max_power
  | Min_power_delay_bounded
  | Min_delay

type report = {
  circuit : C.t;
  configs : int array;
  power_before : float;
  power_after : float;
  gates_changed : int;
  configurations_explored : int;
}

let reduction_percent ~best ~worst =
  if worst <= 0. then 0.
  else Float.min 100. (Float.max 0. (100. *. (worst -. best) /. worst))

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %.4g -> %.4g W (%.1f%% reduction, %d/%d gates changed, %d \
     configurations explored)"
    (C.name r.circuit) r.power_before r.power_after
    (reduction_percent ~best:r.power_after ~worst:r.power_before)
    r.gates_changed
    (Array.length r.configs) r.configurations_explored

(* Static timing of the circuit with an explicit configuration
   assignment, without materializing a rewritten circuit. Mirrors
   Delay.Sta but reads configs from [assignment]. *)
let critical_delay_with delay_table ~external_load circuit assignment =
  let arrival = Array.make (C.net_count circuit) 0. in
  let load_of g =
    let gate = C.gate_at circuit g in
    let pins =
      List.fold_left
        (fun acc (reader, pin) ->
          let cell = (C.gate_at circuit reader).C.cell in
          let network = Cell.Config.network (Cell.Config.reference cell) in
          acc
          +. Cell.Process.input_pin_capacitance
               (Delay.Elmore.process delay_table)
               network pin)
        0.
        (C.readers circuit gate.C.output)
    in
    if C.is_primary_output circuit gate.C.output then pins +. external_load
    else pins
  in
  List.iter
    (fun g ->
      let gate = C.gate_at circuit g in
      let load = load_of g in
      let worst = ref 0. in
      Array.iteri
        (fun pin net ->
          let d =
            Delay.Elmore.pin_delay delay_table gate.C.cell
              ~config:assignment.(g) ~pin ~load
          in
          worst := Float.max !worst (arrival.(net) +. d))
        gate.C.fanins;
      arrival.(gate.C.output) <- !worst)
    (C.topological_order circuit);
  List.fold_left
    (fun acc net -> Float.max acc arrival.(net))
    0. (C.primary_outputs circuit)

(* Candidate selection for one gate under the power objectives
   (FIND_BEST_REORDERING): power of each configuration with the gate's
   actual fan-out load and propagated input statistics. Returns the
   chosen index plus the chosen and incumbent configuration powers, so
   the caller can attribute the per-gate improvement. *)
let choose_by_power power_table ~maximize ~candidates ~load ~input_stats
    (gate : C.gate) =
  let cell = gate.C.cell in
  let groups = Power.Model.groups_of_nets gate.C.fanins in
  let power_of config =
    (Power.Model.gate_power power_table cell ~config ~input_stats ~groups
       ~load ())
      .Power.Model.total
  in
  let current = power_of gate.C.config in
  let score p = if maximize then -.p else p in
  let best_i, best_p =
    List.fold_left
      (fun (best_i, best_p) i ->
        let p = power_of i in
        if score p < score best_p then (i, p) else (best_i, best_p))
      (gate.C.config, current) candidates
  in
  (best_i, best_p, current)

(* Memo-miss variant: the winner must be a pure function of the memo key,
   so the fold is seeded with the first candidate (never the gate's
   incumbent configuration) and the caller passes the key's
   representative statistics and load. Racing workers that both miss an
   entry therefore compute the same winner, which is what makes memoized
   runs bit-identical across any domain count. *)
let choose_by_power_pure power_table ~maximize ~candidates ~load ~input_stats
    (gate : C.gate) =
  let cell = gate.C.cell in
  let groups = Power.Model.groups_of_nets gate.C.fanins in
  let power_of config =
    (Power.Model.gate_power power_table cell ~config ~input_stats ~groups
       ~load ())
      .Power.Model.total
  in
  let score p = if maximize then -.p else p in
  match candidates with
  | [] -> gate.C.config
  | first :: rest ->
      List.fold_left
        (fun (best_i, best_p) i ->
          let p = power_of i in
          if score p < score best_p then (i, p) else (best_i, best_p))
        (first, power_of first) rest
      |> fst

(* One power-objective gate decision: either the exhaustive sweep, or a
   memo hit keyed on (cell, direction, restriction, pin groups, quantized
   stats, load bucket). Returns the chosen index and — for minimization —
   the per-gate reduction percentage to feed the
   [optimizer.gate_reduction_percent] distribution. *)
let decide_power power_table ?memo ~maximize ~input_only ~candidates ~load
    ~input_stats (gate : C.gate) =
  match memo with
  | None ->
      let chosen, best, current =
        choose_by_power power_table ~maximize ~candidates ~load ~input_stats
          gate
      in
      let reduction =
        if maximize then None else Some (reduction_percent ~best ~worst:current)
      in
      (chosen, reduction)
  | Some memo ->
      let cell = gate.C.cell in
      let groups = Power.Model.groups_of_nets gate.C.fanins in
      let key =
        Memo.key ~cell ~maximize ~input_only ~groups ~input_stats ~load
      in
      let chosen =
        match Memo.lookup memo key with
        | Some chosen -> chosen
        | None ->
            let chosen =
              choose_by_power_pure power_table ~maximize ~candidates
                ~load:(Memo.representative_load load)
                ~input_stats:(Memo.representative_stats input_stats)
                gate
            in
            Memo.store memo key chosen;
            chosen
      in
      let reduction =
        if maximize then None
        else
          let power_of config =
            (Power.Model.gate_power power_table cell ~config ~input_stats
               ~groups ~load ())
              .Power.Model.total
          in
          let current = power_of gate.C.config in
          let best =
            if chosen = gate.C.config then current else power_of chosen
          in
          Some (reduction_percent ~best ~worst:current)
      in
      (chosen, reduction)

let choose_by_delay delay_table ~candidates ~load (gate : C.gate) =
  List.fold_left
    (fun (best_i, best_d) i ->
      let d = Delay.Elmore.worst_delay delay_table gate.C.cell ~config:i ~load in
      if d < best_d then (i, d) else (best_i, best_d))
    ( gate.C.config,
      Delay.Elmore.worst_delay delay_table gate.C.cell ~config:gate.C.config
        ~load )
    candidates
  |> fst

(* A worker's verdict on one gate; the coordinator applies these in
   submission order so counters, distributions, and the configs array
   evolve exactly as in a sequential run. *)
type decision = {
  d_gate : int;
  d_chosen : int;
  d_candidates : int;
  d_reduction : float option;
}

(* Below this many candidate configurations a single-gate level is not
   worth fanning out per-configuration. *)
let wide_sweep_threshold = 8

let default_external_load = 20e-15

let candidates_of ~input_only (gate : C.gate) =
  let cell = gate.C.cell in
  let all = Cell.Config.all cell in
  let reference = Cell.Config.reference cell in
  let indexed = List.mapi (fun i c -> (i, c)) all in
  let kept =
    if input_only then
      List.filter (fun (_, c) -> Cell.Config.same_shape c reference) indexed
    else indexed
  in
  List.map fst kept

let optimize_full power_table ~delay:delay_table ~external_load ~objective
    ~input_reordering_only ?pool ?memo circuit ~inputs =
  Obs.span "optimize.run" @@ fun () ->
  let analysis = Power.Analysis.run power_table circuit ~inputs in
  let power_before =
    Power.Estimate.total power_table ~external_load circuit analysis
  in
  let n = C.gate_count circuit in
  let configs = Array.init n (fun g -> (C.gate_at circuit g).C.config) in
  let explored = ref 0 in
  let candidates_for = candidates_of ~input_only:input_reordering_only in
  (* The delay bound is the *input* circuit's critical path: accepting a
     candidate must never push the circuit beyond it (§6.b: "power
     reductions without increasing the delay"). *)
  let delay_budget =
    match objective with
    | Min_power_delay_bounded ->
        Some
          (critical_delay_with delay_table ~external_load circuit configs
          +. 1e-18)
    | Min_power | Max_power | Min_delay -> None
  in
  (* The sweep's denominator is known before it starts (§4: every
     gate's candidate list is enumerable up-front), so the telemetry
     heartbeat's percent/ETA is exact rather than guessed. Both
     drivers tick per decided gate, weighted by its candidate count. *)
  Telemetry.progress_begin ~phase:"optimize.sweep"
    ~total:
      (List.fold_left
         (fun acc g -> acc + List.length (candidates_for (C.gate_at circuit g)))
         0 (C.topological_order circuit));
  let sequential () =
    (* Fig. 3: statistics are configuration-independent (§4.2), so the
       single Analysis pass already gives every gate its final input
       statistics; we visit gates in the paper's topological order. *)
    List.iter
      (fun g ->
        Obs.span "optimize.gate" @@ fun () ->
        let gate = C.gate_at circuit g in
        let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
        let load =
          Power.Estimate.output_load power_table ~external_load circuit g
        in
        let candidates = candidates_for gate in
        Obs.incr c_gates_visited;
        Obs.add c_configs_explored (List.length candidates);
        Obs.observe d_configs_per_gate (float_of_int (List.length candidates));
        explored := !explored + List.length candidates;
        (* Per-gate improvement of the chosen configuration over the
           incumbent one, as a percentage (the distribution behind the
           BENCH_obs.json [optimizer.gate_reduction_percent] metric). *)
        let observe_reduction ~best ~current =
          Obs.observe d_gate_reduction (reduction_percent ~best ~worst:current)
        in
        let chosen =
          match objective with
          | Min_power | Max_power ->
              let chosen, reduction =
                decide_power power_table ?memo
                  ~maximize:(objective = Max_power)
                  ~input_only:input_reordering_only ~candidates ~load
                  ~input_stats gate
              in
              Option.iter (Obs.observe d_gate_reduction) reduction;
              chosen
          | Min_delay -> choose_by_delay delay_table ~candidates ~load gate
          | Min_power_delay_bounded ->
              let budget = Option.get delay_budget in
              let admissible =
                List.filter
                  (fun i ->
                    let saved = configs.(g) in
                    configs.(g) <- i;
                    let d =
                      Obs.incr c_sta_checks;
                      critical_delay_with delay_table ~external_load circuit
                        configs
                    in
                    configs.(g) <- saved;
                    let ok = d <= budget in
                    if not ok then Obs.incr c_sta_rejects;
                    ok)
                  candidates
              in
              Obs.add c_configs_pruned
                (List.length candidates - List.length admissible);
              let chosen, best, current =
                choose_by_power power_table ~maximize:false
                  ~candidates:admissible ~load ~input_stats gate
              in
              observe_reduction ~best ~current;
              chosen
        in
        configs.(g) <- chosen;
        Telemetry.progress_tick ~n:(List.length candidates) ())
      (C.topological_order circuit)
  in
  (* Parallel driver: level the circuit, fan each level's gate sweeps
     across the pool. Statistics are configuration-independent (§4.2),
     so gates of one level are fully independent decisions; ordering only
     matters for how results are folded back, and [finish] applies them
     in submission order (ascending level, topological within a level) —
     the same order the sequential loop uses. Workers operate on
     [Power.Model.domain_local] forks; the coordinator merges them back
     after the last level. *)
  let parallel pool ~maximize =
    let levels = C.levels circuit in
    let nlevels = C.depth circuit in
    let buckets = Array.make (nlevels + 1) [] in
    List.iter
      (fun g -> buckets.(levels.(g)) <- g :: buckets.(levels.(g)))
      (List.rev (C.topological_order circuit));
    let decide table g =
      Obs.span "optimize.gate" @@ fun () ->
      let gate = C.gate_at circuit g in
      let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
      let load = Power.Estimate.output_load table ~external_load circuit g in
      let candidates = candidates_for gate in
      let chosen, reduction =
        decide_power table ?memo ~maximize ~input_only:input_reordering_only
          ~candidates ~load ~input_stats gate
      in
      {
        d_gate = g;
        d_chosen = chosen;
        d_candidates = List.length candidates;
        d_reduction = reduction;
      }
    in
    (* Single-gate level with a wide candidate list: split the sweep
       itself across domains, one configuration per task, then fold the
       powers exactly as [choose_by_power] would (same seed, same
       left-to-right order, strict comparison). *)
    let decide_wide g (gate : C.gate) candidates =
      Obs.incr c_wide_sweeps;
      let cell = gate.C.cell in
      let groups = Power.Model.groups_of_nets gate.C.fanins in
      let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
      let load =
        Power.Estimate.output_load power_table ~external_load circuit g
      in
      let powers =
        Par.Pool.map ~chunk:1 pool
          (fun config ->
            let table = Power.Model.domain_local power_table in
            (Power.Model.gate_power table cell ~config ~input_stats ~groups
               ~load ())
              .Power.Model.total)
          (Array.of_list (gate.C.config :: candidates))
      in
      let current = powers.(0) in
      let score p = if maximize then -.p else p in
      let best_i = ref gate.C.config and best_p = ref current in
      List.iteri
        (fun k i ->
          let p = powers.(k + 1) in
          if score p < score !best_p then begin
            best_i := i;
            best_p := p
          end)
        candidates;
      let reduction =
        if maximize then None
        else Some (reduction_percent ~best:!best_p ~worst:current)
      in
      {
        d_gate = g;
        d_chosen = !best_i;
        d_candidates = List.length candidates;
        d_reduction = reduction;
      }
    in
    let finish d =
      Obs.incr c_gates_visited;
      Obs.add c_configs_explored d.d_candidates;
      Obs.observe d_configs_per_gate (float_of_int d.d_candidates);
      explored := !explored + d.d_candidates;
      Option.iter (Obs.observe d_gate_reduction) d.d_reduction;
      configs.(d.d_gate) <- d.d_chosen;
      Telemetry.progress_tick ~n:d.d_candidates ()
    in
    for level = 1 to nlevels do
      match buckets.(level) with
      | [] -> ()
      | [ g ] ->
          Obs.span "optimize.level" @@ fun () ->
          Obs.incr c_parallel_levels;
          let gate = C.gate_at circuit g in
          let candidates = candidates_for gate in
          if
            Option.is_none memo
            && List.length candidates >= wide_sweep_threshold
          then finish (decide_wide g gate candidates)
          else finish (decide power_table g)
      | batch ->
          Obs.span "optimize.level" @@ fun () ->
          Obs.incr c_parallel_levels;
          let decisions =
            Par.Pool.map pool
              (fun g -> decide (Power.Model.domain_local power_table) g)
              (Array.of_list batch)
          in
          Array.iter finish decisions
    done;
    ignore (Power.Model.merge_forks power_table)
  in
  (match (pool, objective) with
  | Some p, (Min_power | Max_power) when Par.Pool.jobs p > 1 ->
      parallel p ~maximize:(objective = Max_power)
  | _ -> sequential ());
  let rewritten = C.with_configs circuit configs in
  let power_after =
    Power.Estimate.total power_table ~external_load rewritten analysis
  in
  let gates_changed = ref 0 in
  Array.iteri
    (fun g chosen ->
      if chosen <> (C.gate_at circuit g).C.config then incr gates_changed)
    configs;
  ( {
      circuit = rewritten;
      configs;
      power_before;
      power_after;
      gates_changed = !gates_changed;
      configurations_explored = !explored;
    },
    analysis )

(* --- Incremental (ECO-style) sessions -------------------------------

   A session caches everything the last power-objective run computed:
   the rewritten circuit, the per-net statistics (§4.2:
   configuration-independent), each gate's output load and its
   {!Power.Model.gate_power} record under the winning configuration.
   The next [optimize ?session] call diffs its arguments against the
   cache, re-propagates Najm statistics only through the fan-out cones
   of the edited nets (with a bit-identical early cut-off), re-sweeps
   only the dirty gates, and re-folds the per-gate power records in
   {!Power.Estimate.circuit}'s exact summation order — so the report is
   bit-identical to a cold full run on the same circuit.

   The bit-identity rests on two fixed points. First, statistics: a
   clean net's cached value is exactly what [Power.Analysis.run] would
   recompute from clean fanins. Second, decisions: a clean gate's
   incumbent configuration is the previous winner; [choose_by_power]
   seeds its fold with the incumbent and replaces only on strict [<],
   so re-sweeping it would return the incumbent — skipping the sweep
   changes nothing. Memoized sessions rely on verdict purity instead: a
   warm entry equals what a fresh miss would compute, so the memo mode
   must stay constant for a session's lifetime (fixed at creation). *)

let c_inc_applies = Obs.counter "incremental.applies"
let c_inc_cold_runs = Obs.counter "incremental.cold_runs"
let c_inc_dirty_nets = Obs.counter "incremental.dirty_nets"
let c_inc_dirty_gates = Obs.counter "incremental.dirty_gates"
let c_inc_cutoffs = Obs.counter "incremental.cutoffs"

module Stats = Stoch.Signal_stats

type cache = {
  k_table : Power.Model.table;
  k_circuit : C.t;  (* last rewritten circuit (winning configurations) *)
  k_stats : Stats.t array;  (* per net *)
  k_power : Power.Model.gate_power array;  (* per gate, winning config *)
  k_loads : float array;  (* per gate output load, F *)
  k_external_load : float;
  k_maximize : bool;
  k_input_only : bool;
  k_dirty : bool array;  (* gates re-swept by the last apply *)
}

type session = { s_memo : Memo.t option; mutable s_cache : cache option }

let session ?(memoize = false) () =
  { s_memo = (if memoize then Some (Memo.create ()) else None);
    s_cache = None }

let session_memo s = s.s_memo
let session_circuit s = Option.map (fun k -> k.k_circuit) s.s_cache
let session_stats s = Option.map (fun k -> Array.copy k.k_stats) s.s_cache
let session_dirty s = Option.map (fun k -> Array.copy k.k_dirty) s.s_cache

let same_stats a b =
  Stats.prob a = Stats.prob b && Stats.density a = Stats.density b

let gate_power_of table ~stats ~load (gate : C.gate) ~config =
  let input_stats = Array.map (fun net -> stats.(net)) gate.C.fanins in
  let groups = Power.Model.groups_of_nets gate.C.fanins in
  Power.Model.gate_power table gate.C.cell ~config ~input_stats ~groups ~load
    ()

let populate_cache table ~external_load ~maximize ~input_only ~stats ~dirty
    (report : report) =
  let circuit = report.circuit in
  let n = C.gate_count circuit in
  let loads =
    Array.init n (fun g ->
        Power.Estimate.output_load table ~external_load circuit g)
  in
  let power =
    Array.init n (fun g ->
        let gate = C.gate_at circuit g in
        gate_power_of table ~stats ~load:loads.(g) gate ~config:gate.C.config)
  in
  {
    k_table = table;
    k_circuit = circuit;
    k_stats = stats;
    k_power = power;
    k_loads = loads;
    k_external_load = external_load;
    k_maximize = maximize;
    k_input_only = input_only;
    k_dirty = dirty;
  }

let apply_incremental table ~external_load ~maximize ~input_only ?pool ?memo s
    k circuit ~inputs =
  Obs.span "incremental.apply" @@ fun () ->
  Obs.incr c_inc_applies;
  let n = C.gate_count circuit in
  let stats = Array.copy k.k_stats in
  let net_dirty = Array.make (C.net_count circuit) false in
  let dirty = Array.make n false in
  let structural = Array.make n false in
  let seeds = ref [] in
  (* Primary-input statistic edits. *)
  List.iter
    (fun pi ->
      let next = inputs pi in
      if not (same_stats next stats.(pi)) then begin
        stats.(pi) <- next;
        net_dirty.(pi) <- true;
        seeds := pi :: !seeds;
        Obs.incr c_inc_dirty_nets
      end)
    (C.primary_inputs circuit);
  (* Structural gate edits, diffed against the cached circuit. A
     replaced or rewired gate changes its own output statistics and the
     loads of the gates driving every touched pin net (pin capacitances
     follow the reader's cell). A configuration-only difference is the
     §4.2 case: the gate re-sweeps but no statistics move. *)
  for g = 0 to n - 1 do
    let og = C.gate_at k.k_circuit g and ng = C.gate_at circuit g in
    (* Circuit rebuilds reuse untouched gate records, so physical
       equality clears the overwhelmingly common case without field
       compares. *)
    if og != ng then begin
      let same_struct =
        og.C.output = ng.C.output
        && og.C.fanins = ng.C.fanins
        && Cell.Gate.name og.C.cell = Cell.Gate.name ng.C.cell
      in
      if not same_struct then begin
        structural.(g) <- true;
        dirty.(g) <- true;
        seeds := ng.C.output :: !seeds;
        let mark_driver net =
          match C.driver circuit net with
          | C.Driven_by d -> dirty.(d) <- true
          | C.Primary_input -> ()
        in
        Array.iter mark_driver og.C.fanins;
        Array.iter mark_driver ng.C.fanins
      end
      else if og.C.config <> ng.C.config then dirty.(g) <- true
    end
  done;
  (* External-load edits touch exactly the primary-output drivers. *)
  if external_load <> k.k_external_load then
    List.iter
      (fun po ->
        match C.driver circuit po with
        | C.Driven_by d -> dirty.(d) <- true
        | C.Primary_input -> ())
      (C.primary_outputs circuit);
  (* An objective or restriction flip re-decides every gate — but the
     statistics stay clean, so Najm propagation is still skipped. *)
  if maximize <> k.k_maximize || input_only <> k.k_input_only then
    Array.fill dirty 0 n true;
  (* Najm re-propagation, restricted to the fan-out cones of the edited
     nets. The early cut-off: a recomputed net whose statistics are
     bit-identical to the cache stops dirtying its readers. *)
  if !seeds <> [] then begin
    let cone = C.fanout_cone circuit !seeds in
    List.iter
      (fun g ->
        if cone.(g) || structural.(g) then begin
          let gate = C.gate_at circuit g in
          if
            structural.(g)
            || Array.exists (fun net -> net_dirty.(net)) gate.C.fanins
          then begin
            dirty.(g) <- true;
            let input_stats =
              Array.map (fun net -> stats.(net)) gate.C.fanins
            in
            let groups = Power.Model.groups_of_nets gate.C.fanins in
            let next =
              Power.Model.output_stats table gate.C.cell ~input_stats ~groups
                ()
            in
            if same_stats next stats.(gate.C.output) then
              Obs.incr c_inc_cutoffs
            else begin
              stats.(gate.C.output) <- next;
              net_dirty.(gate.C.output) <- true;
              Obs.incr c_inc_dirty_nets
            end
          end
        end)
      (C.topological_order circuit)
  end;
  (* Re-sweep the dirty gates through the standard decision path. *)
  let dirty_list = List.filter (fun g -> dirty.(g)) (C.topological_order circuit) in
  let loads = Array.copy k.k_loads in
  List.iter
    (fun g ->
      loads.(g) <- Power.Estimate.output_load table ~external_load circuit g)
    dirty_list;
  let configs = Array.init n (fun g -> (C.gate_at circuit g).C.config) in
  let explored = ref 0 in
  let candidates_for = candidates_of ~input_only in
  Telemetry.progress_begin ~phase:"incremental.sweep"
    ~total:
      (List.fold_left
         (fun acc g -> acc + List.length (candidates_for (C.gate_at circuit g)))
         0 dirty_list);
  let decide table g =
    Obs.span "optimize.gate" @@ fun () ->
    let gate = C.gate_at circuit g in
    let input_stats = Array.map (fun net -> stats.(net)) gate.C.fanins in
    let candidates = candidates_for gate in
    let chosen, reduction =
      decide_power table ?memo ~maximize ~input_only ~candidates
        ~load:loads.(g) ~input_stats gate
    in
    {
      d_gate = g;
      d_chosen = chosen;
      d_candidates = List.length candidates;
      d_reduction = reduction;
    }
  in
  let finish d =
    Obs.incr c_gates_visited;
    Obs.incr c_inc_dirty_gates;
    Obs.add c_configs_explored d.d_candidates;
    Obs.observe d_configs_per_gate (float_of_int d.d_candidates);
    explored := !explored + d.d_candidates;
    Option.iter (Obs.observe d_gate_reduction) d.d_reduction;
    configs.(d.d_gate) <- d.d_chosen;
    Telemetry.progress_tick ~n:d.d_candidates ()
  in
  (match pool with
  | Some p when Par.Pool.jobs p > 1 && List.length dirty_list > 1 ->
      let levels = C.levels circuit in
      let nlevels = C.depth circuit in
      let buckets = Array.make (nlevels + 1) [] in
      List.iter
        (fun g -> buckets.(levels.(g)) <- g :: buckets.(levels.(g)))
        (List.rev dirty_list);
      for level = 1 to nlevels do
        match buckets.(level) with
        | [] -> ()
        | [ g ] -> finish (decide table g)
        | batch ->
            Obs.incr c_parallel_levels;
            let decisions =
              Par.Pool.map p
                (fun g -> decide (Power.Model.domain_local table) g)
                (Array.of_list batch)
            in
            Array.iter finish decisions
      done;
      ignore (Power.Model.merge_forks table)
  | _ -> List.iter (fun g -> finish (decide table g)) dirty_list);
  (* Re-fold the per-gate power records in Estimate.circuit's exact
     order (internal and output accumulated separately, gate index
     ascending) so the totals are bit-identical to a cold run's. *)
  let per_gate =
    Array.init n (fun g ->
        if not dirty.(g) then
          let r = k.k_power.(g) in
          (r, r)
        else
          let gate = C.gate_at circuit g in
          let before =
            gate_power_of table ~stats ~load:loads.(g) gate
              ~config:gate.C.config
          in
          let after =
            if configs.(g) = gate.C.config then before
            else
              gate_power_of table ~stats ~load:loads.(g) gate
                ~config:configs.(g)
          in
          (before, after))
  in
  let internal_b = ref 0. and output_b = ref 0. in
  let internal_a = ref 0. and output_a = ref 0. in
  Array.iter
    (fun (b, a) ->
      internal_b := !internal_b +. b.Power.Model.internal;
      output_b := !output_b +. b.Power.Model.output;
      internal_a := !internal_a +. a.Power.Model.internal;
      output_a := !output_a +. a.Power.Model.output)
    per_gate;
  let rewritten = C.with_configs circuit configs in
  let gates_changed = ref 0 in
  Array.iteri
    (fun g chosen ->
      if chosen <> (C.gate_at circuit g).C.config then incr gates_changed)
    configs;
  s.s_cache <-
    Some
      {
        k_table = table;
        k_circuit = rewritten;
        k_stats = stats;
        k_power = Array.map snd per_gate;
        k_loads = loads;
        k_external_load = external_load;
        k_maximize = maximize;
        k_input_only = input_only;
        k_dirty = dirty;
      };
  {
    circuit = rewritten;
    configs;
    power_before = !internal_b +. !output_b;
    power_after = !internal_a +. !output_a;
    gates_changed = !gates_changed;
    configurations_explored = !explored;
  }

let optimize power_table ~delay ?(external_load = default_external_load)
    ?(objective = Min_power) ?(input_reordering_only = false) ?pool ?memo
    ?session:sess circuit ~inputs =
  match sess with
  | None ->
      fst
        (optimize_full power_table ~delay ~external_load ~objective
           ~input_reordering_only ?pool ?memo circuit ~inputs)
  | Some s ->
      (* The session's memoization policy wins: verdict purity makes a
         warm memo equivalent to a fresh one, but a memoized and an
         unmemoized sweep can legitimately disagree near quantization
         boundaries, so the mode must not change mid-session. *)
      let memo =
        match (s.s_memo, memo) with
        | Some own, Some provided ->
            Memo.merge ~into:own provided;
            Some own
        | Some own, None -> Some own
        | None, _ -> None
      in
      let maximize = objective = Max_power in
      let power_objective = objective = Min_power || objective = Max_power in
      let compatible kc =
        power_objective && kc.k_table == power_table
        && C.net_count kc.k_circuit = C.net_count circuit
        && C.gate_count kc.k_circuit = C.gate_count circuit
        && C.primary_inputs kc.k_circuit = C.primary_inputs circuit
        && C.primary_outputs kc.k_circuit = C.primary_outputs circuit
      in
      (match s.s_cache with
      | Some kc when compatible kc ->
          apply_incremental power_table ~external_load ~maximize
            ~input_only:input_reordering_only ?pool ?memo s kc circuit ~inputs
      | _ ->
          Obs.incr c_inc_cold_runs;
          let report, analysis =
            optimize_full power_table ~delay ~external_load ~objective
              ~input_reordering_only ?pool ?memo circuit ~inputs
          in
          if power_objective then begin
            let stats = Power.Analysis.all_stats analysis in
            let dirty = Array.make (C.gate_count circuit) true in
            s.s_cache <-
              Some
                (populate_cache power_table ~external_load ~maximize
                   ~input_only:input_reordering_only ~stats ~dirty report)
          end
          else s.s_cache <- None;
          report)

let best_and_worst power_table ~delay ?external_load ?pool ?memo circuit
    ~inputs =
  let best =
    optimize power_table ~delay ?external_load ~objective:Min_power ?pool ?memo
      circuit ~inputs
  in
  let worst =
    optimize power_table ~delay ?external_load ~objective:Max_power ?pool ?memo
      circuit ~inputs
  in
  (best, worst)
