module C = Netlist.Circuit

let c_gates_visited = Obs.counter "optimizer.gates_visited"
let c_configs_explored = Obs.counter "optimizer.configs_explored"
let c_configs_pruned = Obs.counter "optimizer.configs_pruned"
let c_sta_checks = Obs.counter "optimizer.sta_checks"
let c_sta_rejects = Obs.counter "optimizer.sta_rejects"
let c_parallel_levels = Obs.counter "optimizer.parallel_levels"
let c_wide_sweeps = Obs.counter "optimizer.wide_sweeps"
let d_configs_per_gate = Obs.distribution "optimizer.configs_per_gate"
let d_gate_reduction = Obs.distribution "optimizer.gate_reduction_percent"

type objective =
  | Min_power
  | Max_power
  | Min_power_delay_bounded
  | Min_delay

type report = {
  circuit : C.t;
  configs : int array;
  power_before : float;
  power_after : float;
  gates_changed : int;
  configurations_explored : int;
}

let reduction_percent ~best ~worst =
  if worst <= 0. then 0.
  else Float.min 100. (Float.max 0. (100. *. (worst -. best) /. worst))

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %.4g -> %.4g W (%.1f%% reduction, %d/%d gates changed, %d \
     configurations explored)"
    (C.name r.circuit) r.power_before r.power_after
    (reduction_percent ~best:r.power_after ~worst:r.power_before)
    r.gates_changed
    (Array.length r.configs) r.configurations_explored

(* Static timing of the circuit with an explicit configuration
   assignment, without materializing a rewritten circuit. Mirrors
   Delay.Sta but reads configs from [assignment]. *)
let critical_delay_with delay_table ~external_load circuit assignment =
  let arrival = Array.make (C.net_count circuit) 0. in
  let load_of g =
    let gate = C.gate_at circuit g in
    let pins =
      List.fold_left
        (fun acc (reader, pin) ->
          let cell = (C.gate_at circuit reader).C.cell in
          let network = Cell.Config.network (Cell.Config.reference cell) in
          acc
          +. Cell.Process.input_pin_capacitance
               (Delay.Elmore.process delay_table)
               network pin)
        0.
        (C.readers circuit gate.C.output)
    in
    if C.is_primary_output circuit gate.C.output then pins +. external_load
    else pins
  in
  List.iter
    (fun g ->
      let gate = C.gate_at circuit g in
      let load = load_of g in
      let worst = ref 0. in
      Array.iteri
        (fun pin net ->
          let d =
            Delay.Elmore.pin_delay delay_table gate.C.cell
              ~config:assignment.(g) ~pin ~load
          in
          worst := Float.max !worst (arrival.(net) +. d))
        gate.C.fanins;
      arrival.(gate.C.output) <- !worst)
    (C.topological_order circuit);
  List.fold_left
    (fun acc net -> Float.max acc arrival.(net))
    0. (C.primary_outputs circuit)

(* Candidate selection for one gate under the power objectives
   (FIND_BEST_REORDERING): power of each configuration with the gate's
   actual fan-out load and propagated input statistics. Returns the
   chosen index plus the chosen and incumbent configuration powers, so
   the caller can attribute the per-gate improvement. *)
let choose_by_power power_table ~maximize ~candidates ~load ~input_stats
    (gate : C.gate) =
  let cell = gate.C.cell in
  let groups = Power.Model.groups_of_nets gate.C.fanins in
  let power_of config =
    (Power.Model.gate_power power_table cell ~config ~input_stats ~groups
       ~load ())
      .Power.Model.total
  in
  let current = power_of gate.C.config in
  let score p = if maximize then -.p else p in
  let best_i, best_p =
    List.fold_left
      (fun (best_i, best_p) i ->
        let p = power_of i in
        if score p < score best_p then (i, p) else (best_i, best_p))
      (gate.C.config, current) candidates
  in
  (best_i, best_p, current)

(* Memo-miss variant: the winner must be a pure function of the memo key,
   so the fold is seeded with the first candidate (never the gate's
   incumbent configuration) and the caller passes the key's
   representative statistics and load. Racing workers that both miss an
   entry therefore compute the same winner, which is what makes memoized
   runs bit-identical across any domain count. *)
let choose_by_power_pure power_table ~maximize ~candidates ~load ~input_stats
    (gate : C.gate) =
  let cell = gate.C.cell in
  let groups = Power.Model.groups_of_nets gate.C.fanins in
  let power_of config =
    (Power.Model.gate_power power_table cell ~config ~input_stats ~groups
       ~load ())
      .Power.Model.total
  in
  let score p = if maximize then -.p else p in
  match candidates with
  | [] -> gate.C.config
  | first :: rest ->
      List.fold_left
        (fun (best_i, best_p) i ->
          let p = power_of i in
          if score p < score best_p then (i, p) else (best_i, best_p))
        (first, power_of first) rest
      |> fst

(* One power-objective gate decision: either the exhaustive sweep, or a
   memo hit keyed on (cell, direction, restriction, pin groups, quantized
   stats, load bucket). Returns the chosen index and — for minimization —
   the per-gate reduction percentage to feed the
   [optimizer.gate_reduction_percent] distribution. *)
let decide_power power_table ?memo ~maximize ~input_only ~candidates ~load
    ~input_stats (gate : C.gate) =
  match memo with
  | None ->
      let chosen, best, current =
        choose_by_power power_table ~maximize ~candidates ~load ~input_stats
          gate
      in
      let reduction =
        if maximize then None else Some (reduction_percent ~best ~worst:current)
      in
      (chosen, reduction)
  | Some memo ->
      let cell = gate.C.cell in
      let groups = Power.Model.groups_of_nets gate.C.fanins in
      let key =
        Memo.key ~cell ~maximize ~input_only ~groups ~input_stats ~load
      in
      let chosen =
        match Memo.lookup memo key with
        | Some chosen -> chosen
        | None ->
            let chosen =
              choose_by_power_pure power_table ~maximize ~candidates
                ~load:(Memo.representative_load load)
                ~input_stats:(Memo.representative_stats input_stats)
                gate
            in
            Memo.store memo key chosen;
            chosen
      in
      let reduction =
        if maximize then None
        else
          let power_of config =
            (Power.Model.gate_power power_table cell ~config ~input_stats
               ~groups ~load ())
              .Power.Model.total
          in
          let current = power_of gate.C.config in
          let best =
            if chosen = gate.C.config then current else power_of chosen
          in
          Some (reduction_percent ~best ~worst:current)
      in
      (chosen, reduction)

let choose_by_delay delay_table ~candidates ~load (gate : C.gate) =
  List.fold_left
    (fun (best_i, best_d) i ->
      let d = Delay.Elmore.worst_delay delay_table gate.C.cell ~config:i ~load in
      if d < best_d then (i, d) else (best_i, best_d))
    ( gate.C.config,
      Delay.Elmore.worst_delay delay_table gate.C.cell ~config:gate.C.config
        ~load )
    candidates
  |> fst

(* A worker's verdict on one gate; the coordinator applies these in
   submission order so counters, distributions, and the configs array
   evolve exactly as in a sequential run. *)
type decision = {
  d_gate : int;
  d_chosen : int;
  d_candidates : int;
  d_reduction : float option;
}

(* Below this many candidate configurations a single-gate level is not
   worth fanning out per-configuration. *)
let wide_sweep_threshold = 8

let default_external_load = 20e-15

let optimize power_table ~delay:delay_table
    ?(external_load = default_external_load) ?(objective = Min_power)
    ?(input_reordering_only = false) ?pool ?memo circuit ~inputs =
  Obs.span "optimize.run" @@ fun () ->
  let analysis = Power.Analysis.run power_table circuit ~inputs in
  let power_before =
    Power.Estimate.total power_table ~external_load circuit analysis
  in
  let n = C.gate_count circuit in
  let configs = Array.init n (fun g -> (C.gate_at circuit g).C.config) in
  let explored = ref 0 in
  let candidates_for (gate : C.gate) =
    let cell = gate.C.cell in
    let all = Cell.Config.all cell in
    let reference = Cell.Config.reference cell in
    let indexed = List.mapi (fun i c -> (i, c)) all in
    let kept =
      if input_reordering_only then
        List.filter (fun (_, c) -> Cell.Config.same_shape c reference) indexed
      else indexed
    in
    List.map fst kept
  in
  (* The delay bound is the *input* circuit's critical path: accepting a
     candidate must never push the circuit beyond it (§6.b: "power
     reductions without increasing the delay"). *)
  let delay_budget =
    match objective with
    | Min_power_delay_bounded ->
        Some
          (critical_delay_with delay_table ~external_load circuit configs
          +. 1e-18)
    | Min_power | Max_power | Min_delay -> None
  in
  (* The sweep's denominator is known before it starts (§4: every
     gate's candidate list is enumerable up-front), so the telemetry
     heartbeat's percent/ETA is exact rather than guessed. Both
     drivers tick per decided gate, weighted by its candidate count. *)
  Telemetry.progress_begin ~phase:"optimize.sweep"
    ~total:
      (List.fold_left
         (fun acc g -> acc + List.length (candidates_for (C.gate_at circuit g)))
         0 (C.topological_order circuit));
  let sequential () =
    (* Fig. 3: statistics are configuration-independent (§4.2), so the
       single Analysis pass already gives every gate its final input
       statistics; we visit gates in the paper's topological order. *)
    List.iter
      (fun g ->
        Obs.span "optimize.gate" @@ fun () ->
        let gate = C.gate_at circuit g in
        let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
        let load =
          Power.Estimate.output_load power_table ~external_load circuit g
        in
        let candidates = candidates_for gate in
        Obs.incr c_gates_visited;
        Obs.add c_configs_explored (List.length candidates);
        Obs.observe d_configs_per_gate (float_of_int (List.length candidates));
        explored := !explored + List.length candidates;
        (* Per-gate improvement of the chosen configuration over the
           incumbent one, as a percentage (the distribution behind the
           BENCH_obs.json [optimizer.gate_reduction_percent] metric). *)
        let observe_reduction ~best ~current =
          Obs.observe d_gate_reduction (reduction_percent ~best ~worst:current)
        in
        let chosen =
          match objective with
          | Min_power | Max_power ->
              let chosen, reduction =
                decide_power power_table ?memo
                  ~maximize:(objective = Max_power)
                  ~input_only:input_reordering_only ~candidates ~load
                  ~input_stats gate
              in
              Option.iter (Obs.observe d_gate_reduction) reduction;
              chosen
          | Min_delay -> choose_by_delay delay_table ~candidates ~load gate
          | Min_power_delay_bounded ->
              let budget = Option.get delay_budget in
              let admissible =
                List.filter
                  (fun i ->
                    let saved = configs.(g) in
                    configs.(g) <- i;
                    let d =
                      Obs.incr c_sta_checks;
                      critical_delay_with delay_table ~external_load circuit
                        configs
                    in
                    configs.(g) <- saved;
                    let ok = d <= budget in
                    if not ok then Obs.incr c_sta_rejects;
                    ok)
                  candidates
              in
              Obs.add c_configs_pruned
                (List.length candidates - List.length admissible);
              let chosen, best, current =
                choose_by_power power_table ~maximize:false
                  ~candidates:admissible ~load ~input_stats gate
              in
              observe_reduction ~best ~current;
              chosen
        in
        configs.(g) <- chosen;
        Telemetry.progress_tick ~n:(List.length candidates) ())
      (C.topological_order circuit)
  in
  (* Parallel driver: level the circuit, fan each level's gate sweeps
     across the pool. Statistics are configuration-independent (§4.2),
     so gates of one level are fully independent decisions; ordering only
     matters for how results are folded back, and [finish] applies them
     in submission order (ascending level, topological within a level) —
     the same order the sequential loop uses. Workers operate on
     [Power.Model.domain_local] forks; the coordinator merges them back
     after the last level. *)
  let parallel pool ~maximize =
    let levels = C.levels circuit in
    let nlevels = C.depth circuit in
    let buckets = Array.make (nlevels + 1) [] in
    List.iter
      (fun g -> buckets.(levels.(g)) <- g :: buckets.(levels.(g)))
      (List.rev (C.topological_order circuit));
    let decide table g =
      Obs.span "optimize.gate" @@ fun () ->
      let gate = C.gate_at circuit g in
      let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
      let load = Power.Estimate.output_load table ~external_load circuit g in
      let candidates = candidates_for gate in
      let chosen, reduction =
        decide_power table ?memo ~maximize ~input_only:input_reordering_only
          ~candidates ~load ~input_stats gate
      in
      {
        d_gate = g;
        d_chosen = chosen;
        d_candidates = List.length candidates;
        d_reduction = reduction;
      }
    in
    (* Single-gate level with a wide candidate list: split the sweep
       itself across domains, one configuration per task, then fold the
       powers exactly as [choose_by_power] would (same seed, same
       left-to-right order, strict comparison). *)
    let decide_wide g (gate : C.gate) candidates =
      Obs.incr c_wide_sweeps;
      let cell = gate.C.cell in
      let groups = Power.Model.groups_of_nets gate.C.fanins in
      let input_stats = Power.Analysis.gate_input_stats analysis circuit g in
      let load =
        Power.Estimate.output_load power_table ~external_load circuit g
      in
      let powers =
        Par.Pool.map ~chunk:1 pool
          (fun config ->
            let table = Power.Model.domain_local power_table in
            (Power.Model.gate_power table cell ~config ~input_stats ~groups
               ~load ())
              .Power.Model.total)
          (Array.of_list (gate.C.config :: candidates))
      in
      let current = powers.(0) in
      let score p = if maximize then -.p else p in
      let best_i = ref gate.C.config and best_p = ref current in
      List.iteri
        (fun k i ->
          let p = powers.(k + 1) in
          if score p < score !best_p then begin
            best_i := i;
            best_p := p
          end)
        candidates;
      let reduction =
        if maximize then None
        else Some (reduction_percent ~best:!best_p ~worst:current)
      in
      {
        d_gate = g;
        d_chosen = !best_i;
        d_candidates = List.length candidates;
        d_reduction = reduction;
      }
    in
    let finish d =
      Obs.incr c_gates_visited;
      Obs.add c_configs_explored d.d_candidates;
      Obs.observe d_configs_per_gate (float_of_int d.d_candidates);
      explored := !explored + d.d_candidates;
      Option.iter (Obs.observe d_gate_reduction) d.d_reduction;
      configs.(d.d_gate) <- d.d_chosen;
      Telemetry.progress_tick ~n:d.d_candidates ()
    in
    for level = 1 to nlevels do
      match buckets.(level) with
      | [] -> ()
      | [ g ] ->
          Obs.span "optimize.level" @@ fun () ->
          Obs.incr c_parallel_levels;
          let gate = C.gate_at circuit g in
          let candidates = candidates_for gate in
          if
            Option.is_none memo
            && List.length candidates >= wide_sweep_threshold
          then finish (decide_wide g gate candidates)
          else finish (decide power_table g)
      | batch ->
          Obs.span "optimize.level" @@ fun () ->
          Obs.incr c_parallel_levels;
          let decisions =
            Par.Pool.map pool
              (fun g -> decide (Power.Model.domain_local power_table) g)
              (Array.of_list batch)
          in
          Array.iter finish decisions
    done;
    ignore (Power.Model.merge_forks power_table)
  in
  (match (pool, objective) with
  | Some p, (Min_power | Max_power) when Par.Pool.jobs p > 1 ->
      parallel p ~maximize:(objective = Max_power)
  | _ -> sequential ());
  let rewritten = C.with_configs circuit configs in
  let power_after =
    Power.Estimate.total power_table ~external_load rewritten analysis
  in
  let gates_changed = ref 0 in
  Array.iteri
    (fun g chosen ->
      if chosen <> (C.gate_at circuit g).C.config then incr gates_changed)
    configs;
  {
    circuit = rewritten;
    configs;
    power_before;
    power_after;
    gates_changed = !gates_changed;
    configurations_explored = !explored;
  }

let best_and_worst power_table ~delay ?external_load ?pool ?memo circuit
    ~inputs =
  let best =
    optimize power_table ~delay ?external_load ~objective:Min_power ?pool ?memo
      circuit ~inputs
  in
  let worst =
    optimize power_table ~delay ?external_load ~objective:Max_power ?pool ?memo
      circuit ~inputs
  in
  (best, worst)
