(** Cross-gate best-configuration memoization.

    Benchmark circuits (trees, adders) sweep hundreds of structurally
    identical gates whose propagated input statistics are near-identical.
    The memo caches the winning configuration keyed by everything the
    sweep's outcome depends on: the cell (which fixes the canonical SP
    shape and the candidate set), the objective direction, the
    input-reordering-only restriction, the pin-tying groups, a
    {e quantized} signature of the per-pin input statistics, and a
    quantized load bucket.

    Determinism under parallelism is by construction: a miss computes
    the winner from the {e representative} (de-quantized) statistics and
    load of the key — never from the gate's exact values or its incumbent
    configuration — so the stored winner is a pure function of the key.
    Whichever worker populates an entry first, racing workers compute
    the same value, and a memoized run is bit-identical across any
    domain count (see {{!page-performance} the performance page}).

    Lookups bump the [optimizer.memo_hits] / [optimizer.memo_misses]
    {!Obs} counters. The table is mutex-guarded. *)

type t

val create : unit -> t
val size : t -> int

(** {1 Quantization grid}

    Probabilities land on a uniform grid of {!prob_buckets} steps over
    [\[0, 1\]]; densities and loads land on a logarithmic grid of
    {!log_buckets_per_decade} buckets per decade (non-positive values
    get a dedicated zero bucket). Exposed for boundary tests. *)

val prob_buckets : int
val log_buckets_per_decade : int

val quantize_prob : float -> int
(** Bucket index in [\[0, prob_buckets\]] (inputs are clamped to
    [\[0, 1\]] first). *)

val representative_prob : int -> float
(** Center of a probability bucket; [quantize_prob (representative_prob
    b) = b] for every valid bucket. *)

val quantize_log : float -> int option
(** [None] for values [<= 0] (the zero bucket). *)

val representative_log : int option -> float
(** [0.] for the zero bucket; otherwise the grid point of the bucket,
    with [quantize_log (representative_log b) = b]. *)

val key :
  cell:Cell.Gate.t ->
  maximize:bool ->
  input_only:bool ->
  groups:int array ->
  input_stats:Stoch.Signal_stats.t array ->
  load:float ->
  string
(** The memo key of one gate sweep. *)

val representative_stats :
  Stoch.Signal_stats.t array -> Stoch.Signal_stats.t array
(** The de-quantized statistics a miss must sweep with. *)

val representative_load : float -> float

val lookup : t -> string -> int option
(** Bumps [optimizer.memo_hits] or [optimizer.memo_misses]. *)

val store : t -> string -> int -> unit
(** First writer wins (racing writers store the same value by the
    purity argument above). *)

val merge : into:t -> t -> unit
(** [merge ~into src] copies every entry of [src] that [into] lacks
    (first-writer-wins, consistent with {!store}). Lets a session keep
    one warm memo across incremental re-optimizations instead of
    seeding a fresh table per run and throwing the verdicts away.
    Merging a memo into itself is a no-op. *)
