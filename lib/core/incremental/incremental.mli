(** ECO-style incremental re-optimization sessions.

    A session wraps a {!Reorder.Optimizer.session} together with the
    run's input-statistics model, the settled circuit and the retained
    {!Attrib} power-attribution ledger, and exposes a typed edit
    language over it. [apply] stages and validates a batch of edits,
    re-optimizes through the optimizer's dirty-cone fast path — only
    the fan-out cones of the edited nets are re-propagated and only the
    dirty gates re-swept — and patches the ledger in place. Every
    report and ledger is bit-identical to a cold full optimization of
    the edited circuit (the [incremental-equivalence] proptest oracle),
    at interactive latency: the per-edit cost is proportional to the
    edit's cone, not the circuit.

    Observability: [incremental.edits],
    [incremental.ledger_entries_patched] /
    [incremental.ledger_entries_settled] counters here, plus the
    optimizer's [incremental.applies] / [incremental.dirty_nets] /
    [incremental.dirty_gates] / [incremental.cutoffs] counters and
    [incremental.apply] span. *)

type edit =
  | Set_input_stats of Netlist.Circuit.net * Stoch.Signal_stats.t
      (** Change a primary input's probability/density. The net must be
          a primary input. *)
  | Replace_gate of int * Netlist.Circuit.gate
      (** Swap the gate at an index: cell, configuration and fanins may
          all change; the output net normally stays (any rewiring must
          leave every net exactly one driver — validated by
          {!Netlist.Circuit.create}). *)
  | Set_external_load of float  (** Primary-output load, F. *)
  | Set_objective of Reorder.Optimizer.objective
      (** Re-decide every gate under a new objective (statistics are
          untouched — the §4.2 invariant). Non-power objectives fall
          back to a cold full run. *)

exception Edit_error of string
(** An invalid edit (unknown net, non-PI stats target, bad gate index,
    broken rewiring, malformed script line). A failing [apply] batch
    leaves the session untouched. *)

type t

val create :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?external_load:float ->
  ?objective:Reorder.Optimizer.objective ->
  ?input_reordering_only:bool ->
  ?memoize:bool ->
  ?ledger:bool ->
  ?ledger_candidates:bool ->
  ?pool:Par.Pool.t ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  t
(** Run the initial (cold) optimization and retain everything.
    [memoize] (default false) keeps one warm {!Reorder.Memo} for the
    session's whole lifetime. [ledger] (default true) maintains the
    attribution ledger across applies; [ledger_candidates] (default
    true) keeps the per-configuration candidate sweeps in it. *)

val apply : ?pool:Par.Pool.t -> t -> edit list -> Reorder.Optimizer.report
(** Validate and apply one batch of edits, re-optimize incrementally,
    patch the ledger, and settle the session on the result. The report
    is bit-identical to a cold {!Reorder.Optimizer.optimize} of the
    edited circuit (except [configurations_explored], which counts only
    re-examined candidates). @raise Edit_error without mutating. *)

(** {1 Accessors} *)

val circuit : t -> Netlist.Circuit.t
(** The settled circuit: last report's rewrite (winning configs). *)

val report : t -> Reorder.Optimizer.report
val ledger : t -> Attrib.t option
(** [None] only when the session was created with [~ledger:false]. *)

val session : t -> Reorder.Optimizer.session
val objective : t -> Reorder.Optimizer.objective
val external_load : t -> float

val input_stats : t -> Netlist.Circuit.net -> Stoch.Signal_stats.t
(** Current statistics of a primary input.
    @raise Edit_error on a gate-driven net. *)

(** {1 NDJSON edit scripts}

    One line per [apply] batch: either a single edit object or an array
    of edit objects. Blank lines and [#] comments are skipped. Ops:

    {v
{"op":"set_input_stats","net":"a","prob":0.5,"density":2.0e8}
{"op":"replace_gate","gate":3,"cell":"nor2","config":0,"fanins":["x","y"]}
{"op":"set_external_load","farads":2.5e-14}
{"op":"set_objective","objective":"max_power"}
[{"op":"set_input_stats",...},{"op":"set_input_stats",...}]
    v}

    [replace_gate] keeps the old gate's output net; [cell], [config]
    and [fanins] default to the old gate's values. Net and gate
    references resolve against the given circuit (names and indices
    are stable across applies). *)

module Script : sig
  val edit_of_json : circuit:Netlist.Circuit.t -> Trace.Json.t -> edit
  (** @raise Edit_error on malformed or unresolvable edits. *)

  val parse : circuit:Netlist.Circuit.t -> string -> edit list list
  (** Whole script text to apply batches. @raise Edit_error with the
      offending 1-based line number. *)

  val load : circuit:Netlist.Circuit.t -> string -> edit list list
  (** [parse] a file. *)

  val objective_of_string : string -> Reorder.Optimizer.objective
  (** @raise Edit_error on an unknown name. *)

  val string_of_objective : Reorder.Optimizer.objective -> string
end

(** {1 Replay} *)

type timing = {
  batch : int;  (** index into the script *)
  edits : int;  (** edits in the batch *)
  seconds : float;  (** wall-clock time of the [apply] *)
  dirty_gates : int;  (** gates re-swept *)
}

val replay : ?pool:Par.Pool.t -> t -> edit list list -> timing list
(** Apply each batch in order, timing every [apply]. *)

val latency_percentiles : timing list -> float * float * float
(** [(p50, p90, p99)] of the batch latencies, in seconds (linear
    interpolation between order statistics; zeros on an empty list). *)
