module C = Netlist.Circuit
module O = Reorder.Optimizer
module Stats = Stoch.Signal_stats

let c_edits = Obs.counter "incremental.edits"
let c_ledger_patched = Obs.counter "incremental.ledger_entries_patched"
let c_ledger_settled = Obs.counter "incremental.ledger_entries_settled"

type edit =
  | Set_input_stats of C.net * Stats.t
  | Replace_gate of int * C.gate
  | Set_external_load of float
  | Set_objective of O.objective

exception Edit_error of string

let edit_error fmt = Format.kasprintf (fun s -> raise (Edit_error s)) fmt

type t = {
  table : Power.Model.table;
  delay : Delay.Elmore.table;
  session : O.session;
  keep_ledger : bool;
  ledger_candidates : bool;
  mutable circuit : C.t;  (* settled: the last run's rewritten circuit *)
  mutable pi_stats : Stats.t array;  (* per net; PI entries are live *)
  mutable external_load : float;
  mutable objective : O.objective;
  mutable input_only : bool;
  mutable report : O.report;
  mutable ledger : Attrib.t option;
}

let circuit t = t.circuit
let report t = t.report
let ledger t = t.ledger
let session t = t.session
let objective t = t.objective
let external_load t = t.external_load

let input_stats t net =
  match C.driver t.circuit net with
  | C.Primary_input -> t.pi_stats.(net)
  | C.Driven_by g ->
      edit_error "net %S is driven by gate %d, not a primary input"
        (C.net_name t.circuit net) g

(* Rebuild the ledger after a run. Fast path: the optimizer session
   tells us exactly which gates it re-swept; their entries are
   recomputed from the session's (already patched) statistics, every
   other entry is settled in place — its statistics, load, incumbent
   (the previous winner) and candidate sweep are all unchanged, so the
   patched ledger is bit-identical to one built cold from the edited
   circuit. *)
let rebuild_ledger t ~before (rep : O.report) =
  Obs.span "incremental.ledger" @@ fun () ->
  let n = C.gate_count before in
  let fresh_entries analysis dirty old =
    let settled = ref 0 and patched = ref 0 in
    let entries =
      Array.init n (fun g ->
          match old with
          | Some (prev : Attrib.t) when not dirty.(g) ->
              incr settled;
              Attrib.settle prev.Attrib.gates.(g)
          | _ ->
              incr patched;
              Attrib.gate_entry t.table ~external_load:t.external_load
                ~candidates:t.ledger_candidates ~before ~analysis
                ~config_after:rep.O.configs.(g) g)
    in
    Obs.add c_ledger_settled !settled;
    Obs.add c_ledger_patched !patched;
    entries
  in
  let ledger =
    match (O.session_stats t.session, O.session_dirty t.session) with
    | Some stats, Some dirty when Array.length dirty = n ->
        let analysis = Power.Analysis.of_stats stats in
        let old =
          match t.ledger with
          | Some prev when Array.length prev.Attrib.gates = n -> Some prev
          | _ -> None
        in
        Attrib.of_entries ~circuit:(C.name before)
          ~external_load:t.external_load
          (fresh_entries analysis dirty old)
    | _ ->
        (* Non-power objective: the session kept no cache; build cold. *)
        Attrib.of_report t.table ~external_load:t.external_load
          ~candidates:t.ledger_candidates ~before
          ~inputs:(fun net -> t.pi_stats.(net))
          rep
  in
  t.ledger <- Some ledger

let run ?pool t circuit =
  let rep =
    O.optimize t.table ~delay:t.delay ~external_load:t.external_load
      ~objective:t.objective ~input_reordering_only:t.input_only ?pool
      ~session:t.session circuit
      ~inputs:(fun net -> t.pi_stats.(net))
  in
  t.report <- rep;
  t.circuit <- rep.O.circuit;
  if t.keep_ledger then rebuild_ledger t ~before:circuit rep;
  rep

let create table ~delay ?(external_load = 20e-15) ?(objective = O.Min_power)
    ?(input_reordering_only = false) ?(memoize = false) ?(ledger = true)
    ?(ledger_candidates = true) ?pool circuit ~inputs =
  let pi_stats =
    Array.make (C.net_count circuit) (Stats.constant false)
  in
  List.iter (fun net -> pi_stats.(net) <- inputs net) (C.primary_inputs circuit);
  let t =
    {
      table;
      delay;
      session = O.session ~memoize ();
      keep_ledger = ledger;
      ledger_candidates;
      circuit;
      pi_stats;
      external_load;
      objective;
      input_only = input_reordering_only;
      report =
        (* placeholder, replaced by [run] below before [create] returns *)
        {
          O.circuit;
          configs = [||];
          power_before = 0.;
          power_after = 0.;
          gates_changed = 0;
          configurations_explored = 0;
        };
      ledger = None;
    }
  in
  ignore (run ?pool t circuit);
  t

(* Staged validation: every edit is checked (and the replacement
   circuit built) before any session state mutates, so a failing batch
   leaves the session untouched. *)
let apply ?pool t edits =
  let pi_updates = ref [] in
  let replacements = ref [] in
  let ext_load = ref t.external_load in
  let obj = ref t.objective in
  List.iter
    (fun edit ->
      Obs.incr c_edits;
      match edit with
      | Set_input_stats (net, s) ->
          if net < 0 || net >= C.net_count t.circuit then
            edit_error "set_input_stats: unknown net %d" net;
          (match C.driver t.circuit net with
          | C.Primary_input -> pi_updates := (net, s) :: !pi_updates
          | C.Driven_by g ->
              edit_error
                "set_input_stats: net %S is driven by gate %d, not a primary \
                 input"
                (C.net_name t.circuit net) g)
      | Replace_gate (g, gate) ->
          if g < 0 || g >= C.gate_count t.circuit then
            edit_error "replace_gate: no gate %d (circuit has %d)" g
              (C.gate_count t.circuit);
          replacements := (g, gate) :: !replacements
      | Set_external_load l ->
          if not (Float.is_finite l) || l < 0. then
            edit_error "set_external_load: %g F is not a load" l;
          ext_load := l
      | Set_objective o -> obj := o)
    edits;
  let circuit =
    if !replacements = [] then t.circuit
    else begin
      let gates = C.gates t.circuit in
      List.iter (fun (g, gate) -> gates.(g) <- gate) (List.rev !replacements);
      let config_only =
        List.for_all
          (fun (g, (gate : C.gate)) ->
            let old = C.gate_at t.circuit g in
            gate.C.output = old.C.output
            && gate.C.fanins = old.C.fanins
            && Cell.Gate.name gate.C.cell = Cell.Gate.name old.C.cell)
          !replacements
      in
      try
        if config_only then
          (* Connectivity is untouched: swap configurations through the
             validated O(gates) fast path instead of a full [create]
             (index rebuild + acyclicity check) — this is the ECO
             latency hot path. *)
          C.with_configs t.circuit
            (Array.map (fun (gate : C.gate) -> gate.C.config) gates)
        else
          C.create ~name:(C.name t.circuit)
            ~net_names:
              (Array.init (C.net_count t.circuit) (C.net_name t.circuit))
            ~primary_inputs:(C.primary_inputs t.circuit)
            ~primary_outputs:(C.primary_outputs t.circuit)
            ~gates:(Array.to_list gates)
      with C.Invalid msg -> edit_error "replace_gate: %s" msg
    end
  in
  List.iter (fun (net, s) -> t.pi_stats.(net) <- s) (List.rev !pi_updates);
  t.external_load <- !ext_load;
  t.objective <- !obj;
  run ?pool t circuit

(* --- NDJSON edit scripts -------------------------------------------- *)

module Script = struct
  module J = Trace.Json

  let objective_of_string = function
    | "min_power" -> O.Min_power
    | "max_power" -> O.Max_power
    | "min_power_delay_bounded" -> O.Min_power_delay_bounded
    | "min_delay" -> O.Min_delay
    | s -> edit_error "set_objective: unknown objective %S" s

  let string_of_objective = function
    | O.Min_power -> "min_power"
    | O.Max_power -> "max_power"
    | O.Min_power_delay_bounded -> "min_power_delay_bounded"
    | O.Min_delay -> "min_delay"

  let net_of ~circuit json key =
    match Option.bind (J.member key json) J.to_string with
    | None -> edit_error "edit needs a %S net name" key
    | Some name -> (
        match C.net_of_name circuit name with
        | Some net -> net
        | None -> edit_error "unknown net %S" name)

  let float_of json key =
    match Option.bind (J.member key json) J.to_float with
    | Some v -> v
    | None -> edit_error "edit needs a numeric %S field" key

  let int_of ?default json key =
    match (Option.bind (J.member key json) J.to_float, default) with
    | Some v, _ -> int_of_float v
    | None, Some d -> d
    | None, None -> edit_error "edit needs an integer %S field" key

  let edit_of_json ~circuit json =
    match Option.bind (J.member "op" json) J.to_string with
    | Some "set_input_stats" ->
        let net = net_of ~circuit json "net" in
        let prob = float_of json "prob" and density = float_of json "density" in
        Set_input_stats (net, Stats.make ~prob ~density)
    | Some "replace_gate" ->
        let g = int_of json "gate" in
        if g < 0 || g >= C.gate_count circuit then
          edit_error "replace_gate: no gate %d" g;
        let old = C.gate_at circuit g in
        let cell =
          match Option.bind (J.member "cell" json) J.to_string with
          | None -> old.C.cell
          | Some name -> (
              try Cell.Gate.of_name name
              with _ -> edit_error "replace_gate: unknown cell %S" name)
        in
        let fanins =
          match J.member "fanins" json with
          | Some (J.Arr names) ->
              Array.of_list
                (List.map
                   (fun j ->
                     match J.to_string j with
                     | Some name -> (
                         match C.net_of_name circuit name with
                         | Some net -> net
                         | None ->
                             edit_error "replace_gate: unknown net %S" name)
                     | None -> edit_error "replace_gate: fanins must be names")
                   names)
          | Some _ -> edit_error "replace_gate: fanins must be an array"
          | None -> old.C.fanins
        in
        let config = int_of ~default:old.C.config json "config" in
        Replace_gate
          (g, { C.cell; config; fanins; output = old.C.output })
    | Some "set_external_load" ->
        Set_external_load (float_of json "farads")
    | Some "set_objective" -> (
        match Option.bind (J.member "objective" json) J.to_string with
        | Some s -> Set_objective (objective_of_string s)
        | None -> edit_error "set_objective needs an %S field" "objective")
    | Some op -> edit_error "unknown edit op %S" op
    | None -> edit_error "edit has no \"op\" field"

  (* One NDJSON line = one [apply] batch: either a single edit object
     or an array of edit objects. Blank lines and [#] comments skip. *)
  let batch_of_line ~circuit line =
    match J.parse line with
    | Error msg -> edit_error "bad edit line: %s" msg
    | Ok (J.Arr edits) -> List.map (edit_of_json ~circuit) edits
    | Ok json -> [ edit_of_json ~circuit json ]

  let parse ~circuit text =
    let batches = ref [] in
    String.split_on_char '\n' text
    |> List.iteri (fun i line ->
           let line = String.trim line in
           if line <> "" && not (String.length line > 0 && line.[0] = '#')
           then
             try batches := batch_of_line ~circuit line :: !batches
             with Edit_error msg ->
               edit_error "line %d: %s" (i + 1) msg);
    List.rev !batches

  let load ~circuit path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse ~circuit text
end

(* --- replay ---------------------------------------------------------- *)

type timing = {
  batch : int;  (** index into the script *)
  edits : int;  (** edits in the batch *)
  seconds : float;  (** wall-clock time of the [apply] *)
  dirty_gates : int;  (** gates re-swept *)
}

let replay ?pool t script =
  let timings = ref [] in
  List.iteri
    (fun i edits ->
      let t0 = Unix.gettimeofday () in
      ignore (apply ?pool t edits);
      let dt = Unix.gettimeofday () -. t0 in
      let dirty_gates =
        match O.session_dirty t.session with
        | Some dirty ->
            Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty
        | None -> C.gate_count t.circuit
      in
      timings :=
        { batch = i; edits = List.length edits; seconds = dt; dirty_gates }
        :: !timings)
    script;
  List.rev !timings

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let latency_percentiles timings =
  let sorted =
    Array.of_list (List.map (fun tm -> tm.seconds) timings)
  in
  Array.sort compare sorted;
  ( percentile sorted 0.5,
    percentile sorted 0.9,
    percentile sorted 0.99 )
