(** Streams a {!Sim} run into a Value Change Dump ({!Vcd}) viewable in
    GTKWave: one top-level scope named after the circuit containing a
    1-bit variable per net, and (with [probe_internals]) one sub-scope
    per gate ([g<index>_<cell>]) containing its internal transistor
    nodes ([n0], [n1], ...).

    The dump round-trips through the in-repo {!Vcd.parse}: recounting
    0↔1 transitions per net variable reproduces the run's
    [net_toggles] exactly (for a run without warm-up), and the last
    value per variable is the simulator's final state. *)

val default_timescale : float
(** 1 ps (1e-12 s per VCD tick). *)

val sanitize : string -> string
(** Name mangling applied to circuit, net and cell names before they
    are written: characters outside [[A-Za-z0-9_.\[\]]] become ['_']
    (and an empty name becomes ["_"]), keeping identifiers portable
    across waveform viewers. A net's variable in the dump is
    [sanitize circuit_name ^ "." ^ sanitize net_name] under
    {!Vcd.full_name}. *)

val make :
  Sim.t ->
  ?probe_internals:bool ->
  ?timescale:float ->
  emit:(string -> unit) ->
  unit ->
  Sim.observer * (time:float -> unit)
(** [make sim ~emit ()] writes the VCD header and declarations through
    [emit] immediately and returns [(observer, finish)]: pass
    [observer] to one {!Sim.run}* call, then call [finish] with the
    run's absolute horizon (seconds) to stamp the end of the dump.
    Event times are rounded to the nearest [timescale] tick (default
    {!default_timescale}).
    @raise Invalid_argument if [timescale] is not 1, 10 or 100 times a
    power-of-ten second from 1 s down to 1 fs. *)
