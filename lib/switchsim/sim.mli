(** Event-driven switch-level simulation with capacitor-charging energy
    accounting — the measurement instrument of the paper's Table 3
    (column S), substituting for the SLS simulator [11].

    The circuit is simulated at the transistor level: each gate instance
    is its configured transistor graph; on every input event the fan-out
    cone is re-solved by path analysis (a node is high if a conducting
    path links it to vdd, low if to vss, holds its charge when isolated;
    complementary gates guarantee no shorts). Every low→high transition
    of a node deposits [C·Vdd²] of energy; average power is energy over
    the measurement window.

    Signal values are ternary: nodes that have never been driven are
    unknown ([X]); a charge from X is counted at half energy. Primary
    inputs are always known, so gate outputs are always known too. *)

type t
(** Static simulation structure for one circuit (configurations baked
    in — rebuild after {!Netlist.Circuit.with_configs}). *)

val build :
  Cell.Process.t -> ?external_load:float -> Netlist.Circuit.t -> t
(** Node capacitances follow the same model as the power estimator:
    junction + wire per node, fan-out pins + [external_load] (default
    20 fF) on output nets. *)

val circuit : t -> Netlist.Circuit.t

type value = V0 | V1 | VX
(** Ternary signal values as simulated. *)

val internal_nodes : t -> int -> int
(** Number of internal (non-rail, non-output) transistor-graph nodes of
    gate [g] under its baked-in configuration. *)

type result = {
  horizon : float;  (** measurement window, s (excludes warm-up) *)
  events : int;  (** primary-input transitions processed *)
  energy : float;  (** J over the window *)
  power : float;  (** [energy /. horizon], W *)
  per_gate_energy : float array;  (** J, by gate index *)
  per_net_energy : float array;
      (** J, by net id: all of a gate's deposits (output {e and}
          internal nodes) booked against the net it drives; primary
          inputs carry 0. Summed in net-id order, so
          [Array.fold_left (+.) 0. per_net_energy] equals [energy]
          {e exactly} (bit-for-bit), not merely within float noise. *)
  net_toggles : int array;  (** 0↔1 transitions per net *)
  net_high_time : float array;  (** s spent at 1 per net *)
  final_values : value array;  (** per-net value when the run ended *)
}

(** {1 Probes}

    An observer streams signal-level activity as it happens: every net
    value change, optionally every internal-node change and every
    energy deposit. Runs without an observer pay nothing — the emit
    sites test one [option] and move on, allocating no per-event
    closures (the [switchsim.probe_events] counter stays 0). *)

type observer = {
  on_net :
    time:float -> net:int -> before:value -> after:value -> in_window:bool -> unit;
      (** Every net change, including the initial settle at time 0.
          [in_window] is false for changes outside the accounting
          window (initialization and the warm-up period). *)
  on_internal :
    (time:float ->
    gate:int ->
    node:int ->
    before:value ->
    after:value ->
    in_window:bool ->
    unit)
    option;
      (** Internal-node changes of gate [gate]; [node >= 1] indexes
          internal node [node - 1] (the output, node 0, is visible
          through {!observer.on_net} on the gate's output net). *)
  on_energy : (time:float -> gate:int -> node:int -> energy:float -> unit) option;
      (** One event per energy deposit {e inside} the accounting
          window, with exactly the joules the accumulator books
          ([node] as in [on_internal], 0 for the output node). *)
}

val run :
  t ->
  ?warmup:float ->
  ?observer:observer ->
  inputs:(Netlist.Circuit.net -> Stoch.Waveform.t) ->
  unit ->
  result
(** Drives every primary input with its waveform. All waveforms must
    share one horizon; energy and statistics are collected from
    [warmup] (default 0) to the horizon. [observer] (if any) sees
    every event in non-decreasing time order.
    @raise Invalid_argument on mismatched horizons or a warm-up beyond
    the horizon. *)

val run_stats :
  t ->
  rng:Stoch.Rng.t ->
  stats:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  horizon:float ->
  ?warmup:float ->
  ?observer:observer ->
  unit ->
  result
(** Generates stationary Markov waveforms realizing [stats] (one
    independent RNG stream per input) and runs. *)

(** {1 Timed (inertial) mode}

    The zero-delay run settles the whole circuit instantaneously, so it
    never produces the {e useless transitions} (glitches) the paper's
    introduction blames for a large fraction of dynamic power. The timed
    mode delays each gate's {e output} by a caller-supplied inertial
    delay (internal nodes still follow the inputs immediately): output
    pulses shorter than the gate delay are absorbed, staggered input
    arrivals produce glitches, and the energy accounting picks them up.
    Compare a timed run against a zero-delay run on the same stimulus to
    measure glitch power. *)

val run_timed :
  t ->
  ?warmup:float ->
  ?observer:observer ->
  gate_delay:(int -> float) ->
  inputs:(Netlist.Circuit.net -> Stoch.Waveform.t) ->
  unit ->
  result
(** [gate_delay g] is the inertial propagation delay (seconds) of gate
    index [g] under its current configuration and load — typically
    [Delay.Elmore.worst_delay].
    @raise Invalid_argument as {!run}, or on a negative gate delay. *)

val run_timed_stats :
  t ->
  rng:Stoch.Rng.t ->
  stats:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  gate_delay:(int -> float) ->
  horizon:float ->
  ?warmup:float ->
  ?observer:observer ->
  unit ->
  result
(** Stochastic-stimulus variant of {!run_timed}; with equal [rng], it
    drives exactly the waveforms {!run_stats} would. *)

val measured_stats : result -> Netlist.Circuit.net -> Stoch.Signal_stats.t
(** Empirical probability / density of a net over the window. *)
