module C = Netlist.Circuit
module W = Stoch.Waveform

let c_events_popped = Obs.counter "switchsim.events_popped"
let c_gate_evals = Obs.counter "switchsim.gate_evals"
let c_net_toggles = Obs.counter "switchsim.net_toggles"
let c_glitches_absorbed = Obs.counter "switchsim.glitches_absorbed"
let c_probe_events = Obs.counter "switchsim.probe_events"

type value = V0 | V1 | VX

type observer = {
  on_net :
    time:float -> net:int -> before:value -> after:value -> in_window:bool -> unit;
  on_internal :
    (time:float ->
    gate:int ->
    node:int ->
    before:value ->
    after:value ->
    in_window:bool ->
    unit)
    option;
  on_energy : (time:float -> gate:int -> node:int -> energy:float -> unit) option;
}

(* Local node numbering inside one gate: 0 = vdd, 1 = vss, 2 = output,
   3+i = internal node i. *)
let vdd_node = 0
let vss_node = 1
let out_node = 2

type sim_device = {
  net : int;  (* controlling circuit net *)
  polarity : Sp.Sp_tree.polarity;
  a : int;
  b : int;  (* local terminal nodes *)
}

type sim_gate = {
  devices : sim_device array;
  n_nodes : int;
  caps : float array;  (* per local node; 0 for the rails *)
  output_net : int;
  adjacency : (int * int) array array;  (* node -> (device index, other node) *)
}

type t = {
  circ : C.t;
  proc : Cell.Process.t;
  gates : sim_gate array;
  topo : int array;
  readers : int list array;  (* net -> reading gate indices *)
}

let local_of_node = function
  | Sp.Network.Vdd -> vdd_node
  | Sp.Network.Vss -> vss_node
  | Sp.Network.Output -> out_node
  | Sp.Network.Internal i -> 3 + i

let default_external_load = 20e-15

let build proc ?(external_load = default_external_load) circ =
  let pin_cap cell pin =
    let network = Cell.Config.network (Cell.Config.reference cell) in
    Cell.Process.input_pin_capacitance proc network pin
  in
  let build_gate g (gate : C.gate) =
    ignore g;
    let configs = Cell.Config.all gate.C.cell in
    let config = List.nth configs gate.C.config in
    let network = Cell.Config.network config in
    let n_nodes = 3 + Sp.Network.internal_count network in
    let devices =
      Array.of_list
        (List.map
           (fun (d : Sp.Network.device) ->
             {
               net = gate.C.fanins.(d.input);
               polarity = d.polarity;
               a = local_of_node d.a;
               b = local_of_node d.b;
             })
           (Sp.Network.devices network))
    in
    let caps = Array.make n_nodes 0. in
    List.iter
      (fun node ->
        caps.(local_of_node node) <-
          Cell.Process.node_capacitance proc network node)
      (Sp.Network.power_nodes network);
    (* Fan-out load on the output node, mirroring the estimator. *)
    let fanout_load =
      List.fold_left
        (fun acc (reader, pin) ->
          acc +. pin_cap (C.gate_at circ reader).C.cell pin)
        0.
        (C.readers circ gate.C.output)
    in
    let external_part =
      if C.is_primary_output circ gate.C.output then external_load else 0.
    in
    caps.(out_node) <- caps.(out_node) +. fanout_load +. external_part;
    let adjacency = Array.make n_nodes [] in
    Array.iteri
      (fun i d ->
        adjacency.(d.a) <- (i, d.b) :: adjacency.(d.a);
        adjacency.(d.b) <- (i, d.a) :: adjacency.(d.b))
      devices;
    {
      devices;
      n_nodes;
      caps;
      output_net = gate.C.output;
      adjacency = Array.map Array.of_list adjacency;
    }
  in
  {
    circ;
    proc;
    gates = Array.mapi build_gate (C.gates circ);
    topo = Array.of_list (C.topological_order circ);
    readers =
      Array.init (C.net_count circ) (fun n ->
          List.map fst (C.readers circ n));
  }

let circuit t = t.circ
let internal_nodes t g = t.gates.(g).n_nodes - 3

type result = {
  horizon : float;
  events : int;
  energy : float;
  power : float;
  per_gate_energy : float array;
  per_net_energy : float array;
  net_toggles : int array;
  net_high_time : float array;
  final_values : value array;
}

(* Reachability over conducting devices, as a bitmask of local nodes.
   [on] decides whether each device conducts. *)
let reach gate ~on start =
  let mask = ref (1 lsl start) in
  let stack = ref [ start ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
        stack := rest;
        Array.iter
          (fun (di, other) ->
            if !mask land (1 lsl other) = 0 && on gate.devices.(di) then begin
              mask := !mask lor (1 lsl other);
              stack := other :: !stack
            end)
          gate.adjacency.(node)
  done;
  !mask

let device_definitely_on net_values d =
  match (net_values.(d.net), d.polarity) with
  | V1, Sp.Sp_tree.Nmos | V0, Sp.Sp_tree.Pmos -> true
  | (V0 | V1 | VX), _ -> false

let device_maybe_on net_values d =
  match net_values.(d.net) with
  | VX -> true
  | V0 | V1 -> device_definitely_on net_values d

type state = {
  sim : t;
  net_values : value array;
  node_states : value array array;  (* per gate, per local node *)
  dirty : bool array;  (* per gate *)
  per_gate_energy : float array;
  net_toggles : int array;
  net_high_time : float array;
  net_last_change : float array;
  mutable accounting_from : float;
  observer : observer option;
}

let fresh_state sim warmup observer =
  let n_nets = C.net_count sim.circ in
  {
    sim;
    net_values = Array.make n_nets VX;
    node_states =
      Array.map
        (fun g ->
          let a = Array.make g.n_nodes VX in
          a.(vdd_node) <- V1;
          a.(vss_node) <- V0;
          a)
        sim.gates;
    dirty = Array.make (Array.length sim.gates) false;
    per_gate_energy = Array.make (Array.length sim.gates) 0.;
    net_toggles = Array.make n_nets 0;
    net_high_time = Array.make n_nets 0.;
    net_last_change = Array.make n_nets 0.;
    accounting_from = warmup;
    observer;
  }

(* Accrue the time the net spent at 1 since its last change, clipped to
   the accounting window. *)
let accrue_high st ~now net =
  if st.net_values.(net) = V1 then begin
    let from = Float.max st.net_last_change.(net) st.accounting_from in
    if now > from then st.net_high_time.(net) <- st.net_high_time.(net) +. (now -. from)
  end

let set_net st ~now ~accounting net v =
  let old = st.net_values.(net) in
  if old <> v then begin
    accrue_high st ~now net;
    if accounting then begin
      match (old, v) with
      | (V0, V1) | (V1, V0) ->
          Obs.incr c_net_toggles;
          st.net_toggles.(net) <- st.net_toggles.(net) + 1
      | (V0 | V1 | VX), (V0 | V1 | VX) -> ()
    end;
    st.net_values.(net) <- v;
    st.net_last_change.(net) <- now;
    (match st.observer with
    | None -> ()
    | Some o ->
        Obs.incr c_probe_events;
        o.on_net ~time:now ~net ~before:old ~after:v ~in_window:accounting);
    List.iter (fun g -> st.dirty.(g) <- true) st.sim.readers.(net)
  end

(* Solve one gate's node states against the current net values, without
   committing anything: returns the array of next values (previous
   values persist on isolated, charge-holding nodes). *)
let solve st g =
  let gate = st.sim.gates.(g) in
  let states = st.node_states.(g) in
  let definite = device_definitely_on st.net_values in
  let maybe = device_maybe_on st.net_values in
  let r1 = reach gate ~on:definite vdd_node in
  let r0 = reach gate ~on:definite vss_node in
  let m1 = reach gate ~on:maybe vdd_node in
  let m0 = reach gate ~on:maybe vss_node in
  Array.init gate.n_nodes (fun node ->
      if node < out_node then states.(node)
      else
        let bit = 1 lsl node in
        if r1 land bit <> 0 && m0 land bit = 0 then V1
        else if r0 land bit <> 0 && m1 land bit = 0 then V0
        else if m1 land bit = 0 && m0 land bit = 0 then states.(node)
        else VX)

(* Commit one node's new value, depositing charging energy when it
   rises inside the accounting window. *)
let commit_node st ~now ~accounting g node next =
  let gate = st.sim.gates.(g) in
  let states = st.node_states.(g) in
  let prev = states.(node) in
  if next <> prev then begin
    if accounting && next = V1 then begin
      let vdd = st.sim.proc.Cell.Process.vdd in
      let scale = match prev with V0 -> 1. | VX -> 0.5 | V1 -> 0. in
      let e = scale *. gate.caps.(node) *. vdd *. vdd in
      st.per_gate_energy.(g) <- st.per_gate_energy.(g) +. e;
      match st.observer with
      | Some { on_energy = Some f; _ } ->
          Obs.incr c_probe_events;
          f ~time:now ~gate:g ~node:(node - out_node) ~energy:e
      | Some _ | None -> ()
    end;
    states.(node) <- next;
    if node > out_node then
      match st.observer with
      | Some { on_internal = Some f; _ } ->
          Obs.incr c_probe_events;
          f ~time:now ~gate:g ~node:(node - out_node) ~before:prev ~after:next
            ~in_window:accounting
      | Some _ | None -> ()
  end

(* Zero-delay evaluation: commit every powered node immediately and
   return the new output value. *)
let evaluate_gate st ~now ~accounting g =
  Obs.incr c_gate_evals;
  let next = solve st g in
  let gate = st.sim.gates.(g) in
  for node = out_node to gate.n_nodes - 1 do
    commit_node st ~now ~accounting g node next.(node)
  done;
  next.(out_node)

(* Sweep all dirty gates in topological order, propagating output
   changes onward. *)
let settle st ~now ~accounting =
  Array.iter
    (fun g ->
      if st.dirty.(g) then begin
        st.dirty.(g) <- false;
        let out = evaluate_gate st ~now ~accounting g in
        set_net st ~now ~accounting st.sim.gates.(g).output_net out
      end)
    st.sim.topo

(* Per-net energy is the driving gate's total (every net has at most
   one driver, so this is a re-indexing of [per_gate_energy], not a
   re-summation); [energy] is defined as its fold in net-id order so
   the per-net decomposition is conserved bit-for-bit. *)
let mk_result st ~events ~window =
  let per_net = Array.make (C.net_count st.sim.circ) 0. in
  Array.iteri
    (fun g (sg : sim_gate) -> per_net.(sg.output_net) <- st.per_gate_energy.(g))
    st.sim.gates;
  let energy = Array.fold_left ( +. ) 0. per_net in
  {
    horizon = window;
    events;
    energy;
    power = energy /. window;
    per_gate_energy = st.per_gate_energy;
    per_net_energy = per_net;
    net_toggles = st.net_toggles;
    net_high_time = st.net_high_time;
    final_values = Array.copy st.net_values;
  }

let run t ?(warmup = 0.) ?observer ~inputs () =
  Obs.span "switchsim.run" @@ fun () ->
  let pis = C.primary_inputs t.circ in
  let horizon =
    match pis with
    | [] -> invalid_arg "Switchsim.run: circuit has no primary inputs"
    | first :: rest ->
        let h = W.horizon (inputs first) in
        List.iter
          (fun net ->
            if W.horizon (inputs net) <> h then
              invalid_arg "Switchsim.run: waveform horizons differ")
          rest;
        h
  in
  if warmup < 0. || warmup >= horizon then
    invalid_arg "Switchsim.run: warmup outside [0, horizon)";
  let st = fresh_state t warmup observer in
  (* Initial values at t = 0, no energy accounting. *)
  List.iter
    (fun net ->
      set_net st ~now:0. ~accounting:false net
        (if W.initial (inputs net) then V1 else V0))
    pis;
  Array.iter (fun g -> st.dirty.(g) <- true) t.topo;
  settle st ~now:0. ~accounting:false;
  (* Merge the per-input event streams by time. *)
  let events =
    List.concat_map
      (fun net ->
        Array.to_list (Array.map (fun time -> (time, net)) (W.transitions (inputs net))))
      pis
    |> List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
  in
  let n_events = List.length events in
  (* Events sharing an instant (clocked stimuli) are applied together
     before settling, otherwise phantom glitches appear between the
     partial input updates. *)
  let flip ~now ~accounting net =
    Obs.incr c_events_popped;
    let flipped =
      match st.net_values.(net) with V1 -> V0 | V0 -> V1 | VX -> V1
    in
    set_net st ~now ~accounting net flipped
  in
  let rec process = function
    | [] -> ()
    | (now, net) :: rest ->
        let accounting = now >= warmup in
        flip ~now ~accounting net;
        let rec simultaneous = function
          | (t, other) :: more when t = now ->
              flip ~now ~accounting other;
              simultaneous more
          | remaining -> remaining
        in
        let rest = simultaneous rest in
        settle st ~now ~accounting;
        process rest
  in
  process events;
  (* Flush high-time up to the horizon. *)
  Array.iteri (fun net _ -> accrue_high st ~now:horizon net) st.net_values;
  mk_result st ~events:n_events ~window:(horizon -. warmup)

let run_stats t ~rng ~stats ~horizon ?(warmup = 0.) ?observer () =
  let table = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let stream = Stoch.Rng.split rng in
      Hashtbl.add table net (W.generate stream (stats net) ~horizon))
    (C.primary_inputs t.circ);
  let inputs net =
    match Hashtbl.find_opt table net with
    | Some w -> w
    | None -> invalid_arg "Switchsim.run_stats: not a primary input net"
  in
  run t ~warmup ?observer ~inputs ()

(* --- timed (inertial) mode --- *)

type timed_event =
  | Input_toggle of int  (* net *)
  | Commit of int * int  (* gate, serial; stale when the serial moved on *)

let run_timed t ?(warmup = 0.) ?observer ~gate_delay ~inputs () =
  Obs.span "switchsim.run_timed" @@ fun () ->
  let pis = C.primary_inputs t.circ in
  let horizon =
    match pis with
    | [] -> invalid_arg "Switchsim.run: circuit has no primary inputs"
    | first :: rest ->
        let h = W.horizon (inputs first) in
        List.iter
          (fun net ->
            if W.horizon (inputs net) <> h then
              invalid_arg "Switchsim.run: waveform horizons differ")
          rest;
        h
  in
  if warmup < 0. || warmup >= horizon then
    invalid_arg "Switchsim.run: warmup outside [0, horizon)";
  let n_gates = Array.length t.gates in
  let delays =
    Array.init n_gates (fun g ->
        let d = gate_delay g in
        if d < 0. || not (Float.is_finite d) then
          invalid_arg "Switchsim.run_timed: negative gate delay";
        d)
  in
  let st = fresh_state t warmup observer in
  (* Initial values at t = 0 settle with zero delay, no accounting. *)
  List.iter
    (fun net ->
      set_net st ~now:0. ~accounting:false net
        (if W.initial (inputs net) then V1 else V0))
    pis;
  Array.iter (fun g -> st.dirty.(g) <- true) t.topo;
  settle st ~now:0. ~accounting:false;
  let heap = Event_heap.create () in
  let n_events = ref 0 in
  List.iter
    (fun net ->
      Array.iter
        (fun time ->
          incr n_events;
          Event_heap.push heap ~time (Input_toggle net))
        (W.transitions (inputs net)))
    pis;
  (* Per-gate pending output commit, invalidated by bumping the serial
     (lazy deletion in the heap). *)
  let serial = Array.make n_gates 0 in
  let pending = Array.make n_gates VX in
  let has_pending = Array.make n_gates false in
  let schedule now g v =
    serial.(g) <- serial.(g) + 1;
    pending.(g) <- v;
    has_pending.(g) <- true;
    Event_heap.push heap ~time:(now +. delays.(g)) (Commit (g, serial.(g)))
  in
  let cancel g =
    (* A scheduled output pulse narrower than the gate's inertial delay
       is swallowed before it ever reaches the net: a filtered glitch. *)
    Obs.incr c_glitches_absorbed;
    serial.(g) <- serial.(g) + 1;
    has_pending.(g) <- false
  in
  (* A gate reacts to an input change: internal nodes follow at once
     (their RC is folded into the gate delay), the output transition is
     scheduled after the inertial delay — or absorbed if the inputs
     moved back first. *)
  let react now ~accounting g =
    Obs.incr c_gate_evals;
    let next = solve st g in
    let gate = t.gates.(g) in
    for node = out_node + 1 to gate.n_nodes - 1 do
      commit_node st ~now ~accounting g node next.(node)
    done;
    let v = next.(out_node) in
    let current = st.net_values.(gate.output_net) in
    if has_pending.(g) then begin
      if v = pending.(g) then ()
      else if v = current then cancel g
      else schedule now g v
    end
    else if v <> current then schedule now g v
  in
  let rec drain () =
    match Event_heap.pop heap with
    | None -> ()
    | Some (now, event) ->
        Obs.incr c_events_popped;
        let accounting = now >= warmup in
        begin match event with
        | Input_toggle net ->
            let flipped =
              match st.net_values.(net) with V1 -> V0 | V0 -> V1 | VX -> V1
            in
            set_net st ~now ~accounting net flipped;
            List.iter (react now ~accounting) t.readers.(net)
        | Commit (g, s) ->
            if has_pending.(g) && s = serial.(g) then begin
              has_pending.(g) <- false;
              let v = pending.(g) in
              let gate = t.gates.(g) in
              commit_node st ~now ~accounting g out_node v;
              set_net st ~now ~accounting gate.output_net v;
              List.iter (react now ~accounting) t.readers.(gate.output_net)
            end
        end;
        drain ()
  in
  drain ();
  Array.iteri (fun net _ -> accrue_high st ~now:horizon net) st.net_values;
  mk_result st ~events:!n_events ~window:(horizon -. warmup)

let run_timed_stats t ~rng ~stats ~gate_delay ~horizon ?(warmup = 0.) ?observer
    () =
  let table = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let stream = Stoch.Rng.split rng in
      Hashtbl.add table net (W.generate stream (stats net) ~horizon))
    (C.primary_inputs t.circ);
  let inputs net =
    match Hashtbl.find_opt table net with
    | Some w -> w
    | None -> invalid_arg "Switchsim.run_stats: not a primary input net"
  in
  run_timed t ~warmup ?observer ~gate_delay ~inputs ()

let measured_stats (r : result) net =
  Stoch.Signal_stats.make
    ~prob:(Float.min 1. (r.net_high_time.(net) /. r.horizon))
    ~density:(float_of_int r.net_toggles.(net) /. r.horizon)
