module C = Netlist.Circuit

let default_timescale = 1e-12

let timescale_label ts =
  let units =
    [ (1., "s"); (1e-3, "ms"); (1e-6, "us"); (1e-9, "ns"); (1e-12, "ps"); (1e-15, "fs") ]
  in
  let close a b = Float.abs (a -. b) <= 1e-3 *. b in
  let rec find = function
    | [] -> invalid_arg "Vcd_dump.make: timescale must be 1/10/100 x 1s..1fs"
    | (unit, label) :: rest ->
        if close ts unit then Printf.sprintf "1 %s" label
        else if close ts (10. *. unit) then Printf.sprintf "10 %s" label
        else if close ts (100. *. unit) then Printf.sprintf "100 %s" label
        else find rest
  in
  find units

(* VCD identifiers may not contain whitespace; keep names portable for
   viewers by restricting to a safe alphabet. *)
let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '[' || c = ']'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_" else s

let value = function Sim.V0 -> Vcd.V0 | Sim.V1 -> Vcd.V1 | Sim.VX -> Vcd.VX

let make sim ?(probe_internals = false) ?(timescale = default_timescale) ~emit
    () =
  let label = timescale_label timescale in
  let circ = Sim.circuit sim in
  let w = Vcd.create ~timescale:label ~emit () in
  Vcd.open_scope w (sanitize (C.name circ));
  let net_vars =
    Array.init (C.net_count circ) (fun n ->
        Vcd.add_var w (sanitize (C.net_name circ n)))
  in
  let node_vars =
    if not probe_internals then [||]
    else
      Array.init (C.gate_count circ) (fun g ->
          let gate = C.gate_at circ g in
          let n = Sim.internal_nodes sim g in
          if n = 0 then [||]
          else begin
            Vcd.open_scope w
              (Printf.sprintf "g%d_%s" g (sanitize (Cell.Gate.name gate.C.cell)));
            let vars =
              Array.init n (fun i -> Vcd.add_var w (Printf.sprintf "n%d" i))
            in
            Vcd.close_scope w;
            vars
          end)
  in
  Vcd.close_scope w;
  Vcd.enddefinitions w;
  let tick t = int_of_float (Float.round (t /. timescale)) in
  let on_net ~time ~net ~before:_ ~after ~in_window:_ =
    Vcd.change w ~time:(tick time) net_vars.(net) (value after)
  in
  let on_internal =
    if not probe_internals then None
    else
      Some
        (fun ~time ~gate ~node ~before:_ ~after ~in_window:_ ->
          Vcd.change w ~time:(tick time) node_vars.(gate).(node - 1)
            (value after))
  in
  let observer = { Sim.on_net; on_internal; on_energy = None } in
  let finish ~time = Vcd.finish w ~time:(tick time) in
  (observer, finish)
