exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string c =
  let buf = Buffer.create 1024 in
  let net n = Circuit.net_name c n in
  Buffer.add_string buf ("circuit " ^ Circuit.name c ^ "\n");
  List.iter
    (fun n -> Buffer.add_string buf ("input " ^ net n ^ "\n"))
    (Circuit.primary_inputs c);
  Array.iter
    (fun (g : Circuit.gate) ->
      Buffer.add_string buf
        (Printf.sprintf "gate %s %s = %s [%d]\n"
           (Cell.Gate.name g.cell) (net g.output)
           (String.concat " " (List.map net (Array.to_list g.fanins)))
           g.config))
    (Circuit.gates c);
  List.iter
    (fun n -> Buffer.add_string buf ("output " ^ net n ^ "\n"))
    (Circuit.primary_outputs c);
  Buffer.contents buf

(* Tokenized line with its 1-based source position. *)
let significant_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) ->
         let l = match String.index_opt l '#' with
           | Some j -> String.sub l 0 j
           | None -> l
         in
         let words =
           String.split_on_char ' ' l
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         in
         if words = [] then None else Some (i, words))

type pending_gate = {
  line : int;
  cell : Cell.Gate.t;
  out_name : string;
  in_names : string list;
  config : int;
}

let of_string text =
  let name = ref "circuit" in
  let inputs = ref [] (* (line, name), reversed *) in
  let outputs = ref [] in
  let pending = ref [] in
  let parse_gate line = function
    | cell_name :: out_name :: "=" :: rest ->
        let cell =
          try Cell.Gate.of_name cell_name
          with Not_found -> parse_error line "unknown cell %S" cell_name
        in
        let in_names, config =
          match List.rev rest with
          | last :: before
            when String.length last > 2
                 && last.[0] = '['
                 && last.[String.length last - 1] = ']' -> begin
              let k = String.sub last 1 (String.length last - 2) in
              match int_of_string_opt k with
              | Some k -> (List.rev before, k)
              | None -> parse_error line "bad configuration index %S" last
            end
          | _ -> (rest, 0)
        in
        let arity = Cell.Gate.arity cell in
        if List.length in_names <> arity then
          parse_error line "%s %s: %d fanins, but %s has arity %d" cell_name
            out_name (List.length in_names) cell_name arity;
        pending := { line; cell; out_name; in_names; config } :: !pending
    | _ -> parse_error line "expected: gate <cell> <out> = <in...> [k]"
  in
  List.iter
    (fun (line, words) ->
      match words with
      | "circuit" :: [ n ] -> name := n
      | "circuit" :: _ -> parse_error line "expected: circuit <name>"
      | "input" :: names when names <> [] ->
          List.iter (fun n -> inputs := (line, n) :: !inputs) names
      | "output" :: names when names <> [] ->
          List.iter (fun n -> outputs := n :: !outputs) names
      | "gate" :: rest -> parse_gate line rest
      | keyword :: _ -> parse_error line "unknown directive %S" keyword
      | [] -> ())
    (significant_lines text);
  (* Assign net ids: primary inputs first, then gate outputs in file
     order; fanins may reference either. *)
  let ids = Hashtbl.create 64 in
  let names = ref [] in
  let next = ref 0 in
  let declare line what n =
    if Hashtbl.mem ids n then parse_error line "net %S declared twice (%s)" n what;
    Hashtbl.add ids n !next;
    names := n :: !names;
    incr next
  in
  List.iter (fun (line, n) -> declare line "input" n) (List.rev !inputs);
  let pending = List.rev !pending in
  List.iter (fun pg -> declare pg.line "gate output" pg.out_name) pending;
  let resolve line n =
    match Hashtbl.find_opt ids n with
    | Some id -> id
    | None -> parse_error line "undeclared net %S" n
  in
  let gates =
    List.map
      (fun pg ->
        {
          Circuit.cell = pg.cell;
          config = pg.config;
          fanins = Array.of_list (List.map (resolve pg.line) pg.in_names);
          output = resolve pg.line pg.out_name;
        })
      pending
  in
  Circuit.create ~name:!name
    ~net_names:(Array.of_list (List.rev !names))
    ~primary_inputs:(List.map (fun (line, n) -> resolve line n) (List.rev !inputs))
    ~primary_outputs:(List.map (resolve 0) (List.rev !outputs))
    ~gates

(* --- BLIF subset --- *)

(* Formal input pins A..F map to pin indices 0..5; the output pin is O
   (Y and Z accepted). Case-insensitive. *)
let pin_index line formal =
  match String.uppercase_ascii formal with
  | "A" -> `In 0
  | "B" -> `In 1
  | "C" -> `In 2
  | "D" -> `In 3
  | "E" -> `In 4
  | "F" -> `In 5
  | "O" | "Y" | "Z" -> `Out
  | _ -> parse_error line "unknown formal pin %S" formal

(* Join "\<newline>" continuation lines. *)
let join_continuations text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let rec go i =
    if i < n then
      if i + 1 < n && text.[i] = '\\' && text.[i + 1] = '\n' then begin
        Buffer.add_char buf ' ';
        go (i + 2)
      end
      else begin
        Buffer.add_char buf text.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let of_blif text =
  let text = join_continuations text in
  let name = ref "blif" in
  let inputs = ref [] and outputs = ref [] and pending = ref [] in
  let seen_end = ref false in
  List.iter
    (fun (line, words) ->
      if not !seen_end then
        match words with
        | ".model" :: [ n ] -> name := n
        | ".model" :: _ -> parse_error line "expected: .model <name>"
        | ".inputs" :: names -> inputs := !inputs @ names
        | ".outputs" :: names -> outputs := !outputs @ names
        | ".end" :: _ -> seen_end := true
        | ".names" :: _ ->
            parse_error line ".names is not supported: map the circuit onto the gate library first"
        | ".latch" :: _ -> parse_error line "sequential elements are not supported"
        | ".gate" :: cell_name :: bindings ->
            let cell =
              try Cell.Gate.of_name cell_name
              with Not_found -> parse_error line "unknown cell %S" cell_name
            in
            let arity = Cell.Gate.arity cell in
            let ins = Array.make arity "" in
            let out = ref "" in
            List.iter
              (fun b ->
                match String.index_opt b '=' with
                | None -> parse_error line "expected pin=net, got %S" b
                | Some i ->
                    let formal = String.sub b 0 i in
                    let actual = String.sub b (i + 1) (String.length b - i - 1) in
                    begin match pin_index line formal with
                    | `In k when k < arity -> ins.(k) <- actual
                    | `In _ -> parse_error line "pin %S beyond %s arity" formal cell_name
                    | `Out -> out := actual
                    end)
              bindings;
            if !out = "" then parse_error line "missing output pin binding";
            Array.iteri
              (fun k n ->
                if n = "" then
                  parse_error line "missing binding for input pin %d of %s" k
                    cell_name)
              ins;
            pending :=
              {
                line;
                cell;
                out_name = !out;
                in_names = Array.to_list ins;
                config = 0;
              }
              :: !pending
        | ".gate" :: _ -> parse_error line "expected: .gate <cell> <pin=net...>"
        | w :: _ when String.length w > 0 && w.[0] = '.' ->
            parse_error line "unsupported BLIF directive %S" w
        | _ -> parse_error line "unexpected tokens outside a directive")
    (significant_lines text);
  (* Reuse the native assembler by rendering to the native format. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("circuit " ^ !name ^ "\n");
  List.iter (fun n -> Buffer.add_string buf ("input " ^ n ^ "\n")) !inputs;
  List.iter
    (fun pg ->
      Buffer.add_string buf
        (Printf.sprintf "gate %s %s = %s\n" (Cell.Gate.name pg.cell) pg.out_name
           (String.concat " " pg.in_names)))
    (List.rev !pending);
  List.iter (fun n -> Buffer.add_string buf ("output " ^ n ^ "\n")) !outputs;
  of_string (Buffer.contents buf)

let save c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let text = read_file path in
  if Filename.check_suffix path ".blif" then of_blif text else of_string text
