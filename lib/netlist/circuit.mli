(** Gate-level combinational circuits over the {!Cell.Gate} library.

    A circuit is a DAG of gate instances connected by nets. Every net is
    driven either by exactly one gate output or by a primary input; a
    gate instance carries the index of its chosen transistor
    configuration (into [Cell.Config.all]), which is what the optimizer
    rewrites. Construct circuits with {!Builder} or {!Io}; direct
    construction goes through {!create}, which checks every structural
    invariant. *)

type net = int

type gate = {
  cell : Cell.Gate.t;
  config : int;  (** index into [Cell.Config.all cell] *)
  fanins : net array;  (** length = arity; [fanins.(pin)] *)
  output : net;
}

type t

type driver = Primary_input | Driven_by of int  (** gate index *)

exception Invalid of string
(** Raised by {!create} with a description of the violated invariant. *)

val create :
  name:string ->
  net_names:string array ->
  primary_inputs:net list ->
  primary_outputs:net list ->
  gates:gate list ->
  t
(** Validates: arities match, configuration indices are in range, each
    net has exactly one driver (gate output or primary input), names are
    unique and non-empty, primary outputs exist, and the gate graph is
    acyclic. @raise Invalid otherwise. *)

(** {1 Accessors} *)

val name : t -> string
val net_count : t -> int
val gate_count : t -> int
val gates : t -> gate array
(** Fresh copy; gate indices are positions in this array. *)

val gate_at : t -> int -> gate
val primary_inputs : t -> net list
val primary_outputs : t -> net list
val net_name : t -> net -> string
val net_of_name : t -> string -> net option
val driver : t -> net -> driver
val readers : t -> net -> (int * int) list
(** Gates reading a net, as [(gate index, pin)] pairs. *)

val fanout : t -> net -> int list
(** Gates reading the net — {!readers} deduplicated by gate, ascending
    by gate index. Precomputed at {!create}; O(1) per call. *)

val fanout_count : t -> net -> int
(** Number of gate input pins the net drives (a multi-input gate
    reading the net twice counts twice). *)

val fanout_cone : t -> net list -> bool array
(** [fanout_cone t nets] marks every gate in the union of the
    transitive fan-out cones of [nets]: gate [g] is marked iff some
    path of driver→reader edges leads from a seed net to [g]. The
    result is indexed by gate; reconvergent fan-out is visited once.
    @raise Invalid on an unknown net. *)

val is_primary_output : t -> net -> bool

(** {1 Analysis} *)

val topological_order : t -> int list
(** Gate indices such that every gate appears after the drivers of all
    its fanins (the order OBTAIN_PROBABILITIES traverses, Fig. 3). *)

val levels : t -> int array
(** Per-gate logic depth: 1 + max level of fanin gates, 1 for gates fed
    only by primary inputs. *)

val depth : t -> int
(** Max level; 0 for an empty circuit. *)

val transistor_count : t -> int

(** {1 Rewriting} *)

val with_configs : t -> int array -> t
(** Same structure with new per-gate configuration indices.
    @raise Invalid on length or range errors. *)

val with_name : t -> string -> t

val rename_net : t -> net -> string -> t
(** @raise Invalid if the name is empty or already taken. *)

val stats : t -> (string * int) list
(** Gate-name histogram, ascending by name. *)

val cone : t -> net list -> t
(** The transitive-fanin sub-circuit of the given nets: only the gates
    (and primary inputs) the targets depend on survive; the targets
    become the primary outputs. Net names are preserved; configuration
    choices are preserved.
    @raise Invalid on an unknown net or an empty target list. *)

val pp_summary : Format.formatter -> t -> unit
