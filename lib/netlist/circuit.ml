type net = int

type gate = {
  cell : Cell.Gate.t;
  config : int;
  fanins : net array;
  output : net;
}

type driver = Primary_input | Driven_by of int

type t = {
  name : string;
  net_names : string array;
  primary_inputs : net list;
  primary_outputs : net list;
  gates : gate array;
  drivers : driver option array;  (* per net *)
  readers : (int * int) list array;  (* per net, (gate, pin) *)
  fanout_gates : int list array;  (* per net, deduped reader gates, ascending *)
  topo : int list;  (* cached topological order *)
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let compute_topological_order ~gate_count ~driver_of ~fanins_of =
  (* Kahn's algorithm over gate-to-gate dependencies. *)
  let pending = Array.make gate_count 0 in
  let dependents = Array.make gate_count [] in
  for g = 0 to gate_count - 1 do
    Array.iter
      (fun net ->
        match driver_of net with
        | Some (Driven_by d) ->
            pending.(g) <- pending.(g) + 1;
            dependents.(d) <- g :: dependents.(d)
        | Some Primary_input | None -> ())
      (fanins_of g)
  done;
  let queue = Queue.create () in
  for g = 0 to gate_count - 1 do
    if pending.(g) = 0 then Queue.add g queue
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    order := g :: !order;
    incr emitted;
    List.iter
      (fun dep ->
        pending.(dep) <- pending.(dep) - 1;
        if pending.(dep) = 0 then Queue.add dep queue)
      dependents.(g)
  done;
  if !emitted <> gate_count then invalid "combinational cycle detected";
  List.rev !order

let create ~name ~net_names ~primary_inputs ~primary_outputs ~gates =
  let gates = Array.of_list gates in
  let net_count = Array.length net_names in
  let check_net what n =
    if n < 0 || n >= net_count then invalid "%s refers to unknown net %d" what n
  in
  (* Unique, non-empty net names. *)
  let seen = Hashtbl.create net_count in
  Array.iteri
    (fun i n ->
      if n = "" then invalid "net %d has an empty name" i;
      if Hashtbl.mem seen n then invalid "duplicate net name %S" n;
      Hashtbl.add seen n i)
    net_names;
  (* Drivers: at most one per net; primary inputs are not gate-driven. *)
  let drivers = Array.make net_count None in
  List.iter
    (fun n ->
      check_net "primary input" n;
      drivers.(n) <- Some Primary_input)
    primary_inputs;
  Array.iteri
    (fun g (gate : gate) ->
      check_net (Printf.sprintf "gate %d output" g) gate.output;
      let arity = Cell.Gate.arity gate.cell in
      if Array.length gate.fanins <> arity then
        invalid "gate %d (%s): %d fanins, arity %d" g
          (Cell.Gate.name gate.cell)
          (Array.length gate.fanins) arity;
      if gate.config < 0 || gate.config >= Cell.Gate.config_count gate.cell then
        invalid "gate %d (%s): configuration %d out of range" g
          (Cell.Gate.name gate.cell)
          gate.config;
      Array.iter (check_net (Printf.sprintf "gate %d fanin" g)) gate.fanins;
      begin match drivers.(gate.output) with
      | None -> drivers.(gate.output) <- Some (Driven_by g)
      | Some Primary_input ->
          invalid "gate %d drives primary input net %S" g net_names.(gate.output)
      | Some (Driven_by other) ->
          invalid "net %S driven by gates %d and %d" net_names.(gate.output)
            other g
      end)
    gates;
  Array.iteri
    (fun n d ->
      if d = None then invalid "net %S has no driver" net_names.(n))
    drivers;
  List.iter (check_net "primary output") primary_outputs;
  let readers = Array.make net_count [] in
  Array.iteri
    (fun g (gate : gate) ->
      Array.iteri
        (fun pin net -> readers.(net) <- (g, pin) :: readers.(net))
        gate.fanins)
    gates;
  Array.iteri (fun n rs -> readers.(n) <- List.rev rs) readers;
  let fanout_gates =
    Array.map
      (fun rs ->
        let seen = Hashtbl.create 4 in
        List.filter_map
          (fun (g, _pin) ->
            if Hashtbl.mem seen g then None
            else begin
              Hashtbl.add seen g ();
              Some g
            end)
          rs)
      readers
  in
  let topo =
    compute_topological_order ~gate_count:(Array.length gates)
      ~driver_of:(fun n -> drivers.(n))
      ~fanins_of:(fun g -> gates.(g).fanins)
  in
  {
    name;
    net_names = Array.copy net_names;
    primary_inputs;
    primary_outputs;
    gates;
    drivers;
    readers;
    fanout_gates;
    topo;
  }

let name t = t.name
let net_count t = Array.length t.net_names
let gate_count t = Array.length t.gates
let gates t = Array.copy t.gates
let gate_at t g = t.gates.(g)
let primary_inputs t = t.primary_inputs
let primary_outputs t = t.primary_outputs
let net_name t n = t.net_names.(n)

let net_of_name t name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name then found := Some i) t.net_names;
  !found

let driver t n =
  match t.drivers.(n) with
  | Some d -> d
  | None -> assert false (* create guarantees every net is driven *)

let readers t n = t.readers.(n)
let fanout t n = t.fanout_gates.(n)
let fanout_count t n = List.length t.readers.(n)

let fanout_cone t seeds =
  List.iter
    (fun net ->
      if net < 0 || net >= net_count t then
        invalid "fanout_cone: unknown net %d" net)
    seeds;
  let dirty_net = Array.make (net_count t) false in
  let dirty_gate = Array.make (gate_count t) false in
  let rec visit net =
    if not dirty_net.(net) then begin
      dirty_net.(net) <- true;
      List.iter
        (fun g ->
          if not dirty_gate.(g) then begin
            dirty_gate.(g) <- true;
            visit t.gates.(g).output
          end)
        t.fanout_gates.(net)
    end
  in
  List.iter visit seeds;
  dirty_gate

let is_primary_output t n = List.mem n t.primary_outputs
let topological_order t = t.topo

let levels t =
  let lvl = Array.make (gate_count t) 0 in
  List.iter
    (fun g ->
      let deepest_fanin =
        Array.fold_left
          (fun acc net ->
            match driver t net with
            | Driven_by d -> max acc lvl.(d)
            | Primary_input -> acc)
          0 t.gates.(g).fanins
      in
      lvl.(g) <- deepest_fanin + 1)
    t.topo;
  lvl

let depth t = Array.fold_left max 0 (levels t)

let transistor_count t =
  Array.fold_left
    (fun acc (g : gate) -> acc + Cell.Gate.transistor_count g.cell)
    0 t.gates

let with_configs t configs =
  if Array.length configs <> gate_count t then
    invalid "with_configs: %d entries for %d gates" (Array.length configs)
      (gate_count t);
  (* Configurations do not participate in connectivity, so the cached
     drivers/readers/fanout/topo indices carry over unchanged; only the
     range check from [create] applies. Keeps circuit rebuild O(gates)
     on the optimizer (and incremental re-sweep) hot path. *)
  let gates =
    Array.mapi
      (fun g (gate : gate) ->
        if configs.(g) < 0 || configs.(g) >= Cell.Gate.config_count gate.cell
        then
          invalid "gate %d (%s): configuration %d out of range" g
            (Cell.Gate.name gate.cell)
            configs.(g);
        (* Reuse untouched records so callers can detect unchanged
           gates by physical equality. *)
        if gate.config = configs.(g) then gate
        else { gate with config = configs.(g) })
      t.gates
  in
  { t with gates }

let with_name t name = { t with name }

let rename_net t net name =
  if name = "" then invalid "rename_net: empty name";
  Array.iter
    (fun existing -> if existing = name then invalid "rename_net: name %S already taken" name)
    t.net_names;
  let net_names = Array.copy t.net_names in
  net_names.(net) <- name;
  { t with net_names }

let stats t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (g : gate) ->
      let n = Cell.Gate.name g.cell in
      Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    t.gates;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let cone t targets =
  if targets = [] then invalid "cone: empty target list";
  List.iter
    (fun net ->
      if net < 0 || net >= net_count t then invalid "cone: unknown net %d" net)
    targets;
  (* Mark reachable nets walking fanin from the targets. *)
  let needed_net = Array.make (net_count t) false in
  let needed_gate = Array.make (gate_count t) false in
  let rec visit net =
    if not needed_net.(net) then begin
      needed_net.(net) <- true;
      match driver t net with
      | Primary_input -> ()
      | Driven_by g ->
          needed_gate.(g) <- true;
          Array.iter visit t.gates.(g).fanins
    end
  in
  List.iter visit targets;
  (* Renumber surviving nets, keeping their names. *)
  let remap = Array.make (net_count t) (-1) in
  let names = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun net keep ->
      if keep then begin
        remap.(net) <- !next;
        names := t.net_names.(net) :: !names;
        incr next
      end)
    needed_net;
  let gates =
    List.filter_map
      (fun g ->
        if not needed_gate.(g) then None
        else
          let gate = t.gates.(g) in
          Some
            {
              gate with
              fanins = Array.map (fun n -> remap.(n)) gate.fanins;
              output = remap.(gate.output);
            })
      (topological_order t)
  in
  create
    ~name:(t.name ^ "_cone")
    ~net_names:(Array.of_list (List.rev !names))
    ~primary_inputs:
      (List.filter_map
         (fun net -> if needed_net.(net) then Some remap.(net) else None)
         t.primary_inputs)
    ~primary_outputs:(List.map (fun n -> remap.(n)) targets)
    ~gates

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d gates, %d nets, %d inputs, %d outputs, depth %d"
    t.name (gate_count t) (net_count t)
    (List.length t.primary_inputs)
    (List.length t.primary_outputs)
    (depth t)
