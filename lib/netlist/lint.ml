type warning =
  | Dangling_net of Circuit.net
  | Unused_input of Circuit.net
  | High_fanout of Circuit.net * int
  | Duplicate_gate of int * int
  | Output_is_input of Circuit.net

let check ?(fanout_threshold = 8) circuit =
  let warnings = ref [] in
  let add w = warnings := w :: !warnings in
  for net = 0 to Circuit.net_count circuit - 1 do
    let fanout = Circuit.fanout_count circuit net in
    let is_output = Circuit.is_primary_output circuit net in
    begin match Circuit.driver circuit net with
    | Circuit.Primary_input ->
        if fanout = 0 && not is_output then add (Unused_input net)
        else if is_output then add (Output_is_input net)
    | Circuit.Driven_by _ ->
        if fanout = 0 && not is_output then add (Dangling_net net)
    end;
    if fanout > fanout_threshold then add (High_fanout (net, fanout))
  done;
  (* Structural duplicates: same cell, same configuration, same fanins. *)
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let key =
        ( Cell.Gate.name gate.Circuit.cell,
          gate.Circuit.config,
          Array.to_list gate.Circuit.fanins )
      in
      match Hashtbl.find_opt seen key with
      | Some first -> add (Duplicate_gate (first, g))
      | None -> Hashtbl.add seen key g)
    (Circuit.gates circuit);
  List.rev !warnings

let describe circuit = function
  | Dangling_net net ->
      Printf.sprintf "net %S is driven but never read" (Circuit.net_name circuit net)
  | Unused_input net ->
      Printf.sprintf "primary input %S is never read" (Circuit.net_name circuit net)
  | High_fanout (net, n) ->
      Printf.sprintf "net %S drives %d pins" (Circuit.net_name circuit net) n
  | Duplicate_gate (a, b) ->
      Printf.sprintf "gates %d and %d are identical instances (%s)" a b
        (Cell.Gate.name (Circuit.gate_at circuit a).Circuit.cell)
  | Output_is_input net ->
      Printf.sprintf "primary output %S is wired straight to an input"
        (Circuit.net_name circuit net)
