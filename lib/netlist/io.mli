(** Text formats for circuits.

    {b Native format} (round-trips exactly):
    {v
    # comment
    circuit adder4
    input a0 a1 b0 b1
    gate nand2 t0 = a0 b0
    gate inv   t1 = t0 [0]
    output t1
    v}
    [gate <cell> <out> = <in...> [k]] instantiates cell with optional
    configuration index [k] (default 0). Nets may be referenced before
    the line that drives them.

    {b BLIF subset}: [.model/.inputs/.outputs/.gate/.end] with
    pin bindings [A= B= C= ... O=] (formal input pins in alphabetical
    order, output pin [O]); enough to import technology-mapped MCNC
    netlists expressed over the Table-2 library. [.names], [.latch] and
    multiple models are rejected with a clear error. *)

exception Parse_error of { line : int; message : string }

val to_string : Circuit.t -> string
val of_string : string -> Circuit.t
(** Hazards caught at parse time — duplicate net declarations (an
    [input] or gate output reusing a name) and fanin lists that do not
    match the cell's arity — raise {!Parse_error} carrying the 1-based
    source line.
    @raise Parse_error on malformed input;
    @raise Circuit.Invalid on structural violations the parser cannot
    see (cycles, config index out of range, ...). *)

val of_blif : string -> Circuit.t
(** @raise Parse_error / @raise Circuit.Invalid as {!of_string}. *)

val save : Circuit.t -> string -> unit
(** [save c path] writes the native format. *)

val load : string -> Circuit.t
(** Reads native format ([.blif] extension switches to {!of_blif}). *)
