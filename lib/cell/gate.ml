module T = Sp.Sp_tree

type kind =
  | Inv
  | Nand of int
  | Nor of int
  | Aoi of int list
  | Oai of int list

type t = {
  kind : kind;
  name : string;
  pull_down : T.t;
  arity : int;
  config_count : int;
}

let group_name prefix groups =
  prefix ^ String.concat "" (List.map string_of_int groups)

let kind_name = function
  | Inv -> "inv"
  | Nand n -> "nand" ^ string_of_int n
  | Nor n -> "nor" ^ string_of_int n
  | Aoi groups -> group_name "aoi" groups
  | Oai groups -> group_name "oai" groups

let leaves_from start count = List.init count (fun i -> T.leaf (start + i))

(* AOI pull-down: parallel of series AND-groups. OAI pull-down: series of
   parallel OR-groups. Inputs are numbered across groups left to right. *)
let grouped combine_outer combine_inner groups =
  let _, built =
    List.fold_left
      (fun (start, acc) size ->
        (start + size, combine_inner (leaves_from start size) :: acc))
      (0, []) groups
  in
  combine_outer (List.rev built)

let validate_groups groups =
  if List.length groups < 2 then
    invalid_arg "Gate.make: AOI/OAI needs at least two groups";
  if List.exists (fun g -> g < 1) groups then
    invalid_arg "Gate.make: group sizes must be >= 1";
  if List.for_all (fun g -> g = 1) groups then
    invalid_arg "Gate.make: all-singleton AOI/OAI is a nor/nand"

let pull_down_of_kind = function
  | Inv -> T.leaf 0
  | Nand n ->
      if n < 2 then invalid_arg "Gate.make: nand fan-in must be >= 2";
      T.series (leaves_from 0 n)
  | Nor n ->
      if n < 2 then invalid_arg "Gate.make: nor fan-in must be >= 2";
      T.parallel (leaves_from 0 n)
  | Aoi groups ->
      validate_groups groups;
      grouped T.parallel T.series groups
  | Oai groups ->
      validate_groups groups;
      grouped T.series T.parallel groups

let make kind =
  let pull_down = pull_down_of_kind kind in
  {
    kind;
    name = kind_name kind;
    pull_down;
    arity = List.length (T.inputs pull_down);
    (* Precomputed: callers query this on per-gate hot paths. *)
    config_count =
      T.count_orderings pull_down * T.count_orderings (T.dual pull_down);
  }

let name t = t.name
let kind t = t.kind
let arity t = t.arity
let pull_down t = t.pull_down

let library =
  List.map make
    [
      Inv;
      Nand 2;
      Nor 2;
      Nand 3;
      Nor 3;
      Aoi [ 2; 1 ];
      Oai [ 2; 1 ];
      Nand 4;
      Nor 4;
      Aoi [ 2; 2 ];
      Oai [ 2; 2 ];
      Aoi [ 3; 1 ];
      Oai [ 3; 1 ];
      Aoi [ 2; 1; 1 ];
      Oai [ 2; 1; 1 ];
      Aoi [ 3; 1; 1 ];
      Oai [ 3; 1; 1 ];
      Aoi [ 2; 2; 1 ];
      Oai [ 2; 2; 1 ];
      Aoi [ 2; 2; 2 ];
      Oai [ 2; 2; 2 ];
    ]

let of_name n =
  match List.find_opt (fun g -> g.name = n) library with
  | Some g -> g
  | None -> raise Not_found

let function_bdd m t = Bdd.not_ (T.conduction m T.Nmos t.pull_down)

let transistor_count t = 2 * T.transistor_count t.pull_down

let config_count t = t.config_count

(* Erase leaf labels: two configurations with the same label-erased
   shape pair differ only by an input permutation, so they can share one
   physical layout (the paper's oai21[A]/oai21[B] instances). *)
let rec erase = function
  | T.Leaf _ -> T.leaf 0
  | T.Series cs -> T.series (List.map erase cs)
  | T.Parallel cs -> T.parallel (List.map erase cs)

let instance_count t =
  let shapes = Hashtbl.create 16 in
  let ups = T.orderings (T.dual t.pull_down) in
  let downs = T.orderings t.pull_down in
  List.iter
    (fun up ->
      List.iter
        (fun down ->
          Hashtbl.replace shapes
            (T.canonical (erase up), T.canonical (erase down))
            ())
        downs)
    ups;
  Hashtbl.length shapes

let equal a b = a.kind = b.kind
let pp ppf t = Format.pp_print_string ppf t.name
