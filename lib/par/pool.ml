let c_tasks = Obs.counter "par.tasks_run"
let c_maps = Obs.counter "par.parallel_maps"

type t = {
  p_jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* queue grew, or shutting down *)
  idle : Condition.t;  (* pending reached 0 *)
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* tasks queued or running *)
  mutable shut : bool;
  mutable domains : unit Domain.t list;
}

(* True while the current domain is executing a pool task: fans out
   from inside a task would deadlock a fixed pool, so [map] rejects it. *)
let in_task = Domain.DLS.new_key (fun () -> ref false)

let default_jobs () =
  let recommended () = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "TREORDER_JOBS" with
  | None -> recommended ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> recommended ())

let jobs t = t.p_jobs

(* Tasks are exception-free by construction ([map] wraps the user
   function); the accounting below must run even if that invariant is
   ever broken, or the join would hang. *)
let run_task t task =
  let flag = Domain.DLS.get in_task in
  flag := true;
  Fun.protect
    ~finally:(fun () ->
      flag := false;
      Obs.incr c_tasks;
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex)
    task

let rec worker_loop t =
  Mutex.lock t.mutex;
  match Queue.take_opt t.queue with
  | Some task ->
      Mutex.unlock t.mutex;
      run_task t task;
      worker_loop t
  | None ->
      if t.shut then Mutex.unlock t.mutex
      else begin
        Condition.wait t.work t.mutex;
        Mutex.unlock t.mutex;
        worker_loop t
      end

let create ?jobs () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    {
      p_jobs = jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      shut = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.shut then Mutex.unlock t.mutex
  else begin
    t.shut <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The caller works the queue down, then blocks until the last
   in-flight task of the batch has finished. *)
let join t =
  let rec help () =
    Mutex.lock t.mutex;
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        run_task t task;
        help ()
    | None ->
        while t.pending > 0 do
          Condition.wait t.idle t.mutex
        done;
        Mutex.unlock t.mutex
  in
  help ()

let map ?chunk t f xs =
  if !(Domain.DLS.get in_task) then
    invalid_arg "Par.Pool.map: nested parallel use from inside a pool task";
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.p_jobs = 1 then begin
    if t.shut then invalid_arg "Par.Pool.map: pool is shut down";
    Array.map f xs
  end
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Par.Pool.map: chunk must be >= 1"
      | None -> Stdlib.max 1 (1 + ((n - 1) / (t.p_jobs * 4)))
    in
    Obs.incr c_maps;
    let out = Array.make n None in
    (* First failure by lowest chunk index, so the re-raised exception
       is deterministic; guarded by [t.mutex]. *)
    let failed = ref None in
    let record_failure idx e bt =
      Mutex.lock t.mutex;
      (match !failed with
      | Some (j, _, _) when j <= idx -> ()
      | Some _ | None -> failed := Some (idx, e, bt));
      Mutex.unlock t.mutex
    in
    let task idx lo hi () =
      try
        for i = lo to hi do
          out.(i) <- Some (f xs.(i))
        done
      with e -> record_failure idx e (Printexc.get_raw_backtrace ())
    in
    let nchunks = 1 + ((n - 1) / chunk) in
    Mutex.lock t.mutex;
    if t.shut then begin
      Mutex.unlock t.mutex;
      invalid_arg "Par.Pool.map: pool is shut down"
    end;
    t.pending <- t.pending + nchunks;
    for k = 0 to nchunks - 1 do
      let lo = k * chunk in
      let hi = Stdlib.min (n - 1) (lo + chunk - 1) in
      Queue.add (task k lo hi) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    join t;
    (match !failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce ?chunk t ~map:fn ~combine ~init xs =
  Array.fold_left combine init (map ?chunk t fn xs)
