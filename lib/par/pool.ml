let c_tasks = Obs.counter "par.tasks_run"
let c_maps = Obs.counter "par.parallel_maps"
let d_chunk = Obs.distribution "par.chunk_size"
let d_imbalance = Obs.distribution "par.imbalance"

(* Per-slot telemetry cell. Each cell is written only by the domain
   occupying that slot (slot 0 is the caller helping in [join], slot i
   is worker i), but read concurrently by the telemetry sampler
   mid-run, so the accumulators are atomics. [w_active_since] is the
   wall-clock ns at which the slot's in-flight task started (0 when
   idle), letting the sampler credit partially-run tasks. *)
type worker = {
  w_busy_ns : int Atomic.t;
  w_tasks : int Atomic.t;
  w_active_since : int Atomic.t;
}

type t = {
  p_jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* queue grew, or shutting down *)
  idle : Condition.t;  (* pending reached 0 *)
  queue : (int -> unit) Queue.t;  (* task, given the executing slot *)
  mutable pending : int;  (* tasks queued or running *)
  mutable shut : bool;
  mutable domains : unit Domain.t list;
  workers : worker array;  (* indexed by slot; length p_jobs *)
  t_created : float;
  mutable flushed : bool;
}

(* True while the current domain is executing a pool task: fans out
   from inside a task would deadlock a fixed pool, so [map] rejects it. *)
let in_task = Domain.DLS.new_key (fun () -> ref false)

let default_jobs () =
  let recommended () = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "TREORDER_JOBS" with
  | None -> recommended ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> recommended ())

let jobs t = t.p_jobs

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Tasks are exception-free by construction ([map] wraps the user
   function); the accounting below must run even if that invariant is
   ever broken, or the join would hang. *)
let run_task t slot task =
  let flag = Domain.DLS.get in_task in
  flag := true;
  let w = t.workers.(slot) in
  let t_start = now_ns () in
  Atomic.set w.w_active_since t_start;
  Fun.protect
    ~finally:(fun () ->
      flag := false;
      Atomic.set w.w_active_since 0;
      ignore
        (Atomic.fetch_and_add w.w_busy_ns (Stdlib.max 0 (now_ns () - t_start)));
      Atomic.incr w.w_tasks;
      Obs.incr c_tasks;
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex)
    (fun () -> Obs.span "par.task" (fun () -> task slot))

let rec worker_loop t slot =
  Mutex.lock t.mutex;
  match Queue.take_opt t.queue with
  | Some task ->
      Mutex.unlock t.mutex;
      run_task t slot task;
      worker_loop t slot
  | None ->
      if t.shut then Mutex.unlock t.mutex
      else begin
        Condition.wait t.work t.mutex;
        Mutex.unlock t.mutex;
        worker_loop t slot
      end

(* --- live-pool registry for mid-run utilization sampling ---

   Pools register here for their lifetime so the telemetry sampler can
   read per-slot busy/task accumulators while sweeps are in flight
   (shutdown-time flushing alone is useless to a live view). Slots are
   numbered densely across live pools in registration order. jobs = 1
   pools run the pure sequential path and stay invisible, mirroring the
   flush-time policy below. *)

let live_lock = Mutex.create ()
let live_pools : t list ref = ref []

let live_register t =
  if t.p_jobs > 1 then begin
    Mutex.lock live_lock;
    live_pools := !live_pools @ [ t ];
    Mutex.unlock live_lock
  end

let live_unregister t =
  Mutex.lock live_lock;
  live_pools := List.filter (fun p -> p != t) !live_pools;
  Mutex.unlock live_lock

let live_slots () =
  Mutex.lock live_lock;
  let pools = !live_pools in
  Mutex.unlock live_lock;
  let now = now_ns () in
  let slots = ref [] in
  let idx = ref 0 in
  List.iter
    (fun t ->
      Array.iter
        (fun w ->
          let active = Atomic.get w.w_active_since in
          let in_flight = if active > 0 then Stdlib.max 0 (now - active) else 0 in
          slots :=
            {
              Telemetry.ps_slot = !idx;
              ps_busy_ns = Atomic.get w.w_busy_ns + in_flight;
              ps_tasks = Atomic.get w.w_tasks;
              ps_running = active > 0;
            }
            :: !slots;
          incr idx)
        t.workers)
    pools;
  Array.of_list (List.rev !slots)

let () = Telemetry.set_pool_source live_slots

let create ?jobs () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    {
      p_jobs = jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      shut = false;
      domains = [];
      workers =
        Array.init jobs (fun _ ->
            {
              w_busy_ns = Atomic.make 0;
              w_tasks = Atomic.make 0;
              w_active_since = Atomic.make 0;
            });
      t_created = Unix.gettimeofday ();
      flushed = false;
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  live_register t;
  t

(* Surface the per-slot cells as [par.*] counters once the workers have
   been joined (their final writes are then visible here). A jobs = 1
   pool runs the pure sequential path and stays silent, so sequential
   snapshots carry no scheduling noise. *)
let flush_telemetry t =
  if (not t.flushed) && t.p_jobs > 1 then begin
    t.flushed <- true;
    let lifetime_ns = Stdlib.max 0 (now_ns () - int_of_float (t.t_created *. 1e9)) in
    Array.iteri
      (fun slot w ->
        let busy = Atomic.get w.w_busy_ns in
        Obs.add
          (Obs.counter (Printf.sprintf "par.domain_busy_ns.%d" slot))
          busy;
        Obs.add
          (Obs.counter (Printf.sprintf "par.domain_idle_ns.%d" slot))
          (Stdlib.max 0 (lifetime_ns - busy));
        Obs.add
          (Obs.counter (Printf.sprintf "par.domain_tasks.%d" slot))
          (Atomic.get w.w_tasks))
      t.workers;
    let total =
      Array.fold_left (fun acc w -> acc + Atomic.get w.w_busy_ns) 0 t.workers
    in
    if total > 0 then begin
      let mean = float_of_int total /. float_of_int t.p_jobs in
      let worst =
        Array.fold_left
          (fun acc w -> Stdlib.max acc (Atomic.get w.w_busy_ns))
          0 t.workers
      in
      Obs.observe d_imbalance (float_of_int worst /. mean)
    end
  end

let shutdown t =
  Mutex.lock t.mutex;
  if t.shut then Mutex.unlock t.mutex
  else begin
    t.shut <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- [];
    live_unregister t;
    flush_telemetry t
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The caller works the queue down, then blocks until the last
   in-flight task of the batch has finished. *)
let join t =
  let rec help () =
    Mutex.lock t.mutex;
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        run_task t 0 task;
        help ()
    | None ->
        while t.pending > 0 do
          Condition.wait t.idle t.mutex
        done;
        Mutex.unlock t.mutex
  in
  help ()

let map ?chunk t f xs =
  if !(Domain.DLS.get in_task) then
    invalid_arg "Par.Pool.map: nested parallel use from inside a pool task";
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.p_jobs = 1 then begin
    if t.shut then invalid_arg "Par.Pool.map: pool is shut down";
    Array.map f xs
  end
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Par.Pool.map: chunk must be >= 1"
      | None -> Stdlib.max 1 (1 + ((n - 1) / (t.p_jobs * 4)))
    in
    Obs.incr c_maps;
    let out = Array.make n None in
    (* First failure by lowest chunk index, so the re-raised exception
       is deterministic; guarded by [t.mutex]. *)
    let failed = ref None in
    let record_failure idx e bt =
      Mutex.lock t.mutex;
      (match !failed with
      | Some (j, _, _) when j <= idx -> ()
      | Some _ | None -> failed := Some (idx, e, bt));
      Mutex.unlock t.mutex
    in
    let task idx lo hi (_slot : int) =
      try
        for i = lo to hi do
          out.(i) <- Some (f xs.(i))
        done
      with e -> record_failure idx e (Printexc.get_raw_backtrace ())
    in
    let nchunks = 1 + ((n - 1) / chunk) in
    Mutex.lock t.mutex;
    if t.shut then begin
      Mutex.unlock t.mutex;
      invalid_arg "Par.Pool.map: pool is shut down"
    end;
    t.pending <- t.pending + nchunks;
    for k = 0 to nchunks - 1 do
      let lo = k * chunk in
      let hi = Stdlib.min (n - 1) (lo + chunk - 1) in
      Obs.observe d_chunk (float_of_int (hi - lo + 1));
      Queue.add (task k lo hi) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    join t;
    (match !failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce ?chunk t ~map:fn ~combine ~init xs =
  Array.fold_left combine init (map ?chunk t fn xs)
