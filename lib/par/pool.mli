(** A fixed pool of worker domains with deterministic fan-out.

    The pool is created once and reused for every parallel region (OCaml
    domains are heavyweight: one per core, created at startup, never per
    task). {!map} splits the input array into contiguous chunks, hands
    the chunks to the workers (the calling domain also participates),
    and writes each result into its submission-order slot, so the output
    is {e always} [Array.map f xs] — independent of worker scheduling.
    {!map_reduce} folds those results left-to-right in submission order,
    so float accumulations combine in the identical order as a
    sequential run (the determinism guarantee the optimizer's
    bit-identical-reports property rests on; see {{!page-performance}
    the performance page}).

    A pool of [jobs = 1] spawns no domains and runs every map inline —
    exactly the sequential code path.

    Pools self-report: every task runs inside an [Obs] span
    ([par.task], so NDJSON traces carry one lane per domain), chunk
    sizes feed the [par.chunk_size] distribution, and {!shutdown}
    flushes per-slot busy/idle wall-clock nanoseconds and task counts
    as [par.domain_busy_ns.N] / [par.domain_idle_ns.N] /
    [par.domain_tasks.N] counters plus a [par.imbalance] observation
    (max over mean busy time across slots; 1.0 is a perfectly balanced
    pool). Slot 0 is the calling domain. A [jobs = 1] pool flushes
    nothing, so sequential snapshots carry no scheduling noise (see
    {{!page-performance} the performance page}).

    The per-slot accumulators are atomics readable {e mid-run}: live
    pools register themselves with the telemetry sampler
    ({!Telemetry.set_pool_source}, installed at link time), so
    [treorder top] can show per-domain utilization bars while a sweep
    is still in flight. The shutdown-time flush reads the same cells
    and reports the same totals as before the accumulators became
    atomic. *)

type t

val default_jobs : unit -> int
(** The [TREORDER_JOBS] environment variable if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. Malformed
    values fall back to the recommended count. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the caller is
    the remaining worker). [jobs] defaults to {!default_jobs}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism degree the pool was created with (>= 1). *)

val shutdown : t -> unit
(** Drain remaining tasks, stop and join every worker domain, then
    flush the pool's [par.*] telemetry counters (for [jobs > 1]).
    Idempotent. Any later {!map} on the pool raises. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exceptions). *)

val live_slots : unit -> Telemetry.pool_slot array
(** One entry per slot of every live [jobs > 1] pool (dense numbering
    in registration order): cumulative busy nanoseconds — including
    the in-flight task, if any — completed task count, and whether the
    slot is currently running a task. This is the callback installed
    as the telemetry sampler's pool source; exposed for tests and
    ad-hoc probes. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [Array.map f xs], computed by the pool. [chunk]
    is the number of consecutive elements per task (default: array
    length over [4·jobs], at least 1). Side effects of [f] must be
    domain-safe; results are deterministic in position regardless of
    scheduling. If one or more applications of [f] raise, the exception
    of the lowest-indexed failing chunk is re-raised at the join (with
    its backtrace) after every task of the call has finished, and the
    pool remains usable.
    @raise Invalid_argument if called from inside a pool task (nested
    parallelism would deadlock a fixed pool), after {!shutdown}, or
    with [chunk < 1]. *)

val map_reduce :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [Array.fold_left combine init (map pool f xs)]: the combine always
    runs on the calling domain, left to right in submission order. *)
