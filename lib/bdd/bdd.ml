type t = { tag : int; mgr : manager; desc : desc }

and desc = Const of bool | Node of { var : int; lo : t; hi : t }

and manager = {
  mutable next_tag : int;
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo.tag, hi.tag) *)
  ite_cache : (int * int * int, t) Hashtbl.t;
  m_zero : t;
  m_one : t;
}

let c_node_alloc = Obs.counter "bdd.node_alloc"
let c_unique_hit = Obs.counter "bdd.unique_hit"
let c_memo_hit = Obs.counter "bdd.memo_hit"
let c_memo_miss = Obs.counter "bdd.memo_miss"

let manager ?(cache_size = 1024) () =
  let rec m =
    {
      next_tag = 2;
      unique = Hashtbl.create cache_size;
      ite_cache = Hashtbl.create cache_size;
      m_zero = zero;
      m_one = one;
    }
  and zero = { tag = 0; mgr = m; desc = Const false }
  and one = { tag = 1; mgr = m; desc = Const true } in
  m

let node_count m = Hashtbl.length m.unique

let zero m = m.m_zero
let one m = m.m_one

let same_mgr a b =
  if a.mgr != b.mgr then invalid_arg "Bdd: mixing nodes from two managers"

(* Hash-consing constructor; guarantees reducedness and canonicity. *)
let mk m var lo hi =
  if lo == hi then lo
  else
    let key = (var, lo.tag, hi.tag) in
    match Hashtbl.find_opt m.unique key with
    | Some n ->
        Obs.incr c_unique_hit;
        n
    | None ->
        Obs.incr c_node_alloc;
        let n = { tag = m.next_tag; mgr = m; desc = Node { var; lo; hi } } in
        m.next_tag <- m.next_tag + 1;
        Hashtbl.add m.unique key n;
        n

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  mk m i m.m_zero m.m_one

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative index";
  mk m i m.m_one m.m_zero

let top_var t = match t.desc with Const _ -> None | Node n -> Some n.var

(* Cofactors of [t] with respect to variable [v], assuming [v] is no
   deeper than [t]'s root (i.e. v <= root var). *)
let cofactors t v =
  match t.desc with
  | Node n when n.var = v -> (n.lo, n.hi)
  | Const _ | Node _ -> (t, t)

let rec ite f g h =
  same_mgr f g;
  same_mgr g h;
  let m = f.mgr in
  match f.desc with
  | Const true -> g
  | Const false -> h
  | Node _ ->
      if g == h then g
      else if g == m.m_one && h == m.m_zero then f
      else
        let key = (f.tag, g.tag, h.tag) in
        begin match Hashtbl.find_opt m.ite_cache key with
        | Some r ->
            Obs.incr c_memo_hit;
            r
        | None ->
            Obs.incr c_memo_miss;
            let top acc t =
              match top_var t with Some v -> min acc v | None -> acc
            in
            let v = top (top (top max_int f) g) h in
            let f0, f1 = cofactors f v in
            let g0, g1 = cofactors g v in
            let h0, h1 = cofactors h v in
            let r = mk m v (ite f0 g0 h0) (ite f1 g1 h1) in
            Hashtbl.add m.ite_cache key r;
            r
        end

let not_ a = ite a a.mgr.m_zero a.mgr.m_one
let ( &&& ) a b = ite a b a.mgr.m_zero
let ( ||| ) a b = ite a a.mgr.m_one b
let xor a b = ite a (not_ b) b
let xnor a b = ite a b (not_ b)
let imply a b = ite a b a.mgr.m_one

let conj m fs = List.fold_left ( &&& ) m.m_one fs
let disj m fs = List.fold_left ( ||| ) m.m_zero fs

let equal a b =
  same_mgr a b;
  a == b

let is_zero t = t == t.mgr.m_zero
let is_one t = t == t.mgr.m_one

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t.desc with
    | Const _ -> ()
    | Node n ->
        if not (Hashtbl.mem seen t.tag) then begin
          Hashtbl.add seen t.tag ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.length seen

let support t =
  let vars = Hashtbl.create 16 in
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t.desc with
    | Const _ -> ()
    | Node n ->
        if not (Hashtbl.mem seen t.tag) then begin
          Hashtbl.add seen t.tag ();
          Hashtbl.replace vars n.var ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let restrict t i b =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match t.desc with
    | Const _ -> t
    | Node n ->
        if n.var > i then t
        else if n.var = i then if b then n.hi else n.lo
        else begin
          match Hashtbl.find_opt memo t.tag with
          | Some r -> r
          | None ->
              let r = mk t.mgr n.var (go n.lo) (go n.hi) in
              Hashtbl.add memo t.tag r;
              r
        end
  in
  go t

let compose f i g =
  same_mgr f g;
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f.desc with
    | Const _ -> f
    | Node n ->
        if n.var > i then f
        else if n.var = i then ite g n.hi n.lo
        else begin
          match Hashtbl.find_opt memo f.tag with
          | Some r -> r
          | None ->
              (* The substituted subtrees may climb above [n.var] in the
                 order, so rebuild with ite on the variable itself. *)
              let r = ite (var f.mgr n.var) (go n.hi) (go n.lo) in
              Hashtbl.add memo f.tag r;
              r
        end
  in
  go f

let exists f i = restrict f i false ||| restrict f i true
let forall f i = restrict f i false &&& restrict f i true
let boolean_difference f i = xor (restrict f i false) (restrict f i true)

let rec eval t env =
  match t.desc with
  | Const b -> b
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

let probability t p =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match t.desc with
    | Const b -> if b then 1. else 0.
    | Node n -> begin
        match Hashtbl.find_opt memo t.tag with
        | Some r -> r
        | None ->
            let pv = p n.var in
            if pv < 0. || pv > 1. || not (Float.is_finite pv) then
              invalid_arg "Bdd.probability: variable probability outside [0,1]";
            let r = (pv *. go n.hi) +. ((1. -. pv) *. go n.lo) in
            Hashtbl.add memo t.tag r;
            r
      end
  in
  go t

let sat_count t ~nvars =
  List.iter
    (fun v ->
      if v >= nvars then invalid_arg "Bdd.sat_count: support exceeds nvars")
    (support t);
  probability t (fun _ -> 0.5) *. (2. ** float_of_int nvars)

let fold_paths t ~init ~f =
  let rec go t cube acc =
    match t.desc with
    | Const false -> acc
    | Const true -> f acc (List.rev cube)
    | Node n -> go n.hi ((n.var, true) :: cube) (go n.lo ((n.var, false) :: cube) acc)
  in
  go t [] init

let any_sat t =
  let exception Found of (int * bool) list in
  try
    fold_paths t ~init:() ~f:(fun () cube -> raise (Found cube));
    None
  with Found cube -> Some cube

let to_string ~names t =
  if is_zero t then "0"
  else if is_one t then "1"
  else
    let cube_to_string cube =
      String.concat "."
        (List.map (fun (v, b) -> names v ^ if b then "" else "'") cube)
    in
    let cubes = fold_paths t ~init:[] ~f:(fun acc c -> cube_to_string c :: acc) in
    String.concat " + " (List.rev cubes)
