module C = Netlist.Circuit
module S = Stoch.Signal_stats

let c_words = Obs.counter "mc.words_evaluated"
let c_toggles = Obs.counter "mc.toggles"
let c_samples = Obs.counter "mc.samples"

(* --- word-level primitives --- *)

let popcount x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let pack lanes =
  if Array.length lanes > 64 then invalid_arg "Mc.pack: more than 64 lanes";
  let x = ref 0L in
  Array.iteri
    (fun i b -> if b then x := Int64.logor !x (Int64.shift_left 1L i))
    lanes;
  !x

let unpack w =
  Array.init 64 (fun i ->
      Int64.logand (Int64.shift_right_logical w i) 1L <> 0L)

(* Biased bits: p rounded to [mask_bits] fractional bits m, then a lane
   is accepted iff a uniform [mask_bits]-bit stream compares below m
   lexicographically, MSB first — accepted at the first uniform bit
   under the threshold bit, rejected at the first above it, still
   undecided while they agree. Every draw halves each lane's survival
   probability, so the chain exits after ~log2 64 + 2 uniform words in
   expectation (instead of one word per threshold bit) while the
   per-lane probability stays exactly m / 2^[mask_bits]. *)

let mask_bits = 30
let mask_one = 1 lsl mask_bits

let m_of_prob p =
  if p <= 0. then 0
  else if p >= 1. then mask_one
  else
    let m = int_of_float (Float.round (p *. float_of_int mask_one)) in
    if m < 0 then 0 else if m > mask_one then mask_one else m

let mask_of_m rng m =
  if m <= 0 then 0L
  else if m >= mask_one then -1L
  else begin
    let result = ref 0L and undecided = ref (-1L) in
    let i = ref (mask_bits - 1) in
    while !undecided <> 0L && !i >= 0 do
      let w = Stoch.Rng.bits64 rng in
      if (m lsr !i) land 1 = 1 then begin
        result :=
          Int64.logor !result (Int64.logand !undecided (Int64.lognot w));
        undecided := Int64.logand !undecided w
      end
      else undecided := Int64.logand !undecided (Int64.lognot w);
      decr i
    done;
    !result
  end

let bernoulli_mask rng p = mask_of_m rng (m_of_prob p)

(* Flip mask for one input: probability [ma]/2^K on 0-lanes, [mb]/2^K on
   1-lanes, sharing one comparison chain — each lane compares the same
   uniform stream against the threshold its previous state selects.
   Thresholds saturated at 1.0 (clamped flip probabilities) accept
   before the first draw. *)
let flip_mask rng ~ma ~mb prev =
  if ma <= 0 && mb <= 0 then 0L
  else begin
    let sat =
      Int64.logor
        (if ma >= mask_one then Int64.lognot prev else 0L)
        (if mb >= mask_one then prev else 0L)
    in
    let result = ref sat and undecided = ref (Int64.lognot sat) in
    let i = ref (mask_bits - 1) in
    while !undecided <> 0L && !i >= 0 do
      let w = Stoch.Rng.bits64 rng in
      let mbit =
        match ((ma lsr !i) land 1, (mb lsr !i) land 1) with
        | 1, 1 -> -1L
        | 0, 0 -> 0L
        | 1, 0 -> Int64.lognot prev
        | _ -> prev
      in
      result :=
        Int64.logor !result
          (Int64.logand !undecided (Int64.logand mbit (Int64.lognot w)));
      undecided :=
        Int64.logand !undecided
          (Int64.logor (Int64.logand mbit w)
             (Int64.logand (Int64.lognot mbit) (Int64.lognot w)));
      decr i
    done;
    !result
  end

(* --- the sampling model --- *)

let flip_probs s ~dt =
  let p = S.prob s and d = S.density s in
  if d <= 0. then (0., 0.)
  else
    let half = d *. dt /. 2. in
    let a = if p >= 1. then 1. else Float.min 1. (half /. (1. -. p)) in
    let b = if p <= 0. then 1. else Float.min 1. (half /. p) in
    (a, b)

let default_dt ~inputs circuit =
  let dt =
    List.fold_left
      (fun acc net ->
        let s = inputs net in
        let d = S.density s in
        if d <= 0. then acc
        else
          let m = Float.min (S.prob s) (1. -. S.prob s) in
          (* P at (or near) 0 or 1 with D > 0: the chain leaves the rare
             state immediately (flip probability clamps to 1); a floor
             keeps the step finite. *)
          let m = Float.max m 0.01 in
          Float.min acc (m /. (4. *. d)))
      Float.infinity (C.primary_inputs circuit)
  in
  if Float.is_finite dt then dt else 1.0

(* --- word-parallel gate evaluation --- *)

(* Every configuration of a cell computes the cell function (that is the
   whole point of reordering), so evaluation depends only on the kind.
   Output = NOT (pull-down conducts); pins are numbered left-to-right
   across AOI/OAI groups, matching Cell.Gate.pull_down. *)

let group_segments groups =
  let segs = Array.make (List.length groups) (0, 0) in
  let _ =
    List.fold_left
      (fun (i, start) len ->
        segs.(i) <- (start, len);
        (i + 1, start + len))
      (0, 0) groups
  in
  segs

let compile_gate (gate : C.gate) =
  let f = gate.C.fanins in
  let and_range v start len =
    let acc = ref v.(f.(start)) in
    for i = start + 1 to start + len - 1 do
      acc := Int64.logand !acc v.(f.(i))
    done;
    !acc
  in
  let or_range v start len =
    let acc = ref v.(f.(start)) in
    for i = start + 1 to start + len - 1 do
      acc := Int64.logor !acc v.(f.(i))
    done;
    !acc
  in
  match Cell.Gate.kind gate.C.cell with
  | Cell.Gate.Inv -> fun v -> Int64.lognot v.(f.(0))
  | Cell.Gate.Nand n -> fun v -> Int64.lognot (and_range v 0 n)
  | Cell.Gate.Nor n -> fun v -> Int64.lognot (or_range v 0 n)
  | Cell.Gate.Aoi groups ->
      let segs = group_segments groups in
      fun v ->
        let acc = ref 0L in
        Array.iter (fun (s, l) -> acc := Int64.logor !acc (and_range v s l)) segs;
        Int64.lognot !acc
  | Cell.Gate.Oai groups ->
      let segs = group_segments groups in
      fun v ->
        let acc = ref (-1L) in
        Array.iter (fun (s, l) -> acc := Int64.logand !acc (or_range v s l)) segs;
        Int64.lognot !acc

let compile circuit =
  C.topological_order circuit |> Array.of_list
  |> Array.map (fun g ->
         let gate = C.gate_at circuit g in
         (gate.C.output, compile_gate gate))

let eval_ops ops values =
  Array.iter (fun (out, op) -> values.(out) <- op values) ops

let eval_nets circuit ~inputs =
  let values = Array.make (C.net_count circuit) 0L in
  List.iter (fun net -> values.(net) <- inputs net) (C.primary_inputs circuit);
  eval_ops (compile circuit) values;
  values

(* --- blocks --- *)

type block = {
  b_toggles : int array;
  b_rises : int array;
  b_high : int array;
}

(* One block: [words] independent word-trajectories of [steps] steps,
   all drawn from this block's private RNG stream. Each lane starts in
   its stationary distribution; counts cover the post-transition states
   of steps 1..steps. *)
let run_block ~nets ~pis ~ops ~words ~steps rng =
  let b_toggles = Array.make nets 0 in
  let b_rises = Array.make nets 0 in
  let b_high = Array.make nets 0 in
  let prev = ref (Array.make nets 0L) in
  let cur = ref (Array.make nets 0L) in
  for _w = 1 to words do
    let p = !prev in
    Array.iter (fun (net, _, _, mp) -> p.(net) <- mask_of_m rng mp) pis;
    eval_ops ops p;
    for _s = 1 to steps do
      let p = !prev and c = !cur in
      Array.iter
        (fun (net, ma, mb, _) ->
          let v = p.(net) in
          c.(net) <- Int64.logxor v (flip_mask rng ~ma ~mb v))
        pis;
      eval_ops ops c;
      for net = 0 to nets - 1 do
        let ch = Int64.logxor p.(net) c.(net) in
        if ch <> 0L then begin
          b_toggles.(net) <- b_toggles.(net) + popcount ch;
          b_rises.(net) <- b_rises.(net) + popcount (Int64.logand ch c.(net))
        end;
        b_high.(net) <- b_high.(net) + popcount c.(net)
      done;
      prev := c;
      cur := p
    done
  done;
  { b_toggles; b_rises; b_high }

(* --- the result --- *)

type result = {
  blocks : int;
  words_per_block : int;
  steps : int;
  trajectories : int;
  samples : int;
  dt : float;
  window : float;
  net_toggles : int array;
  net_rises : int array;
  net_high : int array;
  density : float array;
  density_se : float array;
  prob : float array;
  prob_se : float array;
  per_net_energy : float array;
  per_gate_energy : float array;
  energy : float;
  power : float;
}

let measured_stats r net =
  let p = Float.min 1. (Float.max 0. r.prob.(net)) in
  S.make ~prob:p ~density:(Float.max 0. r.density.(net))

(* Output-net capacitance, mirroring Switchsim.Sim.build and
   Power.Estimate.output_load: the configured network's own output-node
   capacitance, the gate-input capacitance of every fan-out pin, and the
   external load on primary outputs. Primary-input nets book no energy. *)
let net_caps table ~external_load circuit =
  let proc = Power.Model.process table in
  Array.init (C.net_count circuit) (fun net ->
      match C.driver circuit net with
      | C.Primary_input -> 0.
      | C.Driven_by g ->
          let gate = C.gate_at circuit g in
          let config = List.nth (Cell.Config.all gate.C.cell) gate.C.config in
          let own =
            Cell.Process.node_capacitance proc
              (Cell.Config.network config)
              Sp.Network.Output
          in
          let fanout =
            List.fold_left
              (fun acc (reader, pin) ->
                acc
                +. Power.Model.input_pin_capacitance table
                     (C.gate_at circuit reader).C.cell pin)
              0.
              (C.readers circuit net)
          in
          let ext =
            if C.is_primary_output circuit net then external_load else 0.
          in
          own +. fanout +. ext)

let default_external_load = 20e-15

let estimate table ?(external_load = default_external_load) ?pool ?dt
    ?(words = 2) ?(steps = 128) ?(samples = 262144) ~seed ~inputs circuit =
  if words < 1 then invalid_arg "Mc.estimate: words must be positive";
  if steps < 1 then invalid_arg "Mc.estimate: steps must be positive";
  if samples < 1 then invalid_arg "Mc.estimate: samples must be positive";
  (match dt with
  | Some d when d <= 0. -> invalid_arg "Mc.estimate: dt must be positive"
  | _ -> ());
  Obs.span "mc.run" @@ fun () ->
  let dt = match dt with Some d -> d | None -> default_dt ~inputs circuit in
  let nets = C.net_count circuit in
  let lanes_per_block = words * 64 in
  let samples_per_block = lanes_per_block * steps in
  let blocks = max 2 ((samples + samples_per_block - 1) / samples_per_block) in
  let pis =
    C.primary_inputs circuit
    |> List.map (fun net ->
           let s = inputs net in
           let a, b = flip_probs s ~dt in
           (net, m_of_prob a, m_of_prob b, m_of_prob (S.prob s)))
    |> Array.of_list
  in
  let ops = compile circuit in
  (* Per-block streams split off the master before any parallelism, so
     the stimulus is a pure function of (seed, block index). *)
  let master = Stoch.Rng.create seed in
  let rngs = Array.init blocks (fun _ -> Stoch.Rng.split master) in
  (* One tick per completed block (ticks are atomic, so worker domains
     feed the same heartbeat the sequential path does). *)
  Telemetry.progress_begin ~phase:"mc.run" ~total:blocks;
  let run rng =
    let r = run_block ~nets ~pis ~ops ~words ~steps rng in
    Telemetry.progress_tick ();
    r
  in
  let results =
    match pool with
    | Some p -> Par.Pool.map p run rngs
    | None -> Array.map run rngs
  in
  (* Submission-order fold: totals and block moments accumulate in block
     order, so the output is bit-identical whatever the job count. *)
  let net_toggles = Array.make nets 0 in
  let net_rises = Array.make nets 0 in
  let net_high = Array.make nets 0 in
  let dsum = Array.make nets 0. in
  let dsq = Array.make nets 0. in
  let psum = Array.make nets 0. in
  let psq = Array.make nets 0. in
  let lane_steps = float_of_int (lanes_per_block * steps) in
  Array.iter
    (fun b ->
      for net = 0 to nets - 1 do
        net_toggles.(net) <- net_toggles.(net) + b.b_toggles.(net);
        net_rises.(net) <- net_rises.(net) + b.b_rises.(net);
        net_high.(net) <- net_high.(net) + b.b_high.(net);
        let d = float_of_int b.b_toggles.(net) /. (lane_steps *. dt) in
        dsum.(net) <- dsum.(net) +. d;
        dsq.(net) <- dsq.(net) +. (d *. d);
        let p = float_of_int b.b_high.(net) /. lane_steps in
        psum.(net) <- psum.(net) +. p;
        psq.(net) <- psq.(net) +. (p *. p)
      done)
    results;
  let fb = float_of_int blocks in
  let mean sum = Array.map (fun s -> s /. fb) sum in
  let se sum sq =
    Array.init nets (fun net ->
        let var =
          Float.max 0.
            ((sq.(net) -. (sum.(net) *. sum.(net) /. fb)) /. (fb *. (fb -. 1.)))
        in
        sqrt var)
  in
  let density = mean dsum and prob = mean psum in
  let density_se = se dsum dsq and prob_se = se psum psq in
  let trajectories = blocks * lanes_per_block in
  let window = float_of_int steps *. dt in
  let caps = net_caps table ~external_load circuit in
  let proc = Power.Model.process table in
  let vdd2 = proc.Cell.Process.vdd *. proc.Cell.Process.vdd in
  let per_net_energy =
    Array.init nets (fun net ->
        float_of_int net_rises.(net)
        /. float_of_int trajectories
        *. caps.(net) *. vdd2)
  in
  let per_gate_energy =
    Array.init (C.gate_count circuit) (fun g ->
        per_net_energy.((C.gate_at circuit g).C.output))
  in
  let energy = Array.fold_left ( +. ) 0. per_net_energy in
  let samples = trajectories * steps in
  Obs.add c_words (blocks * words * (steps + 1) * C.gate_count circuit);
  Obs.add c_toggles (Array.fold_left ( + ) 0 net_toggles);
  Obs.add c_samples samples;
  {
    blocks;
    words_per_block = words;
    steps;
    trajectories;
    samples;
    dt;
    window;
    net_toggles;
    net_rises;
    net_high;
    density;
    density_se;
    prob;
    prob_se;
    per_net_energy;
    per_gate_energy;
    energy;
    power = energy /. window;
  }
