(** Bit-parallel Monte-Carlo estimation of switching activity.

    The third estimation backend (next to the analytical propagation and
    the switch-level simulator): sample the primary inputs from the same
    stationary Markov model the paper uses (§3.1 — equilibrium
    probability [P], transition density [D]), evaluate the whole circuit
    functionally, and count what actually toggles. Unlike the analytical
    propagation it is {e correlation-exact} — reconvergent fan-out holds
    by construction, because every sampled vector is a consistent joint
    assignment — and unlike the event-driven simulator it evaluates 64
    independent sample trajectories per machine word: one [Int64]
    bitwise operation per gate advances all 64 lanes at once.

    {1 Sampling model}

    Time is discretized into steps of [dt]. A primary input with
    statistics [(P, D)] is realized as the 2-state Markov chain with
    per-step flip probabilities [a = D dt / 2(1-P)] (0→1) and
    [b = D dt / 2P] (1→0) — its stationary distribution is exactly [P]
    and its expected transitions per step exactly [D dt]. The default
    [dt] keeps every flip probability at or below 1/8 (so the
    discretization error of "at most one transition per step" stays
    small); constant inputs ([D = 0]) never flip. Each lane starts in
    its stationary distribution, so no warm-up is needed.

    Per-step biased bits are drawn with the binary-expansion trick: the
    flip probability is rounded to 30 fractional bits and realized as a
    chain of AND/OR with fresh uniform words — every lane is independent
    and exact to [2^-30].

    {1 Determinism}

    Sampling is organized in [blocks] independent blocks of
    [words_per_block * 64] trajectories, each advanced [steps] steps.
    Every block draws from its own {!Stoch.Rng.split} stream (split off
    the master seed {e before} any parallelism), and block results are
    folded in submission order — so a run distributed over a
    {!Par.Pool} is bit-identical to the sequential run, whatever the
    job count.

    Counters: [mc.words_evaluated] (gate word-evaluations — multiply by
    64 for gate-evals), [mc.toggles], [mc.samples]; the whole estimate
    runs inside an [mc.run] span. *)

type result = {
  blocks : int;
  words_per_block : int;
  steps : int;  (** time steps per trajectory *)
  trajectories : int;  (** [blocks * words_per_block * 64] *)
  samples : int;  (** [trajectories * steps] sampled vectors *)
  dt : float;  (** step length, s *)
  window : float;  (** [steps * dt]: per-trajectory window, s *)
  net_toggles : int array;  (** 0↔1 transitions per net, all lanes *)
  net_rises : int array;  (** 0→1 transitions per net, all lanes *)
  net_high : int array;  (** lane-steps spent at 1, per net *)
  density : float array;
      (** mean estimated transition density per net, 1/s *)
  density_se : float array;
      (** standard error of {!field-density} across blocks *)
  prob : float array;  (** mean estimated equilibrium probability *)
  prob_se : float array;
  per_net_energy : float array;
      (** J per trajectory over {!field-window}: output-node rises of
          the driving gate weighted by [C Vdd^2], averaged over lanes.
          Primary inputs carry 0. Internal-node charging and glitches
          are {e not} modeled (zero-delay functional evaluation), so
          this tracks the simulator's output-node share only. *)
  per_gate_energy : float array;  (** J, by gate index (its output net) *)
  energy : float;  (** J: sum of {!field-per_net_energy} in net order *)
  power : float;  (** [energy / window], W *)
}

val default_dt : inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  Netlist.Circuit.t -> float
(** Largest step keeping every input's flip probabilities at or below
    1/8; [1.0] if every input is constant. *)

val flip_probs : Stoch.Signal_stats.t -> dt:float -> float * float
(** [(a, b)]: per-step 0→1 and 1→0 flip probabilities realizing the
    statistics at step [dt], clamped to [0, 1]. [(0, 0)] for constant
    signals. *)

val estimate :
  Power.Model.table ->
  ?external_load:float ->
  ?pool:Par.Pool.t ->
  ?dt:float ->
  ?words:int ->
  ?steps:int ->
  ?samples:int ->
  seed:int ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  Netlist.Circuit.t ->
  result
(** Runs the engine. [samples] (default 262144) is the target number of
    sampled vectors; the engine rounds it up to at least two blocks of
    [words] (default 2) words × [steps] (default 128) steps. [dt]
    defaults to {!default_dt}. [pool] distributes blocks over worker
    domains (bit-identical to the sequential fold); [external_load]
    (default 20 fF) is added to primary-output nets, mirroring the
    estimator and the simulator.
    @raise Invalid_argument if [dt], [words], [steps] or [samples] is
    not positive. *)

val measured_stats : result -> Netlist.Circuit.net -> Stoch.Signal_stats.t
(** Estimated probability / density of a net, as {!Stoch.Signal_stats}
    (probability clamped into [0, 1]). *)

(** {1 Building blocks}

    Exposed for the differential oracles and tests. *)

val pack : bool array -> int64
(** [pack lanes] sets bit [i] to [lanes.(i)]; at most 64 lanes. *)

val unpack : int64 -> bool array
(** The 64 lanes of a word, [unpack w].(i) = bit [i]. *)

val popcount : int64 -> int

val eval_nets :
  Netlist.Circuit.t -> inputs:(Netlist.Circuit.net -> int64) -> int64 array
(** Word-parallel functional evaluation: every lane of the result equals
    {!Netlist.Eval.nets} on that lane of the inputs. Configuration
    choices cannot matter (every configuration computes the cell
    function), so gates are evaluated from their {!Cell.Gate.kind}. *)

val bernoulli_mask : Stoch.Rng.t -> float -> int64
(** 64 independent biased bits; each is 1 with probability [p] rounded
    to 30 fractional bits. *)
