(** The self-contained HTML dashboard over {!History} reports, and the
    strict parser that re-validates the artifact.

    {!render} emits one single-file document with zero external
    dependencies: no network fetches, no [src=] attributes, every
    [href] a [#]-anchor into the document itself. Series render as
    inline SVG sparklines; detected shifts as markers on them; the
    regression table ranks worst-first and links each offending run to
    its drill-down section (ledger top consumers, audit summary) when
    one was supplied. Every circuit/net/run name passes through
    {!escape}, and the machine-readable payload — the exact
    {!History.to_json} document — is embedded in a single
    [<script type="application/json" id="treorder-report">] block with
    every angle bracket rewritten to its [\uXXXX] JSON escape, so
    hostile names like [</script>] cannot break out of the block.

    {!parse_report} is the consumer-side contract, in the same spirit
    as {!Telemetry.parse_openmetrics}: strict about everything the
    renderer promises. The CLI re-parses every dashboard it writes and
    refuses to ship one that fails its own validator. Rendering is
    deterministic — no wall-clock, no RNG — so byte-identical reports
    produce byte-identical dashboards. *)

val escape : string -> string
(** HTML-escape: [&], [<], [>], double quote and apostrophe become
    character references; everything else passes through. Safe for
    both element text and double-quoted attribute values. *)

(** {1 Drill-down detail} *)

type run_detail = {
  rd_run : string;  (** run id the section documents *)
  rd_ledger : (string * string * float * float) list;
      (** gate out-net, cell, power before, power after — the top
          consumers, already ranked *)
  rd_audit : (string * float) list;  (** audit summary metrics *)
}

(** {1 Rendering} *)

val render :
  ?title:string -> ?details:run_detail list -> History.report -> string
(** The dashboard. [title] defaults to ["treorder dashboard"];
    [details] (default none) adds one anchored drill-down section per
    run, and regression rows link to them by run id. The document ends
    with the literal terminator line [<!-- treorder:eof -->] so a
    truncated write is detectable. *)

(** {1 Self-check} *)

type parsed = {
  pr_json : Trace.Json.t;  (** the embedded report payload, re-parsed *)
  pr_series : (string * int) list;
      (** every sparkline's [data-series] key
          (["<fingerprint>:<metric>"]) with its [data-points] count,
          sorted *)
  pr_details : string list;  (** drill-down run ids, sorted *)
}

val parse_report : string -> (parsed, string) result
(** Validate a rendered dashboard strictly. Checks, in order: the
    DOCTYPE is at byte 0; the terminator line ends the document; the
    document contains exactly one [<script] block and it is the
    JSON-payload block; the payload contains no raw [<] or [>] and
    parses as JSON with [history_version = 1]; the surrounding markup
    (payload spliced out) has no [src=] attribute and no [href] that
    is not a [#]-anchor; every series in the payload has exactly one
    sparkline whose [data-points] equals its [points] length; every
    regression-table run link resolves to a drill-down section. Any
    violation is an [Error] naming the first offending check. *)
