type value = V0 | V1 | VX

let value_char = function V0 -> '0' | V1 -> '1' | VX -> 'x'

(* --- writing --- *)

type var = { vcode : string; vname : string; vscope : string list }

type writer = {
  emit : string -> unit;
  mutable defs_open : bool;
  mutable next_id : int;
  mutable open_scopes : string list;  (* innermost first *)
  mutable last_time : int;
  mutable stamped : bool;  (* some #time already emitted *)
}

(* Short identifier codes over the printable range '!'..'~' (94
   symbols), in the usual bijective-base encoding: 0 -> "!", 93 -> "~",
   94 -> "!!". *)
let id_code n =
  let rec go n acc =
    let acc = String.make 1 (Char.chr (33 + (n mod 94))) ^ acc in
    if n < 94 then acc else go ((n / 94) - 1) acc
  in
  go n ""

let create ?(date = "") ?(timescale = "1 ps") ~emit () =
  if date <> "" then emit (Printf.sprintf "$date %s $end\n" date);
  emit "$version treorder $end\n";
  emit (Printf.sprintf "$timescale %s $end\n" timescale);
  {
    emit;
    defs_open = true;
    next_id = 0;
    open_scopes = [];
    last_time = min_int;
    stamped = false;
  }

let in_defs w fn =
  if not w.defs_open then
    invalid_arg (Printf.sprintf "Vcd.%s: definitions are closed" fn)

let open_scope w name =
  in_defs w "open_scope";
  w.open_scopes <- name :: w.open_scopes;
  w.emit (Printf.sprintf "$scope module %s $end\n" name)

let close_scope w =
  in_defs w "close_scope";
  match w.open_scopes with
  | [] -> invalid_arg "Vcd.close_scope: no open scope"
  | _ :: rest ->
      w.open_scopes <- rest;
      w.emit "$upscope $end\n"

let add_var w name =
  in_defs w "add_var";
  let code = id_code w.next_id in
  w.next_id <- w.next_id + 1;
  w.emit (Printf.sprintf "$var wire 1 %s %s $end\n" code name);
  { vcode = code; vname = name; vscope = List.rev w.open_scopes }

let enddefinitions w =
  in_defs w "enddefinitions";
  if w.open_scopes <> [] then invalid_arg "Vcd.enddefinitions: unclosed scope";
  w.defs_open <- false;
  w.emit "$enddefinitions $end\n$dumpvars\n";
  for i = 0 to w.next_id - 1 do
    w.emit (Printf.sprintf "x%s\n" (id_code i))
  done;
  w.emit "$end\n"

let stamp w time =
  if time < w.last_time then invalid_arg "Vcd.change: time went backwards";
  if time > w.last_time || not w.stamped then begin
    w.last_time <- time;
    w.stamped <- true;
    w.emit (Printf.sprintf "#%d\n" time)
  end

let change w ~time var v =
  if w.defs_open then invalid_arg "Vcd.change: call enddefinitions first";
  stamp w time;
  w.emit (Printf.sprintf "%c%s\n" (value_char v) var.vcode)

let finish w ~time =
  if w.defs_open then invalid_arg "Vcd.finish: call enddefinitions first";
  if time > w.last_time || not w.stamped then begin
    w.last_time <- time;
    w.stamped <- true;
    w.emit (Printf.sprintf "#%d\n" time)
  end

(* --- reading --- *)

type var_info = { code : string; name : string; scope : string list }
type change = { time : int; code : string; value : value }

type t = {
  timescale : string option;
  vars : var_info list;
  changes : change list;
}

let tokens s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | _ -> Buffer.add_char buf ch)
    s;
  flush ();
  List.rev !out

let rec drop_to_end = function
  | [] -> []
  | "$end" :: rest -> rest
  | _ :: rest -> drop_to_end rest

let rec take_to_end acc = function
  | [] -> (List.rev acc, [])
  | "$end" :: rest -> (List.rev acc, rest)
  | tok :: rest -> take_to_end (tok :: acc) rest

let scalar_value = function
  | '0' -> Some V0
  | '1' -> Some V1
  | 'x' | 'X' | 'z' | 'Z' -> Some VX
  | _ -> None

(* A vector value collapses to a scalar by numeric value: 0 -> 0,
   1 -> 1 (leading zeros ignored), anything else (a larger value, or
   any x/z bit) -> x. *)
let vector_value bits =
  if bits = "" || not (String.for_all (fun c -> c = '0' || c = '1') bits) then
    VX
  else
    let rec first_one i =
      if i >= String.length bits then None
      else if bits.[i] = '1' then Some i
      else first_one (i + 1)
    in
    match first_one 0 with
    | None -> V0
    | Some i when i = String.length bits - 1 -> V1
    | Some _ -> VX

let parse text =
  let vars = ref [] in
  let changes = ref [] in
  let timescale = ref None in
  let scope = ref [] in
  let time = ref 0 in
  let recognized = ref false in
  let add_change code value =
    recognized := true;
    changes := { time = !time; code; value } :: !changes
  in
  let rec go = function
    | [] -> ()
    | "$timescale" :: rest ->
        let body, rest = take_to_end [] rest in
        if body <> [] then begin
          recognized := true;
          timescale := Some (String.concat " " body)
        end;
        go rest
    | ("$date" | "$version" | "$comment" | "$enddefinitions") :: rest ->
        recognized := true;
        go (drop_to_end rest)
    | "$scope" :: rest ->
        let body, rest = take_to_end [] rest in
        (match List.rev body with
        | name :: _ ->
            recognized := true;
            scope := name :: !scope
        | [] -> ());
        go rest
    | "$upscope" :: rest ->
        (match !scope with [] -> () | _ :: up -> scope := up);
        go (drop_to_end rest)
    | "$var" :: rest ->
        let body, rest = take_to_end [] rest in
        (match body with
        | _type :: _width :: code :: name :: _ ->
            recognized := true;
            vars := { code; name; scope = List.rev !scope } :: !vars
        | _ -> ());
        go rest
    | ("$dumpvars" | "$dumpall" | "$dumpon" | "$dumpoff" | "$end") :: rest ->
        (* dump-section markers: their contents are ordinary changes *)
        recognized := true;
        go rest
    | tok :: rest when tok.[0] = '$' ->
        (* unknown section: skip its body *)
        go (drop_to_end rest)
    | tok :: rest when tok.[0] = '#' -> (
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some t ->
            recognized := true;
            time := t;
            go rest
        | None -> go rest)
    | tok :: rest when (tok.[0] = 'b' || tok.[0] = 'B') && String.length tok > 1
      -> (
        let bits = String.sub tok 1 (String.length tok - 1) in
        match rest with
        | code :: rest ->
            add_change code (vector_value bits);
            go rest
        | [] -> ())
    | tok :: rest when (tok.[0] = 'r' || tok.[0] = 'R') && String.length tok > 1
      -> (
        (* real change: skip value and identifier *)
        match rest with _ :: rest -> go rest | [] -> ())
    | tok :: rest when String.length tok >= 2 -> (
        match scalar_value tok.[0] with
        | Some v ->
            add_change (String.sub tok 1 (String.length tok - 1)) v;
            go rest
        | None -> go rest)
    | _ :: rest -> go rest
  in
  go (tokens text);
  if not !recognized then Error "no recognizable VCD content"
  else
    Ok
      {
        timescale = !timescale;
        vars = List.rev !vars;
        changes = List.rev !changes;
      }

let full_name v = String.concat "." (v.scope @ [ v.name ])

let find_var t name =
  List.find_opt (fun v -> full_name v = name) t.vars

let per_var t ~init ~f ~fin =
  let state = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let s =
        match Hashtbl.find_opt state c.code with
        | Some s -> s
        | None -> init
      in
      Hashtbl.replace state c.code (f s c.value))
    t.changes;
  List.map
    (fun (v : var_info) ->
      let s =
        match Hashtbl.find_opt state v.code with Some s -> s | None -> init
      in
      (full_name v, fin s))
    t.vars

let toggle_counts t =
  per_var t ~init:(VX, 0)
    ~f:(fun (prev, n) v ->
      match (prev, v) with
      | V0, V1 | V1, V0 -> (v, n + 1)
      | _, _ -> (v, n))
    ~fin:snd

let final_values t = per_var t ~init:VX ~f:(fun _ v -> v) ~fin:(fun v -> v)
