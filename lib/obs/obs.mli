(** Lightweight observability for the optimizer pipeline.

    Three instruments, one global-but-resettable registry:

    - {e counters} — named monotonic integers ([bdd.memo_hit],
      [optimizer.configs_explored], ...). Incrementing is a single field
      update; safe in the hottest loops.
    - {e distributions} — named value accumulators (count / sum / min /
      max) for quantities that are sampled rather than counted.
    - {e spans} — nestable timed regions aggregated per name
      (call count, total and worst wall-clock time).

    Instruments are created once (typically at module initialization)
    and live for the whole process; {!reset} zeroes every value but
    keeps the handles valid, so tests can assert on the work performed
    by a single operation via {!reset} + {!snapshot}.

    Counter names follow the [subsystem.verb_noun] scheme, where
    [subsystem] is the library that increments it (e.g. [bdd.node_alloc],
    [switchsim.event_pop]).

    An optional {e trace sink} turns span begin/end transitions and
    counter samples into NDJSON — one self-contained JSON object per
    line — for offline analysis. With the default {!null_sink}
    installed, no event is materialized: the emit paths test one branch
    and return.

    Every instrument is {e domain-safe} (see {{!page-performance} the
    performance page}): counters are atomic integers, so the totals of
    a parallel run equal the sequential totals exactly (increments
    commute); distributions and span aggregates are mutex-guarded; the
    span nesting depth is per-domain; trace-sink writes are serialized
    so concurrent events land as whole lines. For deterministic
    distribution contents under parallelism, record into a per-domain
    {!buffer} and {!merge} the buffers at the join point in submission
    order. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] registers (or retrieves — counters are keyed by
    name) a monotonic counter. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] bumps by [n] ([n >= 0]; negative deltas are a programming
    error and raise). *)

val value : counter -> int

(** {1 Distributions} *)

type distribution

val distribution : string -> distribution
(** Registers (or retrieves) a value distribution. Distributions keep
    every observed value (buffer doubling, cleared by {!reset}) so
    snapshots report exact nearest-rank quantiles; observe at sampled
    (e.g. per-gate) granularity, not in per-transistor hot loops. *)

val observe : distribution -> float -> unit

(** {2 Per-domain sample buffers}

    A {!buffer} is an unsynchronized local accumulator: a worker domain
    records into its own buffer without taking any lock, and the
    coordinator merges the buffers at the join point. Merging buffers
    in submission order makes the distribution's contents (including
    the float [sum], which is order-sensitive) independent of worker
    scheduling. *)

type buffer

val buffer : unit -> buffer
(** A fresh empty buffer. Not thread-safe: one owner at a time. *)

val record : buffer -> float -> unit

val buffer_length : buffer -> int

val merge : distribution -> buffer -> unit
(** Append every buffered value to the distribution, in recording
    order, under a single lock acquisition. The buffer is not
    cleared. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside the named timed region. Spans
    nest; the per-name aggregate accumulates call count and wall-clock
    time, and the trace sink (if any) sees begin/end events. The
    nesting depth is restored even when [f] raises. *)

val depth : unit -> int
(** Current span nesting depth in the calling domain (0 outside any
    span). *)

(** {1 Snapshots} *)

type dist_stats = {
  count : int;
  sum : float;
  min : float;  (** 0 when [count = 0] *)
  max : float;  (** 0 when [count = 0] *)
  p50 : float;  (** nearest-rank quantiles; 0 when [count = 0] *)
  p90 : float;
  p99 : float;
}

type span_stats = {
  calls : int;
  total : float;  (** seconds, summed over calls *)
  slowest : float;  (** seconds, worst single call *)
}

type gc_stats = {
  minor_words : float;  (** words allocated in the minor heap *)
  major_words : float;  (** words allocated in the major heap *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  distributions : (string * dist_stats) list;  (** sorted by name *)
  spans : (string * span_stats) list;  (** sorted by name *)
  gc : gc_stats;  (** allocation since the last {!reset} *)
}

val snapshot : unit -> snapshot
(** Consistent copy of every registered instrument's current value.
    Every list is sorted by instrument name, so rendered snapshots are
    diffable across runs. The instrument set is collected under a
    single registry-lock acquisition, so the snapshot's view of which
    instruments exist is coherent even while worker domains register
    new ones. *)

val read_counters : unit -> (string * int) array
(** Just the counters, name-sorted, under one registry-lock
    acquisition — the cheap read path the telemetry sampler hits every
    tick (no distribution sorting, no span locks, no GC probe). *)

val reset : unit -> unit
(** Zero every registered instrument (handles stay valid), reset the
    calling domain's span depth and re-baseline the GC statistics.
    Does not touch the trace sink. *)

val counter_value : snapshot -> string -> int
(** Convenience lookup; 0 when the name is not in the snapshot. *)

val snapshot_to_json : snapshot -> string
(** The snapshot as one JSON object:
    [{"counters":{...},"distributions":{...},"spans":{...},"gc":{...}}].
    Distribution objects carry [count]/[sum]/[min]/[max] plus the
    [p50]/[p90]/[p99] quantiles. *)

(** {1 NDJSON trace sink} *)

type sink

val null_sink : sink
(** The default: every emit is a no-op. *)

val file_sink : string -> sink
(** [file_sink path] opens [path] for writing; each event becomes one
    JSON object on its own line. Timestamps ([t], seconds) are relative
    to the moment the sink was created and are monotonically
    non-decreasing. Events are
    [{"ev":"span_begin","name":n,"t":s,"depth":d,"dom":k}],
    [{"ev":"span_end","name":n,"t":s,"depth":d,"dt":s,"dom":k}] and
    [{"ev":"counter","name":n,"t":s,"value":v,"dom":k}], where [dom] is
    the emitting domain's {!domain_lane}. *)

val domain_lane : unit -> int
(** A dense per-domain lane number for trace attribution: 0 for the
    domain that initialized this module (the coordinator), and the next
    unclaimed integer for each further domain on its first call. Stable
    for the lifetime of the domain. *)

val set_sink : sink -> unit
(** Install a sink (closing the previously installed one, if any). *)

val tracing : unit -> bool
(** [true] iff a non-null sink is installed. *)

val sample : counter -> unit
(** Emit a [counter] trace event with the counter's current value.
    No-op when {!tracing} is false. *)

val emit_event : ev:string -> (string * string) list -> unit
(** [emit_event ~ev fields] writes one custom NDJSON event
    [{"ev":ev,"t":s,<fields>,"dom":k}] and flushes the sink (so live
    consumers tailing the file see it immediately). Field values are
    pre-rendered JSON fragments (use {!json_string} / {!json_float});
    this is how the telemetry sampler emits [heartbeat] events. No-op
    when {!tracing} is false. *)

val json_string : string -> string
(** A JSON string literal with NDJSON-safe escapes. *)

val json_float : float -> string
(** A finite JSON number rendering ([%.17g]; non-finite values render
    as [0], since JSON has no inf/nan). *)

val close_sink : unit -> unit
(** Emit one final [counter] sample per registered counter, then flush
    and close the current sink and reinstall {!null_sink}. No-op when
    no file sink is installed. Also registered as an [at_exit] handler,
    so a process that calls [Stdlib.exit] with a file sink installed
    (e.g. a CLI usage error after [--trace] opened the file) still
    leaves a complete, flushed trace behind. *)
