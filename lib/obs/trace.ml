(* NDJSON trace reader, span-tree aggregation and Chrome export. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | Some _ | None -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | Some _ | None -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' ->
            advance ();
            Buffer.contents b
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> advance (); Buffer.add_char b '"'; go ()
            | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
            | Some '/' -> advance (); Buffer.add_char b '/'; go ()
            | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
            | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
            | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
            | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
            | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
            | Some 'u' ->
                advance ();
                let hex = Buffer.create 4 in
                for _ = 1 to 4 do
                  match peek () with
                  | Some (('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c) ->
                      advance ();
                      Buffer.add_char hex c
                  | Some _ | None -> fail "bad \\u escape"
                done;
                let code = int_of_string ("0x" ^ Buffer.contents hex) in
                (* The sink only escapes control characters, so a plain
                   byte for the BMP-latin subset is enough. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                go ()
            | Some _ | None -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "raw control character"
        | Some c ->
            advance ();
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let numeric = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> numeric c | None -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match float_of_string_opt text with
      | Some x -> Num x
      | None -> fail (Printf.sprintf "bad number %S" text)
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let key = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | Some _ | None -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | Some _ | None -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
      | None -> fail "unexpected end of input"
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | Null | Bool _ | Num _ | Str _ | Arr _ -> None

  let to_float = function Num x -> Some x | _ -> None
  let to_string = function Str s -> Some s | _ -> None

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
end

(* --- events --- *)

type event =
  | Span_begin of { name : string; t : float; depth : int; dom : int }
  | Span_end of { name : string; t : float; depth : int; dt : float; dom : int }
  | Counter of { name : string; t : float; value : int; dom : int }
  | Heartbeat of {
      t : float;
      phase : string;
      percent : float;
      eta_s : float option;
      rates : (string * float) list;
      util : float list;
      dom : int;
    }

let event_of_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> (
      let str key = Option.bind (Json.member key json) Json.to_string in
      let num key = Option.bind (Json.member key json) Json.to_float in
      (* Traces written before domain tagging have no "dom" field; they
         are single-domain by construction, so lane 0 is exact. *)
      let dom =
        match num "dom" with Some d -> int_of_float d | None -> 0
      in
      match (str "ev", str "name", num "t") with
      | Some "span_begin", Some name, Some t -> (
          match num "depth" with
          | Some depth ->
              Ok (Span_begin { name; t; depth = int_of_float depth; dom })
          | None -> Error "span_begin without depth")
      | Some "span_end", Some name, Some t -> (
          match (num "depth", num "dt") with
          | Some depth, Some dt ->
              Ok (Span_end { name; t; depth = int_of_float depth; dt; dom })
          | _ -> Error "span_end without depth/dt")
      | Some "counter", Some name, Some t -> (
          match num "value" with
          | Some v -> Ok (Counter { name; t; value = int_of_float v; dom })
          | None -> Error "counter without value")
      | Some ev, _, _ -> (
          match (ev, num "t") with
          | "heartbeat", Some t ->
              let phase = Option.value (str "phase") ~default:"" in
              let percent = Option.value (num "percent") ~default:0. in
              let rates =
                match Json.member "rates" json with
                | Some (Json.Obj fields) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun x -> (k, x)) (Json.to_float v))
                      fields
                | _ -> []
              in
              let util =
                match Json.member "util" json with
                | Some (Json.Arr xs) -> List.filter_map Json.to_float xs
                | _ -> []
              in
              Ok (Heartbeat { t; phase; percent; eta_s = num "eta_s"; rates; util; dom })
          | "heartbeat", None -> Error "heartbeat without t"
          | _ -> Error (Printf.sprintf "unknown event type %S" ev))
      | None, _, _ -> Error "event without \"ev\" field")

let events_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else (
          match event_of_line line with
          | Ok ev -> go (lineno + 1) (ev :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> events_of_string text
  | exception Sys_error msg -> Error msg

(* --- span tree --- *)

type tree = {
  name : string;
  calls : int;
  total : float;
  self : float;
  children : tree list;
}

(* Mutable accumulation node; frozen into [tree] at the end. *)
type node = {
  n_name : string;
  mutable n_calls : int;
  mutable n_total : float;
  n_children : (string, node) Hashtbl.t;
}

let fresh name =
  { n_name = name; n_calls = 0; n_total = 0.; n_children = Hashtbl.create 4 }

let span_tree events =
  let root = fresh "" in
  (* One stack of open spans per domain (innermost first, the shared
     root at the bottom): a worker's spans nest relative to that
     worker, while identical paths from different domains aggregate
     into the same tree nodes. *)
  let stacks : (int, node list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [ root ] in
        Hashtbl.add stacks dom s;
        s
  in
  let descend parent name =
    match Hashtbl.find_opt parent.n_children name with
    | Some child -> child
    | None ->
        let child = fresh name in
        Hashtbl.add parent.n_children name child;
        child
  in
  List.iter
    (fun ev ->
      match ev with
      | Span_begin { name; dom; _ } ->
          let stack = stack_of dom in
          let parent = List.hd !stack in
          stack := descend parent name :: !stack
      | Span_end { name; dt; dom; _ } -> (
          let stack = stack_of dom in
          match !stack with
          | top :: rest when top.n_name = name && rest <> [] ->
              top.n_calls <- top.n_calls + 1;
              top.n_total <- top.n_total +. dt;
              stack := rest
          | _ -> (* unmatched end: corrupt or truncated trace *) ())
      | Counter _ | Heartbeat _ -> ())
    events;
  let rec freeze node =
    let children =
      Hashtbl.fold (fun _ child acc -> freeze child :: acc) node.n_children []
      (* A span left open by a truncated trace froze with no completed
         calls; drop it unless completed descendants need its path. *)
      |> List.filter (fun c -> c.calls > 0 || c.children <> [])
      |> List.sort (fun a b -> compare a.name b.name)
    in
    let child_total = List.fold_left (fun acc c -> acc +. c.total) 0. children in
    let total =
      (* The synthetic root (and any span still open when the trace was
         cut) has no recorded time of its own: its children define it. *)
      if node.n_calls = 0 then child_total else node.n_total
    in
    {
      name = node.n_name;
      calls = node.n_calls;
      total;
      self = Float.max 0. (total -. child_total);
      children;
    }
  in
  freeze root

let cell_seconds s =
  if s >= 1. then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let render_tree tree =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%10s %10s %8s  %s\n" "total" "self" "calls" "span");
  let rec go indent node =
    Buffer.add_string b
      (Printf.sprintf "%10s %10s %8d  %s%s\n"
         (cell_seconds node.total) (cell_seconds node.self) node.calls
         (String.make (2 * indent) ' ')
         node.name);
    List.iter (go (indent + 1)) node.children
  in
  if tree.name = "" then (
    (* skip the synthetic root's own line when it only aggregates *)
    Buffer.add_string b
      (Printf.sprintf "%10s %10s %8s  %s\n" (cell_seconds tree.total) "" ""
         "(trace total)");
    List.iter (go 0) tree.children)
  else go 0 tree;
  Buffer.contents b

let final_counters events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (function
      | Counter { name; value; _ } -> Hashtbl.replace tbl name value
      | Span_begin _ | Span_end _ | Heartbeat _ -> ())
    events;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- Chrome trace-event export --- *)

let to_chrome events =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"traceEvents\":[";
  let us t = t *. 1e6 in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char b ',';
        Buffer.add_string b s)
      fmt
  in
  (* One Chrome thread lane per domain; lane 0 (the coordinator, and
     everything in a pre-domain-tagging trace) stays tid 1. *)
  List.iter
    (fun ev ->
      match ev with
      | Span_begin { name; t; dom; _ } ->
          emit "{\"name\":%s,\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
            (Json.escape name) (us t) (dom + 1)
      | Span_end { name; t; dom; _ } ->
          emit "{\"name\":%s,\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
            (Json.escape name) (us t) (dom + 1)
      | Counter { name; t; value; dom } ->
          emit
            "{\"name\":%s,\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%d}}"
            (Json.escape name) (us t) (dom + 1) value
      | Heartbeat { t; percent; dom; _ } ->
          emit
            "{\"name\":\"progress.percent\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%.3f}}"
            (us t) (dom + 1) percent)
    events;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

(* --- folded stacks (flamegraph.pl / speedscope) --- *)

let to_folded tree =
  let b = Buffer.create 256 in
  let frame name =
    String.map (fun c -> if c = ';' || c = ' ' then '_' else c) name
  in
  (* One line per path, value = self time in integer nanoseconds, DFS
     order (children are name-sorted, so output is deterministic).
     Zero-self interior frames still get a line: flamegraph.pl derives
     their width from descendant sums either way, and keeping them
     makes the file greppable per path. *)
  let rec go rev_path node =
    let rev_path = if node.name = "" then rev_path else frame node.name :: rev_path in
    (if rev_path <> [] then
       let ns = int_of_float (Float.max 0. (node.self *. 1e9)) in
       Buffer.add_string b (String.concat ";" (List.rev rev_path));
       Buffer.add_char b ' ';
       Buffer.add_string b (string_of_int ns);
       Buffer.add_char b '\n');
    List.iter (go rev_path) node.children
  in
  go [] tree;
  Buffer.contents b
