(* Run provenance records: a directory per run, manifest written last
   so [scan] can treat "has manifest.json" as "record is complete". *)

(* --- SHA-256 (FIPS 180-4) --- *)

let sha_k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
    0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
    0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
    0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
    0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
    0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
    0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
    0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
    0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
    0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

let sha256_hex msg =
  let h =
    [|
      0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
      0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
    |]
  in
  let len = String.length msg in
  (* Pad to a multiple of 64 bytes: 0x80, zeros, 64-bit big-endian bit
     length. *)
  let padded_len = (((len + 8) / 64) + 1) * 64 in
  let block = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 block 0 len;
  Bytes.set block len '\x80';
  Bytes.set_int64_be block (padded_len - 8) (Int64.of_int (8 * len));
  let w = Array.make 64 0l in
  let ( +% ) = Int32.add in
  let rotr x n =
    Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
  in
  for b = 0 to (padded_len / 64) - 1 do
    for t = 0 to 15 do
      w.(t) <- Bytes.get_int32_be block ((b * 64) + (4 * t))
    done;
    for t = 16 to 63 do
      let x = w.(t - 15) and y = w.(t - 2) in
      let s0 =
        Int32.logxor (Int32.logxor (rotr x 7) (rotr x 18))
          (Int32.shift_right_logical x 3)
      in
      let s1 =
        Int32.logxor (Int32.logxor (rotr y 17) (rotr y 19))
          (Int32.shift_right_logical y 10)
      in
      w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
    done;
    let a = ref h.(0) and b' = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and h' = ref h.(7) in
    for t = 0 to 63 do
      let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
      let ch =
        Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g)
      in
      let t1 = !h' +% s1 +% ch +% sha_k.(t) +% w.(t) in
      let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
      let maj =
        Int32.logxor
          (Int32.logxor (Int32.logand !a !b') (Int32.logand !a !c))
          (Int32.logand !b' !c)
      in
      let t2 = s0 +% maj in
      h' := !g;
      g := !f;
      f := !e;
      e := !d +% t1;
      d := !c;
      c := !b';
      b' := !a;
      a := t1 +% t2
    done;
    h.(0) <- h.(0) +% !a;
    h.(1) <- h.(1) +% !b';
    h.(2) <- h.(2) +% !c;
    h.(3) <- h.(3) +% !d;
    h.(4) <- h.(4) +% !e;
    h.(5) <- h.(5) +% !f;
    h.(6) <- h.(6) +% !g;
    h.(7) <- h.(7) +% !h'
  done;
  String.concat "" (Array.to_list (Array.map (Printf.sprintf "%08lx") h))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok text
  | exception Sys_error msg -> Error msg

let sha256_file path = Result.map sha256_hex (read_file path)

(* --- JSON writing helpers --- *)

let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "0"
let esc = Trace.Json.escape

(* --- pending records --- *)

type pending = {
  p_tool_version : string;
  p_subcommand : string;
  p_argv : string list;
  p_started : float;
  mutable p_inputs : (string * string) list;  (* reverse order *)
  mutable p_params : (string * string) list;
  mutable p_attachments : (string * string) list;  (* name, json; reverse *)
}

let start ?(tool_version = "dev") ~subcommand ~argv () =
  {
    p_tool_version = tool_version;
    p_subcommand = subcommand;
    p_argv = argv;
    p_started = Unix.gettimeofday ();
    p_inputs = [];
    p_params = [];
    p_attachments = [];
  }

let add_input p path =
  let digest =
    match sha256_file path with Ok hex -> hex | Error _ -> "unreadable"
  in
  p.p_inputs <- (path, digest) :: p.p_inputs

let set_param p key value =
  p.p_params <- (key, value) :: List.remove_assoc key p.p_params

let valid_attachment_name name =
  name <> "" && name <> "manifest" && name <> "snapshot"
  && name <> "." && name <> ".."
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       name
  && not (String.contains name '/')

let attach p ~name ~json =
  if not (valid_attachment_name name) then
    invalid_arg (Printf.sprintf "Runlog.attach: bad attachment name %S" name);
  p.p_attachments <- (name, json) :: List.remove_assoc name p.p_attachments

(* --- writing --- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_text path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let manifest_json p ~finished =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"runlog_version\":1,\"tool\":\"treorder\",\"tool_version\":%s,\"subcommand\":%s"
       (esc p.p_tool_version) (esc p.p_subcommand));
  Buffer.add_string b ",\"argv\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (esc a))
    p.p_argv;
  Buffer.add_string b "],\"inputs\":[";
  List.iteri
    (fun i (path, sha) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"path\":%s,\"sha256\":%s}" (esc path) (esc sha)))
    (List.rev p.p_inputs);
  Buffer.add_string b "],\"params\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%s:%s" (esc k) (esc v)))
    (List.sort compare p.p_params);
  Buffer.add_string b
    (Printf.sprintf "},\"started\":%s,\"finished\":%s"
       (json_float p.p_started) (json_float finished));
  Buffer.add_string b ",\"attachments\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (esc name))
    (List.sort compare (List.map fst p.p_attachments));
  Buffer.add_string b "]}";
  Buffer.contents b

let default_id p =
  let tm = Unix.gmtime p.p_started in
  Printf.sprintf "%s-%04d%02d%02dT%02d%02d%02dZ" p.p_subcommand
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let write ?id ~dir ~snapshot_json p =
  match
    mkdir_p dir;
    let run_dir =
      match id with
      | Some id ->
          let d = Filename.concat dir id in
          mkdir_p d;
          (* Explicit ids overwrite: drop the old manifest first so a
             half-rewritten record never looks complete. *)
          let m = Filename.concat d "manifest.json" in
          if Sys.file_exists m then Sys.remove m;
          d
      | None ->
          let base = default_id p in
          let rec pick n =
            let candidate =
              if n = 1 then base else Printf.sprintf "%s-%d" base n
            in
            let d = Filename.concat dir candidate in
            if Sys.file_exists d then
              if n > 999 then
                failwith ("no free run id under " ^ dir)
              else pick (n + 1)
            else begin
              mkdir_p d;
              d
            end
          in
          pick 1
    in
    write_text (Filename.concat run_dir "snapshot.json") snapshot_json;
    List.iter
      (fun (name, json) ->
        write_text (Filename.concat run_dir (name ^ ".json")) json)
      (List.rev p.p_attachments);
    let finished = Unix.gettimeofday () in
    write_text (Filename.concat run_dir "manifest.json")
      (manifest_json p ~finished);
    run_dir
  with
  | run_dir -> Ok run_dir
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s: %s (%s)" fn (Unix.error_message e) arg)
  | exception Failure msg -> Error msg

(* --- reading --- *)

type manifest = {
  version : int;
  tool_version : string;
  subcommand : string;
  argv : string list;
  inputs : (string * string) list;
  params : (string * string) list;
  started : float;
  finished : float;
  attachments : string list;
}

type run = { run_dir : string; run_id : string; manifest : manifest }

let manifest_of_json json =
  let open Trace.Json in
  let str key =
    match Option.bind (member key json) to_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "manifest: missing string %S" key)
  in
  let num key =
    match Option.bind (member key json) to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "manifest: missing number %S" key)
  in
  let ( let* ) = Result.bind in
  let* version = num "runlog_version" in
  let version = int_of_float version in
  if version <> 1 then
    Error (Printf.sprintf "manifest: unsupported runlog_version %d" version)
  else
    let* tool_version = str "tool_version" in
    let* subcommand = str "subcommand" in
    let* started = num "started" in
    let* finished = num "finished" in
    let str_list key =
      match member key json with
      | Some (Arr xs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Str s :: rest -> go (s :: acc) rest
            | _ -> Error (Printf.sprintf "manifest: %S holds a non-string" key)
          in
          go [] xs
      | _ -> Error (Printf.sprintf "manifest: missing array %S" key)
    in
    let* argv = str_list "argv" in
    let* attachments = str_list "attachments" in
    let* inputs =
      match member "inputs" json with
      | Some (Arr xs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | entry :: rest -> (
                match
                  ( Option.bind (member "path" entry) to_string,
                    Option.bind (member "sha256" entry) to_string )
                with
                | Some path, Some sha -> go ((path, sha) :: acc) rest
                | _ -> Error "manifest: malformed inputs entry")
          in
          go [] xs
      | _ -> Error "manifest: missing array \"inputs\""
    in
    let* params =
      match member "params" json with
      | Some (Obj fields) ->
          let rec go acc = function
            | [] -> Ok (List.sort compare acc)
            | (k, Str v) :: rest -> go ((k, v) :: acc) rest
            | (k, _) :: _ ->
                Error (Printf.sprintf "manifest: param %S is not a string" k)
          in
          go [] fields
      | _ -> Error "manifest: missing object \"params\""
    in
    Ok
      {
        version;
        tool_version;
        subcommand;
        argv;
        inputs;
        params;
        started;
        finished;
        attachments = List.sort compare attachments;
      }

let read_manifest path =
  let ( let* ) = Result.bind in
  let* text = read_file path in
  let* json = Trace.Json.parse text in
  manifest_of_json json

let load_run dir =
  match read_manifest (Filename.concat dir "manifest.json") with
  | Ok manifest -> Ok { run_dir = dir; run_id = Filename.basename dir; manifest }
  | Error msg -> Error (Printf.sprintf "%s: %s" dir msg)

let scan dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
      let runs =
        Array.to_list entries
        |> List.filter_map (fun entry ->
               let d = Filename.concat dir entry in
               if
                 Sys.is_directory d
                 && Sys.file_exists (Filename.concat d "manifest.json")
               then Result.to_option (load_run d)
               else None)
        |> List.sort (fun a b ->
               compare
                 (a.manifest.started, a.run_id)
                 (b.manifest.started, b.run_id))
      in
      Ok runs

let resolve path =
  if not (Sys.file_exists path) then Error (path ^ ": no such directory")
  else if not (Sys.is_directory path) then Error (path ^ ": not a directory")
  else if Sys.file_exists (Filename.concat path "manifest.json") then
    load_run path
  else
    match scan path with
    | Error msg -> Error msg
    | Ok [] -> Error (path ^ ": no complete run records found")
    | Ok runs -> Ok (List.nth runs (List.length runs - 1))

let read_attachment run name =
  let ( let* ) = Result.bind in
  let* text = read_file (Filename.concat run.run_dir (name ^ ".json")) in
  Trace.Json.parse text

(* --- snapshot access --- *)

let assoc_fields key json =
  match Trace.Json.member key json with
  | Some (Trace.Json.Obj fields) -> fields
  | _ -> []

let counters_of_snapshot json =
  assoc_fields "counters" json
  |> List.filter_map (fun (name, v) ->
         Option.map (fun x -> (name, x)) (Trace.Json.to_float v))
  |> List.sort compare

let spans_of_snapshot json =
  assoc_fields "spans" json
  |> List.filter_map (fun (name, v) ->
         Option.map
           (fun x -> (name, x))
           (Option.bind (Trace.Json.member "total_s" v) Trace.Json.to_float))
  |> List.sort compare

(* --- ledger access --- *)

type ledger_gate = {
  g_index : int;
  g_out : string;
  g_cell : string;
  g_config_before : int;
  g_config_after : int;
  g_power_before : float;
  g_power_after : float;
}

type ledger = {
  l_circuit : string;
  l_total_before : float;
  l_total_after : float;
  l_gates : ledger_gate array;
}

let ledger_of_json json =
  let open Trace.Json in
  let ( let* ) = Result.bind in
  let str j key =
    match Option.bind (member key j) to_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "ledger: missing string %S" key)
  in
  let num j key =
    match Option.bind (member key j) to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "ledger: missing number %S" key)
  in
  let* l_circuit = str json "circuit" in
  let* l_total_before = num json "total_before" in
  let* l_total_after = num json "total_after" in
  let* gates =
    match member "gates" json with
    | Some (Arr gs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | g :: rest ->
              let* idx = num g "index" in
              let* g_out = str g "output" in
              let* g_cell = str g "cell" in
              let* config_before = num g "config_before" in
              let* config_after = num g "config_after" in
              let* g_power_before = num g "power_before" in
              let* g_power_after = num g "power_after" in
              go
                ({
                   g_index = int_of_float idx;
                   g_out;
                   g_cell;
                   g_config_before = int_of_float config_before;
                   g_config_after = int_of_float config_after;
                   g_power_before;
                   g_power_after;
                 }
                :: acc)
                rest
        in
        go [] gs
    | _ -> Error "ledger: missing array \"gates\""
  in
  let gates =
    List.sort (fun a b -> compare a.g_index b.g_index) gates |> Array.of_list
  in
  Ok { l_circuit; l_total_before; l_total_after; l_gates = gates }

(* --- diffing --- *)

type gate_drift = {
  gate : string;
  cell : string;
  a_config : int;
  b_config : int;
  a_power : float;
  b_power : float;
}

type value_drift = { metric : string; a_value : float; b_value : float }

type diff = {
  run_a : run;
  run_b : run;
  param_drift : (string * string option * string option) list;
  input_drift : (string * string option * string option) list;
  counters : Regress.violation list;
  flips : gate_drift list;
  power_drift : gate_drift list;
  audit_drift : value_drift list;
  structure : string list;
  notes : string list;
}

(* Timing counters and per-domain scheduling counters measure the
   machine, not the computation; they never participate in a diff. *)
let excluded_counter ignore name =
  String.ends_with ~suffix:"_ns" name
  || String.starts_with ~prefix:"par.domain_" name
  || List.exists (fun p -> String.starts_with ~prefix:p name) ignore

let rel_close rtol a b =
  a = b || Float.abs (a -. b) <= rtol *. Float.max (Float.abs a) (Float.abs b)

let assoc_drift a b =
  let keys =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.filter_map
    (fun key ->
      let va = List.assoc_opt key a and vb = List.assoc_opt key b in
      if va = vb then None else Some (key, va, vb))
    keys

(* Audit-summary error metrics worth watching across runs. *)
let audit_metrics =
  [
    "mean_density_err_pct"; "max_density_err_pct"; "mean_prob_err";
    "max_prob_err"; "model_total"; "sim_total"; "total_err_pct";
  ]

let diff ?tol ?(rtol = 1e-9) ?(ignore_counters = []) run_a run_b =
  let tol =
    match tol with
    | Some t -> t
    | None -> { Regress.default_tolerance with Regress.check_time = false }
  in
  let structure = ref [] and notes = ref [] in
  let structural msg = structure := msg :: !structure in
  let note msg = notes := msg :: !notes in
  (* Counters from the snapshots, via Regress's inner-join compare. *)
  let target_of run =
    match read_attachment run "snapshot" with
    | Error msg ->
        structural (Printf.sprintf "%s: unreadable snapshot (%s)" run.run_id msg);
        None
    | Ok json ->
        Some
          {
            Regress.name = "run";
            seconds = run.manifest.finished -. run.manifest.started;
            counters =
              counters_of_snapshot json
              |> List.filter (fun (name, _) ->
                     not (excluded_counter ignore_counters name));
            spans = spans_of_snapshot json;
          }
  in
  let counters =
    match (target_of run_a, target_of run_b) with
    | Some ta, Some tb -> Regress.compare tol ~baseline:[ ta ] ~current:[ tb ]
    | _ -> []
  in
  (* Ledgers: join gates by index. *)
  let attachment_side name =
    ( List.mem name run_a.manifest.attachments,
      List.mem name run_b.manifest.attachments )
  in
  let load_pair name decode =
    match attachment_side name with
    | false, false -> None
    | true, false ->
        note (Printf.sprintf "%s only in %s" name run_a.run_id);
        None
    | false, true ->
        note (Printf.sprintf "%s only in %s" name run_b.run_id);
        None
    | true, true -> (
        let get run =
          match Result.bind (read_attachment run name) decode with
          | Ok v -> Some v
          | Error msg ->
              structural
                (Printf.sprintf "%s: bad %s attachment (%s)" run.run_id name msg);
              None
        in
        match (get run_a, get run_b) with
        | Some a, Some b -> Some (a, b)
        | _ -> None)
  in
  let flips = ref [] and power_drift = ref [] and audit_drift = ref [] in
  let value_drift metric a b =
    if not (rel_close rtol a b) then
      audit_drift := { metric; a_value = a; b_value = b } :: !audit_drift
  in
  (match load_pair "ledger" ledger_of_json with
  | None -> ()
  | Some (la, lb) ->
      if la.l_circuit <> lb.l_circuit then
        structural
          (Printf.sprintf "ledger circuits differ: %s vs %s" la.l_circuit
             lb.l_circuit)
      else if Array.length la.l_gates <> Array.length lb.l_gates then
        structural
          (Printf.sprintf "ledger gate counts differ: %d vs %d"
             (Array.length la.l_gates) (Array.length lb.l_gates))
      else begin
        value_drift "ledger.total_before" la.l_total_before lb.l_total_before;
        value_drift "ledger.total_after" la.l_total_after lb.l_total_after;
        Array.iteri
          (fun i ga ->
            let gb = lb.l_gates.(i) in
            let drift =
              {
                gate = ga.g_out;
                cell = ga.g_cell;
                a_config = ga.g_config_after;
                b_config = gb.g_config_after;
                a_power = ga.g_power_after;
                b_power = gb.g_power_after;
              }
            in
            if ga.g_config_after <> gb.g_config_after then
              flips := drift :: !flips
            else if not (rel_close rtol ga.g_power_after gb.g_power_after) then
              power_drift := drift :: !power_drift)
          la.l_gates
      end);
  (* Audit summaries: compare the calibration error metrics. *)
  (match
     load_pair "audit" (fun json ->
         match Trace.Json.member "summary" json with
         | Some s -> Ok s
         | None -> Error "audit: missing \"summary\"")
   with
  | None -> ()
  | Some (sa, sb) ->
      List.iter
        (fun metric ->
          match
            ( Option.bind (Trace.Json.member metric sa) Trace.Json.to_float,
              Option.bind (Trace.Json.member metric sb) Trace.Json.to_float )
          with
          | Some a, Some b -> value_drift ("audit." ^ metric) a b
          | _ -> ())
        audit_metrics);
  {
    run_a;
    run_b;
    param_drift = assoc_drift run_a.manifest.params run_b.manifest.params;
    input_drift = assoc_drift run_a.manifest.inputs run_b.manifest.inputs;
    counters;
    flips = List.rev !flips;
    power_drift = List.rev !power_drift;
    audit_drift = List.rev !audit_drift;
    structure = List.rev !structure;
    notes = List.rev !notes;
  }

let is_clean d =
  d.counters = [] && d.flips = [] && d.power_drift = [] && d.audit_drift = []
  && d.structure = []

let render_diff d =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let opt = function Some v -> v | None -> "(absent)" in
  line "A: %s  (%s, started %.3f)" d.run_a.run_id d.run_a.manifest.subcommand
    d.run_a.manifest.started;
  line "B: %s  (%s, started %.3f)" d.run_b.run_id d.run_b.manifest.subcommand
    d.run_b.manifest.started;
  if d.param_drift <> [] then begin
    line "parameters:";
    List.iter
      (fun (k, va, vb) -> line "  %-16s %s -> %s" k (opt va) (opt vb))
      d.param_drift
  end;
  if d.input_drift <> [] then begin
    line "inputs:";
    List.iter
      (fun (path, va, vb) ->
        line "  %s: %s -> %s" path (opt va) (opt vb))
      d.input_drift
  end;
  List.iter (fun msg -> line "structure: %s" msg) d.structure;
  if d.counters <> [] then begin
    line "counters beyond tolerance:";
    Buffer.add_string b (Regress.render d.counters)
  end;
  if d.flips <> [] then begin
    line "configuration flips:";
    List.iter
      (fun f ->
        line "  %-12s %-10s cfg %d -> %d  (%.4g -> %.4g)" f.gate f.cell
          f.a_config f.b_config f.a_power f.b_power)
      d.flips
  end;
  if d.power_drift <> [] then begin
    line "gate power drift (same configuration):";
    List.iter
      (fun f ->
        line "  %-12s %-10s cfg %d  %.17g -> %.17g" f.gate f.cell f.a_config
          f.a_power f.b_power)
      d.power_drift
  end;
  if d.audit_drift <> [] then begin
    line "value drift:";
    List.iter
      (fun v -> line "  %-28s %.17g -> %.17g" v.metric v.a_value v.b_value)
      d.audit_drift
  end;
  List.iter (fun msg -> line "note: %s" msg) d.notes;
  if is_clean d then line "runs agree within tolerance"
  else
    line "runs differ: %d counter, %d flip, %d power, %d value, %d structure"
      (List.length d.counters) (List.length d.flips)
      (List.length d.power_drift)
      (List.length d.audit_drift)
      (List.length d.structure);
  Buffer.contents b
