(** Live telemetry: a background sampler over the {!Obs} registry.

    Where {!Obs.snapshot} is post-hoc (one reading after the run), this
    module watches a run {e while it executes}: a sampler domain
    snapshots every registered instrument at a fixed cadence (default
    250 ms) into a bounded ring of {!sample}s, each carrying the raw
    counter values {e and} their per-second rates over the interval,
    distribution quantiles, GC word deltas, per-slot domain-pool
    utilization and the current {!progress} estimate. Every tick is
    exposed two further ways:

    - an OpenMetrics/Prometheus text exposition written atomically
      (temp file + rename) to the configured metrics file, and
    - a [heartbeat] event appended to the NDJSON trace sink (when one
      is installed), which `treorder top` tails to render a live view.

    The sampler measures its own cost into the [obs.sample_ns] counter,
    so its overhead is visible in the very data it collects and is
    regression-gated by the [telemetry_overhead] bench target. When the
    sampler is never started, that counter stays 0: the instrumented
    code paths themselves carry no telemetry cost.

    Thread-safety: every entry point may be called from any domain.
    {!progress_tick} is a single atomic increment, safe in per-gate /
    per-block hot paths. *)

(** {1 Progress}

    Phases register their total work up-front — the optimizer knows
    gates × candidate configurations before the sweep starts — and tick
    completion as they go. Percent is monotone {e within} a phase; a
    new {!progress_begin} starts a new denominator (the heartbeat
    carries the phase name so consumers can segment). *)

type progress = {
  phase : string;  (** [""] when no phase has been registered *)
  total : int;  (** registered work units *)
  done_ : int;  (** completed work units, clamped to [total] *)
  percent : float;  (** 0–100; 0 when [total = 0] *)
  eta_s : float option;  (** linear-extrapolation estimate; [None] until
                             the first tick *)
}

val progress_begin : phase:string -> total:int -> unit
(** Start a new phase with [total] work units, resetting completion. *)

val progress_tick : ?n:int -> unit -> unit
(** Record [n] (default 1) completed work units. Lock-free. *)

val progress : unit -> progress
(** The current phase's progress, with [percent] and [eta_s] derived
    at call time. *)

(** {1 Pool utilization source}

    [treorder.par] installs a callback here at link time (dependency
    inversion: this library must not depend on the pool), exposing the
    per-slot busy/task accumulators of every live pool. *)

type pool_slot = {
  ps_slot : int;  (** slot number, dense across live pools *)
  ps_busy_ns : int;  (** cumulative busy time, including the in-flight task *)
  ps_tasks : int;  (** completed tasks *)
  ps_running : bool;  (** currently executing a task *)
}

val set_pool_source : (unit -> pool_slot array) -> unit

(** {1 Samples and the ring} *)

type slot_util = {
  u_slot : int;
  u_busy_ns : int;  (** cumulative busy ns at sample time *)
  u_tasks : int;
  u_ratio : float;  (** busy fraction of the last interval, in [0, 1] *)
}

type sample = {
  s_time : float;  (** seconds since the session started *)
  s_counters : (string * int) array;  (** name-sorted counter values *)
  s_rates : (string * float) array;  (** per-second deltas, name-sorted *)
  s_dists : (string * Obs.dist_stats) list;
  s_spans : (string * Obs.span_stats) list;
  s_gc_minor_delta : float;
      (** minor words allocated over the interval, as visible from the
          sampling domain (domain-local minor heaps) *)
  s_gc_major_delta : float;
  s_util : slot_util array;
  s_progress : progress;
}

val rates_of :
  prev:(string * int) array ->
  dt:float ->
  (string * int) array ->
  (string * float) array
(** [rates_of ~prev ~dt cur]: per-second rate of each counter in [cur]
    against the name-sorted [prev] values. A counter absent from
    [prev] is treated as previously 0; negative deltas clamp to 0;
    [dt <= 0] yields all-zero rates. Exposed pure for testing. *)

(** {1 Sampler lifecycle} *)

val start :
  ?interval:float -> ?capacity:int -> ?metrics_file:string -> unit -> unit
(** Start a sampler session. [interval] (default 0.25 s) is the tick
    cadence; an interval [<= 0] starts a {e manual} session with no
    background domain, ticked explicitly via {!sample_now} (tests, and
    anywhere sample counts must be deterministic). [capacity] (default
    1024) bounds the ring: older samples are evicted. [metrics_file]
    enables the OpenMetrics exposition, rewritten atomically on every
    tick. Idempotent: starting a running sampler is a no-op. *)

val stop : unit -> unit
(** Signal the sampler domain, join it, then take one final forced
    sample — so the newest ring entry reflects the final registry
    state. (Exception: [obs.sample_ns] lags by exactly the final
    tick's own cost, which cannot be included in the values that tick
    reads; consumers comparing final sample against {!Obs.snapshot}
    must exclude it.) The ring stays readable via {!series} after
    stopping. Idempotent. *)

val running : unit -> bool

val sample_now : unit -> sample option
(** Take (and record) a sample immediately. [None] when no session is
    active. *)

val series : unit -> sample list
(** The ring contents, oldest first, of the active session — or of the
    last stopped one. *)

val last : unit -> sample option
(** The newest sample, if any. *)

(** {1 OpenMetrics exposition} *)

val metric_of_counter : string -> string * (string * string) list
(** Map an Obs counter name to its OpenMetrics family name and labels:
    [treorder_] prefix, non-alphanumerics to [_], and the per-slot pool
    counters ([par.domain_busy_ns.3], ...) folded into one family with
    a [slot] label. The sample line for a counter appends [_total]. *)

val to_openmetrics : sample -> string
(** Render one sample as an OpenMetrics text exposition: [# HELP] and
    [# TYPE] per family, counter/gauge/summary samples, terminated by
    [# EOF]. Guaranteed to round-trip through {!parse_openmetrics}. *)

(** {2 Strict parser}

    Used by the tests, the [telemetry-consistency] oracle and the
    [@check] gate to hold the renderer to the format it claims. *)

type metric = {
  m_name : string;  (** full sample name, e.g. [treorder_par_tasks_run_total] *)
  m_labels : (string * string) list;
  m_value : float;
}

val parse_openmetrics : string -> (metric list, string) result
(** Strict line parser: every sample must belong to a family declared
    by a preceding [# TYPE] and use the suffix that family's type
    mandates ([_total] for counters, bare for gauges, quantile-labelled
    / [_sum] / [_count] for summaries); metric and label names must
    match the OpenMetrics grammar; the document must end with a single
    [# EOF]. [Error] carries a line-numbered message. *)

val metric_value :
  metric list -> ?labels:(string * string) list -> string -> float option
(** First sample with the given name whose labels include every
    requested pair. *)
