(* Live telemetry: a background sampler domain snapshots the Obs
   registry at a fixed cadence into a bounded ring of samples, renders
   every tick as OpenMetrics text (written atomically, tmp + rename)
   and as a [heartbeat] trace event, and self-measures its own cost in
   the [obs.sample_ns] counter so sampler overhead is regression-gated
   like everything the sampler measures. *)

let c_sample_ns = Obs.counter "obs.sample_ns"

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- progress: phases register total work up-front and tick it --- *)

type progress = {
  phase : string;
  total : int;
  done_ : int;
  percent : float;
  eta_s : float option;
}

(* One global phase slot. [progress_tick] is the hot call (per gate /
   per MC block, possibly from worker domains), so completion is a
   plain atomic; the rarely-written phase identity sits behind a
   mutex. Percent is monotone within a phase: a new [progress_begin]
   starts a new denominator. *)
let prog_lock = Mutex.create ()
let prog_phase = ref ""
let prog_total = ref 0
let prog_t0 = ref 0.
let prog_done = Atomic.make 0

let progress_begin ~phase ~total =
  with_lock prog_lock @@ fun () ->
  prog_phase := phase;
  prog_total := Stdlib.max 0 total;
  prog_t0 := Unix.gettimeofday ();
  Atomic.set prog_done 0

let progress_tick ?(n = 1) () =
  if n > 0 then ignore (Atomic.fetch_and_add prog_done n)

let progress () =
  with_lock prog_lock @@ fun () ->
  let phase = !prog_phase and total = !prog_total in
  let raw_done = Atomic.get prog_done in
  let done_ = if total > 0 then Stdlib.min raw_done total else raw_done in
  let percent =
    if total <= 0 then 0.
    else 100. *. float_of_int done_ /. float_of_int total
  in
  let eta_s =
    if total <= 0 || done_ <= 0 then None
    else if done_ >= total then Some 0.
    else
      let elapsed = Unix.gettimeofday () -. !prog_t0 in
      Some (elapsed *. float_of_int (total - done_) /. float_of_int done_)
  in
  { phase; total; done_; percent; eta_s }

(* --- pool utilization source (installed by Par.Pool at link time;
   inverted so treorder.obs does not depend on treorder.par) --- *)

type pool_slot = {
  ps_slot : int;
  ps_busy_ns : int;
  ps_tasks : int;
  ps_running : bool;
}

let pool_source : (unit -> pool_slot array) ref = ref (fun () -> [||])
let set_pool_source f = pool_source := f

(* --- samples --- *)

type slot_util = { u_slot : int; u_busy_ns : int; u_tasks : int; u_ratio : float }

type sample = {
  s_time : float;
  s_counters : (string * int) array;
  s_rates : (string * float) array;
  s_dists : (string * Obs.dist_stats) list;
  s_spans : (string * Obs.span_stats) list;
  s_gc_minor_delta : float;
  s_gc_major_delta : float;
  s_util : slot_util array;
  s_progress : progress;
}

(* Per-second rates between two name-sorted counter arrays. A counter
   absent from [prev] was created mid-interval, so its previous value
   is 0; negative deltas (an [Obs.reset] between samples) clamp to 0. *)
let rates_of ~prev ~dt cur =
  let np = Array.length prev in
  let out = Array.make (Array.length cur) ("", 0.) in
  let j = ref 0 in
  Array.iteri
    (fun i (name, v) ->
      while !j < np && fst prev.(!j) < name do
        incr j
      done;
      let p = if !j < np && fst prev.(!j) = name then snd prev.(!j) else 0 in
      let rate =
        if dt <= 0. then 0.
        else float_of_int (Stdlib.max 0 (v - p)) /. dt
      in
      out.(i) <- (name, rate))
    cur;
  out

(* --- sampler session --- *)

type state = {
  t_interval : float;
  t_capacity : int;
  t_metrics : string option;
  t_t0 : float;
  ring : sample option array;
  mutable head : int; (* next write index *)
  mutable len : int;
  mutable prev : sample option;
  mutable prev_gc : float * float; (* cumulative snapshot GC words *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable dom : unit Domain.t option;
}

let lock = Mutex.create ()
let current : state option ref = ref None

(* Kept after [stop] so the ring stays inspectable post-run. *)
let last_state : state option ref = ref None

let running () = with_lock lock (fun () -> Option.is_some !current)

let series_of st =
  let out = ref [] in
  for i = st.len - 1 downto 0 do
    let idx = (st.head - 1 - i + (2 * st.t_capacity)) mod st.t_capacity in
    match st.ring.(idx) with Some s -> out := s :: !out | None -> ()
  done;
  List.rev !out

let active_or_last () =
  with_lock lock @@ fun () ->
  match !current with Some _ as s -> s | None -> !last_state

let series () =
  match active_or_last () with
  | None -> []
  | Some st -> with_lock lock (fun () -> series_of st)

let last () =
  match active_or_last () with
  | None -> None
  | Some st -> with_lock lock (fun () -> st.prev)

(* --- OpenMetrics exposition --- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

(* Per-slot pool counters ([par.domain_busy_ns.3], ...) fold into one
   metric family with a [slot] label; everything else maps 1:1. *)
let metric_of_counter name =
  let is_digits s =
    s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s
  in
  let par_slot =
    if String.length name > 11 && String.sub name 0 11 = "par.domain_" then
      match String.rindex_opt name '.' with
      | Some i when i > 0 && i < String.length name - 1 ->
          let suffix = String.sub name (i + 1) (String.length name - i - 1) in
          if is_digits suffix then Some (String.sub name 0 i, suffix) else None
      | _ -> None
    else None
  in
  match par_slot with
  | Some (family, slot) -> ("treorder_" ^ sanitize family, [ ("slot", slot) ])
  | None -> ("treorder_" ^ sanitize name, [])

let render_labels b labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          String.iter
            (fun c ->
              match c with
              | '\\' -> Buffer.add_string b "\\\\"
              | '"' -> Buffer.add_string b "\\\""
              | '\n' -> Buffer.add_string b "\\n"
              | c -> Buffer.add_char b c)
            v;
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let num x = Obs.json_float x

(* [samples] are (name-suffix, labels, rendered value). *)
let family b ~name ~typ ~help samples =
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
  List.iter
    (fun (suffix, labels, v) ->
      Buffer.add_string b name;
      Buffer.add_string b suffix;
      render_labels b labels;
      Buffer.add_char b ' ';
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    samples

let to_openmetrics s =
  let b = Buffer.create 2048 in
  family b ~name:"treorder_sample_time_seconds" ~typ:"gauge"
    ~help:"Seconds since the telemetry session started"
    [ ("", [], num s.s_time) ];
  (* Counters: name-sorted, so the per-slot members of a labeled family
     are consecutive and fold into one # TYPE block. *)
  let i = ref 0 in
  let n = Array.length s.s_counters in
  while !i < n do
    let cname, _ = s.s_counters.(!i) in
    let fam, _ = metric_of_counter cname in
    let members = ref [] in
    while
      !i < n
      &&
      let f, _ = metric_of_counter (fst s.s_counters.(!i)) in
      f = fam
    do
      let name, v = s.s_counters.(!i) in
      let _, labels = metric_of_counter name in
      members := ("_total", labels, string_of_int v) :: !members;
      incr i
    done;
    family b ~name:fam ~typ:"counter" ~help:"Obs counter" (List.rev !members)
  done;
  family b ~name:"treorder_rate_per_second" ~typ:"gauge"
    ~help:"Per-second counter rate over the last sampling interval"
    (List.map
       (fun (name, r) -> ("", [ ("counter", name) ], num r))
       (Array.to_list s.s_rates));
  List.iter
    (fun (name, (d : Obs.dist_stats)) ->
      let fam = "treorder_dist_" ^ sanitize name in
      family b ~name:fam ~typ:"summary"
        ~help:("Obs distribution " ^ name)
        [
          ("", [ ("quantile", "0.5") ], num d.Obs.p50);
          ("", [ ("quantile", "0.9") ], num d.Obs.p90);
          ("", [ ("quantile", "0.99") ], num d.Obs.p99);
          ("_sum", [], num d.Obs.sum);
          ("_count", [], string_of_int d.Obs.count);
        ])
    s.s_dists;
  if s.s_spans <> [] then begin
    family b ~name:"treorder_span_seconds" ~typ:"gauge"
      ~help:"Total wall-clock seconds per Obs span"
      (List.map
         (fun (name, (sp : Obs.span_stats)) ->
           ("", [ ("span", name) ], num sp.Obs.total))
         s.s_spans);
    family b ~name:"treorder_span_calls" ~typ:"gauge"
      ~help:"Call count per Obs span"
      (List.map
         (fun (name, (sp : Obs.span_stats)) ->
           ("", [ ("span", name) ], string_of_int sp.Obs.calls))
         s.s_spans)
  end;
  family b ~name:"treorder_gc_minor_words_delta" ~typ:"gauge"
    ~help:"Minor heap words allocated during the last sampling interval"
    [ ("", [], num s.s_gc_minor_delta) ];
  family b ~name:"treorder_gc_major_words_delta" ~typ:"gauge"
    ~help:"Major heap words allocated during the last sampling interval"
    [ ("", [], num s.s_gc_major_delta) ];
  if Array.length s.s_util > 0 then begin
    let slots f =
      Array.to_list
        (Array.map
           (fun u -> ("", [ ("slot", string_of_int u.u_slot) ], f u))
           s.s_util)
    in
    family b ~name:"treorder_pool_busy" ~typ:"counter"
      ~help:"Cumulative nanoseconds each pool slot spent running tasks"
      (List.map
         (fun (_, l, v) -> ("_total", l, v))
         (slots (fun u -> string_of_int u.u_busy_ns)));
    family b ~name:"treorder_pool_tasks" ~typ:"counter"
      ~help:"Cumulative tasks each pool slot has completed"
      (List.map
         (fun (_, l, v) -> ("_total", l, v))
         (slots (fun u -> string_of_int u.u_tasks)));
    family b ~name:"treorder_pool_busy_ratio" ~typ:"gauge"
      ~help:"Busy fraction of each pool slot over the last interval"
      (slots (fun u -> num u.u_ratio))
  end;
  (if s.s_progress.phase <> "" then
     let p = s.s_progress in
     let l = [ ("phase", p.phase) ] in
     family b ~name:"treorder_progress_percent" ~typ:"gauge"
       ~help:"Percent of the registered work completed in the current phase"
       [ ("", l, num p.percent) ];
     family b ~name:"treorder_progress_done" ~typ:"gauge"
       ~help:"Completed work units in the current phase"
       [ ("", l, string_of_int p.done_) ];
     family b ~name:"treorder_progress_total" ~typ:"gauge"
       ~help:"Registered work units in the current phase"
       [ ("", l, string_of_int p.total) ];
     match p.eta_s with
     | None -> ()
     | Some eta ->
         family b ~name:"treorder_progress_eta_seconds" ~typ:"gauge"
           ~help:"Estimated seconds until the current phase completes"
           [ ("", l, num eta) ]);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* --- strict OpenMetrics line parser (tests, oracle, @check gate) --- *)

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_value : float;
}

let valid_metric_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let valid_label_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       name

exception Bad of string

let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do
    incr i
  done;
  let name = String.sub line 0 !i in
  if not (valid_metric_name name) then
    raise (Bad (Printf.sprintf "invalid metric name %S" name));
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let fin = ref false in
    while not !fin do
      if !i >= n then raise (Bad "unterminated label set");
      if line.[!i] = '}' then begin
        incr i;
        fin := true
      end
      else begin
        let j = ref !i in
        while !j < n && line.[!j] <> '=' do
          incr j
        done;
        if !j >= n then raise (Bad "label without '='");
        let lname = String.sub line !i (!j - !i) in
        if not (valid_label_name lname) then
          raise (Bad (Printf.sprintf "invalid label name %S" lname));
        i := !j + 1;
        if !i >= n || line.[!i] <> '"' then
          raise (Bad "label value must be quoted");
        incr i;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Bad "unterminated label value");
          (match line.[!i] with
          | '\\' ->
              if !i + 1 >= n then raise (Bad "dangling escape");
              (match line.[!i + 1] with
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | 'n' -> Buffer.add_char buf '\n'
              | c -> raise (Bad (Printf.sprintf "bad escape '\\%c'" c)));
              i := !i + 2
          | '"' ->
              closed := true;
              incr i
          | c ->
              Buffer.add_char buf c;
              incr i)
        done;
        labels := (lname, Buffer.contents buf) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
        else if !i >= n || line.[!i] <> '}' then
          raise (Bad "expected ',' or '}' after label")
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then
    raise (Bad "expected single space before value");
  let value_str = String.sub line (!i + 1) (n - !i - 1) in
  if value_str = "" || String.contains value_str ' ' then
    raise (Bad "malformed value field");
  match float_of_string_opt value_str with
  | None -> raise (Bad (Printf.sprintf "unparseable value %S" value_str))
  | Some v -> { m_name = name; m_labels = List.rev !labels; m_value = v }

let known_types = [ "counter"; "gauge"; "summary"; "histogram"; "info" ]

(* The family a sample name belongs to, given the declared families. *)
let family_of types name =
  let try_strip suffix =
    let ls = String.length suffix and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suffix then
      let fam = String.sub name 0 (ln - ls) in
      if Hashtbl.mem types fam then Some (fam, suffix) else None
    else None
  in
  if Hashtbl.mem types name then Some (name, "")
  else
    List.find_map try_strip [ "_total"; "_sum"; "_count"; "_bucket" ]

let suffix_ok typ suffix has_quantile =
  match (typ, suffix) with
  | "counter", "_total" -> true
  | "counter", _ -> false
  | "gauge", "" -> true
  | "gauge", _ -> false
  | "summary", "" -> has_quantile
  | "summary", ("_sum" | "_count") -> true
  | "summary", _ -> false
  | "histogram", ("_bucket" | "_sum" | "_count") -> true
  | "histogram", _ -> false
  | _, _ -> true

let parse_openmetrics text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let out = ref [] in
  let eof = ref false in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if !err = None then
        if !eof then begin
          if line <> "" then fail lineno "content after # EOF"
        end
        else if line = "" then fail lineno "blank line"
        else if line = "# EOF" then eof := true
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          match String.index_from_opt line 7 ' ' with
          | None -> fail lineno "# HELP without text"
          | Some sp ->
              let name = String.sub line 7 (sp - 7) in
              if not (valid_metric_name name) then
                fail lineno (Printf.sprintf "# HELP for invalid name %S" name)
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.index_from_opt line 7 ' ' with
          | None -> fail lineno "# TYPE without a type"
          | Some sp ->
              let name = String.sub line 7 (sp - 7) in
              let typ = String.sub line (sp + 1) (String.length line - sp - 1) in
              if not (valid_metric_name name) then
                fail lineno (Printf.sprintf "# TYPE for invalid name %S" name)
              else if not (List.mem typ known_types) then
                fail lineno (Printf.sprintf "unknown type %S" typ)
              else if Hashtbl.mem types name then
                fail lineno (Printf.sprintf "duplicate # TYPE for %S" name)
              else Hashtbl.add types name typ
        end
        else if line.[0] = '#' then fail lineno "unrecognized comment line"
        else
          match parse_sample_line line with
          | exception Bad msg -> fail lineno msg
          | m -> (
              match family_of types m.m_name with
              | None ->
                  fail lineno
                    (Printf.sprintf "sample %S has no declared # TYPE" m.m_name)
              | Some (fam, suffix) ->
                  let typ = Hashtbl.find types fam in
                  let has_quantile = List.mem_assoc "quantile" m.m_labels in
                  if not (suffix_ok typ suffix has_quantile) then
                    fail lineno
                      (Printf.sprintf "sample %S inconsistent with type %s"
                         m.m_name typ)
                  else out := m :: !out))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      if not !eof then Error "missing # EOF terminator"
      else Ok (List.rev !out)

let metric_value metrics ?(labels = []) name =
  List.find_map
    (fun m ->
      if
        m.m_name = name
        && List.for_all
             (fun (k, v) -> List.assoc_opt k m.m_labels = Some v)
             labels
      then Some m.m_value
      else None)
    metrics

(* --- taking a sample --- *)

let write_atomic path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc text;
  close_out oc;
  Sys.rename tmp path

let heartbeat_fields s =
  let p = s.s_progress in
  let rates_obj =
    let b = Buffer.create 64 in
    Buffer.add_char b '{';
    let first = ref true in
    Array.iter
      (fun (n, r) ->
        if r > 0. then begin
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (Obs.json_string n);
          Buffer.add_char b ':';
          Buffer.add_string b (Obs.json_float r)
        end)
      s.s_rates;
    Buffer.add_char b '}';
    Buffer.contents b
  in
  let util_arr =
    "["
    ^ String.concat ","
        (Array.to_list (Array.map (fun u -> Obs.json_float u.u_ratio) s.s_util))
    ^ "]"
  in
  [
    ("phase", Obs.json_string p.phase);
    ("percent", Obs.json_float p.percent);
  ]
  @ (match p.eta_s with
    | None -> []
    | Some eta -> [ ("eta_s", Obs.json_float eta) ])
  @ [ ("rates", rates_obj); ("util", util_arr) ]

let take_sample st =
  let t_tick0 = Unix.gettimeofday () in
  let snap = Obs.snapshot () in
  let counters = Array.of_list snap.Obs.counters in
  let slots = !pool_source () in
  let prev, (pg_min, pg_maj) =
    with_lock lock (fun () -> (st.prev, st.prev_gc))
  in
  let t_rel = t_tick0 -. st.t_t0 in
  let dt = match prev with None -> t_rel | Some p -> t_rel -. p.s_time in
  let rates =
    rates_of
      ~prev:(match prev with None -> [||] | Some p -> p.s_counters)
      ~dt counters
  in
  let prev_busy slot =
    match prev with
    | None -> 0
    | Some p ->
        Array.fold_left
          (fun acc u -> if u.u_slot = slot then u.u_busy_ns else acc)
          0 p.s_util
  in
  let util =
    Array.map
      (fun ps ->
        let d_busy = Stdlib.max 0 (ps.ps_busy_ns - prev_busy ps.ps_slot) in
        let ratio =
          if dt <= 0. then 0.
          else Float.min 1. (float_of_int d_busy /. (dt *. 1e9))
        in
        {
          u_slot = ps.ps_slot;
          u_busy_ns = ps.ps_busy_ns;
          u_tasks = ps.ps_tasks;
          u_ratio = ratio;
        })
      slots
  in
  let cum_min = snap.Obs.gc.Obs.minor_words
  and cum_maj = snap.Obs.gc.Obs.major_words in
  let s =
    {
      s_time = t_rel;
      s_counters = counters;
      s_rates = rates;
      s_dists = snap.Obs.distributions;
      s_spans = snap.Obs.spans;
      s_gc_minor_delta = Float.max 0. (cum_min -. pg_min);
      s_gc_major_delta = Float.max 0. (cum_maj -. pg_maj);
      s_util = util;
      s_progress = progress ();
    }
  in
  with_lock lock (fun () ->
      st.ring.(st.head) <- Some s;
      st.head <- (st.head + 1) mod st.t_capacity;
      st.len <- Stdlib.min (st.len + 1) st.t_capacity;
      st.prev <- Some s;
      st.prev_gc <- (cum_min, cum_maj));
  (match st.t_metrics with
  | None -> ()
  | Some path -> write_atomic path (to_openmetrics s));
  if Obs.tracing () then Obs.emit_event ~ev:"heartbeat" (heartbeat_fields s);
  let cost_ns = int_of_float ((Unix.gettimeofday () -. t_tick0) *. 1e9) in
  Obs.add c_sample_ns (Stdlib.max 0 cost_ns);
  s

(* --- lifecycle --- *)

let sampler_loop st =
  let rec go () =
    match Unix.select [ st.stop_r ] [] [] st.t_interval with
    | [], _, _ ->
        ignore (take_sample st);
        go ()
    | _ :: _, _, _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let start ?(interval = 0.25) ?(capacity = 1024) ?metrics_file () =
  if capacity < 1 then invalid_arg "Telemetry.start: capacity must be >= 1";
  let fresh =
    with_lock lock @@ fun () ->
    match !current with
    | Some _ -> None (* already running: idempotent no-op *)
    | None ->
        let snap = Obs.snapshot () in
        let stop_r, stop_w = Unix.pipe () in
        let st =
          {
            t_interval = interval;
            t_capacity = capacity;
            t_metrics = metrics_file;
            t_t0 = Unix.gettimeofday ();
            ring = Array.make capacity None;
            head = 0;
            len = 0;
            prev = None;
            prev_gc =
              (snap.Obs.gc.Obs.minor_words, snap.Obs.gc.Obs.major_words);
            stop_r;
            stop_w;
            dom = None;
          }
        in
        current := Some st;
        Some st
  in
  match fresh with
  | None -> ()
  | Some st ->
      (* Interval 0 (or negative) means manual mode: no background
         domain, ticks come from [sample_now] — used by tests and the
         bench harness to make sample counts deterministic. *)
      if interval > 0. then
        st.dom <- Some (Domain.spawn (fun () -> sampler_loop st))

let sample_now () =
  match with_lock lock (fun () -> !current) with
  | None -> None
  | Some st -> Some (take_sample st)

let stop () =
  let st_opt =
    with_lock lock @@ fun () ->
    let s = !current in
    current := None;
    s
  in
  match st_opt with
  | None -> ()
  | Some st ->
      (try ignore (Unix.write st.stop_w (Bytes.of_string "x") 0 1)
       with Unix.Unix_error _ -> ());
      Option.iter Domain.join st.dom;
      st.dom <- None;
      (try Unix.close st.stop_w with Unix.Unix_error _ -> ());
      (try Unix.close st.stop_r with Unix.Unix_error _ -> ());
      (* Final forced sample, taken after the sampler domain has
         joined: the newest ring entry therefore reflects the final
         registry state (modulo obs.sample_ns, whose final-tick cost
         can only land after the tick read the counters). *)
      ignore (take_sample st);
      with_lock lock (fun () -> last_state := Some st)
