(** Value Change Dump (IEEE 1364 §18) writing and reading for scalar
    ternary signals.

    The writer streams a standard VCD document — viewable in GTKWave or
    any other waveform browser — through a caller-supplied [emit]
    function, so it works equally against a file, a [Buffer.t] or a
    socket. Only 1-bit [wire] variables are emitted (the switch-level
    simulator's nets and internal nodes are scalar and ternary), inside
    arbitrarily nested [$scope module] hierarchies.

    The reader is deliberately {e tolerant}: unknown sections and tokens
    are skipped, vector ([b...]) and real ([r...]) changes are accepted
    (vectors collapse to a scalar by numeric value — 0, 1, or [VX] for
    anything larger or partly unknown), and a
    document truncated mid-dump still yields every change seen so far.
    It exists so VCD round-trips can be tested without an external
    toolchain, and so traces from other tools can be summarized. *)

type value = V0 | V1 | VX

(** {1 Writing} *)

type writer

type var
(** Handle to one declared 1-bit variable. *)

val create : ?date:string -> ?timescale:string -> emit:(string -> unit) -> unit -> writer
(** Starts a document: emits the [$date] (omitted when empty, the
    default — keeps dumps byte-for-byte reproducible), [$version] and
    [$timescale] headers. [timescale] is written verbatim (default
    ["1 ps"]). *)

val open_scope : writer -> string -> unit
(** [$scope module name $end]. Scopes nest.
    @raise Invalid_argument after {!enddefinitions}. *)

val close_scope : writer -> unit
(** @raise Invalid_argument with no open scope or after
    {!enddefinitions}. *)

val add_var : writer -> string -> var
(** Declares a 1-bit [wire] in the currently open scope, with a
    generated short identifier code.
    @raise Invalid_argument after {!enddefinitions}. *)

val enddefinitions : writer -> unit
(** Closes the declaration section and emits a [$dumpvars] block
    initializing every declared variable to [x].
    @raise Invalid_argument with a scope still open. *)

val change : writer -> time:int -> var -> value -> unit
(** Records a value change at [time] (in timescale ticks). Emits a
    [#time] stamp whenever the time advances; changes at one instant
    share a stamp.
    @raise Invalid_argument before {!enddefinitions} or if [time] is
    less than the previous change's time. *)

val finish : writer -> time:int -> unit
(** Emits a final [#time] stamp (if beyond the last change) so the full
    horizon is visible in a viewer. The document needs no other
    terminator.
    @raise Invalid_argument before {!enddefinitions}. *)

(** {1 Reading} *)

type var_info = {
  code : string;  (** identifier code, unique per variable *)
  name : string;
  scope : string list;  (** enclosing scopes, outermost first *)
}

type change = {
  time : int;
  code : string;
  value : value;
}

type t = {
  timescale : string option;
  vars : var_info list;  (** declaration order *)
  changes : change list;  (** document order, including [$dumpvars] *)
}

val parse : string -> (t, string) result
(** Tolerant parse of a whole document (see the module preamble).
    [Error] is reserved for input with no recognizable VCD structure at
    all; truncation and foreign sections are not errors. *)

val full_name : var_info -> string
(** Scope path and name joined with ["."], e.g. ["c17.g2_nand2.n0"]. *)

val find_var : t -> string -> var_info option
(** Look up a variable by its {!full_name}. *)

val toggle_counts : t -> (string * int) list
(** Per variable (keyed by {!full_name}, in declaration order): the
    number of strict 0↔1 transitions over the change sequence. Changes
    from or to [VX] do not count, matching the simulator's
    [net_toggles] accounting. *)

val final_values : t -> (string * value) list
(** Per variable: the last recorded value ([VX] if none). *)
