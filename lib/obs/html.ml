(* Single-file HTML dashboard renderer + strict self-check parser.
   See html.mli for the contract. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&#39;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Anchor ids must survive both the id= attribute and the href=#
   reference; collapse anything outside [A-Za-z0-9._-] to '-'. *)
let anchor_id run_id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    run_id

type run_detail = {
  rd_run : string;
  rd_ledger : (string * string * float * float) list;
  rd_audit : (string * float) list;
}

let doctype = "<!DOCTYPE html>"
let eof_marker = "<!-- treorder:eof -->"
let script_open = "<script type=\"application/json\" id=\"treorder-report\">"

let style =
  "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;\
   color:#222}h1{font-size:1.5em}h2{font-size:1.15em;margin-top:1.6em}\
   table{border-collapse:collapse;margin:.5em 0}th,td{border:1px solid \
   #ccc;padding:.25em .6em;text-align:right}th{background:#f2f2f2}\
   td.name,th.name{text-align:left;font-family:monospace}code{background:\
   #f6f6f6;padding:0 .25em}svg{vertical-align:middle}section{margin-top:\
   1.5em}.up{color:#b00}.down{color:#06c}.meta{color:#666}"

(* JSON payloads embed inside <script>; a name containing </script>
   would otherwise terminate the block early. Trace.Json.parse maps
   < back to '<', so the rewrite is lossless. Angle brackets only
   occur inside JSON string literals (the serializer itself never emits
   them), so a global byte rewrite is exact. *)
let script_safe_json json =
  let b = Buffer.create (String.length json + 16) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "\\u003c"
      | '>' -> Buffer.add_string b "\\u003e"
      | c -> Buffer.add_char b c)
    json;
  Buffer.contents b

let fmt_g v = Printf.sprintf "%.6g" v

(* Inline SVG sparkline: the series scaled into a 120x24 box, shifts
   marked with circles. Coordinates rendered with %.2f — deterministic
   for identical inputs. *)
let sparkline ~key (s : History.series) =
  let values = Array.map (fun (p : History.point) -> p.p_value) s.se_points in
  let n = Array.length values in
  let w = 120. and h = 24. and pad = 2. in
  let mn = Array.fold_left min values.(0) values
  and mx = Array.fold_left max values.(0) values in
  let x i =
    if n = 1 then w /. 2.
    else pad +. (float_of_int i *. (w -. (2. *. pad)) /. float_of_int (n - 1))
  in
  let y v =
    if mx = mn then h /. 2.
    else h -. pad -. ((v -. mn) /. (mx -. mn) *. (h -. (2. *. pad)))
  in
  let b = Buffer.create 256 in
  Printf.bprintf b
    "<svg data-series=\"%s\" data-points=\"%d\" width=\"120\" \
     height=\"24\" viewBox=\"0 0 120 24\" role=\"img\">"
    (escape key) n;
  if n = 1 then
    Printf.bprintf b
      "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"2\" fill=\"#345\"/>" (x 0)
      (y values.(0))
  else begin
    Printf.bprintf b "<polyline fill=\"none\" stroke=\"#345\" \
                      stroke-width=\"1.5\" points=\"";
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ' ';
        Printf.bprintf b "%.2f,%.2f" (x i) (y v))
      values;
    Buffer.add_string b "\"/>"
  end;
  List.iter
    (fun (sh : History.shift) ->
      let i = sh.sh_index in
      Printf.bprintf b
        "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"2.5\" fill=\"%s\"/>" (x i)
        (y values.(i))
        (match sh.sh_direction with History.Up -> "#b00" | _ -> "#06c"))
    s.se_shifts;
  Buffer.add_string b "</svg>";
  Buffer.contents b

let series_key (g : History.group) (s : History.series) =
  g.g_fingerprint ^ ":" ^ s.se_metric

let render ?(title = "treorder dashboard") ?(details = []) report =
  let b = Buffer.create 8192 in
  let out s = Buffer.add_string b s in
  let line fmt = Printf.ksprintf (fun s -> out (s ^ "\n")) fmt in
  let detail_ids =
    List.map (fun d -> d.rd_run) details |> List.sort_uniq compare
  in
  let has_detail run = List.mem run detail_ids in
  line "%s" doctype;
  line "<html lang=\"en\">";
  line "<head>";
  line "<meta charset=\"utf-8\">";
  line "<title>%s</title>" (escape title);
  line "<style>%s</style>" style;
  line "</head>";
  line "<body>";
  line "<h1>%s</h1>" (escape title);
  let n_series =
    List.fold_left
      (fun acc (g : History.group) -> acc + List.length g.g_series)
      0 report.History.groups
  in
  let regs = History.regressions report in
  line
    "<p class=\"meta\">threshold %s &middot; %d group%s &middot; %d \
     series &middot; %d regression%s</p>"
    (escape (fmt_g report.History.threshold))
    (List.length report.History.groups)
    (if List.length report.History.groups = 1 then "" else "s")
    n_series (List.length regs)
    (if List.length regs = 1 then "" else "s");
  (* Ranked regressions. *)
  line "<h2>Regressions</h2>";
  if regs = [] then line "<p>none detected</p>"
  else begin
    line
      "<table id=\"regressions\"><tr><th>#</th><th \
       class=\"name\">group</th><th class=\"name\">metric</th><th>dir</th>\
       <th>before</th><th>after</th><th>score</th><th \
       class=\"name\">run</th></tr>";
    List.iteri
      (fun i (r : History.regression) ->
        let sh = r.rg_shift in
        let p = r.rg_series.se_points.(sh.sh_index) in
        let run_cell =
          if has_detail p.p_run then
            Printf.sprintf "<a href=\"#run-%s\">%s</a>"
              (anchor_id p.p_run) (escape p.p_run)
          else escape p.p_run
        in
        line
          "<tr><td>%d</td><td class=\"name\">%s</td><td \
           class=\"name\">%s</td><td class=\"%s\">%s</td><td>%s</td>\
           <td>%s</td><td>%s</td><td class=\"name\">%s</td></tr>"
          (i + 1)
          (escape r.rg_group.g_label)
          (escape r.rg_series.se_metric)
          (match sh.sh_direction with History.Up -> "up" | _ -> "down")
          (match sh.sh_direction with
          | History.Up -> "&#9650;"
          | _ -> "&#9660;")
          (escape (fmt_g sh.sh_before))
          (escape (fmt_g sh.sh_after))
          (escape (Printf.sprintf "%.1f" sh.sh_score))
          run_cell)
      regs;
    line "</table>"
  end;
  (* Series per group. *)
  List.iter
    (fun (g : History.group) ->
      line "<section class=\"group\">";
      line "<h2>%s%s <code>%s</code></h2>" (escape g.g_label)
        (match g.g_circuit with
        | Some c -> Printf.sprintf " (%s)" (escape c)
        | None -> "")
        (escape (String.sub g.g_fingerprint 0 12));
      line
        "<table><tr><th class=\"name\">metric</th><th>series</th>\
         <th>n</th><th>first</th><th>last</th><th>ewma</th><th>rate</th>\
         <th>shifts</th></tr>";
      List.iter
        (fun (s : History.series) ->
          let t = s.se_trend in
          line
            "<tr><td class=\"name\">%s</td><td>%s</td><td>%d</td>\
             <td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>"
            (escape s.se_metric)
            (sparkline ~key:(series_key g s) s)
            t.t_n
            (escape (fmt_g t.t_first))
            (escape (fmt_g t.t_last))
            (escape (fmt_g t.t_ewma))
            (escape (fmt_g t.t_rate))
            (List.length s.se_shifts))
        g.g_series;
      line "</table>";
      line "</section>")
    report.History.groups;
  (* Drill-down sections. *)
  List.iter
    (fun d ->
      line "<section class=\"run\" id=\"run-%s\">" (anchor_id d.rd_run);
      line "<h2>run %s</h2>" (escape d.rd_run);
      if d.rd_ledger <> [] then begin
        line
          "<table><tr><th class=\"name\">gate</th><th \
           class=\"name\">cell</th><th>power before</th><th>power \
           after</th></tr>";
        List.iter
          (fun (out_net, cell, before, after) ->
            line
              "<tr><td class=\"name\">%s</td><td class=\"name\">%s</td>\
               <td>%s</td><td>%s</td></tr>"
              (escape out_net) (escape cell)
              (escape (fmt_g before))
              (escape (fmt_g after)))
          d.rd_ledger;
        line "</table>"
      end;
      if d.rd_audit <> [] then begin
        line
          "<table><tr><th class=\"name\">audit metric</th><th>value</th>\
           </tr>";
        List.iter
          (fun (metric, v) ->
            line
              "<tr><td class=\"name\">%s</td><td>%s</td></tr>"
              (escape metric)
              (escape (fmt_g v)))
          d.rd_audit;
        line "</table>"
      end;
      line "</section>")
    details;
  (* Machine payload, angle-bracket-free (see script_safe_json). *)
  out script_open;
  out (script_safe_json (History.to_json report));
  line "</script>";
  line "</body>";
  line "</html>";
  line "%s" eof_marker;
  Buffer.contents b

(* --- strict self-check --- *)

type parsed = {
  pr_json : Trace.Json.t;
  pr_series : (string * int) list;
  pr_details : string list;
}

let ( let* ) = Result.bind

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let find_sub text pat from =
  let nt = String.length text and np = String.length pat in
  let rec go i =
    if i + np > nt then None
    else if String.sub text i np = pat then Some i
    else go (i + 1)
  in
  if np = 0 then None else go from

let count_sub text pat =
  let rec go from acc =
    match find_sub text pat from with
    | Some i -> go (i + String.length pat) (acc + 1)
    | None -> acc
  in
  go 0 0

(* All occurrences of attr="..." values in markup, as (offset, value). *)
let attr_values markup attr =
  let pat = attr ^ "=\"" in
  let rec go from acc =
    match find_sub markup pat from with
    | None -> List.rev acc
    | Some i -> (
        let start = i + String.length pat in
        match String.index_from_opt markup start '"' with
        | None -> List.rev acc
        | Some stop ->
            go (stop + 1)
              ((i, String.sub markup start (stop - start)) :: acc))
  in
  go 0 []

let parse_report text =
  let* () =
    if has_prefix doctype text then Ok ()
    else Error "dashboard: missing DOCTYPE at byte 0"
  in
  let* () =
    let trimmed = String.trim text in
    let nm = String.length eof_marker and nt = String.length trimmed in
    if nt >= nm && String.sub trimmed (nt - nm) nm = eof_marker then Ok ()
    else Error "dashboard: missing eof terminator (truncated write?)"
  in
  let* () =
    match count_sub text "<script" with
    | 1 -> Ok ()
    | n -> Error (Printf.sprintf "dashboard: %d <script blocks, want 1" n)
  in
  let* payload_start =
    match find_sub text script_open 0 with
    | Some i -> Ok (i + String.length script_open)
    | None -> Error "dashboard: payload script block missing or malformed"
  in
  let* payload_stop =
    match find_sub text "</script>" payload_start with
    | Some i -> Ok i
    | None -> Error "dashboard: unterminated payload script block"
  in
  let payload = String.sub text payload_start (payload_stop - payload_start) in
  let* () =
    if String.contains payload '<' || String.contains payload '>' then
      Error "dashboard: raw angle bracket inside JSON payload"
    else Ok ()
  in
  let* json =
    Result.map_error
      (fun msg -> "dashboard: payload does not parse: " ^ msg)
      (Trace.Json.parse payload)
  in
  let* () =
    match
      Option.bind (Trace.Json.member "history_version" json)
        Trace.Json.to_float
    with
    | Some 1. -> Ok ()
    | Some v ->
        Error (Printf.sprintf "dashboard: history_version %g, want 1" v)
    | None -> Error "dashboard: payload missing history_version"
  in
  (* Splice the payload out; the remaining markup must be inert. *)
  let markup =
    String.sub text 0 payload_start
    ^ String.sub text payload_stop (String.length text - payload_stop)
  in
  let* () =
    match find_sub markup " src=\"" 0 with
    | Some _ -> Error "dashboard: external src= attribute in markup"
    | None -> Ok ()
  in
  let* () =
    let bad =
      List.filter
        (fun (_, v) -> not (has_prefix "#" v))
        (attr_values markup "href")
    in
    match bad with
    | [] -> Ok ()
    | (_, v) :: _ ->
        Error (Printf.sprintf "dashboard: non-anchor href %S" v)
  in
  (* Sparkline inventory from the markup... *)
  let svg_series =
    List.filter_map
      (fun (off, key) ->
        (* the matching data-points lives in the same svg tag *)
        match find_sub markup "data-points=\"" off with
        | None -> None
        | Some i -> (
            let start = i + String.length "data-points=\"" in
            match String.index_from_opt markup start '"' with
            | None -> None
            | Some stop -> (
                match
                  int_of_string_opt (String.sub markup start (stop - start))
                with
                | Some n -> Some (key, n)
                | None -> None)))
      (attr_values markup "data-series")
    |> List.sort compare
  in
  (* ... must match the payload's series exactly. *)
  let* payload_series =
    let to_list = function Some (Trace.Json.Arr l) -> l | _ -> [] in
    let groups = to_list (Trace.Json.member "groups" json) in
    let series =
      List.concat_map
        (fun g ->
          let fp =
            Option.bind (Trace.Json.member "fingerprint" g)
              Trace.Json.to_string
          in
          List.filter_map
            (fun s ->
              match
                ( fp,
                  Option.bind (Trace.Json.member "metric" s)
                    Trace.Json.to_string )
              with
              | Some fp, Some metric ->
                  Some
                    ( fp ^ ":" ^ metric,
                      List.length (to_list (Trace.Json.member "points" s))
                    )
              | _ -> None)
            (to_list (Trace.Json.member "series" g)))
        groups
    in
    Ok (List.sort compare series)
  in
  let* () =
    if svg_series = payload_series then Ok ()
    else
      let key = function (k, _) :: _ -> k | [] -> "(none)" in
      let missing =
        List.filter (fun kv -> not (List.mem kv svg_series)) payload_series
      and spurious =
        List.filter (fun kv -> not (List.mem kv payload_series)) svg_series
      in
      Error
        (Printf.sprintf
           "dashboard: sparkline/payload series mismatch (missing %s, \
            spurious %s)"
           (key missing) (key spurious))
  in
  (* Every regression run link must resolve to a drill-down section. *)
  let section_ids =
    List.filter_map
      (fun (_, v) -> if has_prefix "run-" v then Some v else None)
      (attr_values markup "id")
    |> List.sort_uniq compare
  in
  let* () =
    let unresolved =
      List.filter
        (fun (_, v) ->
          has_prefix "#run-" v
          && not
               (List.mem (String.sub v 1 (String.length v - 1)) section_ids))
        (attr_values markup "href")
    in
    match unresolved with
    | [] -> Ok ()
    | (_, v) :: _ ->
        Error (Printf.sprintf "dashboard: dangling run link %S" v)
  in
  Ok { pr_json = json; pr_series = svg_series; pr_details = section_ids }
