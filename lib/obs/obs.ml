type counter = { c_name : string; mutable c_value : int }

type distribution = {
  d_name : string;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
  (* Every observed value, kept so snapshots can report true quantiles.
     Distributions are sampled at per-gate granularity (not in the
     per-transistor hot loops), so the buffer stays small. *)
  mutable d_samples : float array;
  mutable d_len : int;
}

type span_agg = {
  s_name : string;
  mutable s_calls : int;
  mutable s_total : float;
  mutable s_slowest : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let distributions : (string, distribution) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add counters name c;
      c

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Obs.add: negative delta";
  c.c_value <- c.c_value + n

let value c = c.c_value

let distribution name =
  match Hashtbl.find_opt distributions name with
  | Some d -> d
  | None ->
      let d =
        {
          d_name = name;
          d_count = 0;
          d_sum = 0.;
          d_min = 0.;
          d_max = 0.;
          d_samples = [||];
          d_len = 0;
        }
      in
      Hashtbl.add distributions name d;
      d

let observe d x =
  if d.d_count = 0 then begin
    d.d_min <- x;
    d.d_max <- x
  end
  else begin
    if x < d.d_min then d.d_min <- x;
    if x > d.d_max then d.d_max <- x
  end;
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum +. x;
  let cap = Array.length d.d_samples in
  if d.d_len = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) 0. in
    Array.blit d.d_samples 0 grown 0 cap;
    d.d_samples <- grown
  end;
  d.d_samples.(d.d_len) <- x;
  d.d_len <- d.d_len + 1

(* Nearest-rank quantile over the recorded samples: the smallest value
   such that at least [q·count] samples are <= it. *)
let quantile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)))

let span_agg name =
  match Hashtbl.find_opt spans name with
  | Some s -> s
  | None ->
      let s = { s_name = name; s_calls = 0; s_total = 0.; s_slowest = 0. } in
      Hashtbl.add spans name s;
      s

(* --- trace sink --- *)

let now = Unix.gettimeofday

type sink = Null | File of { oc : out_channel; t0 : float }

let current_sink = ref Null
let null_sink = Null
let file_sink path = File { oc = open_out path; t0 = now () }
let tracing () = match !current_sink with Null -> false | File _ -> true

(* JSON string literal with the escapes NDJSON consumers require. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Finite decimal rendering (JSON has no inf/nan). *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "0"

let emit_span_begin name d =
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      Printf.fprintf oc "{\"ev\":\"span_begin\",\"name\":%s,\"t\":%s,\"depth\":%d}\n"
        (json_string name)
        (json_float (now () -. t0))
        d

let emit_span_end name d dt =
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      Printf.fprintf oc
        "{\"ev\":\"span_end\",\"name\":%s,\"t\":%s,\"depth\":%d,\"dt\":%s}\n"
        (json_string name)
        (json_float (now () -. t0))
        d (json_float dt)

let emit_counter c =
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      Printf.fprintf oc "{\"ev\":\"counter\",\"name\":%s,\"t\":%s,\"value\":%d}\n"
        (json_string c.c_name)
        (json_float (now () -. t0))
        c.c_value

let sample c = emit_counter c

let set_sink s =
  (match !current_sink with
  | File { oc; _ } -> close_out oc
  | Null -> ());
  current_sink := s

let sorted_names tbl =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) tbl [])

let close_sink () =
  match !current_sink with
  | Null -> ()
  | File { oc; _ } ->
      List.iter
        (fun name -> emit_counter (Hashtbl.find counters name))
        (sorted_names counters);
      current_sink := Null;
      close_out oc

(* --- spans --- *)

let depth_ref = ref 0
let depth () = !depth_ref

let span name f =
  let s = span_agg name in
  let d = !depth_ref in
  emit_span_begin name d;
  depth_ref := d + 1;
  let t_start = now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = now () -. t_start in
      depth_ref := d;
      s.s_calls <- s.s_calls + 1;
      s.s_total <- s.s_total +. dt;
      if dt > s.s_slowest then s.s_slowest <- dt;
      emit_span_end name d dt)
    f

(* --- snapshots --- *)

type dist_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type span_stats = { calls : int; total : float; slowest : float }
type gc_stats = { minor_words : float; major_words : float }

(* GC words are reported relative to the last [reset], so a snapshot
   describes the allocation of one measured operation, matching the
   counter/span semantics. *)
let gc_base = ref (0., 0.)

let gc_words () =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words, s.Gc.major_words)

let () = gc_base := gc_words ()

type snapshot = {
  counters : (string * int) list;
  distributions : (string * dist_stats) list;
  spans : (string * span_stats) list;
  gc : gc_stats;
}

let snapshot () =
  let minor_now, major_now = gc_words () in
  let minor_base, major_base = !gc_base in
  {
    counters =
      List.map
        (fun name -> (name, (Hashtbl.find counters name).c_value))
        (sorted_names counters);
    distributions =
      List.map
        (fun name ->
          let d = Hashtbl.find distributions name in
          let sorted = Array.sub d.d_samples 0 d.d_len in
          Array.sort compare sorted;
          ( name,
            {
              count = d.d_count;
              sum = d.d_sum;
              min = d.d_min;
              max = d.d_max;
              p50 = quantile_of_sorted sorted 0.50;
              p90 = quantile_of_sorted sorted 0.90;
              p99 = quantile_of_sorted sorted 0.99;
            } ))
        (sorted_names distributions);
    spans =
      List.map
        (fun name ->
          let s = Hashtbl.find spans name in
          (name, { calls = s.s_calls; total = s.s_total; slowest = s.s_slowest }))
        (sorted_names spans);
    gc =
      {
        minor_words = minor_now -. minor_base;
        major_words = major_now -. major_base;
      };
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ d ->
      d.d_count <- 0;
      d.d_sum <- 0.;
      d.d_min <- 0.;
      d.d_max <- 0.;
      d.d_samples <- [||];
      d.d_len <- 0)
    distributions;
  Hashtbl.iter
    (fun _ s ->
      s.s_calls <- 0;
      s.s_total <- 0.;
      s.s_slowest <- 0.)
    spans;
  depth_ref := 0;
  gc_base := gc_words ()

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let snapshot_to_json snap =
  let b = Buffer.create 1024 in
  let obj fields render =
    Buffer.add_char b '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (json_string name);
        Buffer.add_char b ':';
        render v)
      fields;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  obj snap.counters (fun v -> Buffer.add_string b (string_of_int v));
  Buffer.add_string b ",\"distributions\":";
  obj snap.distributions (fun (d : dist_stats) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
           d.count (json_float d.sum) (json_float d.min) (json_float d.max)
           (json_float d.p50) (json_float d.p90) (json_float d.p99)));
  Buffer.add_string b ",\"spans\":";
  obj snap.spans (fun (s : span_stats) ->
      Buffer.add_string b
        (Printf.sprintf "{\"calls\":%d,\"total_s\":%s,\"slowest_s\":%s}" s.calls
           (json_float s.total) (json_float s.slowest)));
  Buffer.add_string b
    (Printf.sprintf ",\"gc\":{\"minor_words\":%s,\"major_words\":%s}"
       (json_float snap.gc.minor_words)
       (json_float snap.gc.major_words));
  Buffer.add_char b '}';
  Buffer.contents b
