(* Domain-safety: counters are Atomic ints (increments commute, so the
   totals under a parallel run equal the sequential totals exactly);
   distributions and span aggregates take a per-instrument mutex; the
   registry tables and the trace sink take their own locks; the span
   nesting depth is domain-local storage so worker spans nest
   independently of the coordinator's. *)

type counter = { c_name : string; c_value : int Atomic.t }

type distribution = {
  d_name : string;
  d_lock : Mutex.t;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
  (* Every observed value, kept so snapshots can report true quantiles.
     Distributions are sampled at per-gate granularity (not in the
     per-transistor hot loops), so the buffer stays small. *)
  mutable d_samples : float array;
  mutable d_len : int;
}

type span_agg = {
  s_name : string;
  s_lock : Mutex.t;
  mutable s_calls : int;
  mutable s_total : float;
  mutable s_slowest : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let distributions : (string, distribution) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 16

(* Guards the three registry tables (instrument creation can race when
   worker domains force a module's initialization). *)
let registry_lock = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter name =
  with_lock registry_lock @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs.add: negative delta";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

let distribution name =
  with_lock registry_lock @@ fun () ->
  match Hashtbl.find_opt distributions name with
  | Some d -> d
  | None ->
      let d =
        {
          d_name = name;
          d_lock = Mutex.create ();
          d_count = 0;
          d_sum = 0.;
          d_min = 0.;
          d_max = 0.;
          d_samples = [||];
          d_len = 0;
        }
      in
      Hashtbl.add distributions name d;
      d

(* Caller holds [d.d_lock]. *)
let observe_locked d x =
  if d.d_count = 0 then begin
    d.d_min <- x;
    d.d_max <- x
  end
  else begin
    if x < d.d_min then d.d_min <- x;
    if x > d.d_max then d.d_max <- x
  end;
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum +. x;
  let cap = Array.length d.d_samples in
  if d.d_len = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) 0. in
    Array.blit d.d_samples 0 grown 0 cap;
    d.d_samples <- grown
  end;
  d.d_samples.(d.d_len) <- x;
  d.d_len <- d.d_len + 1

let observe d x = with_lock d.d_lock (fun () -> observe_locked d x)

(* --- per-domain sample buffers --- *)

type buffer = { mutable b_samples : float array; mutable b_len : int }

let buffer () = { b_samples = [||]; b_len = 0 }

let record b x =
  let cap = Array.length b.b_samples in
  if b.b_len = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) 0. in
    Array.blit b.b_samples 0 grown 0 cap;
    b.b_samples <- grown
  end;
  b.b_samples.(b.b_len) <- x;
  b.b_len <- b.b_len + 1

let buffer_length b = b.b_len

let merge d b =
  with_lock d.d_lock @@ fun () ->
  for i = 0 to b.b_len - 1 do
    observe_locked d b.b_samples.(i)
  done

(* Nearest-rank quantile over the recorded samples: the smallest value
   such that at least [q·count] samples are <= it. *)
let quantile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)))

let span_agg name =
  with_lock registry_lock @@ fun () ->
  match Hashtbl.find_opt spans name with
  | Some s -> s
  | None ->
      let s =
        {
          s_name = name;
          s_lock = Mutex.create ();
          s_calls = 0;
          s_total = 0.;
          s_slowest = 0.;
        }
      in
      Hashtbl.add spans name s;
      s

(* --- trace sink --- *)

let now = Unix.gettimeofday

type sink = Null | File of { oc : out_channel; t0 : float }

(* Guards both the installed-sink reference and writes through it, so
   events from concurrent domains land as whole lines. *)
let sink_lock = Mutex.create ()
let current_sink = ref Null
let null_sink = Null
let file_sink path = File { oc = open_out path; t0 = now () }

let tracing () =
  with_lock sink_lock @@ fun () ->
  match !current_sink with Null -> false | File _ -> true

(* JSON string literal with the escapes NDJSON consumers require. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Finite decimal rendering (JSON has no inf/nan). *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "0"

(* Trace lane per domain: lane 0 is the domain that loaded this module
   (the coordinator), workers claim the next free lane on their first
   event. Domain ids themselves are not reused-stable across pools, so
   lanes — dense, first-event-ordered — make nicer Chrome tracks. *)
let lane_next = Atomic.make 0
let lane_key = Domain.DLS.new_key (fun () -> ref (-1))

let domain_lane () =
  let r = Domain.DLS.get lane_key in
  if !r < 0 then r := Atomic.fetch_and_add lane_next 1;
  !r

let () = ignore (domain_lane ())

let emit_span_begin name d =
  let dom = domain_lane () in
  with_lock sink_lock @@ fun () ->
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      Printf.fprintf oc
        "{\"ev\":\"span_begin\",\"name\":%s,\"t\":%s,\"depth\":%d,\"dom\":%d}\n"
        (json_string name)
        (json_float (now () -. t0))
        d dom

let emit_span_end name d dt =
  let dom = domain_lane () in
  with_lock sink_lock @@ fun () ->
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      Printf.fprintf oc
        "{\"ev\":\"span_end\",\"name\":%s,\"t\":%s,\"depth\":%d,\"dt\":%s,\"dom\":%d}\n"
        (json_string name)
        (json_float (now () -. t0))
        d (json_float dt) dom

let emit_counter_locked c =
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      Printf.fprintf oc
        "{\"ev\":\"counter\",\"name\":%s,\"t\":%s,\"value\":%d,\"dom\":%d}\n"
        (json_string c.c_name)
        (json_float (now () -. t0))
        (Atomic.get c.c_value)
        (domain_lane ())

let sample c = with_lock sink_lock (fun () -> emit_counter_locked c)

(* Custom event: the fields are pre-rendered JSON fragments, so the
   caller controls nesting (objects, arrays) without this module
   growing a JSON AST. Flushed eagerly — heartbeats are emitted a few
   times per second and must be visible to a live [treorder top]
   tailing the file. *)
let emit_event ~ev fields =
  let dom = domain_lane () in
  with_lock sink_lock @@ fun () ->
  match !current_sink with
  | Null -> ()
  | File { oc; t0 } ->
      let b = Buffer.create 128 in
      Buffer.add_string b "{\"ev\":";
      Buffer.add_string b (json_string ev);
      Buffer.add_string b ",\"t\":";
      Buffer.add_string b (json_float (now () -. t0));
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ',';
          Buffer.add_string b (json_string k);
          Buffer.add_char b ':';
          Buffer.add_string b v)
        fields;
      Buffer.add_string b (Printf.sprintf ",\"dom\":%d}\n" dom);
      output_string oc (Buffer.contents b);
      flush oc

let set_sink s =
  with_lock sink_lock @@ fun () ->
  (match !current_sink with
  | File { oc; _ } -> close_out oc
  | Null -> ());
  current_sink := s

(* Name-sorted instrument list under a single registry-lock
   acquisition. Readers that iterate the registry (snapshots, the
   telemetry sampler tick, the final counter flush) get a coherent view
   of the name set instead of interleaving one lock round-trip per
   instrument with concurrent registrations. *)
let registered tbl =
  with_lock registry_lock @@ fun () ->
  List.sort
    (fun (a, _) (b, _) -> compare (a : string) b)
    (Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [])

let close_sink () =
  let regs = registered counters in
  with_lock sink_lock @@ fun () ->
  match !current_sink with
  | Null -> ()
  | File { oc; _ } ->
      List.iter (fun (_, c) -> emit_counter_locked c) regs;
      current_sink := Null;
      close_out oc

(* [Stdlib.exit] (e.g. a Cmdliner usage error after [--trace FILE]
   already opened the sink) does not unwind [Fun.protect] finalizers,
   but it does run [at_exit] — so a sink left open by an early exit is
   still flushed and closed rather than truncated mid-line. *)
let () = at_exit close_sink

(* --- spans --- *)

(* Nesting depth is per domain: a worker task's spans nest relative to
   that worker, not to whatever the coordinator is timing. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let depth () = !(Domain.DLS.get depth_key)

let span name f =
  let s = span_agg name in
  let depth_ref = Domain.DLS.get depth_key in
  let d = !depth_ref in
  emit_span_begin name d;
  depth_ref := d + 1;
  let t_start = now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = now () -. t_start in
      depth_ref := d;
      with_lock s.s_lock (fun () ->
          s.s_calls <- s.s_calls + 1;
          s.s_total <- s.s_total +. dt;
          if dt > s.s_slowest then s.s_slowest <- dt);
      emit_span_end name d dt)
    f

(* --- snapshots --- *)

type dist_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type span_stats = { calls : int; total : float; slowest : float }
type gc_stats = { minor_words : float; major_words : float }

(* GC words are reported relative to the last [reset], so a snapshot
   describes the allocation of one measured operation, matching the
   counter/span semantics. Only the snapshotting domain's heap is
   visible here. *)
let gc_base = ref (0., 0.)

let gc_words () =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words, s.Gc.major_words)

let () = gc_base := gc_words ()

type snapshot = {
  counters : (string * int) list;
  distributions : (string * dist_stats) list;
  spans : (string * span_stats) list;
  gc : gc_stats;
}

let read_counters () =
  Array.of_list
    (List.map (fun (name, c) -> (name, Atomic.get c.c_value)) (registered counters))

let snapshot () =
  let minor_now, major_now = gc_words () in
  let minor_base, major_base = !gc_base in
  {
    counters =
      List.map
        (fun (name, c) -> (name, Atomic.get c.c_value))
        (registered counters);
    distributions =
      List.map
        (fun (name, d) ->
          with_lock d.d_lock @@ fun () ->
          let sorted = Array.sub d.d_samples 0 d.d_len in
          Array.sort compare sorted;
          ( name,
            {
              count = d.d_count;
              sum = d.d_sum;
              min = d.d_min;
              max = d.d_max;
              p50 = quantile_of_sorted sorted 0.50;
              p90 = quantile_of_sorted sorted 0.90;
              p99 = quantile_of_sorted sorted 0.99;
            } ))
        (registered distributions);
    spans =
      List.map
        (fun (name, s) ->
          with_lock s.s_lock @@ fun () ->
          (name, { calls = s.s_calls; total = s.s_total; slowest = s.s_slowest }))
        (registered spans);
    gc =
      {
        minor_words = minor_now -. minor_base;
        major_words = major_now -. major_base;
      };
  }

let reset () =
  List.iter
    (fun (_, c) -> Atomic.set c.c_value 0)
    (registered counters);
  List.iter
    (fun (_, d) ->
      with_lock d.d_lock @@ fun () ->
      d.d_count <- 0;
      d.d_sum <- 0.;
      d.d_min <- 0.;
      d.d_max <- 0.;
      d.d_samples <- [||];
      d.d_len <- 0)
    (registered distributions);
  List.iter
    (fun (_, s) ->
      with_lock s.s_lock @@ fun () ->
      s.s_calls <- 0;
      s.s_total <- 0.;
      s.s_slowest <- 0.)
    (registered spans);
  Domain.DLS.get depth_key := 0;
  gc_base := gc_words ()

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let snapshot_to_json snap =
  let b = Buffer.create 1024 in
  let obj fields render =
    Buffer.add_char b '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (json_string name);
        Buffer.add_char b ':';
        render v)
      fields;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  obj snap.counters (fun v -> Buffer.add_string b (string_of_int v));
  Buffer.add_string b ",\"distributions\":";
  obj snap.distributions (fun (d : dist_stats) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
           d.count (json_float d.sum) (json_float d.min) (json_float d.max)
           (json_float d.p50) (json_float d.p90) (json_float d.p99)));
  Buffer.add_string b ",\"spans\":";
  obj snap.spans (fun (s : span_stats) ->
      Buffer.add_string b
        (Printf.sprintf "{\"calls\":%d,\"total_s\":%s,\"slowest_s\":%s}" s.calls
           (json_float s.total) (json_float s.slowest)));
  Buffer.add_string b
    (Printf.sprintf ",\"gc\":{\"minor_words\":%s,\"major_words\":%s}"
       (json_float snap.gc.minor_words)
       (json_float snap.gc.major_words));
  Buffer.add_char b '}';
  Buffer.contents b
