(* Fleet history analytics: extract per-run metric values out of Runlog
   archives (and the bench NDJSON history), align them into
   like-for-like series, and run a deterministic changepoint detector.
   See history.mli for the model. *)

let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "0"
let esc = Trace.Json.escape

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

(* Mirrors the (non-exported) list the Runlog diff engine watches. *)
let audit_metrics =
  [
    "mean_density_err_pct"; "max_density_err_pct"; "mean_prob_err";
    "max_prob_err"; "model_total"; "sim_total"; "total_err_pct";
  ]

(* --- records --- *)

type record = {
  r_id : string;
  r_source : string;
  r_label : string;
  r_circuit : string option;
  r_time : float;
  r_argv : string list;
  r_fingerprint : string;
  r_metrics : (string * float) list;
}

let series_fingerprint (m : Runlog.manifest) =
  let b = Buffer.create 256 in
  Buffer.add_string b m.subcommand;
  Buffer.add_char b '\x00';
  List.iter
    (fun (k, v) ->
      if k <> "jobs" then begin
        Buffer.add_string b k;
        Buffer.add_char b '\x01';
        Buffer.add_string b v;
        Buffer.add_char b '\x00'
      end)
    (List.sort compare m.params);
  List.iter
    (fun sha ->
      Buffer.add_string b sha;
      Buffer.add_char b '\x00')
    (List.sort compare (List.map snd m.inputs));
  Runlog.sha256_hex (Buffer.contents b)

(* Flat metric map of one parsed snapshot.json document: counters
   verbatim, dist.<name>.<stat>, span.<name>, memo hit rate. *)
let metrics_of_snapshot json =
  let acc = ref [] in
  let put name v = acc := (name, v) :: !acc in
  let counters = Runlog.counters_of_snapshot json in
  List.iter (fun (name, v) -> put name v) counters;
  (match Trace.Json.member "distributions" json with
  | Some (Trace.Json.Obj dists) ->
      List.iter
        (fun (name, d) ->
          let stat key =
            Option.bind (Trace.Json.member key d) Trace.Json.to_float
          in
          let emit key = function
            | Some v -> put (Printf.sprintf "dist.%s.%s" name key) v
            | None -> ()
          in
          emit "count" (stat "count");
          emit "min" (stat "min");
          emit "max" (stat "max");
          emit "p50" (stat "p50");
          emit "p90" (stat "p90");
          emit "p99" (stat "p99");
          match (stat "count", stat "sum") with
          | Some n, Some s when n > 0. ->
              put (Printf.sprintf "dist.%s.mean" name) (s /. n)
          | _ -> ())
        dists
  | _ -> ());
  List.iter
    (fun (name, total_s) -> put ("span." ^ name) total_s)
    (Runlog.spans_of_snapshot json);
  (match
     ( List.assoc_opt "optimizer.memo_hits" counters,
       List.assoc_opt "optimizer.memo_misses" counters )
   with
  | Some h, Some m when h +. m > 0. ->
      put "memo.hit_rate_pct" (100. *. h /. (h +. m))
  | _ -> ());
  !acc

let record_of_run (run : Runlog.run) =
  let m = run.manifest in
  let acc = ref [ ("wall_s", m.finished -. m.started) ] in
  let put name v = acc := (name, v) :: !acc in
  (match Runlog.read_attachment run "snapshot" with
  | Ok json -> List.iter (fun (n, v) -> put n v) (metrics_of_snapshot json)
  | Error _ -> ());
  (if List.mem "ledger" m.attachments then
     match
       Result.bind
         (Runlog.read_attachment run "ledger")
         Runlog.ledger_of_json
     with
     | Ok l ->
         put "ledger.total_before" l.l_total_before;
         put "ledger.total_after" l.l_total_after;
         if l.l_total_before <> 0. then
           put "ledger.reduction_pct"
             (100. *. (l.l_total_before -. l.l_total_after)
             /. l.l_total_before)
     | Error _ -> ());
  (if List.mem "audit" m.attachments then
     match Runlog.read_attachment run "audit" with
     | Ok json -> (
         match Trace.Json.member "summary" json with
         | Some summary ->
             List.iter
               (fun metric ->
                 match
                   Option.bind
                     (Trace.Json.member metric summary)
                     Trace.Json.to_float
                 with
                 | Some v -> put ("audit." ^ metric) v
                 | None -> ())
               audit_metrics
         | None -> ())
     | Error _ -> ());
  {
    r_id = run.run_id;
    r_source = run.run_dir;
    r_label = m.subcommand;
    r_circuit = List.assoc_opt "circuit" m.params;
    r_time = m.started;
    r_argv = m.argv;
    r_fingerprint = series_fingerprint m;
    r_metrics = List.sort compare !acc;
  }

let load_archive root =
  Result.map (List.map record_of_run) (Runlog.scan root)

(* --- bench history --- *)

let bench_record ~source json =
  let str key = Option.bind (Trace.Json.member key json) Trace.Json.to_string
  and num key = Option.bind (Trace.Json.member key json) Trace.Json.to_float in
  match (str "target", num "seconds") with
  | Some target, Some seconds ->
      let metrics =
        match Trace.Json.member "metrics" json with
        | Some snap -> metrics_of_snapshot snap
        | None -> []
      in
      let argv =
        match Trace.Json.member "argv" json with
        | Some (Trace.Json.Arr items) ->
            List.filter_map Trace.Json.to_string items
        | _ -> []
      in
      Some
        {
          r_id = target;
          r_source = source;
          r_label = "bench:" ^ target;
          r_circuit = None;
          r_time = Option.value (num "time") ~default:0.;
          r_argv = argv;
          r_fingerprint = Runlog.sha256_hex ("bench:" ^ target);
          r_metrics =
            List.sort compare (("wall_s", seconds) :: metrics);
        }
  | _ -> None

let load_bench_history path =
  match read_file path with
  | Error msg -> Error msg
  | Ok text ->
      let skipped = ref 0 in
      let records =
        String.split_on_char '\n' text
        |> List.filter_map (fun line ->
               let line = String.trim line in
               if line = "" then None
               else
                 match Trace.Json.parse line with
                 | Ok json -> (
                     match bench_record ~source:path json with
                     | Some r -> Some r
                     | None ->
                         incr skipped;
                         None)
                 | Error _ ->
                     incr skipped;
                     None)
      in
      let records =
        List.stable_sort
          (fun a b -> compare (a.r_time, a.r_id) (b.r_time, b.r_id))
          records
      in
      Ok (records, !skipped)

(* --- trends --- *)

type trend = {
  t_n : int;
  t_first : float;
  t_last : float;
  t_min : float;
  t_max : float;
  t_mean : float;
  t_rate : float;
  t_ewma : float;
}

let trend ?(alpha = 0.3) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "History.trend: empty series";
  let mn = ref xs.(0) and mx = ref xs.(0) and sum = ref 0. in
  let ewma = ref xs.(0) in
  Array.iteri
    (fun i x ->
      if x < !mn then mn := x;
      if x > !mx then mx := x;
      sum := !sum +. x;
      if i > 0 then ewma := (alpha *. x) +. ((1. -. alpha) *. !ewma))
    xs;
  {
    t_n = n;
    t_first = xs.(0);
    t_last = xs.(n - 1);
    t_min = !mn;
    t_max = !mx;
    t_mean = !sum /. float_of_int n;
    t_rate =
      (if n < 2 then 0.
       else (xs.(n - 1) -. xs.(0)) /. float_of_int (n - 1));
    t_ewma = !ewma;
  }

(* --- changepoints --- *)

type direction = Up | Down
type shift = {
  sh_index : int;
  sh_before : float;
  sh_after : float;
  sh_score : float;
  sh_direction : direction;
}

let mean_slice xs lo hi =
  (* inclusive bounds; hi >= lo *)
  let sum = ref 0. in
  for i = lo to hi do
    sum := !sum +. xs.(i)
  done;
  !sum /. float_of_int (hi - lo + 1)

(* Standardized two-sided mean-shift statistic for splitting [lo..hi]
   at t (t is the first point of the candidate new regime):

     |mean(right) - mean(left)| * sqrt(n1 n2 / (n1 + n2)) / sigma

   — the maximized-CUSUM form of binary segmentation. The sqrt factor
   makes the score comparable across split positions, so a genuine
   step scores far above an off-center split of the same segment. *)
let split_score xs lo hi ~sigma t =
  let n1 = t - lo and n2 = hi - t + 1 in
  let m1 = mean_slice xs lo (t - 1) and m2 = mean_slice xs t hi in
  Float.abs (m2 -. m1)
  *. sqrt (float_of_int n1 *. float_of_int n2 /. float_of_int (n1 + n2))
  /. sigma

let detect ?(threshold = 5.0) xs =
  let n = Array.length xs in
  if n < 4 then []
  else begin
    let diffs = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
    let zeros =
      Array.fold_left (fun a d -> if d = 0. then a + 1 else a) 0 diffs
    in
    let raw =
      if 2 * zeros >= Array.length diffs then
        (* Piecewise-constant series (deterministic counters): every
           change of value is an exact changepoint. *)
        List.concat
          (List.init (n - 1) (fun i ->
               if diffs.(i) = 0. then []
               else
                 [
                   ( i + 1,
                     (if diffs.(i) > 0. then Up else Down),
                     2. *. threshold );
                 ]))
      else begin
        let abs_sorted = Array.map Float.abs diffs in
        Array.sort compare abs_sorted;
        let median = abs_sorted.(Array.length abs_sorted / 2) in
        let sigma = 1.4826 *. median /. sqrt 2. in
        if sigma <= 0. then []
        else begin
          let out = ref [] in
          let rec segment lo hi =
            if hi - lo + 1 >= 4 then begin
              let best_t = ref lo and best = ref 0. in
              for t = lo + 1 to hi do
                let s = split_score xs lo hi ~sigma t in
                (* strict >: ties resolve to the earliest split *)
                if s > !best then begin
                  best := s;
                  best_t := t
                end
              done;
              if !best > threshold && !best_t > lo then begin
                let cp = !best_t in
                let dir =
                  if mean_slice xs cp hi > mean_slice xs lo (cp - 1) then Up
                  else Down
                in
                out := (cp, dir, !best) :: !out;
                segment lo (cp - 1);
                segment cp hi
              end
            end
          in
          segment 0 (n - 1);
          !out
        end
      end
    in
    let raw = List.sort_uniq compare raw in
    (* Regime means bounded by the neighbouring changepoints. *)
    let indices = List.map (fun (cp, _, _) -> cp) raw in
    List.map
      (fun (cp, dir, score) ->
        let prev =
          List.fold_left (fun a i -> if i < cp then max a i else a) 0 indices
        in
        let next =
          List.fold_left
            (fun a i -> if i > cp then min a i else a)
            n indices
        in
        {
          sh_index = cp;
          sh_before = mean_slice xs prev (cp - 1);
          sh_after = mean_slice xs cp (next - 1);
          sh_score = score;
          sh_direction = dir;
        })
      raw
  end

(* --- orientation --- *)

type orientation = Higher_worse | Lower_worse | Neutral

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn > 0 && go 0

let has_prefix p s =
  String.length s >= String.length p
  && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let ns = String.length s and nf = String.length suf in
  ns >= nf && String.sub s (ns - nf) nf = suf

let orientation name =
  if
    contains name "hit_rate" || contains name "reduction"
    || contains name "speedup"
    (* progress only regresses by stalling/resetting downward *)
    || has_prefix "heartbeat." name
  then Lower_worse
  else if
    name = "wall_s" || has_suffix "_ns" name || has_prefix "span." name
    || contains name "err" || contains name "time"
    || has_prefix "ledger.total" name
    || contains name "power"
  then Higher_worse
  else Neutral

(* --- reports --- *)

type point = {
  p_run : string;
  p_time : float;
  p_argv : string list;
  p_source : string;
  p_value : float;
}

type series = {
  se_metric : string;
  se_points : point array;
  se_trend : trend;
  se_shifts : shift list;
}

type group = {
  g_label : string;
  g_fingerprint : string;
  g_circuit : string option;
  g_series : series list;
}

type report = {
  groups : group list;
  threshold : float;
  requested : string list;
}

let default_metrics =
  [
    "wall_s"; "ledger.total_before"; "ledger.total_after";
    "ledger.reduction_pct"; "audit.mean_density_err_pct";
    "memo.hit_rate_pct";
  ]

let build ?(metrics = default_metrics) ?(threshold = 5.0) records =
  let requested = List.sort_uniq compare metrics in
  let tbl : (string * string, record list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let keys = ref [] in
  List.iter
    (fun r ->
      let key = (r.r_label, r.r_fingerprint) in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := r :: !cell
      | None ->
          Hashtbl.add tbl key (ref [ r ]);
          keys := key :: !keys)
    records;
  let groups =
    List.sort compare !keys
    |> List.map (fun ((label, fingerprint) as key) ->
           let members =
             List.stable_sort
               (fun a b -> compare (a.r_time, a.r_id) (b.r_time, b.r_id))
               (List.rev !(Hashtbl.find tbl key))
           in
           let circuit =
             List.fold_left
               (fun acc r ->
                 match acc with Some _ -> acc | None -> r.r_circuit)
               None members
           in
           let series =
             List.filter_map
               (fun metric ->
                 let points =
                   List.filter_map
                     (fun r ->
                       match List.assoc_opt metric r.r_metrics with
                       | Some v ->
                           Some
                             {
                               p_run = r.r_id;
                               p_time = r.r_time;
                               p_argv = r.r_argv;
                               p_source = r.r_source;
                               p_value = v;
                             }
                       | None -> None)
                     members
                 in
                 match points with
                 | [] -> None
                 | _ ->
                     let points = Array.of_list points in
                     let values =
                       Array.map (fun p -> p.p_value) points
                     in
                     Some
                       {
                         se_metric = metric;
                         se_points = points;
                         se_trend = trend values;
                         se_shifts = detect ~threshold values;
                       })
               requested
           in
           {
             g_label = label;
             g_fingerprint = fingerprint;
             g_circuit = circuit;
             g_series = series;
           })
  in
  { groups; threshold; requested }

type regression = { rg_group : group; rg_series : series; rg_shift : shift }

let regressions report =
  let all =
    List.concat_map
      (fun g ->
        List.concat_map
          (fun s ->
            let orient = orientation s.se_metric in
            List.filter_map
              (fun sh ->
                let bad =
                  match (orient, sh.sh_direction) with
                  | Higher_worse, Up | Lower_worse, Down -> true
                  | Neutral, _ -> true
                  | _ -> false
                in
                if bad then
                  Some { rg_group = g; rg_series = s; rg_shift = sh }
                else None)
              s.se_shifts)
          g.g_series)
      report.groups
  in
  List.stable_sort
    (fun a b ->
      compare
        ( -.Float.abs a.rg_shift.sh_score,
          a.rg_group.g_label,
          a.rg_series.se_metric,
          a.rg_shift.sh_index )
        ( -.Float.abs b.rg_shift.sh_score,
          b.rg_group.g_label,
          b.rg_series.se_metric,
          b.rg_shift.sh_index ))
    all

let direction_name = function Up -> "up" | Down -> "down"

let render ?(top = 10) report =
  let b = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  if report.groups = [] then line "no runs found"
  else begin
    List.iter
      (fun g ->
        let runs =
          List.fold_left
            (fun acc s -> max acc (Array.length s.se_points))
            0 g.g_series
        in
        line "%s%s  [%s]  %d run%s" g.g_label
          (match g.g_circuit with
          | Some c -> Printf.sprintf " (%s)" c
          | None -> "")
          (String.sub g.g_fingerprint 0 12)
          runs
          (if runs = 1 then "" else "s");
        line "  %-36s %4s %12s %12s %12s %8s %6s" "metric" "n" "first"
          "last" "ewma" "rate" "shifts";
        List.iter
          (fun s ->
            let t = s.se_trend in
            line "  %-36s %4d %12.6g %12.6g %12.6g %8.3g %6d"
              s.se_metric t.t_n t.t_first t.t_last t.t_ewma t.t_rate
              (List.length s.se_shifts))
          g.g_series;
        line "")
      report.groups;
    let regs = regressions report in
    if regs = [] then
      line "no regressions detected (threshold %g)" report.threshold
    else begin
      line "regressions (threshold %g, worst first):" report.threshold;
      List.iteri
        (fun i r ->
          if i < top then begin
            let sh = r.rg_shift in
            let p = r.rg_series.se_points.(sh.sh_index) in
            line "  %2d. %s %s: %s %.6g -> %.6g (score %.1f) at run %s"
              (i + 1) r.rg_group.g_label r.rg_series.se_metric
              (direction_name sh.sh_direction)
              sh.sh_before sh.sh_after sh.sh_score p.p_run;
            if p.p_argv <> [] then
              line "      argv: %s" (String.concat " " p.p_argv)
          end)
        regs;
      if List.length regs > top then
        line "  ... and %d more" (List.length regs - top)
    end
  end;
  Buffer.contents b

(* --- JSON / NDJSON --- *)

let json_of_trend t =
  Printf.sprintf
    "{\"n\":%d,\"first\":%s,\"last\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"rate\":%s,\"ewma\":%s}"
    t.t_n (json_float t.t_first) (json_float t.t_last)
    (json_float t.t_min) (json_float t.t_max) (json_float t.t_mean)
    (json_float t.t_rate) (json_float t.t_ewma)

let json_of_argv argv =
  "[" ^ String.concat "," (List.map esc argv) ^ "]"

let json_of_point p =
  Printf.sprintf "{\"run\":%s,\"t\":%s,\"v\":%s,\"source\":%s,\"argv\":%s}"
    (esc p.p_run) (json_float p.p_time) (json_float p.p_value)
    (esc p.p_source) (json_of_argv p.p_argv)

let json_of_shift points sh =
  let run = points.(sh.sh_index).p_run in
  Printf.sprintf
    "{\"index\":%d,\"run\":%s,\"before\":%s,\"after\":%s,\"score\":%s,\"direction\":%s}"
    sh.sh_index (esc run) (json_float sh.sh_before)
    (json_float sh.sh_after) (json_float sh.sh_score)
    (esc (direction_name sh.sh_direction))

let json_of_series s =
  Printf.sprintf
    "{\"metric\":%s,\"trend\":%s,\"points\":[%s],\"shifts\":[%s]}"
    (esc s.se_metric)
    (json_of_trend s.se_trend)
    (String.concat ","
       (Array.to_list (Array.map json_of_point s.se_points)))
    (String.concat "," (List.map (json_of_shift s.se_points) s.se_shifts))

let json_of_group g =
  let runs =
    List.fold_left
      (fun acc s -> max acc (Array.length s.se_points))
      0 g.g_series
  in
  Printf.sprintf
    "{\"label\":%s,\"fingerprint\":%s,\"circuit\":%s,\"runs\":%d,\"series\":[%s]}"
    (esc g.g_label) (esc g.g_fingerprint)
    (match g.g_circuit with Some c -> esc c | None -> "null")
    runs
    (String.concat "," (List.map json_of_series g.g_series))

let to_json report =
  Printf.sprintf
    "{\"history_version\":1,\"threshold\":%s,\"metrics\":[%s],\"groups\":[%s]}"
    (json_float report.threshold)
    (String.concat "," (List.map esc report.requested))
    (String.concat "," (List.map json_of_group report.groups))

let to_ndjson report =
  let b = Buffer.create 2048 in
  List.iter
    (fun g ->
      List.iter
        (fun s ->
          Array.iter
            (fun p ->
              Buffer.add_string b
                (Printf.sprintf
                   "{\"kind\":\"point\",\"group\":%s,\"fingerprint\":%s,\"metric\":%s,\"run\":%s,\"t\":%s,\"v\":%s}\n"
                   (esc g.g_label) (esc g.g_fingerprint) (esc s.se_metric)
                   (esc p.p_run) (json_float p.p_time)
                   (json_float p.p_value)))
            s.se_points;
          List.iter
            (fun sh ->
              let run = s.se_points.(sh.sh_index).p_run in
              Buffer.add_string b
                (Printf.sprintf
                   "{\"kind\":\"shift\",\"group\":%s,\"fingerprint\":%s,\"metric\":%s,\"index\":%d,\"run\":%s,\"before\":%s,\"after\":%s,\"score\":%s,\"direction\":%s}\n"
                   (esc g.g_label) (esc g.g_fingerprint) (esc s.se_metric)
                   sh.sh_index (esc run) (json_float sh.sh_before)
                   (json_float sh.sh_after) (json_float sh.sh_score)
                   (esc (direction_name sh.sh_direction))))
            s.se_shifts)
        g.g_series)
    report.groups;
  Buffer.contents b
