(** Offline analysis of the NDJSON traces written by {!Obs.file_sink}.

    The consumer side of [--trace FILE]: parse the event stream back,
    rebuild the span nesting as a tree with self/total wall-clock time
    per path, recover the final counter values, and export Chrome
    trace-event JSON for [chrome://tracing] / Perfetto.

    Parsing is strict about JSON well-formedness but tolerant about
    stream truncation: a trace cut off mid-run (the process died inside
    a span) still yields the tree of the spans that did complete. *)

(** {1 JSON values}

    A minimal self-contained JSON reader — also used by {!Regress} to
    parse [BENCH_obs.json] documents — plus the escaping helper shared
    by the writers. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Whole-string parse; the error carries a character offset. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on other constructors. *)

  val to_float : t -> float option
  val to_string : t -> string option

  val escape : string -> string
  (** [escape s] is the JSON string literal for [s], quotes included. *)
end

(** {1 Events} *)

type event =
  | Span_begin of { name : string; t : float; depth : int; dom : int }
  | Span_end of { name : string; t : float; depth : int; dt : float; dom : int }
  | Counter of { name : string; t : float; value : int; dom : int }
      (** [dom] is the emitting domain's {!Obs.domain_lane}. Traces
          written before domain tagging carry no ["dom"] field and
          parse as domain 0 — exact, since they were single-domain. *)
  | Heartbeat of {
      t : float;
      phase : string;  (** [""] when no phase was registered *)
      percent : float;
      eta_s : float option;
      rates : (string * float) list;
          (** per-second counter rates over the sampling interval
              (zero-rate counters omitted by the writer) *)
      util : float list;  (** per-slot pool busy ratios, in [0, 1] *)
      dom : int;
    }
      (** One telemetry sampler tick (see {!Telemetry}): progress plus
          the sampled rates, emitted a few times per second while the
          sampler runs. [treorder top] tails these. *)

val event_of_line : string -> (event, string) result

val events_of_string : string -> (event list, string) result
(** Parse an NDJSON document (blank lines skipped). The error names the
    offending 1-based line. *)

val load : string -> (event list, string) result
(** [events_of_string] over a file's contents; [Error] on I/O failure. *)

(** {1 Span tree} *)

type tree = {
  name : string;
  calls : int;  (** completed spans at this path *)
  total : float;  (** seconds, summed over calls *)
  self : float;  (** [total] minus the children's [total] *)
  children : tree list;  (** sorted by name *)
}

val span_tree : event list -> tree
(** Aggregate spans by {e path} (the stack of enclosing span names), so
    [optimize.gate] under [optimize.run] is distinct from a top-level
    [optimize.gate]. Nesting is tracked per domain (each domain's spans
    nest relative to that domain's own stack) and identical paths from
    different domains aggregate into the same node. The root is
    synthetic: [name = ""], [calls = 0], [total] = sum of the top-level
    spans. Unmatched [Span_end]s and spans left open by a truncated
    trace are dropped. *)

val render_tree : tree -> string
(** Plain-text rendering, one line per path: total, self, calls, and
    the name indented two spaces per nesting level. Deterministic
    (children sorted by name). *)

val final_counters : event list -> (string * int) list
(** Last sampled value per counter name, sorted by name. *)

(** {1 Chrome trace-event export} *)

val to_chrome : event list -> string
(** The events as a Chrome trace-event JSON document
    ([{"traceEvents":[...]}]): spans become [ph:"B"]/[ph:"E"] duration
    events, counter samples become [ph:"C"] counter events, and
    heartbeats become a [progress.percent] counter track, on [pid 1]
    with one thread lane per domain ([tid = dom + 1], so a [--jobs 4]
    run renders four worker tracks plus the coordinator's), timestamps
    in microseconds. Loadable by [chrome://tracing] and Perfetto. *)

(** {1 Folded stacks} *)

val to_folded : tree -> string
(** The span tree as folded stacks, one line per path:
    [outer;inner;leaf <self_ns>] with the value in integer nanoseconds
    of {e self} time — the format flamegraph.pl and speedscope consume
    directly. Semicolons and spaces inside span names are replaced by
    [_]; lines appear in deterministic DFS order. *)
