(** Run provenance: self-contained archives of pipeline runs, and the
    cross-run diff engine over them.

    A {e run record} is a directory holding the full story of one
    pipeline invocation — enough to answer "what exactly was this run,
    and how does it differ from that one?" months later:

    - [manifest.json] — tool version, subcommand and argv, the SHA-256
      of every input file, the knobs that determine behaviour (seed,
      jobs, memo, objective, ...), and start/finish timestamps;
    - [snapshot.json] — the full {!Obs.snapshot} of the run (counters,
      distributions, spans, GC), the same document the bench harness
      writes;
    - optional attachments ([ledger.json], [audit.json], ...) — any
      JSON document the producing subcommand wants preserved.

    Records are written atomically in the sense that [manifest.json] is
    written {e last}: a directory without a manifest is an incomplete
    record and is skipped by {!scan}.

    The {!diff} engine compares two records: manifest parameters and
    input hashes (informational), counters with the {!Regress}
    inner-join/tolerance semantics (timing counters and per-domain
    scheduling counters excluded), the attribution ledgers gate by gate
    (configuration flips and power drift), and the audit summaries
    (error-metric drift). {!is_clean} is the exit-code predicate the
    [treorder runs diff] command uses. *)

(** {1 SHA-256} *)

val sha256_hex : string -> string
(** Lowercase hex SHA-256 digest of a string (pure OCaml; used for
    input-file fingerprints in manifests). *)

val sha256_file : string -> (string, string) result
(** Digest of a file's contents; [Error] on I/O failure. *)

(** {1 Writing records} *)

type pending
(** A run record under construction: created at subcommand start,
    accumulated during the run, written once at the end. *)

val start : ?tool_version:string -> subcommand:string -> argv:string list -> unit -> pending
(** Begin a record; the start timestamp is taken now. [tool_version]
    defaults to ["dev"] — the CLI passes its release version. *)

val add_input : pending -> string -> unit
(** Record an input file: the path plus its SHA-256, hashed {e now}
    (before the run can modify it). Unreadable files are recorded with
    the digest ["unreadable"] rather than failing the run. *)

val set_param : pending -> string -> string -> unit
(** Record one behaviour-determining parameter (e.g. ["seed"], ["jobs"],
    ["memo"], ["objective"]). Last write per key wins. *)

val attach : pending -> name:string -> json:string -> unit
(** Attach a pre-rendered JSON document to the record; it is written to
    [<name>.json] in the run directory. [name] must be a plain filename
    component (no separators). *)

val write :
  ?id:string -> dir:string -> snapshot_json:string -> pending -> (string, string) result
(** Finalize: create [dir] (and parents) if needed, pick a run id
    ([subcommand]-[UTC timestamp] by default, uniquified with a numeric
    suffix; an explicit [id] overwrites any existing record of that id),
    write the snapshot and every attachment, then the manifest last.
    Returns the run directory path. *)

(** {1 Reading records} *)

type manifest = {
  version : int;  (** record format version; currently 1 *)
  tool_version : string;
  subcommand : string;
  argv : string list;
  inputs : (string * string) list;  (** path, sha256 *)
  params : (string * string) list;  (** sorted by key *)
  started : float;  (** epoch seconds *)
  finished : float;
  attachments : string list;  (** attachment names, sorted *)
}

type run = { run_dir : string; run_id : string; manifest : manifest }

val read_manifest : string -> (manifest, string) result
(** Parse one [manifest.json] file. *)

val load_run : string -> (run, string) result
(** Load the record in a run directory. *)

val scan : string -> (run list, string) result
(** All complete records directly under an archive directory, sorted by
    start time then id. Directories without a readable manifest are
    skipped silently; [Error] only if the archive itself is unreadable. *)

val resolve : string -> (run, string) result
(** Accept either a run directory or an archive root: a directory with
    a [manifest.json] loads directly, otherwise the latest-started run
    underneath it is used. *)

val read_attachment : run -> string -> (Trace.Json.t, string) result
(** Load and parse [<name>.json] from the run directory. *)

(** {1 Snapshot access} *)

val counters_of_snapshot : Trace.Json.t -> (string * float) list
(** The counter map of a parsed [snapshot.json], sorted by name. *)

val spans_of_snapshot : Trace.Json.t -> (string * float) list
(** Span name to total seconds, sorted by name. *)

(** {1 Ledger access} *)

type ledger_gate = {
  g_index : int;
  g_out : string;
  g_cell : string;
  g_config_before : int;  (** configuration index *)
  g_config_after : int;
  g_power_before : float;
  g_power_after : float;
}

type ledger = {
  l_circuit : string;
  l_total_before : float;
  l_total_after : float;
  l_gates : ledger_gate array;  (** ordered by gate index *)
}

val ledger_of_json : Trace.Json.t -> (ledger, string) result
(** Decode an [Attrib.to_json] document down to the per-gate power and
    configuration facts the diff engine needs. *)

(** {1 Diffing} *)

type gate_drift = {
  gate : string;  (** output net name *)
  cell : string;
  a_config : int;  (** chosen configuration index in each run *)
  b_config : int;
  a_power : float;
  b_power : float;
}

type value_drift = { metric : string; a_value : float; b_value : float }

type diff = {
  run_a : run;
  run_b : run;
  param_drift : (string * string option * string option) list;
      (** key, value in A, value in B — informational *)
  input_drift : (string * string option * string option) list;
      (** path, sha256 in A, sha256 in B — informational *)
  counters : Regress.violation list;
  flips : gate_drift list;  (** chosen configuration differs *)
  power_drift : gate_drift list;  (** same configuration, power moved *)
  audit_drift : value_drift list;
  structure : string list;  (** incomparable-shape errors; failing *)
  notes : string list;  (** tolerated omissions (missing attachment, ...) *)
}

val diff :
  ?tol:Regress.tolerance ->
  ?rtol:float ->
  ?ignore_counters:string list ->
  run ->
  run ->
  diff
(** Compare two records. Counters are inner-joined and checked with
    [tol] (default: {!Regress.default_tolerance} with
    [check_time = false]); names ending in [_ns], names starting with
    [par.domain_], and names starting with any [ignore_counters] prefix
    are excluded (they measure scheduling, not behaviour). Ledger gates
    are joined by index: a different chosen configuration is a flip; the
    same configuration with relative power gap beyond [rtol] (default
    [1e-9]) is power drift. Audit summaries compare their error metrics
    with the same [rtol]. A missing attachment on either side is a
    {e note}, not a failure; malformed attachments and mismatched gate
    counts are {e structure} errors. *)

val is_clean : diff -> bool
(** No counter violations, flips, power drift, audit drift or structure
    errors. Parameter/input drift and notes are informational only. *)

val render_diff : diff -> string
(** Human-readable report: run identities, parameter and input drift,
    then each failing section; ends with a one-line verdict. *)
