(** Bench regression gating: compare a fresh [BENCH_obs.json] against a
    stored baseline and report violations.

    Two metric families with different failure semantics:

    - {e counters} are deterministic for a fixed seed, so any drift
      beyond a small tolerance — in either direction — is a behavioural
      change worth flagging (an unexplained drop is as suspicious as a
      jump);
    - {e wall-clock} (per-target seconds and per-span totals) is noisy
      and machine-dependent, so only slowdowns beyond a generous
      relative tolerance fail, and the comparison can be disabled
      outright ([check_time = false]) for cross-machine gates like the
      committed CI fixture. *)

type target = {
  name : string;
  seconds : float;
  counters : (string * float) list;  (** sorted by name *)
  spans : (string * float) list;  (** name, total seconds; sorted *)
}

val targets_of_json : Trace.Json.t -> (target list, string) result
(** Decode a [BENCH_obs.json] document ([{"targets":[...]}]). *)

val load : string -> (target list, string) result
(** Read and decode one file. *)

type tolerance = {
  counter_rtol : float;  (** relative counter tolerance (default 0.1) *)
  counter_slack : float;  (** absolute counter slack (default 8) *)
  time_rtol : float;  (** allowed relative slowdown (default 0.5) *)
  time_slack : float;  (** absolute slack, seconds (default 0.02) *)
  check_time : bool;  (** compare seconds/spans at all (default true) *)
}

val default_tolerance : tolerance

type violation = {
  target : string;
  metric : string;  (** e.g. ["counter bdd.memo_hit"], ["seconds"] *)
  baseline : float;
  current : float;
  allowed : float;  (** the bound the current value violated *)
}

val compare : tolerance -> baseline:target list -> current:target list -> violation list
(** Compare every target (and, within a target, every counter/span)
    present in {e both} documents; metrics on one side only are
    ignored, so adding a bench target or a counter does not fail the
    gate. Counters named [*_ns] — including per-slot variants such as
    [par.domain_busy_ns.0] — are wall-clock measurements in disguise
    and are skipped, matching [Runlog.diff]'s exclusion policy. The
    result is sorted by target then metric name. *)

val compared_targets : baseline:target list -> current:target list -> string list
(** The target names the comparison covers (sorted). *)

val render : violation list -> string
(** One human-readable line per violation; [""] when the list is
    empty. *)
