(* Baseline comparison for BENCH_obs.json documents. *)

module Json = Trace.Json

type target = {
  name : string;
  seconds : float;
  counters : (string * float) list;
  spans : (string * float) list;
}

let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l

let target_of_json json =
  let str key = Option.bind (Json.member key json) Json.to_string in
  let num key = Option.bind (Json.member key json) Json.to_float in
  match (str "name", num "seconds", Json.member "metrics" json) with
  | Some name, Some seconds, Some metrics ->
      let counters =
        match Json.member "counters" metrics with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun x -> (k, x)) (Json.to_float v))
              fields
        | _ -> []
      in
      let spans =
        match Json.member "spans" metrics with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                Option.map
                  (fun x -> (k, x))
                  (Option.bind (Json.member "total_s" v) Json.to_float))
              fields
        | _ -> []
      in
      Ok { name; seconds; counters = sorted counters; spans = sorted spans }
  | _ -> Error "target without name/seconds/metrics"

let targets_of_json json =
  match Json.member "targets" json with
  | Some (Json.Arr targets) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | t :: rest -> (
            match target_of_json t with
            | Ok target -> go (target :: acc) rest
            | Error _ as e -> e)
      in
      go [] targets
  | _ -> Error "document has no \"targets\" array"

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.parse text with
      | Error msg -> Error msg
      | Ok json -> targets_of_json json)

type tolerance = {
  counter_rtol : float;
  counter_slack : float;
  time_rtol : float;
  time_slack : float;
  check_time : bool;
}

let default_tolerance =
  {
    counter_rtol = 0.1;
    counter_slack = 8.;
    time_rtol = 0.5;
    time_slack = 0.02;
    check_time = true;
  }

type violation = {
  target : string;
  metric : string;
  baseline : float;
  current : float;
  allowed : float;
}

(* Inner join of two name-sorted assoc lists. *)
let join a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (ka, va) :: ra, (kb, vb) :: rb ->
        let c = compare ka kb in
        if c = 0 then go ((ka, va, vb) :: acc) ra rb
        else if c < 0 then go acc ra b
        else go acc a rb
  in
  go [] a b

let check_counter tol ~target ~metric ~baseline ~current acc =
  let slack = Float.max (tol.counter_rtol *. Float.abs baseline) tol.counter_slack in
  if Float.abs (current -. baseline) > slack then
    { target; metric; baseline; current; allowed = slack } :: acc
  else acc

let check_slower tol ~target ~metric ~baseline ~current acc =
  let limit = (baseline *. (1. +. tol.time_rtol)) +. tol.time_slack in
  if current > limit then
    { target; metric; baseline; current; allowed = limit } :: acc
  else acc

(* Counters named *_ns (par.domain_busy_ns.0, obs.sample_ns, ...) are
   wall-clock measurements in disguise: machine-dependent, so gating
   them would make the committed fixture flaky. Same policy as
   Runlog.diff. *)
let is_time_counter name =
  let suffix = "_ns" in
  let nl = String.length name and sl = String.length suffix in
  let ends_at i = i >= sl && String.sub name (i - sl) sl = suffix in
  ends_at nl
  || match String.rindex_opt name '.' with Some i -> ends_at i | None -> false

let compare_target tol (name, base, cur) acc =
  let acc =
    List.fold_left
      (fun acc (counter, baseline, current) ->
        if is_time_counter counter then acc
        else
          check_counter tol ~target:name
            ~metric:("counter " ^ counter)
            ~baseline ~current acc)
      acc
      (join base.counters cur.counters)
  in
  if not tol.check_time then acc
  else
    let acc =
      check_slower tol ~target:name ~metric:"seconds" ~baseline:base.seconds
        ~current:cur.seconds acc
    in
    List.fold_left
      (fun acc (span, baseline, current) ->
        check_slower tol ~target:name
          ~metric:("span " ^ span)
          ~baseline ~current acc)
      acc
      (join base.spans cur.spans)

let by_name targets =
  sorted (List.map (fun t -> (t.name, t)) targets)

let compare tol ~baseline ~current =
  let joined = join (by_name baseline) (by_name current) in
  let violations = List.fold_left (fun acc t -> compare_target tol t acc) [] joined in
  List.sort
    (fun a b -> Stdlib.compare (a.target, a.metric) (b.target, b.metric))
    violations

let compared_targets ~baseline ~current =
  List.map (fun (name, _, _) -> name) (join (by_name baseline) (by_name current))

let render violations =
  String.concat ""
    (List.map
       (fun v ->
         Printf.sprintf "REGRESSION %s / %s: baseline %.6g, now %.6g (allowed %.6g)\n"
           v.target v.metric v.baseline v.current v.allowed)
       violations)
