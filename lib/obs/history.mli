(** Fleet-scale history analytics over run archives and bench records.

    Every earlier observability layer answers questions about {e one}
    run ({!Obs} snapshots, {!Runlog} records, {!Telemetry} samples) or
    about {e two} ({!Runlog.diff}). This module answers questions about
    {e many}: given an archive root accumulated over weeks of
    [--archive] runs — and, optionally, the append-only
    [BENCH_history.ndjson] the bench harness writes — it extracts
    per-run metric values, aligns them into like-for-like time series,
    summarizes each series' trend, and runs a deterministic
    changepoint detector that attributes every mean shift to the first
    run of the new regime (whose manifest — argv plus input
    fingerprints — is the bisection breadcrumb).

    {b Series alignment.} Two runs belong to the same series only when
    their {!series_fingerprint}s agree: a SHA-256 over the subcommand,
    every behaviour-determining manifest parameter except [jobs] (the
    parallel optimizer is bit-identical across domain counts, so
    [jobs] is scheduling, not behaviour) and every input-file digest.
    A changed circuit, seed, scenario or input file starts a fresh
    series rather than polluting an existing one. Within a series,
    points are ordered by manifest start time (ties by run id), so the
    series {e is} the repository's perf/accuracy trajectory.

    {b Determinism.} Extraction copies values out of the archived
    snapshots bit-for-bit ([%.17g] JSON round-trips exactly); the
    detector uses no randomness and no wall clock, so the same records
    produce the same report in any scan order. The
    [history-consistency] proptest oracle holds all of this to account.

    Rendered views: {!render} (text), {!to_json} / {!to_ndjson}
    (machine), and {!Html.render} (the self-contained dashboard). *)

(** {1 Records: one analyzable run} *)

type record = {
  r_id : string;  (** run id, or bench target name *)
  r_source : string;  (** run directory, or history-file path *)
  r_label : string;  (** subcommand, or ["bench:<target>"] *)
  r_circuit : string option;  (** the [circuit] manifest param, if any *)
  r_time : float;  (** manifest start time / bench record time, epoch s *)
  r_argv : string list;
  r_fingerprint : string;  (** series-alignment key, lowercase hex *)
  r_metrics : (string * float) list;  (** flat metric map, name-sorted *)
}

val series_fingerprint : Runlog.manifest -> string
(** The alignment key of an archived run: SHA-256 (hex) over
    subcommand, sorted params minus [jobs], and sorted input digests.
    [treorder runs show] prints it so operators can predict which runs
    will form a series. *)

val record_of_run : Runlog.run -> record
(** Extract the flat metric map of one archived run. Metric names:

    - every snapshot counter, verbatim (e.g.
      [optimizer.configs_explored]);
    - [dist.<name>.<stat>] for every snapshot distribution, with
      [<stat>] one of [count], [mean], [min], [max], [p50], [p90],
      [p99];
    - [span.<name>] — total seconds of the span;
    - [wall_s] — manifest [finished - started];
    - [ledger.total_before] / [ledger.total_after] /
      [ledger.reduction_pct] when a ledger attachment decodes;
    - [audit.<metric>] for each audit-summary error metric when an
      audit attachment decodes;
    - [memo.hit_rate_pct] when the memo counters are present and
      hits + misses > 0.

    Unreadable snapshots yield a record with only [wall_s] (the run
    still marks its place on the time axis). *)

val load_archive : string -> (record list, string) result
(** {!Runlog.scan} an archive root and extract every complete record,
    ordered by start time then id. [Error] only when the root itself
    is unreadable. *)

val load_bench_history : string -> (record list * int, string) result
(** Parse an append-only bench history file
    ([{"v":1,"time":...,"target":...,"argv":[...],"seconds":...,"metrics":{...}}]
    per line). Tolerant like the NDJSON trace reader: lines that do
    not parse (a truncated tail from a killed append, a torn write)
    are skipped and counted, never fatal. Returns the records (label
    ["bench:<target>"], fingerprint derived from the target name) and
    the number of skipped lines. [Error] only on I/O failure. *)

(** {1 Trend summaries} *)

type trend = {
  t_n : int;  (** points in the series *)
  t_first : float;
  t_last : float;
  t_min : float;
  t_max : float;
  t_mean : float;
  t_rate : float;  (** (last - first) / (n - 1); 0 when n < 2 *)
  t_ewma : float;  (** exponentially weighted mean, newest-heavy *)
}

val trend : ?alpha:float -> float array -> trend
(** Summary of a non-empty series in time order. [alpha] (default
    0.3) is the EWMA smoothing factor applied oldest-to-newest.
    @raise Invalid_argument on the empty array. *)

(** {1 Changepoint detection}

    Two-sided mean-shift detection by binary segmentation over the
    maximized-CUSUM statistic. The scale [sigma] is estimated robustly
    from the median absolute successive difference (so a single step
    inflates it only marginally). Within a segment, every split point
    [t] is scored with the standardized two-sample statistic

    [|mean(right) - mean(left)| * sqrt (n1 n2 / (n1 + n2)) / sigma]

    and the best split (earliest on ties) becomes a changepoint when
    its score exceeds [threshold]; the detector then recurses on both
    halves. The changepoint index is the {e first point of the new
    regime} — the first offending run. When at least half of the
    successive differences are exactly zero the series is
    piecewise-constant (counters of a deterministic pipeline): every
    change of value is an exact changepoint, no noise model needed.
    A series shorter than 4 points never flags. No RNG, no
    wall-clock: byte-identical inputs give byte-identical shifts. *)

type direction = Up | Down

type shift = {
  sh_index : int;  (** first point of the new regime (0-based) *)
  sh_before : float;  (** mean of the regime before the shift (bounded
                          by the neighbouring changepoint) *)
  sh_after : float;  (** mean of the regime from the shift on *)
  sh_score : float;  (** the standardized statistic, in sigma units;
                         piecewise-constant changepoints are exact and
                         report [2 * threshold] *)
  sh_direction : direction;
}

val detect : ?threshold:float -> float array -> shift list
(** Changepoints of a series in time order, sorted by index.
    [threshold] (default 5.0) is the decision bound in sigma units;
    lower is more sensitive. *)

(** {1 Metric orientation} *)

type orientation = Higher_worse | Lower_worse | Neutral

val orientation : string -> orientation
(** Which direction of a shift is a {e regression} for this metric:
    time, power, error and [_ns]/[wall] metrics regress upward; hit
    rates, reductions and speedups regress downward; bare counters are
    [Neutral] — any shift in a deterministic pipeline's counters is a
    behaviour change worth flagging. *)

(** {1 Reports} *)

type point = {
  p_run : string;  (** run id / bench target instance *)
  p_time : float;
  p_argv : string list;
  p_source : string;
  p_value : float;
}

type series = {
  se_metric : string;
  se_points : point array;  (** time order *)
  se_trend : trend;
  se_shifts : shift list;
}

type group = {
  g_label : string;
  g_fingerprint : string;
  g_circuit : string option;  (** the [circuit] param, when recorded *)
  g_series : series list;  (** sorted by metric name *)
}

type report = {
  groups : group list;  (** sorted by label, then fingerprint *)
  threshold : float;
  requested : string list;  (** metric selection used, sorted *)
}

val default_metrics : string list
(** The metric selection used when the caller requests none: [wall_s],
    ledger totals/reduction, audit mean density error, memo hit rate.
    Metrics absent from a series' runs are dropped per group. *)

val build : ?metrics:string list -> ?threshold:float -> record list -> report
(** Group records by (label, fingerprint), assemble the requested
    metric series (default {!default_metrics}), summarize and run the
    detector on each. Groups with fewer than 2 points still appear
    (with empty shift lists) so a fresh archive renders sensibly. *)

type regression = {
  rg_group : group;
  rg_series : series;
  rg_shift : shift;
}

val regressions : report -> regression list
(** Every detected shift whose direction is a regression under
    {!orientation}, ranked most severe first (by absolute score). The
    [--fail-on-regression] exit code is [regressions r <> []]. *)

val render : ?top:int -> report -> string
(** Plain-text report: per group, a series table (n / first / last /
    min / max / mean / rate / EWMA / shifts) followed by a ranked
    regression list attributing each shift to its first offending run
    (id + argv). [top] bounds the regression list (default 10). *)

val to_json : report -> string
(** The full report as one JSON document (the same shape the HTML
    dashboard embeds; floats as [%.17g] so values round-trip
    bit-exactly). *)

val to_ndjson : report -> string
(** One line per series point ([kind:"point"]) and per detected shift
    ([kind:"shift"]) — greppable, and the format the bench-history
    file shares. *)
