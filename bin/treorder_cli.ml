(* treorder — command-line front end.

   Circuits are referenced either by benchmark-suite name (see
   `treorder list`) or by a path to a netlist file (native format, or
   BLIF with a .blif extension). *)

open Cmdliner

(* Single source of truth for the release version: Cmdliner's --version
   output and the run-archive manifests must agree. *)
let version = "1.0.0"

let load_circuit spec =
  if Sys.file_exists spec then Netlist.Io.load spec
  else
    try Circuits.Suite.find spec
    with Not_found ->
      Printf.eprintf
        "error: %S is neither a file nor a known benchmark (try `treorder list`)\n"
        spec;
      exit 1

let circuit_arg =
  let doc = "Benchmark name or netlist file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let scenario_arg =
  let doc = "Input scenario: A (random P/D) or B (latched, P=0.5, D=0.5/cycle)." in
  Arg.(value & opt string "A" & info [ "s"; "scenario" ] ~docv:"A|B" ~doc)

let seed_arg =
  let doc = "Random seed for scenario A statistics and stimuli." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let parse_scenario s =
  try Power.Scenario.of_name s
  with Not_found ->
    Printf.eprintf "error: unknown scenario %S (use A or B)\n" s;
    exit 1

let context () = Experiments.Common.create ()

let scenario_inputs ~seed scenario circuit =
  Power.Scenario.input_stats ~rng:(Stoch.Rng.create seed)
    (parse_scenario scenario) circuit

(* --- parallelism flags --- *)

let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "JOBS must be at least 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for parallel gate sweeps. Defaults to \
     $(b,TREORDER_JOBS) when set, otherwise the machine's recommended \
     domain count; 1 forces the sequential path."
  in
  Arg.(
    value
    & opt jobs_conv (Par.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* --- power backend selection (estimate / audit) --- *)

let backend_conv =
  let parse s =
    match Power.Backend.of_name s with
    | b -> Ok b
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown backend %S (expected one of: %s)" s
                (String.concat ", "
                   (List.map Power.Backend.name Power.Backend.all))))
  in
  Arg.conv (parse, Power.Backend.pp)

let backend_arg ~default ~doc =
  Arg.(value & opt backend_conv default & info [ "backend" ] ~docv:"BACKEND" ~doc)

let samples_arg =
  let doc =
    "Monte-Carlo sample budget: net-value observations \
     (trajectories x steps), rounded up to whole blocks. mc backend only."
  in
  Arg.(value & opt (some int) None & info [ "samples" ] ~docv:"N" ~doc)

let with_optional_pool ~jobs f =
  if jobs <= 1 then f None
  else Par.Pool.with_pool ~jobs @@ fun pool -> f (Some pool)

(* --- observability flags (shared by every pipeline subcommand) --- *)

let obs_term =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"After the run, print the observability counter and span summary.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write NDJSON trace events (span begin/end, counter samples) to \
             $(docv).")
  in
  let archive =
    Arg.(
      value
      & opt (some string) None
      & info [ "archive" ] ~docv:"DIR"
          ~doc:
            "Write a self-contained run record (manifest with input hashes \
             and parameters, full counter/span snapshot, attribution ledger \
             and audit summary when produced) into a new subdirectory of \
             $(docv). Compare records with $(b,treorder runs diff).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write an OpenMetrics/Prometheus text exposition of the live \
             telemetry to $(docv), rewritten atomically on every sampler \
             tick (implies the sampler; see $(b,--telemetry-interval)). The \
             final exposition is also dropped into $(b,--archive) records \
             as metrics.prom.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "Run the background telemetry sampler even without \
             $(b,--metrics): heartbeat events (phase, percent, ETA, rates, \
             pool utilization) land in the $(b,--trace) stream for \
             $(b,treorder top).")
  in
  let interval =
    Arg.(
      value & opt float 0.25
      & info [ "telemetry-interval" ] ~docv:"SECONDS"
          ~doc:"Telemetry sampler cadence in seconds (default 0.25).")
  in
  Term.(
    const (fun stats trace archive metrics telemetry interval ->
        (stats, trace, archive, metrics, telemetry, interval))
    $ stats $ trace $ archive $ metrics $ telemetry $ interval)

let print_obs_summary () =
  let snap = Obs.snapshot () in
  let counters = List.filter (fun (_, v) -> v > 0) snap.Obs.counters in
  if counters <> [] then begin
    print_newline ();
    let table =
      Report.Table.create
        ~columns:[ ("counter", Report.Table.Left); ("value", Report.Table.Right) ]
    in
    List.iter
      (fun (name, v) -> Report.Table.add_row table [ name; string_of_int v ])
      counters;
    Report.Table.print table
  end;
  let dists =
    List.filter (fun (_, d) -> d.Obs.count > 0) snap.Obs.distributions
  in
  if dists <> [] then begin
    print_newline ();
    let table =
      Report.Table.create
        ~columns:
          [
            ("distribution", Report.Table.Left);
            ("count", Report.Table.Right);
            ("mean", Report.Table.Right);
            ("min", Report.Table.Right);
            ("p50", Report.Table.Right);
            ("p90", Report.Table.Right);
            ("p99", Report.Table.Right);
            ("max", Report.Table.Right);
          ]
    in
    List.iter
      (fun (name, d) ->
        let cell x = Printf.sprintf "%.4g" x in
        Report.Table.add_row table
          [
            name;
            string_of_int d.Obs.count;
            cell (d.Obs.sum /. float_of_int d.Obs.count);
            cell d.Obs.min;
            cell d.Obs.p50;
            cell d.Obs.p90;
            cell d.Obs.p99;
            cell d.Obs.max;
          ])
      dists;
    Report.Table.print table
  end;
  let spans = List.filter (fun (_, s) -> s.Obs.calls > 0) snap.Obs.spans in
  if spans <> [] then begin
    print_newline ();
    let table =
      Report.Table.create
        ~columns:
          [
            ("span", Report.Table.Left);
            ("calls", Report.Table.Right);
            ("total", Report.Table.Right);
            ("slowest", Report.Table.Right);
          ]
    in
    List.iter
      (fun (name, s) ->
        Report.Table.add_row table
          [
            name;
            string_of_int s.Obs.calls;
            Report.Table.cell_time s.Obs.total;
            Report.Table.cell_time s.Obs.slowest;
          ])
      spans;
    Report.Table.print table
  end

(* Reset the registry so the summary reflects this run only, point the
   trace at the requested file, and always close (flushing the final
   counter samples) even when the command raises. With --archive, hand
   the command a pending run record to annotate (inputs, parameters,
   attachments) and finalize it — snapshot included — once the command
   has finished. *)
let with_obs ~cmd (stats, trace, archive, metrics, telemetry, interval) f =
  Obs.reset ();
  Option.iter
    (fun path ->
      match Obs.file_sink path with
      | sink -> Obs.set_sink sink
      | exception Sys_error msg ->
          Printf.eprintf "error: cannot open trace file: %s\n" msg;
          exit 1)
    trace;
  (* The sampler starts after the reset (so obs.sample_ns measures this
     run only) and stops — taking its final forced sample — before the
     stats summary and the archive snapshot, so all three views agree.
     Without --metrics/--telemetry it never starts and obs.sample_ns
     stays 0. *)
  let sampler_on = telemetry || Option.is_some metrics in
  if sampler_on then Telemetry.start ~interval ?metrics_file:metrics ();
  let pending =
    Option.map
      (fun _ ->
        Runlog.start ~tool_version:version ~subcommand:cmd
          ~argv:(List.tl (Array.to_list Sys.argv))
          ())
      archive
  in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.stop ();
      Obs.close_sink ())
    (fun () ->
      let r = f pending in
      Telemetry.stop ();
      if stats then print_obs_summary ();
      (match (pending, archive) with
      | Some p, Some dir -> (
          let snapshot_json = Obs.snapshot_to_json (Obs.snapshot ()) in
          match Runlog.write ~dir ~snapshot_json p with
          | Ok run_dir ->
              Printf.printf "archived %s\n" run_dir;
              if sampler_on then
                Option.iter
                  (fun s ->
                    let oc =
                      open_out (Filename.concat run_dir "metrics.prom")
                    in
                    output_string oc (Telemetry.to_openmetrics s);
                    close_out oc)
                  (Telemetry.last ())
          | Error msg ->
              Printf.eprintf "error: cannot write run archive: %s\n" msg;
              exit 1)
      | _ -> ());
      r)

let record_params pending kvs =
  Option.iter
    (fun p -> List.iter (fun (k, v) -> Runlog.set_param p k v) kvs)
    pending

(* The circuit parameter doubles as an input file when it names one
   (suite circuits are baked into the binary; files get fingerprinted). *)
let record_circuit pending spec =
  Option.iter
    (fun p ->
      Runlog.set_param p "circuit" spec;
      if Sys.file_exists spec then Runlog.add_input p spec)
    pending

(* --- list --- *)

let list_cmd =
  let run () =
    let table =
      Report.Table.create
        ~columns:
          [
            ("name", Report.Table.Left);
            ("gates", Report.Table.Right);
            ("nets", Report.Table.Right);
            ("inputs", Report.Table.Right);
            ("outputs", Report.Table.Right);
            ("depth", Report.Table.Right);
          ]
    in
    List.iter
      (fun (name, c) ->
        Report.Table.add_row table
          [
            name;
            string_of_int (Netlist.Circuit.gate_count c);
            string_of_int (Netlist.Circuit.net_count c);
            string_of_int (List.length (Netlist.Circuit.primary_inputs c));
            string_of_int (List.length (Netlist.Circuit.primary_outputs c));
            string_of_int (Netlist.Circuit.depth c);
          ])
      (Circuits.Suite.all ());
    Report.Table.print table
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark circuits.")
    Term.(const run $ const ())

(* --- gates --- *)

let gates_cmd =
  let run () = print_string (Experiments.Table2.render (Experiments.Table2.run ())) in
  Cmd.v
    (Cmd.info "gates" ~doc:"Print the gate library and configuration counts (Table 2).")
    Term.(const run $ const ())

(* --- stats --- *)

let stats_cmd =
  let run spec scenario seed obs =
    with_obs ~cmd:"stats" obs @@ fun pending ->
    record_circuit pending spec;
    record_params pending
      [ ("scenario", scenario); ("seed", string_of_int seed) ];
    let circuit = load_circuit spec in
    let ctx = context () in
    let inputs = scenario_inputs ~seed scenario circuit in
    let analysis = Power.Analysis.run ctx.Experiments.Common.power circuit ~inputs in
    let table =
      Report.Table.create
        ~columns:
          [
            ("net", Report.Table.Left);
            ("P", Report.Table.Right);
            ("D (1/s)", Report.Table.Right);
          ]
    in
    for net = 0 to Netlist.Circuit.net_count circuit - 1 do
      let s = Power.Analysis.stats analysis net in
      Report.Table.add_row table
        [
          Netlist.Circuit.net_name circuit net;
          Report.Table.cell_float ~decimals:3 (Stoch.Signal_stats.prob s);
          Printf.sprintf "%.4g" (Stoch.Signal_stats.density s);
        ]
    done;
    Report.Table.print table
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Propagate equilibrium probabilities and transition densities.")
    Term.(const run $ circuit_arg $ scenario_arg $ seed_arg $ obs_term)

(* --- estimate --- *)

let estimate_cmd =
  let backend_arg =
    backend_arg ~default:Power.Backend.Analytical
      ~doc:
        "Power backend: analytical (the paper's propagated model), mc \
         (bit-parallel Monte-Carlo sampling of the same input model), or \
         switchsim (event-driven switch-level simulation)."
  in
  let horizon_arg =
    let doc = "Simulation horizon in seconds (switchsim backend only)." in
    Arg.(value & opt float 2e-3 & info [ "horizon" ] ~docv:"SECONDS" ~doc)
  in
  let run spec scenario seed backend samples jobs horizon obs =
    with_obs ~cmd:"estimate" obs @@ fun pending ->
    record_circuit pending spec;
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("backend", Power.Backend.name backend);
      ];
    let circuit = load_circuit spec in
    let ctx = context () in
    let inputs = scenario_inputs ~seed scenario circuit in
    Printf.printf "%s\n" (Format.asprintf "%a" Netlist.Circuit.pp_summary circuit);
    match backend with
    | Power.Backend.Analytical ->
        let analysis =
          Power.Analysis.run ctx.Experiments.Common.power circuit ~inputs
        in
        let b =
          Power.Estimate.circuit ctx.Experiments.Common.power circuit analysis
        in
        Printf.printf "model power:    %s\n"
          (Report.Table.cell_power b.Power.Estimate.total);
        Printf.printf "  internal:     %s\n"
          (Report.Table.cell_power b.Power.Estimate.internal);
        Printf.printf "  output nodes: %s\n"
          (Report.Table.cell_power b.Power.Estimate.output)
    | Power.Backend.Mc ->
        record_params pending [ ("jobs", string_of_int jobs) ];
        Option.iter
          (fun n -> record_params pending [ ("samples", string_of_int n) ])
          samples;
        with_optional_pool ~jobs @@ fun pool ->
        let r =
          Mc.estimate ctx.Experiments.Common.power ?pool ?samples
            ~seed:(seed + 1) ~inputs circuit
        in
        Printf.printf "mc power:       %s (output-node switching)\n"
          (Report.Table.cell_power r.Mc.power);
        Printf.printf "  samples:      %d (%d trajectories x %d steps, %d \
                       blocks)\n"
          r.Mc.samples r.Mc.trajectories r.Mc.steps r.Mc.blocks;
        Printf.printf "  dt / window:  %.3g s / %.3g s\n" r.Mc.dt r.Mc.window;
        Printf.printf "  energy:       %.4g J per trajectory window\n"
          r.Mc.energy
    | Power.Backend.Switchsim ->
        record_params pending [ ("horizon", string_of_float horizon) ];
        let sim = Switchsim.Sim.build ctx.Experiments.Common.proc circuit in
        let r =
          Switchsim.Sim.run_stats sim
            ~rng:(Stoch.Rng.create (seed + 1))
            ~stats:inputs ~horizon ()
        in
        Printf.printf "simulated power: %s\n"
          (Report.Table.cell_power r.Switchsim.Sim.power);
        Printf.printf "  events:        %d input transitions over %s\n"
          r.Switchsim.Sim.events
          (Report.Table.cell_time r.Switchsim.Sim.horizon);
        Printf.printf "  energy:        %.4g J\n" r.Switchsim.Sim.energy
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Estimate circuit power under the extended model, Monte-Carlo \
          sampling, or switch-level simulation.")
    Term.(
      const run $ circuit_arg $ scenario_arg $ seed_arg $ backend_arg
      $ samples_arg $ jobs_arg $ horizon_arg $ obs_term)

(* --- optimize --- *)

let objective_arg =
  let doc =
    "Objective: best (min power), worst (max power), bounded (min power, no \
     gate slower than reference), input-only (input permutations only), \
     fastest (min delay)."
  in
  Arg.(value & opt string "best" & info [ "objective" ] ~docv:"OBJ" ~doc)

let output_arg =
  let doc = "Write the rewritten netlist to this file (native format)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the power-attribution ledger: ranked top consumers, why \
           each changed ordering won, and per-node breakdowns.")

let explain_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain-json" ] ~docv:"FILE"
        ~doc:"Write the attribution ledger as JSON to $(docv).")

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"N"
        ~doc:"Gates shown in the ranked --explain tables.")

let memo_flag =
  Arg.(
    value & flag
    & info [ "memo" ]
        ~doc:
          "Memoize best-configuration verdicts across structurally \
           equivalent gates (quantized-key cache; an approximation near \
           bucket boundaries, reported via the optimizer.memo_hits/misses \
           counters).")

let optimize_cmd =
  let run spec scenario seed objective jobs memo out explain explain_json top
      obs =
    with_obs ~cmd:"optimize" obs @@ fun pending ->
    record_circuit pending spec;
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("objective", objective);
        ("jobs", string_of_int jobs);
        ("memo", string_of_bool memo);
      ];
    let circuit = load_circuit spec in
    let ctx = context () in
    let inputs = scenario_inputs ~seed scenario circuit in
    let objective, input_only =
      match objective with
      | "best" -> (Reorder.Optimizer.Min_power, false)
      | "worst" -> (Reorder.Optimizer.Max_power, false)
      | "bounded" -> (Reorder.Optimizer.Min_power_delay_bounded, false)
      | "input-only" -> (Reorder.Optimizer.Min_power, true)
      | "fastest" -> (Reorder.Optimizer.Min_delay, false)
      | other ->
          Printf.eprintf "error: unknown objective %S\n" other;
          exit 1
    in
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let memo = if memo then Some (Reorder.Memo.create ()) else None in
    let r =
      Reorder.Optimizer.optimize ctx.Experiments.Common.power
        ~delay:ctx.Experiments.Common.delay ~objective
        ~input_reordering_only:input_only ~pool ?memo circuit ~inputs
    in
    Printf.printf "%s\n" (Format.asprintf "%a" Reorder.Optimizer.pp_report r);
    let sta c =
      Delay.Sta.critical_delay (Delay.Sta.run ctx.Experiments.Common.delay c)
    in
    Printf.printf "critical delay: %s -> %s\n"
      (Report.Table.cell_time (sta circuit))
      (Report.Table.cell_time (sta r.Reorder.Optimizer.circuit));
    if explain || explain_json <> None || pending <> None then begin
      let ledger =
        Attrib.of_report ctx.Experiments.Common.power ~before:circuit ~inputs r
      in
      if explain then begin
        print_newline ();
        print_string (Attrib.render_explain ~top ledger)
      end;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Attrib.to_json ledger);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %s\n" path)
        explain_json;
      Option.iter
        (fun p -> Runlog.attach p ~name:"ledger" ~json:(Attrib.to_json ledger))
        pending
    end;
    Option.iter
      (fun path ->
        Netlist.Io.save r.Reorder.Optimizer.circuit path;
        Printf.printf "wrote %s\n" path)
      out
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Reorder transistors for the chosen objective.")
    Term.(
      const run $ circuit_arg $ scenario_arg $ seed_arg $ objective_arg
      $ jobs_arg $ memo_flag $ output_arg $ explain_flag $ explain_json_arg
      $ top_arg $ obs_term)

(* --- simulate --- *)

let horizon_arg =
  let doc = "Simulation horizon in seconds." in
  Arg.(value & opt float 2e-3 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let warmup_arg =
  let doc =
    "Warm-up time in seconds: the simulation runs from 0 but energy and \
     statistics are only collected from $(docv) to the horizon."
  in
  Arg.(value & opt float 0. & info [ "warmup" ] ~docv:"SECONDS" ~doc)

let vcd_arg =
  let doc = "Dump every net value change to $(docv) (VCD, viewable in GTKWave)." in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

let probe_internals_arg =
  let doc = "Also dump internal transistor-graph nodes to the VCD file." in
  Arg.(value & flag & info [ "probe-internals" ] ~doc)

(* Attach a VCD dump to a simulation run: returns the observer to pass
   and a completion function to call with the absolute horizon. *)
let with_vcd sim vcd probe_internals =
  match vcd with
  | None -> (None, fun ~time:_ -> ())
  | Some file ->
      let oc = open_out file in
      let observer, finish =
        Switchsim.Vcd_dump.make sim ~probe_internals
          ~emit:(output_string oc) ()
      in
      ( Some observer,
        fun ~time ->
          finish ~time;
          close_out oc )

let per_net_table circuit (r : Switchsim.Sim.result) top =
  let table =
    Report.Table.create
      ~columns:
        [
          ("net", Report.Table.Left);
          ("driver", Report.Table.Left);
          ("toggles", Report.Table.Right);
          ("D (1/s)", Report.Table.Right);
          ("high", Report.Table.Right);
          ("energy (J)", Report.Table.Right);
        ]
  in
  let nets =
    List.init (Netlist.Circuit.net_count circuit) Fun.id
    |> List.sort (fun a b ->
           compare r.Switchsim.Sim.net_toggles.(b) r.Switchsim.Sim.net_toggles.(a))
  in
  let rec toprows n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: toprows (n - 1) rest
  in
  List.iter
    (fun net ->
      let driver =
        match Netlist.Circuit.driver circuit net with
        | Netlist.Circuit.Primary_input -> "PI"
        | Netlist.Circuit.Driven_by g ->
            Printf.sprintf "g%d %s" g
              (Cell.Gate.name (Netlist.Circuit.gate_at circuit g).Netlist.Circuit.cell)
      in
      Report.Table.add_row table
        [
          Netlist.Circuit.net_name circuit net;
          driver;
          string_of_int r.Switchsim.Sim.net_toggles.(net);
          Printf.sprintf "%.3g"
            (float_of_int r.Switchsim.Sim.net_toggles.(net)
            /. r.Switchsim.Sim.horizon);
          Report.Table.cell_float ~decimals:3
            (r.Switchsim.Sim.net_high_time.(net) /. r.Switchsim.Sim.horizon);
          Printf.sprintf "%.3g" r.Switchsim.Sim.per_net_energy.(net);
        ])
    (toprows top nets);
  table

let simulate_cmd =
  let top_arg =
    let doc = "Print the $(docv) most active nets (toggles, density, energy)." in
    Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run spec scenario seed horizon warmup vcd probe_internals top obs =
    with_obs ~cmd:"simulate" obs @@ fun pending ->
    record_circuit pending spec;
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("horizon", string_of_float horizon);
        ("warmup", string_of_float warmup);
      ];
    let circuit = load_circuit spec in
    let ctx = context () in
    let stats = scenario_inputs ~seed scenario circuit in
    let sim = Switchsim.Sim.build ctx.Experiments.Common.proc circuit in
    let observer, finish_vcd = with_vcd sim vcd probe_internals in
    let r =
      Switchsim.Sim.run_stats sim ~rng:(Stoch.Rng.create (seed + 1)) ~stats
        ~horizon ~warmup ?observer ()
    in
    finish_vcd ~time:horizon;
    Printf.printf "%s\n" (Format.asprintf "%a" Netlist.Circuit.pp_summary circuit);
    Printf.printf "events:          %d input transitions over %s\n"
      r.Switchsim.Sim.events
      (Report.Table.cell_time r.Switchsim.Sim.horizon);
    Printf.printf "energy:          %.4g J\n" r.Switchsim.Sim.energy;
    Printf.printf "simulated power: %s\n" (Report.Table.cell_power r.Switchsim.Sim.power);
    (match vcd with
    | Some file -> Printf.printf "vcd:             %s\n" file
    | None -> ());
    if top > 0 then begin
      print_newline ();
      Report.Table.print (per_net_table circuit r top)
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Measure power with the switch-level simulator.")
    Term.(
      const run $ circuit_arg $ scenario_arg $ seed_arg $ horizon_arg
      $ warmup_arg $ vcd_arg $ probe_internals_arg $ top_arg $ obs_term)

(* --- audit --- *)

let audit_cmd =
  let top_arg =
    let doc = "Rows per table in the report." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the full audit as one JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let ndjson_arg =
    let doc = "Emit the audit as NDJSON (one line per net/gate row)." in
    Arg.(value & flag & info [ "ndjson" ] ~doc)
  in
  let fail_above_arg =
    let doc =
      "Exit with status 1 if the mean absolute per-net density error over \
       active nets exceeds $(docv) percent."
    in
    Arg.(value & opt (some float) None & info [ "fail-above" ] ~docv:"PCT" ~doc)
  in
  let backend_arg =
    backend_arg ~default:Power.Backend.Switchsim
      ~doc:
        "Measured side of the audit: switchsim (event-driven switch-level \
         simulation) or mc (bit-parallel Monte-Carlo sampling)."
  in
  let run spec scenario seed backend samples jobs horizon warmup vcd
      probe_internals top json ndjson fail_above obs =
    with_obs ~cmd:"audit" obs @@ fun pending ->
    record_circuit pending spec;
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("backend", Power.Backend.name backend);
      ];
    let circuit = load_circuit spec in
    let ctx = context () in
    let inputs = scenario_inputs ~seed scenario circuit in
    let a =
      match backend with
      | Power.Backend.Mc ->
          if vcd <> None then begin
            Printf.eprintf
              "error: --vcd records a simulator waveform; it requires the \
               switchsim backend\n";
            exit 2
          end;
          record_params pending [ ("jobs", string_of_int jobs) ];
          Option.iter
            (fun n -> record_params pending [ ("samples", string_of_int n) ])
            samples;
          with_optional_pool ~jobs @@ fun pool ->
          Audit.run ctx.Experiments.Common.power ~backend ?samples ?pool
            ~rng:(Stoch.Rng.create (seed + 1))
            ~inputs ~horizon circuit
      | Power.Backend.Analytical ->
          Printf.eprintf
            "error: the analytical model is the audit's predicted side; \
             measure against the switchsim or mc backend\n";
          exit 2
      | Power.Backend.Switchsim ->
          record_params pending
            [
              ("horizon", string_of_float horizon);
              ("warmup", string_of_float warmup);
            ];
          let sim = Switchsim.Sim.build ctx.Experiments.Common.proc circuit in
          let observer, finish_vcd = with_vcd sim vcd probe_internals in
          let a =
            Audit.run ctx.Experiments.Common.power ~backend ~sim ?observer
              ~warmup
              ~rng:(Stoch.Rng.create (seed + 1))
              ~inputs ~horizon circuit
          in
          finish_vcd ~time:horizon;
          a
    in
    Option.iter
      (fun p -> Runlog.attach p ~name:"audit" ~json:(Audit.to_json a))
      pending;
    if json then print_string (Audit.to_json a)
    else if ndjson then print_string (Audit.to_ndjson a)
    else print_string (Audit.render ~top a);
    match fail_above with
    | Some bound when a.Audit.summary.Audit.mean_density_err_pct > bound ->
        Printf.eprintf
          "audit: mean density error %.1f%% exceeds the %.1f%% bound\n"
          a.Audit.summary.Audit.mean_density_err_pct bound;
        exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Audit the analytical power model net by net against a measured \
          backend: the switch-level simulator or the Monte-Carlo engine.")
    Term.(
      const run $ circuit_arg $ scenario_arg $ seed_arg $ backend_arg
      $ samples_arg $ jobs_arg $ horizon_arg $ warmup_arg $ vcd_arg
      $ probe_internals_arg $ top_arg $ json_arg $ ndjson_arg $ fail_above_arg
      $ obs_term)

(* --- delay --- *)

let delay_cmd =
  let run spec obs =
    with_obs ~cmd:"delay" obs @@ fun pending ->
    record_circuit pending spec;
    let circuit = load_circuit spec in
    let ctx = context () in
    let sta = Delay.Sta.run ctx.Experiments.Common.delay circuit in
    Printf.printf "%s\n" (Format.asprintf "%a" Netlist.Circuit.pp_summary circuit);
    Printf.printf "critical delay: %s\n"
      (Report.Table.cell_time (Delay.Sta.critical_delay sta));
    print_string "critical path:  ";
    print_endline
      (String.concat " -> "
         (List.map (Netlist.Circuit.net_name circuit) (Delay.Sta.critical_path sta)))
  in
  Cmd.v
    (Cmd.info "delay" ~doc:"Static timing analysis with Elmore gate delays.")
    Term.(const run $ circuit_arg $ obs_term)

(* --- check --- *)

let check_cmd =
  let run spec =
    let circuit = load_circuit spec in
    Printf.printf "%s\n" (Format.asprintf "%a" Netlist.Circuit.pp_summary circuit);
    List.iter
      (fun (cell, n) -> Printf.printf "  %-8s x%d\n" cell n)
      (Netlist.Circuit.stats circuit);
    match Netlist.Lint.check circuit with
    | [] -> print_endline "no warnings"
    | warnings ->
        List.iter
          (fun w ->
            Printf.printf "warning: %s\n" (Netlist.Lint.describe circuit w))
          warnings;
        Printf.printf "%d warning(s)\n" (List.length warnings)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate a netlist and report structural warnings.")
    Term.(const run $ circuit_arg)

(* --- show / dot / spice --- *)

let show_cmd =
  let run spec =
    let circuit = load_circuit spec in
    print_string (Netlist.Io.to_string circuit)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a circuit in the native netlist format.")
    Term.(const run $ circuit_arg)

let gate_arg =
  let doc = "Library gate name (see `treorder gates`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GATE" ~doc)

let config_arg =
  let doc = "Configuration index (0 = reference ordering)." in
  Arg.(value & opt int 0 & info [ "config" ] ~docv:"K" ~doc)

let with_gate name f =
  match Cell.Gate.of_name name with
  | gate -> f gate
  | exception Not_found ->
      Printf.eprintf "error: unknown gate %S (see `treorder gates`)\n" name;
      exit 1

let dot_cmd =
  let run name config =
    with_gate name (fun gate ->
        if config < 0 || config >= Cell.Gate.config_count gate then begin
          Printf.eprintf "error: %s has %d configurations\n" name
            (Cell.Gate.config_count gate);
          exit 1
        end;
        let cfg = List.nth (Cell.Config.all gate) config in
        print_string
          (Sp.Network.to_dot
             ~name:(Printf.sprintf "%s_cfg%d" name config)
             (Cell.Config.network cfg)))
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Graphviz drawing of a gate configuration's transistor graph.")
    Term.(const run $ gate_arg $ config_arg)

let spice_cmd =
  let all_flag =
    Arg.(value & flag & info [ "library" ] ~doc:"Emit every configuration of every gate.")
  in
  let gate_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"GATE")
  in
  let run gate config all =
    if all then print_string (Cell.Spice.library_deck ())
    else
      match gate with
      | None ->
          Printf.eprintf "error: give a gate name or --library\n";
          exit 1
      | Some name ->
          with_gate name (fun gate -> print_string (Cell.Spice.subckt gate ~config))
  in
  Cmd.v
    (Cmd.info "spice" ~doc:"SPICE subcircuit of a gate configuration.")
    Term.(const run $ gate_opt $ config_arg $ all_flag)

(* --- map --- *)

let map_cmd =
  let file_arg =
    let doc = "Equation file (see the Logic.Eqn format)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.eqn" ~doc)
  in
  let run file scenario seed optimize jobs out obs =
    with_obs ~cmd:"map" obs @@ fun pending ->
    Option.iter (fun p -> Runlog.add_input p file) pending;
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("optimize", string_of_bool optimize);
        ("jobs", string_of_int jobs);
      ];
    let eqn =
      try Logic.Eqn.load file
      with Logic.Eqn.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" file line message;
        exit 1
    in
    let circuit =
      try Logic.Mapper.map eqn
      with Logic.Mapper.Unmappable message ->
        Printf.eprintf "error: %s\n" message;
        exit 1
    in
    Printf.printf "%s\n" (Format.asprintf "%a" Netlist.Circuit.pp_summary circuit);
    List.iter
      (fun (cell, n) -> Printf.printf "  %-8s x%d\n" cell n)
      (Netlist.Circuit.stats circuit);
    let circuit =
      if optimize then begin
        let ctx = context () in
        let inputs = scenario_inputs ~seed scenario circuit in
        let r =
          Par.Pool.with_pool ~jobs @@ fun pool ->
          Reorder.Optimizer.optimize ctx.Experiments.Common.power
            ~delay:ctx.Experiments.Common.delay ~pool circuit ~inputs
        in
        Printf.printf "%s\n" (Format.asprintf "%a" Reorder.Optimizer.pp_report r);
        r.Reorder.Optimizer.circuit
      end
      else circuit
    in
    Option.iter
      (fun path ->
        Netlist.Io.save circuit path;
        Printf.printf "wrote %s\n" path)
      out
  in
  let optimize_flag =
    Arg.(value & flag & info [ "optimize" ] ~doc:"Also reorder for minimum power.")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Map a Boolean equation file onto the gate library.")
    Term.(
      const run $ file_arg $ scenario_arg $ seed_arg $ optimize_flag $ jobs_arg
      $ output_arg $ obs_term)

(* --- profile / glitch / accuracy --- *)

let profile_cmd =
  let bits_arg =
    Arg.(value & opt int 16 & info [ "bits" ] ~docv:"N" ~doc:"Adder width.")
  in
  let run bits obs =
    with_obs ~cmd:"profile" obs @@ fun pending ->
    record_params pending [ ("bits", string_of_int bits) ];
    let ctx = context () in
    print_string
      (Experiments.Adder_profile.render
         (Experiments.Adder_profile.run ctx ~bits ()))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Carry-chain activity profile of a ripple-carry adder (E5).")
    Term.(const run $ bits_arg $ obs_term)

let glitch_cmd =
  let run scenario seed horizon obs =
    with_obs ~cmd:"glitch" obs @@ fun pending ->
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("horizon", string_of_float horizon);
      ];
    let ctx = context () in
    print_string
      (Experiments.Glitch.render
         (Experiments.Glitch.run ctx ~seed ~sim_horizon:horizon
            ~circuits:(Circuits.Suite.small ())
            (parse_scenario scenario)))
  in
  Cmd.v
    (Cmd.info "glitch"
       ~doc:"Glitch power of the small benchmarks under inertial delays (E9).")
    Term.(const run $ scenario_arg $ seed_arg $ horizon_arg $ obs_term)

let accuracy_cmd =
  let run scenario seed horizon obs =
    with_obs ~cmd:"accuracy" obs @@ fun pending ->
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("horizon", string_of_float horizon);
      ];
    let ctx = context () in
    print_string
      (Experiments.Ablations.render_accuracy
         (Experiments.Ablations.model_accuracy ctx ~seed ~sim_horizon:horizon
            (parse_scenario scenario)))
  in
  Cmd.v
    (Cmd.info "accuracy"
       ~doc:"Model power vs switch-level power over the suite (E8).")
    Term.(const run $ scenario_arg $ seed_arg $ horizon_arg $ obs_term)

(* --- fuzz --- *)

let fuzz_cmd =
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Random cases per property.")
  in
  let property_arg =
    let doc =
      "Run only this property (repeatable). One of: exactness, sim-power, \
       vcd-roundtrip, function, optimizer, io-roundtrip, densities, \
       attribution, parallel-determinism, sp-orderings, archive-roundtrip, \
       mc-convergence, telemetry-consistency, history-consistency, \
       incremental-equivalence."
    in
    Arg.(value & opt_all string [] & info [ "property"; "p" ] ~docv:"NAME" ~doc)
  in
  let max_gates_arg =
    Arg.(
      value & opt int 12
      & info [ "max-gates" ] ~docv:"N"
          ~doc:"Size bound handed to the generators (maximum gate count).")
  in
  let run seed count properties max_gates obs =
    with_obs ~cmd:"fuzz" obs @@ fun pending ->
    record_params pending
      [
        ("seed", string_of_int seed);
        ("count", string_of_int count);
        ("max_gates", string_of_int max_gates);
        ( "properties",
          if properties = [] then "all" else String.concat "," properties );
      ];
    let selected =
      match properties with
      | [] -> Proptest.Oracles.all ()
      | names ->
          List.map
            (fun name ->
              match Proptest.Oracles.find name with
              | Some p -> p
              | None ->
                  Printf.eprintf "error: unknown property %S (known: %s)\n" name
                    (String.concat ", " (Proptest.Oracles.names ()));
                  exit 1)
            names
    in
    let failed = ref false in
    List.iter
      (fun p ->
        let r = Proptest.Runner.run ~seed ~count ~size:max_gates p in
        Format.printf "%a@." Proptest.Runner.pp_result r;
        if r.Proptest.Runner.counterexample <> None then failed := true)
      selected;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based differential testing: random circuits checked \
          against the cross-model oracle suite, with counterexample \
          shrinking.")
    Term.(
      const run $ seed_arg $ count_arg $ property_arg $ max_gates_arg $ obs_term)

(* --- eco: incremental (ECO-style) re-optimization replay --- *)

let eco_cmd =
  let edits_arg =
    let doc =
      "NDJSON edit script: one apply batch per line, either a single edit \
       object or an array of them. Ops: set_input_stats, replace_gate, \
       set_external_load, set_objective (see the performance page)."
    in
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "edits" ] ~docv:"FILE" ~doc)
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Replay the whole script $(docv) times (latency percentiles \
             stabilise with more applies).")
  in
  let check_cold_flag =
    Arg.(
      value & flag
      & info [ "check-cold" ]
          ~doc:
            "After the replay, run a cold full optimization of the final \
             circuit under the final input model and verify the session's \
             settled state is bit-identical (exits 1 on any drift).")
  in
  let run spec scenario seed jobs memo edits_file repeat check_cold out obs =
    with_obs ~cmd:"eco" obs @@ fun pending ->
    record_circuit pending spec;
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("jobs", string_of_int jobs);
        ("memo", string_of_bool memo);
        ("edits", Filename.basename edits_file);
        ("repeat", string_of_int repeat);
      ];
    let circuit = load_circuit spec in
    let ctx = context () in
    let inputs = scenario_inputs ~seed scenario circuit in
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let t0 = Unix.gettimeofday () in
    let sess =
      Incremental.create ~memoize:memo ctx.Experiments.Common.power
        ~delay:ctx.Experiments.Common.delay ~pool circuit ~inputs
    in
    let cold_seconds = Unix.gettimeofday () -. t0 in
    let rep0 = Incremental.report sess in
    let script =
      try Incremental.Script.load ~circuit edits_file
      with Incremental.Edit_error msg ->
        Printf.eprintf "error: %s: %s\n" edits_file msg;
        exit 1
    in
    let batches = List.concat (List.init (max 1 repeat) (fun _ -> script)) in
    let timings =
      try Incremental.replay ~pool sess batches
      with Incremental.Edit_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    Printf.printf "cold run:    %s -> %s (%d gates, %.1f ms)\n"
      (Report.Table.cell_power rep0.Reorder.Optimizer.power_before)
      (Report.Table.cell_power rep0.Reorder.Optimizer.power_after)
      (Netlist.Circuit.gate_count circuit)
      (cold_seconds *. 1e3);
    let applies = List.length timings in
    let edits =
      List.fold_left (fun acc t -> acc + t.Incremental.edits) 0 timings
    in
    let resweeps =
      List.fold_left (fun acc t -> acc + t.Incremental.dirty_gates) 0 timings
    in
    let total =
      List.fold_left (fun acc t -> acc +. t.Incremental.seconds) 0. timings
    in
    Printf.printf "replayed:    %d applies (%d edits, x%d) in %.1f ms\n"
      applies edits (max 1 repeat) (total *. 1e3);
    Printf.printf "re-swept:    %d gates total (%.1f per apply)\n" resweeps
      (if applies = 0 then 0. else float_of_int resweeps /. float_of_int applies);
    let p50, p90, p99 = Incremental.latency_percentiles timings in
    Printf.printf "latency:     p50 %.3f ms   p90 %.3f ms   p99 %.3f ms\n"
      (p50 *. 1e3) (p90 *. 1e3) (p99 *. 1e3);
    if p50 > 0. then
      Printf.printf "speedup:     %.0fx vs the %.1f ms cold run (median apply)\n"
        (cold_seconds /. p50) (cold_seconds *. 1e3);
    (* Settle the session (empty apply) so the archived ledger is the
       final fixed point: before = after = the settled state, which a
       cold run of the final circuit reproduces bit-exactly. *)
    ignore (Incremental.apply ~pool sess []);
    let final = Incremental.report sess in
    Printf.printf "final power: %s\n"
      (Report.Table.cell_power final.Reorder.Optimizer.power_after);
    if check_cold then begin
      let cold =
        Reorder.Optimizer.optimize ctx.Experiments.Common.power
          ~delay:ctx.Experiments.Common.delay
          ~external_load:(Incremental.external_load sess)
          ~objective:(Incremental.objective sess) ~pool
          (Incremental.circuit sess)
          ~inputs:(Incremental.input_stats sess)
      in
      if
        cold.Reorder.Optimizer.configs = final.Reorder.Optimizer.configs
        && cold.Reorder.Optimizer.power_after
           = final.Reorder.Optimizer.power_after
      then print_endline "cold check:  bit-identical"
      else begin
        Printf.eprintf
          "error: cold check failed: cold %.17g W, incremental %.17g W\n"
          cold.Reorder.Optimizer.power_after
          final.Reorder.Optimizer.power_after;
        exit 1
      end
    end;
    Option.iter
      (fun p ->
        Option.iter
          (fun ledger ->
            Runlog.attach p ~name:"ledger" ~json:(Attrib.to_json ledger))
          (Incremental.ledger sess))
      pending;
    Option.iter
      (fun path ->
        Netlist.Io.save (Incremental.circuit sess) path;
        Printf.printf "wrote %s\n" path)
      out
  in
  Cmd.v
    (Cmd.info "eco"
       ~doc:
         "Replay an NDJSON edit script through an incremental \
          re-optimization session: dirty-cone re-sweeps at interactive \
          latency, bit-identical to cold full runs.")
    Term.(
      const run $ circuit_arg $ scenario_arg $ seed_arg $ jobs_arg $ memo_flag
      $ edits_arg $ repeat_arg $ check_cold_flag $ output_arg $ obs_term)

(* --- trace: offline analysis of --trace NDJSON files --- *)

let trace_file_arg =
  let doc = "NDJSON trace file written by --trace." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let load_trace path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "error: no such trace file %S\n" path;
    exit 1
  end;
  match Trace.load path with
  | Ok events -> events
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 1

let trace_report_cmd =
  let top_counters_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Counters shown (by final value).")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Also write the span tree as folded stacks (one \
             \"path;to;span count_ns\" line per frame) for flamegraph \
             tools.")
  in
  let run path top flame =
    let events = load_trace path in
    let tree = Trace.span_tree events in
    print_string (Trace.render_tree tree);
    Option.iter
      (fun target ->
        let oc = open_out target in
        output_string oc (Trace.to_folded tree);
        close_out oc;
        Printf.printf "wrote %s\n" target)
      flame;
    let counters = Trace.final_counters events in
    if counters <> [] then begin
      print_newline ();
      let ranked =
        List.sort (fun (_, a) (_, b) -> compare b a) counters
        |> List.filteri (fun i _ -> i < top)
      in
      let table =
        Report.Table.create
          ~columns:
            [ ("counter", Report.Table.Left); ("final", Report.Table.Right) ]
      in
      List.iter
        (fun (name, v) -> Report.Table.add_row table [ name; string_of_int v ])
        ranked;
      Report.Table.print table
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Span tree (total/self wall-clock per path) and top counters of a \
          trace.")
    Term.(const run $ trace_file_arg $ top_counters_arg $ flame_arg)

let trace_chrome_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace JSON here (default: stdout).")
  in
  let run path out =
    let events = load_trace path in
    let json = Trace.to_chrome events in
    match out with
    | None -> print_endline json
    | Some target ->
        let oc = open_out target in
        output_string oc json;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" target
  in
  Cmd.v
    (Cmd.info "chrome"
       ~doc:
         "Convert a trace to Chrome trace-event JSON (chrome://tracing, \
          Perfetto).")
    Term.(const run $ trace_file_arg $ out_arg)

let trace_telemetry_cmd =
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "OpenMetrics file written by the same run's --metrics flag; \
             strictly parsed and cross-checked against the trace's final \
             counters.")
  in
  let min_heartbeats_arg =
    Arg.(
      value & opt int 1
      & info [ "min-heartbeats" ] ~docv:"N"
          ~doc:"Fail unless the trace holds at least $(docv) heartbeats.")
  in
  let max_sample_ns_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sample-ns" ] ~docv:"NS"
          ~doc:
            "Fail if the final obs.sample_ns counter (total sampler cost) \
             exceeds $(docv).")
  in
  let run path metrics min_heartbeats max_sample_ns =
    let events = load_trace path in
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          Printf.eprintf "FAIL %s\n" msg;
          failed := true)
        fmt
    in
    (* 1. Heartbeat count, percent bounds, per-phase monotonicity. *)
    let heartbeats =
      List.filter_map
        (function
          | Trace.Heartbeat { t; phase; percent; _ } ->
              Some (t, phase, percent)
          | _ -> None)
        events
    in
    let n_heartbeats = List.length heartbeats in
    if n_heartbeats < min_heartbeats then
      fail "expected >= %d heartbeats, trace has %d" min_heartbeats
        n_heartbeats;
    let last_percent : (string, float) Hashtbl.t = Hashtbl.create 7 in
    List.iter
      (fun (t, phase, percent) ->
        if percent < 0. || percent > 100. then
          fail "heartbeat at t=%.3f: percent %.2f outside [0, 100]" t percent;
        (match Hashtbl.find_opt last_percent phase with
        | Some prev when percent < prev ->
            fail
              "heartbeat at t=%.3f: percent %.2f < %.2f within phase %S \
               (not monotone)"
              t percent prev phase
        | _ -> ());
        Hashtbl.replace last_percent phase percent)
      heartbeats;
    (* 2. Final counters vs the OpenMetrics exposition. The sampler's
       own obs.* counters are excluded: the final tick's cost lands
       after that tick read the registry. *)
    let final = Trace.final_counters events in
    (match max_sample_ns with
    | None -> ()
    | Some bound ->
        let v =
          Option.value ~default:0 (List.assoc_opt "obs.sample_ns" final)
        in
        if v > bound then
          fail "obs.sample_ns = %d exceeds --max-sample-ns %d" v bound);
    (match metrics with
    | None -> ()
    | Some mfile ->
        if not (Sys.file_exists mfile) then fail "no such metrics file %S" mfile
        else
          let text = In_channel.with_open_bin mfile In_channel.input_all in
          (match Telemetry.parse_openmetrics text with
          | Error msg -> fail "%s: %s" mfile msg
          | Ok parsed ->
              List.iter
                (fun (name, v) ->
                  if not (String.length name >= 4 && String.sub name 0 4 = "obs.")
                  then begin
                    let family, labels = Telemetry.metric_of_counter name in
                    match
                      Telemetry.metric_value parsed ~labels (family ^ "_total")
                    with
                    | None ->
                        fail "counter %s missing from %s (expected %s_total)"
                          name mfile family
                    | Some mv ->
                        if Float.abs (mv -. float_of_int v) > 0.5 then
                          fail "counter %s: trace says %d, %s says %g" name v
                            mfile mv
                  end)
                final))
    ;
    if !failed then exit 1;
    Printf.printf "ok: %d heartbeats, %d counters consistent%s\n" n_heartbeats
      (List.length final)
      (match metrics with Some m -> " with " ^ m | None -> "")
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Verify a run's live-telemetry outputs: heartbeat count, percent \
          monotonicity per phase, strict OpenMetrics parse and \
          trace-vs-metrics counter agreement. Exit 1 on any violation.")
    Term.(
      const run $ trace_file_arg $ metrics_arg $ min_heartbeats_arg
      $ max_sample_ns_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Analyze NDJSON traces produced by the --trace flag.")
    [ trace_report_cmd; trace_chrome_cmd; trace_telemetry_cmd ]

(* --- top: live (or replayed) view of a telemetry-bearing trace --- *)

type top_state = {
  mutable tp_hb :
    (string * float * float option * (string * float) list * float list) option;
  tp_counters : (string * int, int) Hashtbl.t;
      (** keyed (name, dom); display sums across domains, like
          {!Trace.final_counters} *)
  mutable tp_events : int;
  mutable tp_bad_lines : int;
}

let top_feed st = function
  | Trace.Heartbeat { phase; percent; eta_s; rates; util; _ } ->
      st.tp_events <- st.tp_events + 1;
      st.tp_hb <- Some (phase, percent, eta_s, rates, util)
  | Trace.Counter { name; value; dom; _ } ->
      st.tp_events <- st.tp_events + 1;
      Hashtbl.replace st.tp_counters (name, dom) value
  | Trace.Span_begin _ | Trace.Span_end _ -> st.tp_events <- st.tp_events + 1

let top_bar frac width =
  let frac = Float.max 0. (Float.min 1. frac) in
  let filled = int_of_float ((frac *. float_of_int width) +. 0.5) in
  "[" ^ String.make filled '#' ^ String.make (width - filled) '-' ^ "]"

let top_render ~final st =
  let b = Buffer.create 1024 in
  (match st.tp_hb with
  | None ->
      Buffer.add_string b
        "waiting for heartbeats (run with --metrics or --telemetry)...\n"
  | Some (phase, percent, eta_s, rates, util) ->
      Printf.bprintf b "phase    %s\n" (if phase = "" then "-" else phase);
      Printf.bprintf b "progress %s %5.1f%%%s\n"
        (top_bar (percent /. 100.) 40)
        percent
        (match eta_s with
        | Some e when not final -> Printf.sprintf "  eta %.1fs" e
        | _ -> "");
      List.iteri
        (fun i u ->
          Printf.bprintf b "slot %-3d %s %3.0f%% busy\n" i (top_bar u 20)
            (100. *. u))
        util;
      let is_ns_counter name =
        (* time accumulators (…_ns, par.domain_busy_ns.3): their "rate"
           is just ns-per-second noise, not work throughput *)
        let re = "_ns" in
        let nl = String.length name and rl = String.length re in
        let rec scan i =
          i + rl <= nl && (String.sub name i rl = re || scan (i + 1))
        in
        scan 0
      in
      let ranked =
        List.filter (fun (name, _) -> not (is_ns_counter name)) rates
        |> List.sort (fun (_, a) (_, b) -> compare (b : float) a)
        |> List.filteri (fun i _ -> i < 8)
      in
      if ranked <> [] then begin
        Buffer.add_string b "rates\n";
        List.iter
          (fun (name, r) -> Printf.bprintf b "  %-28s %10.1f /s\n" name r)
          ranked
      end);
  if final then begin
    (* Replay: the run is over, so show where the counters ended up. *)
    let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (name, _dom) v ->
        Hashtbl.replace totals name
          (v + Option.value ~default:0 (Hashtbl.find_opt totals name)))
      st.tp_counters;
    let ranked =
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
      |> List.sort (fun (a, va) (b, vb) ->
             match compare (vb : int) va with 0 -> compare a b | c -> c)
      |> List.filteri (fun i _ -> i < 10)
    in
    if ranked <> [] then begin
      Buffer.add_string b "final counters\n";
      List.iter
        (fun (name, v) -> Printf.bprintf b "  %-28s %10d\n" name v)
        ranked
    end
  end;
  Printf.bprintf b "%d events%s\n" st.tp_events
    (if st.tp_bad_lines > 0 then
       Printf.sprintf " (%d unparseable lines skipped)" st.tp_bad_lines
     else "");
  Buffer.contents b

let top_cmd =
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:"Parse the whole (finished) trace and render one final frame.")
  in
  let interval_arg =
    Arg.(
      value & opt float 0.5
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Poll cadence in live mode (default 0.5).")
  in
  let exit_idle_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "exit-idle" ] ~docv:"SECONDS"
          ~doc:
            "In live mode, exit once the trace has grown no further for \
             $(docv) seconds (default: follow until interrupted).")
  in
  let new_state () =
    {
      tp_hb = None;
      tp_counters = Hashtbl.create 16;
      tp_events = 0;
      tp_bad_lines = 0;
    }
  in
  let run path replay interval exit_idle =
    if replay then begin
      let events = load_trace path in
      let st = new_state () in
      List.iter (top_feed st) events;
      print_string (top_render ~final:true st)
    end
    else begin
      if not (Sys.file_exists path) then begin
        Printf.eprintf "error: no such trace file %S\n" path;
        exit 1
      end;
      let ic = open_in_bin path in
      (* Tail the file through our own line buffer: the writer flushes
         whole lines, but a read can still land mid-line, so complete
         lines are parsed and the remainder is carried to the next
         poll. *)
      let pending = Buffer.create 256 in
      let chunk = Bytes.create 65536 in
      let st = new_state () in
      let idle = ref 0. in
      let stop = ref false in
      while not !stop do
        let grew = ref false in
        let rec drain () =
          let n = input ic chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            grew := true;
            Buffer.add_subbytes pending chunk 0 n;
            drain ()
          end
        in
        drain ();
        let data = Buffer.contents pending in
        Buffer.clear pending;
        let rec split start =
          match String.index_from_opt data start '\n' with
          | Some nl ->
              let line = String.sub data start (nl - start) in
              (if String.trim line <> "" then
                 match Trace.event_of_line line with
                 | Ok ev -> top_feed st ev
                 | Error _ -> st.tp_bad_lines <- st.tp_bad_lines + 1);
              split (nl + 1)
          | None ->
              Buffer.add_substring pending data start
                (String.length data - start)
        in
        split 0;
        if !grew then idle := 0. else idle := !idle +. interval;
        print_string "\027[2J\027[H";
        Printf.printf "treorder top — %s\n\n" path;
        print_string (top_render ~final:false st);
        flush stdout;
        match exit_idle with
        | Some limit when !idle >= limit -> stop := true
        | _ -> Unix.sleepf interval
      done;
      close_in ic
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Watch a run live: tail its --trace NDJSON file and render \
          phase, progress/ETA, per-slot pool utilization and top counter \
          rates in place. With $(b,--replay), render a finished trace's \
          final state once.")
    Term.(const run $ trace_file_arg $ replay_arg $ interval_arg $ exit_idle_arg)

(* --- runs: provenance archives written by --archive --- *)

let fmt_utc epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let resolve_run path =
  match Runlog.resolve path with
  | Ok run -> run
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let runs_list_cmd =
  let dir_arg =
    let doc = "Archive directory (as passed to --archive)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let sort_arg =
    Arg.(
      value
      & opt (enum [ ("time", `Time); ("name", `Name) ]) `Time
      & info [ "sort" ] ~docv:"KEY"
          ~doc:
            "Order: $(b,time) (manifest start time, oldest first — the \
             default) or $(b,name) (run id).")
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Show only the last $(docv) records.")
  in
  let run dir sort limit =
    match Runlog.scan dir with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok [] -> print_endline "no run records"
    | Ok runs ->
        let runs =
          match sort with
          | `Time -> runs (* scan already orders by (started, id) *)
          | `Name ->
              List.sort
                (fun (a : Runlog.run) b ->
                  compare a.Runlog.run_id b.Runlog.run_id)
                runs
        in
        let runs =
          match limit with
          | Some n when n >= 0 ->
              let drop = max 0 (List.length runs - n) in
              List.filteri (fun i _ -> i >= drop) runs
          | _ -> runs
        in
        let table =
          Report.Table.create
            ~columns:
              [
                ("run", Report.Table.Left);
                ("subcommand", Report.Table.Left);
                ("circuit", Report.Table.Left);
                ("started (UTC)", Report.Table.Left);
                ("wall", Report.Table.Right);
                ("attachments", Report.Table.Left);
              ]
        in
        List.iter
          (fun (r : Runlog.run) ->
            let m = r.Runlog.manifest in
            Report.Table.add_row table
              [
                r.Runlog.run_id;
                m.Runlog.subcommand;
                (match List.assoc_opt "circuit" m.Runlog.params with
                | Some c -> c
                | None -> "-");
                fmt_utc m.Runlog.started;
                Report.Table.cell_time (m.Runlog.finished -. m.Runlog.started);
                (match m.Runlog.attachments with
                | [] -> "-"
                | atts -> String.concat "," atts);
              ])
          runs;
        Report.Table.print table
  in
  Cmd.v
    (Cmd.info "list" ~doc:"One line per run record in an archive directory.")
    Term.(const run $ dir_arg $ sort_arg $ limit_arg)

let runs_show_cmd =
  let run_arg =
    let doc = "Run directory, or an archive directory (latest run)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN" ~doc)
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Counters and spans shown (ranked by value / total time).")
  in
  let run path top =
    let r = resolve_run path in
    let m = r.Runlog.manifest in
    Printf.printf "run:         %s\n" r.Runlog.run_id;
    Printf.printf "subcommand:  %s\n" m.Runlog.subcommand;
    Printf.printf "tool:        treorder %s (record v%d)\n" m.Runlog.tool_version
      m.Runlog.version;
    Printf.printf "argv:        %s\n" (String.concat " " m.Runlog.argv);
    Printf.printf "started:     %s\n" (fmt_utc m.Runlog.started);
    Printf.printf "wall:        %s\n"
      (Report.Table.cell_time (m.Runlog.finished -. m.Runlog.started));
    List.iter
      (fun (k, v) -> Printf.printf "param:       %s = %s\n" k v)
      m.Runlog.params;
    List.iter
      (fun (path, sha) -> Printf.printf "input:       %s  sha256 %s\n" path sha)
      m.Runlog.inputs;
    (* The key `runs history` aligns series on: same fingerprint = same
       series (subcommand + params minus jobs + input digests). *)
    Printf.printf "fingerprint: %s\n" (History.series_fingerprint m);
    List.iter
      (fun name -> Printf.printf "attachment:  %s.json\n" name)
      m.Runlog.attachments;
    match Runlog.read_attachment r "snapshot" with
    | Error msg -> Printf.printf "snapshot:    unreadable (%s)\n" msg
    | Ok snap ->
        let take n xs = List.filteri (fun i _ -> i < n) xs in
        let counters =
          Runlog.counters_of_snapshot snap
          |> List.filter (fun (_, v) -> v > 0.)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
          |> take top
        in
        if counters <> [] then begin
          print_newline ();
          let table =
            Report.Table.create
              ~columns:
                [ ("counter", Report.Table.Left); ("value", Report.Table.Right) ]
          in
          List.iter
            (fun (name, v) ->
              Report.Table.add_row table [ name; Printf.sprintf "%.0f" v ])
            counters;
          Report.Table.print table
        end;
        let spans =
          Runlog.spans_of_snapshot snap
          |> List.filter (fun (_, v) -> v > 0.)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
          |> take top
        in
        if spans <> [] then begin
          print_newline ();
          let table =
            Report.Table.create
              ~columns:
                [ ("span", Report.Table.Left); ("total", Report.Table.Right) ]
          in
          List.iter
            (fun (name, v) ->
              Report.Table.add_row table [ name; Report.Table.cell_time v ])
            spans;
          Report.Table.print table
        end
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Render a run record: manifest plus top consumers.")
    Term.(const run $ run_arg $ top_arg)

let runs_diff_cmd =
  let a_arg =
    let doc = "Baseline run (run directory, or archive directory = latest)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let b_arg =
    let doc = "Candidate run (run directory, or archive directory = latest)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let tol_counters_arg =
    Arg.(
      value
      & opt float Regress.default_tolerance.Regress.counter_rtol
      & info [ "tol-counters" ] ~docv:"RTOL"
          ~doc:"Relative tolerance for counter drift.")
  in
  let with_time_arg =
    Arg.(
      value & flag
      & info [ "with-time" ]
          ~doc:
            "Also compare wall-clock (run seconds and span totals); off by \
             default because wall time is machine noise.")
  in
  let rtol_arg =
    Arg.(
      value & opt float 1e-9
      & info [ "rtol" ] ~docv:"RTOL"
          ~doc:
            "Relative tolerance for per-gate power and audit error metrics \
             (the default demands bit-level agreement).")
  in
  let ignore_arg =
    Arg.(
      value & opt_all string []
      & info [ "ignore" ] ~docv:"PREFIX"
          ~doc:
            "Exclude counters whose name starts with $(docv) (repeatable). \
             Timing counters (*_ns) and par.domain_* are always excluded.")
  in
  let run a b tol_counters with_time rtol ignore =
    let ra = resolve_run a and rb = resolve_run b in
    let tol =
      {
        Regress.default_tolerance with
        Regress.counter_rtol = tol_counters;
        Regress.check_time = with_time;
      }
    in
    let d = Runlog.diff ~tol ~rtol ~ignore_counters:ignore ra rb in
    print_string (Runlog.render_diff d);
    if not (Runlog.is_clean d) then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two run records: parameters, input hashes, counters \
          (Regress semantics), per-gate ledger power and configuration \
          flips, audit error drift. Exits 1 when the runs disagree beyond \
          tolerance.")
    Term.(
      const run $ a_arg $ b_arg $ tol_counters_arg $ with_time_arg $ rtol_arg
      $ ignore_arg)

(* --- runs history / report: fleet analytics over archives --- *)

let history_metric_arg =
  Arg.(
    value & opt_all string []
    & info [ "metric"; "m" ] ~docv:"NAME"
        ~doc:
          "Track this metric (repeatable): a counter name, \
           dist.<name>.<stat>, span.<name>, wall_s, ledger.total_before, \
           ledger.total_after, ledger.reduction_pct, audit.<metric> or \
           memo.hit_rate_pct. Default: the headline set.")

let history_threshold_arg =
  Arg.(
    value & opt float 5.0
    & info [ "threshold" ] ~docv:"SIGMA"
        ~doc:
          "CUSUM decision bound in sigma units; lower flags smaller shifts.")

let bench_history_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:
          "Also fold in an append-only bench history \
           (BENCH_history.ndjson); truncated tail lines are skipped with \
           a note.")

let load_history_records ~root ~bench =
  let archived =
    match root with
    | None -> []
    | Some root -> (
        match History.load_archive root with
        | Ok records -> records
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1)
  in
  let benched =
    match bench with
    | None -> []
    | Some path -> (
        match History.load_bench_history path with
        | Ok (records, skipped) ->
            if skipped > 0 then
              Printf.eprintf "note: %s: skipped %d unparseable line%s\n" path
                skipped
                (if skipped = 1 then "" else "s");
            records
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1)
  in
  archived @ benched

(* Drill-down sections for the dashboard: ledger top consumers and the
   audit summary of every archived run that carries them. *)
let details_of_archive ~top root =
  match root with
  | None -> []
  | Some root -> (
      match Runlog.scan root with
      | Error _ -> []
      | Ok runs ->
          List.filter_map
            (fun (r : Runlog.run) ->
              let ledger =
                match
                  Result.bind
                    (Runlog.read_attachment r "ledger")
                    Runlog.ledger_of_json
                with
                | Ok l ->
                    Array.to_list l.Runlog.l_gates
                    |> List.sort (fun (a : Runlog.ledger_gate) b ->
                           compare b.Runlog.g_power_after
                             a.Runlog.g_power_after)
                    |> List.filteri (fun i _ -> i < top)
                    |> List.map (fun (g : Runlog.ledger_gate) ->
                           ( g.Runlog.g_out,
                             g.Runlog.g_cell,
                             g.Runlog.g_power_before,
                             g.Runlog.g_power_after ))
                | Error _ -> []
              in
              let audit =
                match Runlog.read_attachment r "audit" with
                | Ok json -> (
                    match Trace.Json.member "summary" json with
                    | Some (Trace.Json.Obj fields) ->
                        List.filter_map
                          (fun (k, v) ->
                            Option.map
                              (fun x -> (k, x))
                              (Trace.Json.to_float v))
                          fields
                    | _ -> [])
                | Error _ -> []
              in
              if ledger = [] && audit = [] then None
              else
                Some
                  {
                    Html.rd_run = r.Runlog.run_id;
                    rd_ledger = ledger;
                    rd_audit = audit;
                  })
            runs)

(* Every dashboard we write must pass its own validator before it is
   allowed to exist on disk. *)
let write_dashboard ~title ~details ~path report =
  let html = Html.render ~title ~details report in
  (match Html.parse_report html with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "internal error: dashboard fails self-check: %s\n" msg;
      exit 2);
  let oc = open_out_bin path in
  output_string oc html;
  close_out oc

let runs_history_cmd =
  let root_arg =
    let doc = "Archive root (as passed to --archive)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ROOT" ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full report as JSON.")
  in
  let ndjson_arg =
    Arg.(
      value & flag
      & info [ "ndjson" ]
          ~doc:"Emit one NDJSON line per series point and detected shift.")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:
            "Also write the self-contained HTML dashboard to $(docv) \
             (validated with the strict parser before the write counts).")
  in
  let fail_arg =
    Arg.(
      value & flag
      & info [ "fail-on-regression" ]
          ~doc:"Exit 1 when the detector flags at least one regression.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:
            "Regressions listed in the text report, and ledger rows per \
             dashboard drill-down.")
  in
  let run root bench metrics threshold json ndjson html fail top =
    let records = load_history_records ~root:(Some root) ~bench in
    let metrics =
      if metrics = [] then History.default_metrics else metrics
    in
    let report = History.build ~metrics ~threshold records in
    (match html with
    | Some path ->
        write_dashboard ~title:"treorder runs history"
          ~details:(details_of_archive ~top (Some root))
          ~path report
    | None -> ());
    if json then print_string (History.to_json report ^ "\n")
    else if ndjson then print_string (History.to_ndjson report)
    else print_string (History.render ~top report);
    if fail && History.regressions report <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "Cross-run time-series analytics over an archive: per-metric \
          series aligned by series fingerprint, trend summaries, and a \
          deterministic changepoint detector that attributes every shift \
          to the first offending run.")
    Term.(
      const run $ root_arg $ bench_history_arg $ history_metric_arg
      $ history_threshold_arg $ json_arg $ ndjson_arg $ html_arg $ fail_arg
      $ top_arg)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:"Inspect and compare run-provenance archives written by --archive.")
    [ runs_list_cmd; runs_show_cmd; runs_diff_cmd; runs_history_cmd ]

(* --- report: the one-stop dashboard artifact --- *)

let heartbeat_records path =
  match Trace.load path with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok events ->
      let fp = Runlog.sha256_hex ("trace:" ^ Filename.basename path) in
      events
      |> List.filter_map (function
           | Trace.Heartbeat { t; percent; _ } -> Some (t, percent)
           | _ -> None)
      |> List.mapi (fun i (t, percent) ->
             {
               History.r_id = Printf.sprintf "heartbeat-%03d" i;
               r_source = path;
               r_label = "telemetry";
               r_circuit = None;
               r_time = t;
               r_argv = [];
               r_fingerprint = fp;
               r_metrics = [ ("heartbeat.percent", percent) ];
             })

let report_html_cmd =
  let root_arg =
    let doc = "Archive root folded into the dashboard (optional)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ROOT" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt string "treorder_report.html"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Fold the telemetry heartbeats of an NDJSON trace in as a \
             progress series.")
  in
  let title_arg =
    Arg.(
      value
      & opt string "treorder report"
      & info [ "title" ] ~docv:"TITLE" ~doc:"Dashboard title.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Ledger rows per drill-down section.")
  in
  let run root bench trace metrics threshold out title top =
    let records =
      load_history_records ~root ~bench
      @ (match trace with Some p -> heartbeat_records p | None -> [])
    in
    if records = [] then begin
      Printf.eprintf
        "error: nothing to report (give ROOT, --bench or --trace)\n";
      exit 1
    end;
    let metrics =
      if metrics = [] then History.default_metrics @ [ "heartbeat.percent" ]
      else metrics
    in
    let report = History.build ~metrics ~threshold records in
    write_dashboard ~title ~details:(details_of_archive ~top root) ~path:out
      report;
    let n_series =
      List.fold_left
        (fun acc (g : History.group) -> acc + List.length g.g_series)
        0 report.History.groups
    in
    Printf.printf "wrote %s (%d groups, %d series, %d regressions)\n" out
      (List.length report.History.groups)
      n_series
      (List.length (History.regressions report))
  in
  Cmd.v
    (Cmd.info "html"
       ~doc:
         "Write the self-contained HTML dashboard: history series with \
          sparklines, ranked regressions, per-run ledger/audit drill-downs \
          and (with --trace) telemetry heartbeats — one file, no external \
          assets, validated by the strict parser before the write counts.")
    Term.(
      const run $ root_arg $ bench_history_arg $ trace_arg
      $ history_metric_arg $ history_threshold_arg $ out_arg $ title_arg
      $ top_arg)

let report_check_cmd =
  let file_arg =
    let doc = "Dashboard file to validate." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let text =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    match Html.parse_report text with
    | Ok p ->
        Printf.printf "ok: %d series, %d drill-downs\n"
          (List.length p.Html.pr_series)
          (List.length p.Html.pr_details)
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Re-validate a dashboard file with the strict parser (DOCTYPE, \
          eof terminator, single JSON payload, no external assets, \
          sparkline/payload agreement). Exits 1 on any violation.")
    Term.(const run $ file_arg)

let report_cmd =
  Cmd.group
    (Cmd.info "report"
       ~doc:"Produce and validate the self-contained observability dashboard.")
    [ report_html_cmd; report_check_cmd ]

(* --- table3 --- *)

let table3_cmd =
  let run scenario seed horizon obs =
    with_obs ~cmd:"table3" obs @@ fun pending ->
    record_params pending
      [
        ("scenario", scenario);
        ("seed", string_of_int seed);
        ("horizon", string_of_float horizon);
      ];
    let ctx = context () in
    let t =
      Experiments.Table3.run ctx ~seed ~sim_horizon:horizon
        (parse_scenario scenario)
    in
    print_string (Experiments.Table3.render t)
  in
  Cmd.v
    (Cmd.info "table3"
       ~doc:"Reproduce Table 3 (best-vs-worst over the benchmark suite).")
    Term.(const run $ scenario_arg $ seed_arg $ horizon_arg $ obs_term)

let main =
  let doc = "transistor reordering for low-power CMOS (Musoll & Cortadella, DATE 1996)" in
  Cmd.group
    (Cmd.info "treorder" ~version ~doc)
    [
      list_cmd;
      gates_cmd;
      stats_cmd;
      estimate_cmd;
      optimize_cmd;
      simulate_cmd;
      audit_cmd;
      delay_cmd;
      check_cmd;
      show_cmd;
      dot_cmd;
      spice_cmd;
      map_cmd;
      trace_cmd;
      top_cmd;
      runs_cmd;
      report_cmd;
      fuzz_cmd;
      eco_cmd;
      profile_cmd;
      glitch_cmd;
      accuracy_cmd;
      table3_cmd;
    ]

let () = exit (Cmd.eval main)
