(* Tests for the live-telemetry sampler: ring bounds and eviction, rate
   derivation against hand-computed deltas, the OpenMetrics rendering
   through its own strict parser, session lifecycle idempotence, the
   zero-cost-when-off guarantee, and the progress model. *)

let counter_in (s : Telemetry.sample) name =
  match
    Array.find_opt (fun (n, _) -> n = name) s.Telemetry.s_counters
  with
  | Some (_, v) -> Some v
  | None -> None

(* --- zero cost when the sampler never starts --- *)

let test_zero_cost_when_off () =
  Obs.reset ();
  Alcotest.(check bool) "not running" false (Telemetry.running ());
  let c = Obs.counter "tel.test_workload" in
  for _ = 1 to 1000 do
    Obs.incr c
  done;
  Alcotest.(check int) "obs.sample_ns untouched" 0
    (Obs.value (Obs.counter "obs.sample_ns"))

(* --- ring bounds and eviction --- *)

let test_ring_eviction () =
  Obs.reset ();
  Telemetry.start ~interval:0. ~capacity:4 ();
  let c = Obs.counter "tel.test_ring" in
  for _ = 1 to 6 do
    Obs.incr c;
    ignore (Telemetry.sample_now ())
  done;
  let series = Telemetry.series () in
  Alcotest.(check int) "ring holds capacity" 4 (List.length series);
  Alcotest.(check (list int)) "oldest evicted, order kept" [ 3; 4; 5; 6 ]
    (List.map
       (fun s -> Option.value ~default:(-1) (counter_in s "tel.test_ring"))
       series);
  let times = List.map (fun s -> s.Telemetry.s_time) series in
  Alcotest.(check bool) "timestamps non-decreasing" true
    (List.for_all2 (fun a b -> a <= b) times (List.tl times @ [ infinity ]));
  Telemetry.stop ();
  (* stop takes one final forced sample, evicting one more entry *)
  Alcotest.(check int) "ring readable after stop" 4
    (List.length (Telemetry.series ()));
  match Telemetry.last () with
  | None -> Alcotest.fail "no final sample"
  | Some s ->
      Alcotest.(check (option int)) "final sample sees final value" (Some 6)
        (counter_in s "tel.test_ring")

(* --- rate derivation --- *)

let test_rates_of () =
  let prev = [| ("a", 10); ("b", 5) |] in
  let cur = [| ("a", 20); ("b", 5); ("c", 7) |] in
  Alcotest.(check (list (pair string (float 1e-9))))
    "hand-computed per-second deltas"
    [ ("a", 5.0); ("b", 0.0); ("c", 3.5) ]
    (Array.to_list (Telemetry.rates_of ~prev ~dt:2.0 cur));
  Alcotest.(check (list (pair string (float 1e-9))))
    "dt <= 0 yields zero rates"
    [ ("a", 0.0); ("b", 0.0); ("c", 0.0) ]
    (Array.to_list (Telemetry.rates_of ~prev ~dt:0. cur));
  Alcotest.(check (list (pair string (float 1e-9))))
    "negative delta (reset between samples) clamps to zero"
    [ ("a", 0.0) ]
    (Array.to_list
       (Telemetry.rates_of ~prev:[| ("a", 100) |] ~dt:1.0 [| ("a", 10) |]))

(* --- OpenMetrics naming --- *)

let test_metric_of_counter () =
  Alcotest.(check (pair string (list (pair string string))))
    "plain counter maps 1:1"
    ("treorder_power_gate_powers", [])
    (Telemetry.metric_of_counter "power.gate_powers");
  Alcotest.(check (pair string (list (pair string string))))
    "per-slot pool counter folds into a slot label"
    ("treorder_par_domain_busy_ns", [ ("slot", "3") ])
    (Telemetry.metric_of_counter "par.domain_busy_ns.3");
  Alcotest.(check (pair string (list (pair string string))))
    "non-numeric suffix is not a slot"
    ("treorder_par_domain_busy_ns_x", [])
    (Telemetry.metric_of_counter "par.domain_busy_ns.x")

(* --- rendering round-trips through the strict parser --- *)

let test_openmetrics_roundtrip () =
  Obs.reset ();
  Telemetry.start ~interval:0. ();
  let a = Obs.counter "tel.test_rt_a" in
  let slot = Obs.counter "par.domain_busy_ns.2" in
  Obs.add a 42;
  Obs.add slot 1234;
  Obs.observe (Obs.distribution "tel.test_rt_dist") 3.5;
  Telemetry.progress_begin ~phase:"tel.test" ~total:10;
  Telemetry.progress_tick ~n:4 ();
  let s =
    match Telemetry.sample_now () with
    | Some s -> s
    | None -> Alcotest.fail "sampler not running"
  in
  Telemetry.stop ();
  let text = Telemetry.to_openmetrics s in
  match Telemetry.parse_openmetrics text with
  | Error e -> Alcotest.fail ("renderer output rejected: " ^ e)
  | Ok metrics ->
      Alcotest.(check (option (float 1e-9)))
        "counter value survives" (Some 42.)
        (Telemetry.metric_value metrics "treorder_tel_test_rt_a_total");
      Alcotest.(check (option (float 1e-9)))
        "slot-labelled counter survives" (Some 1234.)
        (Telemetry.metric_value metrics
           ~labels:[ ("slot", "2") ]
           "treorder_par_domain_busy_ns_total");
      Alcotest.(check (option (float 1e-9)))
        "distribution median survives" (Some 3.5)
        (Telemetry.metric_value metrics
           ~labels:[ ("quantile", "0.5") ]
           "treorder_dist_tel_test_rt_dist");
      Alcotest.(check (option (float 1e-9)))
        "progress percent survives" (Some 40.)
        (Telemetry.metric_value metrics
           ~labels:[ ("phase", "tel.test") ]
           "treorder_progress_percent")

let test_parser_rejects_malformed () =
  let reject doc name =
    match Telemetry.parse_openmetrics doc with
    | Ok _ -> Alcotest.fail (name ^ ": accepted a malformed document")
    | Error _ -> ()
  in
  reject "# TYPE treorder_x counter\ntreorder_x_total 1\n" "missing # EOF";
  reject "treorder_x_total 1\n# EOF\n" "sample without # TYPE";
  reject "# TYPE treorder_x counter\ntreorder_x 1\n# EOF\n"
    "counter sample without _total";
  reject "# TYPE treorder_x gauge\ntreorder_x 1\n# EOF\nleftover\n"
    "content after # EOF";
  reject "# TYPE 9bad gauge\n# EOF\n" "invalid metric name";
  reject "# TYPE treorder_x gauge\ntreorder_x{slot=2} 1\n# EOF\n"
    "unquoted label value";
  match
    Telemetry.parse_openmetrics "# TYPE treorder_x gauge\ntreorder_x 1\n# EOF\n"
  with
  | Ok [ m ] ->
      Alcotest.(check (float 1e-9)) "well-formed doc parses" 1. m.Telemetry.m_value
  | Ok _ | Error _ -> Alcotest.fail "well-formed document rejected"

(* --- lifecycle idempotence --- *)

let test_start_stop_idempotent () =
  Obs.reset ();
  Telemetry.start ~interval:0. ~capacity:8 ();
  Telemetry.start ~interval:0. ~capacity:8 ();
  (* second start is a no-op *)
  Alcotest.(check bool) "running" true (Telemetry.running ());
  ignore (Telemetry.sample_now ());
  Telemetry.stop ();
  Telemetry.stop ();
  (* second stop is a no-op *)
  Alcotest.(check bool) "stopped" false (Telemetry.running ());
  Alcotest.(check int) "manual tick + forced final sample" 2
    (List.length (Telemetry.series ()));
  (* a fresh session starts with an empty ring *)
  Telemetry.start ~interval:0. ~capacity:8 ();
  Alcotest.(check (list reject)) "fresh session, empty ring" []
    (List.map (fun _ -> ()) (Telemetry.series ()));
  ignore (Telemetry.sample_now ());
  Telemetry.stop ();
  Alcotest.(check int) "restarted session has its own samples" 2
    (List.length (Telemetry.series ()))

(* --- background sampler actually ticks --- *)

let test_background_sampler () =
  Obs.reset ();
  Telemetry.start ~interval:0.005 ~capacity:64 ();
  Unix.sleepf 0.05;
  Telemetry.stop ();
  let n = List.length (Telemetry.series ()) in
  Alcotest.(check bool)
    (Printf.sprintf "several background samples (got %d)" n)
    true (n >= 3);
  Alcotest.(check bool) "sampler cost self-measured" true
    (Obs.value (Obs.counter "obs.sample_ns") > 0)

(* --- progress model --- *)

let test_progress () =
  Telemetry.progress_begin ~phase:"tel.prog" ~total:10;
  let p0 = Telemetry.progress () in
  Alcotest.(check string) "phase" "tel.prog" p0.Telemetry.phase;
  Alcotest.(check (float 1e-9)) "starts at 0%" 0. p0.Telemetry.percent;
  Alcotest.(check bool) "no ETA before the first tick" true
    (p0.Telemetry.eta_s = None);
  Telemetry.progress_tick ();
  Telemetry.progress_tick ~n:4 ();
  let p1 = Telemetry.progress () in
  Alcotest.(check int) "done" 5 p1.Telemetry.done_;
  Alcotest.(check (float 1e-9)) "midway" 50. p1.Telemetry.percent;
  (match p1.Telemetry.eta_s with
  | Some eta -> Alcotest.(check bool) "ETA non-negative" true (eta >= 0.)
  | None -> Alcotest.fail "no ETA after ticks");
  Telemetry.progress_tick ~n:100 ();
  let p2 = Telemetry.progress () in
  Alcotest.(check int) "overshoot clamps to total" 10 p2.Telemetry.done_;
  Alcotest.(check (float 1e-9)) "percent clamps to 100" 100.
    p2.Telemetry.percent;
  Alcotest.(check (option (float 1e-9))) "ETA 0 when complete" (Some 0.)
    p2.Telemetry.eta_s;
  Telemetry.progress_begin ~phase:"tel.empty" ~total:0;
  let p3 = Telemetry.progress () in
  Alcotest.(check (float 1e-9)) "zero total reads 0%" 0. p3.Telemetry.percent

let () =
  Alcotest.run "telemetry"
    [
      ( "sampler",
        [
          Alcotest.test_case "zero cost when off" `Quick test_zero_cost_when_off;
          Alcotest.test_case "ring bounds and eviction" `Quick
            test_ring_eviction;
          Alcotest.test_case "start/stop idempotence" `Quick
            test_start_stop_idempotent;
          Alcotest.test_case "background sampler ticks" `Quick
            test_background_sampler;
        ] );
      ( "derivations",
        [
          Alcotest.test_case "rates vs hand-computed deltas" `Quick
            test_rates_of;
          Alcotest.test_case "progress percent and ETA" `Quick test_progress;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "counter-to-metric naming" `Quick
            test_metric_of_counter;
          Alcotest.test_case "rendering round-trips" `Quick
            test_openmetrics_roundtrip;
          Alcotest.test_case "strict parser rejects malformed" `Quick
            test_parser_rejects_malformed;
        ] );
    ]
