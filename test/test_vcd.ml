(* Tests for the VCD writer/reader pair: documents round-trip through
   the tolerant parser, hierarchy is preserved in full names, and the
   reader survives truncation, foreign sections and vector changes. *)

let write f =
  let buf = Buffer.create 256 in
  f (Buffer.add_string buf);
  Buffer.contents buf

let parse_ok text =
  match Vcd.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_writer_roundtrip () =
  let text =
    write (fun emit ->
        let w = Vcd.create ~emit () in
        Vcd.open_scope w "top";
        let a = Vcd.add_var w "a" in
        let b = Vcd.add_var w "b" in
        Vcd.close_scope w;
        Vcd.enddefinitions w;
        Vcd.change w ~time:0 a Vcd.V0;
        Vcd.change w ~time:0 b Vcd.V1;
        Vcd.change w ~time:5 a Vcd.V1;
        Vcd.change w ~time:9 a Vcd.V0;
        Vcd.change w ~time:9 b Vcd.VX;
        Vcd.finish w ~time:20)
  in
  let t = parse_ok text in
  Alcotest.(check (option string)) "timescale" (Some "1 ps") t.Vcd.timescale;
  Alcotest.(check int) "two vars" 2 (List.length t.Vcd.vars);
  Alcotest.(check (list (pair string int)))
    "toggles count strict 0-1 transitions only"
    [ ("top.a", 2); ("top.b", 0) ]
    (Vcd.toggle_counts t);
  Alcotest.(check bool) "a ends low" true
    (List.assoc "top.a" (Vcd.final_values t) = Vcd.V0);
  Alcotest.(check bool) "b ends unknown" true
    (List.assoc "top.b" (Vcd.final_values t) = Vcd.VX)

let test_hierarchy_names () =
  let text =
    write (fun emit ->
        let w = Vcd.create ~emit () in
        Vcd.open_scope w "chip";
        let y = Vcd.add_var w "y" in
        Vcd.open_scope w "g0_nand2";
        let n0 = Vcd.add_var w "n0" in
        Vcd.close_scope w;
        Vcd.close_scope w;
        Vcd.enddefinitions w;
        Vcd.change w ~time:1 y Vcd.V1;
        Vcd.change w ~time:2 n0 Vcd.V0)
  in
  let t = parse_ok text in
  Alcotest.(check bool) "nested full name" true
    (Vcd.find_var t "chip.g0_nand2.n0" <> None);
  Alcotest.(check bool) "top-level full name" true
    (Vcd.find_var t "chip.y" <> None);
  Alcotest.(check bool) "absent name" true (Vcd.find_var t "chip.n0" = None)

let test_writer_validation () =
  let w = Vcd.create ~emit:ignore () in
  Vcd.open_scope w "s";
  let v = Vcd.add_var w "v" in
  Alcotest.check_raises "unclosed scope"
    (Invalid_argument "Vcd.enddefinitions: unclosed scope") (fun () ->
      Vcd.enddefinitions w);
  Vcd.close_scope w;
  Vcd.enddefinitions w;
  Alcotest.check_raises "defs closed"
    (Invalid_argument "Vcd.add_var: definitions are closed") (fun () ->
      ignore (Vcd.add_var w "late"));
  Vcd.change w ~time:4 v Vcd.V1;
  Alcotest.check_raises "time goes backwards"
    (Invalid_argument "Vcd.change: time went backwards") (fun () ->
      Vcd.change w ~time:3 v Vcd.V0)

let test_reader_tolerance () =
  (* Foreign sections, vector and real changes, and truncation: the
     reader keeps everything it can make sense of. *)
  let text =
    "$version some other tool $end\n\
     $fancy_extension ignore me entirely $end\n\
     $timescale 10 ns $end\n\
     $scope module m $end\n\
     $var wire 1 ! clk $end\n\
     $var wire 4 \" bus $end\n\
     $var real 8 # temp $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #0\n\
     0!\n\
     b0000 \"\n\
     r1.5 #\n\
     #10\n\
     1!\n\
     b0001 \"\n\
     #20\n\
     0!\n\
     bxx10 \"\n\
     #30\n\
     1!"
  in
  let t = parse_ok text in
  Alcotest.(check (option string)) "timescale" (Some "10 ns") t.Vcd.timescale;
  Alcotest.(check int) "three vars" 3 (List.length t.Vcd.vars);
  Alcotest.(check int) "clk toggles, truncated tail included" 3
    (List.assoc "m.clk" (Vcd.toggle_counts t));
  (* Vector values collapse: 0000 -> 0, 0001 -> 1, xx10 -> x. *)
  Alcotest.(check int) "bus saw one 0-to-1" 1
    (List.assoc "m.bus" (Vcd.toggle_counts t));
  Alcotest.(check bool) "bus ends unknown" true
    (List.assoc "m.bus" (Vcd.final_values t) = Vcd.VX);
  Alcotest.(check bool) "garbage is an error" true
    (Result.is_error (Vcd.parse "not a vcd file at all"))

let test_dumpvars_initialization () =
  let text =
    write (fun emit ->
        let w = Vcd.create ~emit () in
        Vcd.open_scope w "t";
        let a = Vcd.add_var w "a" in
        Vcd.close_scope w;
        Vcd.enddefinitions w;
        Vcd.change w ~time:3 a Vcd.V1)
  in
  let t = parse_ok text in
  (* The $dumpvars block initializes to x at time 0, so the single rise
     is x->1: no strict toggle. *)
  Alcotest.(check int) "x->1 is not a toggle" 0
    (List.assoc "t.a" (Vcd.toggle_counts t));
  Alcotest.(check bool) "but the final value is known" true
    (List.assoc "t.a" (Vcd.final_values t) = Vcd.V1)

let () =
  Alcotest.run "vcd"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "write then read" `Quick test_writer_roundtrip;
          Alcotest.test_case "hierarchy names" `Quick test_hierarchy_names;
          Alcotest.test_case "dumpvars initialization" `Quick
            test_dumpvars_initialization;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "writer validation" `Quick test_writer_validation;
          Alcotest.test_case "reader tolerance" `Quick test_reader_tolerance;
        ] );
    ]
