(* Tests for the observability registry: counter/reset semantics, span
   nesting and exception safety, NDJSON validity of the trace sink, the
   zero-allocation disabled path, and the §4.2 once-per-net density
   counter invariant over the real pipeline. *)

(* --- a minimal JSON validity checker (objects, arrays, strings with
   escapes, numbers, literals) so NDJSON lines can be asserted valid
   without an external parser dependency --- *)

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d in %s" msg !pos s)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some _ | None -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word =
    String.iter expect word
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | Some _ | None -> fail "bad \\u escape"
              done;
              go ()
          | Some _ | None -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | Some _ | None -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | Some _ | None -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | Some _ | None -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | Some _ | None -> ());
        digits ()
    | Some _ | None -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | Some _ | None -> fail "expected , or }"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | Some _ | None -> fail "expected , or ]"
          in
          elements ()
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some _ | None -> fail "expected value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let check_valid_json what s =
  match parse_json s with
  | () -> ()
  | exception Bad msg -> Alcotest.failf "%s: invalid JSON: %s" what msg

(* --- counters and reset --- *)

let test_counter_basics () =
  Obs.reset ();
  let c = Obs.counter "test.basic" in
  Alcotest.(check int) "starts at 0" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 3;
  Alcotest.(check int) "2 incr + add 3" 5 (Obs.value c);
  Alcotest.(check int) "same name, same counter" 5
    (Obs.value (Obs.counter "test.basic"));
  Alcotest.check_raises "negative delta rejected"
    (Invalid_argument "Obs.add: negative delta") (fun () ->
      Obs.add c (-1));
  Alcotest.(check int) "visible in snapshot" 5
    (Obs.counter_value (Obs.snapshot ()) "test.basic");
  Obs.reset ();
  Alcotest.(check int) "reset zeroes the value" 0 (Obs.value c);
  Alcotest.(check int) "old handle still registered" 0
    (Obs.counter_value (Obs.snapshot ()) "test.basic");
  Obs.incr c;
  Alcotest.(check int) "handle usable after reset" 1 (Obs.value c)

let test_counter_value_absent () =
  Alcotest.(check int) "missing name reads 0" 0
    (Obs.counter_value (Obs.snapshot ()) "test.never_registered")

let test_distribution () =
  Obs.reset ();
  let d = Obs.distribution "test.dist" in
  List.iter (Obs.observe d) [ 3.; -1.; 7.; 2. ];
  let snap = Obs.snapshot () in
  let stats = List.assoc "test.dist" snap.Obs.distributions in
  Alcotest.(check int) "count" 4 stats.Obs.count;
  Alcotest.(check (float 1e-9)) "sum" 11. stats.Obs.sum;
  Alcotest.(check (float 1e-9)) "min" (-1.) stats.Obs.min;
  Alcotest.(check (float 1e-9)) "max" 7. stats.Obs.max;
  Obs.reset ();
  let stats = List.assoc "test.dist" (Obs.snapshot ()).Obs.distributions in
  Alcotest.(check int) "reset count" 0 stats.Obs.count

(* --- spans --- *)

let test_span_nesting_depth () =
  Obs.reset ();
  Alcotest.(check int) "depth 0 outside" 0 (Obs.depth ());
  let inner_depth = ref (-1) and outer_depth = ref (-1) in
  let result =
    Obs.span "test.outer" (fun () ->
        outer_depth := Obs.depth ();
        Obs.span "test.inner" (fun () -> inner_depth := Obs.depth ());
        17)
  in
  Alcotest.(check int) "span returns the body's value" 17 result;
  Alcotest.(check int) "depth 1 inside outer" 1 !outer_depth;
  Alcotest.(check int) "depth 2 inside inner" 2 !inner_depth;
  Alcotest.(check int) "depth restored" 0 (Obs.depth ())

let test_span_aggregation () =
  Obs.reset ();
  for _ = 1 to 3 do
    Obs.span "test.agg" (fun () -> ())
  done;
  let snap = Obs.snapshot () in
  let s = List.assoc "test.agg" snap.Obs.spans in
  Alcotest.(check int) "3 calls" 3 s.Obs.calls;
  Alcotest.(check bool) "total >= 0" true (s.Obs.total >= 0.);
  Alcotest.(check bool) "slowest <= total" true (s.Obs.slowest <= s.Obs.total +. 1e-12)

let test_span_exception_safety () =
  Obs.reset ();
  (try Obs.span "test.raise" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "depth restored after raise" 0 (Obs.depth ());
  let s = List.assoc "test.raise" (Obs.snapshot ()).Obs.spans in
  Alcotest.(check int) "raising call still recorded" 1 s.Obs.calls

(* --- NDJSON sink --- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_ndjson_sink () =
  Obs.reset ();
  let path = Filename.temp_file "obs_test" ".ndjson" in
  Obs.set_sink (Obs.file_sink path);
  Alcotest.(check bool) "tracing on" true (Obs.tracing ());
  let c = Obs.counter "test.traced \"name\"" in
  Obs.incr c;
  Obs.span "test.span" (fun () -> Obs.sample c);
  Obs.close_sink ();
  Alcotest.(check bool) "tracing off after close" false (Obs.tracing ());
  let lines = read_lines path in
  Alcotest.(check bool) "several events written" true (List.length lines >= 3);
  List.iter (check_valid_json "trace line") lines;
  let has needle =
    List.exists
      (fun line ->
        (* substring search *)
        let ln = String.length needle in
        let rec at i =
          i + ln <= String.length line
          && (String.sub line i ln = needle || at (i + 1))
        in
        at 0)
      lines
  in
  Alcotest.(check bool) "span_begin present" true (has "\"span_begin\"");
  Alcotest.(check bool) "span_end present" true (has "\"span_end\"");
  Alcotest.(check bool) "counter sample present" true (has "\"counter\"");
  Alcotest.(check bool) "escaped counter name present" true
    (has "\"test.traced \\\"name\\\"\"");
  Sys.remove path

let test_ndjson_timestamps_monotonic () =
  Obs.reset ();
  let path = Filename.temp_file "obs_test_t" ".ndjson" in
  Obs.set_sink (Obs.file_sink path);
  for _ = 1 to 5 do
    Obs.span "test.t" (fun () -> ())
  done;
  Obs.close_sink ();
  (* crude extraction of the "t": field from each line *)
  let t_of line =
    let key = "\"t\":" in
    let ln = String.length key in
    let rec find i =
      if i + ln > String.length line then None
      else if String.sub line i ln = key then Some (i + ln)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        while
          !stop < String.length line
          && (match line.[!stop] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr stop
        done;
        Some (float_of_string (String.sub line start (!stop - start)))
  in
  let ts = List.filter_map t_of (read_lines path) in
  Alcotest.(check bool) "timestamps extracted" true (List.length ts >= 10);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (nondecreasing ts);
  Alcotest.(check bool) "timestamps non-negative" true
    (List.for_all (fun t -> t >= 0.) ts);
  Sys.remove path

let test_disabled_sink_allocates_nothing () =
  Obs.reset ();
  Alcotest.(check bool) "null sink by default" false (Obs.tracing ());
  let c = Obs.counter "test.hot" in
  (* Warm up so the counter exists and the code paths are compiled in. *)
  Obs.incr c;
  let before = Gc.allocated_bytes () in
  for _ = 1 to 10_000 do
    Obs.incr c
  done;
  let after = Gc.allocated_bytes () in
  (* The two allocated_bytes calls box a float each; the 10k increments
     themselves must allocate nothing. *)
  Alcotest.(check bool) "incr with null sink allocates no events" true
    (after -. before < 256.);
  Alcotest.(check int) "increments happened" 10_001 (Obs.value c)

let test_snapshot_json () =
  Obs.reset ();
  let c = Obs.counter "test.json" in
  Obs.add c 42;
  Obs.observe (Obs.distribution "test.json_dist") 1.5;
  Obs.span "test.json_span" (fun () -> ());
  let json = Obs.snapshot_to_json (Obs.snapshot ()) in
  check_valid_json "snapshot" json

(* --- domain safety --- *)

let test_counter_concurrent_increments () =
  Obs.reset ();
  let c = Obs.counter "test.concurrent" in
  let domains = 4 and per_domain = 25_000 in
  let worker () =
    for _ = 1 to per_domain do
      Obs.incr c
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join spawned;
  (* Atomic increments commute: the total is exact, not approximate. *)
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Obs.value c)

let test_distribution_buffer_merge () =
  Obs.reset ();
  let d = Obs.distribution "test.buffered" in
  Obs.observe d 1.;
  let b = Obs.buffer () in
  Alcotest.(check int) "fresh buffer empty" 0 (Obs.buffer_length b);
  Obs.record b 2.;
  Obs.record b 3.;
  Alcotest.(check int) "records accumulate" 2 (Obs.buffer_length b);
  (* Not yet visible: buffered samples only land on merge. *)
  let stats () = List.assoc "test.buffered" (Obs.snapshot ()).Obs.distributions in
  Alcotest.(check int) "buffer invisible before merge" 1 (stats ()).Obs.count;
  Obs.merge d b;
  let s = stats () in
  Alcotest.(check int) "merged count" 3 s.Obs.count;
  Alcotest.(check (float 1e-9)) "merged sum" 6. s.Obs.sum;
  Alcotest.(check (float 1e-9)) "merged max" 3. s.Obs.max

let test_distribution_concurrent_buffers () =
  Obs.reset ();
  let d = Obs.distribution "test.par_dist" in
  let domains = 4 and per_domain = 1_000 in
  let worker k () =
    let b = Obs.buffer () in
    for i = 1 to per_domain do
      Obs.record b (float_of_int ((k * per_domain) + i))
    done;
    Obs.merge d b
  in
  let spawned = List.init domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join spawned;
  let s = List.assoc "test.par_dist" (Obs.snapshot ()).Obs.distributions in
  let n = domains * per_domain in
  Alcotest.(check int) "every sample merged" n s.Obs.count;
  Alcotest.(check (float 1e-6)) "sum exact"
    (float_of_int (n * (n + 1)) /. 2.)
    s.Obs.sum

let test_domain_tagging () =
  Obs.reset ();
  Alcotest.(check int) "main domain is lane 0" 0 (Obs.domain_lane ());
  Alcotest.(check int) "lane is sticky" (Obs.domain_lane ())
    (Obs.domain_lane ());
  let path = Filename.temp_file "obs_test_dom" ".ndjson" in
  Obs.set_sink (Obs.file_sink path);
  Obs.span "test.main_side" (fun () -> ());
  let worker_lane =
    Domain.join
      (Domain.spawn (fun () ->
           Obs.span "test.worker_side" (fun () -> ());
           Obs.domain_lane ()))
  in
  Obs.close_sink ();
  Alcotest.(check bool) "worker claims a distinct lane" true (worker_lane > 0);
  let lines = read_lines path in
  Sys.remove path;
  let dom_of line =
    (* every event line ends ...,"dom":N} *)
    match String.rindex_opt line ':' with
    | Some i ->
        int_of_string (String.sub line (i + 1) (String.length line - i - 2))
    | None -> Alcotest.failf "no dom field in %s" line
  in
  let has_sub line needle =
    let ln = String.length needle in
    let rec at i =
      i + ln <= String.length line
      && (String.sub line i ln = needle || at (i + 1))
    in
    at 0
  in
  List.iter
    (fun line ->
      if has_sub line "test.main_side" then
        Alcotest.(check int) "main events tagged dom 0" 0 (dom_of line)
      else if has_sub line "test.worker_side" then
        Alcotest.(check int) "worker events tagged with its lane" worker_lane
          (dom_of line))
    lines;
  Alcotest.(check bool) "every line carries a dom field" true
    (List.for_all (fun l -> has_sub l "\"dom\":") lines)

(* --- pipeline integration: the §4.2 invariant --- *)

let test_densities_once_per_net () =
  Obs.reset ();
  let pt = Power.Model.table Cell.Process.default in
  let dt = Delay.Elmore.table Cell.Process.default in
  let circuit = Circuits.Suite.find "rca4" in
  let inputs _net = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
  let gates = Netlist.Circuit.gate_count circuit in
  Obs.reset ();
  let (_ : Power.Analysis.t) = Power.Analysis.run pt circuit ~inputs in
  Alcotest.(check int) "analysis propagates each gate's density once" gates
    (Obs.counter_value (Obs.snapshot ()) "power.densities_propagated");
  (* The whole greedy optimization still needs exactly one propagation
     per net: statistics are configuration-independent (§4.2). *)
  Obs.reset ();
  let (_ : Reorder.Optimizer.report) =
    Reorder.Optimizer.optimize pt ~delay:dt circuit ~inputs
  in
  let snap = Obs.snapshot () in
  Alcotest.(check int) "optimize propagates each density exactly once" gates
    (Obs.counter_value snap "power.densities_propagated");
  Alcotest.(check bool) "gates visited" true
    (Obs.counter_value snap "optimizer.gates_visited" = gates);
  Alcotest.(check bool) "configurations explored" true
    (Obs.counter_value snap "optimizer.configs_explored" > 0);
  Alcotest.(check bool) "bdd memo hits observed" true
    (Obs.counter_value snap "bdd.memo_hit" > 0)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics + reset" `Quick test_counter_basics;
          Alcotest.test_case "absent counter reads 0" `Quick
            test_counter_value_absent;
          Alcotest.test_case "distribution stats" `Quick test_distribution;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting depth" `Quick test_span_nesting_depth;
          Alcotest.test_case "aggregation" `Quick test_span_aggregation;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "trace",
        [
          Alcotest.test_case "NDJSON lines are valid JSON" `Quick
            test_ndjson_sink;
          Alcotest.test_case "timestamps monotonic" `Quick
            test_ndjson_timestamps_monotonic;
          Alcotest.test_case "disabled sink allocates nothing" `Quick
            test_disabled_sink_allocates_nothing;
          Alcotest.test_case "snapshot JSON valid" `Quick test_snapshot_json;
        ] );
      ( "domains",
        [
          Alcotest.test_case "concurrent counter increments exact" `Quick
            test_counter_concurrent_increments;
          Alcotest.test_case "buffer record/merge" `Quick
            test_distribution_buffer_merge;
          Alcotest.test_case "concurrent buffer merges exact" `Quick
            test_distribution_concurrent_buffers;
          Alcotest.test_case "events tagged with domain lanes" `Quick
            test_domain_tagging;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "densities computed once per net (4.2)" `Quick
            test_densities_once_per_net;
        ] );
    ]
