(* Tests for the trace-analysis side of lib/obs: the NDJSON parser
   (round-trip against what Obs.file_sink writes), span-tree
   aggregation, Chrome trace-event export, distribution quantiles, and
   the bench regression gate (Regress). *)

module J = Trace.Json

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* --- Json reader --- *)

let test_json_parse () =
  (match ok (J.parse {|{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":null,"d":true}|}) with
  | J.Obj fields ->
      Alcotest.(check (option (float 1e-9))) "num" (Some 2.5)
        (match List.assoc "a" fields with
        | J.Arr [ _; x; _ ] -> J.to_float x
        | _ -> None);
      Alcotest.(check (option string)) "escaped string" (Some "x\n\"y\"")
        (J.to_string (List.assoc "b" fields));
      Alcotest.(check bool) "null" true (List.assoc "c" fields = J.Null);
      Alcotest.(check bool) "bool" true (List.assoc "d" fields = J.Bool true)
  | _ -> Alcotest.fail "expected an object");
  (match J.parse "{\"a\":}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  match J.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let test_json_escape_roundtrip () =
  let strings = [ "plain"; "with \"quotes\""; "tab\there\nand newline"; "" ] in
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        ("escape round-trips " ^ String.escaped s)
        (Some s)
        (J.to_string (ok (J.parse (J.escape s)))))
    strings

(* --- NDJSON round-trip: what Obs writes, Trace reads --- *)

let with_trace f =
  Obs.reset ();
  let path = Filename.temp_file "trace_test" ".ndjson" in
  Obs.set_sink (Obs.file_sink path);
  f ();
  Obs.close_sink ();
  let events = ok (Trace.load path) in
  Sys.remove path;
  events

let count pred events = List.length (List.filter pred events)

let test_roundtrip () =
  let c = Obs.counter "test.trace_rt" in
  let events =
    with_trace (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () ->
                Obs.incr c;
                Obs.sample c);
            Obs.span "inner" (fun () -> ()));
        Obs.span "second" (fun () -> ()))
  in
  Alcotest.(check int) "4 span_begin events" 4
    (count (function Trace.Span_begin _ -> true | _ -> false) events);
  Alcotest.(check int) "4 span_end events" 4
    (count (function Trace.Span_end _ -> true | _ -> false) events);
  Alcotest.(check bool) "counter events present" true
    (count (function Trace.Counter _ -> true | _ -> false) events > 0);
  Alcotest.(check (option int)) "final counter value" (Some 1)
    (List.assoc_opt "test.trace_rt" (Trace.final_counters events));
  (* Every span_end carries a non-negative duration consistent with its
     timestamps. *)
  List.iter
    (function
      | Trace.Span_end { dt; _ } ->
          Alcotest.(check bool) "dt >= 0" true (dt >= 0.)
      | _ -> ())
    events

let find_child tree name =
  List.find_opt (fun (t : Trace.tree) -> t.Trace.name = name) tree.Trace.children

let test_span_tree () =
  let events =
    with_trace (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ());
            Obs.span "inner" (fun () -> ()));
        Obs.span "second" (fun () -> ()))
  in
  let root = Trace.span_tree events in
  Alcotest.(check string) "synthetic root" "" root.Trace.name;
  Alcotest.(check (list string)) "top-level children sorted"
    [ "outer"; "second" ]
    (List.map (fun (t : Trace.tree) -> t.Trace.name) root.Trace.children);
  let outer = Option.get (find_child root "outer") in
  Alcotest.(check int) "outer called once" 1 outer.Trace.calls;
  let inner = Option.get (find_child outer "inner") in
  Alcotest.(check int) "both inner calls aggregated by path" 2
    inner.Trace.calls;
  Alcotest.(check (float 1e-9)) "self + children = total" outer.Trace.total
    (outer.Trace.self
    +. List.fold_left
         (fun acc (t : Trace.tree) -> acc +. t.Trace.total)
         0. outer.Trace.children);
  let second = Option.get (find_child root "second") in
  Alcotest.(check (float 1e-9)) "root total sums the top level"
    (outer.Trace.total +. second.Trace.total)
    root.Trace.total;
  (* Rendering mentions every path and the synthetic total line. *)
  let rendered = Trace.render_tree root in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (contains rendered needle))
    [ "(trace total)"; "outer"; "inner"; "second" ]

let test_truncated_trace () =
  let events =
    ok
      (Trace.events_of_string
         ({|{"ev":"span_begin","name":"a","t":0.0,"depth":1}|} ^ "\n"
        ^ {|{"ev":"span_end","name":"a","t":1.0,"depth":1,"dt":1.0}|} ^ "\n\n"
        ^ {|{"ev":"span_begin","name":"b","t":2.0,"depth":1}|} ^ "\n"))
  in
  Alcotest.(check int) "blank lines skipped, 3 events" 3 (List.length events);
  let root = Trace.span_tree events in
  Alcotest.(check (list string)) "open span dropped" [ "a" ]
    (List.map (fun (t : Trace.tree) -> t.Trace.name) root.Trace.children);
  Alcotest.(check (float 1e-9)) "completed span keeps its time" 1.0
    root.Trace.total

let test_parse_errors () =
  (match
     Trace.events_of_string
       ({|{"ev":"span_begin","name":"a","t":0.0,"depth":1}|} ^ "\nnot json\n")
   with
  | Error msg ->
      Alcotest.(check bool) "error names line 2" true (contains msg "2")
  | Ok _ -> Alcotest.fail "malformed line accepted");
  match Trace.event_of_line {|{"ev":"mystery","name":"x","t":0}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown event kind accepted"

let test_chrome_export () =
  let events =
    with_trace (fun () ->
        let c = Obs.counter "test.chrome" in
        Obs.span "outer" (fun () ->
            Obs.incr c;
            Obs.sample c))
  in
  let doc = ok (J.parse (Trace.to_chrome events)) in
  match J.member "traceEvents" doc with
  | Some (J.Arr traced) ->
      let phase e = Option.bind (J.member "ph" e) J.to_string in
      let with_phase p = List.filter (fun e -> phase e = Some p) traced in
      Alcotest.(check int) "one B per span_begin"
        (count (function Trace.Span_begin _ -> true | _ -> false) events)
        (List.length (with_phase "B"));
      Alcotest.(check int) "one E per span_end"
        (count (function Trace.Span_end _ -> true | _ -> false) events)
        (List.length (with_phase "E"));
      Alcotest.(check int) "one C per counter sample"
        (count (function Trace.Counter _ -> true | _ -> false) events)
        (List.length (with_phase "C"));
      List.iter
        (fun e ->
          Alcotest.(check bool) "microsecond timestamps present" true
            (Option.is_some (Option.bind (J.member "ts" e) J.to_float)))
        traced
  | _ -> Alcotest.fail "no traceEvents array"

let test_domain_lanes () =
  (* Traces written before domain tagging have no "dom" field: they
     parse as domain 0. *)
  (match ok (Trace.event_of_line {|{"ev":"span_begin","name":"a","t":0.0,"depth":1}|}) with
  | Trace.Span_begin { dom; _ } ->
      Alcotest.(check int) "missing dom reads 0" 0 dom
  | _ -> Alcotest.fail "expected span_begin");
  let lines =
    {|{"ev":"span_begin","name":"coord","t":0.0,"depth":1,"dom":0}|} ^ "\n"
    ^ {|{"ev":"span_begin","name":"par.task","t":0.1,"depth":1,"dom":2}|} ^ "\n"
    ^ {|{"ev":"span_end","name":"par.task","t":0.2,"depth":1,"dt":0.1,"dom":2}|}
    ^ "\n"
    ^ {|{"ev":"counter","name":"c","t":0.25,"value":3,"dom":2}|} ^ "\n"
    ^ {|{"ev":"span_end","name":"coord","t":0.3,"depth":1,"dt":0.3,"dom":0}|}
    ^ "\n"
  in
  let events = ok (Trace.events_of_string lines) in
  (* The two spans overlap in time but live on different domains: each
     domain keeps its own stack, so neither nests under the other. *)
  let root = Trace.span_tree events in
  Alcotest.(check (list string)) "per-domain span stacks" [ "coord"; "par.task" ]
    (List.sort compare
       (List.map (fun (t : Trace.tree) -> t.Trace.name) root.Trace.children));
  (* Chrome export renders one lane per domain: tid = dom + 1. *)
  let doc = ok (J.parse (Trace.to_chrome events)) in
  match J.member "traceEvents" doc with
  | Some (J.Arr traced) ->
      let tids =
        List.sort_uniq compare
          (List.filter_map
             (fun e -> Option.bind (J.member "tid" e) J.to_float)
             traced)
      in
      Alcotest.(check (list (float 1e-9))) "one lane per domain" [ 1.; 3. ] tids
  | _ -> Alcotest.fail "no traceEvents array"

(* --- distribution quantiles (nearest-rank) --- *)

let dist_stats_of values =
  Obs.reset ();
  let d = Obs.distribution "test.quantiles" in
  List.iter (Obs.observe d) values;
  List.assoc "test.quantiles" (Obs.snapshot ()).Obs.distributions

let test_quantiles_100 () =
  let s = dist_stats_of (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check int) "count" 100 s.Obs.count;
  Alcotest.(check (float 1e-9)) "p50 of 1..100" 50. s.Obs.p50;
  Alcotest.(check (float 1e-9)) "p90 of 1..100" 90. s.Obs.p90;
  Alcotest.(check (float 1e-9)) "p99 of 1..100" 99. s.Obs.p99;
  Alcotest.(check (float 1e-9)) "min" 1. s.Obs.min;
  Alcotest.(check (float 1e-9)) "max" 100. s.Obs.max

let test_quantiles_small () =
  let s = dist_stats_of [ 42. ] in
  Alcotest.(check (float 1e-9)) "single sample p50" 42. s.Obs.p50;
  Alcotest.(check (float 1e-9)) "single sample p99" 42. s.Obs.p99;
  (* Order independence: quantiles sort, min/max track extremes. *)
  let s = dist_stats_of [ 5.; 1.; 9.; 3. ] in
  Alcotest.(check (float 1e-9)) "p50 = 2nd of 4 sorted" 3. s.Obs.p50;
  Alcotest.(check (float 1e-9)) "p90 = 4th of 4 sorted" 9. s.Obs.p90;
  let s = dist_stats_of [] in
  Alcotest.(check (float 1e-9)) "empty p50 reads 0" 0. s.Obs.p50

(* --- the regression gate --- *)

let doc ~seconds ~hits ~span_total =
  Printf.sprintf
    {|{"targets":[{"name":"t1","seconds":%g,"metrics":{"counters":{"bdd.memo_hit":%g,"only.in.this.doc":1},"distributions":{},"spans":{"optimize.run":{"calls":1,"total_s":%g,"slowest_s":%g}},"gc":{"minor_words":0,"major_words":0}}}]}|}
    seconds hits span_total span_total

let targets ~seconds ~hits ~span_total =
  ok (Regress.targets_of_json (ok (J.parse (doc ~seconds ~hits ~span_total))))

let test_regress_parse () =
  match targets ~seconds:1.5 ~hits:100. ~span_total:0.5 with
  | [ t ] ->
      Alcotest.(check string) "name" "t1" t.Regress.name;
      Alcotest.(check (float 1e-9)) "seconds" 1.5 t.Regress.seconds;
      Alcotest.(check (option (float 1e-9))) "counter" (Some 100.)
        (List.assoc_opt "bdd.memo_hit" t.Regress.counters);
      Alcotest.(check (option (float 1e-9))) "span total" (Some 0.5)
        (List.assoc_opt "optimize.run" t.Regress.spans)
  | l -> Alcotest.failf "expected 1 target, got %d" (List.length l)

let test_regress_self_compare () =
  let t = targets ~seconds:1.5 ~hits:100. ~span_total:0.5 in
  Alcotest.(check int) "identical documents pass" 0
    (List.length (Regress.compare Regress.default_tolerance ~baseline:t ~current:t));
  Alcotest.(check (list string)) "one target compared" [ "t1" ]
    (Regress.compared_targets ~baseline:t ~current:t)

let test_regress_counter_violation () =
  let base = targets ~seconds:1.0 ~hits:1000. ~span_total:0.5 in
  let jumped = targets ~seconds:1.0 ~hits:1200. ~span_total:0.5 in
  let tol = { Regress.default_tolerance with Regress.check_time = false } in
  (match Regress.compare tol ~baseline:base ~current:jumped with
  | [ v ] ->
      Alcotest.(check string) "counter named" "counter bdd.memo_hit"
        v.Regress.metric;
      Alcotest.(check bool) "rendered" true
        (contains (Regress.render [ v ]) "bdd.memo_hit")
  | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l));
  (* Two-sided: an unexplained drop also fails. *)
  (match Regress.compare tol ~baseline:jumped ~current:base with
  | [ _ ] -> ()
  | l -> Alcotest.failf "drop: expected 1 violation, got %d" (List.length l));
  (* Within tolerance passes. *)
  let close = targets ~seconds:1.0 ~hits:1050. ~span_total:0.5 in
  Alcotest.(check int) "5% drift within 10% tolerance" 0
    (List.length (Regress.compare tol ~baseline:base ~current:close))

let test_regress_time_violation () =
  let base = targets ~seconds:1.0 ~hits:100. ~span_total:0.5 in
  let slow = targets ~seconds:2.0 ~hits:100. ~span_total:1.5 in
  let v = Regress.compare Regress.default_tolerance ~baseline:base ~current:slow in
  Alcotest.(check (list string)) "slowdown flagged on both clocks"
    [ "seconds"; "span optimize.run" ]
    (List.map (fun v -> v.Regress.metric) v);
  (* One-sided: getting faster is never a violation. *)
  Alcotest.(check int) "speedup passes" 0
    (List.length
       (Regress.compare Regress.default_tolerance ~baseline:slow ~current:base));
  (* check_time = false ignores both. *)
  let tol = { Regress.default_tolerance with Regress.check_time = false } in
  Alcotest.(check int) "--no-time ignores clocks" 0
    (List.length (Regress.compare tol ~baseline:base ~current:slow))

let test_regress_join_semantics () =
  let base = targets ~seconds:1.0 ~hits:100. ~span_total:0.5 in
  let extra =
    ok
      (Regress.targets_of_json
         (ok
            (J.parse
               {|{"targets":[{"name":"t1","seconds":1.0,"metrics":{"counters":{"bdd.memo_hit":100,"brand.new.counter":5000},"distributions":{},"spans":{},"gc":{}}},{"name":"t2","seconds":9.0,"metrics":{"counters":{"x":1},"distributions":{},"spans":{},"gc":{}}}]}|})))
  in
  let tol = { Regress.default_tolerance with Regress.check_time = false } in
  Alcotest.(check int) "new counters and targets are ignored" 0
    (List.length (Regress.compare tol ~baseline:base ~current:extra));
  Alcotest.(check (list string)) "only the shared target is compared" [ "t1" ]
    (Regress.compared_targets ~baseline:base ~current:extra)

let test_regress_bad_document () =
  (match Regress.targets_of_json (ok (J.parse "{\"nope\":1}")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "document without targets accepted");
  match Regress.load "/nonexistent/path/bench.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "reader" `Quick test_json_parse;
          Alcotest.test_case "escape round-trip" `Quick
            test_json_escape_roundtrip;
        ] );
      ( "ndjson",
        [
          Alcotest.test_case "sink -> parser round-trip" `Quick test_roundtrip;
          Alcotest.test_case "span tree" `Quick test_span_tree;
          Alcotest.test_case "truncated trace" `Quick test_truncated_trace;
          Alcotest.test_case "parse errors name the line" `Quick
            test_parse_errors;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          Alcotest.test_case "domain lanes" `Quick test_domain_lanes;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "1..100" `Quick test_quantiles_100;
          Alcotest.test_case "small and empty samples" `Quick
            test_quantiles_small;
        ] );
      ( "regress",
        [
          Alcotest.test_case "BENCH_obs parsing" `Quick test_regress_parse;
          Alcotest.test_case "self-comparison passes" `Quick
            test_regress_self_compare;
          Alcotest.test_case "counter drift two-sided" `Quick
            test_regress_counter_violation;
          Alcotest.test_case "slowdown one-sided" `Quick
            test_regress_time_violation;
          Alcotest.test_case "inner-join semantics" `Quick
            test_regress_join_semantics;
          Alcotest.test_case "malformed documents" `Quick
            test_regress_bad_document;
        ] );
    ]
