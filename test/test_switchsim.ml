(* Tests for the switch-level simulator: functional agreement with
   zero-delay evaluation, hand-computed energy, statistical agreement
   with the analytic model, input validation. *)

module Sim = Switchsim.Sim
module C = Netlist.Circuit
module B = Netlist.Builder
module W = Stoch.Waveform
module S = Stoch.Signal_stats

let proc = Cell.Process.default

let inverter_circuit () =
  let b = B.create ~name:"inv1" in
  let x = B.input b "x" in
  let y = B.inv b ~name:"y" x in
  B.output b y;
  B.finish b

let nand_inv () =
  let b = B.create ~name:"nand_inv" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let y = B.nand2 b ~name:"y" a bb in
  let z = B.inv b ~name:"z" y in
  B.output b z;
  B.finish b

let test_inverter_energy_hand_computed () =
  (* Input square wave 0,1,0,1,0 with period 1s: output rises twice.
     Output cap = 2 junctions + wire + 20 fF external load. *)
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let w = W.of_bits ~bits:[| false; true; false; true; false |] ~period:1.0 in
  let r = Sim.run sim ~inputs:(fun _ -> w) () in
  let c_out = (2. *. 6e-15) +. 15e-15 +. 20e-15 in
  Alcotest.(check (float 1e-27)) "2 charges x C Vdd^2"
    (2. *. c_out *. 25.) r.Sim.energy;
  Alcotest.(check int) "4 input events" 4 r.Sim.events;
  Alcotest.(check (float 1e-15)) "power = E / horizon" (r.Sim.energy /. 5.)
    r.Sim.power

let test_inverter_output_toggles () =
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let w = W.of_bits ~bits:[| false; true; false; true |] ~period:1.0 in
  let r = Sim.run sim ~inputs:(fun _ -> w) () in
  let y = Option.get (C.net_of_name c "y") in
  Alcotest.(check int) "output toggles with input" 3 r.Sim.net_toggles.(y);
  (* Output is high exactly when input is low: 2 of 4 seconds. *)
  Alcotest.(check (float 1e-9)) "high time" 2.0 r.Sim.net_high_time.(y)

let test_nand_masked_input () =
  (* With b=0, the nand output stays 1 regardless of a: no output energy
     beyond internal-node charging. *)
  let c = nand_inv () in
  let sim = Sim.build proc c in
  let wa = W.of_bits ~bits:[| false; true; false; true |] ~period:1.0 in
  let wb = W.constant false ~horizon:4.0 in
  let inputs net = if C.net_name c net = "a" then wa else wb in
  let r = Sim.run sim ~inputs () in
  let y = Option.get (C.net_of_name c "y") in
  let z = Option.get (C.net_of_name c "z") in
  Alcotest.(check int) "y silent" 0 r.Sim.net_toggles.(y);
  Alcotest.(check int) "z silent" 0 r.Sim.net_toggles.(z);
  (* The internal pull-down node of the nand still charges and
     discharges as a toggles — the paper's useless internal activity. *)
  Alcotest.(check bool) "internal energy flows" true
    (r.Sim.per_gate_energy.(0) > 0.)

let test_internal_energy_depends_on_order () =
  (* Same masked stimulus, but the nand2's two configurations place the
     toggling transistor either next to the output (internal node
     between it and ground: charges when a=1...) or next to ground. The
     internal node's switching differs between the two orders. *)
  let c = nand_inv () in
  let wa = W.of_bits ~bits:[| false; true; false; true; false; true |] ~period:1.0 in
  let wb = W.constant false ~horizon:6.0 in
  let energy config =
    let circuit = C.with_configs c [| config; 0 |] in
    let sim = Sim.build proc circuit in
    let inputs net = if C.net_name circuit net = "a" then wa else wb in
    (Sim.run sim ~inputs ()).Sim.per_gate_energy.(0)
  in
  let e0 = energy 0 and e1 = energy 1 in
  Alcotest.(check bool) "orders dissipate differently" true
    (Float.abs (e0 -. e1) > 1e-18 *. Float.max e0 e1)

let test_agrees_with_eval_on_static_vectors () =
  (* Constant waveforms: settled nets must equal functional evaluation,
     for every benchmark in the small suite and several vectors. *)
  let rng = Stoch.Rng.create 7 in
  List.iter
    (fun (name, circuit) ->
      let sim = Sim.build proc circuit in
      for _ = 1 to 3 do
        let vector = Hashtbl.create 16 in
        List.iter
          (fun net -> Hashtbl.add vector net (Stoch.Rng.bool rng))
          (C.primary_inputs circuit);
        let inputs net = W.constant (Hashtbl.find vector net) ~horizon:1.0 in
        let r = Sim.run sim ~inputs () in
        let expected =
          Netlist.Eval.nets circuit ~inputs:(fun net -> Hashtbl.find vector net)
        in
        List.iter
          (fun net ->
            let simulated = r.Sim.net_high_time.(net) > 0.5 in
            Alcotest.(check bool)
              (Printf.sprintf "%s net %s" name (C.net_name circuit net))
              expected.(net) simulated)
          (C.primary_outputs circuit)
      done)
    (Circuits.Suite.small ())

let test_agrees_with_eval_after_transitions () =
  (* Drive c17 with clocked patterns; at the end of each period the
     settled outputs must match Eval on the current vector. Checked via
     toggle counts: output toggles iff consecutive vectors differ. *)
  let circuit = Circuits.Suite.find "c17" in
  let sim = Sim.build proc circuit in
  let rng = Stoch.Rng.create 99 in
  let n_steps = 64 in
  let pis = Array.of_list (C.primary_inputs circuit) in
  let patterns =
    Array.init (Array.length pis) (fun _ ->
        Array.init n_steps (fun _ -> Stoch.Rng.bool rng))
  in
  let inputs net =
    let idx = ref 0 in
    Array.iteri (fun i pi -> if pi = net then idx := i) pis;
    W.of_bits ~bits:patterns.(!idx) ~period:1.0
  in
  let r = Sim.run sim ~inputs () in
  let expected_toggles out_pos =
    let eval step =
      let env net =
        let idx = ref 0 in
        Array.iteri (fun i pi -> if pi = net then idx := i) pis;
        patterns.(!idx).(step)
      in
      List.nth (Netlist.Eval.outputs circuit ~inputs:env) out_pos
    in
    let count = ref 0 in
    for step = 1 to n_steps - 1 do
      if eval step <> eval (step - 1) then incr count
    done;
    !count
  in
  List.iteri
    (fun pos net ->
      Alcotest.(check int)
        (Printf.sprintf "output %d toggle count" pos)
        (expected_toggles pos) r.Sim.net_toggles.(net))
    (C.primary_outputs circuit)

let test_measured_stats_match_input () =
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let rng = Stoch.Rng.create 3 in
  let stats _ = S.make ~prob:0.3 ~density:2.0 in
  let r = Sim.run_stats sim ~rng ~stats ~horizon:20_000. () in
  let x = Option.get (C.net_of_name c "x") in
  let m = Sim.measured_stats r x in
  Alcotest.(check bool) "P near 0.3" true (Float.abs (S.prob m -. 0.3) < 0.03);
  Alcotest.(check bool) "D near 2.0" true (Float.abs (S.density m -. 2.0) < 0.1)

let test_simulated_density_matches_analysis () =
  (* On a tree-structured circuit (no reconvergent fan-out) the Najm
     propagation is exact, so the simulator must agree within sampling
     error. *)
  let circuit = Circuits.Suite.find "tree16" in
  let table = Power.Model.table proc in
  let stats _ = S.make ~prob:0.5 ~density:1.0 in
  let analysis = Power.Analysis.run table circuit ~inputs:stats in
  let sim = Sim.build proc circuit in
  let rng = Stoch.Rng.create 21 in
  let r = Sim.run_stats sim ~rng ~stats ~horizon:4000. () in
  Array.iteri
    (fun g (gate : C.gate) ->
      ignore g;
      let net = gate.C.output in
      let analytic = S.density (Power.Analysis.stats analysis net) in
      let simulated = S.density (Sim.measured_stats r net) in
      if analytic > 0.1 then
        Alcotest.(check bool)
          (Printf.sprintf "net %s: %.3f vs %.3f" (C.net_name circuit net)
             analytic simulated)
          true
          (Float.abs (simulated -. analytic) /. analytic < 0.2))
    (C.gates circuit)

let test_reconvergence_bounded_gap () =
  (* Through reconvergent XOR logic (rca4) the independence assumption
     biases the analytic densities; the gap stays within a small factor
     — the paper's M-vs-S discussion depends on this staying bounded. *)
  let circuit = Circuits.Suite.find "rca4" in
  let table = Power.Model.table proc in
  let stats _ = S.make ~prob:0.5 ~density:1.0 in
  let analysis = Power.Analysis.run table circuit ~inputs:stats in
  let sim = Sim.build proc circuit in
  let rng = Stoch.Rng.create 21 in
  let r = Sim.run_stats sim ~rng ~stats ~horizon:4000. () in
  List.iter
    (fun net ->
      let analytic = S.density (Power.Analysis.stats analysis net) in
      let simulated = S.density (Sim.measured_stats r net) in
      if analytic > 0.5 then
        Alcotest.(check bool)
          (Printf.sprintf "net %s: %.3f vs %.3f" (C.net_name circuit net)
             analytic simulated)
          true
          (simulated /. analytic < 2.5 && analytic /. simulated < 2.5))
    (C.primary_outputs circuit)

let test_per_gate_energy_sums () =
  let circuit = Circuits.Suite.find "par4" in
  let sim = Sim.build proc circuit in
  let rng = Stoch.Rng.create 5 in
  let stats _ = S.make ~prob:0.5 ~density:1.0 in
  let r = Sim.run_stats sim ~rng ~stats ~horizon:500. () in
  let sum = Array.fold_left ( +. ) 0. r.Sim.per_gate_energy in
  Alcotest.(check (float 1e-20)) "per-gate sums to total" r.Sim.energy sum

let test_warmup_reduces_window () =
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let w = W.of_bits ~bits:[| false; true; false; true; false |] ~period:1.0 in
  let r = Sim.run sim ~warmup:2.5 ~inputs:(fun _ -> w) () in
  Alcotest.(check (float 1e-9)) "window" 2.5 r.Sim.horizon;
  (* Only the final rise (input falls at t=4) is inside the window:
     wait — input rises at 1,3; falls at 2,4... bits 0,1,0,1,0 toggle at
     t=1,2,3,4; output rises at t=2 and t=4; with warmup 2.5 only t=4
     counts. *)
  let c_out = (2. *. 6e-15) +. 15e-15 +. 20e-15 in
  Alcotest.(check (float 1e-27)) "one charge" (c_out *. 25.) r.Sim.energy

let test_per_net_energy_conservation () =
  let circuit = Circuits.Suite.find "par4" in
  let sim = Sim.build proc circuit in
  let rng = Stoch.Rng.create 5 in
  let stats _ = S.make ~prob:0.5 ~density:1.0 in
  let r = Sim.run_stats sim ~rng ~stats ~horizon:500. () in
  (* Exact, not approximate: energy is defined as this very fold. *)
  let sum = Array.fold_left ( +. ) 0. r.Sim.per_net_energy in
  Alcotest.(check (float 0.)) "per-net fold IS the total" r.Sim.energy sum;
  (* Per-net energy is the driving gate's energy; input nets carry 0. *)
  Array.iter
    (fun (gate : C.gate) ->
      match C.driver circuit gate.C.output with
      | C.Driven_by g ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "net %s = gate %d" (C.net_name circuit gate.C.output) g)
            r.Sim.per_gate_energy.(g)
            r.Sim.per_net_energy.(gate.C.output)
      | C.Primary_input -> assert false)
    (C.gates circuit);
  List.iter
    (fun net ->
      Alcotest.(check (float 0.)) "input nets carry no energy" 0.
        r.Sim.per_net_energy.(net))
    (C.primary_inputs circuit)

let null_observer =
  {
    Sim.on_net = (fun ~time:_ ~net:_ ~before:_ ~after:_ ~in_window:_ -> ());
    on_internal = None;
    on_energy = None;
  }

let test_observer_warmup_flagging () =
  (* Events during warm-up are delivered but flagged out-of-window. *)
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let w = W.of_bits ~bits:[| false; true; false; true; false |] ~period:1.0 in
  let events = ref [] in
  let observer =
    {
      null_observer with
      Sim.on_net =
        (fun ~time ~net:_ ~before:_ ~after:_ ~in_window ->
          events := (time, in_window) :: !events);
    }
  in
  let r = Sim.run sim ~warmup:2.5 ~observer ~inputs:(fun _ -> w) () in
  ignore r;
  let events = List.rev !events in
  Alcotest.(check bool) "events before the window are seen" true
    (List.exists (fun (t, _) -> t < 2.5) events);
  Alcotest.(check bool) "events inside the window are seen" true
    (List.exists (fun (t, _) -> t >= 2.5) events);
  List.iter
    (fun (t, in_window) ->
      Alcotest.(check bool)
        (Printf.sprintf "event at %g flagged correctly" t)
        (t >= 2.5) in_window)
    events;
  (* Times arrive in non-decreasing order. *)
  ignore
    (List.fold_left
       (fun prev (t, _) ->
         Alcotest.(check bool) "monotone times" true (t >= prev);
         t)
       neg_infinity events)

let test_observer_energy_matches_books () =
  (* Every deposit reported through on_energy carries exactly the joules
     the accumulator books — including X→1 half-energy charges of an
     internal node first touched inside the window. *)
  let base = nand_inv () in
  let wa = W.of_bits ~bits:[| false; true; false; true |] ~period:1.0 in
  let wb = W.constant false ~horizon:4.0 in
  let half_seen = ref false in
  List.iter
    (fun config ->
      let circuit = C.with_configs base [| config; 0 |] in
      let sim = Sim.build proc circuit in
      let inputs net = if C.net_name circuit net = "a" then wa else wb in
      let booked = Array.make (C.gate_count circuit) 0. in
      let observer =
        {
          null_observer with
          Sim.on_energy =
            Some
              (fun ~time:_ ~gate ~node ~energy ->
                booked.(gate) <- booked.(gate) +. energy;
                (* b = 0 masks the output: any deposit on the nand's
                   internal node rises from X, at half energy. *)
                if gate = 0 && node = 1 then begin
                  let g = C.gate_at circuit 0 in
                  let network =
                    Cell.Config.network
                      (List.nth (Cell.Config.all g.C.cell) g.C.config)
                  in
                  let c_int =
                    Cell.Process.node_capacitance proc network
                      (Sp.Network.Internal 0)
                  in
                  let vdd = proc.Cell.Process.vdd in
                  Alcotest.(check (float 1e-30)) "half charge from X"
                    (0.5 *. c_int *. vdd *. vdd)
                    energy;
                  half_seen := true
                end);
        }
      in
      let r = Sim.run sim ~observer ~inputs () in
      (* Chronological per-gate accumulation is the accumulator's own
         order, so the sums agree bit-for-bit. *)
      Array.iteri
        (fun g e ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "config %d gate %d books what it reports" config g)
            e booked.(g))
        r.Sim.per_gate_energy)
    [ 0; 1 ];
  Alcotest.(check bool) "an X→1 half-energy deposit was observed" true
    !half_seen

let test_no_observer_no_probe_events () =
  let circuit = Circuits.Suite.find "c17" in
  let sim = Sim.build proc circuit in
  let rng () = Stoch.Rng.create 11 in
  let stats _ = S.make ~prob:0.5 ~density:1.0 in
  Obs.reset ();
  ignore (Sim.run_stats sim ~rng:(rng ()) ~stats ~horizon:100. ());
  Alcotest.(check int) "no observer, no probe events" 0
    (Obs.value (Obs.counter "switchsim.probe_events"));
  ignore
    (Sim.run_stats sim ~rng:(rng ()) ~stats ~horizon:100.
       ~observer:null_observer ());
  Alcotest.(check bool) "observer counts probe events" true
    (Obs.value (Obs.counter "switchsim.probe_events") > 0)

let test_validation () =
  let c = nand_inv () in
  let sim = Sim.build proc c in
  let wa = W.constant true ~horizon:1.0 in
  let wb = W.constant true ~horizon:2.0 in
  Alcotest.check_raises "horizon mismatch"
    (Invalid_argument "Switchsim.run: waveform horizons differ") (fun () ->
      ignore
        (Sim.run sim
           ~inputs:(fun net -> if C.net_name c net = "a" then wa else wb)
           ()));
  Alcotest.check_raises "warmup beyond horizon"
    (Invalid_argument "Switchsim.run: warmup outside [0, horizon)") (fun () ->
      ignore (Sim.run sim ~warmup:2.0 ~inputs:(fun _ -> wa) ()))

(* Property: on random circuits with random clocked stimuli, simulated
   primary-output values at the end of the run equal Eval of the final
   vector. *)
let prop_final_state_matches_eval =
  QCheck.Test.make ~name:"final settled state matches functional evaluation"
    ~count:25
    QCheck.(pair (int_range 0 10000) (int_range 2 20))
    (fun (seed, steps) ->
      QCheck.assume (steps >= 2);
      let circuit =
        Circuits.Generators.random_logic ~seed ~inputs:5 ~gates:25
      in
      let sim = Sim.build proc circuit in
      let rng = Stoch.Rng.create (seed + 1) in
      let pis = C.primary_inputs circuit in
      let patterns = Hashtbl.create 8 in
      List.iter
        (fun net ->
          Hashtbl.add patterns net
            (Array.init steps (fun _ -> Stoch.Rng.bool rng)))
        pis;
      let inputs net =
        W.of_bits ~bits:(Hashtbl.find patterns net) ~period:1.0
      in
      let r = Sim.run sim ~inputs () in
      let final net = (Hashtbl.find patterns net).(steps - 1) in
      let expected = Netlist.Eval.nets circuit ~inputs:final in
      List.for_all
        (fun net ->
          let settled =
            (* recover from toggle parity: initial value + toggles *)
            let initial =
              Netlist.Eval.nets circuit ~inputs:(fun n ->
                  (Hashtbl.find patterns n).(0))
            in
            if r.Sim.net_toggles.(net) mod 2 = 0 then initial.(net)
            else not initial.(net)
          in
          settled = expected.(net))
        (C.primary_outputs circuit))

let () =
  Alcotest.run "switchsim"
    [
      ( "energy",
        [
          Alcotest.test_case "inverter hand-computed" `Quick
            test_inverter_energy_hand_computed;
          Alcotest.test_case "output toggles" `Quick test_inverter_output_toggles;
          Alcotest.test_case "masked input / internal power" `Quick
            test_nand_masked_input;
          Alcotest.test_case "internal energy depends on order" `Quick
            test_internal_energy_depends_on_order;
          Alcotest.test_case "per-gate sums" `Quick test_per_gate_energy_sums;
          Alcotest.test_case "per-net conservation" `Quick
            test_per_net_energy_conservation;
          Alcotest.test_case "warmup window" `Quick test_warmup_reduces_window;
        ] );
      ( "probes",
        [
          Alcotest.test_case "warmup events flagged" `Quick
            test_observer_warmup_flagging;
          Alcotest.test_case "energy events match the books" `Quick
            test_observer_energy_matches_books;
          Alcotest.test_case "no observer, no probe events" `Quick
            test_no_observer_no_probe_events;
        ] );
      ( "functional",
        [
          Alcotest.test_case "static vectors vs Eval" `Slow
            test_agrees_with_eval_on_static_vectors;
          Alcotest.test_case "clocked c17 vs Eval" `Quick
            test_agrees_with_eval_after_transitions;
          QCheck_alcotest.to_alcotest prop_final_state_matches_eval;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "measured input stats" `Slow
            test_measured_stats_match_input;
          Alcotest.test_case "density matches analysis" `Slow
            test_simulated_density_matches_analysis;
          Alcotest.test_case "reconvergence gap bounded" `Slow
            test_reconvergence_bounded_gap;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
