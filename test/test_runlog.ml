(* Tests for the run-provenance subsystem: SHA-256 fingerprints, record
   write/load round-trips, archive scanning and resolution, auto-id
   uniquification, and the cross-run diff engine (counter tolerance,
   ledger flips and power drift, audit drift, structure errors and
   tolerated omissions). *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_scratch f =
  let dir = Filename.temp_dir "runlog_test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A snapshot document in the shape Obs.snapshot_to_json emits. *)
let snap counters =
  Printf.sprintf
    {|{"counters":{%s},"distributions":{},"spans":{"optimize.run":{"calls":1,"total_s":0.25,"slowest_s":0.25}},"gc":{"minor_words":0,"major_words":0}}|}
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%g" k v) counters))

(* A minimal attribution ledger in the shape Attrib.to_json emits. *)
let ledger ?(circuit = "c") ?(cfg = 1) ?(power = 0.4) ?(extra_gate = false) ()
    =
  let gate i cfg power =
    Printf.sprintf
      {|{"index":%d,"cell":"nand2","output":"n%d","config_before":0,"config_after":%d,"power_before":0.5,"power_after":%.17g,"internal_before":0,"internal_after":0,"candidates":[]}|}
      i i cfg power
  in
  let gates =
    [ gate 0 cfg power; gate 1 0 0.1 ]
    @ if extra_gate then [ gate 2 0 0.2 ] else []
  in
  Printf.sprintf
    {|{"circuit":"%s","external_load":0,"total_before":1,"total_after":0.9,"reduction_percent":10,"gates":[%s]}|}
    circuit
    (String.concat "," gates)

let audit_doc mean =
  Printf.sprintf
    {|{"summary":{"mean_density_err_pct":%.17g,"max_density_err_pct":9.0,"mean_prob_err":0.001,"max_prob_err":0.01,"model_total":1.0,"sim_total":1.01,"total_err_pct":1.0}}|}
    mean

let write_run ~dir ~id ?(params = []) ?(attachments = []) ?(inputs = [])
    ?(counters = [ ("optimizer.gates_visited", 100.) ]) () =
  let p = Runlog.start ~subcommand:"test" ~argv:[ "arg1"; "arg2" ] () in
  List.iter (fun (k, v) -> Runlog.set_param p k v) params;
  List.iter (fun path -> Runlog.add_input p path) inputs;
  List.iter (fun (name, json) -> Runlog.attach p ~name ~json) attachments;
  ok (Runlog.write ~id ~dir ~snapshot_json:(snap counters) p)

let load ~dir ~id = ok (Runlog.load_run (Filename.concat dir id))

(* --- SHA-256 --- *)

let test_sha_vectors () =
  Alcotest.(check string) "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Runlog.sha256_hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Runlog.sha256_hex "abc");
  (* Multi-block message (1000 bytes spans 16 compression blocks). *)
  Alcotest.(check string) "1000 x 'x'"
    "44f8354494a5ba03ba1792a8d3e9c534c47a9181980fde7a3f44b06ef2ae7c7f"
    (Runlog.sha256_hex (String.make 1000 'x'))

let test_sha_file () =
  let path = Filename.temp_file "runlog_sha" ".txt" in
  let oc = open_out_bin path in
  output_string oc "abc";
  close_out oc;
  Alcotest.(check string) "file digest matches string digest"
    (Runlog.sha256_hex "abc")
    (ok (Runlog.sha256_file path));
  Sys.remove path;
  match Runlog.sha256_file "/nonexistent/input.nl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file digested"

(* --- record write/load round-trip --- *)

let test_roundtrip () =
  with_scratch @@ fun dir ->
  let input = Filename.concat dir "input.nl" in
  let oc = open_out_bin input in
  output_string oc "circuit text";
  close_out oc;
  let run_dir =
    write_run ~dir ~id:"first"
      ~params:[ ("seed", "42"); ("jobs", "4") ]
      ~attachments:[ ("ledger", ledger ()) ]
      ~inputs:[ input ] ()
  in
  let run = ok (Runlog.load_run run_dir) in
  let m = run.Runlog.manifest in
  Alcotest.(check string) "run id from directory" "first" run.Runlog.run_id;
  Alcotest.(check int) "format version" 1 m.Runlog.version;
  Alcotest.(check string) "subcommand" "test" m.Runlog.subcommand;
  Alcotest.(check (list string)) "argv" [ "arg1"; "arg2" ] m.Runlog.argv;
  Alcotest.(check (list (pair string string))) "params sorted by key"
    [ ("jobs", "4"); ("seed", "42") ]
    m.Runlog.params;
  Alcotest.(check (option string)) "input fingerprinted"
    (Some (Runlog.sha256_hex "circuit text"))
    (List.assoc_opt input m.Runlog.inputs);
  Alcotest.(check bool) "timestamps ordered" true
    (m.Runlog.finished >= m.Runlog.started);
  Alcotest.(check (list string)) "attachments" [ "ledger" ]
    m.Runlog.attachments;
  let l = ok (Result.bind (Runlog.read_attachment run "ledger") Runlog.ledger_of_json) in
  Alcotest.(check int) "ledger gates decoded" 2
    (Array.length l.Runlog.l_gates);
  let counters =
    Runlog.counters_of_snapshot
      (ok (Trace.Json.parse (read_file (Filename.concat run_dir "snapshot.json"))))
  in
  Alcotest.(check (option (float 1e-9))) "snapshot counters readable"
    (Some 100.)
    (List.assoc_opt "optimizer.gates_visited" counters)

let test_attach_validation () =
  let p = Runlog.start ~subcommand:"test" ~argv:[] () in
  List.iter
    (fun name ->
      match Runlog.attach p ~name ~json:"{}" with
      | () -> Alcotest.failf "attachment name %S accepted" name
      | exception Invalid_argument _ -> ())
    [ "a/b"; ".."; ""; "manifest"; "snapshot" ]

let test_unreadable_input () =
  with_scratch @@ fun dir ->
  let run_dir =
    write_run ~dir ~id:"r" ~inputs:[ "/nonexistent/input.nl" ] ()
  in
  let run = ok (Runlog.load_run run_dir) in
  Alcotest.(check (option string)) "unreadable input recorded, not fatal"
    (Some "unreadable")
    (List.assoc_opt "/nonexistent/input.nl" run.Runlog.manifest.Runlog.inputs)

(* --- archive scanning and resolution --- *)

let test_scan_resolve () =
  with_scratch @@ fun dir ->
  let (_ : string) = write_run ~dir ~id:"aaa" () in
  Unix.sleepf 0.002;
  let (_ : string) = write_run ~dir ~id:"bbb" () in
  (* An incomplete record (no manifest) must be skipped silently. *)
  Unix.mkdir (Filename.concat dir "junk") 0o755;
  let runs = ok (Runlog.scan dir) in
  Alcotest.(check (list string)) "complete records, oldest first"
    [ "aaa"; "bbb" ]
    (List.map (fun r -> r.Runlog.run_id) runs);
  Alcotest.(check string) "archive root resolves to the latest run" "bbb"
    (ok (Runlog.resolve dir)).Runlog.run_id;
  Alcotest.(check string) "run directory resolves directly" "aaa"
    (ok (Runlog.resolve (Filename.concat dir "aaa"))).Runlog.run_id;
  match Runlog.resolve (Filename.concat dir "junk") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty directory resolved"

let test_auto_id_unique () =
  with_scratch @@ fun dir ->
  let p () = Runlog.start ~subcommand:"test" ~argv:[] () in
  let d1 = ok (Runlog.write ~dir ~snapshot_json:(snap []) (p ())) in
  let d2 = ok (Runlog.write ~dir ~snapshot_json:(snap []) (p ())) in
  Alcotest.(check bool) "same-second ids uniquified" true (d1 <> d2);
  Alcotest.(check int) "both records complete" 2
    (List.length (ok (Runlog.scan dir)))

let test_explicit_id_overwrites () =
  with_scratch @@ fun dir ->
  let (_ : string) =
    write_run ~dir ~id:"fixed" ~params:[ ("seed", "1") ] ()
  in
  let (_ : string) =
    write_run ~dir ~id:"fixed" ~params:[ ("seed", "2") ] ()
  in
  Alcotest.(check int) "one record" 1 (List.length (ok (Runlog.scan dir)));
  let run = load ~dir ~id:"fixed" in
  Alcotest.(check (option string)) "latest write wins" (Some "2")
    (List.assoc_opt "seed" run.Runlog.manifest.Runlog.params)

let test_manifest_errors () =
  with_scratch @@ fun dir ->
  (match Runlog.load_run (Filename.concat dir "missing") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing record loaded");
  let bad = Filename.concat dir "bad" in
  Unix.mkdir bad 0o755;
  let oc = open_out (Filename.concat bad "manifest.json") in
  output_string oc "not json";
  close_out oc;
  (match Runlog.load_run bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed manifest loaded");
  let oc = open_out (Filename.concat bad "manifest.json") in
  output_string oc
    {|{"runlog_version":99,"tool":"treorder","tool_version":"dev","subcommand":"x","argv":[],"inputs":[],"params":{},"started":0,"finished":0,"attachments":[]}|};
  close_out oc;
  match Runlog.load_run bad with
  | Error msg ->
      Alcotest.(check bool) "unknown version rejected by name" true
        (contains msg "99")
  | Ok _ -> Alcotest.fail "future format version accepted"

(* --- diffing --- *)

let test_diff_identical () =
  with_scratch @@ fun dir ->
  let attachments = [ ("ledger", ledger ()); ("audit", audit_doc 5.0) ] in
  let (_ : string) = write_run ~dir ~id:"a" ~attachments () in
  let (_ : string) = write_run ~dir ~id:"b" ~attachments () in
  let d = Runlog.diff (load ~dir ~id:"a") (load ~dir ~id:"b") in
  Alcotest.(check bool) "identical runs are clean" true (Runlog.is_clean d);
  Alcotest.(check bool) "verdict rendered" true
    (contains (Runlog.render_diff d) "agree")

let test_diff_counters () =
  with_scratch @@ fun dir ->
  let (_ : string) =
    write_run ~dir ~id:"a"
      ~counters:[ ("optimizer.gates_visited", 1000.); ("work.time_ns", 5e9) ]
      ()
  in
  let (_ : string) =
    write_run ~dir ~id:"b"
      ~counters:[ ("optimizer.gates_visited", 1500.); ("work.time_ns", 9e9) ]
      ()
  in
  let a = load ~dir ~id:"a" and b = load ~dir ~id:"b" in
  let d = Runlog.diff a b in
  (match d.Runlog.counters with
  | [ v ] ->
      Alcotest.(check bool) "the drifted counter is named" true
        (contains v.Regress.metric "optimizer.gates_visited")
  | l -> Alcotest.failf "expected 1 counter violation, got %d" (List.length l));
  Alcotest.(check bool) "_ns counters never compared" true
    (not
       (List.exists
          (fun v -> contains v.Regress.metric "time_ns")
          d.Runlog.counters));
  (* An ignore prefix silences the remaining violation. *)
  let d = Runlog.diff ~ignore_counters:[ "optimizer." ] a b in
  Alcotest.(check bool) "ignore prefix silences it" true (Runlog.is_clean d)

let test_diff_ledger () =
  with_scratch @@ fun dir ->
  let w id att = ignore (write_run ~dir ~id ~attachments:att () : string) in
  w "base" [ ("ledger", ledger ~cfg:1 ~power:0.4 ()) ];
  w "flip" [ ("ledger", ledger ~cfg:2 ~power:0.4 ()) ];
  w "drift" [ ("ledger", ledger ~cfg:1 ~power:0.40001 ()) ];
  w "grown" [ ("ledger", ledger ~extra_gate:true ()) ];
  w "bare" [];
  let base = load ~dir ~id:"base" in
  let d = Runlog.diff base (load ~dir ~id:"flip") in
  (match d.Runlog.flips with
  | [ f ] ->
      Alcotest.(check string) "flipped gate named" "n0" f.Runlog.gate;
      Alcotest.(check int) "config in A" 1 f.Runlog.a_config;
      Alcotest.(check int) "config in B" 2 f.Runlog.b_config;
      Alcotest.(check bool) "rendered" true
        (contains (Runlog.render_diff d) "n0")
  | l -> Alcotest.failf "expected 1 flip, got %d" (List.length l));
  let d = Runlog.diff base (load ~dir ~id:"drift") in
  Alcotest.(check int) "same config, moved power: power drift" 1
    (List.length d.Runlog.power_drift);
  Alcotest.(check int) "not a flip" 0 (List.length d.Runlog.flips);
  Alcotest.(check bool) "loose rtol tolerates it" true
    (Runlog.is_clean (Runlog.diff ~rtol:1e-3 base (load ~dir ~id:"drift")));
  let d = Runlog.diff base (load ~dir ~id:"grown") in
  Alcotest.(check bool) "gate-count mismatch is structural" true
    (d.Runlog.structure <> [] && not (Runlog.is_clean d));
  let d = Runlog.diff base (load ~dir ~id:"bare") in
  Alcotest.(check bool) "missing ledger is a tolerated note" true
    (Runlog.is_clean d && d.Runlog.notes <> [])

let test_diff_audit_and_params () =
  with_scratch @@ fun dir ->
  let (_ : string) =
    write_run ~dir ~id:"a"
      ~params:[ ("seed", "42") ]
      ~attachments:[ ("audit", audit_doc 5.0) ]
      ()
  in
  let (_ : string) =
    write_run ~dir ~id:"b"
      ~params:[ ("seed", "43") ]
      ~attachments:[ ("audit", audit_doc 7.5) ]
      ()
  in
  let d = Runlog.diff (load ~dir ~id:"a") (load ~dir ~id:"b") in
  (match d.Runlog.audit_drift with
  | [ v ] ->
      Alcotest.(check string) "audit metric named"
        "audit.mean_density_err_pct" v.Runlog.metric
  | l -> Alcotest.failf "expected 1 audit drift, got %d" (List.length l));
  (* Parameter drift is reported but informational. *)
  Alcotest.(check bool) "param drift recorded" true
    (List.exists (fun (k, _, _) -> k = "seed") d.Runlog.param_drift);
  Alcotest.(check bool) "only audit drift fails this diff" true
    (d.Runlog.counters = [] && d.Runlog.flips = [] && not (Runlog.is_clean d))

let () =
  Alcotest.run "runlog"
    [
      ( "sha256",
        [
          Alcotest.test_case "reference vectors" `Quick test_sha_vectors;
          Alcotest.test_case "file digests" `Quick test_sha_file;
        ] );
      ( "records",
        [
          Alcotest.test_case "write/load round-trip" `Quick test_roundtrip;
          Alcotest.test_case "attachment name validation" `Quick
            test_attach_validation;
          Alcotest.test_case "unreadable inputs tolerated" `Quick
            test_unreadable_input;
          Alcotest.test_case "scan + resolve" `Quick test_scan_resolve;
          Alcotest.test_case "auto ids uniquified" `Quick test_auto_id_unique;
          Alcotest.test_case "explicit id overwrites" `Quick
            test_explicit_id_overwrites;
          Alcotest.test_case "malformed manifests rejected" `Quick
            test_manifest_errors;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical runs clean" `Quick test_diff_identical;
          Alcotest.test_case "counter tolerance + exclusions" `Quick
            test_diff_counters;
          Alcotest.test_case "ledger flips, drift, structure" `Quick
            test_diff_ledger;
          Alcotest.test_case "audit drift + informational params" `Quick
            test_diff_audit_and_params;
        ] );
    ]
