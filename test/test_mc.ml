(* The bit-parallel Monte-Carlo engine: word-packing against the scalar
   evaluator, seed reproducibility, parallel bit-identity, standard-error
   convergence, and constant/latched edge cases. *)

module C = Netlist.Circuit
module S = Stoch.Signal_stats

let proc = Cell.Process.default
let table = lazy (Power.Model.table proc)

let scenario_a ~seed circuit =
  Power.Scenario.input_stats ~rng:(Stoch.Rng.create seed) Power.Scenario.A
    circuit

(* --- word packing and evaluation --- *)

let test_pack_unpack_roundtrip () =
  let rng = Stoch.Rng.create 7 in
  for _ = 1 to 50 do
    let w = Stoch.Rng.bits64 rng in
    Alcotest.(check int64) "unpack then pack" w (Mc.pack (Mc.unpack w))
  done;
  let lanes = Array.init 64 (fun i -> i mod 3 = 0) in
  Alcotest.(check bool) "pack then unpack" true
    (Mc.unpack (Mc.pack lanes) = lanes)

let test_popcount () =
  Alcotest.(check int) "zero" 0 (Mc.popcount 0L);
  Alcotest.(check int) "all ones" 64 (Mc.popcount (-1L));
  Alcotest.(check int) "one bit" 1 (Mc.popcount (Int64.shift_left 1L 63));
  let rng = Stoch.Rng.create 9 in
  for _ = 1 to 100 do
    let w = Stoch.Rng.bits64 rng in
    let slow = Array.fold_left (fun a b -> if b then a + 1 else a) 0 (Mc.unpack w) in
    Alcotest.(check int) "matches lane count" slow (Mc.popcount w)
  done

(* Pack 64 random vectors into one word per input, evaluate the whole
   circuit word-parallel, and check every lane of every net against the
   scalar evaluator. *)
let test_eval_matches_scalar_per_lane () =
  List.iter
    (fun (name, circuit) ->
      let rng = Stoch.Rng.create 11 in
      let words =
        List.map (fun net -> (net, Stoch.Rng.bits64 rng)) (C.primary_inputs circuit)
      in
      let values = Mc.eval_nets circuit ~inputs:(fun net -> List.assoc net words) in
      for lane = 0 to 63 do
        let bit net = (Mc.unpack (List.assoc net words)).(lane) in
        let expected = Netlist.Eval.nets circuit ~inputs:bit in
        for net = 0 to C.net_count circuit - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "%s lane %d net %s" name lane
               (C.net_name circuit net))
            expected.(net)
            (Mc.unpack values.(net)).(lane)
        done
      done)
    [ ("c17", Circuits.Suite.find "c17"); ("tree16", Circuits.Suite.find "tree16") ]

(* --- biased mask generation --- *)

let test_bernoulli_mask_bias () =
  let rng = Stoch.Rng.create 3 in
  List.iter
    (fun p ->
      let n = 2000 in
      let ones = ref 0 in
      for _ = 1 to n do
        ones := !ones + Mc.popcount (Mc.bernoulli_mask rng p)
      done;
      let total = float_of_int (64 * n) in
      let got = float_of_int !ones /. total in
      (* 5 sigma of a binomial with 128000 draws *)
      let tol = 5. *. sqrt (p *. (1. -. p) /. total) in
      Alcotest.(check bool)
        (Printf.sprintf "p=%.3f measured %.4f" p got)
        true
        (Float.abs (got -. p) <= tol +. 1e-9))
    [ 0.; 1.; 0.5; 0.125; 0.3; 0.05; 0.95; 0.7 ]

(* --- seed reproducibility --- *)

let estimate ?pool ?samples ~seed circuit =
  Mc.estimate (Lazy.force table) ?pool ?samples ~seed
    ~inputs:(scenario_a ~seed:1 circuit)
    circuit

let test_seed_reproducible () =
  let circuit = Circuits.Suite.find "c17" in
  let a = estimate ~samples:16384 ~seed:5 circuit in
  let b = estimate ~samples:16384 ~seed:5 circuit in
  let c = estimate ~samples:16384 ~seed:6 circuit in
  Alcotest.(check bool) "same seed, identical densities" true
    (a.Mc.density = b.Mc.density && a.Mc.density_se = b.Mc.density_se
   && a.Mc.net_toggles = b.Mc.net_toggles && a.Mc.energy = b.Mc.energy);
  Alcotest.(check bool) "different seed, different toggles" true
    (a.Mc.net_toggles <> c.Mc.net_toggles)

(* --- parallel bit-identity --- *)

let test_jobs_bit_identical () =
  let circuit = Circuits.Suite.find "tree16" in
  let seq = estimate ~samples:65536 ~seed:42 circuit in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let par = estimate ~pool ~samples:65536 ~seed:42 circuit in
  (* Bit-identical, not close: block streams are split before the fan-out
     and folded in submission order. *)
  Alcotest.(check bool) "toggles identical" true
    (par.Mc.net_toggles = seq.Mc.net_toggles
    && par.Mc.net_rises = seq.Mc.net_rises
    && par.Mc.net_high = seq.Mc.net_high);
  Alcotest.(check bool) "density floats identical" true
    (par.Mc.density = seq.Mc.density && par.Mc.density_se = seq.Mc.density_se);
  Alcotest.(check bool) "prob floats identical" true
    (par.Mc.prob = seq.Mc.prob && par.Mc.prob_se = seq.Mc.prob_se);
  Alcotest.(check bool) "energy identical" true
    (par.Mc.energy = seq.Mc.energy && par.Mc.power = seq.Mc.power
   && par.Mc.per_net_energy = seq.Mc.per_net_energy)

(* --- standard error shrinks like 1/sqrt(N) --- *)

let mean_se r =
  let sum = Array.fold_left ( +. ) 0. r.Mc.density_se in
  sum /. float_of_int (Array.length r.Mc.density_se)

let test_se_shrinks () =
  let circuit = Circuits.Suite.find "tree16" in
  let small = estimate ~samples:32768 ~seed:17 circuit in
  let large = estimate ~samples:(32768 * 16) ~seed:17 circuit in
  Alcotest.(check bool) "16x the blocks" true
    (large.Mc.blocks = 16 * small.Mc.blocks);
  let ratio = mean_se small /. mean_se large in
  (* expected 4 = sqrt(16); accept a generous band around it *)
  Alcotest.(check bool)
    (Printf.sprintf "se ratio %.2f in [2, 8]" ratio)
    true
    (ratio >= 2. && ratio <= 8.)

(* standard errors must actually cover the truth: on a tree the
   analytical density is exact, so the estimate lands within a few se *)
let test_se_covers_analytical () =
  let circuit = Circuits.Suite.find "tree16" in
  let inputs = scenario_a ~seed:1 circuit in
  let r = Mc.estimate (Lazy.force table) ~samples:262144 ~seed:3 ~inputs circuit in
  let analysis = Power.Analysis.run (Lazy.force table) circuit ~inputs in
  let total_time = float_of_int r.Mc.trajectories *. r.Mc.window in
  for net = 0 to C.net_count circuit - 1 do
    let d = S.density (Power.Analysis.stats analysis net) in
    (* the Poisson floor covers nets whose expected toggle count over
       the summed lane-time is O(1) — there the block se is itself 0 *)
    let floor = 5. *. sqrt (Float.max (d *. total_time) 1.) /. total_time in
    let slack = (5. *. r.Mc.density_se.(net)) +. (0.02 *. d) +. floor in
    Alcotest.(check bool)
      (Printf.sprintf "net %s: |%.4g - %.4g| <= %.4g" (C.net_name circuit net)
         r.Mc.density.(net) d slack)
      true
      (Float.abs (r.Mc.density.(net) -. d) <= slack)
  done

(* --- constant and latched inputs --- *)

let test_constant_inputs () =
  let circuit = Circuits.Suite.find "c17" in
  let inputs _ = S.constant true in
  let r = Mc.estimate (Lazy.force table) ~samples:8192 ~seed:1 ~inputs circuit in
  let expected = Netlist.Eval.nets circuit ~inputs:(fun _ -> true) in
  for net = 0 to C.net_count circuit - 1 do
    Alcotest.(check int)
      (Printf.sprintf "net %s never toggles" (C.net_name circuit net))
      0 r.Mc.net_toggles.(net);
    Alcotest.(check (float 0.))
      (Printf.sprintf "net %s pinned" (C.net_name circuit net))
      (if expected.(net) then 1. else 0.)
      r.Mc.prob.(net)
  done;
  Alcotest.(check (float 0.)) "no toggles, no power" 0. r.Mc.power

let test_latched_inputs () =
  let circuit = Circuits.Suite.find "c17" in
  let inputs _ = S.latched in
  let r = Mc.estimate (Lazy.force table) ~samples:262144 ~seed:2 ~inputs circuit in
  List.iter
    (fun net ->
      (* P = 0.5, D = 0.5: the chain realizes both exactly in
         expectation; 6 se of slack keeps the fixed seed safe. *)
      Alcotest.(check bool)
        (Printf.sprintf "input %s prob %.3f" (C.net_name circuit net)
           r.Mc.prob.(net))
        true
        (Float.abs (r.Mc.prob.(net) -. 0.5)
        <= (6. *. r.Mc.prob_se.(net)) +. 0.01);
      Alcotest.(check bool)
        (Printf.sprintf "input %s density %.3f" (C.net_name circuit net)
           r.Mc.density.(net))
        true
        (Float.abs (r.Mc.density.(net) -. 0.5)
        <= (6. *. r.Mc.density_se.(net)) +. 0.01))
    (C.primary_inputs circuit)

(* --- bookkeeping --- *)

let test_result_accounting () =
  let circuit = Circuits.Suite.find "c17" in
  Obs.reset ();
  let r = estimate ~samples:16384 ~seed:4 circuit in
  Alcotest.(check int) "trajectories" (r.Mc.blocks * r.Mc.words_per_block * 64)
    r.Mc.trajectories;
  Alcotest.(check int) "samples" (r.Mc.trajectories * r.Mc.steps) r.Mc.samples;
  Alcotest.(check bool) "window" true (r.Mc.window = float_of_int r.Mc.steps *. r.Mc.dt);
  Alcotest.(check (float 1e-24)) "energy is the net fold"
    (Array.fold_left ( +. ) 0. r.Mc.per_net_energy)
    r.Mc.energy;
  List.iter
    (fun net ->
      Alcotest.(check (float 0.)) "primary inputs book no energy" 0.
        r.Mc.per_net_energy.(net))
    (C.primary_inputs circuit);
  (* rises and falls alternate: they differ by at most one per lane *)
  for net = 0 to C.net_count circuit - 1 do
    let falls = r.Mc.net_toggles.(net) - r.Mc.net_rises.(net) in
    Alcotest.(check bool) "rises within one of falls per trajectory" true
      (abs (falls - r.Mc.net_rises.(net)) <= r.Mc.trajectories)
  done;
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "mc counters land in obs" true
    (Obs.counter_value snap "mc.words_evaluated" > 0
    && Obs.counter_value snap "mc.samples" = r.Mc.samples);
  let s = Mc.measured_stats r (List.hd (C.primary_inputs circuit)) in
  Alcotest.(check bool) "measured_stats is well-formed" true
    (S.prob s >= 0. && S.prob s <= 1. && S.density s >= 0.)

let () =
  Alcotest.run "mc"
    [
      ( "words",
        [
          Alcotest.test_case "pack/unpack round-trip" `Quick
            test_pack_unpack_roundtrip;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "word eval matches scalar eval per lane" `Quick
            test_eval_matches_scalar_per_lane;
          Alcotest.test_case "bernoulli mask bias" `Quick
            test_bernoulli_mask_bias;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seed reproducible" `Quick test_seed_reproducible;
          Alcotest.test_case "jobs:4 bit-identical to sequential" `Quick
            test_jobs_bit_identical;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "standard error shrinks ~1/sqrt(N)" `Quick
            test_se_shrinks;
          Alcotest.test_case "se covers the analytical truth on a tree" `Quick
            test_se_covers_analytical;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "constant inputs" `Quick test_constant_inputs;
          Alcotest.test_case "latched inputs" `Quick test_latched_inputs;
          Alcotest.test_case "result accounting" `Quick test_result_accounting;
        ] );
    ]
