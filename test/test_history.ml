(* Tests for the fleet-history subsystem: metric extraction out of run
   records, series-fingerprint alignment, trend summaries, the
   deterministic CUSUM changepoint detector (flags an injected step at
   the right run, stays silent under pure noise), the bench-history
   tolerant reader, and the HTML dashboard round-trip through its
   strict validator — including hostile names. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let replace_all ~pat ~by s =
  let np = String.length pat in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - np do
    if String.sub s !i np = pat then begin
      Buffer.add_string b by;
      i := !i + np
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_string b (String.sub s !i (String.length s - !i));
  Buffer.contents b

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_scratch f =
  let dir = Filename.temp_dir "history_test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let snap counters =
  Printf.sprintf
    {|{"counters":{%s},"distributions":{"optimizer.gate_gain_pct":{"count":4,"sum":10,"min":1,"max":4,"p50":2.5,"p90":4,"p99":4}},"spans":{"optimize.run":{"calls":1,"total_s":0.25,"slowest_s":0.25}},"gc":{"minor_words":0,"major_words":0}}|}
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%g" k v) counters))

let ledger_doc =
  {|{"circuit":"rca8","external_load":0,"total_before":2,"total_after":1.5,"reduction_percent":25,"gates":[{"index":0,"cell":"nand2","output":"n0","config_before":0,"config_after":1,"power_before":0.5,"power_after":0.4,"internal_before":0,"internal_after":0,"candidates":[]}]}|}

let audit_doc =
  {|{"summary":{"mean_density_err_pct":5.25,"max_density_err_pct":9.0,"mean_prob_err":0.001,"max_prob_err":0.01,"model_total":1.0,"sim_total":1.01,"total_err_pct":1.0}}|}

let write_run ~dir ~id ?(params = [ ("circuit", "rca8"); ("seed", "42") ])
    ?(attachments = []) ?(counters = [ ("optimizer.configs_explored", 5000.) ])
    () =
  let p = Runlog.start ~subcommand:"optimize" ~argv:[ "optimize"; "rca8" ] () in
  List.iter (fun (k, v) -> Runlog.set_param p k v) params;
  List.iter (fun (name, json) -> Runlog.attach p ~name ~json) attachments;
  ok (Runlog.write ~id ~dir ~snapshot_json:(snap counters) p)

(* --- extraction --- *)

let test_record_extraction () =
  with_scratch @@ fun dir ->
  let _ =
    write_run ~dir ~id:"r01"
      ~attachments:[ ("ledger", ledger_doc); ("audit", audit_doc) ]
      ~counters:
        [
          ("optimizer.configs_explored", 5000.);
          ("optimizer.memo_hits", 90.);
          ("optimizer.memo_misses", 10.);
        ]
      ()
  in
  let records = ok (History.load_archive dir) in
  Alcotest.(check int) "one record" 1 (List.length records);
  let r = List.hd records in
  let get name =
    match List.assoc_opt name r.History.r_metrics with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  Alcotest.(check (float 0.)) "counter verbatim" 5000.
    (get "optimizer.configs_explored");
  Alcotest.(check (float 0.)) "memo hit rate" 90. (get "memo.hit_rate_pct");
  Alcotest.(check (float 0.)) "ledger before" 2. (get "ledger.total_before");
  Alcotest.(check (float 0.)) "ledger after" 1.5 (get "ledger.total_after");
  Alcotest.(check (float 0.)) "reduction" 25. (get "ledger.reduction_pct");
  Alcotest.(check (float 0.)) "audit mean" 5.25
    (get "audit.mean_density_err_pct");
  Alcotest.(check (float 0.)) "dist p50" 2.5
    (get "dist.optimizer.gate_gain_pct.p50");
  Alcotest.(check (float 0.)) "dist mean" 2.5
    (get "dist.optimizer.gate_gain_pct.mean");
  Alcotest.(check (float 0.)) "span seconds" 0.25 (get "span.optimize.run");
  Alcotest.(check bool) "wall_s present" true
    (List.mem_assoc "wall_s" r.History.r_metrics);
  Alcotest.(check (option string)) "circuit" (Some "rca8") r.History.r_circuit

let test_fingerprint_alignment () =
  with_scratch @@ fun dir ->
  let manifest id =
    (ok (Runlog.load_run (Filename.concat dir id))).Runlog.manifest
  in
  let _ = write_run ~dir ~id:"a" () in
  let _ =
    write_run ~dir ~id:"b"
      ~params:[ ("circuit", "rca8"); ("seed", "42"); ("jobs", "8") ]
      ()
  in
  let _ =
    write_run ~dir ~id:"c" ~params:[ ("circuit", "tree16"); ("seed", "42") ] ()
  in
  let fa = History.series_fingerprint (manifest "a")
  and fb = History.series_fingerprint (manifest "b")
  and fc = History.series_fingerprint (manifest "c") in
  Alcotest.(check string) "jobs excluded from the fingerprint" fa fb;
  Alcotest.(check bool) "different circuit, different series" false (fa = fc);
  (* and the grouping follows the fingerprints *)
  let report =
    History.build ~metrics:[ "optimizer.configs_explored" ]
      (ok (History.load_archive dir))
  in
  Alcotest.(check int) "two groups" 2 (List.length report.History.groups);
  List.iter
    (fun (g : History.group) ->
      let n =
        Array.length (List.hd g.History.g_series).History.se_points
      in
      if g.History.g_fingerprint = fa then
        Alcotest.(check int) "aligned group has both runs" 2 n
      else Alcotest.(check int) "tree16 group has one run" 1 n)
    report.History.groups

(* --- trend --- *)

let test_trend () =
  let t = History.trend [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "n" 4 t.History.t_n;
  Alcotest.(check (float 1e-12)) "first" 1. t.History.t_first;
  Alcotest.(check (float 1e-12)) "last" 4. t.History.t_last;
  Alcotest.(check (float 1e-12)) "mean" 2.5 t.History.t_mean;
  Alcotest.(check (float 1e-12)) "rate" 1. t.History.t_rate;
  (* EWMA alpha 0.3 from 1: 1 -> 1.3 -> 1.81 -> 2.467 *)
  Alcotest.(check (float 1e-9)) "ewma" 2.467 t.History.t_ewma;
  let single = History.trend [| 7. |] in
  Alcotest.(check (float 0.)) "single rate" 0. single.History.t_rate;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "History.trend: empty series") (fun () ->
      ignore (History.trend [||]))

(* --- detector --- *)

let test_detect_step () =
  let xs =
    [| 10.1; 9.9; 10.2; 10.0; 9.8; 10.1; 15.2; 15.0; 14.9; 15.1 |]
  in
  match History.detect xs with
  | [ sh ] ->
      Alcotest.(check int) "dated at the first shifted point" 6
        sh.History.sh_index;
      Alcotest.(check bool) "direction up" true
        (sh.History.sh_direction = History.Up);
      Alcotest.(check bool) "before mean near 10" true
        (Float.abs (sh.History.sh_before -. 10.) < 0.5);
      Alcotest.(check bool) "after mean near 15" true
        (Float.abs (sh.History.sh_after -. 15.) < 0.5)
  | shifts -> Alcotest.failf "expected 1 shift, got %d" (List.length shifts)

let test_detect_noise_silent () =
  let xs =
    [| 10.1; 9.9; 10.2; 10.0; 9.8; 10.1; 10.05; 9.95; 10.15; 9.85 |]
  in
  Alcotest.(check int) "pure noise never flags" 0
    (List.length (History.detect xs))

let test_detect_piecewise_constant () =
  (* Deterministic counters: most diffs exactly zero, one exact step. *)
  (match History.detect [| 5.; 5.; 5.; 7.; 7.; 7.; 7.; 7. |] with
  | [ sh ] ->
      Alcotest.(check int) "exact changepoint" 3 sh.History.sh_index;
      Alcotest.(check (float 0.)) "before" 5. sh.History.sh_before;
      Alcotest.(check (float 0.)) "after" 7. sh.History.sh_after;
      Alcotest.(check bool) "up" true (sh.History.sh_direction = History.Up)
  | shifts -> Alcotest.failf "expected 1 shift, got %d" (List.length shifts));
  match History.detect [| 20.; 20.; 20.; 20.; 10.; 10.; 10.; 10. |] with
  | [ sh ] ->
      Alcotest.(check int) "down step index" 4 sh.History.sh_index;
      Alcotest.(check bool) "down" true
        (sh.History.sh_direction = History.Down)
  | shifts -> Alcotest.failf "expected 1 shift, got %d" (List.length shifts)

let test_detect_short_series () =
  Alcotest.(check int) "n < 4 never flags" 0
    (List.length (History.detect [| 1.; 100.; 1. |]));
  Alcotest.(check int) "constant series has no shifts" 0
    (List.length (History.detect (Array.make 10 3.)))

let test_orientation () =
  let check name expected =
    Alcotest.(check bool) name true (History.orientation name = expected)
  in
  check "wall_s" History.Higher_worse;
  check "audit.mean_density_err_pct" History.Higher_worse;
  check "ledger.total_after" History.Higher_worse;
  check "span.optimize.run" History.Higher_worse;
  check "memo.hit_rate_pct" History.Lower_worse;
  check "ledger.reduction_pct" History.Lower_worse;
  check "optimizer.configs_explored" History.Neutral

(* --- archive end to end: injected regression --- *)

let build_drift_archive dir =
  for i = 1 to 8 do
    let explored = if i >= 6 then 7500. else 5000. in
    let _ =
      write_run ~dir
        ~id:(Printf.sprintf "r%02d" i)
        ~counters:[ ("optimizer.configs_explored", explored) ]
        ()
    in
    ()
  done

let test_regression_attribution () =
  with_scratch @@ fun dir ->
  build_drift_archive dir;
  let report =
    History.build ~metrics:[ "optimizer.configs_explored" ]
      (ok (History.load_archive dir))
  in
  match History.regressions report with
  | [ r ] ->
      let sh = r.History.rg_shift in
      Alcotest.(check int) "flagged at the 6th run" 5 sh.History.sh_index;
      let p = r.History.rg_series.History.se_points.(sh.History.sh_index) in
      Alcotest.(check string) "attributed to r06" "r06" p.History.p_run;
      Alcotest.(check (list string)) "breadcrumb argv"
        [ "optimize"; "rca8" ] p.History.p_argv
  | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs)

let test_build_deterministic () =
  with_scratch @@ fun dir ->
  build_drift_archive dir;
  let json () =
    History.to_json
      (History.build ~metrics:[ "optimizer.configs_explored"; "wall_s" ]
         (ok (History.load_archive dir)))
  in
  let a = json () and b = json () in
  Alcotest.(check string) "byte-identical across rebuilds" a b;
  (* the JSON parses, and the series values round-trip bit-exactly *)
  let doc = ok (Trace.Json.parse a) in
  let arr = function Some (Trace.Json.Arr l) -> l | _ -> [] in
  let explored =
    arr (Trace.Json.member "groups" doc)
    |> List.concat_map (fun g -> arr (Trace.Json.member "series" g))
    |> List.find (fun s ->
           Trace.Json.member "metric" s
           = Some (Trace.Json.Str "optimizer.configs_explored"))
  in
  let values =
    arr (Trace.Json.member "points" explored)
    |> List.filter_map (fun p ->
           Option.bind (Trace.Json.member "v" p) Trace.Json.to_float)
  in
  Alcotest.(check (list (float 0.)))
    "bit-exact values through JSON"
    [ 5000.; 5000.; 5000.; 5000.; 5000.; 7500.; 7500.; 7500. ]
    values

(* --- bench history reader --- *)

let test_bench_history_tolerant () =
  with_scratch @@ fun dir ->
  let path = Filename.concat dir "BENCH_history.ndjson" in
  let oc = open_out_bin path in
  output_string oc
    ({|{"v":1,"time":100.0,"target":"table2","argv":["table2"],"seconds":0.5,"metrics":{"counters":{"optimizer.configs_explored":42},"distributions":{},"spans":{},"gc":{}}}|}
    ^ "\n"
    ^ {|{"v":1,"time":200.0,"target":"table2","argv":["table2"],"seconds":0.6,"metrics":{"counters":{"optimizer.configs_explored":42},"distributions":{},"spans":{},"gc":{}}}|}
    ^ "\n" ^ {|{"v":1,"time":300.0,"target":"tab|});
  close_out oc;
  let records, skipped = ok (History.load_bench_history path) in
  Alcotest.(check int) "truncated tail skipped" 1 skipped;
  Alcotest.(check int) "two records" 2 (List.length records);
  let r = List.hd records in
  Alcotest.(check string) "label" "bench:table2" r.History.r_label;
  Alcotest.(check (float 0.)) "wall from seconds" 0.5
    (List.assoc "wall_s" r.History.r_metrics);
  Alcotest.(check (float 0.)) "snapshot folded in" 42.
    (List.assoc "optimizer.configs_explored" r.History.r_metrics)

(* --- HTML dashboard --- *)

let hostile = "<script>alert('pwn&\"')</script>"

let build_report ?(circuit = "rca8") () =
  with_scratch @@ fun dir ->
  for i = 1 to 6 do
    let _ =
      write_run ~dir
        ~id:(Printf.sprintf "r%02d" i)
        ~params:[ ("circuit", circuit); ("seed", "42") ]
        ~counters:
          [ ("optimizer.configs_explored", if i >= 4 then 9000. else 8000.) ]
        ()
    in
    ()
  done;
  History.build
    ~metrics:[ "optimizer.configs_explored"; "wall_s" ]
    (ok (History.load_archive dir))

let test_html_roundtrip () =
  let report = build_report () in
  let details =
    [
      {
        Html.rd_run = "r04";
        rd_ledger = [ ("n1", "nand2", 0.5, 0.4) ];
        rd_audit = [ ("mean_density_err_pct", 5.25) ];
      };
    ]
  in
  let html = Html.render ~title:"test dashboard" ~details report in
  let parsed = ok (Html.parse_report html) in
  (* every rendered series is inventoried with its exact point count *)
  Alcotest.(check int) "two sparklines" 2
    (List.length parsed.Html.pr_series);
  List.iter
    (fun (_, n) -> Alcotest.(check int) "six points" 6 n)
    parsed.Html.pr_series;
  Alcotest.(check (list string)) "drill-down present" [ "run-r04" ]
    parsed.Html.pr_details;
  (* and the payload is the exact History.to_json document *)
  let payload_threshold =
    Option.bind
      (Trace.Json.member "threshold" parsed.Html.pr_json)
      Trace.Json.to_float
  in
  Alcotest.(check (option (float 0.))) "payload threshold" (Some 5.)
    payload_threshold

let test_html_escapes_hostile_names () =
  let report = build_report ~circuit:hostile () in
  let details =
    [
      {
        Html.rd_run = "r01";
        rd_ledger = [ (hostile, "cell\"quote", 1.0, 0.9) ];
        rd_audit = [];
      };
    ]
  in
  let html = Html.render ~details report in
  Alcotest.(check bool) "no raw <script> payload injected" false
    (contains html "<script>alert");
  Alcotest.(check bool) "escaped form present" true
    (contains html "&lt;script&gt;alert");
  (* the strict validator still accepts it: exactly one script block *)
  let parsed = ok (Html.parse_report html) in
  ignore parsed

let test_html_validator_rejects () =
  let report = build_report () in
  let html = Html.render report in
  let fails needle text =
    match Html.parse_report text with
    | Ok _ -> Alcotest.failf "expected rejection (%s)" needle
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" needle)
          true (contains msg needle)
  in
  (* truncation loses the eof terminator *)
  fails "eof" (String.sub html 0 (String.length html - 40));
  (* a second script block is an injection *)
  fails "script"
    (let at = String.length html - 30 in
     String.sub html 0 at ^ "<script>x()</script>"
     ^ String.sub html at (String.length html - at));
  (* tampering with a sparkline's advertised point count *)
  fails "mismatch"
    (replace_all ~pat:"data-points=\"6\"" ~by:"data-points=\"5\"" html);
  (* an external asset reference *)
  fails "src="
    (replace_all ~pat:"<body>" ~by:"<body> <img src=\"http://evil\">" html)

let () =
  Alcotest.run "history"
    [
      ( "extraction",
        [
          Alcotest.test_case "flat metric map of a run" `Quick
            test_record_extraction;
          Alcotest.test_case "fingerprint alignment" `Quick
            test_fingerprint_alignment;
          Alcotest.test_case "bench history tolerant reader" `Quick
            test_bench_history_tolerant;
        ] );
      ( "analytics",
        [
          Alcotest.test_case "trend summary" `Quick test_trend;
          Alcotest.test_case "step regression flagged at the right run"
            `Quick test_detect_step;
          Alcotest.test_case "pure noise stays silent" `Quick
            test_detect_noise_silent;
          Alcotest.test_case "piecewise-constant exact changepoints" `Quick
            test_detect_piecewise_constant;
          Alcotest.test_case "short + constant series" `Quick
            test_detect_short_series;
          Alcotest.test_case "metric orientation" `Quick test_orientation;
          Alcotest.test_case "regression attribution breadcrumb" `Quick
            test_regression_attribution;
          Alcotest.test_case "deterministic, bit-exact JSON" `Quick
            test_build_deterministic;
        ] );
      ( "dashboard",
        [
          Alcotest.test_case "render/parse round-trip" `Quick
            test_html_roundtrip;
          Alcotest.test_case "hostile names escaped" `Quick
            test_html_escapes_hostile_names;
          Alcotest.test_case "validator rejects tampering" `Quick
            test_html_validator_rejects;
        ] );
    ]
