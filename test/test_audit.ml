(* Acceptance tests for the calibration audit: on every built-in suite
   circuit the audit runs end-to-end, measured density is exactly
   toggles / window from the same simulation with no net missing from
   the join, and a VCD dumped from that very run round-trips through
   the in-repo reader reproducing all per-net toggle counts. *)

module C = Netlist.Circuit
module Sim = Switchsim.Sim
module S = Stoch.Signal_stats

let proc = Cell.Process.default
let table = lazy (Power.Model.table proc)
let horizon = 2e-4

let run_audit ?sim ?observer ~seed circuit =
  let inputs =
    Power.Scenario.input_stats
      ~rng:(Stoch.Rng.create seed)
      Power.Scenario.A circuit
  in
  Audit.run (Lazy.force table) ?sim ?observer
    ~rng:(Stoch.Rng.create (seed + 1))
    ~inputs ~horizon circuit

let test_exact_join_on_suite () =
  List.iter
    (fun (name, circuit) ->
      let a = run_audit ~seed:42 circuit in
      Alcotest.(check int)
        (Printf.sprintf "%s: every net is in the join" name)
        (C.net_count circuit)
        (Array.length a.Audit.net_rows);
      Array.iteri
        (fun net (row : Audit.net_row) ->
          Alcotest.(check int) "rows are indexed by net id" net row.Audit.net;
          (* The acceptance criterion: measured density IS toggles over
             the window of the audited simulation — exactly. *)
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s net %s: density = toggles / window" name
               row.Audit.name)
            (float_of_int (Audit.sim_result a).Sim.net_toggles.(net) /. a.Audit.window)
            row.Audit.meas_density;
          Alcotest.(check int) "toggles come from the same run"
            (Audit.sim_result a).Sim.net_toggles.(net)
            row.Audit.toggles;
          Alcotest.(check bool) "predictions are finite" true
            (Float.is_finite row.Audit.pred_density
            && Float.is_finite row.Audit.pred_prob))
        a.Audit.net_rows;
      Alcotest.(check int)
        (Printf.sprintf "%s: every gate is in the join" name)
        (C.gate_count circuit)
        (Array.length a.Audit.gate_rows))
    (Circuits.Suite.all ())

let test_vcd_roundtrip_on_suite () =
  List.iter
    (fun (name, circuit) ->
      let sim = Sim.build proc circuit in
      let buf = Buffer.create 4096 in
      let observer, finish =
        Switchsim.Vcd_dump.make sim ~emit:(Buffer.add_string buf) ()
      in
      let a = run_audit ~sim ~observer ~seed:42 circuit in
      finish ~time:horizon;
      let doc =
        match Vcd.parse (Buffer.contents buf) with
        | Ok doc -> doc
        | Error e -> Alcotest.failf "%s: dump does not parse: %s" name e
      in
      let toggles = Vcd.toggle_counts doc in
      for net = 0 to C.net_count circuit - 1 do
        let key =
          Switchsim.Vcd_dump.sanitize (C.name circuit)
          ^ "."
          ^ Switchsim.Vcd_dump.sanitize (C.net_name circuit net)
        in
        match List.assoc_opt key toggles with
        | None -> Alcotest.failf "%s: net %s missing from the dump" name key
        | Some n ->
            Alcotest.(check int)
              (Printf.sprintf "%s net %s toggles round-trip" name key)
              (Audit.sim_result a).Sim.net_toggles.(net)
              n
      done)
    (Circuits.Suite.all ())

(* --- mc backend acceptance --- *)

let run_mc_audit ?samples ~seed circuit =
  let inputs =
    Power.Scenario.input_stats
      ~rng:(Stoch.Rng.create seed)
      Power.Scenario.A circuit
  in
  Audit.run (Lazy.force table) ~backend:Power.Backend.Mc ?samples
    ~rng:(Stoch.Rng.create (seed + 1))
    ~inputs ~horizon circuit

(* The mc backend must join exactly the same net set as the simulator
   backend: every net present, rows indexed by net id, all measured
   quantities finite, standard errors reported. *)
let test_mc_join_on_suite () =
  List.iter
    (fun (name, circuit) ->
      let a = run_mc_audit ~samples:16384 ~seed:42 circuit in
      Alcotest.(check int)
        (Printf.sprintf "%s: every net is in the mc join" name)
        (C.net_count circuit)
        (Array.length a.Audit.net_rows);
      Array.iteri
        (fun net (row : Audit.net_row) ->
          Alcotest.(check int) "rows are indexed by net id" net row.Audit.net;
          Alcotest.(check bool) "measured side is finite" true
            (Float.is_finite row.Audit.meas_density
            && Float.is_finite row.Audit.meas_prob
            && Float.is_finite row.Audit.meas_density_se
            && row.Audit.meas_density_se >= 0.);
          Alcotest.(check bool) "toggles counted" true (row.Audit.toggles >= 0))
        a.Audit.net_rows;
      Alcotest.(check int)
        (Printf.sprintf "%s: every gate is in the mc join" name)
        (C.gate_count circuit)
        (Array.length a.Audit.gate_rows);
      Alcotest.(check bool)
        (Printf.sprintf "%s: backend recorded" name)
        true
        (a.Audit.backend = Power.Backend.Mc))
    (Circuits.Suite.all ())

(* On read-once trees the spatial-independence assumption holds, so the
   analytical densities are exact in expectation and the mc measurement
   must agree within sampling tolerance. *)
let test_mc_agrees_with_analytical_on_trees () =
  List.iter
    (fun (name, circuit) ->
      let a = run_mc_audit ~samples:262144 ~seed:42 circuit in
      let s = a.Audit.summary in
      Alcotest.(check bool)
        (Printf.sprintf "%s: mc mean density error %.2f%% < 5%%" name
           s.Audit.mean_density_err_pct)
        true
        (s.Audit.mean_density_err_pct < 5.))
    (List.filter
       (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "tree")
       (Circuits.Suite.all ()))

let test_audit_uses_the_given_sim () =
  (* Passing ~sim must audit against that structure (configs baked in),
     and the observer sees the audited run itself. *)
  let circuit = Circuits.Suite.find "c17" in
  let sim = Sim.build proc circuit in
  let seen = ref 0 in
  let observer =
    {
      Sim.on_net = (fun ~time:_ ~net:_ ~before:_ ~after:_ ~in_window:_ -> incr seen);
      on_internal = None;
      on_energy = None;
    }
  in
  let inputs =
    Power.Scenario.input_stats ~rng:(Stoch.Rng.create 1) Power.Scenario.A
      circuit
  in
  let a =
    Audit.run (Lazy.force table) ~sim ~observer
      ~rng:(Stoch.Rng.create 2)
      ~inputs ~horizon circuit
  in
  Alcotest.(check bool) "observer saw the audited run" true (!seen > 0);
  Alcotest.(check bool) "window is the horizon" true (a.Audit.window = horizon)

let test_summary_and_serialization () =
  let circuit = Circuits.Suite.find "tree16" in
  Obs.reset ();
  let a = run_audit ~seed:42 circuit in
  let s = a.Audit.summary in
  Alcotest.(check bool) "active nets are counted" true
    (s.Audit.active_nets > 0 && s.Audit.active_nets <= s.Audit.nets);
  Alcotest.(check bool) "mean <= max density error" true
    (s.Audit.mean_density_err_pct <= s.Audit.max_density_err_pct);
  Alcotest.(check bool) "mean <= max prob error" true
    (s.Audit.mean_prob_err <= s.Audit.max_prob_err);
  (* On a tree the model is exact up to sampling noise: calibration must
     land within a loose but meaningful bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "tree16 mean density error %.1f%% < 25%%"
       s.Audit.mean_density_err_pct)
    true
    (s.Audit.mean_density_err_pct < 25.);
  (* Error distributions land in Obs. *)
  let snap = Obs.snapshot () in
  let dist name =
    List.exists (fun (n, _) -> n = name) snap.Obs.distributions
  in
  Alcotest.(check bool) "density error distribution" true
    (dist "audit.net_density_error_percent");
  Alcotest.(check bool) "prob error distribution" true
    (dist "audit.net_prob_error_abs");
  (* Serializations contain every net row. *)
  let json = Audit.to_json a in
  Alcotest.(check bool) "json has a summary" true
    (String.length json > 0 && json.[0] = '{');
  let ndjson = Audit.to_ndjson a in
  let lines = String.split_on_char '\n' ndjson |> List.filter (( <> ) "") in
  Alcotest.(check int) "one ndjson line per net, gate and summary"
    (C.net_count circuit + C.gate_count circuit + 1)
    (List.length lines);
  (* Ranking: worst_nets puts the largest active error first. *)
  match Audit.worst_nets ~top:2 a with
  | first :: _ ->
      Array.iter
        (fun (row : Audit.net_row) ->
          if row.Audit.toggles > 0 then
            Alcotest.(check bool) "no active net is worse than the first" true
              (Float.abs row.Audit.density_err_pct
              <= Float.abs first.Audit.density_err_pct))
        a.Audit.net_rows
  | [] -> Alcotest.fail "worst_nets is empty"

let () =
  Alcotest.run "audit"
    [
      ( "acceptance",
        [
          Alcotest.test_case "exact join on every suite circuit" `Quick
            test_exact_join_on_suite;
          Alcotest.test_case "vcd round-trips on every suite circuit" `Quick
            test_vcd_roundtrip_on_suite;
          Alcotest.test_case "mc backend joins every suite circuit" `Quick
            test_mc_join_on_suite;
          Alcotest.test_case "mc agrees with the model on trees" `Quick
            test_mc_agrees_with_analytical_on_trees;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "audit uses the given sim" `Quick
            test_audit_uses_the_given_sim;
          Alcotest.test_case "summary and serialization" `Quick
            test_summary_and_serialization;
        ] );
    ]
