(* Tests for the stochastic signal substrate: RNG determinism and
   statistical sanity, waveform construction, Markov generation realizing
   the requested statistics. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Stoch.Rng.create 42 and b = Stoch.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stoch.Rng.bits64 a) (Stoch.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stoch.Rng.create 1 and b = Stoch.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Stoch.Rng.bits64 a <> Stoch.Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Stoch.Rng.create 7 in
  let b = Stoch.Rng.copy a in
  let xa = Stoch.Rng.bits64 a in
  let xb = Stoch.Rng.bits64 b in
  Alcotest.(check int64) "copy replays" xa xb

let test_rng_split_independent () =
  let a = Stoch.Rng.create 7 in
  let b = Stoch.Rng.split a in
  let xa = Stoch.Rng.bits64 a and xb = Stoch.Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

(* Pearson chi-squared of observed byte counts against uniform. 255
   degrees of freedom: mean 255, sd ~22.6; the bound below is ~8 sd out,
   so a correct generator never trips it at these fixed seeds while a
   broken split (overlapping or correlated streams) blows past it. *)
let chi2_bytes draw ~draws =
  let counts = Array.make 256 0 in
  for _ = 1 to draws do
    let w = draw () in
    for byte = 0 to 7 do
      let v =
        Int64.to_int (Int64.logand (Int64.shift_right_logical w (8 * byte)) 0xFFL)
      in
      counts.(v) <- counts.(v) + 1
    done
  done;
  let expected = float_of_int (8 * draws) /. 256. in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0. counts

let chi2_bound = 437. (* chi2_{0.9999, 255} rounded up *)

(* The per-block stream scheme the MC engine relies on: streams split
   off one master must be marginally uniform AND mutually independent.
   The second chi-squared runs on XORs of lane-aligned draws from
   adjacent split streams — overlap or correlation between streams
   would collapse the XOR distribution far from uniform. *)
let test_rng_split_chi_squared () =
  let master = Stoch.Rng.create 42 in
  let streams = Array.init 8 (fun _ -> Stoch.Rng.split master) in
  (* pooled marginal uniformity over every split stream *)
  let i = ref 0 in
  let pooled () =
    let s = streams.(!i mod 8) in
    incr i;
    Stoch.Rng.bits64 s
  in
  let chi2 = chi2_bytes pooled ~draws:4096 in
  Alcotest.(check bool)
    (Printf.sprintf "pooled split-stream bytes uniform (chi2 %.0f < %.0f)"
       chi2 chi2_bound)
    true (chi2 < chi2_bound);
  (* pairwise independence: XOR of aligned draws is uniform too *)
  let streams = Array.init 8 (fun _ -> Stoch.Rng.split master) in
  let j = ref 0 in
  let xored () =
    let pair = !j mod 7 in
    incr j;
    Int64.logxor
      (Stoch.Rng.bits64 streams.(pair))
      (Stoch.Rng.bits64 streams.(pair + 1))
  in
  let chi2 = chi2_bytes xored ~draws:4096 in
  Alcotest.(check bool)
    (Printf.sprintf "xor of adjacent split streams uniform (chi2 %.0f < %.0f)"
       chi2 chi2_bound)
    true (chi2 < chi2_bound);
  (* and the master keeps its own stream usable after every split *)
  let after = Stoch.Rng.bits64 master in
  Alcotest.(check bool) "master still advances" true (after <> 0L)

let test_float_range () =
  let rng = Stoch.Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Stoch.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let rng = Stoch.Rng.create 11 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Stoch.Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Stoch.Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Stoch.Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_bernoulli_rate () =
  let rng = Stoch.Rng.create 13 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Stoch.Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Stoch.Rng.create 17 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Stoch.Rng.exponential rng 2.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.5" true (Float.abs (mean -. 2.5) < 0.05)

let test_shuffle_permutation () =
  let rng = Stoch.Rng.create 23 in
  let a = Array.init 20 Fun.id in
  Stoch.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* --- Signal_stats --- *)

let test_stats_make_valid () =
  let s = Stoch.Signal_stats.make ~prob:0.25 ~density:1e5 in
  check_float "prob" 0.25 (Stoch.Signal_stats.prob s);
  check_float "density" 1e5 (Stoch.Signal_stats.density s)

let test_stats_make_invalid () =
  let bad f = Alcotest.check_raises "rejects" (Invalid_argument f) in
  bad "Signal_stats.make: prob outside [0, 1]" (fun () ->
      ignore (Stoch.Signal_stats.make ~prob:1.5 ~density:0.));
  bad "Signal_stats.make: negative density" (fun () ->
      ignore (Stoch.Signal_stats.make ~prob:0.5 ~density:(-1.)));
  bad "Signal_stats.make: non-finite value" (fun () ->
      ignore (Stoch.Signal_stats.make ~prob:Float.nan ~density:0.))

let test_stats_constant () =
  let s1 = Stoch.Signal_stats.constant true in
  check_float "P(const 1)" 1. (Stoch.Signal_stats.prob s1);
  Alcotest.(check bool) "constant" true (Stoch.Signal_stats.is_constant s1)

let test_holding_times () =
  let s = Stoch.Signal_stats.make ~prob:0.25 ~density:2. in
  let mu0, mu1 = Stoch.Signal_stats.mean_holding_times s in
  check_float "mu0 = 2(1-P)/D" 0.75 mu0;
  check_float "mu1 = 2P/D" 0.25 mu1;
  (* Round trip: the realized process has density 2/(mu0+mu1) and
     probability mu1/(mu0+mu1). *)
  check_float "density round-trip" 2. (2. /. (mu0 +. mu1));
  check_float "prob round-trip" 0.25 (mu1 /. (mu0 +. mu1))

(* --- Waveform --- *)

let test_waveform_value_at () =
  let w =
    Stoch.Waveform.make ~initial:false ~transitions:[| 1.0; 2.5 |] ~horizon:4.0
  in
  Alcotest.(check bool) "before first" false (Stoch.Waveform.value_at w 0.5);
  Alcotest.(check bool) "at first (right-continuous)" true
    (Stoch.Waveform.value_at w 1.0);
  Alcotest.(check bool) "between" true (Stoch.Waveform.value_at w 2.0);
  Alcotest.(check bool) "after second" false (Stoch.Waveform.value_at w 3.0)

let test_waveform_measure () =
  let w =
    Stoch.Waveform.make ~initial:false ~transitions:[| 1.0; 3.0 |] ~horizon:4.0
  in
  let s = Stoch.Waveform.measure w in
  check_float "P = time at 1 / horizon" 0.5 (Stoch.Signal_stats.prob s);
  check_float "D = 2 transitions / 4s" 0.5 (Stoch.Signal_stats.density s)

let test_waveform_rejects_unsorted () =
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Waveform.make: transitions not strictly increasing")
    (fun () ->
      ignore
        (Stoch.Waveform.make ~initial:false ~transitions:[| 2.0; 1.0 |]
           ~horizon:4.0))

let test_waveform_rejects_beyond_horizon () =
  Alcotest.check_raises "beyond horizon rejected"
    (Invalid_argument "Waveform.make: transition outside (0, horizon]")
    (fun () ->
      ignore
        (Stoch.Waveform.make ~initial:false ~transitions:[| 5.0 |] ~horizon:4.0))

let test_waveform_of_bits () =
  let w =
    Stoch.Waveform.of_bits ~bits:[| true; true; false; true |] ~period:2.0
  in
  Alcotest.(check int) "2 transitions" 2 (Stoch.Waveform.transition_count w);
  Alcotest.(check bool) "initial" true (Stoch.Waveform.initial w);
  check_float "horizon" 8.0 (Stoch.Waveform.horizon w);
  Alcotest.(check bool) "bit 2" false (Stoch.Waveform.value_at w 5.0)

let test_waveform_fold_intervals_cover () =
  let w =
    Stoch.Waveform.make ~initial:true ~transitions:[| 0.5; 1.5; 2.0 |]
      ~horizon:3.0
  in
  let total =
    Stoch.Waveform.fold_intervals w ~init:0. ~f:(fun acc ~start ~stop ~value:_ ->
        acc +. (stop -. start))
  in
  check_float "intervals cover the horizon" 3.0 total

let test_generate_realizes_stats () =
  let rng = Stoch.Rng.create 99 in
  let stats = Stoch.Signal_stats.make ~prob:0.3 ~density:2.0 in
  let w = Stoch.Waveform.generate rng stats ~horizon:50_000. in
  let m = Stoch.Waveform.measure w in
  Alcotest.(check bool) "empirical P near 0.3" true
    (Float.abs (Stoch.Signal_stats.prob m -. 0.3) < 0.02);
  Alcotest.(check bool) "empirical D near 2.0" true
    (Float.abs (Stoch.Signal_stats.density m -. 2.0) < 0.05)

let test_generate_constant () =
  let rng = Stoch.Rng.create 1 in
  let w =
    Stoch.Waveform.generate rng (Stoch.Signal_stats.constant true) ~horizon:10.
  in
  Alcotest.(check int) "no transitions" 0 (Stoch.Waveform.transition_count w);
  Alcotest.(check bool) "stuck at 1" true (Stoch.Waveform.value_at w 5.)

(* Property: generated waveforms always satisfy the structural invariants
   and measure back to legal statistics. *)
let prop_generate_wellformed =
  QCheck.Test.make ~name:"generate yields well-formed waveforms" ~count:200
    QCheck.(triple (int_range 0 10_000) (float_range 0.05 0.95) (float_range 0.1 10.))
    (fun (seed, prob, density) ->
      let rng = Stoch.Rng.create seed in
      let stats = Stoch.Signal_stats.make ~prob ~density in
      let w = Stoch.Waveform.generate rng stats ~horizon:100. in
      let ts = Stoch.Waveform.transitions w in
      let sorted = ref true in
      Array.iteri
        (fun i t ->
          if i > 0 && t <= ts.(i - 1) then sorted := false;
          if t <= 0. || t > 100. then sorted := false)
        ts;
      let m = Stoch.Waveform.measure w in
      !sorted
      && Stoch.Signal_stats.prob m >= 0.
      && Stoch.Signal_stats.prob m <= 1.)

let () =
  Alcotest.run "stoch"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split streams chi-squared" `Quick
            test_rng_split_chi_squared;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Slow test_float_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "signal_stats",
        [
          Alcotest.test_case "make valid" `Quick test_stats_make_valid;
          Alcotest.test_case "make invalid" `Quick test_stats_make_invalid;
          Alcotest.test_case "constant" `Quick test_stats_constant;
          Alcotest.test_case "holding times" `Quick test_holding_times;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "value_at" `Quick test_waveform_value_at;
          Alcotest.test_case "measure" `Quick test_waveform_measure;
          Alcotest.test_case "rejects unsorted" `Quick test_waveform_rejects_unsorted;
          Alcotest.test_case "rejects beyond horizon" `Quick
            test_waveform_rejects_beyond_horizon;
          Alcotest.test_case "of_bits" `Quick test_waveform_of_bits;
          Alcotest.test_case "fold_intervals cover" `Quick
            test_waveform_fold_intervals_cover;
          Alcotest.test_case "generate realizes stats" `Slow
            test_generate_realizes_stats;
          Alcotest.test_case "generate constant" `Quick test_generate_constant;
          QCheck_alcotest.to_alcotest prop_generate_wellformed;
        ] );
    ]
