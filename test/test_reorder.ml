(* Tests for the core optimizer (Fig. 3): improvement, greedy global
   optimality under the monotonic model, delay-bounded and
   input-reordering-only variants. *)

module O = Reorder.Optimizer
module C = Netlist.Circuit
module B = Netlist.Builder
module S = Stoch.Signal_stats

let power_table () = Power.Model.table Cell.Process.default
let delay_table () = Delay.Elmore.table Cell.Process.default

let scenario_inputs seed scenario circuit =
  Power.Scenario.input_stats ~rng:(Stoch.Rng.create seed) scenario circuit

(* Asymmetric activities make reordering worthwhile. *)
let asymmetric circuit =
  let nets = List.length (C.primary_inputs circuit) in
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i net ->
      let density = 1e3 *. (10. ** (3. *. float_of_int i /. float_of_int nets)) in
      Hashtbl.add table net (S.make ~prob:0.5 ~density))
    (C.primary_inputs circuit);
  fun net -> Hashtbl.find table net

let test_optimize_improves () =
  let pt = power_table () and dt = delay_table () in
  List.iter
    (fun (name, circuit) ->
      let inputs = asymmetric circuit in
      let r = O.optimize pt ~delay:dt circuit ~inputs in
      Alcotest.(check bool)
        (name ^ ": never worse than the input netlist")
        true
        (r.O.power_after <= r.O.power_before +. 1e-18))
    (Circuits.Suite.small ())

let test_best_leq_worst () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let inputs = scenario_inputs 5 Power.Scenario.A circuit in
  let best, worst = O.best_and_worst pt ~delay:dt circuit ~inputs in
  Alcotest.(check bool) "best < worst" true
    (best.O.power_after < worst.O.power_after);
  Alcotest.(check bool) "positive reduction" true
    (O.reduction_percent ~best:best.O.power_after ~worst:worst.O.power_after
     > 0.)

let test_optimize_idempotent () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "mux8" in
  let inputs = scenario_inputs 11 Power.Scenario.A circuit in
  let r1 = O.optimize pt ~delay:dt circuit ~inputs in
  let r2 = O.optimize pt ~delay:dt r1.O.circuit ~inputs in
  Alcotest.(check int) "no further change" 0 r2.O.gates_changed;
  Alcotest.(check (float 1e-18)) "same power" r1.O.power_after r2.O.power_after

(* Under the model, the greedy one-pass result is globally optimal
   (§4.2): verify by brute force over every configuration combination of
   a small circuit. *)
let test_greedy_is_globally_optimal () =
  let pt = power_table () and dt = delay_table () in
  let b = B.create ~name:"tiny" in
  let x0 = B.input b "x0" in
  let x1 = B.input b "x1" in
  let x2 = B.input b "x2" in
  let y = B.gate b "oai21" [ x0; x1; x2 ] in
  let z = B.gate b "nand3" [ y; x1; x0 ] in
  B.output b z;
  let circuit = B.finish b in
  let inputs = asymmetric circuit in
  let r = O.optimize pt ~delay:dt circuit ~inputs in
  let analysis = Power.Analysis.run pt circuit ~inputs in
  let brute = ref infinity in
  let count0 = Cell.Gate.config_count (C.gate_at circuit 0).C.cell in
  let count1 = Cell.Gate.config_count (C.gate_at circuit 1).C.cell in
  for c0 = 0 to count0 - 1 do
    for c1 = 0 to count1 - 1 do
      let candidate = C.with_configs circuit [| c0; c1 |] in
      brute := Float.min !brute (Power.Estimate.total pt candidate analysis)
    done
  done;
  Alcotest.(check (float 1e-20)) "greedy = exhaustive minimum" !brute
    r.O.power_after

let test_single_gate_argmin () =
  let pt = power_table () and dt = delay_table () in
  let b = B.create ~name:"one" in
  let x0 = B.input b "a" in
  let x1 = B.input b "b" in
  let x2 = B.input b "c" in
  let x3 = B.input b "d" in
  let y = B.gate b "nand4" [ x0; x1; x2; x3 ] in
  B.output b y;
  let circuit = B.finish b in
  let inputs = asymmetric circuit in
  let r = O.optimize pt ~delay:dt circuit ~inputs in
  let analysis = Power.Analysis.run pt circuit ~inputs in
  let powers =
    List.init 24 (fun config ->
        (Power.Estimate.gate pt circuit analysis 0 ~config).Power.Model.total)
  in
  let min_power = List.fold_left Float.min infinity powers in
  Alcotest.(check (float 1e-22)) "argmin over 24 configurations" min_power
    (List.nth powers r.O.configs.(0))

let test_delay_bounded_respects_circuit_delay () =
  let pt = power_table () and dt = delay_table () in
  List.iter
    (fun name ->
      let circuit = Circuits.Suite.find name in
      let inputs = scenario_inputs 3 Power.Scenario.A circuit in
      let r =
        O.optimize pt ~delay:dt ~objective:O.Min_power_delay_bounded circuit
          ~inputs
      in
      let sta c = Delay.Sta.critical_delay (Delay.Sta.run dt c) in
      Alcotest.(check bool)
        (name ^ ": critical path not degraded")
        true
        (sta r.O.circuit <= sta circuit +. 1e-15);
      Alcotest.(check bool)
        (name ^ ": power not degraded")
        true
        (r.O.power_after <= r.O.power_before +. 1e-18))
    [ "rca4"; "mux8"; "alu1"; "c17" ]

let test_delay_bounded_weaker_than_free () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca8" in
  let inputs = scenario_inputs 17 Power.Scenario.A circuit in
  let free = O.optimize pt ~delay:dt circuit ~inputs in
  let bounded =
    O.optimize pt ~delay:dt ~objective:O.Min_power_delay_bounded circuit ~inputs
  in
  Alcotest.(check bool) "bounded cannot beat free" true
    (bounded.O.power_after >= free.O.power_after -. 1e-18)

let test_input_reordering_only_subset () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "alu1" in
  let inputs = scenario_inputs 29 Power.Scenario.A circuit in
  let restricted = O.optimize pt ~delay:dt ~input_reordering_only:true circuit ~inputs in
  let free = O.optimize pt ~delay:dt circuit ~inputs in
  (* Chosen configurations keep the reference layout shape. *)
  Array.iteri
    (fun g config ->
      let cell = (C.gate_at circuit g).C.cell in
      let configs = Cell.Config.all cell in
      Alcotest.(check bool)
        (Printf.sprintf "gate %d same shape" g)
        true
        (Cell.Config.same_shape (List.nth configs config)
           (Cell.Config.reference cell)))
    restricted.O.configs;
  Alcotest.(check bool) "restricted cannot beat free" true
    (restricted.O.power_after >= free.O.power_after -. 1e-18)

let test_min_delay_objective () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let inputs = scenario_inputs 41 Power.Scenario.B circuit in
  let r = O.optimize pt ~delay:dt ~objective:O.Min_delay circuit ~inputs in
  Array.iteri
    (fun g config ->
      let cell = (C.gate_at circuit g).C.cell in
      let load = Power.Estimate.output_load pt circuit g in
      let chosen = Delay.Elmore.worst_delay dt cell ~config ~load in
      List.iter
        (fun other ->
          Alcotest.(check bool)
            (Printf.sprintf "gate %d fastest" g)
            true
            (chosen
             <= Delay.Elmore.worst_delay dt cell ~config:other ~load +. 1e-18))
        (List.init (Cell.Gate.config_count cell) Fun.id))
    r.O.configs

let test_explored_counts () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "c17" in
  let inputs = scenario_inputs 1 Power.Scenario.B circuit in
  let r = O.optimize pt ~delay:dt circuit ~inputs in
  (* c17 = 6 nand2 gates, 2 configurations each. *)
  Alcotest.(check int) "12 configurations explored" 12
    r.O.configurations_explored

let test_reduction_percent () =
  Alcotest.(check (float 1e-9)) "25%" 25.
    (O.reduction_percent ~best:7.5 ~worst:10.);
  Alcotest.(check (float 1e-9)) "degenerate" 0.
    (O.reduction_percent ~best:0. ~worst:0.);
  (* worst = 0 must not divide by zero, whatever best is. *)
  Alcotest.(check (float 1e-9)) "worst = 0, best > 0" 0.
    (O.reduction_percent ~best:5. ~worst:0.);
  Alcotest.(check (float 1e-9)) "worst < 0" 0.
    (O.reduction_percent ~best:(-1.) ~worst:(-2.));
  (* best > worst (mismatched scenarios) clamps to 0, not negative. *)
  Alcotest.(check (float 1e-9)) "best > worst clamps to 0" 0.
    (O.reduction_percent ~best:12. ~worst:10.);
  (* best < 0 with worst > 0 clamps to 100, not beyond. *)
  Alcotest.(check (float 1e-9)) "negative best clamps to 100" 100.
    (O.reduction_percent ~best:(-5.) ~worst:10.);
  (* pp_report surfaces the percentage so CLI users need not compute it. *)
  let b = B.create ~name:"pp" in
  let a = B.input b "a" in
  let c = B.input b "c" in
  B.output b (B.nand2 b a c);
  let circuit = B.finish b in
  let r =
    {
      O.circuit;
      configs = [| 0 |];
      power_before = 10.;
      power_after = 7.5;
      gates_changed = 0;
      configurations_explored = 2;
    }
  in
  let rendered = Format.asprintf "%a" O.pp_report r in
  let contains needle haystack =
    let ln = String.length needle in
    let rec at i =
      i + ln <= String.length haystack
      && (String.sub haystack i ln = needle || at (i + 1))
    in
    at 0
  in
  Alcotest.(check bool) "pp_report prints the reduction" true
    (contains "25.0% reduction" rendered)

let test_rewritten_circuit_same_function () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let inputs = scenario_inputs 2 Power.Scenario.A circuit in
  let r = O.optimize pt ~delay:dt circuit ~inputs in
  (* Reordering is function-preserving: same outputs on random vectors. *)
  let rng = Stoch.Rng.create 123 in
  for _ = 1 to 50 do
    let vector = Hashtbl.create 16 in
    List.iter
      (fun net -> Hashtbl.add vector net (Stoch.Rng.bool rng))
      (C.primary_inputs circuit);
    let env net = Hashtbl.find vector net in
    Alcotest.(check (list bool)) "same outputs"
      (Netlist.Eval.outputs circuit ~inputs:env)
      (Netlist.Eval.outputs r.O.circuit ~inputs:env)
  done

(* --- memo quantization --- *)

module M = Reorder.Memo

let test_memo_quantization () =
  (* Probability grid: round-trip stability and boundary behaviour. *)
  for b = 0 to M.prob_buckets do
    Alcotest.(check int)
      (Printf.sprintf "prob bucket %d round-trips" b)
      b
      (M.quantize_prob (M.representative_prob b))
  done;
  Alcotest.(check int) "prob clamped below" 0 (M.quantize_prob (-0.5));
  Alcotest.(check int) "prob clamped above" M.prob_buckets
    (M.quantize_prob 1.5);
  let w = 1. /. float_of_int M.prob_buckets in
  (* Values just either side of a bucket midpoint land in adjacent
     buckets: the grid actually discriminates at its stated width. *)
  Alcotest.(check bool) "midpoint splits buckets" true
    (M.quantize_prob ((0.5 *. w) -. 1e-9) = 0
    && M.quantize_prob ((0.5 *. w) +. 1e-9) = 1);
  (* Log grid: zero bucket and round-trips. *)
  Alcotest.(check bool) "zero density gets the zero bucket" true
    (M.quantize_log 0. = None && M.quantize_log (-1.) = None);
  Alcotest.(check (float 1e-12)) "zero bucket representative" 0.
    (M.representative_log None);
  List.iter
    (fun v ->
      let b = M.quantize_log v in
      Alcotest.(check bool)
        (Printf.sprintf "log bucket of %g round-trips" v)
        true
        (M.quantize_log (M.representative_log b) = b))
    [ 1e-3; 0.02; 1.; 17.; 1e4; 3.3e6 ];
  (* A decade spans exactly log_buckets_per_decade buckets. *)
  match (M.quantize_log 10., M.quantize_log 100.) with
  | Some a, Some b ->
      Alcotest.(check int) "buckets per decade" M.log_buckets_per_decade (b - a)
  | _ -> Alcotest.fail "positive values must get a bucket"

let test_memo_keys_discriminate () =
  let cell = Cell.Gate.of_name "nand2" in
  let groups = [| 0; 1 |] in
  let stats p d = [| S.make ~prob:p ~density:d; S.make ~prob:p ~density:d |] in
  let key ?(maximize = false) ?(input_only = false) ?(load = 20e-15) st =
    M.key ~cell ~maximize ~input_only ~groups ~input_stats:st ~load
  in
  let base = key (stats 0.5 1e5) in
  Alcotest.(check string) "same quantized inputs, same key" base
    (key (stats 0.5001 1.0001e5));
  Alcotest.(check bool) "direction in the key" true
    (base <> key ~maximize:true (stats 0.5 1e5));
  Alcotest.(check bool) "restriction in the key" true
    (base <> key ~input_only:true (stats 0.5 1e5));
  Alcotest.(check bool) "probability in the key" true
    (base <> key (stats 0.9 1e5));
  Alcotest.(check bool) "density in the key" true
    (base <> key (stats 0.5 1e8));
  Alcotest.(check bool) "load in the key" true
    (base <> key ~load:2e-12 (stats 0.5 1e5));
  (* Hit/miss accounting through the table itself. *)
  let t = M.create () in
  Alcotest.(check int) "fresh memo empty" 0 (M.size t);
  Alcotest.(check bool) "first lookup misses" true (M.lookup t base = None);
  M.store t base 3;
  M.store t base 7 (* keep-first *);
  Alcotest.(check bool) "hit returns the first stored value" true
    (M.lookup t base = Some 3);
  Alcotest.(check int) "one entry" 1 (M.size t)

(* --- parallel determinism --- *)

let test_parallel_matches_sequential () =
  let pt = power_table () and dt = delay_table () in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun name ->
      let circuit = Circuits.Suite.find name in
      let inputs = scenario_inputs 11 Power.Scenario.A circuit in
      List.iter
        (fun objective ->
          let seq = O.optimize pt ~delay:dt ~objective circuit ~inputs in
          let par = O.optimize pt ~delay:dt ~objective ~pool circuit ~inputs in
          Alcotest.(check (float 0.))
            (name ^ " power_after bit-identical")
            seq.O.power_after par.O.power_after;
          Alcotest.(check (array int))
            (name ^ " configs identical")
            seq.O.configs par.O.configs;
          Alcotest.(check int)
            (name ^ " explored identical")
            seq.O.configurations_explored par.O.configurations_explored)
        [ O.Min_power; O.Max_power ])
    [ "c17"; "rca4"; "tree16"; "mux8"; "alu1" ]

let test_parallel_memo_deterministic_and_hits () =
  let pt = power_table () and dt = delay_table () in
  (* Uniform inputs maximize structural sharing. *)
  let inputs _ = S.make ~prob:0.5 ~density:1e5 in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  (* An adder repeats the same full-adder cells with near-identical
     propagated statistics along the carry chain: the memo must carry
     most of the gates (a small circuit like tree16 is capped lower —
     every distinct level is one compulsory miss). *)
  let hits = Obs.counter "optimizer.memo_hits" in
  let rca = Circuits.Suite.find "rca16" in
  let h0 = Obs.value hits in
  ignore (O.optimize pt ~delay:dt ~memo:(M.create ()) rca ~inputs);
  let gates = C.gate_count rca in
  let rca_hits = Obs.value hits - h0 in
  Alcotest.(check bool)
    (Printf.sprintf "memo hit rate %d/%d > 80%%" rca_hits gates)
    true
    (float_of_int rca_hits > 0.8 *. float_of_int gates);
  let circuit = Circuits.Suite.find "tree16" in
  let seq = O.optimize pt ~delay:dt ~memo:(M.create ()) circuit ~inputs in
  let par = O.optimize pt ~delay:dt ~memo:(M.create ()) ~pool circuit ~inputs in
  Alcotest.(check (float 0.)) "memoized parallel power bit-identical"
    seq.O.power_after par.O.power_after;
  Alcotest.(check (array int)) "memoized parallel configs identical"
    seq.O.configs par.O.configs;
  (* And memoization must stay function-preserving like any reordering. *)
  let rng = Stoch.Rng.create 7 in
  for _ = 1 to 20 do
    let vector = Hashtbl.create 16 in
    List.iter
      (fun net -> Hashtbl.add vector net (Stoch.Rng.bool rng))
      (C.primary_inputs circuit);
    let env net = Hashtbl.find vector net in
    Alcotest.(check (list bool)) "same outputs"
      (Netlist.Eval.outputs circuit ~inputs:env)
      (Netlist.Eval.outputs seq.O.circuit ~inputs:env)
  done

let prop_scenarios_and_circuits_improve =
  QCheck.Test.make ~name:"best <= reference <= worst on random scenarios"
    ~count:20
    QCheck.(pair (int_range 0 10000) QCheck.(int_range 0 9))
    (fun (seed, pick) ->
      let pt = power_table () and dt = delay_table () in
      let name = List.nth (Circuits.Suite.names ()) pick in
      let circuit = Circuits.Suite.find name in
      let inputs = scenario_inputs seed Power.Scenario.A circuit in
      let best, worst = O.best_and_worst pt ~delay:dt circuit ~inputs in
      best.O.power_after <= best.O.power_before +. 1e-18
      && worst.O.power_after >= best.O.power_after -. 1e-18)

let prop_reduction_percent_bounded =
  QCheck.Test.make ~name:"reduction_percent in [0,100] for 0 < best <= worst"
    ~count:500
    QCheck.(pair (float_range 1e-15 1e3) (float_range 1e-15 1e3))
    (fun (a, b) ->
      let best = Float.min a b and worst = Float.max a b in
      let r = O.reduction_percent ~best ~worst in
      r >= 0. && r <= 100.)

let () =
  Alcotest.run "reorder"
    [
      ( "optimizer",
        [
          Alcotest.test_case "improves all small benchmarks" `Slow
            test_optimize_improves;
          Alcotest.test_case "best <= worst" `Quick test_best_leq_worst;
          Alcotest.test_case "idempotent" `Quick test_optimize_idempotent;
          Alcotest.test_case "greedy = brute force (monotonicity)" `Quick
            test_greedy_is_globally_optimal;
          Alcotest.test_case "single gate argmin" `Quick test_single_gate_argmin;
          Alcotest.test_case "explored counts" `Quick test_explored_counts;
          Alcotest.test_case "reduction percent" `Quick test_reduction_percent;
          Alcotest.test_case "function preserved" `Quick
            test_rewritten_circuit_same_function;
          QCheck_alcotest.to_alcotest prop_scenarios_and_circuits_improve;
          QCheck_alcotest.to_alcotest prop_reduction_percent_bounded;
        ] );
      ( "objectives",
        [
          Alcotest.test_case "delay-bounded respects circuit delay" `Quick
            test_delay_bounded_respects_circuit_delay;
          Alcotest.test_case "delay-bounded weaker than free" `Quick
            test_delay_bounded_weaker_than_free;
          Alcotest.test_case "input-reordering-only subset" `Quick
            test_input_reordering_only_subset;
          Alcotest.test_case "min-delay objective" `Quick test_min_delay_objective;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "memo quantization boundaries" `Quick
            test_memo_quantization;
          Alcotest.test_case "memo keys discriminate" `Quick
            test_memo_keys_discriminate;
          Alcotest.test_case "pool run bit-identical to sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "memoized runs deterministic, trees hit" `Quick
            test_parallel_memo_deterministic_and_hits;
        ] );
    ]
