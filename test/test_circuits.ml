(* Functional correctness of the benchmark suite: the arithmetic blocks
   really add/multiply, selectors select, etc. Verified by exhaustive or
   sampled evaluation via Netlist.Eval. *)

module C = Netlist.Circuit
module G = Circuits.Generators

(* Drive a circuit with a bit assignment given per input name. *)
let eval_named circuit assignments =
  let inputs net = List.assoc (C.net_name circuit net) assignments in
  Netlist.Eval.outputs circuit ~inputs

let bits_of_int width v = List.init width (fun i -> v land (1 lsl i) <> 0)

let int_of_bits bits =
  List.fold_left (fun (acc, i) b -> ((acc lor if b then 1 lsl i else 0), i + 1))
    (0, 0) bits
  |> fst

let bus_assignment prefix width v =
  List.mapi (fun i b -> (Printf.sprintf "%s%d" prefix i, b)) (bits_of_int width v)

let test_rca_adds () =
  let n = 4 in
  let c = G.ripple_carry_adder n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let assignments =
          bus_assignment "a" n a @ bus_assignment "b" n b
          @ [ ("cin", cin = 1) ]
        in
        let result = int_of_bits (eval_named c assignments) in
        Alcotest.(check int)
          (Printf.sprintf "%d+%d+%d" a b cin)
          (a + b + cin) result
      done
    done
  done

let test_carry_select_adds () =
  let c = G.carry_select_adder 3 (* 6-bit *) in
  let cases = [ (0, 0, 0); (63, 63, 1); (21, 42, 0); (37, 57, 1); (8, 56, 0) ] in
  List.iter
    (fun (a, b, cin) ->
      let assignments =
        bus_assignment "a" 6 a @ bus_assignment "b" 6 b @ [ ("cin", cin = 1) ]
      in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d+%d" a b cin)
        (a + b + cin)
        (int_of_bits (eval_named c assignments)))
    cases

let test_incrementer () =
  let n = 5 in
  let c = G.incrementer n in
  for v = 0 to 31 do
    let result = int_of_bits (eval_named c (bus_assignment "x" n v)) in
    Alcotest.(check int) (Printf.sprintf "%d+1" v) (v + 1) result
  done

let test_multiplier () =
  let n = 4 in
  let c = G.array_multiplier n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let assignments = bus_assignment "a" n a @ bus_assignment "b" n b in
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" a b)
        (a * b)
        (int_of_bits (eval_named c assignments))
    done
  done

let test_parity () =
  let n = 9 in
  let c = G.parity n in
  List.iter
    (fun v ->
      let expected = List.fold_left ( <> ) false (bits_of_int n v) in
      match eval_named c (bus_assignment "x" n v) with
      | [ y ] -> Alcotest.(check bool) (Printf.sprintf "parity %d" v) expected y
      | _ -> Alcotest.fail "one output expected")
    [ 0; 1; 5; 511; 256; 341; 170 ]

let test_mux_tree () =
  let n = 8 in
  let c = G.mux_tree n in
  for sel = 0 to n - 1 do
    for data = 0 to 255 do
      if data land 0b10010110 = data (* sample a few patterns *) then begin
        let assignments =
          bus_assignment "d" n data @ bus_assignment "s" 3 sel
        in
        match eval_named c assignments with
        | [ y ] ->
            Alcotest.(check bool)
              (Printf.sprintf "mux d=%d s=%d" data sel)
              (data land (1 lsl sel) <> 0)
              y
        | _ -> Alcotest.fail "one output expected"
      end
    done
  done

let test_decoder () =
  let k = 3 in
  let c = G.decoder k in
  for v = 0 to 7 do
    let outs = eval_named c (bus_assignment "x" k v) in
    List.iteri
      (fun i y ->
        Alcotest.(check bool) (Printf.sprintf "dec %d line %d" v i) (i = v) y)
      outs
  done

let test_equality_comparator () =
  let n = 4 in
  let c = G.equality_comparator n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      match eval_named c (bus_assignment "a" n a @ bus_assignment "b" n b) with
      | [ y ] ->
          Alcotest.(check bool) (Printf.sprintf "%d=%d" a b) (a = b) y
      | _ -> Alcotest.fail "one output expected"
    done
  done

let test_magnitude_comparator () =
  let n = 4 in
  let c = G.magnitude_comparator n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      match eval_named c (bus_assignment "a" n a @ bus_assignment "b" n b) with
      | [ y ] ->
          Alcotest.(check bool) (Printf.sprintf "%d>%d" a b) (a > b) y
      | _ -> Alcotest.fail "one output expected"
    done
  done

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let test_majority () =
  List.iter
    (fun n ->
      let c = G.majority n in
      for v = 0 to (1 lsl n) - 1 do
        match eval_named c (bus_assignment "x" n v) with
        | [ y ] ->
            Alcotest.(check bool)
              (Printf.sprintf "maj%d %d" n v)
              (popcount v > n / 2)
              y
        | _ -> Alcotest.fail "one output expected"
      done)
    [ 3; 5 ]

let test_priority_encoder () =
  let n = 8 in
  let c = G.priority_encoder n in
  for v = 0 to 255 do
    let highest =
      let rec go i = if i < 0 then -1 else if v land (1 lsl i) <> 0 then i else go (i - 1) in
      go (n - 1)
    in
    let outs = eval_named c (bus_assignment "x" n v) in
    List.iteri
      (fun i y ->
        Alcotest.(check bool) (Printf.sprintf "prio %d line %d" v i) (i = highest) y)
      outs
  done

let test_alu () =
  let n = 2 in
  let c = G.alu_slice n in
  let mask = (1 lsl n) - 1 in
  for a = 0 to mask do
    for b = 0 to mask do
      for op = 0 to 3 do
        for cin = 0 to 1 do
          let expected =
            match op with
            | 0 -> a land b
            | 1 -> a lor b
            | 2 -> a lxor b
            | _ -> (a + b + cin) land mask
          in
          let expected_carry_bits =
            if op = 3 then (a + b + cin) lsr n else -1
          in
          let assignments =
            bus_assignment "a" n a @ bus_assignment "b" n b
            @ [
                ("cin", cin = 1);
                ("s0", op land 1 = 1);
                ("s1", op land 2 <> 0);
              ]
          in
          match eval_named c assignments with
          | outs when List.length outs = n + 1 ->
              let value_bits = List.filteri (fun i _ -> i < n) outs in
              Alcotest.(check int)
                (Printf.sprintf "alu op=%d a=%d b=%d cin=%d" op a b cin)
                expected
                (int_of_bits value_bits);
              if op = 3 then
                Alcotest.(check int) "alu carry" expected_carry_bits
                  (if List.nth outs n then 1 else 0)
          | _ -> Alcotest.fail "n+1 outputs expected"
        done
      done
    done
  done

let test_kogge_stone_adds () =
  let n = 4 in
  let c = G.kogge_stone_adder n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let assignments =
          bus_assignment "a" n a @ bus_assignment "b" n b
          @ [ ("cin", cin = 1) ]
        in
        Alcotest.(check int)
          (Printf.sprintf "ks %d+%d+%d" a b cin)
          (a + b + cin)
          (int_of_bits (eval_named c assignments))
      done
    done
  done

let test_wallace_multiplies () =
  let n = 4 in
  let c = G.wallace_multiplier n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let assignments = bus_assignment "a" n a @ bus_assignment "b" n b in
      Alcotest.(check int)
        (Printf.sprintf "wal %d*%d" a b)
        (a * b)
        (int_of_bits (eval_named c assignments))
    done
  done

let test_carry_lookahead_adds () =
  let n = 4 in
  let c = G.carry_lookahead_adder n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let assignments =
          bus_assignment "a" n a @ bus_assignment "b" n b
          @ [ ("cin", cin = 1) ]
        in
        Alcotest.(check int)
          (Printf.sprintf "cla %d+%d+%d" a b cin)
          (a + b + cin)
          (int_of_bits (eval_named c assignments))
      done
    done
  done

let test_gray_to_binary () =
  let n = 6 in
  let c = G.gray_to_binary n in
  for v = 0 to 63 do
    let gray = v lxor (v lsr 1) in
    Alcotest.(check int)
      (Printf.sprintf "gray(%d)" v)
      v
      (int_of_bits (eval_named c (bus_assignment "g" n gray)))
  done

let test_bcd_to_7seg () =
  let c = G.bcd_to_7seg () in
  let digit_segments =
    [|
      "abcdef"; "bc"; "abdeg"; "abcdg"; "bcfg"; "acdfg"; "acdefg"; "abc";
      "abcdefg"; "abcdfg"; "abcefg"; "cdefg"; "adef"; "bcdeg"; "adefg"; "aefg";
    |]
  in
  for digit = 0 to 15 do
    let outs = eval_named c (bus_assignment "x" 4 digit) in
    List.iteri
      (fun i lit ->
        let seg = Char.chr (Char.code 'a' + i) in
        Alcotest.(check bool)
          (Printf.sprintf "digit %d segment %c" digit seg)
          (String.contains digit_segments.(digit) seg)
          lit)
      outs
  done

let test_c17_function () =
  (* c17: o22 = nand(g10,g16), o23 = nand(g16,g19) with
     g10=nand(1,3), g11=nand(3,6), g16=nand(2,g11), g19=nand(g11,7). *)
  let c = G.c17 () in
  for v = 0 to 31 do
    let bit i = v land (1 lsl i) <> 0 in
    let g1 = bit 0 and g2 = bit 1 and g3 = bit 2 and g6 = bit 3 and g7 = bit 4 in
    let nand x y = not (x && y) in
    let n10 = nand g1 g3 and n11 = nand g3 g6 in
    let n16 = nand g2 n11 in
    let n19 = nand n11 g7 in
    let assignments =
      [ ("g1", g1); ("g2", g2); ("g3", g3); ("g6", g6); ("g7", g7) ]
    in
    match eval_named c assignments with
    | [ o22; o23 ] ->
        Alcotest.(check bool) "o22" (nand n10 n16) o22;
        Alcotest.(check bool) "o23" (nand n16 n19) o23
    | _ -> Alcotest.fail "two outputs expected"
  done

let test_suite_registry () =
  let all = Circuits.Suite.all () in
  Alcotest.(check bool) "at least 50 benchmarks" true (List.length all >= 50);
  let names = Circuits.Suite.names () in
  Alcotest.(check int) "names match" (List.length all) (List.length names);
  (* Unique names, find round-trips, registry name = circuit name. *)
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (name, c) ->
      Alcotest.(check string) "circuit is named" name (C.name c);
      let found = Circuits.Suite.find name in
      Alcotest.(check int) "find agrees" (C.gate_count c) (C.gate_count found))
    all

let test_suite_deterministic () =
  let a = Circuits.Suite.find "rnd_c" in
  let b = Circuits.Suite.find "rnd_c" in
  Alcotest.(check string) "same netlist text" (Netlist.Io.to_string a)
    (Netlist.Io.to_string b)

let test_suite_small_subset () =
  List.iter
    (fun (name, c) ->
      Alcotest.(check bool) name true (C.gate_count c < 100))
    (Circuits.Suite.small ())

let test_suite_find_unknown () =
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Circuits.Suite.find "nonexistent");
       false
     with Not_found -> true)

let test_generators_validate () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "rca0" true (rejects (fun () -> G.ripple_carry_adder 0));
  Alcotest.(check bool) "mult1" true (rejects (fun () -> G.array_multiplier 1));
  Alcotest.(check bool) "mux3" true (rejects (fun () -> G.mux_tree 3));
  Alcotest.(check bool) "dec5" true (rejects (fun () -> G.decoder 5));
  Alcotest.(check bool) "maj4" true (rejects (fun () -> G.majority 4))

(* Every generator, across its legal size range: the circuit builds
   (Circuit.create validates), evaluates without raising, and
   round-trips through the Io text format to the same rendering. *)
let sized_generators =
  [
    ("ripple_carry_adder", G.ripple_carry_adder, [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    ("carry_select_adder", G.carry_select_adder, [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    ("incrementer", G.incrementer, [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    ("array_multiplier", G.array_multiplier, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("parity", G.parity, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("mux_tree", G.mux_tree, [ 2; 4; 8 ]);
    ("decoder", G.decoder, [ 2; 3; 4 ]);
    ("equality_comparator", G.equality_comparator, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("magnitude_comparator", G.magnitude_comparator, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("majority", G.majority, [ 3; 5 ]);
    ("priority_encoder", G.priority_encoder, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("and_or_tree", G.and_or_tree, [ 4; 5; 6; 7; 8 ]);
    ("alu_slice", G.alu_slice, [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    ("kogge_stone_adder", G.kogge_stone_adder, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("wallace_multiplier", G.wallace_multiplier, [ 2; 3; 4; 5; 6; 7; 8 ]);
    (* lookahead terms grow quadratically; keep the range modest *)
    ("carry_lookahead_adder", G.carry_lookahead_adder, [ 2; 3; 4 ]);
    ("gray_to_binary", G.gray_to_binary, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ("c17", (fun _ -> G.c17 ()), [ 1 ]);
    ("bcd_to_7seg", (fun _ -> G.bcd_to_7seg ()), [ 1 ]);
  ]

let test_generators_build_eval_roundtrip () =
  List.iter
    (fun (name, gen, sizes) ->
      List.iter
        (fun n ->
          let label = Printf.sprintf "%s %d" name n in
          let c = gen n in
          Alcotest.(check bool)
            (label ^ ": at least one gate and one output")
            true
            (C.gate_count c >= 1 && C.primary_outputs c <> []);
          (* evaluates without raising, on an alternating bit pattern *)
          let outs = Netlist.Eval.outputs c ~inputs:(fun net -> net mod 2 = 0) in
          Alcotest.(check int)
            (label ^ ": one value per primary output")
            (List.length (C.primary_outputs c))
            (List.length outs);
          let text = Netlist.Io.to_string c in
          let c2 = Netlist.Io.of_string text in
          Alcotest.(check string)
            (label ^ ": Io round-trip fixpoint")
            text (Netlist.Io.to_string c2);
          Alcotest.(check int)
            (label ^ ": gate count preserved")
            (C.gate_count c) (C.gate_count c2))
        sizes)
    sized_generators

(* Property: random_logic always yields valid circuits with at least one
   primary output, for arbitrary parameters. *)
let prop_random_logic_valid =
  QCheck.Test.make ~name:"random_logic builds valid circuits" ~count:50
    QCheck.(triple (int_range 0 100000) (int_range 1 12) (int_range 1 120))
    (fun (seed, inputs, gates) ->
      let c = G.random_logic ~seed ~inputs ~gates in
      C.gate_count c = gates && List.length (C.primary_outputs c) >= 1)

let () =
  Alcotest.run "circuits"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "ripple-carry adds (exhaustive)" `Slow test_rca_adds;
          Alcotest.test_case "carry-select adds" `Quick test_carry_select_adds;
          Alcotest.test_case "incrementer" `Quick test_incrementer;
          Alcotest.test_case "multiplier (exhaustive 4x4)" `Slow test_multiplier;
          Alcotest.test_case "kogge-stone adds (exhaustive)" `Slow
            test_kogge_stone_adds;
          Alcotest.test_case "wallace multiplies (exhaustive)" `Slow
            test_wallace_multiplies;
          Alcotest.test_case "carry-lookahead adds (exhaustive)" `Slow
            test_carry_lookahead_adds;
          Alcotest.test_case "alu slice" `Slow test_alu;
        ] );
      ( "logic",
        [
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "mux tree" `Quick test_mux_tree;
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "equality comparator" `Quick
            test_equality_comparator;
          Alcotest.test_case "magnitude comparator" `Quick
            test_magnitude_comparator;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
          Alcotest.test_case "c17" `Quick test_c17_function;
          Alcotest.test_case "gray decoder" `Quick test_gray_to_binary;
          Alcotest.test_case "bcd to 7-segment" `Quick test_bcd_to_7seg;
        ] );
      ( "suite",
        [
          Alcotest.test_case "registry" `Quick test_suite_registry;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "small subset" `Quick test_suite_small_subset;
          Alcotest.test_case "find unknown" `Quick test_suite_find_unknown;
          Alcotest.test_case "generator validation" `Quick
            test_generators_validate;
          Alcotest.test_case "all generators build/eval/round-trip (sizes 1-8)"
            `Quick test_generators_build_eval_roundtrip;
          QCheck_alcotest.to_alcotest prop_random_logic_valid;
        ] );
    ]
