(* Tests for circuit structure, builder, validation, topological
   analysis and the two text formats. *)

module C = Netlist.Circuit
module B = Netlist.Builder
module Io = Netlist.Io

(* A tiny reference circuit: y = !(a.b), z = !y. *)
let nand_inv () =
  let b = B.create ~name:"nand_inv" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let y = B.nand2 b ~name:"y" a bb in
  let z = B.inv b ~name:"z" y in
  B.output b z;
  B.finish b

let test_builder_basic () =
  let c = nand_inv () in
  Alcotest.(check int) "gates" 2 (C.gate_count c);
  Alcotest.(check int) "nets" 4 (C.net_count c);
  Alcotest.(check int) "inputs" 2 (List.length (C.primary_inputs c));
  Alcotest.(check (list int)) "outputs" [ 3 ] (C.primary_outputs c);
  Alcotest.(check string) "net name" "y" (C.net_name c 2)

let test_driver_and_readers () =
  let c = nand_inv () in
  let y = Option.get (C.net_of_name c "y") in
  let a = Option.get (C.net_of_name c "a") in
  Alcotest.(check bool) "a is PI" true (C.driver c a = C.Primary_input);
  Alcotest.(check bool) "y driven by gate 0" true (C.driver c y = C.Driven_by 0);
  Alcotest.(check int) "fanout of y" 1 (C.fanout_count c y);
  Alcotest.(check (list int)) "fanout gates of y" [ 1 ] (C.fanout c y);
  Alcotest.(check bool) "reader of y is gate 1 pin 0" true
    (C.readers c y = [ (1, 0) ])

(* Reconvergent fan-out: s feeds both the nand and (through an
   inverter) the nor; both reconverge on a single output nand-gate
   (a single physical gate, so gate indices stay 1:1 with the sketch).
       s --------> nand2 --\
       s -> inv -> nor2 ----> nand2 -> out *)
let reconvergent () =
  let b = B.create ~name:"reconv" in
  let s = B.input b "s" in
  let t = B.input b "t" in
  let i = B.inv b ~name:"i" s in
  let n1 = B.nand2 b ~name:"n1" s t in
  let n2 = B.nor2 b ~name:"n2" i t in
  let o = B.nand2 b ~name:"o" n1 n2 in
  B.output b o;
  B.finish b

let test_fanout_index () =
  let c = reconvergent () in
  let net n = Option.get (C.net_of_name c n) in
  let gate_of n =
    match C.driver c (net n) with
    | C.Driven_by g -> g
    | C.Primary_input -> Alcotest.fail (n ^ " is a primary input")
  in
  let inv = gate_of "i" and nand = gate_of "n1" in
  Alcotest.(check (list int))
    "s read by inv and nand, deduped ascending"
    (List.sort compare [ inv; nand ])
    (C.fanout c (net "s"));
  Alcotest.(check int) "s drives two pins" 2 (C.fanout_count c (net "s"));
  Alcotest.(check (list int)) "output net unread" [] (C.fanout c (net "o"))

let test_fanout_cone () =
  let c = reconvergent () in
  let net n = Option.get (C.net_of_name c n) in
  let gate_of n =
    match C.driver c (net n) with
    | C.Driven_by g -> g
    | C.Primary_input -> Alcotest.fail (n ^ " is a primary input")
  in
  let marked seeds =
    let cone = C.fanout_cone c (List.map net seeds) in
    List.sort compare
      (Array.to_list
         (Array.of_seq
            (Seq.filter_map
               (fun g -> if cone.(g) then Some g else None)
               (Seq.init (C.gate_count c) Fun.id))))
  in
  (* Editing s dirties everything downstream, through both branches,
     visiting the reconvergent output gate once. *)
  Alcotest.(check (list int))
    "cone of s is all four gates"
    (List.sort compare [ gate_of "i"; gate_of "n1"; gate_of "n2"; gate_of "o" ])
    (marked [ "s" ]);
  (* Editing the inverter output only dirties the nor branch. *)
  Alcotest.(check (list int))
    "cone of i is nor + and"
    (List.sort compare [ gate_of "n2"; gate_of "o" ])
    (marked [ "i" ]);
  (* A union of seeds marks the union of cones. *)
  Alcotest.(check (list int))
    "cone of {n1,n2} is just the output gate"
    [ gate_of "o" ]
    (marked [ "n1"; "n2" ]);
  Alcotest.(check (list int)) "cone of the output is empty" [] (marked [ "o" ]);
  Alcotest.check_raises "unknown net rejected"
    (C.Invalid "fanout_cone: unknown net 99") (fun () ->
      ignore (C.fanout_cone c [ 99 ]))

let test_topological_order () =
  let c = nand_inv () in
  Alcotest.(check (list int)) "nand before inv" [ 0; 1 ] (C.topological_order c)

let test_levels_depth () =
  let c = nand_inv () in
  Alcotest.(check (array int)) "levels" [| 1; 2 |] (C.levels c);
  Alcotest.(check int) "depth" 2 (C.depth c)

let test_transistor_count () =
  let c = nand_inv () in
  Alcotest.(check int) "4 + 2" 6 (C.transistor_count c)

let test_with_configs () =
  let c = nand_inv () in
  let c2 = C.with_configs c [| 1; 0 |] in
  Alcotest.(check int) "nand2 reordered" 1 (C.gate_at c2 0).C.config;
  Alcotest.(check bool) "original untouched" true ((C.gate_at c 0).C.config = 0);
  Alcotest.check_raises "config out of range"
    (C.Invalid "gate 0 (nand2): configuration 7 out of range") (fun () ->
      ignore (C.with_configs c [| 7; 0 |]));
  Alcotest.check_raises "wrong length"
    (C.Invalid "with_configs: 1 entries for 2 gates") (fun () ->
      ignore (C.with_configs c [| 0 |]))

let test_stats () =
  let c = nand_inv () in
  Alcotest.(check (list (pair string int))) "histogram"
    [ ("inv", 1); ("nand2", 1) ] (C.stats c)

(* --- validation --- *)

let cell n = Cell.Gate.of_name n

let test_rejects_double_driver () =
  Alcotest.check_raises "double driver"
    (C.Invalid "net \"y\" driven by gates 0 and 1") (fun () ->
      ignore
        (C.create ~name:"bad" ~net_names:[| "a"; "y" |] ~primary_inputs:[ 0 ]
           ~primary_outputs:[ 1 ]
           ~gates:
             [
               { C.cell = cell "inv"; config = 0; fanins = [| 0 |]; output = 1 };
               { C.cell = cell "inv"; config = 0; fanins = [| 0 |]; output = 1 };
             ]))

let test_rejects_undriven_net () =
  Alcotest.check_raises "undriven" (C.Invalid "net \"y\" has no driver")
    (fun () ->
      ignore
        (C.create ~name:"bad" ~net_names:[| "a"; "y" |] ~primary_inputs:[ 0 ]
           ~primary_outputs:[ 1 ] ~gates:[]))

let test_rejects_cycle () =
  Alcotest.check_raises "cycle" (C.Invalid "combinational cycle detected")
    (fun () ->
      ignore
        (C.create ~name:"bad" ~net_names:[| "x"; "y" |] ~primary_inputs:[]
           ~primary_outputs:[ 1 ]
           ~gates:
             [
               { C.cell = cell "inv"; config = 0; fanins = [| 1 |]; output = 0 };
               { C.cell = cell "inv"; config = 0; fanins = [| 0 |]; output = 1 };
             ]))

let test_rejects_arity_mismatch () =
  Alcotest.check_raises "arity" (C.Invalid "gate 0 (nand2): 1 fanins, arity 2")
    (fun () ->
      ignore
        (C.create ~name:"bad" ~net_names:[| "a"; "y" |] ~primary_inputs:[ 0 ]
           ~primary_outputs:[ 1 ]
           ~gates:
             [
               { C.cell = cell "nand2"; config = 0; fanins = [| 0 |]; output = 1 };
             ]))

let test_rejects_duplicate_names () =
  Alcotest.check_raises "duplicate names" (C.Invalid "duplicate net name \"a\"")
    (fun () ->
      ignore
        (C.create ~name:"bad" ~net_names:[| "a"; "a" |] ~primary_inputs:[ 0; 1 ]
           ~primary_outputs:[] ~gates:[]))

let test_builder_rejects_arity () =
  let b = B.create ~name:"bad" in
  let a = B.input b "a" in
  Alcotest.(check bool) "builder arity check" true
    (try
       ignore (B.gate b "nand3" [ a ]);
       false
     with Invalid_argument _ -> true)

(* --- cone --- *)

let test_cone_extracts_fanin () =
  (* Two independent halves; the cone of one output drops the other. *)
  let b = B.create ~name:"two" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let x = B.input b "x" in
  let y1 = B.nand2 b ~name:"y1" a bb in
  let y2 = B.inv b ~name:"y2" x in
  B.output b y1;
  B.output b y2;
  let c = B.finish b in
  let cone = C.cone c [ Option.get (C.net_of_name c "y1") ] in
  Alcotest.(check int) "one gate" 1 (C.gate_count cone);
  Alcotest.(check int) "two inputs survive" 2
    (List.length (C.primary_inputs cone));
  Alcotest.(check bool) "x dropped" true (C.net_of_name cone "x" = None);
  Alcotest.(check bool) "names preserved" true (C.net_of_name cone "y1" <> None);
  Alcotest.(check (list int)) "target is the output"
    [ Option.get (C.net_of_name cone "y1") ]
    (C.primary_outputs cone)

let test_cone_preserves_function_and_configs () =
  let c = Circuits.Suite.find "rca4" in
  let c = C.with_configs c (Array.map (fun (g : C.gate) ->
      (Cell.Gate.config_count g.C.cell - 1)) (C.gates c)) in
  let outputs = C.primary_outputs c in
  let target = List.nth outputs (List.length outputs - 1) (* carry-out *) in
  let cone = C.cone c [ target ] in
  (* The carry-out cone of a 4-bit adder keeps every full adder. *)
  Alcotest.(check bool) "smaller than original" true
    (C.gate_count cone < C.gate_count c);
  (* Spot-check: function preserved on random vectors. *)
  let rng = Stoch.Rng.create 4 in
  for _ = 1 to 20 do
    let bits = Hashtbl.create 16 in
    List.iter
      (fun net -> Hashtbl.add bits (C.net_name c net) (Stoch.Rng.bool rng))
      (C.primary_inputs c);
    let env circuit net = Hashtbl.find bits (C.net_name circuit net) in
    let full = Netlist.Eval.nets c ~inputs:(env c) in
    let small = Netlist.Eval.nets cone ~inputs:(env cone) in
    Alcotest.(check bool) "same cout" full.(target)
      small.(Option.get (C.net_of_name cone (C.net_name c target)))
  done;
  (* Configurations carried over. *)
  Array.iter
    (fun (g : C.gate) ->
      Alcotest.(check int) "non-reference config preserved"
        (Cell.Gate.config_count g.C.cell - 1)
        g.C.config)
    (C.gates cone)

let test_cone_validation () =
  let c = Circuits.Suite.find "c17" in
  Alcotest.check_raises "empty targets" (C.Invalid "cone: empty target list")
    (fun () -> ignore (C.cone c []));
  Alcotest.check_raises "unknown net" (C.Invalid "cone: unknown net 999")
    (fun () -> ignore (C.cone c [ 999 ]))

(* --- lint --- *)

let test_lint_clean_circuit () =
  let c = Circuits.Suite.find "c17" in
  Alcotest.(check int) "no warnings" 0 (List.length (Netlist.Lint.check c))

let test_lint_findings () =
  let b = B.create ~name:"smelly" in
  let a = B.input b "a" in
  let unused = B.input b "unused" in
  ignore unused;
  let dangling = B.inv b ~name:"dangling" a in
  ignore dangling;
  let y1 = B.nand2 b a a in
  let y2 = B.nand2 b a a in
  B.output b y1;
  B.output b y2;
  B.output b a;
  let c = B.finish b in
  let warnings = Netlist.Lint.check c in
  let has pred = List.exists pred warnings in
  Alcotest.(check bool) "unused input" true
    (has (function Netlist.Lint.Unused_input _ -> true | _ -> false));
  Alcotest.(check bool) "dangling net" true
    (has (function Netlist.Lint.Dangling_net _ -> true | _ -> false));
  Alcotest.(check bool) "duplicate gates" true
    (has (function Netlist.Lint.Duplicate_gate _ -> true | _ -> false));
  Alcotest.(check bool) "output = input" true
    (has (function Netlist.Lint.Output_is_input _ -> true | _ -> false));
  List.iter
    (fun w ->
      Alcotest.(check bool) "describable" true
        (String.length (Netlist.Lint.describe c w) > 0))
    warnings

let test_lint_high_fanout () =
  let b = B.create ~name:"fan" in
  let a = B.input b "a" in
  let x = B.inv b a in
  for _ = 1 to 9 do
    B.output b (B.inv b x)
  done;
  let c = B.finish b in
  Alcotest.(check bool) "flags fanout 9" true
    (List.exists
       (function Netlist.Lint.High_fanout (_, 9) -> true | _ -> false)
       (Netlist.Lint.check c));
  Alcotest.(check int) "threshold respected" 0
    (List.length
       (List.filter
          (function Netlist.Lint.High_fanout _ -> true | _ -> false)
          (Netlist.Lint.check ~fanout_threshold:9 c)))

(* --- Io native format --- *)

let test_io_roundtrip () =
  let c = nand_inv () in
  let c2 = Io.of_string (Io.to_string c) in
  Alcotest.(check string) "name" (C.name c) (C.name c2);
  Alcotest.(check int) "gates" (C.gate_count c) (C.gate_count c2);
  Alcotest.(check string) "text fixpoint" (Io.to_string c) (Io.to_string c2)

let test_io_forward_reference () =
  (* A gate may use a net that is driven later in the file. *)
  let text =
    "circuit fwd\ninput a\ngate inv z = y\ngate inv y = a\noutput z\n"
  in
  let c = Io.of_string text in
  Alcotest.(check int) "2 gates" 2 (C.gate_count c);
  Alcotest.(check (list int)) "topo order resolves" [ 1; 0 ]
    (C.topological_order c)

let test_io_config_annotation () =
  let text = "circuit k\ninput a b c\ngate nand3 y = a b c [4]\noutput y\n" in
  let c = Io.of_string text in
  Alcotest.(check int) "config parsed" 4 (C.gate_at c 0).C.config

let test_io_comments_and_blanks () =
  let text =
    "# header\ncircuit k\n\ninput a   # trailing\ngate inv y = a\noutput y\n"
  in
  Alcotest.(check int) "parsed" 1 (C.gate_count (Io.of_string text))

let test_io_errors () =
  let expect_error text fragment =
    try
      ignore (Io.of_string text);
      Alcotest.failf "expected parse error (%s)" fragment
    with Io.Parse_error { message; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %s" message fragment)
        true
        (let re = fragment in
         let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains message re)
  in
  expect_error "circuit c\ninput a\ngate xor9 y = a\n" "unknown cell";
  expect_error "circuit c\ninput a\ngate inv y a\n" "expected: gate";
  expect_error "circuit c\ninput a\ngate inv y = q\noutput y\n" "undeclared net";
  expect_error "circuit c\nfoo bar\n" "unknown directive";
  expect_error "circuit c\ninput a\ngate inv a = a\n" "declared twice"

(* Hazards the parser must catch itself (with the offending source
   line) rather than leaving them to Circuit.create. *)
let test_io_parse_hazards () =
  let expect_line text expected_line fragment =
    try
      ignore (Io.of_string text);
      Alcotest.failf "expected parse error (%s)" fragment
    with Io.Parse_error { line; message } ->
      Alcotest.(check int)
        (Printf.sprintf "%s reported on line %d" fragment expected_line)
        expected_line line;
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %s" message fragment)
        true
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains message fragment)
  in
  (* Duplicate input declaration: the second `input` line is at fault. *)
  expect_line "circuit c\ninput a\ninput a\ngate inv y = a\noutput y\n" 3
    "declared twice";
  (* Gate output clashing with an input: the gate line is at fault. *)
  expect_line "circuit c\ninput a b\ngate inv a = b\noutput a\n" 3
    "declared twice";
  (* Two gates driving the same name. *)
  expect_line "circuit c\ninput a\ngate inv y = a\ngate inv y = a\noutput y\n" 4
    "declared twice";
  (* Fanin-count/arity mismatches are parse errors, not Circuit.Invalid. *)
  expect_line "circuit c\ninput a\ngate nand2 y = a\noutput y\n" 3 "arity";
  expect_line "circuit c\ninput a b c\ngate inv y = a b c\noutput y\n" 3 "arity"

(* --- Io BLIF subset --- *)

let test_blif_basic () =
  let text =
    ".model test\n.inputs a b\n.outputs z\n.gate nand2 A=a B=b O=y\n.gate inv A=y O=z\n.end\n"
  in
  let c = Io.of_blif text in
  Alcotest.(check string) "model name" "test" (C.name c);
  Alcotest.(check int) "2 gates" 2 (C.gate_count c);
  Alcotest.(check (list (pair string int))) "cells"
    [ ("inv", 1); ("nand2", 1) ] (C.stats c)

let test_blif_continuation () =
  let text =
    ".model t\n.inputs a b \\\nc\n.outputs y\n.gate nand3 A=a B=b C=c O=y\n.end\n"
  in
  let c = Io.of_blif text in
  Alcotest.(check int) "3 inputs across continuation" 3
    (List.length (C.primary_inputs c))

let test_blif_rejects_names () =
  try
    ignore (Io.of_blif ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n");
    Alcotest.fail "expected rejection"
  with Io.Parse_error { message; _ } ->
    Alcotest.(check bool) "mentions .names" true
      (String.length message > 0)

let test_blif_rejects_bad_pin () =
  try
    ignore (Io.of_blif ".model t\n.inputs a\n.outputs y\n.gate inv Q=a O=y\n.end\n");
    Alcotest.fail "expected rejection"
  with Io.Parse_error { line; _ } -> Alcotest.(check int) "line 4" 4 line

let test_save_load () =
  let c = nand_inv () in
  let path = Filename.temp_file "treorder" ".cir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save c path;
      let c2 = Io.load path in
      Alcotest.(check string) "round-trip via file" (Io.to_string c)
        (Io.to_string c2))

(* --- properties --- *)

(* Random DAG circuits: k primary inputs then n gates with random cells
   whose fanins are drawn from already-defined nets. *)
let random_circuit_gen =
  let open QCheck.Gen in
  int_range 0 1_000_000 >>= fun seed ->
  int_range 1 4 >>= fun n_inputs ->
  int_range 1 25 >>= fun n_gates ->
  return (seed, n_inputs, n_gates)

let build_random (seed, n_inputs, n_gates) =
  let rng = Stoch.Rng.create seed in
  let b = B.create ~name:"random" in
  let nets = ref [] in
  for i = 0 to n_inputs - 1 do
    nets := B.input b (Printf.sprintf "pi%d" i) :: !nets
  done;
  let cells = Array.of_list Cell.Gate.library in
  for _ = 1 to n_gates do
    let cell = cells.(Stoch.Rng.int rng (Array.length cells)) in
    let pool = Array.of_list !nets in
    let fanins =
      List.init (Cell.Gate.arity cell) (fun _ ->
          pool.(Stoch.Rng.int rng (Array.length pool)))
    in
    let config = Stoch.Rng.int rng (Cell.Gate.config_count cell) in
    nets := B.gate b ~config (Cell.Gate.name cell) fanins :: !nets
  done;
  (match !nets with n :: _ -> B.output b n | [] -> ());
  B.finish b

let arbitrary_random_circuit =
  QCheck.make
    ~print:(fun (s, i, g) -> Printf.sprintf "seed=%d inputs=%d gates=%d" s i g)
    random_circuit_gen

let prop_topo_respects_dependencies =
  QCheck.Test.make ~name:"topological order places drivers first" ~count:100
    arbitrary_random_circuit (fun params ->
      let c = build_random params in
      let position = Array.make (C.gate_count c) (-1) in
      List.iteri (fun i g -> position.(g) <- i) (C.topological_order c);
      Array.for_all (fun p -> p >= 0) position
      && Array.to_list (C.gates c)
         |> List.mapi (fun g gate -> (g, gate))
         |> List.for_all (fun (g, (gate : C.gate)) ->
                Array.for_all
                  (fun net ->
                    match C.driver c net with
                    | C.Driven_by d -> position.(d) < position.(g)
                    | C.Primary_input -> true)
                  gate.C.fanins))

let prop_io_roundtrip =
  QCheck.Test.make ~name:"native format round-trips" ~count:100
    arbitrary_random_circuit (fun params ->
      let c = build_random params in
      Io.to_string (Io.of_string (Io.to_string c)) = Io.to_string c)

let prop_levels_bounded =
  QCheck.Test.make ~name:"1 <= level <= depth" ~count:100
    arbitrary_random_circuit (fun params ->
      let c = build_random params in
      let lv = C.levels c in
      Array.for_all (fun l -> l >= 1 && l <= C.depth c) lv)


(* Fuzzing: mutated netlist text must never crash the parser — only
   Parse_error or Circuit.Invalid are acceptable outcomes. *)
let prop_parser_robust =
  let base =
    "circuit fuzz\ninput a b c\ngate nand2 t = a b\ngate aoi21 y = t b c [3]\noutput y\n"
  in
  QCheck.Test.make ~name:"parser never crashes on mutated input" ~count:300
    QCheck.(pair (int_range 0 (String.length base - 1)) (int_range 0 255))
    (fun (pos, byte) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos (Char.chr byte);
      match Io.of_string (Bytes.to_string mutated) with
      | _ -> true
      | exception Io.Parse_error _ -> true
      | exception C.Invalid _ -> true)

let prop_blif_robust =
  let base =
    ".model t\n.inputs a b\n.outputs z\n.gate nand2 A=a B=b O=y\n.gate inv A=y O=z\n.end\n"
  in
  QCheck.Test.make ~name:"blif parser never crashes on mutated input" ~count:300
    QCheck.(pair (int_range 0 (String.length base - 1)) (int_range 0 255))
    (fun (pos, byte) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos (Char.chr byte);
      match Io.of_blif (Bytes.to_string mutated) with
      | _ -> true
      | exception Io.Parse_error _ -> true
      | exception C.Invalid _ -> true)

let () =
  Alcotest.run "netlist"
    [
      ( "circuit",
        [
          Alcotest.test_case "builder basic" `Quick test_builder_basic;
          Alcotest.test_case "driver and readers" `Quick test_driver_and_readers;
          Alcotest.test_case "fanout index" `Quick test_fanout_index;
          Alcotest.test_case "fanout cone" `Quick test_fanout_cone;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "levels and depth" `Quick test_levels_depth;
          Alcotest.test_case "transistor count" `Quick test_transistor_count;
          Alcotest.test_case "with_configs" `Quick test_with_configs;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "validation",
        [
          Alcotest.test_case "double driver" `Quick test_rejects_double_driver;
          Alcotest.test_case "undriven net" `Quick test_rejects_undriven_net;
          Alcotest.test_case "cycle" `Quick test_rejects_cycle;
          Alcotest.test_case "arity mismatch" `Quick test_rejects_arity_mismatch;
          Alcotest.test_case "duplicate names" `Quick test_rejects_duplicate_names;
          Alcotest.test_case "builder arity" `Quick test_builder_rejects_arity;
        ] );
      ( "cone",
        [
          Alcotest.test_case "extracts fanin" `Quick test_cone_extracts_fanin;
          Alcotest.test_case "preserves function and configs" `Quick
            test_cone_preserves_function_and_configs;
          Alcotest.test_case "validation" `Quick test_cone_validation;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean circuit" `Quick test_lint_clean_circuit;
          Alcotest.test_case "findings" `Quick test_lint_findings;
          Alcotest.test_case "high fanout" `Quick test_lint_high_fanout;
        ] );
      ( "io",
        [
          Alcotest.test_case "round-trip" `Quick test_io_roundtrip;
          Alcotest.test_case "forward reference" `Quick test_io_forward_reference;
          Alcotest.test_case "config annotation" `Quick test_io_config_annotation;
          Alcotest.test_case "comments and blanks" `Quick
            test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "parse hazards with line numbers" `Quick
            test_io_parse_hazards;
          Alcotest.test_case "blif basic" `Quick test_blif_basic;
          Alcotest.test_case "blif continuation" `Quick test_blif_continuation;
          Alcotest.test_case "blif rejects .names" `Quick test_blif_rejects_names;
          Alcotest.test_case "blif rejects bad pin" `Quick
            test_blif_rejects_bad_pin;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_topo_respects_dependencies;
          QCheck_alcotest.to_alcotest prop_parser_robust;
          QCheck_alcotest.to_alcotest prop_blif_robust;
          QCheck_alcotest.to_alcotest prop_io_roundtrip;
          QCheck_alcotest.to_alcotest prop_levels_bounded;
        ] );
    ]
