(* Tests for the incremental (ECO-style) re-optimization engine: the
   session's bit-identity contract against cold full runs, dirty-cone
   narrowness, the §4.2 cut-off, warm-memo reuse across applies,
   ledger patching and the NDJSON edit-script language. *)

module C = Netlist.Circuit
module B = Netlist.Builder
module O = Reorder.Optimizer
module I = Incremental
module S = Stoch.Signal_stats

let power_table () = Power.Model.table Cell.Process.default
let delay_table () = Delay.Elmore.table Cell.Process.default

let scenario_inputs seed scenario circuit =
  Power.Scenario.input_stats ~rng:(Stoch.Rng.create seed) scenario circuit

(* Mutable input-stats model the tests edit through. *)
let stats_table circuit ~seed =
  let base = scenario_inputs seed Power.Scenario.A circuit in
  let tbl = Hashtbl.create 16 in
  List.iter (fun net -> Hashtbl.add tbl net (base net)) (C.primary_inputs circuit);
  tbl

let inputs_of tbl net = Hashtbl.find tbl net

let check_float name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.17g = %.17g" name a b)
    true (Float.equal a b)

(* Rebuild a circuit with one gate replaced — the edited circuit as it
   enters an apply, for cold-run comparison. *)
let replace_in circuit g gate =
  let gates = C.gates circuit in
  gates.(g) <- gate;
  C.create ~name:(C.name circuit)
    ~net_names:(Array.init (C.net_count circuit) (C.net_name circuit))
    ~primary_inputs:(C.primary_inputs circuit)
    ~primary_outputs:(C.primary_outputs circuit)
    ~gates:(Array.to_list gates)

(* Session apply must be bit-identical to a cold optimize of the same
   edited circuit (the one *entering* the apply) under the same input
   model. *)
let check_equivalent name (sess : I.t) cold_circuit tbl =
  let pt = power_table () and dt = delay_table () in
  let rep = I.report sess in
  let cold =
    O.optimize pt ~delay:dt ~external_load:(I.external_load sess)
      ~objective:(I.objective sess) cold_circuit ~inputs:(inputs_of tbl)
  in
  check_float (name ^ ": power_before") cold.O.power_before rep.O.power_before;
  check_float (name ^ ": power_after") cold.O.power_after rep.O.power_after;
  Alcotest.(check (array int)) (name ^ ": configs") cold.O.configs rep.O.configs;
  (match I.ledger sess with
  | None -> ()
  | Some patched ->
      let cold_ledger =
        Attrib.of_report pt ~external_load:(I.external_load sess)
          ~before:cold_circuit ~inputs:(inputs_of tbl) cold
      in
      check_float
        (name ^ ": ledger total_before")
        cold_ledger.Attrib.total_before patched.Attrib.total_before;
      check_float
        (name ^ ": ledger total_after")
        cold_ledger.Attrib.total_after patched.Attrib.total_after;
      Array.iteri
        (fun g (e : Attrib.gate_entry) ->
          let p = patched.Attrib.gates.(g) in
          Alcotest.(check int)
            (Printf.sprintf "%s: gate %d config_after" name g)
            e.Attrib.config_after p.Attrib.config_after;
          Alcotest.(check int)
            (Printf.sprintf "%s: gate %d config_before" name g)
            e.Attrib.config_before p.Attrib.config_before;
          check_float
            (Printf.sprintf "%s: gate %d after_total" name g)
            e.Attrib.after_total p.Attrib.after_total;
          check_float
            (Printf.sprintf "%s: gate %d before_total" name g)
            e.Attrib.before_total p.Attrib.before_total)
        cold_ledger.Attrib.gates)

let test_stats_edit_equivalence () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let tbl = stats_table circuit ~seed:7 in
  let sess = I.create pt ~delay:dt circuit ~inputs:(inputs_of tbl) in
  let cold_explored = (I.report sess).O.configurations_explored in
  (* Nudge one input's density: only its fan-out cone may re-sweep. *)
  let pi = List.hd (C.primary_inputs circuit) in
  let edited = S.make ~prob:0.3 ~density:4.2e7 in
  Hashtbl.replace tbl pi edited;
  let entering = I.circuit sess in
  let rep = I.apply sess [ I.Set_input_stats (pi, edited) ] in
  Alcotest.(check bool)
    "incremental path explores a strict subset" true
    (rep.O.configurations_explored < cold_explored);
  check_equivalent "stats edit" sess entering tbl;
  (* The settled circuit is a fixed point: applying an empty batch
     changes nothing and re-sweeps nothing. *)
  let rep2 = I.apply sess [] in
  Alcotest.(check int) "empty batch: no gates changed" 0 rep2.O.gates_changed;
  Alcotest.(check int)
    "empty batch: nothing explored" 0 rep2.O.configurations_explored

let test_dirty_cone_is_narrow () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca8" in
  let tbl = stats_table circuit ~seed:11 in
  let sess = I.create pt ~delay:dt circuit ~inputs:(inputs_of tbl) in
  let n = C.gate_count circuit in
  (* A config-only gate edit must dirty exactly that gate (§4.2: the
     reordering does not move any net's statistics). *)
  let g = n / 2 in
  let gate = C.gate_at (I.circuit sess) g in
  let other_config = (gate.C.config + 1) mod Cell.Gate.config_count gate.C.cell in
  let replacement = { gate with C.config = other_config } in
  let entering = replace_in (I.circuit sess) g replacement in
  ignore (I.apply sess [ I.Replace_gate (g, replacement) ]);
  let dirty = Option.get (O.session_dirty (I.session sess)) in
  let dirty_count =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty
  in
  Alcotest.(check int) "config-only edit re-sweeps exactly one gate" 1
    dirty_count;
  Alcotest.(check bool) "and it is the edited gate" true dirty.(g);
  check_equivalent "config edit" sess entering tbl;
  (* An input-stats edit re-sweeps at most the input's fan-out cone
     (plus nothing else). *)
  let pi = List.nth (C.primary_inputs circuit) 2 in
  let edited = S.make ~prob:0.9 ~density:9.9e6 in
  Hashtbl.replace tbl pi edited;
  let entering = I.circuit sess in
  ignore (I.apply sess [ I.Set_input_stats (pi, edited) ]);
  let cone = C.fanout_cone circuit [ pi ] in
  let dirty = Option.get (O.session_dirty (I.session sess)) in
  Array.iteri
    (fun g d ->
      if d then
        Alcotest.(check bool)
          (Printf.sprintf "dirty gate %d lies in the edited cone" g)
          true cone.(g))
    dirty;
  check_equivalent "stats edit after config edit" sess entering tbl

let test_external_load_and_objective () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let tbl = stats_table circuit ~seed:3 in
  let sess = I.create pt ~delay:dt circuit ~inputs:(inputs_of tbl) in
  let entering = I.circuit sess in
  ignore (I.apply sess [ I.Set_external_load 35e-15 ]);
  (* Only primary-output drivers may re-sweep. *)
  let dirty = Option.get (O.session_dirty (I.session sess)) in
  let po_drivers =
    List.filter_map
      (fun po ->
        match C.driver circuit po with
        | C.Driven_by d -> Some d
        | C.Primary_input -> None)
      (C.primary_outputs circuit)
  in
  Array.iteri
    (fun g d ->
      if d then
        Alcotest.(check bool)
          (Printf.sprintf "load edit: dirty gate %d drives a PO" g)
          true (List.mem g po_drivers))
    dirty;
  check_equivalent "external load edit" sess entering tbl;
  (* Objective flip re-decides everything but skips propagation. *)
  let before_nets = Obs.value (Obs.counter "incremental.dirty_nets") in
  let entering = I.circuit sess in
  ignore (I.apply sess [ I.Set_objective O.Max_power ]);
  Alcotest.(check int)
    "objective flip dirties no nets" before_nets
    (Obs.value (Obs.counter "incremental.dirty_nets"));
  check_equivalent "objective flip" sess entering tbl

let test_memo_warm_across_applies () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca8" in
  let tbl = stats_table circuit ~seed:13 in
  let sess =
    I.create pt ~delay:dt ~memoize:true circuit ~inputs:(inputs_of tbl)
  in
  let memo = Option.get (O.session_memo (I.session sess)) in
  let size_after_cold = Reorder.Memo.size memo in
  Alcotest.(check bool) "cold run seeded the memo" true (size_after_cold > 0);
  let hits = Obs.counter "optimizer.memo_hits" in
  let pi = List.hd (C.primary_inputs circuit) in
  (* Toggle the same input between two values: after the first apply,
     every key the replays need is already stored, so the hit counter
     must rise on each subsequent apply. *)
  let a = S.make ~prob:0.4 ~density:5e6
  and b = S.make ~prob:0.6 ~density:7e6 in
  let apply_with s =
    Hashtbl.replace tbl pi s;
    ignore (I.apply sess [ I.Set_input_stats (pi, s) ])
  in
  apply_with a;
  apply_with b;
  let h0 = Obs.value hits in
  apply_with a;
  let h1 = Obs.value hits in
  Alcotest.(check bool) "replaying a seen edit hits warm verdicts" true
    (h1 > h0);
  Alcotest.(check int) "no new entries were needed" (Reorder.Memo.size memo)
    (let _ = apply_with b in
     Reorder.Memo.size memo);
  (* Memoized incremental must equal a memoized cold run (verdict
     purity: warm == fresh). *)
  let cold_memo = Reorder.Memo.create () in
  let cold =
    O.optimize pt ~delay:dt ~memo:cold_memo (I.circuit sess)
      ~inputs:(inputs_of tbl)
  in
  check_float "memoized: settled power is a fixed point" cold.O.power_after
    (I.report sess).O.power_after

let test_memo_merge () =
  let m1 = Reorder.Memo.create () and m2 = Reorder.Memo.create () in
  Reorder.Memo.store m1 "a" 1;
  Reorder.Memo.store m2 "a" 2;
  Reorder.Memo.store m2 "b" 3;
  Reorder.Memo.merge ~into:m1 m2;
  Alcotest.(check int) "merged size" 2 (Reorder.Memo.size m1);
  Alcotest.(check (option int)) "first writer wins" (Some 1)
    (Reorder.Memo.lookup m1 "a");
  Alcotest.(check (option int)) "new entry copied" (Some 3)
    (Reorder.Memo.lookup m1 "b");
  Reorder.Memo.merge ~into:m1 m1;
  Alcotest.(check int) "self-merge is a no-op" 2 (Reorder.Memo.size m1)

let test_parallel_and_memo_equivalence () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca8" in
  let tbl = stats_table circuit ~seed:29 in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun memoize ->
      let tbl_seq = Hashtbl.copy tbl and tbl_par = Hashtbl.copy tbl in
      let seq =
        I.create pt ~delay:dt ~memoize circuit ~inputs:(inputs_of tbl_seq)
      in
      let par =
        I.create pt ~delay:dt ~memoize ~pool circuit
          ~inputs:(inputs_of tbl_par)
      in
      let edit tbl net = Hashtbl.replace tbl net (S.make ~prob:0.25 ~density:3e7) in
      let pi = List.nth (C.primary_inputs circuit) 1 in
      edit tbl_seq pi;
      edit tbl_par pi;
      let s = S.make ~prob:0.25 ~density:3e7 in
      let r_seq = I.apply seq [ I.Set_input_stats (pi, s) ] in
      let r_par = I.apply ~pool par [ I.Set_input_stats (pi, s) ] in
      check_float
        (Printf.sprintf "memoize=%b: jobs 1 = jobs 4 (after)" memoize)
        r_seq.O.power_after r_par.O.power_after;
      Alcotest.(check (array int))
        (Printf.sprintf "memoize=%b: same configs" memoize)
        r_seq.O.configs r_par.O.configs)
    [ false; true ]

let test_edit_validation () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let tbl = stats_table circuit ~seed:5 in
  let sess = I.create pt ~delay:dt circuit ~inputs:(inputs_of tbl) in
  let before = I.report sess in
  let gate_driven =
    (C.gate_at circuit 0).C.output
  in
  Alcotest.(check bool) "stats edit on a gate-driven net is refused" true
    (try
       ignore
         (I.apply sess
            [ I.Set_input_stats (gate_driven, S.make ~prob:0.5 ~density:1e6) ]);
       false
     with I.Edit_error _ -> true);
  Alcotest.(check bool) "bad gate index is refused" true
    (try
       ignore
         (I.apply sess [ I.Replace_gate (9999, C.gate_at circuit 0) ]);
       false
     with I.Edit_error _ -> true);
  Alcotest.(check bool) "negative load is refused" true
    (try
       ignore (I.apply sess [ I.Set_external_load (-1.) ]);
       false
     with I.Edit_error _ -> true);
  (* A failing batch leaves the session untouched. *)
  let after = I.report sess in
  check_float "report unchanged by failed batches" before.O.power_after
    after.O.power_after

let test_script_parsing () =
  let circuit = Circuits.Suite.find "rca4" in
  let a_name = C.net_name circuit (List.hd (C.primary_inputs circuit)) in
  let text =
    Printf.sprintf
      {|# a comment
{"op":"set_input_stats","net":"%s","prob":0.5,"density":2.0e8}

[{"op":"set_external_load","farads":2.5e-14},{"op":"set_objective","objective":"max_power"}]
{"op":"replace_gate","gate":0,"config":1}
|}
      a_name
  in
  let batches = I.Script.parse ~circuit text in
  Alcotest.(check int) "three batches" 3 (List.length batches);
  (match batches with
  | [ [ I.Set_input_stats (net, s) ];
      [ I.Set_external_load l; I.Set_objective O.Max_power ];
      [ I.Replace_gate (0, gate) ] ] ->
      Alcotest.(check string)
        "net resolved" a_name (C.net_name circuit net);
      Alcotest.(check (float 0.)) "prob" 0.5 (Stoch.Signal_stats.prob s);
      Alcotest.(check (float 0.)) "load" 2.5e-14 l;
      Alcotest.(check int) "config" 1 gate.C.config;
      Alcotest.(check string) "cell kept" (Cell.Gate.name (C.gate_at circuit 0).C.cell)
        (Cell.Gate.name gate.C.cell)
  | _ -> Alcotest.fail "unexpected batch structure");
  Alcotest.(check bool) "bad op rejected" true
    (try
       ignore (I.Script.parse ~circuit {|{"op":"frobnicate"}|});
       false
     with I.Edit_error _ -> true);
  Alcotest.(check bool) "unknown net rejected" true
    (try
       ignore
         (I.Script.parse ~circuit
            {|{"op":"set_input_stats","net":"nope","prob":0.5,"density":1}|});
       false
     with I.Edit_error _ -> true)

let test_replay_and_percentiles () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let tbl = stats_table circuit ~seed:17 in
  let sess = I.create pt ~delay:dt circuit ~inputs:(inputs_of tbl) in
  let pi = List.hd (C.primary_inputs circuit) in
  let name = C.net_name circuit pi in
  let text =
    String.concat "\n"
      (List.map
         (fun d ->
           Printf.sprintf
             {|{"op":"set_input_stats","net":"%s","prob":0.5,"density":%g}|}
             name d)
         [ 1e6; 2e6; 3e6; 4e6 ])
  in
  let script = I.Script.parse ~circuit text in
  let timings = I.replay sess script in
  Alcotest.(check int) "one timing per batch" 4 (List.length timings);
  List.iter
    (fun (tm : I.timing) ->
      Alcotest.(check bool) "positive latency" true (tm.I.seconds >= 0.);
      Alcotest.(check int) "single-edit batches" 1 tm.I.edits)
    timings;
  let p50, p90, p99 = I.latency_percentiles timings in
  Alcotest.(check bool) "percentiles ordered" true (p50 <= p90 && p90 <= p99);
  (* The session's input model now ends at the last scripted value; the
     settled state is a fixed point, checkable with an empty batch. *)
  Hashtbl.replace tbl pi (S.make ~prob:0.5 ~density:4e6);
  let entering = I.circuit sess in
  ignore (I.apply sess []);
  check_equivalent "after replay" sess entering tbl

let test_cold_fallback_on_non_power_objective () =
  let pt = power_table () and dt = delay_table () in
  let circuit = Circuits.Suite.find "rca4" in
  let tbl = stats_table circuit ~seed:23 in
  let sess = I.create pt ~delay:dt circuit ~inputs:(inputs_of tbl) in
  let cold_runs = Obs.counter "incremental.cold_runs" in
  let before = Obs.value cold_runs in
  ignore (I.apply sess [ I.Set_objective O.Min_delay ]);
  Alcotest.(check bool) "non-power objective falls back to a cold run" true
    (Obs.value cold_runs > before);
  (* And a later power-objective apply recovers (another cold run that
     reseeds the cache, then incremental again). *)
  ignore (I.apply sess [ I.Set_objective O.Min_power ]);
  let applies = Obs.counter "incremental.applies" in
  let a0 = Obs.value applies in
  let entering = I.circuit sess in
  ignore (I.apply sess []);
  Alcotest.(check bool) "back on the incremental path" true
    (Obs.value applies > a0);
  check_equivalent "recovered" sess entering tbl

let () =
  Alcotest.run "incremental"
    [
      ( "equivalence",
        [
          Alcotest.test_case "stats edit" `Quick test_stats_edit_equivalence;
          Alcotest.test_case "dirty cone is narrow" `Quick
            test_dirty_cone_is_narrow;
          Alcotest.test_case "external load and objective" `Quick
            test_external_load_and_objective;
          Alcotest.test_case "parallel and memo" `Quick
            test_parallel_and_memo_equivalence;
        ] );
      ( "memo",
        [
          Alcotest.test_case "warm across applies" `Quick
            test_memo_warm_across_applies;
          Alcotest.test_case "merge" `Quick test_memo_merge;
        ] );
      ( "edits",
        [
          Alcotest.test_case "validation" `Quick test_edit_validation;
          Alcotest.test_case "script parsing" `Quick test_script_parsing;
          Alcotest.test_case "replay and percentiles" `Quick
            test_replay_and_percentiles;
          Alcotest.test_case "cold fallback" `Quick
            test_cold_fallback_on_non_power_objective;
        ] );
    ]
