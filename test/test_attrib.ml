(* Tests for the power-attribution ledger: conservation of the
   per-node / per-input breakdown, consistency with the optimizer
   report, ranking queries, and the --explain / JSON renderings. *)

let power_table = Power.Model.table Cell.Process.default
let delay_table = Delay.Elmore.table Cell.Process.default

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let ledger_of ?(candidates = true) name =
  let circuit = Circuits.Suite.find name in
  let inputs _net = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
  let report =
    Reorder.Optimizer.optimize power_table ~delay:delay_table circuit ~inputs
  in
  (circuit, report, Attrib.of_report power_table ~candidates ~before:circuit ~inputs report)

let test_conservation () =
  let _, report, ledger = ledger_of "rca4" in
  Alcotest.(check bool) "worst relative gap tiny" true
    (Attrib.conservation_error ledger < 1e-12);
  Array.iter
    (fun (e : Attrib.gate_entry) ->
      let close a b =
        Float.abs (a -. b) <= 1e-9 *. Float.max 1e-30 (Float.abs b)
      in
      Alcotest.(check bool)
        (Printf.sprintf "gate %d nodes sum to total" e.Attrib.index)
        true
        (close (Attrib.node_sum e) e.Attrib.after_total);
      List.iter
        (fun (ns : Attrib.node_share) ->
          let s =
            Array.fold_left (fun acc (_, w) -> acc +. w) 0. ns.Attrib.per_input
          in
          Alcotest.(check bool)
            (Printf.sprintf "gate %d per-input watts sum to node power"
               e.Attrib.index)
            true (close s ns.Attrib.power))
        e.Attrib.nodes)
    ledger.Attrib.gates;
  (* Ledger totals agree with the optimizer report. *)
  let close a b = Float.abs (a -. b) <= 1e-9 *. Float.abs b in
  Alcotest.(check bool) "total_after matches report" true
    (close ledger.Attrib.total_after report.Reorder.Optimizer.power_after);
  Alcotest.(check bool) "total_before matches report" true
    (close ledger.Attrib.total_before report.Reorder.Optimizer.power_before)

let test_structure () =
  let circuit, report, ledger = ledger_of "rca4" in
  Alcotest.(check int) "one entry per gate"
    (Netlist.Circuit.gate_count circuit)
    (Array.length ledger.Attrib.gates);
  Array.iteri
    (fun i (e : Attrib.gate_entry) ->
      Alcotest.(check int) "entries indexed by gate" i e.Attrib.index;
      Alcotest.(check int) "config_after matches the report"
        report.Reorder.Optimizer.configs.(i)
        e.Attrib.config_after;
      Alcotest.(check bool) "candidate count = cell configurations" true
        (Array.length e.Attrib.candidates
        = Cell.Gate.config_count
            (Cell.Gate.of_name e.Attrib.cell));
      (* The chosen configuration's candidate power is the gate total. *)
      let chosen =
        Array.to_list e.Attrib.candidates
        |> List.assoc_opt e.Attrib.config_after
      in
      match chosen with
      | None -> Alcotest.fail "chosen config missing from candidates"
      | Some w ->
          Alcotest.(check bool) "candidate power matches after_total" true
            (Float.abs (w -. e.Attrib.after_total)
            <= 1e-9 *. Float.abs e.Attrib.after_total))
    ledger.Attrib.gates;
  Alcotest.(check int) "changed = gates_changed"
    report.Reorder.Optimizer.gates_changed
    (List.length (Attrib.changed ledger))

let test_top_consumers () =
  let _, _, ledger = ledger_of "rca4" in
  let top = Attrib.top_consumers ledger 3 in
  Alcotest.(check int) "asked for 3" 3 (List.length top);
  let rec descending = function
    | (a : Attrib.gate_entry) :: (b :: _ as rest) ->
        a.Attrib.after_total >= b.Attrib.after_total && descending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "descending power" true (descending top);
  let all = Attrib.top_consumers ledger 1000 in
  Alcotest.(check int) "k larger than circuit is clamped"
    (Array.length ledger.Attrib.gates)
    (List.length all);
  let worst = (List.hd top).Attrib.after_total in
  Array.iter
    (fun (e : Attrib.gate_entry) ->
      Alcotest.(check bool) "head dominates every gate" true
        (e.Attrib.after_total <= worst +. 1e-30))
    ledger.Attrib.gates

let test_no_candidates () =
  let _, _, ledger = ledger_of ~candidates:false "c17" in
  Array.iter
    (fun (e : Attrib.gate_entry) ->
      Alcotest.(check int) "candidates disabled" 0
        (Array.length e.Attrib.candidates))
    ledger.Attrib.gates;
  Alcotest.(check bool) "conservation still holds" true
    (Attrib.conservation_error ledger < 1e-12)

let test_render_explain () =
  let _, _, ledger = ledger_of "rca4" in
  let s = Attrib.render_explain ~top:2 ledger in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [
      "top power consumers (after reordering)";
      "why this ordering won (changed gates)";
      "node breakdown:";
      "rca4";
    ];
  Alcotest.(check string) "deterministic" s (Attrib.render_explain ~top:2 ledger)

let test_json () =
  let _, _, ledger = ledger_of "rca4" in
  match Trace.Json.parse (Attrib.to_json ledger) with
  | Error msg -> Alcotest.failf "ledger JSON does not parse: %s" msg
  | Ok doc ->
      let num key =
        Option.bind (Trace.Json.member key doc) Trace.Json.to_float
      in
      Alcotest.(check (option (float 1e-24))) "total_after serialized"
        (Some ledger.Attrib.total_after)
        (num "total_after");
      (match Trace.Json.member "gates" doc with
      | Some (Trace.Json.Arr gates) ->
          Alcotest.(check int) "every gate serialized"
            (Array.length ledger.Attrib.gates)
            (List.length gates)
      | _ -> Alcotest.fail "no gates array");
      Alcotest.(check (option string)) "circuit name" (Some "rca4")
        (Option.bind (Trace.Json.member "circuit" doc) Trace.Json.to_string)

let test_mismatched_report () =
  let circuit = Circuits.Suite.find "rca4" in
  let other = Circuits.Suite.find "c17" in
  let inputs _net = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
  let report =
    Reorder.Optimizer.optimize power_table ~delay:delay_table other ~inputs
  in
  match
    Attrib.of_report power_table ~before:circuit ~inputs report
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched circuit/report accepted"

let () =
  Alcotest.run "attrib"
    [
      ( "conservation",
        [
          Alcotest.test_case "nodes sum to gates, inputs to nodes" `Quick
            test_conservation;
          Alcotest.test_case "holds without candidates" `Quick
            test_no_candidates;
        ] );
      ( "structure",
        [
          Alcotest.test_case "entries mirror the report" `Quick test_structure;
          Alcotest.test_case "top consumers ranking" `Quick test_top_consumers;
          Alcotest.test_case "mismatched report rejected" `Quick
            test_mismatched_report;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "--explain tables" `Quick test_render_explain;
          Alcotest.test_case "JSON parses and round-trips totals" `Quick
            test_json;
        ] );
    ]
