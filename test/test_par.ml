(* Tests for the fixed domain pool: map equivalence with Array.map
   across jobs/chunk settings, pool reuse, map_reduce submission-order
   combining, deterministic exception propagation, nested-use and
   use-after-shutdown rejection, the per-domain scheduling telemetry
   flushed at shutdown, and TREORDER_JOBS parsing. *)

module P = Par.Pool

let ints = Alcotest.(array int)

let test_map_matches_array_map () =
  let xs = Array.init 103 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs @@ fun p ->
      Alcotest.(check int) "jobs recorded" jobs (P.jobs p);
      List.iter
        (fun chunk ->
          Alcotest.check ints
            (Printf.sprintf "jobs=%d chunk=%s" jobs
               (match chunk with None -> "auto" | Some c -> string_of_int c))
            expected
            (P.map ?chunk p f xs))
        [ None; Some 1; Some 7; Some 1000 ])
    [ 1; 2; 4 ]

let test_map_empty_and_reuse () =
  P.with_pool ~jobs:3 @@ fun p ->
  Alcotest.check ints "empty input" [||] (P.map p (fun x -> x) [||]);
  (* Many batches through one pool: workers must survive between maps. *)
  for round = 1 to 20 do
    let xs = Array.init round (fun i -> i) in
    Alcotest.check ints
      (Printf.sprintf "round %d" round)
      (Array.map succ xs) (P.map p succ xs)
  done

let test_map_reduce_submission_order () =
  (* String concatenation is not commutative, so any out-of-order
     combine changes the result. *)
  let xs = Array.init 57 (fun i -> i) in
  let expected =
    Array.fold_left
      (fun acc x -> acc ^ string_of_int x ^ ";")
      "" (Array.map succ xs)
  in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs @@ fun p ->
      let got =
        P.map_reduce ~chunk:3 p
          ~map:(fun x -> succ x)
          ~combine:(fun acc x -> acc ^ string_of_int x ^ ";")
          ~init:"" xs
      in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d" jobs)
        expected got)
    [ 1; 2; 4 ]

exception Boom of int

let test_exception_propagation () =
  P.with_pool ~jobs:4 @@ fun p ->
  let xs = Array.init 40 (fun i -> i) in
  (* Several elements raise; the re-raised exception must be the one
     from the lowest chunk index, whatever order workers hit them. *)
  let f x = if x = 7 || x = 23 || x = 31 then raise (Boom x) else x in
  (match P.map ~chunk:1 p f xs with
  | _ -> Alcotest.fail "map over a raising function returned"
  | exception Boom x -> Alcotest.(check int) "lowest failing chunk wins" 7 x);
  (* The pool is still usable after a failed batch. *)
  Alcotest.check ints "pool survives the failure" (Array.map succ xs)
    (P.map p succ xs)

let test_nested_use_rejected () =
  P.with_pool ~jobs:2 @@ fun p ->
  let saw = ref None in
  (try
     ignore
       (P.map p
          (fun _ ->
            match P.map p succ [| 1 |] with
            | _ -> ()
            | exception Invalid_argument m -> saw := Some m)
          [| 0 |])
   with Invalid_argument m -> saw := Some m);
  match !saw with
  | Some m ->
      Alcotest.(check bool) "mentions nesting" true
        (String.length m > 0
        && String.sub m 0 (String.length "Par.Pool.map: nested")
           = "Par.Pool.map: nested")
  | None -> Alcotest.fail "nested map from inside a task was not rejected"

let test_shutdown () =
  let p = P.create ~jobs:2 () in
  Alcotest.check ints "works before shutdown" [| 2; 3 |]
    (P.map p succ [| 1; 2 |]);
  P.shutdown p;
  P.shutdown p (* idempotent *);
  (match P.map p succ [| 1 |] with
  | _ -> Alcotest.fail "map on a shut-down pool returned"
  | exception Invalid_argument _ -> ());
  Alcotest.check_raises "create rejects jobs < 1"
    (Invalid_argument "Par.Pool.create: jobs must be >= 1") (fun () ->
      ignore (P.create ~jobs:0 ()))

let test_pool_telemetry () =
  Obs.reset ();
  let p = P.create ~jobs:3 () in
  let xs = Array.init 100 (fun i -> i) in
  (* Enough work per task that busy time clears the clock resolution. *)
  let f x =
    let acc = ref 0. in
    for i = 1 to 50_000 do
      acc := !acc +. (1. /. float_of_int i)
    done;
    x + int_of_float (!acc *. 0.)
  in
  ignore (P.map ~chunk:8 p f xs);
  P.shutdown p;
  let chunks = 13 (* ceil 100/8 *) in
  let value name = Obs.value (Obs.counter name) in
  let sum per_slot = per_slot 0 + per_slot 1 + per_slot 2 in
  Alcotest.(check int) "every chunk attributed to a slot" chunks
    (sum (fun d -> value (Printf.sprintf "par.domain_tasks.%d" d)));
  Alcotest.(check bool) "busy time recorded" true
    (sum (fun d -> value (Printf.sprintf "par.domain_busy_ns.%d" d)) > 0);
  let snap = Obs.snapshot () in
  let dist name = List.assoc_opt name snap.Obs.distributions in
  (match dist "par.chunk_size" with
  | Some d ->
      Alcotest.(check int) "one observation per chunk" chunks d.Obs.count;
      Alcotest.(check (float 1e-9)) "largest chunk" 8. d.Obs.max;
      Alcotest.(check (float 1e-9)) "tail chunk" 4. d.Obs.min
  | None -> Alcotest.fail "par.chunk_size not observed");
  (match dist "par.imbalance" with
  | Some d ->
      Alcotest.(check int) "imbalance observed once at shutdown" 1 d.Obs.count;
      Alcotest.(check bool) "max/mean busy >= 1" true (d.Obs.max >= 1.)
  | None -> Alcotest.fail "par.imbalance not observed");
  (* Sequential pools run inline and publish no scheduling telemetry. *)
  Obs.reset ();
  P.with_pool ~jobs:1 (fun q -> ignore (P.map q succ xs));
  Alcotest.(check int) "jobs=1 flushes nothing" 0
    (value "par.domain_tasks.0")

let test_default_jobs_env () =
  let with_env value f =
    let saved = Sys.getenv_opt "TREORDER_JOBS" in
    Unix.putenv "TREORDER_JOBS" value;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "TREORDER_JOBS" (Option.value saved ~default:""))
      f
  in
  with_env "3" (fun () ->
      Alcotest.(check int) "TREORDER_JOBS honoured" 3 (P.default_jobs ()));
  with_env "0" (fun () ->
      Alcotest.(check bool) "non-positive ignored" true (P.default_jobs () >= 1));
  with_env "nope" (fun () ->
      Alcotest.(check bool) "garbage ignored" true (P.default_jobs () >= 1))

let () =
  Alcotest.run "par"
    [
      ( "map",
        [
          Alcotest.test_case "matches Array.map" `Quick
            test_map_matches_array_map;
          Alcotest.test_case "empty input + pool reuse" `Quick
            test_map_empty_and_reuse;
          Alcotest.test_case "map_reduce combines in submission order" `Quick
            test_map_reduce_submission_order;
        ] );
      ( "failure",
        [
          Alcotest.test_case "deterministic exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick
            test_nested_use_rejected;
          Alcotest.test_case "shutdown semantics" `Quick test_shutdown;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "per-domain busy/task counters" `Quick
            test_pool_telemetry;
        ] );
      ( "config",
        [
          Alcotest.test_case "TREORDER_JOBS parsing" `Quick
            test_default_jobs_env;
        ] );
    ]
