(* The property-based testing subsystem itself: deterministic smoke tier
   over every oracle, generator well-formedness, shrinking behaviour,
   and counterexample reproducibility on a synthetic forced bug. *)

module C = Netlist.Circuit
module R = Proptest.Runner

(* --- smoke tier: every oracle, fixed seed, 200 cases --- *)

let smoke_cases = 200

let smoke_tests =
  List.map
    (fun p ->
      Alcotest.test_case (R.name p) `Quick (fun () ->
          let r = R.run ~seed:42 ~count:smoke_cases ~size:10 p in
          match r.R.counterexample with
          | None ->
              Alcotest.(check int)
                (R.name p ^ " ran every case")
                smoke_cases r.R.cases_run
          | Some cex ->
              Alcotest.failf "%s failed (seed %d): %s\n%s" (R.name p)
                cex.R.case_seed cex.R.message cex.R.printed))
    (Proptest.Oracles.all ())

(* --- generators --- *)

let test_gen_circuit_valid () =
  for seed = 0 to 60 do
    let c = Proptest.Gen.circuit (Stoch.Rng.create seed) ~size:12 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: 1..12 gates" seed)
      true
      (C.gate_count c >= 1 && C.gate_count c <= 12);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: has outputs" seed)
      true
      (C.primary_outputs c <> [])
  done

let test_gen_circuit_deterministic () =
  let text seed =
    Netlist.Io.to_string (Proptest.Gen.circuit (Stoch.Rng.create seed) ~size:12)
  in
  Alcotest.(check string) "same seed, same circuit" (text 7) (text 7);
  Alcotest.(check bool) "different seed, different circuit" true
    (text 7 <> text 8)

(* tree_circuit must be read-once: every net feeds at most one fanin
   pin, so the gate-local power propagation is exact on it. *)
let test_gen_tree_read_once () =
  for seed = 0 to 60 do
    let c = Proptest.Gen.tree_circuit (Stoch.Rng.create seed) ~size:12 in
    let reads = Array.make (C.net_count c) 0 in
    Array.iter
      (fun (g : C.gate) ->
        Array.iter (fun n -> reads.(n) <- reads.(n) + 1) g.C.fanins)
      (C.gates c);
    Array.iteri
      (fun net k ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: net %s read %d time(s)" seed
             (C.net_name c net) k)
          true (k <= 1))
      reads
  done

let test_gen_stimulus_well_formed () =
  let c = Proptest.Gen.circuit (Stoch.Rng.create 3) ~size:12 in
  let stats = Proptest.Gen.input_stats ~seed:9 c in
  List.iter
    (fun net ->
      let s = stats net in
      let p = Stoch.Signal_stats.prob s and d = Stoch.Signal_stats.density s in
      Alcotest.(check bool) "P in [0.05, 0.95]" true (p >= 0.05 && p <= 0.95);
      Alcotest.(check bool) "D in (0, 2]" true (d > 0. && d <= 2.))
    (C.primary_inputs c);
  (* keyed by name: independent of net numbering, stable across shrinks *)
  let s = stats (List.hd (C.primary_inputs c)) in
  let s' = Proptest.Gen.input_stats ~seed:9 c (List.hd (C.primary_inputs c)) in
  Alcotest.(check (float 0.)) "stimulus deterministic"
    (Stoch.Signal_stats.prob s) (Stoch.Signal_stats.prob s')

let test_gen_sp_network () =
  for seed = 0 to 60 do
    let t = Proptest.Gen.sp_network (Stoch.Rng.create seed) ~size:12 in
    let leaves = Sp.Sp_tree.inputs t in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: 2..6 distinct leaves" seed)
      true
      (List.length leaves >= 2
      && List.length leaves <= 6
      && List.length (List.sort_uniq compare leaves) = List.length leaves)
  done

(* --- shrinking --- *)

let test_shrink_candidates_smaller () =
  let c = Proptest.Gen.circuit (Stoch.Rng.create 11) ~size:12 in
  let candidates = Proptest.Shrink.circuit c in
  Alcotest.(check bool) "has candidates" true (candidates <> []);
  List.iter
    (fun c' ->
      Alcotest.(check bool) "candidate not larger" true
        (C.gate_count c' <= C.gate_count c))
    candidates

let test_shrink_sp_candidates () =
  let t = Proptest.Gen.sp_network (Stoch.Rng.create 11) ~size:12 in
  List.iter
    (fun t' ->
      Alcotest.(check bool) "candidate loses a leaf or a level" true
        (List.length (Sp.Sp_tree.inputs t') < List.length (Sp.Sp_tree.inputs t)
        || Sp.Sp_tree.internal_node_count t' < Sp.Sp_tree.internal_node_count t))
    (Proptest.Shrink.sp t)

(* --- forced bug: the runner must find, shrink, and reproduce it --- *)

(* "No circuit has more than 2 gates" is false; the minimal witness the
   shrinker should reach has 3 gates (well under the 6-gate bound the
   subsystem promises). *)
let gate_bound_prop =
  R.Prop
    {
      R.name = "synthetic: gate count <= 2";
      generate = Proptest.Gen.circuit;
      shrink = Proptest.Shrink.circuit;
      print = Netlist.Io.to_string;
      check =
        (fun ~seed:_ c ->
          if C.gate_count c <= 2 then R.Pass
          else R.Fail (Printf.sprintf "%d gates" (C.gate_count c)));
    }

let test_forced_bug_shrinks () =
  let r = R.run ~seed:42 ~count:100 ~size:12 gate_bound_prop in
  match r.R.counterexample with
  | None -> Alcotest.fail "expected a counterexample"
  | Some cex ->
      (* the printed witness is a parseable netlist ... *)
      let witness = Netlist.Io.of_string cex.R.printed in
      (* ... shrunk to the minimal failing size *)
      Alcotest.(check int) "shrunk to 3 gates" 3 (C.gate_count witness);
      Alcotest.(check bool) "shrinking did some work" true
        (cex.R.shrink_steps > 0);
      (* and the reported seed reproduces the identical report. *)
      let r' = R.run ~seed:cex.R.case_seed ~count:1 ~size:12 gate_bound_prop in
      match r'.R.counterexample with
      | None -> Alcotest.fail "reported seed did not reproduce the failure"
      | Some cex' ->
          Alcotest.(check string) "identical shrunk witness" cex.R.printed
            cex'.R.printed

let test_runner_counters () =
  let before = Obs.value (Obs.counter "proptest.cases_run") in
  let cexs = Obs.value (Obs.counter "proptest.counterexamples") in
  ignore (R.run ~seed:1 ~count:10 ~size:6 (List.hd (Proptest.Oracles.all ())));
  ignore (R.run ~seed:42 ~count:100 ~size:12 gate_bound_prop);
  Alcotest.(check bool) "cases_run advanced" true
    (Obs.value (Obs.counter "proptest.cases_run") >= before + 10);
  Alcotest.(check bool) "counterexamples advanced" true
    (Obs.value (Obs.counter "proptest.counterexamples") > cexs)

let test_oracle_registry () =
  Alcotest.(check int) "fifteen oracles" 15
    (List.length (Proptest.Oracles.all ()));
  Alcotest.(check bool) "find mc oracle" true
    (Proptest.Oracles.find "mc-convergence" <> None);
  Alcotest.(check bool) "find incremental oracle" true
    (Proptest.Oracles.find "incremental-equivalence" <> None);
  Alcotest.(check bool) "find telemetry oracle" true
    (Proptest.Oracles.find "telemetry-consistency" <> None);
  Alcotest.(check bool) "find history oracle" true
    (Proptest.Oracles.find "history-consistency" <> None);
  Alcotest.(check bool) "find known" true
    (Proptest.Oracles.find "io-roundtrip" <> None);
  Alcotest.(check bool) "find archive oracle" true
    (Proptest.Oracles.find "archive-roundtrip" <> None);
  Alcotest.(check bool) "find parallel oracle" true
    (Proptest.Oracles.find "parallel-determinism" <> None);
  Alcotest.(check bool) "find unknown" true (Proptest.Oracles.find "nope" = None)

let () =
  Alcotest.run "proptest"
    [
      ("oracle smoke (200 cases each)", smoke_tests);
      ( "generators",
        [
          Alcotest.test_case "random circuits valid" `Quick
            test_gen_circuit_valid;
          Alcotest.test_case "deterministic per seed" `Quick
            test_gen_circuit_deterministic;
          Alcotest.test_case "tree circuits read-once" `Quick
            test_gen_tree_read_once;
          Alcotest.test_case "stimulus well-formed" `Quick
            test_gen_stimulus_well_formed;
          Alcotest.test_case "sp networks" `Quick test_gen_sp_network;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "circuit candidates not larger" `Quick
            test_shrink_candidates_smaller;
          Alcotest.test_case "sp candidates smaller" `Quick
            test_shrink_sp_candidates;
          Alcotest.test_case "forced bug found, shrunk, reproduced" `Quick
            test_forced_bug_shrinks;
        ] );
      ( "runner",
        [
          Alcotest.test_case "obs counters" `Quick test_runner_counters;
          Alcotest.test_case "oracle registry" `Quick test_oracle_registry;
        ] );
    ]
