(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md §5 for the experiment index) and runs Bechamel
   micro-benchmarks of the core computations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table3_a perf
   Targets: table1 table2 figure5 table3_a table3_b adder_profile
            ablation_delay ablation_inputreorder model_accuracy
            probe_overhead perf perf_parallel perf_mc telemetry_overhead *

   Regression gating against a stored BENCH_obs.json:
     dune exec bench/main.exe -- --baseline OLD.json --check table2 perf
   compares counters (two-sided, deterministic for fixed seeds) and
   wall-clock (one-sided, generous tolerance) per target and exits 1
   on any violation. --no-time restricts the gate to counters, which
   is what the committed CI fixture uses (see bench/dune). *)

let ctx = Experiments.Common.create ()

let section title = Printf.printf "==== %s ====\n%!" title

(* Per-target observability metrics (an Obs snapshot captured right
   after the target ran), serialized to BENCH_obs.json at exit — and
   appended, one NDJSON record per target, to BENCH_history.ndjson so
   the trajectory survives the snapshot's overwrite. Tuple:
   (target, start epoch seconds, wall seconds, snapshot json). *)
let metrics : (string * float * float * string) list ref = ref []

(* With --archive DIR, every target additionally becomes a run record
   DIR/<target>/ (deterministic id, overwritten on re-run) so archived
   bench runs can be compared with `treorder runs diff` — the committed
   fixture gate in bench/dune rests on this. *)
let archive_dir : string option ref = ref None

let timed name f =
  Obs.reset ();
  let pending =
    Option.map
      (fun _ ->
        let p =
          Runlog.start ~subcommand:"bench"
            ~argv:(List.tl (Array.to_list Sys.argv))
            ()
        in
        Runlog.set_param p "target" name;
        p)
      !archive_dir
  in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "[%s: %.1f s]\n\n%!" name seconds;
  let snapshot_json = Obs.snapshot_to_json (Obs.snapshot ()) in
  metrics := (name, t0, seconds, snapshot_json) :: !metrics;
  (match (pending, !archive_dir) with
  | Some p, Some dir -> (
      match Runlog.write ~id:name ~dir ~snapshot_json p with
      | Ok run_dir -> Printf.printf "[archived %s]\n%!" run_dir
      | Error msg ->
          Printf.eprintf "cannot write run archive: %s\n" msg;
          exit 1)
  | _ -> ());
  r

let write_metrics path =
  let oc = open_out path in
  let target (name, _time, seconds, json) =
    Printf.sprintf "{\"name\":%S,\"seconds\":%.6f,\"metrics\":%s}" name seconds
      json
  in
  Printf.fprintf oc "{\"targets\":[%s]}\n"
    (String.concat "," (List.rev_map target !metrics));
  close_out oc

(* The snapshot file above is overwritten per invocation; the history
   file is append-only, one NDJSON record per target, so consecutive
   bench runs accumulate the trajectory `treorder runs history --bench`
   reads. All records go out in a single O_APPEND write, so a
   concurrent bench invocation cannot interleave partial lines; a
   truncated tail (killed mid-write) is skipped by the tolerant
   reader. *)
let append_history path =
  let argv_json =
    "["
    ^ String.concat ","
        (List.map Trace.Json.escape (List.tl (Array.to_list Sys.argv)))
    ^ "]"
  in
  let line (name, time, seconds, json) =
    Printf.sprintf
      "{\"v\":1,\"time\":%.6f,\"target\":%s,\"argv\":%s,\"seconds\":%.6f,\"metrics\":%s}\n"
      time (Trace.Json.escape name) argv_json seconds json
  in
  let payload = String.concat "" (List.rev_map line !metrics) in
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot append bench history %s: %s\n" path
        (Unix.error_message e);
      exit 1
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let n = Unix.write_substring fd payload 0 (String.length payload) in
          if n <> String.length payload then begin
            Printf.eprintf "cannot append bench history %s: short write\n"
              path;
            exit 1
          end)

(* --- reproduction targets --- *)

let table1 () =
  section "E1 / Table 1";
  print_string (Experiments.Table1.render (Experiments.Table1.run ctx))

let table2 () =
  section "E2 / Table 2";
  print_string (Experiments.Table2.render (Experiments.Table2.run ()))

let figure5 () =
  section "E3 / Figure 5";
  print_string (Experiments.Figure5.render (Experiments.Figure5.run ()))

let table3 scenario () =
  section ("E4 / Table 3, scenario " ^ Power.Scenario.name scenario);
  print_string
    (Experiments.Table3.render (Experiments.Table3.run ctx scenario))

let adder_profile () =
  section "E5 / ripple-carry carry activity";
  print_string
    (Experiments.Adder_profile.render
       (Experiments.Adder_profile.run ctx ~bits:16 ()))

(* The STA-checked delay-bounded pass is quadratic in circuit size, so
   the ablations run on a representative medium subset. *)
let ablation_subset () =
  List.map
    (fun n -> (n, Circuits.Suite.find n))
    [
      "c17"; "rca4"; "par9"; "mux8"; "dec3"; "alu1"; "maj5"; "prio8";
      "cmpeq4"; "cmpgt4"; "inc6"; "tree16"; "rnd_a"; "rca8"; "mux16";
    ]

let ablation_delay () =
  section "E6 / delay-bounded reordering";
  print_string
    (Experiments.Ablations.render_delay_bounded
       (Experiments.Ablations.delay_bounded ctx ~circuits:(ablation_subset ())
          Power.Scenario.A))

let ablation_inputreorder () =
  section "E7 / input reordering vs transistor reordering";
  print_string
    (Experiments.Ablations.render_input_reordering
       (Experiments.Ablations.input_reordering ctx Power.Scenario.A))

let glitch () =
  section "E9 / glitch power (timed simulation)";
  print_string
    (Experiments.Glitch.render
       (Experiments.Glitch.run ctx ~circuits:(ablation_subset ())
          Power.Scenario.A))

let exactness () =
  section "E11 / local vs exact densities";
  print_string (Experiments.Exactness.render (Experiments.Exactness.run ctx ()))

let sequential () =
  section "E12 / latch-bounded machines";
  print_string
    (Experiments.Sequential_exp.render (Experiments.Sequential_exp.run ctx ()))

let gate_accuracy () =
  section "E13 / per-gate model vs exhaustive enumeration";
  print_string
    (Experiments.Gate_accuracy.render (Experiments.Gate_accuracy.run ctx ()))

let sensitivity () =
  section "E10 / process sensitivity";
  print_string (Experiments.Sensitivity.render (Experiments.Sensitivity.run ()))

let model_accuracy () =
  section "E8 / model vs switch-level power";
  print_string
    (Experiments.Ablations.render_accuracy
       (Experiments.Ablations.model_accuracy ctx Power.Scenario.A))

(* --- Bechamel micro-benchmarks (P1-P5) --- *)

let perf () =
  section "P1-P5 / Bechamel micro-benchmarks";
  let open Bechamel in
  let bdd_apply =
    (* P1: BDD construction + apply over a mid-size function. *)
    Test.make ~name:"bdd_apply"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let f = ref (Bdd.zero m) in
           for i = 0 to 7 do
             f := Bdd.(!f ||| (var m i &&& nvar m ((i + 1) mod 8)))
           done;
           ignore (Bdd.probability !f (fun _ -> 0.5))))
  in
  let hg_extraction =
    (* P2: H/G path functions of the widest library gate. *)
    let config = Cell.Config.reference (Cell.Gate.of_name "aoi222") in
    let network = Cell.Config.network config in
    Test.make ~name:"hg_extraction"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           List.iter
             (fun node ->
               ignore (Sp.Network.h_function m network node);
               ignore (Sp.Network.g_function m network node))
             (Sp.Network.power_nodes network)))
  in
  let gate_exploration =
    (* P3: full power exploration of one aoi221 (24 configurations). *)
    let gate = Cell.Gate.of_name "aoi221" in
    let input_stats =
      Array.init 5 (fun i ->
          Stoch.Signal_stats.make ~prob:0.5
            ~density:(10. ** (4. +. float_of_int i)))
    in
    Test.make ~name:"gate_exploration"
      (Staged.stage (fun () ->
           for config = 0 to Cell.Gate.config_count gate - 1 do
             ignore
               (Power.Model.gate_power ctx.Experiments.Common.power gate
                  ~config ~input_stats ~load:20e-15 ())
           done))
  in
  let optimize_rca8 =
    (* P4: whole-circuit greedy optimization. *)
    let circuit = Circuits.Suite.find "rca8" in
    let inputs =
      Power.Scenario.input_stats ~rng:(Stoch.Rng.create 1) Power.Scenario.A
        circuit
    in
    Test.make ~name:"optimize_rca8"
      (Staged.stage (fun () ->
           ignore
             (Reorder.Optimizer.optimize ctx.Experiments.Common.power
                ~delay:ctx.Experiments.Common.delay circuit ~inputs)))
  in
  let switchsim_c17 =
    (* P5: event throughput of the switch-level simulator. *)
    let circuit = Circuits.Suite.find "c17" in
    let sim = Switchsim.Sim.build ctx.Experiments.Common.proc circuit in
    let stats _ = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
    Test.make ~name:"switchsim_c17_1k_events"
      (Staged.stage (fun () ->
           ignore
             (Switchsim.Sim.run_stats sim ~rng:(Stoch.Rng.create 3) ~stats
                ~horizon:2e-3 ())))
  in
  let tests =
    Test.make_grouped ~name:"treorder"
      [ bdd_apply; hg_extraction; gate_exploration; optimize_rca8; switchsim_c17 ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Report.Table.create
      ~columns:
        [ ("benchmark", Report.Table.Left); ("time/run", Report.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let estimate =
        match Analyze.OLS.estimates r with
        | Some [ t ] -> Report.Table.cell_time (t *. 1e-9)
        | Some _ | None -> "n/a"
      in
      Report.Table.add_row table [ name; estimate ])
    (List.sort compare rows);
  Report.Table.print table

(* Parallel optimizer: sequential vs domain-pool wall-clock over the
   larger suite circuits, with the bit-identical-report check inline (a
   speedup that changes results would be a bug, not a win). Speedups and
   memo hit-rates land in BENCH_obs.json as perf_parallel.*
   distributions next to the optimizer.memo_hits/misses counters.
   TREORDER_JOBS overrides the domain count (the Makefile's JOBS= knob). *)
let d_par_speedup = Obs.distribution "perf_parallel.speedup"
let d_par_memo_hit_rate = Obs.distribution "perf_parallel.memo_hit_rate_pct"

let perf_parallel () =
  let jobs =
    match Sys.getenv_opt "TREORDER_JOBS" with
    | Some _ -> Par.Pool.default_jobs ()
    | None -> Stdlib.max 4 (Domain.recommended_domain_count ())
  in
  section (Printf.sprintf "perf_parallel / gate sweeps across %d domains" jobs);
  let reps = 3 in
  let c_hits = Obs.counter "optimizer.memo_hits" in
  let c_misses = Obs.counter "optimizer.memo_misses" in
  Par.Pool.with_pool ~jobs @@ fun pool ->
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("sequential", Report.Table.Right);
          (Printf.sprintf "%d domains" jobs, Report.Table.Right);
          ("speedup", Report.Table.Right);
          ("memo hits", Report.Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let circuit = Circuits.Suite.find name in
      (* Scenario B (latched inputs, uniform P/D): the memo keys on
         quantized input statistics, so its hit rate is
         workload-dependent — near-identical stats repeating down a
         carry chain hit ~90%, scenario A's per-input random draws
         almost never collide. Benchmark the regime the memo is for. *)
      let inputs =
        Power.Scenario.input_stats ~rng:(Stoch.Rng.create 7) Power.Scenario.B
          circuit
      in
      let optimize ?pool ?memo () =
        Reorder.Optimizer.optimize ctx.Experiments.Common.power
          ~delay:ctx.Experiments.Common.delay ?pool ?memo circuit ~inputs
      in
      let best f =
        let rec go k acc =
          if k = 0 then acc
          else
            let t0 = Unix.gettimeofday () in
            ignore (f ());
            go (k - 1) (Float.min acc (Unix.gettimeofday () -. t0))
        in
        go reps Float.infinity
      in
      (* One warm-up run so both sides measure sweeps against populated
         symbolic-model caches, not cache construction. *)
      let reference = optimize () in
      let t_seq = best (fun () -> optimize ()) in
      let t_par = best (fun () -> optimize ~pool ()) in
      let parallel = optimize ~pool () in
      if
        parallel.Reorder.Optimizer.power_after
        <> reference.Reorder.Optimizer.power_after
        || parallel.Reorder.Optimizer.configs
           <> reference.Reorder.Optimizer.configs
      then begin
        Printf.eprintf "perf_parallel: %s: parallel run is not bit-identical\n"
          name;
        exit 1
      end;
      let h0 = Obs.value c_hits and m0 = Obs.value c_misses in
      ignore (optimize ~pool ~memo:(Reorder.Memo.create ()) ());
      let hits = Obs.value c_hits - h0 and misses = Obs.value c_misses - m0 in
      let hit_rate =
        if hits + misses = 0 then 0.
        else 100. *. float_of_int hits /. float_of_int (hits + misses)
      in
      let speedup = if t_par > 0. then t_seq /. t_par else 0. in
      Obs.observe d_par_speedup speedup;
      Obs.observe d_par_memo_hit_rate hit_rate;
      Report.Table.add_row table
        [
          name;
          Report.Table.cell_time t_seq;
          Report.Table.cell_time t_par;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%d/%d (%.0f%%)" hits (hits + misses) hit_rate;
        ])
    [ "rca8"; "rca16"; "tree16"; "mux16" ];
  Report.Table.print table

(* Generator + oracle throughput of the property-based testing
   subsystem. The [proptest.cases_run] counter lands in BENCH_obs.json
   next to this target's [seconds], so cases-per-second is trackable
   across commits. *)
let proptest () =
  section "proptest / generator + oracle throughput";
  let count = 300 in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (Proptest.Runner.run ~seed:42 ~count ~size:12)
      (Proptest.Oracles.all ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter (fun r -> Format.printf "%a@." Proptest.Runner.pp_result r) results;
  let cases =
    List.fold_left (fun acc r -> acc + r.Proptest.Runner.cases_run) 0 results
  in
  Printf.printf "throughput: %d cases in %.2f s = %.0f cases/s\n" cases dt
    (float_of_int cases /. dt)

(* Probe overhead: the same deterministic simulation with and without
   an observer attached. The wall-clock ratio quantifies the cost of
   signal-level observability; the [switchsim.probe_events] counter
   (observer run only) lands in BENCH_obs.json, deterministic for the
   fixed seed, so the event volume itself is regression-gated. *)
let probe_overhead () =
  section "probe overhead / observer on vs off";
  let circuit = Circuits.Suite.find "c17" in
  let sim = Switchsim.Sim.build ctx.Experiments.Common.proc circuit in
  let stats _ = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
  let horizon = 2e-2 in
  let run ?observer () =
    let t0 = Unix.gettimeofday () in
    let r =
      Switchsim.Sim.run_stats sim ~rng:(Stoch.Rng.create 3) ~stats ~horizon
        ?observer ()
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let bare, t_off = run () in
  let seen = ref 0 in
  let observer =
    {
      Switchsim.Sim.on_net =
        (fun ~time:_ ~net:_ ~before:_ ~after:_ ~in_window:_ -> incr seen);
      on_internal =
        Some (fun ~time:_ ~gate:_ ~node:_ ~before:_ ~after:_ ~in_window:_ ->
            incr seen);
      on_energy = Some (fun ~time:_ ~gate:_ ~node:_ ~energy:_ -> incr seen);
    }
  in
  let observed, t_on = run ~observer () in
  assert (observed.Switchsim.Sim.energy = bare.Switchsim.Sim.energy);
  Printf.printf "events:   %d input transitions, %d probe callbacks\n"
    bare.Switchsim.Sim.events !seen;
  Printf.printf "observer off: %.3f s\nobserver on:  %.3f s\n" t_off t_on;
  if t_off > 0. then
    Printf.printf "overhead: %+.1f%%\n" (100. *. ((t_on /. t_off) -. 1.))

(* Monte-Carlo throughput: the bit-parallel engine vs the event-driven
   simulator at an equal sample budget — the simulator gets one
   trajectory of the same total signal-time the engine samples
   (horizon = samples x dt). Speedup and gate-eval throughput land in
   BENCH_obs.json as perf_mc.* distributions; the mc.* counters are
   deterministic for the fixed seed and regression-gated. *)
let d_mc_speedup = Obs.distribution "perf_mc.speedup"
let d_mc_gate_evals = Obs.distribution "perf_mc.gate_evals_per_s"

let perf_mc () =
  section "perf_mc / bit-parallel Monte-Carlo vs switch-level simulation";
  let reps = 3 in
  let samples = 65536 in
  let c_words = Obs.counter "mc.words_evaluated" in
  let best ?(reps = reps) f =
    let rec go k acc =
      if k = 0 then acc
      else
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        go (k - 1) (Float.min acc (Unix.gettimeofday () -. t0))
    in
    go reps Float.infinity
  in
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("mc", Report.Table.Right);
          ("gate-evals/s", Report.Table.Right);
          ("switchsim", Report.Table.Right);
          ("speedup", Report.Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let circuit = Circuits.Suite.find name in
      (* Scenario B (uniform latched-input statistics): every circuit
         samples at the same dt, so throughput scales with structure
         rather than with one unlucky input's extreme probability. *)
      let inputs =
        Power.Scenario.input_stats ~rng:(Stoch.Rng.create 42) Power.Scenario.B
          circuit
      in
      let estimate () =
        Mc.estimate ctx.Experiments.Common.power ~samples ~seed:42 ~inputs
          circuit
      in
      let r = estimate () in
      let w0 = Obs.value c_words in
      let t_mc = best estimate in
      let words = (Obs.value c_words - w0) / reps in
      (* 64 independent lanes per word op *)
      let gate_evals_per_s = float_of_int (words * 64) /. t_mc in
      (* Equal budget: one simulator trajectory covering the same total
         signal-time the engine sampled across all its trajectories. *)
      let horizon = float_of_int r.Mc.samples *. r.Mc.dt in
      let sim = Switchsim.Sim.build ctx.Experiments.Common.proc circuit in
      (* One timed simulator run: at these speedup ratios its noise is
         irrelevant, and three reps would dominate the bench's clock. *)
      let t_sim =
        best ~reps:1 (fun () ->
            Switchsim.Sim.run_stats sim
              ~rng:(Stoch.Rng.create 43)
              ~stats:inputs ~horizon ())
      in
      let speedup = if t_mc > 0. then t_sim /. t_mc else 0. in
      Obs.observe d_mc_speedup speedup;
      Obs.observe d_mc_gate_evals gate_evals_per_s;
      Report.Table.add_row table
        [
          name;
          Report.Table.cell_time t_mc;
          Printf.sprintf "%.3g" gate_evals_per_s;
          Report.Table.cell_time t_sim;
          Printf.sprintf "%.1fx" speedup;
        ];
      if speedup < 10. then
        Printf.eprintf
          "perf_mc: %s: mc is only %.1fx faster than switchsim at an equal \
           sample budget (expected >= 10x on an idle machine)\n"
          name speedup)
    [ "c17"; "tree16"; "rca8"; "rca16" ];
  Report.Table.print table

(* Telemetry sampler overhead: the same optimizer run with the sampler
   off and with it ticking at a 1 ms cadence — 250x the production
   default, so the measured delta is a hard upper bound. The optimizer
   counters are identical either way (the sampler is read-only) and
   those are what the fixture gates; the sampler's own obs.sample_ns
   cost counter is wall-clock in disguise and excluded from the gate
   like every _ns counter. *)
let d_tel_overhead = Obs.distribution "telemetry_overhead.percent"

let telemetry_overhead () =
  section "telemetry_overhead / sampler on vs off";
  let circuit = Circuits.Suite.find "rca16" in
  let inputs =
    Power.Scenario.input_stats ~rng:(Stoch.Rng.create 42) Power.Scenario.A
      circuit
  in
  let run () =
    let t0 = Unix.gettimeofday () in
    let r =
      Reorder.Optimizer.optimize ctx.Experiments.Common.power
        ~delay:ctx.Experiments.Common.delay circuit ~inputs
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let off, t_off = run () in
  Telemetry.start ~interval:0.001 ();
  let on_, t_on = run () in
  Telemetry.stop ();
  (* read-only observer: the optimized result must be bit-identical *)
  assert (
    off.Reorder.Optimizer.power_after = on_.Reorder.Optimizer.power_after
    && off.Reorder.Optimizer.configs = on_.Reorder.Optimizer.configs);
  let n_samples = List.length (Telemetry.series ()) in
  let cost_ns = Obs.value (Obs.counter "obs.sample_ns") in
  Printf.printf
    "sampler off: %.3f s\nsampler on:  %.3f s (%d samples, %.2f ms \
     self-measured)\n"
    t_off t_on n_samples
    (float_of_int cost_ns /. 1e6);
  if t_off > 0. then begin
    let pct = 100. *. ((t_on /. t_off) -. 1.) in
    Obs.observe d_tel_overhead pct;
    Printf.printf "overhead: %+.1f%%\n" pct
  end

(* --- driver --- *)

(* --- perf_eco: interactive-latency incremental re-sweeps ------------- *)

(* A ~10k-gate random circuit is cold-optimized once into an
   Incremental session, then scripted single-gate configuration edits
   replay through the dirty-cone engine. Interactive-latency targets:
   median apply under 10 ms and at least 20x the cold full run, with
   the settled state bit-identical to a cold optimization of the final
   circuit (checked here, and by the incremental-equivalence oracle on
   random circuits). eco.median_ms / eco.speedup land in
   BENCH_obs.json next to the incremental.* counters. *)
let d_eco_median_ms = Obs.distribution "eco.median_ms"
let d_eco_speedup = Obs.distribution "eco.speedup"

let perf_eco () =
  section "perf_eco / single-gate ECO edits on a 10k-gate circuit";
  let module C = Netlist.Circuit in
  let module O = Reorder.Optimizer in
  let circuit =
    Circuits.Generators.random_logic ~seed:11 ~inputs:64 ~gates:10_000
  in
  let inputs =
    Power.Scenario.input_stats ~rng:(Stoch.Rng.create 5) Power.Scenario.A
      circuit
  in
  (* The cold reference: a full session-free optimization. *)
  let t0 = Unix.gettimeofday () in
  let cold_rep =
    O.optimize ctx.Experiments.Common.power ~delay:ctx.Experiments.Common.delay
      circuit ~inputs
  in
  let cold_s = Unix.gettimeofday () -. t0 in
  let sess =
    Incremental.create ctx.Experiments.Common.power
      ~delay:ctx.Experiments.Common.delay ~ledger_candidates:false circuit
      ~inputs
  in
  let settled = Incremental.circuit sess in
  if (Incremental.report sess).O.power_after <> cold_rep.O.power_after then begin
    Printf.eprintf "perf_eco: session cold run differs from plain cold run\n";
    exit 1
  end;
  (* Scripted single-gate edits: configuration flips spread over the
     whole circuit, each re-sweeping only the edited gate's cone. *)
  let rng = Stoch.Rng.create 23 in
  let batches =
    List.init 50 (fun _ ->
        let g = Stoch.Rng.int rng (C.gate_count settled) in
        let gate = C.gate_at settled g in
        let k = Cell.Gate.config_count gate.C.cell in
        [ Incremental.Replace_gate (g, { gate with C.config = Stoch.Rng.int rng k }) ])
  in
  let timings = Incremental.replay sess batches in
  let p50, p90, p99 = Incremental.latency_percentiles timings in
  let resweeps =
    List.fold_left (fun acc t -> acc + t.Incremental.dirty_gates) 0 timings
  in
  (* Settle and verify the fixed point against a cold full run. *)
  ignore (Incremental.apply sess []);
  let final = Incremental.report sess in
  let verify =
    O.optimize ctx.Experiments.Common.power ~delay:ctx.Experiments.Common.delay
      (Incremental.circuit sess)
      ~inputs:(Incremental.input_stats sess)
  in
  if
    verify.O.configs <> final.O.configs
    || verify.O.power_after <> final.O.power_after
  then begin
    Printf.eprintf "perf_eco: settled state is not a cold-run fixed point\n";
    exit 1
  end;
  let speedup = if p50 > 0. then cold_s /. p50 else 0. in
  Obs.observe d_eco_median_ms (p50 *. 1e3);
  Obs.observe d_eco_speedup speedup;
  Printf.printf "cold full run:    %.1f ms (%d gates)\n" (cold_s *. 1e3)
    (C.gate_count circuit);
  Printf.printf "%d single-gate edits: %d gates re-swept\n"
    (List.length timings) resweeps;
  Printf.printf "apply latency:    p50 %.3f ms   p90 %.3f ms   p99 %.3f ms\n"
    (p50 *. 1e3) (p90 *. 1e3) (p99 *. 1e3);
  Printf.printf "speedup:          %.0fx (target: >= 20x, median < 10 ms)\n"
    speedup;
  if p50 *. 1e3 >= 10. || speedup < 20. then begin
    Printf.eprintf
      "perf_eco: interactive-latency target missed (p50 %.3f ms, %.1fx)\n"
      (p50 *. 1e3) speedup;
    exit 1
  end

let targets =
  [
    ("table1", table1);
    ("table2", table2);
    ("figure5", figure5);
    ("table3_a", table3 Power.Scenario.A);
    ("table3_b", table3 Power.Scenario.B);
    ("adder_profile", adder_profile);
    ("ablation_delay", ablation_delay);
    ("ablation_inputreorder", ablation_inputreorder);
    ("model_accuracy", model_accuracy);
    ("glitch", glitch);
    ("sensitivity", sensitivity);
    ("exactness", exactness);
    ("sequential", sequential);
    ("gate_accuracy", gate_accuracy);
    ("proptest", proptest);
    ("probe_overhead", probe_overhead);
    ("perf", perf);
    ("perf_parallel", perf_parallel);
    ("perf_mc", perf_mc);
    ("perf_eco", perf_eco);
    ("telemetry_overhead", telemetry_overhead);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [options] [target ...]\n\
     options:\n\
    \  --out FILE        write metrics to FILE (default BENCH_obs.json)\n\
    \  --history FILE    append one NDJSON record per target to FILE\n\
    \                    (default BENCH_history.ndjson)\n\
    \  --archive DIR     also write one run record per target under DIR\n\
    \  --baseline FILE   compare this run against a stored metrics FILE\n\
    \  --check           exit 1 if the comparison finds regressions\n\
    \  --no-time         gate counters only, ignore wall-clock times\n\
    \  --tol-counters R  relative counter tolerance (default %g)\n\
    \  --tol-time R      relative time tolerance (default %g)\n\
     targets: %s\n"
    Regress.default_tolerance.Regress.counter_rtol
    Regress.default_tolerance.Regress.time_rtol
    (String.concat " " (List.map fst targets));
  exit 2

let () =
  let out = ref "BENCH_obs.json" in
  let history = ref "BENCH_history.ndjson" in
  let baseline = ref None in
  let check = ref false in
  let tol = ref Regress.default_tolerance in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--history" :: path :: rest ->
        history := path;
        parse rest
    | "--archive" :: dir :: rest ->
        archive_dir := Some dir;
        parse rest
    | "--baseline" :: path :: rest ->
        baseline := Some path;
        parse rest
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--no-time" :: rest ->
        tol := { !tol with Regress.check_time = false };
        parse rest
    | "--tol-counters" :: r :: rest ->
        tol := { !tol with Regress.counter_rtol = float_of_string r };
        parse rest
    | "--tol-time" :: r :: rest ->
        tol := { !tol with Regress.time_rtol = float_of_string r };
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "unknown option %S\n" arg;
        usage ()
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  (match Array.to_list Sys.argv with _ :: args -> parse args | [] -> ());
  let requested =
    match List.rev !names with [] -> List.map fst targets | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> timed name (fun () -> f ())
      | None ->
          Printf.eprintf "unknown target %S; available: %s\n" name
            (String.concat " " (List.map fst targets));
          exit 1)
    requested;
  write_metrics !out;
  append_history !history;
  match !baseline with
  | None -> ()
  | Some path -> (
      match (Regress.load path, Regress.load !out) with
      | Error e, _ | _, Error e ->
          Printf.eprintf "regression gate: %s\n" e;
          exit 1
      | Ok base, Ok cur ->
          let violations = Regress.compare !tol ~baseline:base ~current:cur in
          let compared = Regress.compared_targets ~baseline:base ~current:cur in
          Printf.printf "regression gate: %d target(s) compared against %s\n"
            (List.length compared) path;
          if violations = [] then
            Printf.printf "regression gate: OK, no regressions\n"
          else begin
            print_string (Regress.render violations);
            Printf.printf "regression gate: %d violation(s)\n"
              (List.length violations);
            if !check then exit 1
          end)
