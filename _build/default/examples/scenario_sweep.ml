(* Reproduce the paper's experimental flow end to end on a few
   benchmarks: for both scenarios, derive best/worst reorderings, then
   confirm the model's predicted saving with switch-level simulation and
   report the delay cost — a miniature Table 3, plus the E6 and E7
   ablations on the same circuits.

   Run with: dune exec examples/scenario_sweep.exe *)

let circuits () =
  List.map
    (fun n -> (n, Circuits.Suite.find n))
    [ "c17"; "rca8"; "mux16"; "alu2"; "dec4"; "cmpgt8" ]

let () =
  let ctx = Experiments.Common.create () in
  List.iter
    (fun scenario ->
      let t = Experiments.Table3.run ctx ~circuits:(circuits ()) scenario in
      print_string (Experiments.Table3.render t);
      print_newline ())
    [ Power.Scenario.A; Power.Scenario.B ];

  print_string
    (Experiments.Ablations.render_delay_bounded
       (Experiments.Ablations.delay_bounded ctx ~circuits:(circuits ())
          Power.Scenario.A));
  print_newline ();
  print_string
    (Experiments.Ablations.render_input_reordering
       (Experiments.Ablations.input_reordering ctx ~circuits:(circuits ())
          Power.Scenario.A))
