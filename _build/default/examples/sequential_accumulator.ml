(* Scenario B, taken literally: the paper frames the circuit as "the
   whole digital system, with latches at its inputs". This example
   closes the register loop on an 8-bit accumulator (acc <- acc + a):
   derive the register statistics by fixpoint, validate them against a
   cycle-accurate simulation, reorder the adder core, and measure the
   saving over thousands of clock cycles.

   Run with: dune exec examples/sequential_accumulator.exe *)

let cycle = Power.Scenario.cycle_time

let () =
  let machine = Sequential.Machines.accumulator 8 in
  let power = Power.Model.table Cell.Process.default in
  let delay = Delay.Elmore.table Cell.Process.default in
  let circuit = Sequential.Machine.circuit machine in
  Format.printf "core: %a@." Netlist.Circuit.pp_summary circuit;

  (* Operand bus statistics (scenario-B style latched inputs). *)
  let inputs _ = Stoch.Signal_stats.make ~prob:0.5 ~density:(0.5 /. cycle) in

  (* 1. Steady-state register statistics by fixpoint. *)
  let fp = Sequential.Machine.steady_state power machine ~inputs () in
  Printf.printf "fixpoint: %d iterations, converged = %b\n"
    fp.Sequential.Machine.iterations fp.Sequential.Machine.converged;

  (* 2. Validate against a cycle-accurate run. *)
  let trace =
    Sequential.Machine.simulate Cell.Process.default machine
      ~rng:(Stoch.Rng.create 3) ~cycles:4096 ~inputs ()
  in
  print_endline "register output density (per cycle): fixpoint vs simulated";
  List.iter
    (fun (q, measured) ->
      let predicted =
        Power.Analysis.stats fp.Sequential.Machine.analysis q
      in
      Printf.printf "  %-4s %.3f vs %.3f\n"
        (Netlist.Circuit.net_name circuit q)
        (Stoch.Signal_stats.density predicted *. cycle)
        (Stoch.Signal_stats.density measured *. cycle))
    trace.Sequential.Machine.register_stats;

  (* 3. Reorder the adder core under the fixpoint statistics. *)
  let report, _ = Sequential.Machine.optimize power ~delay machine ~inputs in
  Format.printf "%a@." Reorder.Optimizer.pp_report report;

  (* 4. Cycle-accurate power before and after. *)
  let rebuilt =
    Sequential.Machine.create report.Reorder.Optimizer.circuit
      ~registers:
        (List.map
           (fun (d, q) ->
             ( Netlist.Circuit.net_name circuit d,
               Netlist.Circuit.net_name circuit q ))
           (Sequential.Machine.registers machine))
  in
  let measure m seed =
    (Sequential.Machine.simulate Cell.Process.default m
       ~rng:(Stoch.Rng.create seed) ~cycles:4096 ~inputs ())
      .Sequential.Machine.power
  in
  let before = measure machine 9 and after = measure rebuilt 9 in
  Printf.printf "cycle-accurate power: %s -> %s (%.1f%% saved)\n"
    (Report.Table.cell_power before)
    (Report.Table.cell_power after)
    (100. *. (before -. after) /. before)
