(* A designer's cheat sheet: for each multi-configuration library gate,
   which transistor ordering wins as one input gets busier than the
   rest? This generalizes the paper's Table 1 to the whole library and
   shows where the optimum flips.

   Run with: dune exec examples/library_characterization.exe *)

let ratios = [ 0.01; 0.1; 1.0; 10.0; 100.0 ]

let () =
  let table = Power.Model.table Cell.Process.default in
  let interesting =
    List.filter (fun g -> Cell.Gate.config_count g > 1) Cell.Gate.library
  in
  Printf.printf
    "Best configuration index per gate as D(x0)/D(others) sweeps\n\
     (all probabilities 0.5; base density 1e5 trans/s; load 20 fF)\n\n";
  Printf.printf "%-8s" "gate";
  List.iter (fun r -> Printf.printf "  %8s" (Printf.sprintf "x%g" r)) ratios;
  Printf.printf "  flips\n";
  List.iter
    (fun gate ->
      let arity = Cell.Gate.arity gate in
      let best ratio =
        let input_stats =
          Array.init arity (fun i ->
              let d = if i = 0 then 1e5 *. ratio else 1e5 in
              Stoch.Signal_stats.make ~prob:0.5 ~density:d)
        in
        let scored =
          List.init (Cell.Gate.config_count gate) (fun config ->
              ( (Power.Model.gate_power table gate ~config ~input_stats
                   ~load:20e-15 ())
                  .Power.Model.total,
                config ))
        in
        snd (List.fold_left min (List.hd scored) scored)
      in
      let winners = List.map best ratios in
      let flips = List.sort_uniq compare winners in
      Printf.printf "%-8s" (Cell.Gate.name gate);
      List.iter (fun w -> Printf.printf "  %8d" w) winners;
      Printf.printf "  %s\n"
        (if List.length flips > 1 then "yes" else "no");
      ())
    interesting;
  Printf.printf
    "\nA \"yes\" in the last column is a gate whose best layout depends on\n\
     which pin carries the busy signal — exactly the gates the paper says\n\
     libraries should stock in multiple instances (conclusion (a)).\n"
