examples/library_characterization.ml: Array Cell List Power Printf Stoch
