examples/map_equations.mli:
