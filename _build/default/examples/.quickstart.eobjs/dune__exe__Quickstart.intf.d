examples/quickstart.mli:
