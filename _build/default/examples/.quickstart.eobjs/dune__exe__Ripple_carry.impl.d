examples/ripple_carry.ml: Array Cell Circuits Experiments Hashtbl Netlist Option Power Printf Reorder Report Stoch
