examples/scenario_sweep.ml: Circuits Experiments List Power
