examples/ripple_carry.mli:
