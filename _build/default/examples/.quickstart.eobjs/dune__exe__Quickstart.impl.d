examples/quickstart.ml: Cell Delay Format Netlist Power Printf Reorder Report Stoch Switchsim
