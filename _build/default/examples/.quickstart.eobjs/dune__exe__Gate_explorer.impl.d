examples/gate_explorer.ml: Array Bdd Cell Float Format List Power Printf Report Sp Stoch Sys
