examples/sequential_accumulator.mli:
