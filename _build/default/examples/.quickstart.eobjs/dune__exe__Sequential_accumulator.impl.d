examples/sequential_accumulator.ml: Cell Delay Format List Netlist Power Printf Reorder Report Sequential Stoch
