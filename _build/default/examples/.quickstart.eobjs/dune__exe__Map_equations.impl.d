examples/map_equations.ml: Cell Delay Format List Logic Netlist Power Printf Reorder Stoch
