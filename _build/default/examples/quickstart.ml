(* Quickstart: build a small circuit, give its inputs stochastic
   statistics, estimate its power, reorder its transistors, and check
   the saving with the switch-level simulator.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe a circuit over the gate library. This one computes
     y = !((a.b + c).d) using an AOI gate and a NAND. *)
  let b = Netlist.Builder.create ~name:"quickstart" in
  let a = Netlist.Builder.input b "a" in
  let bb = Netlist.Builder.input b "b" in
  let c = Netlist.Builder.input b "c" in
  let d = Netlist.Builder.input b "d" in
  let u = Netlist.Builder.gate b ~name:"u" "aoi21" [ a; bb; c ] in
  let y = Netlist.Builder.nand2 b ~name:"y" (Netlist.Builder.inv b u) d in
  Netlist.Builder.output b y;
  let circuit = Netlist.Builder.finish b in
  Format.printf "%a@." Netlist.Circuit.pp_summary circuit;

  (* 2. Input statistics: 'd' is a busy control signal, the others are
     slow data. Probabilities and densities follow the paper's 0-1
     stationary Markov signal model. *)
  let stats net =
    match Netlist.Circuit.net_name circuit net with
    | "d" -> Stoch.Signal_stats.make ~prob:0.5 ~density:8e5
    | _ -> Stoch.Signal_stats.make ~prob:0.5 ~density:2e4
  in

  (* 3. Estimate power with the extended gate model (internal nodes
     included). *)
  let power_table = Power.Model.table Cell.Process.default in
  let delay_table = Delay.Elmore.table Cell.Process.default in
  let analysis = Power.Analysis.run power_table circuit ~inputs:stats in
  let before = Power.Estimate.total power_table circuit analysis in
  Printf.printf "model power before: %s\n" (Report.Table.cell_power before);

  (* 4. Optimize: one greedy pass, exhaustive per-gate exploration. *)
  let r =
    Reorder.Optimizer.optimize power_table ~delay:delay_table circuit
      ~inputs:stats
  in
  Format.printf "%a@." Reorder.Optimizer.pp_report r;

  (* 5. Validate with the switch-level simulator on a common stimulus. *)
  let simulate circuit seed =
    let sim = Switchsim.Sim.build Cell.Process.default circuit in
    (Switchsim.Sim.run_stats sim ~rng:(Stoch.Rng.create seed) ~stats
       ~horizon:0.02 ())
      .Switchsim.Sim.power
  in
  let p0 = simulate circuit 7 in
  let p1 = simulate r.Reorder.Optimizer.circuit 7 in
  Printf.printf "switch-level power: %s -> %s (%.1f%% saved)\n"
    (Report.Table.cell_power p0) (Report.Table.cell_power p1)
    (100. *. (p0 -. p1) /. p0)
