(* Explore one library gate the way the optimizer does: enumerate every
   transistor reordering (via the paper's pivot algorithm), show each
   configuration's H/G functions for the internal nodes, and rank the
   configurations by model power under a user-chosen activity pattern.

   Run with: dune exec examples/gate_explorer.exe -- [gate] [D0 D1 ...]
   e.g.      dune exec examples/gate_explorer.exe -- aoi22 1e6 1e4 1e5 1e3 *)

let () =
  let gate_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "oai21" in
  let gate =
    try Cell.Gate.of_name gate_name
    with Not_found ->
      Printf.eprintf "unknown gate %S; see `treorder gates`\n" gate_name;
      exit 1
  in
  let arity = Cell.Gate.arity gate in
  let densities =
    Array.init arity (fun i ->
        if Array.length Sys.argv > 2 + i then float_of_string Sys.argv.(2 + i)
        else 10. ** (4. +. float_of_int i))
  in
  let input_stats =
    Array.map (fun d -> Stoch.Signal_stats.make ~prob:0.5 ~density:d) densities
  in
  Printf.printf "gate %s: %d inputs, %d transistors, %d configurations\n"
    gate_name arity
    (Cell.Gate.transistor_count gate)
    (Cell.Gate.config_count gate);
  Array.iteri (fun i d -> Printf.printf "  D(x%d) = %.3g trans/s\n" i d) densities;
  print_newline ();

  (* Pivot exploration trace (the paper's Fig. 4/5). *)
  let start = Cell.Config.reference gate in
  let steps = ref 0 in
  print_endline "pivot exploration:";
  Printf.printf "  start: %s\n" (Cell.Config.to_string start);
  let configs =
    Cell.Config.pivot_all
      ~trace:(fun node config ->
        incr steps;
        Printf.printf "  pivot n%d -> %s\n" node (Cell.Config.to_string config))
      start
  in
  print_newline ();

  (* Internal-node H/G of the reference configuration. *)
  let m = Bdd.manager () in
  let network = Cell.Config.network start in
  let names i = "x" ^ string_of_int i in
  print_endline "reference configuration node functions:";
  List.iter
    (fun node ->
      let h = Sp.Network.h_function m network node in
      let g = Sp.Network.g_function m network node in
      Format.printf "  %a: H = %s | G = %s@." Sp.Network.pp_node node
        (Bdd.to_string ~names h) (Bdd.to_string ~names g))
    (Sp.Network.power_nodes network);
  print_newline ();

  (* Rank configurations by power. *)
  let table = Power.Model.table Cell.Process.default in
  let scored =
    List.mapi
      (fun i config ->
        let all = Cell.Config.all gate in
        let index = Cell.Config.index_in all config in
        ignore i;
        let p =
          (Power.Model.gate_power table gate ~config:index ~input_stats
             ~load:20e-15 ())
            .Power.Model.total
        in
        (p, config))
      configs
  in
  let ranked = List.sort (fun (a, _) (b, _) -> Float.compare a b) scored in
  print_endline "configurations ranked by model power:";
  List.iteri
    (fun rank (p, config) ->
      Printf.printf "  %2d. %-10s %s\n" (rank + 1)
        (Report.Table.cell_power p)
        (Cell.Config.to_string config))
    ranked;
  match (ranked, List.rev ranked) with
  | (best, _) :: _, (worst, _) :: _ ->
      Printf.printf "\nbest-vs-worst reduction: %.1f%%\n"
        (100. *. (worst -. best) /. worst)
  | _ -> ()
