(* The paper's second motivation (§1.1): in a ripple-carry adder all
   inputs share equilibrium probability 0.5, yet the carry chain gets
   busier and busier toward the most-significant bits — probabilities
   alone cannot see this, transition densities can. This example prints
   the carry activity profile and then shows how much of the adder's
   power the reordering recovers, scenario-B style.

   Run with: dune exec examples/ripple_carry.exe *)

let bits = 12

let () =
  let ctx = Experiments.Common.create () in

  (* Carry-chain activity: analytic vs simulated. *)
  let profile = Experiments.Adder_profile.run ctx ~bits () in
  print_string (Experiments.Adder_profile.render profile);
  print_newline ();

  (* Optimize the adder under latched inputs (scenario B). *)
  let circuit = Circuits.Generators.ripple_carry_adder bits in
  let inputs =
    Power.Scenario.input_stats ~rng:(Stoch.Rng.create 1) Power.Scenario.B
      circuit
  in
  let best, worst =
    Reorder.Optimizer.best_and_worst ctx.Experiments.Common.power
      ~delay:ctx.Experiments.Common.delay circuit ~inputs
  in
  Printf.printf "model power: best %s, worst %s (best-vs-worst: %.1f%%)\n"
    (Report.Table.cell_power best.Reorder.Optimizer.power_after)
    (Report.Table.cell_power worst.Reorder.Optimizer.power_after)
    (Reorder.Optimizer.reduction_percent
       ~best:best.Reorder.Optimizer.power_after
       ~worst:worst.Reorder.Optimizer.power_after);

  (* Where did the optimizer spend its choices? Count changed gates per
     cell type. *)
  let changed = Hashtbl.create 8 in
  Array.iteri
    (fun g config ->
      let gate = Netlist.Circuit.gate_at circuit g in
      if config <> gate.Netlist.Circuit.config then begin
        let name = Cell.Gate.name gate.Netlist.Circuit.cell in
        Hashtbl.replace changed name
          (1 + Option.value ~default:0 (Hashtbl.find_opt changed name))
      end)
    best.Reorder.Optimizer.configs;
  print_endline "gates reordered by cell type:";
  Hashtbl.iter (Printf.printf "  %-8s %d\n") changed
