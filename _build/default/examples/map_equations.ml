(* From Boolean equations to an optimized transistor-level netlist:
   parse an equation file, technology-map it onto the Table-2 library,
   inspect the AOI/OAI matches, reorder for low power under asymmetric
   input activities, and print the resulting netlist.

   Run with: dune exec examples/map_equations.exe *)

let equations =
  "# one stage of a carry-lookahead adder\n\
   input a b cin\n\
   p    = a ^ b\n\
   g    = a & b\n\
   sum  = p ^ cin\n\
   cout = ~(~g & ~(p & cin))    # g | (p & cin), inverted twice\n\
   # an AOI-friendly decode\n\
   sel  = ~((a & b) | cin)\n\
   output sum cout sel\n"

let () =
  let eqn = Logic.Eqn.of_string ~name:"cla_stage" equations in
  Printf.printf "equations:\n%s\n" (Logic.Eqn.to_string eqn);

  let circuit = Logic.Mapper.map eqn in
  Format.printf "mapped: %a@." Netlist.Circuit.pp_summary circuit;
  List.iter
    (fun (cell, n) -> Printf.printf "  %-8s x%d\n" cell n)
    (Netlist.Circuit.stats circuit);
  print_newline ();

  (* cin is the late, busy signal (it would come from the previous
     stage); a and b are quiet operand bits. *)
  let stats net =
    match Netlist.Circuit.net_name circuit net with
    | "cin" -> Stoch.Signal_stats.make ~prob:0.5 ~density:9e5
    | _ -> Stoch.Signal_stats.make ~prob:0.5 ~density:1e5
  in
  let power = Power.Model.table Cell.Process.default in
  let delay = Delay.Elmore.table Cell.Process.default in
  let r = Reorder.Optimizer.optimize power ~delay circuit ~inputs:stats in
  Format.printf "%a@." Reorder.Optimizer.pp_report r;
  Printf.printf "\noptimized netlist:\n%s"
    (Netlist.Io.to_string r.Reorder.Optimizer.circuit)
