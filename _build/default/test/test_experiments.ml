(* Integration tests for the experiment drivers: each paper artifact is
   regenerated on small inputs and its structural claims are asserted
   (the full-scale numbers live in bench_output.txt / EXPERIMENTS.md). *)

let ctx = Experiments.Common.create ()

let small_circuits names =
  List.map (fun n -> (n, Circuits.Suite.find n)) names

(* --- E1 --- *)

let test_table1_structure () =
  let t = Experiments.Table1.run ctx in
  Alcotest.(check int) "four configurations" 4
    (List.length t.Experiments.Table1.rows);
  Alcotest.(check bool) "optimum flips" true t.Experiments.Table1.optimum_flips;
  Alcotest.(check bool) "case-1 reduction positive" true
    (t.Experiments.Table1.case1_reduction_percent > 0.);
  Alcotest.(check bool) "case-2 reduction positive" true
    (t.Experiments.Table1.case2_reduction_percent > 0.);
  (* Relative powers are normalized to the case-1 maximum. *)
  let max1 =
    Report.Stats.maximum
      (List.map (fun r -> r.Experiments.Table1.case1_relative)
         t.Experiments.Table1.rows)
  in
  Alcotest.(check (float 1e-9)) "case-1 max is 1" 1. max1

let test_table1_render_mentions_paper () =
  let s = Experiments.Table1.render (Experiments.Table1.run ctx) in
  Alcotest.(check bool) "labels present" true
    (String.length s > 0
    && String.split_on_char '\n' s <> []
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "Table 1" && contains "reduction")

(* --- E2 --- *)

let test_table2_counts_consistent () =
  let rows = Experiments.Table2.run () in
  Alcotest.(check int) "whole library" (List.length Cell.Gate.library)
    (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Experiments.Table2.gate ^ " pivot count agrees")
        r.Experiments.Table2.configurations
        r.Experiments.Table2.pivot_configurations)
    rows

(* --- E3 --- *)

let test_figure5_steps () =
  let steps = Experiments.Figure5.run () in
  Alcotest.(check int) "four configurations" 4 (List.length steps);
  match steps with
  | first :: rest ->
      Alcotest.(check bool) "starts unpivoted" true
        (first.Experiments.Figure5.pivoted_node = None);
      List.iter
        (fun s ->
          Alcotest.(check bool) "later steps pivot" true
            (s.Experiments.Figure5.pivoted_node <> None))
        rest
  | [] -> Alcotest.fail "empty trace"

(* --- E4 --- *)

let test_table3_row_fields () =
  let row =
    Experiments.Table3.row ctx ~sim_horizon:1e-3 Power.Scenario.A
      ("rca4", Circuits.Suite.find "rca4")
  in
  Alcotest.(check string) "name" "rca4" row.Experiments.Table3.name;
  Alcotest.(check int) "gates" 40 row.Experiments.Table3.gates;
  Alcotest.(check bool) "model reduction positive" true
    (row.Experiments.Table3.model_percent > 0.);
  Alcotest.(check bool) "sim reduction sane" true
    (row.Experiments.Table3.sim_percent > -5.
    && row.Experiments.Table3.sim_percent < 50.)

let test_table3_averages () =
  let t =
    Experiments.Table3.run ctx ~sim_horizon:1e-3
      ~circuits:(small_circuits [ "c17"; "mux4"; "par4" ])
      Power.Scenario.B
  in
  let mean_of field =
    Report.Stats.mean (List.map field t.Experiments.Table3.rows)
  in
  Alcotest.(check (float 1e-9)) "avg model"
    (mean_of (fun r -> r.Experiments.Table3.model_percent))
    t.Experiments.Table3.avg_model;
  Alcotest.(check (float 1e-9)) "avg sim"
    (mean_of (fun r -> r.Experiments.Table3.sim_percent))
    t.Experiments.Table3.avg_sim

let test_table3_scenarios_differ () =
  let circuits () = small_circuits [ "rca4"; "mux8" ] in
  let run s = Experiments.Table3.run ctx ~sim_horizon:1e-3 ~circuits:(circuits ()) s in
  let a = run Power.Scenario.A and b = run Power.Scenario.B in
  Alcotest.(check bool) "B weaker than A" true
    (b.Experiments.Table3.avg_model < a.Experiments.Table3.avg_model)

(* --- E5 --- *)

let test_adder_profile_shape () =
  let p = Experiments.Adder_profile.run ctx ~bits:8 ~sim_horizon:1e-3 () in
  let points = p.Experiments.Adder_profile.points in
  Alcotest.(check int) "one point per carry" 8 (List.length points);
  List.iter
    (fun pt ->
      Alcotest.(check (float 1e-9)) "carry probability exactly 0.5" 0.5
        pt.Experiments.Adder_profile.carry_probability;
      Alcotest.(check bool) "carry busier than operands" true
        (pt.Experiments.Adder_profile.carry_density_model
        > pt.Experiments.Adder_profile.operand_density))
    points;
  (* Densities grow along the chain. *)
  match (points, List.rev points) with
  | first :: _, last :: _ ->
      Alcotest.(check bool) "monotone growth" true
        (last.Experiments.Adder_profile.carry_density_model
        > first.Experiments.Adder_profile.carry_density_model)
  | _ -> Alcotest.fail "no points"

(* --- E6/E7/E9 --- *)

let test_delay_bounded_rows () =
  let rows =
    Experiments.Ablations.delay_bounded ctx
      ~circuits:(small_circuits [ "c17"; "mux4" ])
      Power.Scenario.A
  in
  List.iter
    (fun (r : Experiments.Ablations.delay_bounded_row) ->
      Alcotest.(check bool)
        (r.Experiments.Ablations.name ^ " bounded <= free")
        true
        (r.Experiments.Ablations.bounded_percent
        <= r.Experiments.Ablations.free_percent +. 1e-9);
      Alcotest.(check bool)
        (r.Experiments.Ablations.name ^ " bounded never slower")
        true
        (r.Experiments.Ablations.bounded_delay_percent <= 1e-9))
    rows

let test_input_reordering_rows () =
  let rows =
    Experiments.Ablations.input_reordering ctx
      ~circuits:(small_circuits [ "c17"; "alu1" ])
      Power.Scenario.A
  in
  List.iter
    (fun (r : Experiments.Ablations.input_reorder_row) ->
      Alcotest.(check bool)
        (r.Experiments.Ablations.name ^ " input-only <= full")
        true
        (r.Experiments.Ablations.input_only_percent
        <= r.Experiments.Ablations.full_percent +. 1e-9))
    rows

let test_model_accuracy () =
  let a =
    Experiments.Ablations.model_accuracy ctx ~sim_horizon:1e-3
      ~circuits:(small_circuits [ "c17"; "rca4"; "mux8"; "par9"; "dec3" ])
      Power.Scenario.A
  in
  Alcotest.(check bool) "strong correlation" true
    (a.Experiments.Ablations.correlation > 0.7);
  Alcotest.(check bool) "model overestimates" true
    (a.Experiments.Ablations.mean_ratio > 1.0)

let test_glitch_rows () =
  let t =
    Experiments.Glitch.run ctx ~sim_horizon:1e-3
      ~circuits:(small_circuits [ "mult4"; "par16" ])
      Power.Scenario.A
  in
  match t.Experiments.Glitch.rows with
  | [ mult; par ] ->
      Alcotest.(check bool) "multiplier glitches" true
        (mult.Experiments.Glitch.glitch_percent > 5.);
      Alcotest.(check bool)
        (Printf.sprintf "multiplier out-glitches the balanced tree (%.1f%% vs %.1f%%)"
           mult.Experiments.Glitch.glitch_percent
           par.Experiments.Glitch.glitch_percent)
        true
        (mult.Experiments.Glitch.glitch_percent
        > par.Experiments.Glitch.glitch_percent);
      Alcotest.(check bool) "reduction survives timing" true
        (mult.Experiments.Glitch.timed_reduction_percent > 0.)
  | _ -> Alcotest.fail "expected two rows"

(* --- rendering smoke --- *)

let test_all_renders_nonempty () =
  let nonempty name s =
    Alcotest.(check bool) (name ^ " renders") true (String.length s > 40)
  in
  nonempty "table2" (Experiments.Table2.render (Experiments.Table2.run ()));
  nonempty "figure5" (Experiments.Figure5.render (Experiments.Figure5.run ()));
  let circuits = small_circuits [ "c17" ] in
  nonempty "table3"
    (Experiments.Table3.render
       (Experiments.Table3.run ctx ~sim_horizon:1e-3 ~circuits Power.Scenario.B));
  nonempty "ablations-delay"
    (Experiments.Ablations.render_delay_bounded
       (Experiments.Ablations.delay_bounded ctx ~circuits Power.Scenario.B));
  nonempty "ablations-input"
    (Experiments.Ablations.render_input_reordering
       (Experiments.Ablations.input_reordering ctx ~circuits Power.Scenario.B));
  nonempty "glitch"
    (Experiments.Glitch.render
       (Experiments.Glitch.run ctx ~sim_horizon:1e-3 ~circuits Power.Scenario.B))

let () =
  Alcotest.run "experiments"
    [
      ( "E1",
        [
          Alcotest.test_case "structure" `Quick test_table1_structure;
          Alcotest.test_case "render" `Quick test_table1_render_mentions_paper;
        ] );
      ("E2", [ Alcotest.test_case "counts consistent" `Quick test_table2_counts_consistent ]);
      ("E3", [ Alcotest.test_case "steps" `Quick test_figure5_steps ]);
      ( "E4",
        [
          Alcotest.test_case "row fields" `Quick test_table3_row_fields;
          Alcotest.test_case "averages" `Quick test_table3_averages;
          Alcotest.test_case "scenarios differ" `Quick test_table3_scenarios_differ;
        ] );
      ("E5", [ Alcotest.test_case "profile shape" `Slow test_adder_profile_shape ]);
      ( "E6-E9",
        [
          Alcotest.test_case "delay-bounded" `Quick test_delay_bounded_rows;
          Alcotest.test_case "input reordering" `Quick test_input_reordering_rows;
          Alcotest.test_case "model accuracy" `Slow test_model_accuracy;
          Alcotest.test_case "glitch" `Slow test_glitch_rows;
        ] );
      ( "rendering",
        [ Alcotest.test_case "all render" `Quick test_all_renders_nonempty ] );
    ]
