(* Tests for the BDD engine: operator semantics against brute-force truth
   tables, structural invariants (canonicity), cofactors, Boolean
   difference, exact probability, satisfiability helpers. *)

(* A tiny Boolean expression language evaluated two ways: directly on
   assignments, and compiled to a BDD. Random expressions drive the
   property tests. *)
type expr =
  | EVar of int
  | ENot of expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | EXor of expr * expr
  | ETrue
  | EFalse

let rec eval_expr env = function
  | EVar i -> env i
  | ENot e -> not (eval_expr env e)
  | EAnd (a, b) -> eval_expr env a && eval_expr env b
  | EOr (a, b) -> eval_expr env a || eval_expr env b
  | EXor (a, b) -> eval_expr env a <> eval_expr env b
  | ETrue -> true
  | EFalse -> false

let rec compile m = function
  | EVar i -> Bdd.var m i
  | ENot e -> Bdd.not_ (compile m e)
  | EAnd (a, b) -> Bdd.( &&& ) (compile m a) (compile m b)
  | EOr (a, b) -> Bdd.( ||| ) (compile m a) (compile m b)
  | EXor (a, b) -> Bdd.xor (compile m a) (compile m b)
  | ETrue -> Bdd.one m
  | EFalse -> Bdd.zero m

let nvars = 5

let expr_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun i -> EVar i) (int_range 0 (nvars - 1)); return ETrue; return EFalse ]
      else
        frequency
          [
            (2, map (fun i -> EVar i) (int_range 0 (nvars - 1)));
            (1, map (fun e -> ENot e) (self (n - 1)));
            (2, map2 (fun a b -> EAnd (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> EOr (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> EXor (a, b)) (self (n / 2)) (self (n / 2)));
          ])

let arbitrary_expr = QCheck.make ~print:(fun _ -> "<expr>") expr_gen

let assignments =
  (* All 2^nvars assignments as env functions. *)
  List.init (1 lsl nvars) (fun bits i -> bits land (1 lsl i) <> 0)

let agree f bdd =
  List.for_all (fun env -> eval_expr env f = Bdd.eval bdd env) assignments

(* --- unit tests --- *)

let test_constants () =
  let m = Bdd.manager () in
  Alcotest.(check bool) "one is one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "zero is zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one <> zero" false (Bdd.equal (Bdd.one m) (Bdd.zero m))

let test_var_semantics () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 in
  Alcotest.(check bool) "x(1)" true (Bdd.eval x (fun _ -> true));
  Alcotest.(check bool) "x(0)" false (Bdd.eval x (fun _ -> false));
  Alcotest.(check bool) "nvar = not var" true
    (Bdd.equal (Bdd.nvar m 0) (Bdd.not_ x))

let test_idempotence_and_complement () =
  let m = Bdd.manager () in
  let x = Bdd.var m 1 and y = Bdd.var m 2 in
  Alcotest.(check bool) "x&x = x" true (Bdd.equal Bdd.(x &&& x) x);
  Alcotest.(check bool) "x|x = x" true (Bdd.equal Bdd.(x ||| x) x);
  Alcotest.(check bool) "x & !x = 0" true (Bdd.is_zero Bdd.(x &&& Bdd.not_ x));
  Alcotest.(check bool) "x | !x = 1" true (Bdd.is_one Bdd.(x ||| Bdd.not_ x));
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal (Bdd.not_ Bdd.(x &&& y)) Bdd.(Bdd.not_ x ||| Bdd.not_ y))

let test_xor_xnor_imply () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "xnor = not xor" true
    (Bdd.equal (Bdd.xnor x y) (Bdd.not_ (Bdd.xor x y)));
  Alcotest.(check bool) "imply = !x | y" true
    (Bdd.equal (Bdd.imply x y) Bdd.(Bdd.not_ x ||| y))

let test_conj_disj () =
  let m = Bdd.manager () in
  let vs = List.init 4 (Bdd.var m) in
  Alcotest.(check bool) "empty conj" true (Bdd.is_one (Bdd.conj m []));
  Alcotest.(check bool) "empty disj" true (Bdd.is_zero (Bdd.disj m []));
  let c = Bdd.conj m vs in
  Alcotest.(check bool) "conj all true" true (Bdd.eval c (fun _ -> true));
  Alcotest.(check bool) "conj one false" false
    (Bdd.eval c (fun i -> i <> 2))

let test_hashconsing_canonicity () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (* Same function built two ways must be physically equal. *)
  let f1 = Bdd.(x &&& y ||| (x &&& Bdd.not_ y)) in
  Alcotest.(check bool) "absorbed to x" true (Bdd.equal f1 x)

let test_top_var_and_size () =
  let m = Bdd.manager () in
  let x = Bdd.var m 3 and y = Bdd.var m 7 in
  let f = Bdd.(x &&& y) in
  Alcotest.(check (option int)) "top var is smallest" (Some 3) (Bdd.top_var f);
  Alcotest.(check int) "size of x&y" 2 (Bdd.size f);
  Alcotest.(check int) "size of const" 0 (Bdd.size (Bdd.one m))

let test_support () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 2 and z = Bdd.var m 4 in
  let f = Bdd.(x &&& y ||| (x &&& z)) in
  Alcotest.(check (list int)) "support" [ 0; 2; 4 ] (Bdd.support f);
  (* y xor y has empty support *)
  Alcotest.(check (list int)) "vacuous support" [] (Bdd.support (Bdd.xor y y))

let test_restrict () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.(x &&& y) in
  Alcotest.(check bool) "f|x=1 = y" true (Bdd.equal (Bdd.restrict f 0 true) y);
  Alcotest.(check bool) "f|x=0 = 0" true (Bdd.is_zero (Bdd.restrict f 0 false));
  Alcotest.(check bool) "restrict absent var" true
    (Bdd.equal (Bdd.restrict f 9 true) f)

let test_compose () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.(x ||| y) in
  let g = Bdd.(y &&& z) in
  let h = Bdd.compose f 0 g in
  (* h = (y&z) | y = y *)
  Alcotest.(check bool) "compose simplifies" true (Bdd.equal h y)

let test_quantifiers () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.(x &&& y) in
  Alcotest.(check bool) "exists x. x&y = y" true (Bdd.equal (Bdd.exists f 0) y);
  Alcotest.(check bool) "forall x. x&y = 0" true (Bdd.is_zero (Bdd.forall f 0));
  Alcotest.(check bool) "forall x. x|!x = 1" true
    (Bdd.is_one (Bdd.forall Bdd.(x ||| Bdd.not_ x) 0))

let test_boolean_difference () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (* d(x&y)/dx = y: toggling x matters exactly when y holds. *)
  Alcotest.(check bool) "d(x&y)/dx = y" true
    (Bdd.equal (Bdd.boolean_difference Bdd.(x &&& y) 0) y);
  (* d(x xor y)/dx = 1. *)
  Alcotest.(check bool) "d(x^y)/dx = 1" true
    (Bdd.is_one (Bdd.boolean_difference (Bdd.xor x y) 0));
  (* d(y)/dx = 0. *)
  Alcotest.(check bool) "d(y)/dx = 0" true
    (Bdd.is_zero (Bdd.boolean_difference y 0))

let test_probability_basic () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let p = function 0 -> 0.5 | 1 -> 0.25 | _ -> 0. in
  Alcotest.(check (float 1e-12)) "P(x&y)" 0.125 (Bdd.probability Bdd.(x &&& y) p);
  Alcotest.(check (float 1e-12)) "P(x|y)" 0.625 (Bdd.probability Bdd.(x ||| y) p);
  Alcotest.(check (float 1e-12)) "P(1)" 1. (Bdd.probability (Bdd.one m) p);
  Alcotest.(check (float 1e-12)) "P(0)" 0. (Bdd.probability (Bdd.zero m) p)

let test_probability_rejects_bad_inputs () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 in
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Bdd.probability: variable probability outside [0,1]")
    (fun () -> ignore (Bdd.probability x (fun _ -> 1.5)))

let test_sat_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 1e-9)) "sat(x&y) over 3 vars" 2.
    (Bdd.sat_count Bdd.(x &&& y) ~nvars:3);
  Alcotest.(check (float 1e-9)) "sat(x|y) over 2 vars" 3.
    (Bdd.sat_count Bdd.(x ||| y) ~nvars:2)

let test_any_sat () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "unsat gives None" true
    (Bdd.any_sat (Bdd.zero m) = None);
  match Bdd.any_sat Bdd.(x &&& Bdd.not_ y) with
  | None -> Alcotest.fail "expected a witness"
  | Some cube ->
      let env i = List.assoc_opt i cube = Some true in
      Alcotest.(check bool) "witness satisfies" true
        (Bdd.eval Bdd.(x &&& Bdd.not_ y) env)

let test_to_string () =
  let m = Bdd.manager () in
  let names = function 0 -> "a" | 1 -> "b" | _ -> "?" in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check string) "const one" "1" (Bdd.to_string ~names (Bdd.one m));
  Alcotest.(check string) "const zero" "0" (Bdd.to_string ~names (Bdd.zero m));
  Alcotest.(check string) "a.b" "a.b" (Bdd.to_string ~names Bdd.(x &&& y))

let test_manager_mixing_rejected () =
  let m1 = Bdd.manager () and m2 = Bdd.manager () in
  Alcotest.check_raises "mixing managers"
    (Invalid_argument "Bdd: mixing nodes from two managers") (fun () ->
      ignore Bdd.(Bdd.var m1 0 &&& Bdd.var m2 0))

(* --- property tests --- *)

let prop_compile_agrees =
  QCheck.Test.make ~name:"BDD agrees with direct evaluation" ~count:300
    arbitrary_expr (fun e ->
      let m = Bdd.manager () in
      agree e (compile m e))

let prop_canonical =
  QCheck.Test.make ~name:"equivalent expressions share one node" ~count:200
    (QCheck.pair arbitrary_expr arbitrary_expr) (fun (e1, e2) ->
      let m = Bdd.manager () in
      let b1 = compile m e1 and b2 = compile m e2 in
      let semantically_equal =
        List.for_all
          (fun env -> eval_expr env e1 = eval_expr env e2)
          assignments
      in
      Bdd.equal b1 b2 = semantically_equal)

let prop_shannon_expansion =
  QCheck.Test.make ~name:"f = ite(x, f|x=1, f|x=0)" ~count:200 arbitrary_expr
    (fun e ->
      let m = Bdd.manager () in
      let f = compile m e in
      List.for_all
        (fun i ->
          let x = Bdd.var m i in
          Bdd.equal f (Bdd.ite x (Bdd.restrict f i true) (Bdd.restrict f i false)))
        (List.init nvars Fun.id))

let prop_probability_matches_enumeration =
  QCheck.Test.make ~name:"probability = weighted truth-table sum" ~count:150
    (QCheck.pair arbitrary_expr (QCheck.array_of_size (QCheck.Gen.return nvars)
                                   (QCheck.float_range 0. 1.)))
    (fun (e, probs) ->
      let m = Bdd.manager () in
      let f = compile m e in
      let p i = probs.(i) in
      let expected =
        List.fold_left
          (fun acc env ->
            if eval_expr env e then
              let w = ref 1. in
              for i = 0 to nvars - 1 do
                w := !w *. if env i then p i else 1. -. p i
              done;
              acc +. !w
            else acc)
          0. assignments
      in
      Float.abs (Bdd.probability f p -. expected) < 1e-9)

let prop_boolean_difference_semantics =
  QCheck.Test.make ~name:"boolean difference marks toggling vectors" ~count:150
    (QCheck.pair arbitrary_expr (QCheck.int_range 0 (nvars - 1)))
    (fun (e, i) ->
      let m = Bdd.manager () in
      let f = compile m e in
      let df = Bdd.boolean_difference f i in
      List.for_all
        (fun env ->
          let env_flip j = if j = i then not (env j) else env j in
          Bdd.eval df env = (Bdd.eval f env <> Bdd.eval f env_flip))
        assignments)

let prop_support_is_tight =
  QCheck.Test.make ~name:"restricting a support var changes or keeps f; non-support never changes"
    ~count:150 arbitrary_expr (fun e ->
      let m = Bdd.manager () in
      let f = compile m e in
      let sup = Bdd.support f in
      List.for_all
        (fun i ->
          let changed =
            not (Bdd.equal (Bdd.restrict f i true) (Bdd.restrict f i false))
          in
          changed = List.mem i sup)
        (List.init nvars Fun.id))

let prop_fold_paths_disjoint_cover =
  QCheck.Test.make ~name:"fold_paths cubes form a disjoint cover of the on-set"
    ~count:150 arbitrary_expr (fun e ->
      let m = Bdd.manager () in
      let f = compile m e in
      let cubes = Bdd.fold_paths f ~init:[] ~f:(fun acc c -> c :: acc) in
      let matches env cube =
        List.for_all (fun (v, b) -> env v = b) cube
      in
      List.for_all
        (fun env ->
          let n = List.length (List.filter (matches env) cubes) in
          if eval_expr env e then n = 1 else n = 0)
        assignments)

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "var semantics" `Quick test_var_semantics;
          Alcotest.test_case "idempotence/complement" `Quick
            test_idempotence_and_complement;
          Alcotest.test_case "xor/xnor/imply" `Quick test_xor_xnor_imply;
          Alcotest.test_case "conj/disj" `Quick test_conj_disj;
          Alcotest.test_case "hash-consing canonicity" `Quick
            test_hashconsing_canonicity;
          Alcotest.test_case "top_var and size" `Quick test_top_var_and_size;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "boolean difference" `Quick test_boolean_difference;
          Alcotest.test_case "probability basic" `Quick test_probability_basic;
          Alcotest.test_case "probability input validation" `Quick
            test_probability_rejects_bad_inputs;
          Alcotest.test_case "sat_count" `Quick test_sat_count;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "manager mixing rejected" `Quick
            test_manager_mixing_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_compile_agrees;
          QCheck_alcotest.to_alcotest prop_canonical;
          QCheck_alcotest.to_alcotest prop_shannon_expansion;
          QCheck_alcotest.to_alcotest prop_probability_matches_enumeration;
          QCheck_alcotest.to_alcotest prop_boolean_difference_semantics;
          QCheck_alcotest.to_alcotest prop_support_is_tight;
          QCheck_alcotest.to_alcotest prop_fold_paths_disjoint_cover;
        ] );
    ]
