(* Tests for the E13 exact per-gate validator. *)

let ctx = Experiments.Common.create ()

let test_inverter_exact () =
  (* One transistor pair, no internal nodes: the model is exact. *)
  let r = Experiments.Gate_accuracy.row ctx (Cell.Gate.of_name "inv") in
  Alcotest.(check (float 1e-6)) "zero error" 0.
    r.Experiments.Gate_accuracy.mean_error_percent

let test_nand2_strong_agreement () =
  let r = Experiments.Gate_accuracy.row ctx (Cell.Gate.of_name "nand2") in
  Alcotest.(check bool) "best matches" true
    r.Experiments.Gate_accuracy.best_matches;
  Alcotest.(check bool) "small error" true
    (r.Experiments.Gate_accuracy.mean_error_percent < 10.)

let test_chain_ranking () =
  let r = Experiments.Gate_accuracy.row ctx (Cell.Gate.of_name "nand3") in
  Alcotest.(check bool) "near-perfect rank correlation" true
    (r.Experiments.Gate_accuracy.rank_correlation > 0.95);
  Alcotest.(check bool) "best matches" true
    r.Experiments.Gate_accuracy.best_matches

let test_duality_symmetry () =
  (* A gate and its dual expose the same multiset of per-configuration
     powers (the P/N networks swap roles; configuration indices map to
     each other under the duality, not necessarily identically). *)
  List.iter
    (fun (a, b) ->
      let ta, ma = Experiments.Gate_accuracy.powers ctx (Cell.Gate.of_name a) in
      let tb, mb = Experiments.Gate_accuracy.powers ctx (Cell.Gate.of_name b) in
      let sorted = List.sort Float.compare in
      let close xs ys =
        List.for_all2
          (fun x y -> Float.abs (x -. y) /. x < 0.02)
          (sorted xs) (sorted ys)
      in
      Alcotest.(check bool) (a ^ "/" ^ b ^ " truth dual") true (close ta tb);
      Alcotest.(check bool) (a ^ "/" ^ b ^ " model dual") true (close ma mb))
    [ ("nand3", "nor3"); ("aoi22", "oai22") ]

let test_truth_positive_and_bounded () =
  let truth, model =
    Experiments.Gate_accuracy.powers ctx (Cell.Gate.of_name "aoi21")
  in
  List.iter
    (fun t -> Alcotest.(check bool) "positive truth" true (t > 0.))
    truth;
  List.iter2
    (fun t m ->
      Alcotest.(check bool) "within 2x" true (m /. t < 2. && t /. m < 2.))
    truth model

let test_render () =
  let rows =
    Experiments.Gate_accuracy.run ctx
      ~gates:[ Cell.Gate.of_name "inv"; Cell.Gate.of_name "nand2" ]
      ()
  in
  let s = Experiments.Gate_accuracy.render rows in
  Alcotest.(check bool) "mentions nand2" true
    (let sub = "nand2" in
     let n = String.length s and m = String.length sub in
     let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "gate_accuracy"
    [
      ( "E13",
        [
          Alcotest.test_case "inverter exact" `Quick test_inverter_exact;
          Alcotest.test_case "nand2 agreement" `Quick test_nand2_strong_agreement;
          Alcotest.test_case "chain ranking" `Quick test_chain_ranking;
          Alcotest.test_case "duality symmetry" `Quick test_duality_symmetry;
          Alcotest.test_case "truth sane" `Quick test_truth_positive_and_bounded;
          Alcotest.test_case "render" `Quick test_render;
        ] );
    ]
