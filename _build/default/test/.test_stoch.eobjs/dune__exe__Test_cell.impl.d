test/test_cell.ml: Alcotest Bdd Cell Float List QCheck QCheck_alcotest Sp Stdlib
