test/test_gate_accuracy.mli:
