test/test_delay.ml: Alcotest Array Cell Delay Float Fun List Netlist QCheck QCheck_alcotest
