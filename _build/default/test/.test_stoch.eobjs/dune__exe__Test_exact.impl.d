test/test_exact.ml: Alcotest Array Cell Circuits Experiments Float List Netlist Option Power Printf QCheck QCheck_alcotest Stoch
