test/test_stoch.ml: Alcotest Array Float Fun QCheck QCheck_alcotest Stoch
