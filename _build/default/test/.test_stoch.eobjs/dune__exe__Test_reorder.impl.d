test/test_reorder.ml: Alcotest Array Cell Circuits Delay Float Fun Hashtbl List Netlist Power Printf QCheck QCheck_alcotest Reorder Stoch
