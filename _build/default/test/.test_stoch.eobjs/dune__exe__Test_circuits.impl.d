test/test_circuits.ml: Alcotest Array Char Circuits List Netlist Printf QCheck QCheck_alcotest String
