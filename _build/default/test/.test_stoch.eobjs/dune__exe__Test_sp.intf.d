test/test_sp.mli:
