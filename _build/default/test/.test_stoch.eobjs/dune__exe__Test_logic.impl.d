test/test_logic.ml: Alcotest Array Bdd Bytes Cell Char Delay Hashtbl List Logic Netlist Option Power Printf QCheck QCheck_alcotest Reorder Stoch String
