test/test_bdd.ml: Alcotest Array Bdd Float Fun List QCheck QCheck_alcotest
