test/test_power.ml: Alcotest Array Cell Float Fun List Netlist Option Power QCheck QCheck_alcotest Sp Stoch
