test/test_sp.ml: Alcotest Bdd Fun List QCheck QCheck_alcotest Sp
