test/test_experiments.ml: Alcotest Cell Circuits Experiments List Power Printf Report String
