test/test_netlist.ml: Alcotest Array Bytes Cell Char Circuits Filename Fun Hashtbl List Netlist Option Printf QCheck QCheck_alcotest Stoch String Sys
