test/test_seq.ml: Alcotest Array Cell Circuits Delay Float Hashtbl List Netlist Power Printf Reorder Sequential Stoch String
