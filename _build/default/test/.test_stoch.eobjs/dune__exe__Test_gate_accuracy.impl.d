test/test_gate_accuracy.ml: Alcotest Cell Experiments Float List String
