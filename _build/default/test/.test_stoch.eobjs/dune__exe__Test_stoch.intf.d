test/test_stoch.mli:
