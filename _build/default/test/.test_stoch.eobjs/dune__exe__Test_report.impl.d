test/test_report.ml: Alcotest List QCheck QCheck_alcotest Report String
