test/test_switchsim.mli:
