test/test_timed.ml: Alcotest Array Cell Circuits Delay List Netlist Option Printf QCheck QCheck_alcotest Stoch Switchsim
