test/test_switchsim.ml: Alcotest Array Cell Circuits Float Hashtbl List Netlist Option Power Printf QCheck QCheck_alcotest Stoch Switchsim
