test/test_export.ml: Alcotest Cell Circuits Experiments List Sp String
