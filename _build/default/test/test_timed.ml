(* Tests for the timed (inertial) simulation mode: pure transport of
   single events, glitch generation on reconvergent paths, inertial
   absorption of short pulses, and agreement with the zero-delay mode on
   hazard-free topologies. *)

module Sim = Switchsim.Sim
module H = Switchsim.Event_heap
module C = Netlist.Circuit
module B = Netlist.Builder
module W = Stoch.Waveform

let proc = Cell.Process.default

(* --- event heap --- *)

let test_heap_ordering () =
  let h = H.create () in
  List.iter (fun t -> H.push h ~time:t (int_of_float t)) [ 5.; 1.; 3.; 2.; 4. ]
  ;
  let popped = ref [] in
  let rec drain () =
    match H.pop h with
    | None -> ()
    | Some (_, v) ->
        popped := v :: !popped;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !popped)

let test_heap_interleaved () =
  let h = H.create () in
  H.push h ~time:3. "c";
  H.push h ~time:1. "a";
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (H.peek_time h);
  (match H.pop h with
  | Some (_, "a") -> ()
  | _ -> Alcotest.fail "expected a");
  H.push h ~time:2. "b";
  (match H.pop h with
  | Some (_, "b") -> ()
  | _ -> Alcotest.fail "expected b");
  Alcotest.(check int) "one left" 1 (H.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun times ->
      let h = H.create () in
      List.iteri (fun i t -> H.push h ~time:t i) times;
      let rec drain last =
        match H.pop h with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- circuits under test --- *)

let inverter_circuit () =
  let b = B.create ~name:"inv1" in
  let x = B.input b "x" in
  let y = B.inv b ~name:"y" x in
  B.output b y;
  B.finish b

(* The classic hazard circuit: y = nand(a, inv a). Zero delay: y is the
   constant 1. With the inverter slower than the nand, every rising edge
   of [a] drives a real 1-0-1 glitch through y. *)
let hazard_circuit () =
  let b = B.create ~name:"hazard" in
  let a = B.input b "a" in
  let na = B.inv b ~name:"na" a in
  let y = B.gate b ~name:"y" "nand2" [ a; na ] in
  B.output b y;
  B.finish b

let gate_delays circuit assoc g =
  let gate = C.gate_at circuit g in
  List.assoc (C.net_name circuit gate.C.output) assoc

let test_single_event_transport () =
  (* One input edge, one gate: identical energy/toggles to zero delay,
     the output simply moves later. *)
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let w = W.make ~initial:false ~transitions:[| 10. |] ~horizon:100. in
  let zero = Sim.run sim ~inputs:(fun _ -> w) () in
  let timed =
    Sim.run_timed sim ~gate_delay:(fun _ -> 2.) ~inputs:(fun _ -> w) ()
  in
  Alcotest.(check (float 1e-25)) "same energy" zero.Sim.energy timed.Sim.energy;
  let y = Option.get (C.net_of_name c "y") in
  Alcotest.(check int) "same toggles" zero.Sim.net_toggles.(y)
    timed.Sim.net_toggles.(y);
  (* Output was high until t=10+2 in timed mode vs 10 in zero-delay. *)
  Alcotest.(check (float 1e-9)) "high-time shifted by the delay"
    (zero.Sim.net_high_time.(y) +. 2.)
    timed.Sim.net_high_time.(y)

let test_hazard_glitches () =
  let c = hazard_circuit () in
  let sim = Sim.build proc c in
  (* a rises at 10, 30, 50: three glitch opportunities. Inverter delay
     1s, nand delay 0.1s: the 1s-wide low pulse survives. *)
  let w = W.make ~initial:false ~transitions:[| 10.; 20.; 30.; 40.; 50.; 60. |] ~horizon:100. in
  let delays = [ ("na", 1.0); ("y", 0.1) ] in
  let zero = Sim.run sim ~inputs:(fun _ -> w) () in
  let timed =
    Sim.run_timed sim
      ~gate_delay:(gate_delays c delays)
      ~inputs:(fun _ -> w) ()
  in
  let y = Option.get (C.net_of_name c "y") in
  Alcotest.(check int) "zero delay: constant output" 0 zero.Sim.net_toggles.(y);
  (* Each rising edge of a produces a full 1-0-1 glitch: 2 toggles. *)
  Alcotest.(check int) "timed: 3 glitches" 6 timed.Sim.net_toggles.(y);
  Alcotest.(check bool) "glitches cost energy" true
    (timed.Sim.energy > zero.Sim.energy)

let test_inertial_absorption () =
  (* Same circuit, but now the nand is slower than the inverter: the
     would-be 1s pulse is shorter than the 3s gate delay — absorbed. *)
  let c = hazard_circuit () in
  let sim = Sim.build proc c in
  let w = W.make ~initial:false ~transitions:[| 10.; 20. |] ~horizon:40. in
  let delays = [ ("na", 1.0); ("y", 3.0) ] in
  let timed =
    Sim.run_timed sim
      ~gate_delay:(gate_delays c delays)
      ~inputs:(fun _ -> w) ()
  in
  let y = Option.get (C.net_of_name c "y") in
  Alcotest.(check int) "pulse absorbed" 0 timed.Sim.net_toggles.(y)

let test_hazard_free_topology_matches_zero_delay () =
  (* An inverter chain has a single path: no reconvergence, no hazards —
     timed and zero-delay runs agree on energy and every toggle count. *)
  let b = B.create ~name:"chain" in
  let x = B.input b "x" in
  let n1 = B.inv b x in
  let n2 = B.inv b n1 in
  let n3 = B.inv b n2 in
  B.output b n3;
  let c = B.finish b in
  let sim = Sim.build proc c in
  let rng = Stoch.Rng.create 4 in
  let stats _ = Stoch.Signal_stats.make ~prob:0.5 ~density:0.05 in
  let zero = Sim.run_stats sim ~rng:(Stoch.Rng.copy rng) ~stats ~horizon:2000. () in
  let timed =
    Sim.run_timed_stats sim ~rng:(Stoch.Rng.copy rng) ~stats
      ~gate_delay:(fun _ -> 1e-3) ~horizon:2000. ()
  in
  Alcotest.(check (float 1e-22)) "same energy" zero.Sim.energy timed.Sim.energy;
  for net = 0 to C.net_count c - 1 do
    Alcotest.(check int)
      (Printf.sprintf "net %d toggles" net)
      zero.Sim.net_toggles.(net) timed.Sim.net_toggles.(net)
  done

let glitch_ratio name =
  let c = Circuits.Suite.find name in
  let sim = Sim.build proc c in
  let delay_table = Delay.Elmore.table proc in
  let gate_delay g =
    let gate = C.gate_at c g in
    Delay.Elmore.worst_delay delay_table gate.C.cell ~config:gate.C.config
      ~load:20e-15
  in
  let stats _ = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
  let zero = Sim.run_stats sim ~rng:(Stoch.Rng.create 9) ~stats ~horizon:2e-3 () in
  let timed =
    Sim.run_timed_stats sim ~rng:(Stoch.Rng.create 9) ~stats ~gate_delay
      ~horizon:2e-3 ()
  in
  timed.Sim.power /. zero.Sim.power

let test_timed_glitch_power_shapes () =
  (* Array multipliers are the classic glitch hog — uneven arrival times
     through the adder array generate a double-digit glitch overhead;
     balanced parity trees see near-equal path delays, so their hazards
     are inertially absorbed. *)
  let mult = glitch_ratio "mult4" in
  Alcotest.(check bool)
    (Printf.sprintf "multiplier glitches (ratio %.3f > 1.1)" mult)
    true (mult > 1.1);
  let par = glitch_ratio "par16" in
  Alcotest.(check bool)
    (Printf.sprintf "balanced tree glitch-free (ratio %.3f in [0.97,1.03])" par)
    true
    (par > 0.97 && par < 1.03)

let test_timed_deterministic () =
  let c = Circuits.Suite.find "c17" in
  let sim = Sim.build proc c in
  let stats _ = Stoch.Signal_stats.make ~prob:0.5 ~density:1e5 in
  let run () =
    (Sim.run_timed_stats sim ~rng:(Stoch.Rng.create 11) ~stats
       ~gate_delay:(fun _ -> 1e-9) ~horizon:1e-3 ())
      .Sim.energy
  in
  Alcotest.(check (float 0.)) "identical reruns" (run ()) (run ())

let test_timed_validation () =
  let c = inverter_circuit () in
  let sim = Sim.build proc c in
  let w = W.constant true ~horizon:1.0 in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Switchsim.run_timed: negative gate delay") (fun () ->
      ignore (Sim.run_timed sim ~gate_delay:(fun _ -> -1.) ~inputs:(fun _ -> w) ()))

let () =
  Alcotest.run "timed"
    [
      ( "event heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "timed simulation",
        [
          Alcotest.test_case "single event transport" `Quick
            test_single_event_transport;
          Alcotest.test_case "hazard glitches" `Quick test_hazard_glitches;
          Alcotest.test_case "inertial absorption" `Quick
            test_inertial_absorption;
          Alcotest.test_case "hazard-free matches zero delay" `Quick
            test_hazard_free_topology_matches_zero_delay;
          Alcotest.test_case "glitch power shapes" `Slow
            test_timed_glitch_power_shapes;
          Alcotest.test_case "deterministic" `Quick test_timed_deterministic;
          Alcotest.test_case "validation" `Quick test_timed_validation;
        ] );
    ]
