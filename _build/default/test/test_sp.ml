(* Tests for series-parallel trees (reordering enumeration, the paper's
   pivot algorithm) and the flattened gate graph (H/G path functions). *)

module T = Sp.Sp_tree
module N = Sp.Network

let l = T.leaf
let s = T.series
let p = T.parallel

(* Random SP tree with distinct leaf labels 0..n-1, for property tests.
   Shapes are kept small so exhaustive checks stay cheap. *)
let sp_gen =
  let open QCheck.Gen in
  let rec shape fuel =
    if fuel <= 1 then return `L
    else
      frequency
        [
          (2, return `L);
          ( 3,
            int_range 2 3 >>= fun k ->
            list_repeat k (shape (fuel / k)) >>= fun cs -> return (`S cs) );
          ( 3,
            int_range 2 3 >>= fun k ->
            list_repeat k (shape (fuel / k)) >>= fun cs -> return (`P cs) );
        ]
  in
  let relabel sh =
    let counter = ref 0 in
    let rec go = function
      | `L ->
          let i = !counter in
          incr counter;
          l i
      | `S cs -> s (List.map go cs)
      | `P cs -> p (List.map go cs)
    in
    go sh
  in
  map relabel (shape 6)

let arbitrary_sp = QCheck.make ~print:(fun t -> T.to_string t) sp_gen

(* Flattening can merge nested series into long chains whose ordering
   count is factorial; keep property inputs to library-gate scale. *)
let small t = QCheck.assume (T.count_orderings t <= 48)

let tree = Alcotest.testable T.pp T.equal

(* --- Sp_tree unit tests --- *)

let test_smart_constructors_flatten () =
  Alcotest.check tree "series flattens"
    (s [ l 0; l 1; l 2 ])
    (s [ s [ l 0; l 1 ]; l 2 ]);
  Alcotest.check tree "parallel flattens"
    (p [ l 0; l 1; l 2 ])
    (p [ l 0; p [ l 1; l 2 ] ]);
  Alcotest.check tree "singleton series collapses" (l 4) (s [ l 4 ]);
  Alcotest.check tree "singleton parallel collapses" (l 4) (p [ l 4 ])

let test_constructors_reject_empty () =
  Alcotest.check_raises "empty series" (Invalid_argument "Sp_tree.series: empty list")
    (fun () -> ignore (s []));
  Alcotest.check_raises "negative leaf" (Invalid_argument "Sp_tree.leaf: negative input index")
    (fun () -> ignore (l (-1)))

let test_observers () =
  let t = s [ l 2; p [ l 0; l 1 ] ] in
  Alcotest.(check (list int)) "inputs sorted" [ 0; 1; 2 ] (T.inputs t);
  Alcotest.(check int) "transistors" 3 (T.transistor_count t);
  Alcotest.(check int) "internal nodes" 1 (T.internal_node_count t);
  Alcotest.(check int) "depth" 2 (T.depth t);
  let nand4 = s [ l 0; l 1; l 2; l 3 ] in
  Alcotest.(check int) "nand4 chain internal nodes" 3 (T.internal_node_count nand4);
  Alcotest.(check int) "nand4 depth" 4 (T.depth nand4)

let test_internal_nodes_nested () =
  (* aoi22 pull-down: parallel of two series pairs: each pair has 1 gap. *)
  let t = p [ s [ l 0; l 1 ]; s [ l 2; l 3 ] ] in
  Alcotest.(check int) "two gaps" 2 (T.internal_node_count t)

let test_dual () =
  let t = s [ l 2; p [ l 0; l 1 ] ] in
  Alcotest.check tree "dual" (p [ l 2; s [ l 0; l 1 ] ]) (T.dual t);
  Alcotest.check tree "dual involutive" t (T.dual (T.dual t))

let test_canonical () =
  let a = p [ l 1; l 0 ] and b = p [ l 0; l 1 ] in
  Alcotest.check tree "parallel order canonicalized" (T.canonical a) (T.canonical b);
  let sa = s [ l 1; l 0 ] and sb = s [ l 0; l 1 ] in
  Alcotest.(check bool) "series order preserved" false
    (T.equal (T.canonical sa) (T.canonical sb))

let test_conduction () =
  let m = Bdd.manager () in
  let t = s [ l 0; p [ l 1; l 2 ] ] in
  let expected_n =
    Bdd.(var m 0 &&& (var m 1 ||| var m 2))
  in
  Alcotest.(check bool) "nmos conduction" true
    (Bdd.equal (T.conduction m T.Nmos t) expected_n);
  let expected_p =
    Bdd.(nvar m 0 &&& (nvar m 1 ||| nvar m 2))
  in
  Alcotest.(check bool) "pmos conduction" true
    (Bdd.equal (T.conduction m T.Pmos t) expected_p)

let test_orderings_counts () =
  let count t = List.length (T.orderings t) in
  Alcotest.(check int) "leaf" 1 (count (l 0));
  Alcotest.(check int) "nand2 chain" 2 (count (s [ l 0; l 1 ]));
  Alcotest.(check int) "nand3 chain" 6 (count (s [ l 0; l 1; l 2 ]));
  Alcotest.(check int) "nand4 chain" 24 (count (s [ l 0; l 1; l 2; l 3 ]));
  Alcotest.(check int) "parallel only" 1 (count (p [ l 0; l 1; l 2 ]));
  (* oai21 pull-down (the paper's running example): 2 configurations. *)
  Alcotest.(check int) "oai21 pd" 2 (count (s [ l 2; p [ l 0; l 1 ] ]));
  (* aoi22 pull-down: two independent pair orders. *)
  Alcotest.(check int) "aoi22 pd" 4 (count (p [ s [ l 0; l 1 ]; s [ l 2; l 3 ] ]));
  (* aoi22 pull-up: outer series order × nothing inside. *)
  Alcotest.(check int) "aoi22 pu" 2 (count (s [ p [ l 0; l 1 ]; p [ l 2; l 3 ] ]))

let test_orderings_contains_original () =
  let t = s [ l 2; p [ l 0; l 1 ] ] in
  Alcotest.(check bool) "original present" true
    (List.exists (fun c -> T.equal (T.canonical c) (T.canonical t)) (T.orderings t))

let test_orderings_identical_branches_dedup () =
  (* Two identical parallel branches: swapping them is the identity, so
     a parallel of two equal series pairs built from the same labels in a
     different arrangement must deduplicate. Here both series branches
     use the same input twice. *)
  let t = p [ s [ l 0; l 0 ]; s [ l 0; l 0 ] ] in
  Alcotest.(check int) "all orders coincide" 1 (List.length (T.orderings t))

let test_count_orderings_closed_form () =
  let check t =
    Alcotest.(check int)
      (T.to_string t)
      (List.length (T.orderings t))
      (T.count_orderings t)
  in
  check (s [ l 0; l 1; l 2 ]);
  check (p [ s [ l 0; l 1 ]; s [ l 2; l 3 ] ]);
  check (s [ p [ l 0; l 1 ]; p [ l 2; l 3 ]; l 4 ])

let test_pivot_basic () =
  let t = s [ l 0; l 1; l 2 ] in
  Alcotest.check tree "pivot gap 0" (s [ l 1; l 0; l 2 ]) (T.pivot t 0);
  Alcotest.check tree "pivot gap 1" (s [ l 0; l 2; l 1 ]) (T.pivot t 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sp_tree.pivot: internal node index out of range")
    (fun () -> ignore (T.pivot t 2))

let test_pivot_nested () =
  (* The gap inside a parallel branch's series pair is an internal node
     too, and pivoting it must only swap that pair. *)
  let t = s [ l 4; p [ s [ l 0; l 1 ]; l 2 ] ] in
  (* gaps in DFS order: 0 = between l4 and the parallel block,
     1 = inside the series pair. *)
  Alcotest.check tree "pivot inner pair"
    (s [ l 4; p [ s [ l 1; l 0 ]; l 2 ] ])
    (T.pivot t 1)

let test_pivot_orderings_example_gate () =
  (* The paper's running example y=(a1+a2)·b. Its pull-down network has 2
     orderings; Fig. 5 explores the full gate (both networks) and finds
     4 — checked at the cell level. Here: the single network. *)
  let t = s [ l 2; p [ l 0; l 1 ] ] in
  Alcotest.(check int) "2 reorderings found" 2 (List.length (T.pivot_orderings t))

let test_pivot_trace_order () =
  let t = s [ l 0; l 1; l 2 ] in
  let log = ref [] in
  let all = T.pivot_orderings ~trace:(fun k cfg -> log := (k, cfg) :: !log) t in
  Alcotest.(check int) "6 configs total" 6 (List.length all);
  Alcotest.(check int) "5 discovered by pivoting" 5 (List.length !log);
  (* First discovery is the pivot of the start on gap 0. *)
  match List.rev !log with
  | (0, first) :: _ -> Alcotest.check tree "first move" (s [ l 1; l 0; l 2 ]) first
  | _ -> Alcotest.fail "expected a first trace entry for gap 0"

(* --- Sp_tree properties --- *)

let canon_set configs =
  List.sort_uniq T.compare (List.map T.canonical configs)

let prop_pivot_involution =
  QCheck.Test.make ~name:"pivot is an involution" ~count:200 arbitrary_sp
    (fun t ->
      let n = T.internal_node_count t in
      n = 0
      || List.for_all
           (fun k -> T.equal (T.canonical (T.pivot (T.pivot t k) k)) (T.canonical t))
           (List.init n Fun.id))

let prop_pivot_matches_enumeration =
  QCheck.Test.make ~name:"pivot algorithm finds exactly the enumerated orderings"
    ~count:200 arbitrary_sp (fun t ->
      small t;
      canon_set (T.pivot_orderings t) = canon_set (T.orderings t))

let prop_orderings_preserve_function =
  QCheck.Test.make ~name:"reordering never changes the conduction function"
    ~count:200 arbitrary_sp (fun t ->
      small t;
      let m = Bdd.manager () in
      let reference = T.conduction m T.Nmos t in
      List.for_all
        (fun c -> Bdd.equal (T.conduction m T.Nmos c) reference)
        (T.orderings t))

let prop_orderings_preserve_counts =
  QCheck.Test.make ~name:"reordering preserves transistor/internal-node counts"
    ~count:200 arbitrary_sp (fun t ->
      small t;
      List.for_all
        (fun c ->
          T.transistor_count c = T.transistor_count t
          && T.internal_node_count c = T.internal_node_count t)
        (T.orderings t))

let prop_dual_conduction_complement =
  QCheck.Test.make
    ~name:"PMOS dual network conducts exactly when the NMOS one does not"
    ~count:200 arbitrary_sp (fun t ->
      let m = Bdd.manager () in
      Bdd.equal
        (T.conduction m T.Pmos (T.dual t))
        (Bdd.not_ (T.conduction m T.Nmos t)))

let prop_count_closed_form =
  QCheck.Test.make ~name:"count_orderings matches enumeration" ~count:200
    arbitrary_sp (fun t ->
      small t;
      T.count_orderings t = List.length (T.orderings t))

(* --- Network unit tests --- *)

let test_network_nand2 () =
  let m = Bdd.manager () in
  let g = N.complementary_gate ~pull_down:(s [ l 0; l 1 ]) in
  Alcotest.(check int) "4 devices" 4 (N.device_count g);
  Alcotest.(check int) "1 internal node" 1 (N.internal_count g);
  Alcotest.(check (list int)) "inputs" [ 0; 1 ] (N.inputs g);
  let y = N.output_function m g in
  Alcotest.(check bool) "y = nand(a,b)" true
    (Bdd.equal y (Bdd.not_ Bdd.(Bdd.var m 0 &&& Bdd.var m 1)));
  Alcotest.(check bool) "complementary" true (N.is_complementary m g);
  Alcotest.(check bool) "no short" false (N.has_short m g)

let test_network_nand2_internal_hg () =
  (* Pull-down [a; b] between output and vss: internal node n0 sits
     between the two NMOS devices. G_n0 = b; H_n0 = a ∧ ¬b (up through
     the a-device to the output, then through the PMOS network, which
     conducts when ¬a ∨ ¬b — conjoined with a this leaves a ∧ ¬b). *)
  let m = Bdd.manager () in
  let g = N.complementary_gate ~pull_down:(s [ l 0; l 1 ]) in
  let n0 = N.Internal 0 in
  Alcotest.(check bool) "G_n0 = b" true
    (Bdd.equal (N.g_function m g n0) (Bdd.var m 1));
  Alcotest.(check bool) "H_n0 = a & !b" true
    (Bdd.equal (N.h_function m g n0) Bdd.(Bdd.var m 0 &&& Bdd.nvar m 1))

let test_network_degree () =
  let g = N.complementary_gate ~pull_down:(s [ l 0; l 1 ]) in
  (* Output node: 1 NMOS terminal + 2 PMOS terminals (parallel pull-up). *)
  Alcotest.(check int) "output degree" 3 (N.node_degree g N.Output);
  Alcotest.(check int) "internal degree" 2 (N.node_degree g (N.Internal 0));
  Alcotest.(check int) "vdd degree" 2 (N.node_degree g N.Vdd);
  Alcotest.(check int) "vss degree" 1 (N.node_degree g N.Vss)

let test_network_example_gate () =
  (* The paper's Fig. 2(a) gate: pull-down (a1|a2).b — H of the internal
     node between the pair and b must route through the output node and
     the pull-up network (the paper's four-minterm example). *)
  let m = Bdd.manager () in
  let a1 = 0 and a2 = 1 and b = 2 in
  let g = N.complementary_gate ~pull_down:(s [ p [ l a1; l a2 ]; l b ]) in
  Alcotest.(check int) "internal nodes" 2 (N.internal_count g);
  Alcotest.(check bool) "complementary" true (N.is_complementary m g);
  Alcotest.(check bool) "no short" false (N.has_short m g);
  (* n0 = between the pair and the b device (pull-down laid first). *)
  let n0 = N.Internal 0 in
  let h = N.h_function m g n0 and gf = N.g_function m g n0 in
  Alcotest.(check bool) "G_n0 = b" true (Bdd.equal gf (Bdd.var m b));
  (* H_n0: up through a1 or a2 to the output, then pull-up conducts when
     the pull-down function (a1|a2).b is false. *)
  let reach_out = Bdd.(Bdd.var m a1 ||| Bdd.var m a2) in
  let pull_up_on =
    Bdd.not_ Bdd.((Bdd.var m a1 ||| Bdd.var m a2) &&& Bdd.var m b)
  in
  Alcotest.(check bool) "H_n0 via output" true
    (Bdd.equal h Bdd.(reach_out &&& pull_up_on));
  Alcotest.(check bool) "H and G disjoint" true (Bdd.is_zero Bdd.(h &&& gf))

let test_network_rejects_rail_query () =
  let m = Bdd.manager () in
  let g = N.complementary_gate ~pull_down:(l 0) in
  Alcotest.check_raises "H of vdd"
    (Invalid_argument "Network: H/G undefined on supply rails") (fun () ->
      ignore (N.h_function m g N.Vdd))

let test_network_terminal_sum () =
  let g =
    N.complementary_gate ~pull_down:(p [ s [ l 0; l 1 ]; s [ l 2; l 3 ] ])
  in
  let all_nodes =
    N.Vdd :: N.Vss :: N.power_nodes g
  in
  let total = List.fold_left (fun acc n -> acc + N.node_degree g n) 0 all_nodes in
  Alcotest.(check int) "terminals = 2 x devices" (2 * N.device_count g) total

(* --- Network properties --- *)

let prop_gate_wellformed =
  QCheck.Test.make ~name:"complementary gates are complementary and short-free"
    ~count:150 arbitrary_sp (fun t ->
      let m = Bdd.manager () in
      let g = N.complementary_gate ~pull_down:t in
      N.is_complementary m g && not (N.has_short m g))

let prop_output_function_is_inverted_pulldown =
  QCheck.Test.make ~name:"output = NOT (pull-down conduction)" ~count:150
    arbitrary_sp (fun t ->
      let m = Bdd.manager () in
      let g = N.complementary_gate ~pull_down:t in
      Bdd.equal (N.output_function m g) (Bdd.not_ (T.conduction m T.Nmos t)))

let prop_internal_counts_add_up =
  QCheck.Test.make ~name:"graph internal nodes = tree gaps of both networks"
    ~count:150 arbitrary_sp (fun t ->
      let g = N.complementary_gate ~pull_down:t in
      N.internal_count g
      = T.internal_node_count t + T.internal_node_count (T.dual t))

let prop_reordering_preserves_output =
  QCheck.Test.make ~name:"any reordering of both networks preserves the output"
    ~count:50 arbitrary_sp (fun t ->
      small t;
      let m = Bdd.manager () in
      let reference = N.output_function m (N.complementary_gate ~pull_down:t) in
      let ups = T.orderings (T.dual t) and downs = T.orderings t in
      List.for_all
        (fun up ->
          List.for_all
            (fun down ->
              Bdd.equal
                (N.output_function m (N.of_networks ~pull_up:up ~pull_down:down))
                reference)
            downs)
        ups)

let () =
  Alcotest.run "sp"
    [
      ( "sp_tree",
        [
          Alcotest.test_case "smart constructors flatten" `Quick
            test_smart_constructors_flatten;
          Alcotest.test_case "constructors reject bad input" `Quick
            test_constructors_reject_empty;
          Alcotest.test_case "observers" `Quick test_observers;
          Alcotest.test_case "nested internal nodes" `Quick
            test_internal_nodes_nested;
          Alcotest.test_case "dual" `Quick test_dual;
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "conduction" `Quick test_conduction;
          Alcotest.test_case "ordering counts" `Quick test_orderings_counts;
          Alcotest.test_case "orderings contain original" `Quick
            test_orderings_contains_original;
          Alcotest.test_case "identical branches dedup" `Quick
            test_orderings_identical_branches_dedup;
          Alcotest.test_case "closed-form count" `Quick
            test_count_orderings_closed_form;
          Alcotest.test_case "pivot basic" `Quick test_pivot_basic;
          Alcotest.test_case "pivot nested" `Quick test_pivot_nested;
          Alcotest.test_case "pivot orderings on example" `Quick
            test_pivot_orderings_example_gate;
          Alcotest.test_case "pivot trace" `Quick test_pivot_trace_order;
        ] );
      ( "sp_tree properties",
        [
          QCheck_alcotest.to_alcotest prop_pivot_involution;
          QCheck_alcotest.to_alcotest prop_pivot_matches_enumeration;
          QCheck_alcotest.to_alcotest prop_orderings_preserve_function;
          QCheck_alcotest.to_alcotest prop_orderings_preserve_counts;
          QCheck_alcotest.to_alcotest prop_dual_conduction_complement;
          QCheck_alcotest.to_alcotest prop_count_closed_form;
        ] );
      ( "network",
        [
          Alcotest.test_case "nand2 structure" `Quick test_network_nand2;
          Alcotest.test_case "nand2 internal H/G" `Quick
            test_network_nand2_internal_hg;
          Alcotest.test_case "node degrees" `Quick test_network_degree;
          Alcotest.test_case "paper example gate" `Quick test_network_example_gate;
          Alcotest.test_case "rejects rail query" `Quick
            test_network_rejects_rail_query;
          Alcotest.test_case "terminal count" `Quick test_network_terminal_sum;
        ] );
      ( "network properties",
        [
          QCheck_alcotest.to_alcotest prop_gate_wellformed;
          QCheck_alcotest.to_alcotest prop_output_function_is_inverted_pulldown;
          QCheck_alcotest.to_alcotest prop_internal_counts_add_up;
          QCheck_alcotest.to_alcotest prop_reordering_preserves_output;
        ] );
    ]
