(* Tests for the extended power model, density propagation, circuit
   estimation and scenarios. Hand-computed expectations follow §3 of the
   paper. *)

module M = Power.Model
module A = Power.Analysis
module E = Power.Estimate
module S = Stoch.Signal_stats
module C = Netlist.Circuit
module B = Netlist.Builder

let table () = M.table Cell.Process.default
let stats p d = S.make ~prob:p ~density:d
let gate n = Cell.Gate.of_name n

(* --- Model.output_stats --- *)

let test_inverter_stats () =
  let t = table () in
  let out = M.output_stats t (gate "inv") ~input_stats:[| stats 0.3 42. |] () in
  Alcotest.(check (float 1e-9)) "P(out) = 1 - P(in)" 0.7 (S.prob out);
  Alcotest.(check (float 1e-9)) "D(out) = D(in)" 42. (S.density out)

let test_nand2_stats () =
  let t = table () in
  let pa = 0.5 and pb = 0.25 and da = 10. and db = 100. in
  let out =
    M.output_stats t (gate "nand2") ~input_stats:[| stats pa da; stats pb db |] ()
  in
  Alcotest.(check (float 1e-9)) "P = 1 - pa.pb" (1. -. (pa *. pb)) (S.prob out);
  (* D = P(b).Da + P(a).Db (boolean differences of an AND). *)
  Alcotest.(check (float 1e-9)) "Najm density" ((pb *. da) +. (pa *. db))
    (S.density out)

let test_xor_like_density () =
  (* aoi21 with x2 = 0 held constant degenerates to nand2 on x0,x1. *)
  let t = table () in
  let out =
    M.output_stats t (gate "aoi21")
      ~input_stats:[| stats 0.5 10.; stats 0.5 20.; S.constant false |]
      ()
  in
  Alcotest.(check (float 1e-9)) "degenerate aoi21 density"
    ((0.5 *. 10.) +. (0.5 *. 20.))
    (S.density out)

let test_constant_inputs_zero_density () =
  let t = table () in
  let out =
    M.output_stats t (gate "nor3")
      ~input_stats:[| S.constant true; S.constant false; S.constant false |]
      ()
  in
  Alcotest.(check (float 1e-9)) "no transitions" 0. (S.density out);
  Alcotest.(check (float 1e-9)) "P(nor) = 0" 0. (S.prob out)

let test_output_stats_rejects_bad_arity () =
  let t = table () in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Power.Model: input_stats length differs from gate arity")
    (fun () ->
      ignore (M.output_stats t (gate "nand2") ~input_stats:[| stats 0.5 1. |] ()))

(* --- Model.gate_power --- *)

let test_inverter_has_no_internal_power () =
  let t = table () in
  let p =
    M.gate_power t (gate "inv") ~config:0 ~input_stats:[| stats 0.5 100. |]
      ~load:10e-15 ()
  in
  Alcotest.(check (float 1e-30)) "internal" 0. p.M.internal;
  Alcotest.(check bool) "output positive" true (p.M.output > 0.);
  Alcotest.(check (float 1e-25)) "total = output" p.M.output p.M.total

let test_output_node_transitions_equal_najm () =
  let t = table () in
  let input_stats = [| stats 0.3 1e5; stats 0.7 2e5; stats 0.5 3e4 |] in
  let p = M.gate_power t (gate "oai21") ~config:2 ~input_stats ~load:0. () in
  let najm = S.density (M.output_stats t (gate "oai21") ~input_stats ()) in
  match p.M.nodes with
  | { M.node = Sp.Network.Output; transitions; _ } :: _ ->
      Alcotest.(check (float 1e-6)) "output transitions = Najm density" najm
        transitions
  | _ -> Alcotest.fail "output node must come first"

let test_internal_node_probability () =
  (* nand2 reference config: pull-down [x0; x1] from output to ground;
     internal node n0: H = x0 & !x1, G = x1, so
     P(n0) = P(H) / (P(H) + P(G)). *)
  let t = table () in
  let pa = 0.6 and pb = 0.3 in
  let p =
    M.gate_power t (gate "nand2") ~config:0
      ~input_stats:[| stats pa 1.; stats pb 1. |]
      ~load:0. ()
  in
  let p_h = pa *. (1. -. pb) and p_g = pb in
  let expected = p_h /. (p_h +. p_g) in
  let internal =
    List.find
      (fun n -> match n.M.node with Sp.Network.Internal _ -> true | _ -> false)
      p.M.nodes
  in
  Alcotest.(check (float 1e-9)) "steady-state probability" expected
    internal.M.probability

let test_gate_power_monotone_in_load () =
  let t = table () in
  let input_stats = [| stats 0.5 1e5; stats 0.5 1e5 |] in
  let power load =
    (M.gate_power t (gate "nand2") ~config:0 ~input_stats ~load ()).M.total
  in
  Alcotest.(check bool) "more load, more power" true (power 50e-15 > power 5e-15)

let test_gate_power_rejects_negative_load () =
  let t = table () in
  Alcotest.check_raises "negative load"
    (Invalid_argument "Power.Model.gate_power: negative load") (fun () ->
      ignore
        (M.gate_power t (gate "inv") ~config:0 ~input_stats:[| stats 0.5 1. |]
           ~load:(-1.) ()))

let test_gate_power_rejects_bad_config () =
  let t = table () in
  Alcotest.check_raises "config out of range"
    (Invalid_argument "Power.Model: configuration index out of range")
    (fun () ->
      ignore
        (M.gate_power t (gate "inv") ~config:5 ~input_stats:[| stats 0.5 1. |]
           ~load:0. ()))

(* Table 1 of the paper: the best configuration of the example gate
   flips between the two activity cases. *)
let test_table1_best_config_flips () =
  let t = table () in
  let g = gate "oai21" in
  let configs = Cell.Config.all g in
  let best input_stats =
    let powers =
      List.mapi
        (fun i _ ->
          (i, (M.gate_power t g ~config:i ~input_stats ~load:20e-15 ()).M.total))
        configs
    in
    fst
      (List.fold_left
         (fun (bi, bp) (i, p) -> if p < bp then (i, p) else (bi, bp))
         (-1, infinity) powers)
  in
  let case1 = best [| stats 0.5 1e4; stats 0.5 1e5; stats 0.5 1e6 |] in
  let case2 = best [| stats 0.5 1e6; stats 0.5 1e5; stats 0.5 1e4 |] in
  Alcotest.(check bool) "different optimum" true (case1 <> case2)

(* --- tied pins (groups) --- *)

let majority_groups = [| 0; 1; 1; 3; 0; 3 |]
(* aoi222 pins (a,b,b,c,a,c): pin2 ties to pin1, pin4 to pin0, pin5 to
   pin3 — the majority-carry cell of the full adder. *)

let test_groups_of_nets () =
  Alcotest.(check (array int)) "majority wiring" majority_groups
    (M.groups_of_nets [| 10; 11; 11; 12; 10; 12 |]);
  Alcotest.(check (array int)) "distinct nets" [| 0; 1; 2 |]
    (M.groups_of_nets [| 5; 9; 7 |])

let test_tied_pins_exact_probability () =
  (* Majority of three independent P=0.5 signals is exactly 0.5; the
     AOI222 output (its complement) too. Treating the six pins as
     independent would give 1 - (1 - 1/4)^3 = 0.578 instead. *)
  let t = table () in
  let input_stats = Array.make 6 (stats 0.5 1.) in
  let tied =
    M.output_stats t (gate "aoi222") ~input_stats ~groups:majority_groups ()
  in
  Alcotest.(check (float 1e-12)) "exact 0.5" 0.5 (S.prob tied);
  let untied = M.output_stats t (gate "aoi222") ~input_stats () in
  (* independent pins: P(out) = P(no AND-pair conducts) = (3/4)^3 *)
  Alcotest.(check bool) "independence bias visible" true
    (Float.abs (S.prob untied -. (0.75 ** 3.)) < 1e-12)

let test_tied_pins_density () =
  (* d(maj)/d(a) = b xor c, so with all P = 0.5:
     D(out) = 0.5 (Da + Db + Dc). *)
  let t = table () in
  let da = 10. and db = 100. and dc = 1000. in
  let input_stats =
    [| stats 0.5 da; stats 0.5 db; stats 0.5 db; stats 0.5 dc;
       stats 0.5 da; stats 0.5 dc |]
  in
  let out =
    M.output_stats t (gate "aoi222") ~input_stats ~groups:majority_groups ()
  in
  Alcotest.(check (float 1e-9)) "majority density"
    (0.5 *. (da +. db +. dc))
    (S.density out)

let test_tied_pins_contributions () =
  let t = table () in
  let input_stats = Array.make 6 (stats 0.5 8.) in
  let contributions =
    M.output_density_contributions t (gate "aoi222") ~input_stats
      ~groups:majority_groups ()
  in
  (* Representatives 0,1,3 carry 0.5*8 each; tied pins 2,4,5 report 0. *)
  Alcotest.(check (array (float 1e-9))) "per-pin contributions"
    [| 4.; 4.; 0.; 4.; 0.; 0. |] contributions

let test_groups_validation () =
  let t = table () in
  let input_stats = Array.make 2 (stats 0.5 1.) in
  Alcotest.check_raises "forward reference"
    (Invalid_argument "Power.Model: groups must point at earlier pins")
    (fun () ->
      ignore
        (M.output_stats t (gate "nand2") ~input_stats ~groups:[| 1; 1 |] ()));
  Alcotest.check_raises "non-idempotent representative"
    (Invalid_argument "Power.Model: group representative must map to itself")
    (fun () ->
      ignore
        (M.gate_power t (gate "nor3") ~config:0
           ~input_stats:(Array.make 3 (stats 0.5 1.))
           ~groups:[| 0; 0; 1 |] ~load:0. ()))

let test_analysis_uses_groups () =
  (* A full-adder carry stage driven by independent inputs: the carry
     net probability must be exactly 0.5 (see E5). *)
  let t = table () in
  let b = B.create ~name:"carry" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let cin = B.input b "cin" in
  let maj = B.gate b "aoi222" [ a; bb; bb; cin; a; cin ] in
  let carry = B.inv b ~name:"carry" maj in
  B.output b carry;
  let circuit = B.finish b in
  let analysis = A.run t circuit ~inputs:(fun _ -> stats 0.5 1.) in
  let carry_net = Option.get (C.net_of_name circuit "carry") in
  Alcotest.(check (float 1e-12)) "P(carry) exact" 0.5
    (S.prob (A.stats analysis carry_net));
  Alcotest.(check (float 1e-12)) "D(carry) = 1.5" 1.5
    (S.density (A.stats analysis carry_net))

(* Property: output statistics are identical across configurations — the
   monotonicity hook of §4.2. *)
let library_gate_arb =
  QCheck.make
    ~print:Cell.Gate.name
    QCheck.Gen.(
      map (List.nth Cell.Gate.library)
        (int_bound (List.length Cell.Gate.library - 1)))

let random_stats_for rng n =
  Array.init n (fun _ ->
      stats (Stoch.Rng.float rng) (Stoch.Rng.float_range rng 0. 1e6))

let prop_output_stats_config_invariant =
  QCheck.Test.make ~name:"output stats identical across configurations"
    ~count:40
    (QCheck.pair library_gate_arb QCheck.(int_range 0 1_000_000))
    (fun (g, seed) ->
      let t = table () in
      let rng = Stoch.Rng.create seed in
      let input_stats = random_stats_for rng (Cell.Gate.arity g) in
      let reference = M.output_stats t g ~input_stats () in
      (* output_stats uses config 0; check the output node's transitions
         per config equal the reference density. *)
      List.for_all
        (fun i ->
          let p = M.gate_power t g ~config:i ~input_stats ~load:0. () in
          match p.M.nodes with
          | { M.node = Sp.Network.Output; transitions; _ } :: _ ->
              Float.abs (transitions -. S.density reference) < 1e-6
          | _ -> false)
        (List.init (Cell.Gate.config_count g) Fun.id))

let prop_gate_power_nonnegative =
  QCheck.Test.make ~name:"node powers are nonnegative" ~count:40
    (QCheck.pair library_gate_arb QCheck.(int_range 0 1_000_000))
    (fun (g, seed) ->
      let t = table () in
      let rng = Stoch.Rng.create seed in
      let input_stats = random_stats_for rng (Cell.Gate.arity g) in
      List.for_all
        (fun i ->
          let p = M.gate_power t g ~config:i ~input_stats ~load:10e-15 () in
          List.for_all (fun n -> n.M.power >= 0.) p.M.nodes
          && p.M.total >= 0.)
        (List.init (Cell.Gate.config_count g) Fun.id))

(* --- Analysis --- *)

let nand_inv () =
  let b = B.create ~name:"nand_inv" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let y = B.nand2 b ~name:"y" a bb in
  let z = B.inv b ~name:"z" y in
  B.output b z;
  B.finish b

let test_analysis_propagation () =
  let t = table () in
  let c = nand_inv () in
  let inputs net =
    if C.net_name c net = "a" then stats 0.5 100. else stats 0.25 200.
  in
  let a = A.run t c ~inputs in
  let y = Option.get (C.net_of_name c "y") in
  let z = Option.get (C.net_of_name c "z") in
  Alcotest.(check (float 1e-9)) "P(y)" (1. -. (0.5 *. 0.25)) (S.prob (A.stats a y));
  Alcotest.(check (float 1e-9)) "D(y)" ((0.25 *. 100.) +. (0.5 *. 200.))
    (S.density (A.stats a y));
  Alcotest.(check (float 1e-9)) "P(z) = 1 - P(y)" (0.5 *. 0.25)
    (S.prob (A.stats a z));
  Alcotest.(check (float 1e-9)) "D(z) = D(y)" (S.density (A.stats a y))
    (S.density (A.stats a z))

let test_analysis_gate_input_stats () =
  let t = table () in
  let c = nand_inv () in
  let inputs _ = stats 0.5 10. in
  let a = A.run t c ~inputs in
  let pins = A.gate_input_stats a c 1 in
  Alcotest.(check int) "inv has one pin" 1 (Array.length pins);
  let y = Option.get (C.net_of_name c "y") in
  Alcotest.(check (float 1e-12)) "pin stats = net stats"
    (S.density (A.stats a y))
    (S.density pins.(0))

let test_analysis_total_density () =
  let t = table () in
  let c = nand_inv () in
  let a = A.run t c ~inputs:(fun _ -> S.constant true) in
  Alcotest.(check (float 1e-12)) "all quiet" 0. (A.total_density a)

(* --- Estimate --- *)

let test_output_load_fanout () =
  let t = table () in
  let c = nand_inv () in
  (* Gate 0 (nand2) output feeds one inv pin; not a primary output. *)
  let expected = M.input_pin_capacitance t (gate "inv") 0 in
  Alcotest.(check (float 1e-20)) "one inv pin" expected (E.output_load t c 0);
  (* Gate 1 (inv) drives the primary output: external load only. *)
  Alcotest.(check (float 1e-20)) "external load" 20e-15 (E.output_load t c 1);
  Alcotest.(check (float 1e-20)) "custom external load" 5e-15
    (E.output_load t ~external_load:5e-15 c 1)

let test_estimate_breakdown_consistency () =
  let t = table () in
  let c = nand_inv () in
  let a = A.run t c ~inputs:(fun _ -> stats 0.5 1e5) in
  let b = E.circuit t c a in
  let sum = Array.fold_left ( +. ) 0. b.E.per_gate in
  Alcotest.(check bool) "positive total" true (b.E.total > 0.);
  Alcotest.(check (float 1e-18)) "per-gate sums to total" b.E.total sum;
  Alcotest.(check (float 1e-18)) "internal + output = total" b.E.total
    (b.E.internal +. b.E.output);
  Alcotest.(check (float 1e-18)) "total helper agrees" b.E.total (E.total t c a)

let test_estimate_config_changes_power () =
  (* Reordering the nand2 changes circuit power when its input
     activities are asymmetric. *)
  let t = table () in
  let c = nand_inv () in
  let inputs net =
    if C.net_name c net = "a" then stats 0.5 1e6 else stats 0.5 1e3
  in
  let a = A.run t c ~inputs in
  let p0 = E.total t c a in
  let p1 = E.total t (C.with_configs c [| 1; 0 |]) a in
  Alcotest.(check bool) "configs differ in power" true
    (Float.abs (p0 -. p1) > 1e-12 *. Float.abs p0)

(* --- Scenario --- *)

let test_scenario_b () =
  let c = nand_inv () in
  let rng = Stoch.Rng.create 1 in
  let f = Power.Scenario.input_stats ~rng Power.Scenario.B c in
  List.iter
    (fun net ->
      let s = f net in
      Alcotest.(check (float 1e-9)) "P = 0.5" 0.5 (S.prob s);
      Alcotest.(check (float 1e-3)) "D = 0.5/cycle" 5e5 (S.density s))
    (C.primary_inputs c)

let test_scenario_a_ranges_and_stability () =
  let c = nand_inv () in
  let rng = Stoch.Rng.create 7 in
  let f = Power.Scenario.input_stats ~rng Power.Scenario.A c in
  List.iter
    (fun net ->
      let s = f net in
      Alcotest.(check bool) "prob in range" true (S.prob s >= 0. && S.prob s <= 1.);
      Alcotest.(check bool) "density in range" true
        (S.density s >= 0. && S.density s <= 1e6);
      (* Stable on repeated lookup. *)
      Alcotest.(check (float 0.)) "stable" (S.density s) (S.density (f net)))
    (C.primary_inputs c)

let test_scenario_rejects_non_input () =
  let c = nand_inv () in
  let rng = Stoch.Rng.create 7 in
  let f = Power.Scenario.input_stats ~rng Power.Scenario.A c in
  let y = Option.get (C.net_of_name c "y") in
  Alcotest.check_raises "non-input net"
    (Invalid_argument "Scenario.input_stats: not a primary input net")
    (fun () -> ignore (f y))

let test_scenario_names () =
  Alcotest.(check string) "A" "A" (Power.Scenario.name Power.Scenario.A);
  Alcotest.(check bool) "of_name b" true
    (Power.Scenario.of_name "b" = Power.Scenario.B)

let () =
  Alcotest.run "power"
    [
      ( "output stats",
        [
          Alcotest.test_case "inverter" `Quick test_inverter_stats;
          Alcotest.test_case "nand2" `Quick test_nand2_stats;
          Alcotest.test_case "degenerate aoi21" `Quick test_xor_like_density;
          Alcotest.test_case "constant inputs" `Quick
            test_constant_inputs_zero_density;
          Alcotest.test_case "arity validation" `Quick
            test_output_stats_rejects_bad_arity;
        ] );
      ( "gate power",
        [
          Alcotest.test_case "inverter internal = 0" `Quick
            test_inverter_has_no_internal_power;
          Alcotest.test_case "output transitions = Najm" `Quick
            test_output_node_transitions_equal_najm;
          Alcotest.test_case "internal node probability" `Quick
            test_internal_node_probability;
          Alcotest.test_case "monotone in load" `Quick
            test_gate_power_monotone_in_load;
          Alcotest.test_case "rejects negative load" `Quick
            test_gate_power_rejects_negative_load;
          Alcotest.test_case "rejects bad config" `Quick
            test_gate_power_rejects_bad_config;
          Alcotest.test_case "Table 1: optimum flips with activity" `Quick
            test_table1_best_config_flips;
          Alcotest.test_case "groups_of_nets" `Quick test_groups_of_nets;
          Alcotest.test_case "tied pins: exact probability" `Quick
            test_tied_pins_exact_probability;
          Alcotest.test_case "tied pins: density" `Quick test_tied_pins_density;
          Alcotest.test_case "tied pins: contributions" `Quick
            test_tied_pins_contributions;
          Alcotest.test_case "groups validation" `Quick test_groups_validation;
          Alcotest.test_case "analysis uses groups" `Quick
            test_analysis_uses_groups;
          QCheck_alcotest.to_alcotest prop_output_stats_config_invariant;
          QCheck_alcotest.to_alcotest prop_gate_power_nonnegative;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "propagation" `Quick test_analysis_propagation;
          Alcotest.test_case "gate input stats" `Quick
            test_analysis_gate_input_stats;
          Alcotest.test_case "total density" `Quick test_analysis_total_density;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "output load" `Quick test_output_load_fanout;
          Alcotest.test_case "breakdown consistency" `Quick
            test_estimate_breakdown_consistency;
          Alcotest.test_case "config changes power" `Quick
            test_estimate_config_changes_power;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "B" `Quick test_scenario_b;
          Alcotest.test_case "A ranges/stability" `Quick
            test_scenario_a_ranges_and_stability;
          Alcotest.test_case "rejects non-input" `Quick
            test_scenario_rejects_non_input;
          Alcotest.test_case "names" `Quick test_scenario_names;
        ] );
    ]
