(* Tests for the exact (global-BDD) statistics engine and the E11
   exactness experiment. *)

module C = Netlist.Circuit
module B = Netlist.Builder
module S = Stoch.Signal_stats

let stats p d = S.make ~prob:p ~density:d

let table () = Power.Model.table Cell.Process.default

let test_exact_matches_local_on_tree () =
  (* No reconvergent fan-out: local propagation is exact, so the two
     engines must agree on every net. *)
  let circuit = Circuits.Suite.find "tree16" in
  let inputs _ = stats 0.4 3. in
  let local = Power.Analysis.run (table ()) circuit ~inputs in
  let exact = Power.Exact.run circuit ~inputs in
  for net = 0 to C.net_count circuit - 1 do
    let l = Power.Analysis.stats local net in
    let e = Power.Exact.stats exact net in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "P net %d" net)
      (S.prob e) (S.prob l);
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "D net %d" net)
      (S.density e) (S.density l)
  done

let test_exact_fixes_reconvergence () =
  (* y = (a & b) | (a & c): local sees the two AND outputs as
     independent; exactly, P(y) = P(a(b|c)) = 0.5 * 0.75. *)
  let b = B.create ~name:"reconv" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let cc = B.input b "c" in
  let t1 = B.and2 b a bb in
  let t2 = B.and2 b a cc in
  let y = B.or2 b ~name:"y" t1 t2 in
  B.output b y;
  let circuit = B.finish b in
  let inputs _ = stats 0.5 1. in
  let exact = Power.Exact.run circuit ~inputs in
  let y_net = Option.get (C.net_of_name circuit "y") in
  Alcotest.(check (float 1e-12)) "exact P(y)" 0.375
    (S.prob (Power.Exact.stats exact y_net));
  let local = Power.Analysis.run (table ()) circuit ~inputs in
  Alcotest.(check bool) "local differs" true
    (Float.abs (S.prob (Power.Analysis.stats local y_net) -. 0.375) > 1e-6)

let test_exact_pi_stats_pass_through () =
  let circuit = Circuits.Suite.find "c17" in
  let inputs net = stats 0.3 (float_of_int (net + 1)) in
  let exact = Power.Exact.run circuit ~inputs in
  List.iter
    (fun net ->
      let e = Power.Exact.stats exact net in
      Alcotest.(check (float 1e-12)) "PI prob" 0.3 (S.prob e);
      Alcotest.(check (float 1e-9)) "PI density" (float_of_int (net + 1))
        (S.density e))
    (C.primary_inputs circuit)

let test_exact_blowup_guard () =
  let circuit = Circuits.Suite.find "rca8" in
  let inputs _ = stats 0.5 1. in
  Alcotest.(check bool) "raises Blowup" true
    (try
       ignore (Power.Exact.run ~max_nodes:3 circuit ~inputs);
       false
     with Power.Exact.Blowup _ -> true)

let test_exact_constant_input () =
  (* A constant input must zero out downstream densities exactly. *)
  let b = B.create ~name:"gated" in
  let a = B.input b "a" in
  let en = B.input b "en" in
  let y = B.nand2 b ~name:"y" a en in
  B.output b y;
  let circuit = B.finish b in
  let inputs net =
    if C.net_name circuit net = "en" then S.constant false else stats 0.5 5.
  in
  let exact = Power.Exact.run circuit ~inputs in
  let y_net = Option.get (C.net_of_name circuit "y") in
  Alcotest.(check (float 1e-12)) "gated off" 0.
    (S.density (Power.Exact.stats exact y_net));
  Alcotest.(check (float 1e-12)) "stuck high" 1.
    (S.prob (Power.Exact.stats exact y_net))

(* Property: on random fanout-free chains the engines agree; on all
   circuits, exact probabilities stay in [0,1] and densities >= 0. *)
let prop_exact_wellformed =
  QCheck.Test.make ~name:"exact stats are well-formed" ~count:30
    QCheck.(pair (int_range 0 100000) (int_range 1 10))
    (fun (seed, idx) ->
      let name = List.nth (Circuits.Suite.names ()) idx in
      let circuit = Circuits.Suite.find name in
      QCheck.assume (List.length (C.primary_inputs circuit) <= 18);
      let rng = Stoch.Rng.create seed in
      let inputs _ =
        stats (Stoch.Rng.float rng) (Stoch.Rng.float_range rng 0. 10.)
      in
      match Power.Exact.run circuit ~inputs with
      | exception Power.Exact.Blowup _ -> true
      | exact ->
          Array.for_all
            (fun s -> S.prob s >= 0. && S.prob s <= 1. && S.density s >= 0.)
            (Power.Exact.all_stats exact))

let test_exactness_rows () =
  let ctx = Experiments.Common.create () in
  let circuits =
    List.map (fun n -> (n, Circuits.Suite.find n)) [ "dec3"; "rca4" ]
  in
  match Experiments.Exactness.run ctx ~sim_horizon:4e-3 ~circuits () with
  | [ dec; rca ] ->
      Alcotest.(check (float 1e-9)) "decoder: local is exact" 0.
        dec.Experiments.Exactness.local_mean_error;
      Alcotest.(check bool) "adder: reconvergence bias visible" true
        (rca.Experiments.Exactness.local_mean_error > 1.);
      Alcotest.(check bool) "simulator within noise of exact" true
        (rca.Experiments.Exactness.sim_mean_error < 5.)
  | _ -> Alcotest.fail "two rows expected"

let () =
  Alcotest.run "exact"
    [
      ( "engine",
        [
          Alcotest.test_case "matches local on trees" `Quick
            test_exact_matches_local_on_tree;
          Alcotest.test_case "fixes reconvergence" `Quick
            test_exact_fixes_reconvergence;
          Alcotest.test_case "PI pass-through" `Quick
            test_exact_pi_stats_pass_through;
          Alcotest.test_case "blow-up guard" `Quick test_exact_blowup_guard;
          Alcotest.test_case "constant input" `Quick test_exact_constant_input;
          QCheck_alcotest.to_alcotest prop_exact_wellformed;
        ] );
      ( "E11",
        [ Alcotest.test_case "experiment rows" `Slow test_exactness_rows ] );
    ]
