(* Tests for the report substrate: table layout, CSV escaping, cell
   formatting, summary statistics. *)

module T = Report.Table
module S = Report.Stats

let test_table_render_alignment () =
  let t =
    T.create ~columns:[ ("name", T.Left); ("value", T.Right) ]
  in
  T.add_row t [ "a"; "1" ];
  T.add_row t [ "long-name"; "12345" ];
  let rendered = T.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: rule :: row1 :: row2 :: _ ->
      Alcotest.(check string) "header" "name       value" header;
      Alcotest.(check string) "rule" (String.make 16 '-') rule;
      Alcotest.(check string) "row 1 padded" "a              1" row1;
      Alcotest.(check string) "row 2" "long-name  12345" row2
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "ends with newline" true
    (String.length rendered > 0 && rendered.[String.length rendered - 1] = '\n')

let test_table_separator () =
  let t = T.create ~columns:[ ("x", T.Left) ] in
  T.add_row t [ "1" ];
  T.add_separator t;
  T.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (T.render t) in
  Alcotest.(check int) "6 lines with trailing" 6 (List.length lines)

let test_table_rejects_bad_row () =
  let t = T.create ~columns:[ ("a", T.Left); ("b", T.Left) ] in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Report.Table.add_row: wrong number of cells") (fun () ->
      T.add_row t [ "only-one" ])

let test_csv () =
  let t = T.create ~columns:[ ("name", T.Left); ("note", T.Left) ] in
  T.add_row t [ "plain"; "with,comma" ];
  T.add_separator t;
  T.add_row t [ "quote\"inside"; "multi\nline" ];
  let csv = T.to_csv t in
  Alcotest.(check string) "escaping"
    "name,note\nplain,\"with,comma\"\n\"quote\"\"inside\",\"multi\nline\"\n" csv

let test_cells () =
  Alcotest.(check string) "float" "3.14" (T.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "percent" "12.3" (T.cell_percent 12.34);
  Alcotest.(check string) "signed +" "+4.0" (T.cell_signed_percent 4.);
  Alcotest.(check string) "signed -" "-4.7" (T.cell_signed_percent (-4.7));
  Alcotest.(check string) "power uW" "3.42 uW" (T.cell_power 3.42e-6);
  Alcotest.(check string) "power nW" "470 nW" (T.cell_power 4.7e-7);
  Alcotest.(check string) "time ns" "1.24 ns" (T.cell_time 1.24e-9);
  Alcotest.(check string) "time ms" "2 ms" (T.cell_time 2e-3)

let test_stats_basic () =
  Alcotest.(check (float 1e-12)) "mean" 2. (S.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-12)) "median odd" 2. (S.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-12)) "median even" 2.5 (S.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-12)) "min" 1. (S.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-12)) "max" 3. (S.maximum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-12)) "stddev" (sqrt (2. /. 3.))
    (S.stddev [ 1.; 2.; 3. ])

let test_stats_empty_rejected () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Report.Stats.mean: empty list") (fun () ->
      ignore (S.mean []))

let test_correlation () =
  Alcotest.(check (float 1e-9)) "perfect" 1.
    (S.correlation [ 1.; 2.; 3. ] [ 10.; 20.; 30. ]);
  Alcotest.(check (float 1e-9)) "anti" (-1.)
    (S.correlation [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]);
  Alcotest.(check (float 1e-9)) "constant series" 0.
    (S.correlation [ 1.; 1.; 1. ] [ 1.; 2.; 3. ]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Report.Stats.correlation: length mismatch") (fun () ->
      ignore (S.correlation [ 1. ] [ 1.; 2. ]))

let test_geometric_mean_ratio () =
  Alcotest.(check (float 1e-9)) "2x everywhere" 2.
    (S.geometric_mean_ratio [ (2., 1.); (4., 2.) ]);
  Alcotest.(check (float 1e-9)) "mixed" 1.
    (S.geometric_mean_ratio [ (2., 1.); (1., 2.) ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Report.Stats.geometric_mean_ratio: non-positive value")
    (fun () -> ignore (S.geometric_mean_ratio [ (0., 1.) ]))

let prop_mean_bounds =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.) 100.))
    (fun xs ->
      let m = S.mean xs in
      S.minimum xs <= m +. 1e-9 && m <= S.maximum xs +. 1e-9)

let prop_csv_row_count =
  QCheck.Test.make ~name:"csv has one line per row plus header" ~count:100
    QCheck.(list (pair (string_of_size (QCheck.Gen.int_bound 10))
                    (string_of_size (QCheck.Gen.int_bound 10))))
    (fun rows ->
      let t = T.create ~columns:[ ("a", T.Left); ("b", T.Right) ] in
      List.iter (fun (a, b) -> T.add_row t [ a; b ]) rows;
      let csv = T.to_csv t in
      (* Count unescaped record separators: quoted cells may embed
         newlines, so parse minimally. *)
      let records = ref 0 in
      let in_quotes = ref false in
      String.iter
        (fun c ->
          match c with
          | '"' -> in_quotes := not !in_quotes
          | '\n' when not !in_quotes -> incr records
          | _ -> ())
        csv;
      !records = List.length rows + 1)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render alignment" `Quick test_table_render_alignment;
          Alcotest.test_case "separator" `Quick test_table_separator;
          Alcotest.test_case "rejects bad row" `Quick test_table_rejects_bad_row;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "cells" `Quick test_cells;
          QCheck_alcotest.to_alcotest prop_csv_row_count;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basic;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
          Alcotest.test_case "correlation" `Quick test_correlation;
          Alcotest.test_case "geometric mean ratio" `Quick
            test_geometric_mean_ratio;
          QCheck_alcotest.to_alcotest prop_mean_bounds;
        ] );
    ]
