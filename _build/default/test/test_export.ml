(* Tests for the export utilities (Graphviz, SPICE) and the E10
   sensitivity sweep. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let count_lines_with s sub =
  String.split_on_char '\n' s |> List.filter (fun l -> contains l sub)
  |> List.length

(* --- Network.to_dot --- *)

let test_dot_structure () =
  let config = Cell.Config.reference (Cell.Gate.of_name "nand2") in
  let network = Cell.Config.network config in
  let dot = Sp.Network.to_dot ~name:"nand2" network in
  Alcotest.(check bool) "graph header" true (contains dot "graph \"nand2\" {");
  Alcotest.(check bool) "has rails" true
    (contains dot "vdd [shape=box" && contains dot "vss [shape=box");
  Alcotest.(check bool) "output node" true (contains dot "y [shape=doublecircle]");
  (* 4 transistors = 4 edges; PMOS edges dashed. *)
  Alcotest.(check int) "4 edges" 4 (count_lines_with dot " -- ");
  Alcotest.(check int) "2 dashed PMOS" 2 (count_lines_with dot "dashed");
  Alcotest.(check bool) "closes" true (contains dot "}\n")

let test_dot_input_names () =
  let config = Cell.Config.reference (Cell.Gate.of_name "inv") in
  let network = Cell.Config.network config in
  let dot =
    Sp.Network.to_dot ~input_names:(fun _ -> "enable") network
  in
  Alcotest.(check int) "custom labels" 2 (count_lines_with dot "enable")

(* --- Spice --- *)

let test_spice_subckt () =
  let gate = Cell.Gate.of_name "oai21" in
  let deck = Cell.Spice.subckt gate ~config:0 in
  Alcotest.(check bool) "subckt line" true
    (contains deck ".subckt oai21_cfg0 x0 x1 x2 y vdd vss");
  Alcotest.(check bool) "ends" true (contains deck ".ends");
  Alcotest.(check int) "3 PMOS" 3 (count_lines_with deck "pmos");
  Alcotest.(check int) "3 NMOS" 3 (count_lines_with deck "nmos");
  (* Bulk of PMOS ties to vdd. *)
  String.split_on_char '\n' deck
  |> List.iter (fun l ->
         if contains l " pmos" then
           Alcotest.(check bool) "pmos bulk" true (contains l "vdd pmos"))

let test_spice_configs_differ () =
  let gate = Cell.Gate.of_name "nand2" in
  let d0 = Cell.Spice.subckt gate ~config:0 in
  let d1 = Cell.Spice.subckt gate ~config:1 in
  Alcotest.(check bool) "different decks" true (d0 <> d1)

let test_spice_bad_config () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Spice.subckt: configuration index out of range")
    (fun () -> ignore (Cell.Spice.subckt (Cell.Gate.of_name "inv") ~config:3))

let test_spice_library_deck () =
  let deck = Cell.Spice.library_deck () in
  let total_configs =
    List.fold_left (fun acc g -> acc + Cell.Gate.config_count g) 0
      Cell.Gate.library
  in
  Alcotest.(check int) "one subckt per configuration" total_configs
    (count_lines_with deck ".subckt")

(* --- Sensitivity (E10) --- *)

let test_sensitivity_qualitative_robust () =
  let circuits =
    List.map (fun n -> (n, Circuits.Suite.find n)) [ "c17"; "rca4"; "mux8" ]
  in
  let rows = Experiments.Sensitivity.run ~circuits () in
  Alcotest.(check int) "all variants" 7 (List.length rows);
  List.iter
    (fun (r : Experiments.Sensitivity.row) ->
      Alcotest.(check bool)
        (r.Experiments.Sensitivity.label ^ ": optimum flips")
        true r.Experiments.Sensitivity.table1_flips;
      Alcotest.(check bool)
        (r.Experiments.Sensitivity.label ^ ": positive reductions")
        true
        (r.Experiments.Sensitivity.table1_case1 > 0.
        && r.Experiments.Sensitivity.table1_case2 > 0.
        && r.Experiments.Sensitivity.table3_avg_model > 0.))
    rows

let test_sensitivity_junction_monotone () =
  let circuits = [ ("rca4", Circuits.Suite.find "rca4") ] in
  let pick label rows =
    List.find
      (fun (r : Experiments.Sensitivity.row) ->
        r.Experiments.Sensitivity.label = label)
      rows
  in
  let rows = Experiments.Sensitivity.run ~circuits () in
  let low = pick "junction x0.5" rows in
  let base = pick "baseline" rows in
  let high = pick "junction x2" rows in
  (* More junction capacitance = more internal-node power = more to
     gain from reordering. *)
  Alcotest.(check bool) "monotone in junction cap" true
    (low.Experiments.Sensitivity.table1_case1
     < base.Experiments.Sensitivity.table1_case1
    && base.Experiments.Sensitivity.table1_case1
       < high.Experiments.Sensitivity.table1_case1)

let test_sensitivity_render () =
  let circuits = [ ("c17", Circuits.Suite.find "c17") ] in
  let s = Experiments.Sensitivity.render (Experiments.Sensitivity.run ~circuits ()) in
  Alcotest.(check bool) "mentions baseline" true (contains s "baseline")

let () =
  Alcotest.run "export"
    [
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "input names" `Quick test_dot_input_names;
        ] );
      ( "spice",
        [
          Alcotest.test_case "subckt" `Quick test_spice_subckt;
          Alcotest.test_case "configs differ" `Quick test_spice_configs_differ;
          Alcotest.test_case "bad config" `Quick test_spice_bad_config;
          Alcotest.test_case "library deck" `Quick test_spice_library_deck;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "qualitative claims robust" `Slow
            test_sensitivity_qualitative_robust;
          Alcotest.test_case "junction monotone" `Quick
            test_sensitivity_junction_monotone;
          Alcotest.test_case "render" `Quick test_sensitivity_render;
        ] );
    ]
