(* Tests for the Elmore delay model and static timing analysis. The key
   behavioural check: a critical input placed next to the output makes
   the gate faster than next to the rail (§5's rule of thumb). *)

module El = Delay.Elmore
module Sta = Delay.Sta
module C = Netlist.Circuit
module B = Netlist.Builder

let proc = Cell.Process.default
let table () = El.table proc
let gate = Cell.Gate.of_name

(* Hand calculation for the inverter: single NMOS / single PMOS.
   Fall: τ = (C_out + load)·R_n with C_out = 3 junctions + wire. *)
let test_inverter_hand_computed () =
  let t = table () in
  let c_out = (2. *. 6e-15) +. 15e-15 in
  let load = 10e-15 in
  let rise, fall = El.pin_delay_rise_fall t (gate "inv") ~config:0 ~pin:0 ~load in
  Alcotest.(check (float 1e-15)) "fall = (C+L)Rn" ((c_out +. load) *. 5e3) fall;
  Alcotest.(check (float 1e-15)) "rise = (C+L)Rp" ((c_out +. load) *. 10e3) rise

(* nand2: output has 3 terminals + wire; internal node 2 terminals.
   Pull-down chain [x0 near output; x1 near ground].
   Pin x0 last: only C_out discharges through both NMOS: τ = C_out·2Rn.
   Pin x1 last: C_out·2Rn + C_int·Rn (internal node still charged). *)
let test_nand2_position_dependence () =
  let t = table () in
  let c_out = (3. *. 6e-15) +. 15e-15 in
  let c_int = 2. *. 6e-15 in
  let r = 5e3 in
  let _, fall0 = El.pin_delay_rise_fall t (gate "nand2") ~config:0 ~pin:0 ~load:0. in
  let _, fall1 = El.pin_delay_rise_fall t (gate "nand2") ~config:0 ~pin:1 ~load:0. in
  Alcotest.(check (float 1e-15)) "near-output pin" (c_out *. 2. *. r) fall0;
  Alcotest.(check (float 1e-15)) "near-rail pin"
    ((c_out *. 2. *. r) +. (c_int *. r))
    fall1;
  Alcotest.(check bool) "output-adjacent critical pin is faster" true
    (fall0 < fall1)

let test_reordering_swaps_pin_delays () =
  (* Config 1 of nand2 swaps the chain; pin roles must swap. *)
  let t = table () in
  let d config pin =
    snd (El.pin_delay_rise_fall t (gate "nand2") ~config ~pin ~load:0.)
  in
  Alcotest.(check (float 1e-18)) "pin0 cfg0 = pin1 cfg1" (d 0 0) (d 1 1);
  Alcotest.(check (float 1e-18)) "pin1 cfg0 = pin0 cfg1" (d 0 1) (d 1 0)

let test_delay_affine_in_load () =
  let t = table () in
  let d load = El.pin_delay t (gate "nand3") ~config:0 ~pin:1 ~load in
  let d0 = d 0. and d1 = d 10e-15 and d2 = d 20e-15 in
  Alcotest.(check (float 1e-18)) "affine" (d1 -. d0) (d2 -. d1);
  Alcotest.(check bool) "increasing" true (d2 > d1 && d1 > d0)

let test_worst_delay_is_max_pin () =
  let t = table () in
  let g = gate "oai21" in
  let w = El.worst_delay t g ~config:0 ~load:5e-15 in
  let pins =
    List.init (Cell.Gate.arity g) (fun pin ->
        El.pin_delay t g ~config:0 ~pin ~load:5e-15)
  in
  Alcotest.(check (float 1e-18)) "max" (List.fold_left Float.max 0. pins) w

let test_validation () =
  let t = table () in
  Alcotest.check_raises "negative load" (Invalid_argument "Delay.Elmore: negative load")
    (fun () -> ignore (El.pin_delay t (gate "inv") ~config:0 ~pin:0 ~load:(-1.)));
  Alcotest.check_raises "bad pin" (Invalid_argument "Delay.Elmore: pin out of range")
    (fun () -> ignore (El.pin_delay t (gate "inv") ~config:0 ~pin:3 ~load:0.));
  Alcotest.check_raises "bad config"
    (Invalid_argument "Delay.Elmore: configuration index out of range")
    (fun () -> ignore (El.pin_delay t (gate "inv") ~config:9 ~pin:0 ~load:0.))

(* Property: every pin of every configuration of every library gate has
   positive rise and fall delays (complementary gates always have a path
   through each pin). *)
let prop_all_pins_positive =
  let gates = Array.of_list Cell.Gate.library in
  QCheck.Test.make ~name:"all pins of all configs have positive delays"
    ~count:(Array.length gates)
    (QCheck.make
       ~print:(fun i -> Cell.Gate.name gates.(i))
       QCheck.Gen.(int_bound (Array.length gates - 1)))
    (fun gi ->
      let t = table () in
      let g = gates.(gi) in
      List.for_all
        (fun config ->
          List.for_all
            (fun pin ->
              let rise, fall = El.pin_delay_rise_fall t g ~config ~pin ~load:1e-15 in
              rise > 0. && fall > 0.)
            (List.init (Cell.Gate.arity g) Fun.id))
        (List.init (Cell.Gate.config_count g) Fun.id))

(* --- STA --- *)

let chain_of_inverters n =
  let b = B.create ~name:"chain" in
  let x = B.input b "x" in
  let rec go i net = if i = 0 then net else go (i - 1) (B.inv b net) in
  let out = go n x in
  B.output b out;
  B.finish b

let test_sta_chain_monotone () =
  let t = table () in
  let d n = Sta.critical_delay (Sta.run t (chain_of_inverters n)) in
  Alcotest.(check bool) "longer chain is slower" true
    (d 8 > d 4 && d 4 > d 2 && d 2 > 0.)

let test_sta_inverter_exact () =
  let t = table () in
  let sta = Sta.run t ~external_load:10e-15 (chain_of_inverters 1) in
  let c_out = (2. *. 6e-15) +. 15e-15 in
  Alcotest.(check (float 1e-15)) "rise delay through PMOS"
    ((c_out +. 10e-15) *. 10e3)
    (Sta.critical_delay sta)

let test_sta_arrival_and_path () =
  let t = table () in
  let c = chain_of_inverters 3 in
  let sta = Sta.run t c in
  let path = Sta.critical_path sta in
  Alcotest.(check int) "path visits input + 3 outputs" 4 (List.length path);
  (match path with
  | first :: _ ->
      Alcotest.(check (float 0.)) "starts at arrival 0" 0. (Sta.arrival sta first)
  | [] -> Alcotest.fail "empty path");
  (match Sta.critical_output sta with
  | Some out ->
      Alcotest.(check (float 1e-18)) "critical = arrival at output"
        (Sta.arrival sta out) (Sta.critical_delay sta)
  | None -> Alcotest.fail "no critical output")

let test_sta_config_affects_delay () =
  (* nand3 with the critical (late) input: placing its transistor near
     the output net shortens the circuit delay. Build a circuit where
     input c arrives late (behind two inverters) and feeds pin 0 or 2. *)
  let build pin_for_late =
    let b = B.create ~name:"late" in
    let a = B.input b "a" in
    let c0 = B.input b "c" in
    let late = B.inv b (B.inv b c0) in
    let pins =
      match pin_for_late with
      | 0 -> [ late; a; a ]
      | _ -> [ a; a; late ]
    in
    let y = B.gate b "nand3" pins in
    B.output b y;
    B.finish b
  in
  let t = table () in
  let d pin = Sta.critical_delay (Sta.run t (build pin)) in
  (* Pin 0 is laid next to the output in the reference nand3 config. *)
  Alcotest.(check bool) "late input near output is faster" true (d 0 < d 2)

let test_sta_empty_circuit () =
  let b = B.create ~name:"wires" in
  let x = B.input b "x" in
  B.output b x;
  let c = B.finish b in
  let t = table () in
  Alcotest.(check (float 0.)) "no gates, no delay" 0.
    (Sta.critical_delay (Sta.run t c))

let () =
  Alcotest.run "delay"
    [
      ( "elmore",
        [
          Alcotest.test_case "inverter hand-computed" `Quick
            test_inverter_hand_computed;
          Alcotest.test_case "nand2 position dependence" `Quick
            test_nand2_position_dependence;
          Alcotest.test_case "reordering swaps pin delays" `Quick
            test_reordering_swaps_pin_delays;
          Alcotest.test_case "affine in load" `Quick test_delay_affine_in_load;
          Alcotest.test_case "worst = max pin" `Quick test_worst_delay_is_max_pin;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_all_pins_positive;
        ] );
      ( "sta",
        [
          Alcotest.test_case "chain monotone" `Quick test_sta_chain_monotone;
          Alcotest.test_case "inverter exact" `Quick test_sta_inverter_exact;
          Alcotest.test_case "arrival and path" `Quick test_sta_arrival_and_path;
          Alcotest.test_case "config affects delay" `Quick
            test_sta_config_affects_delay;
          Alcotest.test_case "empty circuit" `Quick test_sta_empty_circuit;
        ] );
    ]
